package planarflow

// The query plane: every query family of the paper is expressible as one
// first-class Query value, executed through one entry point. A Query is a
// validated tagged union — Kind selects the family, the argument fields are
// interpreted per family — and an Answer is the kind-discriminated result
// carrying the payload and the Build/Query rounds split. PreparedGraph.Do
// runs one query; DoBatch runs many with a bounded worker pool, a
// single-pass substrate warmup (each substrate any query in the batch needs
// is built exactly once, before fan-out) and per-query error isolation.
// The named methods (MaxFlow, Dist, Girth, ...) are thin wrappers over Do,
// and the flowd wire protocol maps JSON requests straight onto Query — one
// request value, one execution path, at every layer.

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"planarflow/internal/artifact"
	"planarflow/internal/core"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
)

// QueryKind identifies a query family. The values double as the wire names
// of the flowd protocol, so a decoded request maps onto a Query without a
// translation table.
type QueryKind string

const (
	// QDist: shortest-path distance U -> V under undirected weight
	// semantics (decodes locally from the primal labeling).
	QDist QueryKind = "dist"
	// QDirectedDist: QDist with one-way edge semantics.
	QDirectedDist QueryKind = "dirdist"
	// QDualDist: shortest-path distance between faces U and V of the dual
	// graph (decodes locally from the dual labeling).
	QDualDist QueryKind = "dualdist"
	// QDualSSSP: single-source shortest paths in the dual graph from face
	// Source (Thm 2.1 / Lemma 2.2).
	QDualSSSP QueryKind = "dualsssp"
	// QMaxFlow: exact maximum st-flow, s=U, t=V (Thm 1.2).
	QMaxFlow QueryKind = "maxflow"
	// QMinSTCut: exact directed minimum st-cut, s=U, t=V (Thm 6.1).
	QMinSTCut QueryKind = "minstcut"
	// QSTFlow: (1-Eps)-approximate maximum st-flow with s=U, t=V on a
	// common face (Thm 1.3); Eps=0 runs the exact oracle.
	QSTFlow QueryKind = "stflow"
	// QSTCut: the corresponding (approximate) minimum st-cut (Thm 6.2).
	QSTCut QueryKind = "stcut"
	// QGirth: weighted girth (Thm 1.7). No arguments.
	QGirth QueryKind = "girth"
	// QDirectedGirth: minimum weight of a directed cycle via the SSSP/BDD
	// route of [36]. No arguments.
	QDirectedGirth QueryKind = "dirgirth"
	// QGlobalMinCut: directed global minimum cut (Thm 1.5). No arguments.
	QGlobalMinCut QueryKind = "globalmincut"
)

// QueryKinds lists every query family in serving order. Wire surfaces
// (flowd's op set) derive their vocabulary from this slice.
var QueryKinds = []QueryKind{
	QDist, QDirectedDist, QDualDist, QDualSSSP,
	QMaxFlow, QMinSTCut, QSTFlow, QSTCut,
	QGirth, QDirectedGirth, QGlobalMinCut,
}

var queryKindSet = func() map[QueryKind]bool {
	m := make(map[QueryKind]bool, len(QueryKinds))
	for _, k := range QueryKinds {
		m[k] = true
	}
	return m
}()

// Query is one point query against a prepared graph: a tagged union whose
// Kind selects the family and whose argument fields are read per family
// (U/V are vertices for the primal families, faces for the dual ones).
// Construct queries with the per-family constructors (DistQuery,
// MaxFlowQuery, ...) and refine them with the With* options; the zero
// Query is invalid.
type Query struct {
	Kind   QueryKind `json:"kind"`
	U      int       `json:"u,omitempty"`
	V      int       `json:"v,omitempty"`
	Source int       `json:"source,omitempty"`
	Eps    float64   `json:"eps,omitempty"`

	// LeafLimit overrides the BDD leaf-bag bound for the families that
	// decode from a BDD-backed substrate (0 = the paper's Θ(D log n)
	// default). Distinct leaf limits key distinct substrates.
	LeafLimit int `json:"leaf_limit,omitempty"`
	// NoPhases drops the per-phase rounds breakdown from the Answer — the
	// rounds-accounting detail knob for serving paths that only consume
	// the totals.
	NoPhases bool `json:"no_phases,omitempty"`
	// Simulated forces the label-backed families (dualsssp, girth,
	// dirgirth, globalmincut) through the simulated CONGEST route instead
	// of the decode engine. The two routes return bit-identical answers
	// and rounds — this escape hatch exists so tests and audits keep
	// exercising the simulator; it is never needed for serving. Families
	// without an engine route ignore it.
	Simulated bool `json:"simulated,omitempty"`
}

// DistQuery asks for the undirected shortest-path distance from u to v.
func DistQuery(u, v int) Query { return Query{Kind: QDist, U: u, V: v} }

// DirectedDistQuery asks for the one-way shortest-path distance u -> v.
func DirectedDistQuery(u, v int) Query { return Query{Kind: QDirectedDist, U: u, V: v} }

// DualDistQuery asks for the distance between faces f1 and f2 of the dual.
func DualDistQuery(f1, f2 int) Query { return Query{Kind: QDualDist, U: f1, V: f2} }

// DualSSSPQuery asks for shortest paths in the dual from sourceFace.
func DualSSSPQuery(sourceFace int) Query { return Query{Kind: QDualSSSP, Source: sourceFace} }

// MaxFlowQuery asks for the exact maximum st-flow.
func MaxFlowQuery(s, t int) Query { return Query{Kind: QMaxFlow, U: s, V: t} }

// MinSTCutQuery asks for the exact directed minimum st-cut.
func MinSTCutQuery(s, t int) Query { return Query{Kind: QMinSTCut, U: s, V: t} }

// STFlowQuery asks for a (1-eps)-approximate maximum st-flow with s and t
// on a common face; eps = 0 runs the exact oracle.
func STFlowQuery(s, t int, eps float64) Query { return Query{Kind: QSTFlow, U: s, V: t, Eps: eps} }

// STCutQuery asks for the corresponding (approximate) minimum st-cut.
func STCutQuery(s, t int, eps float64) Query { return Query{Kind: QSTCut, U: s, V: t, Eps: eps} }

// GirthQuery asks for the weighted girth.
func GirthQuery() Query { return Query{Kind: QGirth} }

// DirectedGirthQuery asks for the minimum weight of a directed cycle.
func DirectedGirthQuery() Query { return Query{Kind: QDirectedGirth} }

// GlobalMinCutQuery asks for the directed global minimum cut.
func GlobalMinCutQuery() Query { return Query{Kind: QGlobalMinCut} }

// WithLeafLimit returns a copy of q with the BDD leaf limit overridden.
func (q Query) WithLeafLimit(leafLimit int) Query {
	q.LeafLimit = leafLimit
	return q
}

// WithoutPhases returns a copy of q whose Answer omits the per-phase
// rounds breakdown.
func (q Query) WithoutPhases() Query {
	q.NoPhases = true
	return q
}

// WithSimulated returns a copy of q forced through the simulated CONGEST
// route instead of the decode engine.
func (q Query) WithSimulated() Query {
	q.Simulated = true
	return q
}

// Validate checks everything about q that does not need a graph: the kind
// is known, ids are non-negative, eps is in [0, 1) for the approximate
// families, the leaf limit is non-negative. Graph-dependent range checks
// (vertex < N, face < NumFaces) happen at execution time. Every violation
// wraps one of the public sentinel errors.
func (q Query) Validate() error {
	if !queryKindSet[q.Kind] {
		return fmt.Errorf("planarflow: query kind %q: %w", q.Kind, ErrUnknownQueryKind)
	}
	if q.U < 0 || q.V < 0 {
		kindErr := ErrVertexRange
		if q.Kind == QDualDist {
			kindErr = ErrFaceRange
		}
		return fmt.Errorf("planarflow: %s query with negative id (u=%d v=%d): %w", q.Kind, q.U, q.V, kindErr)
	}
	if q.Source < 0 {
		return fmt.Errorf("planarflow: %s query with negative source %d: %w", q.Kind, q.Source, ErrFaceRange)
	}
	if (q.Kind == QSTFlow || q.Kind == QSTCut) && (q.Eps < 0 || q.Eps >= 1) {
		return fmt.Errorf("planarflow: eps=%v: %w", q.Eps, ErrEpsilonRange)
	}
	if q.LeafLimit < 0 {
		return fmt.Errorf("planarflow: leaf limit %d: %w", q.LeafLimit, ErrLeafLimitRange)
	}
	return nil
}

// Substrate identifies one reusable prepared artifact — the unit Warm
// prefetches and DoBatch's warmup pass builds before fan-out.
type Substrate string

const (
	// SubstrateBDD is the Bounded Diameter Decomposition (§5.1), the
	// substrate of the exact flow/cut families and of every labeling.
	SubstrateBDD Substrate = "bdd"
	// SubstratePrimalUndirected is the primal distance labeling under
	// undirected weight semantics (dist queries).
	SubstratePrimalUndirected Substrate = "primal-undirected"
	// SubstratePrimalDirected is the one-way primal labeling (dirdist,
	// directed girth).
	SubstratePrimalDirected Substrate = "primal-directed"
	// SubstrateDualUndirected is the dual labeling under undirected
	// semantics (dualdist, dual SSSP).
	SubstrateDualUndirected Substrate = "dual-undirected"
	// SubstrateDualDirected is the one-way dual labeling (directed
	// distance oracles).
	SubstrateDualDirected Substrate = "dual-directed"
	// SubstrateDualFreeReversal is the dual labeling under the w/0 length
	// function of directed global minimum cut (§7).
	SubstrateDualFreeReversal Substrate = "dual-free-reversal"
)

// Substrates returns the reusable substrates q decodes from, in build
// order (a labeling implies the BDD it is built over, so the BDD is not
// repeated). Families whose route has no reusable substrate (girth,
// stflow, stcut) return nil.
func (q Query) Substrates() []Substrate {
	switch q.Kind {
	case QDist:
		return []Substrate{SubstratePrimalUndirected}
	case QDirectedDist, QDirectedGirth:
		return []Substrate{SubstratePrimalDirected}
	case QDualDist, QDualSSSP:
		return []Substrate{SubstrateDualUndirected}
	case QMaxFlow, QMinSTCut:
		return []Substrate{SubstrateBDD}
	case QGlobalMinCut:
		return []Substrate{SubstrateDualFreeReversal}
	default:
		return nil
	}
}

// Answer is the result of one query: the kind-discriminated payload plus
// the Build/Query rounds split. Which fields are set depends on Kind:
//
//	dist, dirdist, dualdist   Value (Inf = unreachable)
//	dualsssp                  Dist (per face), or NegCycle
//	maxflow                   Value, Flow, Iterations, Rounds
//	minstcut                  Value, Side, Edges, Rounds
//	stflow                    Value, Flow, Rounds
//	stcut                     Value, Side, Edges, Rounds
//	girth, dirgirth           Value (Inf = acyclic), Edges (girth only)
//	globalmincut              Value, Side, Edges, Rounds
//
// Every Answer reports the same Build/Query rounds split: the query that
// triggered a substrate construction carries its cost (Build > 0), queries
// served from warm substrates report Build == 0. The point-decode kinds
// (dist, dirdist, dualdist) decode locally at no per-query cost, so their
// Query rounds are always zero — a nonzero Rounds on them is pure Build.
type Answer struct {
	Kind  QueryKind `json:"kind"`
	Value int64     `json:"value"`

	Dist       []int64 `json:"dist,omitempty"`  // dualsssp: per-face distances
	Flow       []int64 `json:"flow,omitempty"`  // flow families: per-edge assignment
	Side       []bool  `json:"side,omitempty"`  // cut families: one side of the bisection
	Edges      []int   `json:"edges,omitempty"` // cut families: crossing edges; girth: cycle edges
	NegCycle   bool    `json:"neg_cycle,omitempty"`
	Iterations int     `json:"iterations,omitempty"` // maxflow: binary-search steps

	Rounds Rounds `json:"rounds"`

	// Err is the per-query failure slot of DoBatch: entries of a batch
	// either carry a payload or an Err, never both. Do reports errors
	// through its own return value and leaves Err nil.
	Err error `json:"-"`
}

// Do executes one query against the prepared substrates, honoring ctx at
// substrate-build checkpoints (a nil ctx keeps the context the
// PreparedGraph is already bound to). It is the single execution entry
// point every named method and wire surface routes through; results are
// bit-identical to the corresponding named method.
func (p *PreparedGraph) Do(ctx context.Context, q Query) (*Answer, error) {
	return p.view(ctx).do(q)
}

// view rebinds p to ctx unless ctx is nil, in which case the existing
// binding (Prepare's background context, or WithContext's) is kept.
func (p *PreparedGraph) view(ctx context.Context) *PreparedGraph {
	if ctx == nil {
		return p
	}
	return p.WithContext(ctx)
}

// do dispatches one validated query to its execution route. The
// label-backed families (dualsssp, girth, dirgirth, globalmincut) default
// to the decode engine and take the simulated CONGEST route only when
// q.Simulated is set; the two routes are bit-identical in payload and
// rounds (decode_test.go holds them to that). The flow/cut families
// (maxflow, minstcut, stflow, stcut) are always algorithmic: their
// Miller–Naor searches build per-query residual labelings that no prepared
// substrate can answer for, so there is nothing to decode from. Every
// branch ends in the shared rounds tail, so every Answer reports the same
// Build/Query split.
func (p *PreparedGraph) do(q Query) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	a := &Answer{Kind: q.Kind}
	opt := core.Options{LeafLimit: q.LeafLimit}
	led := ledger.New()
	switch q.Kind {
	case QDist, QDirectedDist:
		if err := p.checkVertices(q.U, q.V); err != nil {
			return nil, err
		}
		kind := artifact.Undirected
		if q.Kind == QDirectedDist {
			kind = artifact.Directed
		}
		la, err := p.art.PrimalLabels(kind, q.LeafLimit, led)
		if err != nil {
			return nil, fmt.Errorf("planarflow: %w", err)
		}
		if la.NegCycle {
			return nil, fmt.Errorf("planarflow: %w", ErrNegativeCycle)
		}
		a.Value = la.Dist(q.U, q.V)

	case QDualDist:
		if err := p.checkFaces(q.U, q.V); err != nil {
			return nil, err
		}
		la, err := p.art.DualLabels(artifact.Undirected, q.LeafLimit, led)
		if err != nil {
			return nil, fmt.Errorf("planarflow: %w", err)
		}
		if la.NegCycle {
			return nil, fmt.Errorf("planarflow: %w", ErrNegativeCycle)
		}
		a.Value = la.Dist(q.U, q.V)

	case QDualSSSP:
		if err := p.checkFaces(q.Source); err != nil {
			return nil, err
		}
		var res *duallabel.SSSPResult
		var err error
		if q.Simulated {
			res, err = core.DualSSSP(p.art, q.Source, opt, led)
		} else {
			res, err = p.eng.DualSSSP(p.art, q.Source, q.LeafLimit, led)
		}
		if err != nil {
			return nil, sentinelErr(err)
		}
		if res.NegCycle {
			a.NegCycle = true
		} else {
			a.Dist = res.Dist
		}

	case QMaxFlow:
		if err := p.checkPair(q.U, q.V); err != nil {
			return nil, err
		}
		res, err := core.MaxFlow(p.art, q.U, q.V, opt, led)
		if err != nil {
			return nil, err
		}
		a.Value, a.Flow, a.Iterations = res.Value, res.Flow, res.Iterations

	case QMinSTCut:
		if err := p.checkPair(q.U, q.V); err != nil {
			return nil, err
		}
		res, err := core.MinSTCut(p.art, q.U, q.V, opt, led)
		if err != nil {
			return nil, err
		}
		a.Value, a.Side, a.Edges = res.Value, res.Side, res.CutEdges

	case QSTFlow:
		if err := p.checkSTPlanar(q.U, q.V, q.Eps); err != nil {
			return nil, err
		}
		res, err := core.STPlanarMaxFlow(p.art, q.U, q.V, q.Eps, led)
		if err != nil {
			return nil, sentinelErr(err)
		}
		a.Value, a.Flow = res.Value, res.Flow

	case QSTCut:
		if err := p.checkSTPlanar(q.U, q.V, q.Eps); err != nil {
			return nil, err
		}
		res, err := core.STPlanarMinCut(p.art, q.U, q.V, q.Eps, led)
		if err != nil {
			return nil, sentinelErr(err)
		}
		a.Value, a.Side, a.Edges = res.Value, res.Side, res.CutEdges

	case QGirth:
		var res *core.GirthResult
		var err error
		if q.Simulated {
			res, err = core.Girth(p.art, led)
		} else {
			res, err = p.eng.Girth(p.art, led)
		}
		if err != nil {
			return nil, sentinelErr(err)
		}
		a.Value, a.Edges = res.Weight, res.CycleEdges

	case QDirectedGirth:
		var w int64
		var err error
		if q.Simulated {
			w, err = core.DirectedGirth(p.art, opt, led)
		} else {
			w, err = p.eng.DirectedGirth(p.art, opt, led)
		}
		if err != nil {
			return nil, sentinelErr(err)
		}
		a.Value = w

	case QGlobalMinCut:
		var res *core.GlobalCutResult
		var err error
		if q.Simulated {
			res, err = core.GlobalMinCut(p.art, opt, led)
		} else {
			res, err = p.eng.GlobalMinCut(p.art, opt, led)
		}
		if err != nil {
			return nil, sentinelErr(err)
		}
		a.Value, a.Side, a.Edges = res.Value, res.Side, res.CutEdges
	}
	if q.NoPhases {
		a.Rounds = roundsTotalsOf(led)
	} else {
		a.Rounds = roundsOf(led)
	}
	return a, nil
}

// BatchOptions parameterizes DoBatch.
type BatchOptions struct {
	// Workers bounds how many queries run concurrently. 0 means
	// min(len(queries), GOMAXPROCS); 1 executes the batch sequentially.
	Workers int
	// NoWarm skips the single-pass substrate warmup. The artifact layer's
	// singleflight still guarantees each substrate is built exactly once,
	// but concurrent queries of the batch may block on one another's
	// builds and the triggering query's Answer carries the Build rounds.
	NoWarm bool
}

// DoBatch executes queries with a bounded worker pool and returns one
// Answer per query, index-aligned. Failures are isolated per query: a
// query that fails gets an Answer whose Err is set while the others
// proceed; the batch-level error is non-nil only when the whole batch is
// doomed (the context was canceled during warmup), and even then the
// per-query Answers are returned with their Errs set.
//
// Before fan-out, a warmup pass builds every substrate the batch needs
// exactly once (unless BatchOptions.NoWarm), so no query of the batch
// pays or waits for a build triggered by another: warm-batch Answers
// report Build == 0, and the construction cost is visible through
// BuildRounds, exactly as for point queries.
func (p *PreparedGraph) DoBatch(ctx context.Context, queries []Query, opt BatchOptions) ([]*Answer, error) {
	view := p.view(ctx)
	answers := make([]*Answer, len(queries))
	if len(queries) == 0 {
		return answers, nil
	}

	// Validate up front: invalid queries are settled here and contribute
	// nothing to the warmup set.
	runnable := make([]int, 0, len(queries))
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			answers[i] = &Answer{Kind: q.Kind, Err: err}
			continue
		}
		runnable = append(runnable, i)
	}

	// Single-pass warmup: the union of substrates the runnable queries
	// decode from, each built exactly once before fan-out. A warmup
	// failure can only be a context cancellation, which dooms every
	// remaining query — settle them all and surface the batch error.
	if !opt.NoWarm {
		if err := view.warmFor(queries, runnable); err != nil {
			for _, i := range runnable {
				answers[i] = &Answer{Kind: queries[i].Kind, Err: err}
			}
			return answers, err
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runnable) {
		workers = len(runnable)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				a, err := view.do(queries[i])
				if err != nil {
					a = &Answer{Kind: queries[i].Kind, Err: err}
				}
				answers[i] = a
			}
		}()
	}
	for _, i := range runnable {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return answers, nil
}

// warmKey identifies one substrate build of a warmup pass: queries with
// different leaf limits key different substrates.
type warmKey struct {
	sub       Substrate
	leafLimit int
}

// warmFor builds the union of substrates needed by the runnable queries,
// each exactly once, in deterministic (first-use) order.
func (p *PreparedGraph) warmFor(queries []Query, runnable []int) error {
	seen := make(map[warmKey]bool)
	var order []warmKey
	for _, i := range runnable {
		for _, sub := range queries[i].Substrates() {
			k := warmKey{sub, queries[i].LeafLimit}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
	}
	for _, k := range order {
		if err := p.warmOne(k.sub, k.leafLimit); err != nil {
			return err
		}
	}
	return nil
}

// Warm eagerly builds the given substrates so cold-start latency moves out
// of the first user query, honoring ctx at build checkpoints (nil keeps
// the current binding). With no arguments it prefetches the decode-heavy
// serving set — the BDD plus the undirected primal and dual labelings,
// the substrates of dist/dualdist/dualsssp traffic. Construction cost is
// charged to the build ledger (visible via BuildRounds and Stats), so
// queries served afterwards report Build == 0. A labeling that detects a
// negative cycle is still considered warm: Warm returns nil and the
// queries that decode from it report ErrNegativeCycle individually.
func (p *PreparedGraph) Warm(ctx context.Context, substrates ...Substrate) error {
	view := p.view(ctx)
	if len(substrates) == 0 {
		substrates = []Substrate{SubstrateBDD, SubstratePrimalUndirected, SubstrateDualUndirected}
	}
	for _, sub := range substrates {
		if err := view.warmOne(sub, 0); err != nil {
			return err
		}
	}
	return nil
}

// warmOne builds one substrate at the given leaf limit, charging the
// construction to the build sink.
func (p *PreparedGraph) warmOne(sub Substrate, leafLimit int) error {
	var err error
	switch sub {
	case SubstrateBDD:
		_, err = p.art.Tree(leafLimit, p.buildSink)
	case SubstratePrimalUndirected:
		_, err = p.art.PrimalLabels(artifact.Undirected, leafLimit, p.buildSink)
	case SubstratePrimalDirected:
		_, err = p.art.PrimalLabels(artifact.Directed, leafLimit, p.buildSink)
	case SubstrateDualUndirected:
		_, err = p.art.DualLabels(artifact.Undirected, leafLimit, p.buildSink)
	case SubstrateDualDirected:
		_, err = p.art.DualLabels(artifact.Directed, leafLimit, p.buildSink)
	case SubstrateDualFreeReversal:
		_, err = p.art.DualLabels(artifact.FreeReversal, leafLimit, p.buildSink)
	default:
		return fmt.Errorf("planarflow: substrate %q: %w", sub, ErrUnknownSubstrate)
	}
	if err != nil {
		return fmt.Errorf("planarflow: warm %s: %w", sub, err)
	}
	return nil
}
