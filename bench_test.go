package planarflow

// One benchmark per experiment of DESIGN.md §3 (the paper's theorems), each
// reporting the simulated CONGEST rounds of the run as a custom metric, plus
// micro-benchmarks of the substrates. Regenerate the full tables with
// cmd/flowbench; these benches track wall-clock and round costs per change.

import (
	"testing"

	"planarflow/internal/artifact"
	"planarflow/internal/bdd"
	"planarflow/internal/congest"
	"planarflow/internal/core"
	"planarflow/internal/duallabel"
	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
)

func reportRounds(b *testing.B, led *ledger.Ledger) {
	b.Helper()
	b.ReportMetric(float64(led.Total()), "rounds")
}

// BenchmarkE1ExactMaxFlow — Thm 1.2: exact max st-flow, Õ(D²) rounds.
func BenchmarkE1ExactMaxFlow(b *testing.B) {
	rng := planar.NewRand(1)
	g := planar.WithRandomWeights(planar.Grid(12, 12), rng, 1, 1, 1, 64)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		if _, err := core.MaxFlow(artifact.New(g), 0, g.N()-1, core.Options{}, led); err != nil {
			b.Fatal(err)
		}
	}
	reportRounds(b, led)
}

// BenchmarkE2ApproxFlow — Thm 1.3: (1-eps) st-planar flow, D·n^{o(1)} rounds.
func BenchmarkE2ApproxFlow(b *testing.B) {
	rng := planar.NewRand(2)
	g := planar.WithRandomWeights(planar.Grid(12, 12), rng, 1, 1, 100, 1000)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		if _, err := core.STPlanarMaxFlow(artifact.New(g), 0, g.N()-1, 0.1, led); err != nil {
			b.Fatal(err)
		}
	}
	reportRounds(b, led)
}

// BenchmarkE3GlobalMinCut — Thm 1.5: directed global min cut, Õ(D²) rounds.
func BenchmarkE3GlobalMinCut(b *testing.B) {
	rng := planar.NewRand(3)
	g := planar.WithRandomWeights(planar.BoustrophedonGrid(10, 10), rng, 1, 40, 1, 1)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		if _, err := core.GlobalMinCut(artifact.New(g), core.Options{}, led); err != nil {
			b.Fatal(err)
		}
	}
	reportRounds(b, led)
}

// BenchmarkE4Girth — Thm 1.7: weighted girth, Õ(D) rounds.
func BenchmarkE4Girth(b *testing.B) {
	rng := planar.NewRand(4)
	g := planar.WithRandomWeights(planar.Grid(12, 12), rng, 1, 1000000, 1, 1)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		if _, err := core.Girth(artifact.New(g), led); err != nil {
			b.Fatal(err)
		}
	}
	reportRounds(b, led)
}

// BenchmarkE5DualLabeling — Thm 2.1: Õ(D)-word labels in Õ(D²) rounds.
func BenchmarkE5DualLabeling(b *testing.B) {
	rng := planar.NewRand(5)
	g := planar.Grid(12, 12)
	lens := make([]int64, g.NumDarts())
	for d := range lens {
		lens[d] = 1 + rng.Int64N(64)
	}
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		tree := bdd.Build(g, 0, led)
		if la := duallabel.Compute(tree, lens, led); la.NegCycle {
			b.Fatal("unexpected negative cycle")
		}
	}
	reportRounds(b, led)
}

// BenchmarkE6MinSTCut — Thm 6.1: exact directed min st-cut.
func BenchmarkE6MinSTCut(b *testing.B) {
	rng := planar.NewRand(6)
	g := planar.WithRandomWeights(planar.Grid(10, 10), rng, 1, 1, 1, 32)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		if _, err := core.MinSTCut(artifact.New(g), 0, g.N()-1, core.Options{}, led); err != nil {
			b.Fatal(err)
		}
	}
	reportRounds(b, led)
}

// BenchmarkE7PartwiseAggregation — Cor 4.6/Thm 4.10: PA on G* in Õ(D).
func BenchmarkE7PartwiseAggregation(b *testing.B) {
	g := planar.Grid(16, 16)
	h := hatg.New(g)
	net := pa.FromHatG(h)
	tree := pa.BuildTree(net, 0)
	nf := g.Faces().NumFaces()
	parts := pa.Parts{Of: make([]int, h.N()), Num: nf}
	input := make([]int64, h.N())
	for x := 0; x < h.N(); x++ {
		parts.Of[x] = -1
		if !h.IsStarCenter(x) {
			parts.Of[x] = h.FaceOfCopy(x)
			input[x] = 1
		}
	}
	var rounds int
	for i := 0; i < b.N; i++ {
		res := pa.Aggregate(net, tree, parts, input, pa.Sum)
		rounds = 2 * res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE8BDDBuild — Lem 5.1/Thm 5.2: decomposition construction.
func BenchmarkE8BDDBuild(b *testing.B) {
	g := planar.Grid(16, 16)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		bdd.Build(g, 16, led)
	}
	reportRounds(b, led)
}

// BenchmarkE9DinicBaseline — the centralized comparator used throughout.
func BenchmarkE9DinicBaseline(b *testing.B) {
	rng := planar.NewRand(9)
	g := planar.WithRandomWeights(planar.Grid(16, 16), rng, 1, 1, 1, 64)
	for i := 0; i < b.N; i++ {
		core.DinicValue(g, 0, g.N()-1)
	}
}

// BenchmarkE10GirthSSSPRoute — the [36] Õ(D²) route the paper improves on.
func BenchmarkE10GirthSSSPRoute(b *testing.B) {
	g := planar.BoustrophedonGrid(12, 12)
	var led *ledger.Ledger
	for i := 0; i < b.N; i++ {
		led = ledger.New()
		if _, err := core.DirectedGirth(artifact.New(g), core.Options{}, led); err != nil {
			b.Fatal(err)
		}
	}
	reportRounds(b, led)
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationLeafLimit sweeps the BDD leaf bag size around the
// paper's Θ(D log n): too small explodes the level count (broadcast rounds),
// too large degenerates to the centralized leaf computation.
func BenchmarkAblationLeafLimit(b *testing.B) {
	g := planar.Grid(14, 14)
	rng := planar.NewRand(12)
	lens := make([]int64, g.NumDarts())
	for d := range lens {
		lens[d] = 1 + rng.Int64N(32)
	}
	for _, leaf := range []int{8, 32, bdd.DefaultLeafLimit(g), 4 * bdd.DefaultLeafLimit(g)} {
		b.Run(leafName(leaf, g), func(b *testing.B) {
			var led *ledger.Ledger
			for i := 0; i < b.N; i++ {
				led = ledger.New()
				tree := bdd.Build(g, leaf, led)
				if la := duallabel.Compute(tree, lens, led); la.NegCycle {
					b.Fatal("negative cycle")
				}
			}
			reportRounds(b, led)
		})
	}
}

func leafName(leaf int, g *planar.Graph) string {
	if leaf == bdd.DefaultLeafLimit(g) {
		return "leaf=default"
	}
	return "leaf=" + itoa(leaf)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationGirthRoutes compares the paper's Õ(D) dual-cut girth
// against the Õ(D²) SSSP route on the same size.
func BenchmarkAblationGirthRoutes(b *testing.B) {
	rng := planar.NewRand(13)
	gU := planar.WithRandomWeights(planar.Grid(14, 14), rng, 1, 100, 1, 1)
	gD := planar.BoustrophedonGrid(14, 14)
	b.Run("dual-cut", func(b *testing.B) {
		var led *ledger.Ledger
		for i := 0; i < b.N; i++ {
			led = ledger.New()
			if _, err := core.Girth(artifact.New(gU), led); err != nil {
				b.Fatal(err)
			}
		}
		reportRounds(b, led)
	})
	b.Run("sssp-route", func(b *testing.B) {
		var led *ledger.Ledger
		for i := 0; i < b.N; i++ {
			led = ledger.New()
			if _, err := core.DirectedGirth(artifact.New(gD), core.Options{}, led); err != nil {
				b.Fatal(err)
			}
		}
		reportRounds(b, led)
	})
}

// --- substrate micro-benchmarks ---

func BenchmarkPlanarFaces(b *testing.B) {
	g := planar.Grid(32, 32)
	for i := 0; i < b.N; i++ {
		fresh := planar.MustGraph(g.N(), g.Edges(), rotationsOf(g))
		fresh.Faces()
	}
}

func rotationsOf(g *planar.Graph) [][]planar.Dart {
	rot := make([][]planar.Dart, g.N())
	for v := 0; v < g.N(); v++ {
		rot[v] = append([]planar.Dart(nil), g.Rotation(v)...)
	}
	return rot
}

func BenchmarkHatGConstruction(b *testing.B) {
	g := planar.Grid(32, 32)
	for i := 0; i < b.N; i++ {
		hatg.New(g)
	}
}

func BenchmarkSeparatorBDD(b *testing.B) {
	g := planar.Grid(24, 24)
	for i := 0; i < b.N; i++ {
		bdd.Build(g, 32, ledger.New())
	}
}

func BenchmarkCongestBFS(b *testing.B) {
	g := planar.Grid(16, 16)
	e := congest.NewEngine(g)
	var rounds int
	for i := 0; i < b.N; i++ {
		_, stats := congest.DistributedBFS(e, 0)
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}
