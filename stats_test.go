package planarflow

import (
	"context"
	"errors"
	"testing"
)

func TestPreparedGraphStats(t *testing.T) {
	g := GridGraph(6, 6).WithRandomAttrs(7, 1, 9, 1, 16)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Bytes != 0 || len(st.Substrates) != 0 {
		t.Fatalf("fresh PreparedGraph has nonzero stats: %+v", st)
	}
	if _, err := p.Dist(0, g.N()-1); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if len(st.Substrates) != 2 { // bdd + undirected primal labeling
		t.Fatalf("after one Dist: %d substrates, want 2: %+v", len(st.Substrates), st.Substrates)
	}
	if st.Bytes <= 0 {
		t.Fatalf("footprint %d, want > 0", st.Bytes)
	}
	if st.BuildRounds != p.BuildRounds().Total {
		t.Fatalf("stats build rounds %d != BuildRounds() %d", st.BuildRounds, p.BuildRounds().Total)
	}
	// A second substrate family grows the footprint.
	if _, err := p.DualDist(0, 1); err != nil {
		t.Fatal(err)
	}
	st2 := p.Stats()
	if len(st2.Substrates) != 3 || st2.Bytes <= st.Bytes {
		t.Fatalf("after DualDist: %d substrates / %d bytes (was %d)", len(st2.Substrates), st2.Bytes, st.Bytes)
	}
}

func TestPrepareContextCancellation(t *testing.T) {
	g := GridGraph(8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := PrepareContext(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Dist(0, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Dist under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := p.MaxFlow(0, g.N()-1); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaxFlow under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := p.DualSSSP(0); !errors.Is(err, context.Canceled) {
		t.Fatalf("DualSSSP under canceled ctx: %v, want context.Canceled", err)
	}
	// Nothing was built, and the same PreparedGraph works once rebound to a
	// live context: views share the substrate cache.
	if st := p.Stats(); len(st.Substrates) != 0 {
		t.Fatalf("canceled queries published %d substrates", len(st.Substrates))
	}
	live := p.WithContext(context.Background())
	d1, err := live.Dist(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The warm substrate serves the canceled view too (cache hits need no
	// build checkpoint).
	d2, err := p.Dist(0, 5)
	if err != nil {
		t.Fatalf("canceled view should hit the warm cache: %v", err)
	}
	if d1 != d2 {
		t.Fatalf("distances differ across views: %d vs %d", d1, d2)
	}
}

func TestWithContextSharesSubstrates(t *testing.T) {
	g := GridGraph(6, 6)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	view := p.WithContext(context.Background())
	if _, err := view.Dist(0, 7); err != nil {
		t.Fatal(err)
	}
	// The base PreparedGraph sees the substrate the view built.
	if st := p.Stats(); len(st.Substrates) == 0 {
		t.Fatal("substrates built through a view not visible on the base")
	}
	if p.BuildRounds().Total == 0 {
		t.Fatal("view build cost not visible in base BuildRounds")
	}
}
