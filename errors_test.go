package planarflow

import (
	"errors"
	"testing"
)

// Every public entry point validates its arguments with typed sentinel
// errors, dispatchable via errors.Is.

func TestSentinelVertexRange(t *testing.T) {
	g := GridGraph(3, 3)
	cases := []error{
		func() error { _, err := MaxFlow(g, -1, 2); return err }(),
		func() error { _, err := MaxFlow(g, 0, 99); return err }(),
		func() error { _, err := MinSTCut(g, 42, 0); return err }(),
		func() error { _, err := ApproxMaxFlowSTPlanar(g, -3, 1, 0.1); return err }(),
		func() error { _, err := ApproxMinCutSTPlanar(g, 0, 100, 0); return err }(),
	}
	for i, err := range cases {
		if !errors.Is(err, ErrVertexRange) {
			t.Fatalf("case %d: got %v, want ErrVertexRange", i, err)
		}
	}
	o, err := NewDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(0, 99); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("oracle dist: got %v, want ErrVertexRange", err)
	}
}

func TestSentinelSameVertex(t *testing.T) {
	g := GridGraph(3, 3)
	if _, err := MaxFlow(g, 4, 4); !errors.Is(err, ErrSameVertex) {
		t.Fatalf("got %v, want ErrSameVertex", err)
	}
	if _, err := MinSTCut(g, 0, 0); !errors.Is(err, ErrSameVertex) {
		t.Fatalf("got %v, want ErrSameVertex", err)
	}
}

func TestSentinelFaceRange(t *testing.T) {
	g := GridGraph(3, 3)
	if _, err := DualSSSP(g, -1); !errors.Is(err, ErrFaceRange) {
		t.Fatalf("got %v, want ErrFaceRange", err)
	}
	if _, err := DualSSSP(g, g.NumFaces()); !errors.Is(err, ErrFaceRange) {
		t.Fatalf("got %v, want ErrFaceRange", err)
	}
	o, err := NewDistanceOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.DualDist(0, g.NumFaces()); !errors.Is(err, ErrFaceRange) {
		t.Fatalf("oracle dual dist: got %v, want ErrFaceRange", err)
	}
}

func TestSentinelSameFaceRequired(t *testing.T) {
	g := GridGraph(5, 5)
	// Center vertex 12 and corner 0 share no face.
	if _, err := ApproxMaxFlowSTPlanar(g, 12, 0, 0.1); !errors.Is(err, ErrSameFaceRequired) {
		t.Fatalf("got %v, want ErrSameFaceRequired", err)
	}
	if _, err := ApproxMinCutSTPlanar(g, 12, 0, 0); !errors.Is(err, ErrSameFaceRequired) {
		t.Fatalf("got %v, want ErrSameFaceRequired", err)
	}
}

func TestSentinelEpsilonRange(t *testing.T) {
	g := GridGraph(3, 3)
	for _, eps := range []float64{-0.1, 1.0, 2.5} {
		if _, err := ApproxMaxFlowSTPlanar(g, 0, 8, eps); !errors.Is(err, ErrEpsilonRange) {
			t.Fatalf("eps=%v: got %v, want ErrEpsilonRange", eps, err)
		}
	}
}

func TestSentinelNegativeCycle(t *testing.T) {
	g := GridGraph(3, 3).WithAttrs(func(e int, old Edge) Edge {
		old.Weight = -1
		return old
	})
	if _, err := NewDistanceOracle(g); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("got %v, want ErrNegativeCycle", err)
	}
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Dist(0, 1); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("prepared dist: got %v, want ErrNegativeCycle", err)
	}
}

func TestSentinelWeightSigns(t *testing.T) {
	neg := GridGraph(3, 3).WithAttrs(func(e int, old Edge) Edge {
		old.Weight = -2
		return old
	})
	if _, err := GlobalMinCut(neg); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("global cut: got %v, want ErrNegativeWeight", err)
	}
	if _, err := DirectedGirth(neg); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("directed girth: got %v, want ErrNegativeWeight", err)
	}
	zero := GridGraph(3, 3).WithAttrs(func(e int, old Edge) Edge {
		old.Weight = 0
		return old
	})
	if _, err := Girth(zero); !errors.Is(err, ErrNonPositiveWeight) {
		t.Fatalf("girth: got %v, want ErrNonPositiveWeight", err)
	}
}

func TestSentinelNilGraph(t *testing.T) {
	if _, err := Prepare(nil); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("got %v, want ErrNilGraph", err)
	}
	if _, err := MaxFlow(nil, 0, 1); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("one-shot: got %v, want ErrNilGraph", err)
	}
}
