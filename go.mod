module planarflow

go 1.22
