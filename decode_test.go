package planarflow

import (
	"context"
	"encoding/json"
	"testing"
)

// decodeTestGraphs is the graph zoo the fast-vs-simulated differential
// runs over: a capacitated grid, a random Delaunay-style triangulation and
// a boustrophedon grid (strongly connected, so the directed families have
// nontrivial answers).
func decodeTestGraphs() map[string]*Graph {
	return map[string]*Graph{
		"grid":          servingGraph(),
		"triangulation": TriangulationGraph(40, 3).WithRandomAttrs(13, 1, 9, 1, 12),
		"boustro":       BoustrophedonGridGraph(5, 5).WithRandomAttrs(7, 1, 20, 1, 1),
	}
}

// labelBackedQueries are the queries of the families the decode engine
// answers, including repeated dualsssp sources so the row cache is hit.
func labelBackedQueries(g *Graph) []Query {
	f := g.NumFaces()
	return []Query{
		DualSSSPQuery(0),
		DualSSSPQuery(f / 2),
		DualSSSPQuery(f - 1),
		DualSSSPQuery(0), // repeat: served from the row cache
		GirthQuery(),
		GirthQuery(), // repeat: served from the memo
		DirectedGirthQuery(),
		DirectedGirthQuery(),
		GlobalMinCutQuery(),
		GlobalMinCutQuery(),
	}
}

// TestFastPathEquivalence is the golden-JSON differential between the
// decode engine (the default route) and the simulated CONGEST route: for
// every label-backed family on every test graph, the two answers must be
// bit-identical — payload, Build/Query rounds split and per-phase
// breakdown. Both sides run the same query sequence on fresh bundles, so
// build attribution (which query carries Build > 0) must agree too.
func TestFastPathEquivalence(t *testing.T) {
	ctx := context.Background()
	for name, g := range decodeTestGraphs() {
		t.Run(name, func(t *testing.T) {
			pFast, err := Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			pSim, err := Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range labelBackedQueries(g) {
				fast, errF := pFast.Do(ctx, q)
				sim, errS := pSim.Do(ctx, q.WithSimulated())
				if (errF == nil) != (errS == nil) {
					t.Fatalf("query %d (%s): fast err=%v, simulated err=%v", i, q.Kind, errF, errS)
				}
				if errF != nil {
					if errF.Error() != errS.Error() {
						t.Fatalf("query %d (%s): fast err %q, simulated err %q", i, q.Kind, errF, errS)
					}
					continue
				}
				jf, err := json.Marshal(fast)
				if err != nil {
					t.Fatal(err)
				}
				js, err := json.Marshal(sim)
				if err != nil {
					t.Fatal(err)
				}
				if string(jf) != string(js) {
					t.Fatalf("query %d (%s): fast path diverges from simulated route\nfast: %s\nsim:  %s", i, q.Kind, jf, js)
				}
			}
		})
	}
}

// TestFastPathNoAliasing asserts the engine's caches never leak through an
// Answer: a caller mutating an answer's slices must not corrupt later
// answers for the same query.
func TestFastPathNoAliasing(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	a1, err := p.Do(ctx, DualSSSPQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	want := a1.Dist[0]
	a1.Dist[0] = want + 999
	a2, err := p.Do(ctx, DualSSSPQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Dist[0] != want {
		t.Fatalf("dualsssp answer aliased the row cache: got %d, want %d", a2.Dist[0], want)
	}

	g1, err := p.Do(ctx, GirthQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Edges) == 0 {
		t.Fatal("girth on the serving grid returned no cycle edges")
	}
	wantEdge := g1.Edges[0]
	g1.Edges[0] = wantEdge + 999
	g2, err := p.Do(ctx, GirthQuery())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Edges[0] != wantEdge {
		t.Fatalf("girth answer aliased the memo: got %d, want %d", g2.Edges[0], wantEdge)
	}
}

// TestAnswerRoundsPopulated is the regression test for the dropped-rounds
// bug: every QueryKind's Answer must report the shared Build/Query rounds
// contract through Do — the first query on a fresh bundle carries nonzero
// Total (per-query work, a triggered build, or both), the split sums to
// the total, the per-phase breakdown is present, and NoPhases drops
// exactly the breakdown while keeping the totals.
func TestAnswerRoundsPopulated(t *testing.T) {
	g := servingGraph()
	n, f := g.N(), g.NumFaces()
	queries := map[QueryKind]Query{
		QDist:          DistQuery(0, n-1),
		QDirectedDist:  DirectedDistQuery(0, n-1),
		QDualDist:      DualDistQuery(0, f-1),
		QDualSSSP:      DualSSSPQuery(0),
		QMaxFlow:       MaxFlowQuery(0, n-1),
		QMinSTCut:      MinSTCutQuery(0, n-1),
		QSTFlow:        STFlowQuery(0, n-1, 0.1),
		QSTCut:         STCutQuery(0, n-1, 0),
		QGirth:         GirthQuery(),
		QDirectedGirth: DirectedGirthQuery(),
		QGlobalMinCut:  GlobalMinCutQuery(),
	}
	ctx := context.Background()
	for _, kind := range QueryKinds {
		q, ok := queries[kind]
		if !ok {
			t.Fatalf("no query for kind %q; update the table", kind)
		}
		t.Run(string(kind), func(t *testing.T) {
			p, err := Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			a, err := p.Do(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if a.Rounds.Total <= 0 {
				t.Fatalf("first %s query Total=%d, want > 0", kind, a.Rounds.Total)
			}
			if a.Rounds.Build+a.Rounds.Query != a.Rounds.Total {
				t.Fatalf("%s: Build=%d + Query=%d != Total=%d", kind, a.Rounds.Build, a.Rounds.Query, a.Rounds.Total)
			}
			if a.Rounds.Measured+a.Rounds.Charged != a.Rounds.Total {
				t.Fatalf("%s: Measured=%d + Charged=%d != Total=%d", kind, a.Rounds.Measured, a.Rounds.Charged, a.Rounds.Total)
			}
			if a.Rounds.ByPhase == nil {
				t.Fatalf("%s: ByPhase missing without NoPhases", kind)
			}
			var phases int64
			for _, r := range a.Rounds.ByPhase {
				phases += r
			}
			if phases != a.Rounds.Total {
				t.Fatalf("%s: ByPhase sums to %d, Total=%d", kind, phases, a.Rounds.Total)
			}
			// NoPhases keeps the totals and drops only the breakdown.
			bare, err := p.Do(ctx, q.WithoutPhases())
			if err != nil {
				t.Fatal(err)
			}
			if bare.Rounds.ByPhase != nil {
				t.Fatalf("%s: NoPhases answer still carries ByPhase", kind)
			}
			if bare.Rounds.Query != a.Rounds.Query {
				t.Fatalf("%s: warm NoPhases Query=%d, first Query=%d", kind, bare.Rounds.Query, a.Rounds.Query)
			}
			if bare.Rounds.Build != 0 {
				t.Fatalf("%s: warm query Build=%d, want 0", kind, bare.Rounds.Build)
			}
		})
	}
}
