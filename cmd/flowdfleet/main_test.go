package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"planarflow/internal/fleet"
	"planarflow/internal/obs"
	"planarflow/internal/store"
)

// startFront boots n replicas behind an httptest front plane.
func startFront(t *testing.T, n int) (*front, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	reps := make([]*fleet.Replica, n)
	members := make([]fleet.Member, n)
	for i := range reps {
		r, err := fleet.StartReplica(fleet.ReplicaConfig{
			Name:   fmt.Sprintf("r%d", i),
			Store:  store.Config{SpillDir: dir},
			Logger: quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
		members[i] = r.Member()
		t.Cleanup(r.Stop)
	}
	fc, err := fleet.New(members, fleet.Options{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	f := &front{fc: fc, reps: reps, start: time.Now(), slowMS: 250}
	srv := httptest.NewServer(f.mux())
	t.Cleanup(srv.Close)
	return f, srv
}

func postJSON(t *testing.T, url string, body string, header http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFleetTracezEndpoint(t *testing.T) {
	_, srv := startFront(t, 2)

	spec := `{"kind":"grid","rows":6,"cols":6,"seed":5,"w_lo":1,"w_hi":9,"c_lo":1,"c_hi":16}`
	resp := postJSON(t, srv.URL+"/v1/graphs", `{"id":"g","spec":`+spec+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	// Query with an inbound trace: the front must continue it down
	// through the fleet client to the owning replica.
	tc := obs.NewTrace()
	hdr := http.Header{}
	hdr.Set(obs.TraceHeader, tc.String())
	resp = postJSON(t, srv.URL+"/v1/query", `{"graph":"g","op":"dist","u":0,"v":35}`, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	get := func(path string) (*http.Response, []byte) {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, body
	}

	r, body := get("/fleettracez")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fleettracez: status %d: %s", r.StatusCode, body)
	}
	var tr fleetTraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("fleettracez decode: %v", err)
	}
	var found *obs.TraceView
	for i := range tr.Traces {
		if tr.Traces[i].TraceID == tc.TraceID() {
			found = &tr.Traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("inbound trace %s not stitched on /fleettracez: %+v", tc.TraceID(), tr.Traces)
	}
	if found.Hops < 2 {
		t.Fatalf("stitched trace hops = %d, want >= 2 (fleet hop + replica hop)", found.Hops)
	}

	// Family filter keeps the trace (its spans include family "dist"),
	// a non-matching family drops it.
	r, body = get("/fleettracez?family=dist")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fleettracez?family: status %d", r.StatusCode)
	}
	var filtered fleetTraceResponse
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, tv := range filtered.Traces {
		if tv.TraceID == tc.TraceID() {
			seen = true
		}
		for _, sp := range tv.Spans {
			if sp.Family != "dist" {
				t.Fatalf("family filter leaked span %+v", sp)
			}
		}
	}
	if !seen {
		t.Fatalf("family=dist filter dropped the trace entirely")
	}

	// Malformed min_ms must 400, not 500 or silently match-all.
	if r, _ = get("/fleettracez?min_ms=banana"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min_ms: status %d, want 400", r.StatusCode)
	}
	if r, _ = get("/fleettracez?min_ms=-1"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative min_ms: status %d, want 400", r.StatusCode)
	}
}

func TestFleetzJournal(t *testing.T) {
	f, srv := startFront(t, 2)
	f.fc.RecordDrain("r0")

	r, err := http.Get(srv.URL + "/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var fz fleetzResponse
	if err := json.NewDecoder(r.Body).Decode(&fz); err != nil {
		t.Fatal(err)
	}
	if len(fz.Journal) == 0 {
		t.Fatal("journal absent from /fleetz")
	}
	if fz.Journal[0].Type != obs.EventDrain || fz.Journal[0].Member != "r0" {
		t.Fatalf("journal head = %+v, want the drain event", fz.Journal[0])
	}
	if fz.Journal[0].Seq == 0 || fz.Journal[0].UnixMS == 0 {
		t.Fatalf("journal event missing stamps: %+v", fz.Journal[0])
	}
}
