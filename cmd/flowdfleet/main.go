// Command flowdfleet runs a sharded flowd fleet in one process: N
// replicas (each its own store, daemon, metric registry, and loopback
// listeners) behind the consistent-hash fleet client, fronted by one
// HTTP plane that routes graph traffic by ring placement and aggregates
// fleet-wide telemetry.
//
// Usage:
//
//	flowdfleet -addr :8473 -replicas 3 -budget-mb 256
//	flowdfleet -snapshot-dir /var/lib/flowdfleet    # per-replica disk tiers under <dir>/<name>
//	flowdfleet -wire                                # replicas also serve the binary transport
//	flowdfleet -sync-interval 5s                    # periodic standby replication
//
// Front endpoints:
//
//	POST /v1/graphs     register a graph (routed to its ring owner, warm)
//	POST /v1/query      one query, routed by graph id with failover
//	POST /v1/batch      one batch, routed by graph id with failover
//	GET  /fleetz        membership, aliveness, ring epoch, failover counters, ops journal
//	GET  /fleettracez   end-to-end traces stitched across every replica's span
//	                    ring and the fleet client's own (?family= ?graph=
//	                    ?min_ms= filter spans; ?slow=1 keeps traces over
//	                    -fleet-slow-ms)
//	GET  /statsz        fleet-aggregated store stats + merged latency quantiles
//	GET  /metricsz      merged Prometheus exposition across every replica
//	GET  /healthz       fleet liveness (alive replicas / total)
//
// Replication: every -sync-interval the fleet client re-runs standby
// sync — each graph's spec registered on its ring successors and the
// owner's built bundle shipped over the snapshot stream — so a replica
// death is served by a standby holding a peer-restored bundle (zero
// rebuilds), and the ring epoch advances for observers on /fleetz.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"planarflow/internal/fleet"
	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/store"
)

func main() {
	addr := flag.String("addr", ":8473", "fleet front HTTP listen address")
	replicas := flag.Int("replicas", 3, "number of in-process flowd replicas")
	budgetMB := flag.Int64("budget-mb", 256, "per-replica artifact memory budget in MiB (0 = unlimited)")
	snapDir := flag.String("snapshot-dir", "", "disk-tier root: replica r spills under <dir>/<r> ('' = disabled)")
	wire := flag.Bool("wire", false, "replicas also serve the binary wire transport; fleet routing uses it for queries")
	syncInterval := flag.Duration("sync-interval", 5*time.Second, "period of standby replication (0 = disabled)")
	replication := flag.Int("replication", 1, "standby replicas per graph beyond its owner")
	logLevel := flag.String("log-level", "warn", "structured-log threshold: debug|info|warn|error")
	fleetSlowMS := flag.Float64("fleet-slow-ms", 250, "stitched-trace slow threshold for /fleettracez?slow=1")
	flag.Parse()

	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "flowdfleet: -replicas must be >= 1")
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "flowdfleet: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	reps := make([]*fleet.Replica, *replicas)
	members := make([]fleet.Member, *replicas)
	for i := range reps {
		r, err := fleet.StartReplica(fleet.ReplicaConfig{
			Name:   fmt.Sprintf("r%d", i),
			Store:  store.Config{MaxBytes: *budgetMB << 20, SpillDir: *snapDir},
			Wire:   *wire,
			Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowdfleet:", err)
			os.Exit(2)
		}
		reps[i] = r
		members[i] = r.Member()
		fmt.Printf("flowdfleet: replica %s on %s\n", r.Name, r.Member().HTTP)
	}
	fc, err := fleet.New(members, fleet.Options{
		Wire:        *wire,
		Replication: *replication,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowdfleet:", err)
		os.Exit(2)
	}
	defer fc.Close()

	front := &front{fc: fc, reps: reps, start: time.Now(), slowMS: *fleetSlowMS}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowdfleet:", err)
		os.Exit(2)
	}
	hs := &http.Server{Handler: front.mux()}
	fmt.Printf("flowdfleet: %d replicas behind %s (replication %d)\n", *replicas, ln.Addr(), *replication)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *syncInterval > 0 {
		go func() {
			t := time.NewTicker(*syncInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					sctx, cancel := context.WithTimeout(ctx, *syncInterval)
					if _, err := fc.SyncStandby(sctx); err != nil {
						logger.Warn("standby sync", "err", err.Error())
					}
					cancel()
				}
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "flowdfleet:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(drainCtx)
		for _, r := range reps {
			fc.RecordDrain(r.Name)
			if err := r.Drain(drainCtx); err != nil {
				logger.Warn("replica drain", "replica", r.Name, "err", err.Error())
			}
		}
		fmt.Println("flowdfleet: shut down")
	}
}

// front is the fleet's aggregating HTTP plane.
type front struct {
	fc     *fleet.Client
	reps   []*fleet.Replica
	start  time.Time
	slowMS float64
}

func (f *front) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", f.handleRegister)
	mux.HandleFunc("POST /v1/query", f.handleQuery)
	mux.HandleFunc("POST /v1/batch", f.handleBatch)
	mux.HandleFunc("GET /fleetz", f.handleFleetz)
	mux.HandleFunc("GET /fleettracez", f.handleFleetTracez)
	mux.HandleFunc("GET /statsz", f.handleStatsz)
	mux.HandleFunc("GET /metricsz", f.handleMetricsz)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	var ae *flowd.APIError
	switch {
	case errors.As(err, &ae):
		status = ae.Status
	case errors.Is(err, fleet.ErrNoReplicas):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request) (*T, bool) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "flowdfleet: bad request: " + err.Error()})
		return nil, false
	}
	return &v, true
}

// traceCtx continues an inbound X-Pf-Trace at the fleet ingress: the
// fleet client's root span joins the caller's trace instead of minting
// a new one. Absent or malformed headers leave the context untouched.
func traceCtx(r *http.Request) context.Context {
	ctx := r.Context()
	if tc := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); tc.Valid() {
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	return ctx
}

func (f *front) handleRegister(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[flowd.RegisterRequest](w, r)
	if !ok {
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "flowdfleet: missing graph id"})
		return
	}
	if err := f.fc.Register(traceCtx(r), req.ID, req.Spec); err != nil {
		writeErr(w, err)
		return
	}
	owner, _ := f.fc.Owner(req.ID)
	writeJSON(w, http.StatusOK, map[string]string{"id": req.ID, "owner": owner})
}

func (f *front) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[flowd.QueryRequest](w, r)
	if !ok {
		return
	}
	resp, err := f.fc.Query(traceCtx(r), *req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (f *front) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[flowd.BatchRequest](w, r)
	if !ok {
		return
	}
	resp, err := f.fc.QueryBatch(traceCtx(r), *req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// fleetzResponse is the fleet-topology view: who is in the ring, who is
// alive, which epoch routing is at, the client's failure counters, and
// the ops event journal cross-linking membership churn to the traces
// that caused it.
type fleetzResponse struct {
	Members []memberStatus `json:"members"`
	Epoch   uint64         `json:"epoch"`
	Alive   int            `json:"alive"`
	Stats   fleet.Stats    `json:"stats"`
	Journal []obs.Event    `json:"journal,omitempty"`
}

type memberStatus struct {
	Name  string `json:"name"`
	HTTP  string `json:"http"`
	Alive bool   `json:"alive"`
}

func (f *front) handleFleetz(w http.ResponseWriter, r *http.Request) {
	ring := f.fc.Ring()
	resp := fleetzResponse{
		Epoch: ring.Epoch(), Alive: ring.AliveCount(), Stats: f.fc.Stats(),
		Journal: f.fc.Journal().Recent(),
	}
	for _, r := range f.reps {
		resp.Members = append(resp.Members, memberStatus{
			Name: r.Name, HTTP: r.Member().HTTP, Alive: ring.Alive(r.Name),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// fleetTraceResponse is the GET /fleettracez payload: traces stitched
// from every replica's span rings plus the fleet client's own,
// newest-first.
type fleetTraceResponse struct {
	SlowThresholdMS float64         `json:"slow_threshold_ms"`
	Traces          []obs.TraceView `json:"traces"`
}

func (f *front) handleFleetTracez(w http.ResponseWriter, r *http.Request) {
	filter, err := flowd.SpanFilterFromQuery(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	rings := [][]obs.SpanView{
		obs.FilterSpans(f.fc.Tracer().Recent(), filter),
		obs.FilterSpans(f.fc.Tracer().Slow(), filter),
	}
	for _, rep := range f.reps {
		rings = append(rings,
			obs.FilterSpans(rep.Srv.Tracer().Recent(), filter),
			obs.FilterSpans(rep.Srv.Tracer().Slow(), filter))
	}
	traces := obs.Stitch(rings...)
	if r.URL.Query().Get("slow") == "1" {
		kept := traces[:0]
		for _, tv := range traces {
			if tv.TotalMS >= f.slowMS {
				kept = append(kept, tv)
			}
		}
		traces = kept
	}
	writeJSON(w, http.StatusOK, fleetTraceResponse{SlowThresholdMS: f.slowMS, Traces: traces})
}

// fleetStatsResponse is the aggregated /statsz: summed store counters,
// the per-replica breakdown, and fleet-wide latency quantiles computed
// from merged histogram snapshots (not averaged per-replica quantiles).
type fleetStatsResponse struct {
	Store      store.Stats                  `json:"store"`
	HitRate    float64                      `json:"hit_rate"`
	UptimeMS   float64                      `json:"uptime_ms"`
	PerReplica map[string]store.Stats       `json:"per_replica"`
	Latency    map[string]flowd.HistSummary `json:"latency,omitempty"`
}

func (f *front) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := fleetStatsResponse{
		UptimeMS:   float64(time.Since(f.start).Microseconds()) / 1000,
		PerReplica: make(map[string]store.Stats, len(f.reps)),
	}
	merged := map[string]obs.Snapshot{}
	for _, rep := range f.reps {
		st := rep.Store.Snapshot()
		st.PerGraph = nil // the fleet view aggregates; per-graph stays on the replica's own /statsz
		resp.PerReplica[rep.Name] = st
		resp.Store.Graphs += st.Graphs
		resp.Store.Resident += st.Resident
		resp.Store.Bytes += st.Bytes
		resp.Store.MaxBytes += st.MaxBytes
		resp.Store.Hits += st.Hits
		resp.Store.Misses += st.Misses
		resp.Store.Builds += st.Builds
		resp.Store.Evictions += st.Evictions
		resp.Store.BuildRounds += st.BuildRounds
		resp.Store.SnapshotRestores += st.SnapshotRestores
		resp.Store.SnapshotWrites += st.SnapshotWrites
		resp.Store.SnapshotErrors += st.SnapshotErrors
		resp.Store.PeerRestores += st.PeerRestores
		for key, snap := range rep.Srv.LatencySnapshots() {
			m := merged[key]
			m.Merge(snap)
			merged[key] = m
		}
	}
	resp.HitRate = resp.Store.HitRate()
	if len(merged) > 0 {
		resp.Latency = make(map[string]flowd.HistSummary, len(merged))
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			resp.Latency[k] = flowd.SummarizeLatency(merged[k])
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (f *front) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	regs := make([]*obs.Registry, len(f.reps))
	for i, rep := range f.reps {
		regs[i] = rep.Reg
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteMergedPrometheus(w, regs...)
}

func (f *front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ring := f.fc.Ring()
	alive := ring.AliveCount()
	status := "ok"
	code := http.StatusOK
	if alive == 0 {
		status, code = "down", http.StatusServiceUnavailable
	} else if alive < len(f.reps) {
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status": status, "alive": alive, "replicas": len(f.reps), "epoch": ring.Epoch(),
	})
}
