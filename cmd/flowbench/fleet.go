package main

// FLEET experiment: the sharded serving plane under failure. Three
// in-process replicas (each its own store and daemon) sit behind the
// consistent-hash fleet client; a Zipf-distributed working set is
// registered through the ring, replicated to standbys via the snapshot
// stream, and driven by concurrent clients whose every answer is checked
// bit-for-bit against single-node library ground truth. Mid-run the
// owner of the most popular graph is killed: the client must eject it
// (epoch bump), fail queries over to the ring successor, and keep
// serving — from the successor's peer-restored bundle, not a rebuild.
//
// Two records per run carry the trajectory:
//
//	:pre  — healthy fleet: qps, p50/p99, hit rate; OK = every answer
//	        matched ground truth and standby sync shipped > 0 bundles.
//	:post — after the kill: the same serving metrics (the recovery
//	        point), plus the fleet counters. OK gates the failover
//	        story: every post-kill answer still bit-identical, the
//	        client ejected and failed over (>= 1 each), survivors hold
//	        peer-restored bundles (> 0), zero substrate rebuilds for
//	        the previously-built working set, and the ring epoch
//	        advanced past the healthy run's.
//
// The rebuild gate is the point of the snapshot plane: a failover that
// rebuilds is correct but pays the full Õ(D²) construction again; a
// failover onto a standby that already restored the owner's bundle
// serves the first post-kill query from warm labels.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"planarflow"
	"planarflow/internal/fleet"
	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/planar"
	"planarflow/internal/store"
)

// fleetCfg sizes one FLEET run.
type fleetCfg struct {
	replicas int     // fleet size
	graphs   int     // working-set size G
	side     int     // grid side (same size, different seeds)
	skew     float64 // Zipf exponent over graph popularity ranks
	queries  int     // total queries per phase (pre-kill and post-kill)
	clients  int     // concurrent clients per phase
}

func fleetSizes(full bool) fleetCfg {
	if full {
		return fleetCfg{replicas: 3, graphs: 12, side: 8, skew: 1.3, queries: 800, clients: 4}
	}
	return fleetCfg{replicas: 3, graphs: 8, side: 6, skew: 1.3, queries: 240, clients: 4}
}

func fleetSpec(fc fleetCfg, seed int64, i int) store.GraphSpec {
	return store.GraphSpec{
		Kind: "grid", Rows: fc.side, Cols: fc.side,
		Seed: seed + int64(i), WLo: 1, WHi: 9, CLo: 1, CHi: 16,
	}
}

// fleetQuery is one pre-generated request with its library-computed
// expected answer — the bit-identity oracle for both phases.
type fleetQuery struct {
	req  flowd.QueryRequest
	want int64
}

// fleetPhase is the serving metrics of one traffic phase.
type fleetPhase struct {
	qps, p50, p99, hitRate, wallMS float64
	matched                        bool // every answer bit-identical to ground truth
}

type fleetResult struct {
	pre, post    fleetPhase
	killed       string // replica killed between the phases
	synced       int    // graph/standby pairs shipped by standby sync
	peerRestores int64  // survivor bundles restored via the peer ladder
	rebuilds     int64  // survivor substrate builds after the kill (gated == 0)
	stats        fleet.Stats
	epochPre     uint64
	epochPost    uint64

	// The stitched adopt trace: the first post-kill request drives
	// eject -> failover -> adopt -> peer restore inside one trace, and
	// the journal must carry eject/adopt/peer-restore events keyed by
	// its id.
	traceID    string
	traceHops  int
	traceSpans int
	traceOK    bool
}

func fleetBench(s *sink, c cfg) {
	fcfg := fleetSizes(c.full)
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(40, rep)
		header(rep, "FLEET", fmt.Sprintf(
			"%d-replica fleet under Zipf(%.1f), owner killed mid-run: G=%d grids %dx%d",
			fcfg.replicas, fcfg.skew, fcfg.graphs, fcfg.side, fcfg.side),
			"phase", "queries", "qps", "p50ms", "p99ms", "hitrate", "restores", "rebuilds", "ok")
		res, err := runFleet(fcfg, seed)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		inst := fmt.Sprintf("fleet%d-zipf%.1f-g%d", fcfg.replicas, fcfg.skew, fcfg.graphs)
		preOK := res.pre.matched && res.synced > 0
		s.add(Record{
			Exp: "FLEET", Instance: inst + ":pre",
			N: fcfg.side * fcfg.side, D: 2*fcfg.side - 2,
			WallMS: res.pre.wallMS, Repeat: rep, Seed: seed, OK: preOK,
			Queries: fcfg.queries, QPS: res.pre.qps, Clients: fcfg.clients,
			HitRate: res.pre.hitRate, P50MS: res.pre.p50, P99MS: res.pre.p99,
			Replicas: fcfg.replicas,
		})
		row(rep, "pre", fcfg.queries, res.pre.qps, res.pre.p50, res.pre.p99,
			res.pre.hitRate, int64(0), int64(0), preOK)
		postOK := res.post.matched && // gate 1: bit-identical across the kill
			res.peerRestores > 0 && res.rebuilds == 0 && // gate 2: standby served warm
			res.stats.Ejects >= 1 && res.stats.Failovers >= 1 &&
			res.epochPost > res.epochPre &&
			res.traceOK // gate 3: the failure story stitched into one trace
		s.add(Record{
			Exp: "FLEET", Instance: inst + ":post",
			N: fcfg.side * fcfg.side, D: 2*fcfg.side - 2,
			WallMS: res.post.wallMS, Repeat: rep, Seed: seed, OK: postOK,
			Queries: fcfg.queries, QPS: res.post.qps, Clients: fcfg.clients,
			HitRate: res.post.hitRate, P50MS: res.post.p50, P99MS: res.post.p99,
			Replicas:  fcfg.replicas,
			Failovers: res.stats.Failovers, PeerRestores: res.peerRestores,
			Rebuilds: res.rebuilds, TraceHops: res.traceHops,
		})
		row(rep, "post:"+res.killed, fcfg.queries, res.post.qps, res.post.p50, res.post.p99,
			res.post.hitRate, res.peerRestores, res.rebuilds, postOK)
		fmt.Printf("    adopt trace %s: %d span(s) over %d hops (eject/adopt/peer-restore journaled)\n",
			res.traceID, res.traceSpans, res.traceHops)
	}
}

func runFleet(fcfg fleetCfg, seed int64) (*fleetResult, error) {
	spillRoot, err := os.MkdirTemp("", "flowbench-fleet-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillRoot)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	reps := make([]*fleet.Replica, fcfg.replicas)
	members := make([]fleet.Member, fcfg.replicas)
	for i := range reps {
		r, err := fleet.StartReplica(fleet.ReplicaConfig{
			Name:   fmt.Sprintf("r%d", i),
			Store:  store.Config{SpillDir: spillRoot},
			Logger: quiet,
		})
		if err != nil {
			return nil, err
		}
		reps[i] = r
		members[i] = r.Member()
	}
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()
	fc, err := fleet.New(members, fleet.Options{
		ProbeInterval: -1, // the kill is permanent for this run
		BackoffBase:   2 * time.Millisecond,
		BackoffCap:    20 * time.Millisecond,
		Seed:          seed,
	})
	if err != nil {
		return nil, err
	}
	defer fc.Close()
	ctx := context.Background()

	// Register the working set through the ring (warm: substrates built
	// at the owner before the first query) and prepare the single-node
	// ground truth the answers are checked against.
	ids := make([]string, fcfg.graphs)
	truth := make([]*planarflow.PreparedGraph, fcfg.graphs)
	var n, faces int
	for i := range ids {
		ids[i] = fmt.Sprintf("g%02d", i)
		spec := fleetSpec(fcfg, seed, i)
		if err := fc.Register(ctx, ids[i], spec); err != nil {
			return nil, err
		}
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		if truth[i], err = planarflow.Prepare(g); err != nil {
			return nil, err
		}
		n = g.N()
		faces = g.NumFaces()
	}

	// Replicate every bundle to its ring standby over the snapshot
	// stream, so the kill below lands on a successor already serving
	// from a peer-restored bundle.
	synced, err := fc.SyncStandby(ctx)
	if err != nil {
		return nil, err
	}

	res := &fleetResult{synced: synced, epochPre: fc.Ring().Epoch()}

	// The two phases share one rng-derived workload shape: queries are
	// generated (and their expected answers decoded from the library's
	// labelings) up front, so transport failures cannot skew the mix.
	gen := func(phase int64, count int) ([]fleetQuery, error) {
		rng := planar.NewRand(seed + 77*phase)
		z := newZipf(fcfg.graphs, fcfg.skew)
		qs := make([]fleetQuery, count)
		for q := range qs {
			gi := z.sample(rng)
			fq := fleetQuery{req: flowd.QueryRequest{Graph: ids[gi]}}
			if rng.Float64() < 0.7 {
				fq.req.Op, fq.req.U, fq.req.V = "dist", rng.IntN(n), rng.IntN(n)
				want, err := truth[gi].Dist(fq.req.U, fq.req.V)
				if err != nil {
					return nil, err
				}
				fq.want = want
			} else {
				fq.req.Op, fq.req.U, fq.req.V = "dualdist", rng.IntN(faces), rng.IntN(faces)
				want, err := truth[gi].DualDist(fq.req.U, fq.req.V)
				if err != nil {
					return nil, err
				}
				fq.want = want
			}
			qs[q] = fq
		}
		return qs, nil
	}
	runPhase := func(qs []fleetQuery, alive []*fleet.Replica) (fleetPhase, error) {
		h0, m0 := fleetHitsMisses(alive)
		hist := obs.NewHistogram()
		per := len(qs) / fcfg.clients
		errs := make([]error, fcfg.clients)
		var wg sync.WaitGroup
		begin := time.Now()
		for w := 0; w < fcfg.clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for q, fq := range qs[w*per : (w+1)*per] {
					t0 := time.Now()
					resp, err := fc.Query(ctx, fq.req)
					if err != nil {
						errs[w] = fmt.Errorf("client %d query %d: %w", w, q, err)
						return
					}
					hist.Observe(time.Since(t0))
					if resp.Value != fq.want {
						errs[w] = fmt.Errorf("client %d query %d (%s %s): got %d want %d",
							w, q, fq.req.Op, fq.req.Graph, resp.Value, fq.want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(begin)
		for _, err := range errs {
			if err != nil {
				return fleetPhase{}, err
			}
		}
		h1, m1 := fleetHitsMisses(alive)
		p50, p99 := quantilesMS(hist)
		ph := fleetPhase{
			qps: float64(per*fcfg.clients) / wall.Seconds(),
			p50: p50, p99: p99,
			wallMS:  float64(wall.Microseconds()) / 1000,
			matched: true,
		}
		if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
			ph.hitRate = float64(dh) / float64(dh+dm)
		}
		return ph, nil
	}

	preQ, err := gen(1, fcfg.queries)
	if err != nil {
		return nil, err
	}
	if res.pre, err = runPhase(preQ, reps); err != nil {
		return nil, err
	}

	// Kill the owner of the most popular graph — the worst-case victim:
	// the Zipf head's traffic all re-routes through the failover path.
	victim, ok := fc.Owner(ids[0])
	if !ok {
		return nil, fmt.Errorf("fleet: no owner for %s", ids[0])
	}
	res.killed = victim

	// Adopt/trace leg setup, before the kill: one graph outside the Zipf
	// working set, owned by the victim, registered after the standby sync
	// (so no successor holds it) with a warmed bystander copy on the tail
	// of its chain. The first post-kill request for it must eject the
	// victim, fail over, adopt, and peer-restore — all inside one trace.
	repByName := func(name string) *fleet.Replica {
		for _, r := range reps {
			if r != nil && r.Name == name {
				return r
			}
		}
		return nil
	}
	var adoptID string
	var adoptChain []string
	for i := 0; i < 4096 && adoptID == ""; i++ {
		id := fmt.Sprintf("adopt-%02d", i)
		if o, ok := fc.Owner(id); ok && o == victim {
			if ch := fc.Ring().Successors(id, 3); len(ch) == 3 {
				adoptID, adoptChain = id, ch
			}
		}
	}
	if adoptID == "" {
		return nil, fmt.Errorf("fleet: no graph id hashes to victim %s", victim)
	}
	adoptSpec := fleetSpec(fcfg, seed, fcfg.graphs) // seed past the working set
	if err := fc.Register(ctx, adoptID, adoptSpec); err != nil {
		return nil, err
	}
	adoptReq := flowd.QueryRequest{Graph: adoptID, Op: "dist", U: 0, V: n - 1}
	adoptWant, err := fc.Query(ctx, adoptReq)
	if err != nil {
		return nil, fmt.Errorf("pre-kill adopt query: %w", err)
	}
	bystander := flowd.NewClient(repByName(adoptChain[2]).Member().HTTP)
	if _, err := bystander.RegisterWarm(ctx, adoptID, adoptSpec); err != nil {
		return nil, fmt.Errorf("bystander warm: %w", err)
	}

	survivors := make([]*fleet.Replica, 0, len(reps)-1)
	var builds0 int64
	for i, r := range reps {
		if r.Name == victim {
			r.Stop()
			reps[i] = nil
			continue
		}
		survivors = append(survivors, r)
		builds0 += r.Store.Snapshot().Builds
	}

	// The adopt request goes first so its trace carries the whole failure
	// story: failed attempt on the dead victim, eject, failover to a
	// replica that never saw the graph, adopt, peer restore.
	adoptGot, err := fc.Query(ctx, adoptReq)
	if err != nil {
		return nil, fmt.Errorf("post-kill adopt query: %w", err)
	}
	res.traceID, res.traceHops, res.traceSpans = fleetAdoptTrace(fc, survivors, adoptID)
	res.traceOK = adoptGot.Value == adoptWant.Value && res.traceID != "" && res.traceHops >= 2

	postQ, err := gen(2, fcfg.queries)
	if err != nil {
		return nil, err
	}
	if res.post, err = runPhase(postQ, survivors); err != nil {
		return nil, err
	}

	var builds1, restores1 int64
	for _, r := range survivors {
		st := r.Store.Snapshot()
		builds1 += st.Builds
		restores1 += st.PeerRestores
	}
	res.rebuilds = builds1 - builds0
	res.peerRestores = restores1 // the standby syncs above are these restores
	res.stats = fc.Stats()
	res.epochPost = fc.Ring().Epoch()
	return res, nil
}

// fleetAdoptTrace finds the post-kill adopt trace: the newest
// peer-restore journal event for the adopted graph names the trace; the
// journal must also carry its eject and adopt events, and the trace must
// stitch across the fleet client's span rings and every survivor's.
func fleetAdoptTrace(fc *fleet.Client, survivors []*fleet.Replica, adoptID string) (traceID string, hops, spans int) {
	events := fc.Journal().Recent()
	for _, e := range events { // newest-first
		if e.Type == obs.EventPeerRestore && e.Graph == adoptID {
			traceID = e.TraceID
			break
		}
	}
	if traceID == "" {
		return "", 0, 0
	}
	var sawEject, sawAdopt bool
	for _, e := range events {
		if e.TraceID != traceID {
			continue
		}
		switch e.Type {
		case obs.EventEject:
			sawEject = true
		case obs.EventAdopt:
			sawAdopt = true
		}
	}
	if !sawEject || !sawAdopt {
		return "", 0, 0
	}
	rings := [][]obs.SpanView{fc.Tracer().Recent(), fc.Tracer().Slow()}
	for _, r := range survivors {
		rings = append(rings, r.Srv.Tracer().Recent(), r.Srv.Tracer().Slow())
	}
	for _, tv := range obs.Stitch(rings...) {
		if tv.TraceID == traceID {
			return traceID, tv.Hops, len(tv.Spans)
		}
	}
	return "", 0, 0
}

// fleetHitsMisses sums the store hit/miss counters across replicas.
func fleetHitsMisses(reps []*fleet.Replica) (hits, misses int64) {
	for _, r := range reps {
		if r == nil {
			continue
		}
		st := r.Store.Snapshot()
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}
