package main

// COLDSTART experiment: restart-vs-rebuild on the TRAFFIC grid. The
// serving story of PR 2–5 is "build substrates once, serve many
// queries"; this experiment measures what a process restart costs with
// and without the persistence layer. One instance warms every substrate
// family (BDD + all five labelings) and records build_ms; a snapshot is
// taken, a fresh bundle is restored from it, and restore_ms is recorded.
// OK demands the subsystem's whole contract at once: the restore is
// strictly faster than the rebuild, every query family answers
// bit-identically on the restored bundle (payload and rounds, compared
// as golden JSON), and the restore triggered zero substrate builds.
//
// Two rows per run: "lib" exercises the public Snapshot/RestorePrepared
// path in-process; "flowd" exercises the daemon path — snapshot via
// POST /v1/snapshot, restart onto a fresh store over the same snapshot
// directory, warm-restore-on-boot, queries over the wire.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"planarflow"
	"planarflow/internal/flowd"
	"planarflow/internal/store"
)

// allSubstrates is the full substrate set: warming it makes build_ms the
// cost of everything a restart would otherwise lose.
var allSubstrates = []planarflow.Substrate{
	planarflow.SubstrateBDD,
	planarflow.SubstratePrimalUndirected,
	planarflow.SubstratePrimalDirected,
	planarflow.SubstrateDualUndirected,
	planarflow.SubstrateDualDirected,
	planarflow.SubstrateDualFreeReversal,
}

// coldstartQueries is one query per family (stflow/stcut on an adjacent,
// common-face pair; eps=0 runs the exact oracle).
func coldstartQueries(n, faces int) []planarflow.Query {
	return []planarflow.Query{
		planarflow.DistQuery(0, n-1),
		planarflow.DirectedDistQuery(0, n-1),
		planarflow.DualDistQuery(0, faces-1),
		planarflow.DualSSSPQuery(0),
		planarflow.MaxFlowQuery(0, n-1),
		planarflow.MinSTCutQuery(0, n-1),
		planarflow.STFlowQuery(0, 1, 0),
		planarflow.STCutQuery(0, 1, 0),
		planarflow.GirthQuery(),
		planarflow.DirectedGirthQuery(),
		planarflow.GlobalMinCutQuery(),
	}
}

// goldenAnswers runs the queries and serializes each Answer as JSON —
// the bit-identity witness (payload, witnesses and rounds included).
func goldenAnswers(p *planarflow.PreparedGraph, queries []planarflow.Query) ([]string, error) {
	out := make([]string, len(queries))
	for i, q := range queries {
		a, err := p.Do(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Kind, err)
		}
		data, err := json.Marshal(a)
		if err != nil {
			return nil, err
		}
		out[i] = string(data)
	}
	return out, nil
}

// coldstartSides returns the grid sides of a run. The base instance is
// always the full-size TRAFFIC grid (a single graph is cheap, and the
// smoke gate needs the real restore-vs-rebuild margin, not a toy one);
// -full adds a larger point so the committed trajectory shows the margin
// growing with substrate size.
func coldstartSides(full bool) []int {
	if full {
		return []int{10, 16}
	}
	return []int{10}
}

func coldstartBench(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(40, rep)
		header(rep, "COLDSTART", fmt.Sprintf(
			"restart vs rebuild on the TRAFFIC grid (all %d substrates)", len(allSubstrates)),
			"instance", "path", "n", "build_ms", "restore_ms", "speedup", "identical", "ok")
		for _, side := range coldstartSides(c.full) {
			tc := trafficSizes(true)
			tc.side = side
			for _, path := range []string{"lib", "flowd"} {
				var res *coldstartResult
				var err error
				if path == "lib" {
					res, err = runColdstartLib(tc, seed)
				} else {
					res, err = runColdstartFlowd(tc, seed)
				}
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				n := side * side
				d := 2*side - 2
				ok := res.identical && res.restoreMS < res.buildMS && res.noRebuild
				s.add(Record{
					Exp:      "COLDSTART",
					Instance: fmt.Sprintf("grid%dx%d:%s", side, side, path),
					N:        n, D: d,
					WallMS: res.wallMS, Repeat: rep, Seed: seed, OK: ok,
					Queries: res.queries,
					BuildMS: res.buildMS, RestoreMS: res.restoreMS,
					Speedup: res.buildMS / res.restoreMS,
				})
				row(rep, fmt.Sprintf("grid%dx%d", side, side), path, n, res.buildMS,
					res.restoreMS, res.buildMS/res.restoreMS, res.identical, ok)
			}
		}
	}
}

type coldstartResult struct {
	buildMS, restoreMS, wallMS float64
	queries                    int
	identical                  bool
	noRebuild                  bool
}

// runColdstartLib measures the public API path: Warm → Snapshot →
// RestorePrepared on a fresh graph value, golden answers compared.
func runColdstartLib(tc trafficCfg, seed int64) (*coldstartResult, error) {
	begin := time.Now()
	spec := trafficSpec(tc, seed, 0)
	g, err := spec.Build()
	if err != nil {
		return nil, err
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := p.Warm(context.Background(), allSubstrates...); err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(t0).Microseconds()) / 1000

	queries := coldstartQueries(g.N(), g.NumFaces())
	want, err := goldenAnswers(p, queries)
	if err != nil {
		return nil, err
	}

	var snap bytes.Buffer
	if err := p.Snapshot(&snap); err != nil {
		return nil, err
	}

	// A fresh graph value (rebuilt from the spec, as a restarted process
	// would) and a fresh bundle restored from the snapshot bytes.
	g2, err := spec.Build()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	p2, err := planarflow.RestorePrepared(g2, bytes.NewReader(snap.Bytes()))
	if err != nil {
		return nil, err
	}
	restoreMS := float64(time.Since(t0).Microseconds()) / 1000

	// Every substrate must arrive warm, and running the whole family set
	// must not grow the bundle (no rebuilds; the golden comparison below
	// additionally pins Build == 0 on every answer).
	preSubstrates := len(p2.Stats().Substrates)
	got, err := goldenAnswers(p2, queries)
	if err != nil {
		return nil, err
	}
	identical := len(want) == len(got)
	for i := range want {
		if want[i] != got[i] {
			identical = false
			fmt.Printf("  divergence [%s]\n    want %s\n    got  %s\n", queries[i].Kind, want[i], got[i])
			break
		}
	}
	noRebuild := preSubstrates == len(allSubstrates) &&
		len(p2.Stats().Substrates) == preSubstrates
	return &coldstartResult{
		buildMS: buildMS, restoreMS: restoreMS,
		wallMS:    float64(time.Since(begin).Microseconds()) / 1000,
		queries:   len(queries),
		identical: identical,
		noRebuild: noRebuild,
	}, nil
}

// runColdstartFlowd measures the daemon path: register+warm on daemon A,
// golden answers over the wire, POST /v1/snapshot, kill A; boot daemon B
// on a fresh store over the same snapshot directory, warm-restore, same
// queries, compare.
func runColdstartFlowd(tc trafficCfg, seed int64) (*coldstartResult, error) {
	begin := time.Now()
	dir, err := os.MkdirTemp("", "flowbench-coldstart")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg := store.Config{SpillDir: dir}
	spec := trafficSpec(tc, seed, 0)
	ctx := context.Background()

	stA := store.New(cfg)
	if _, err := stA.RegisterSpec("g", spec); err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := stA.Warm(ctx, "g", allSubstrates...); err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(t0).Microseconds()) / 1000

	srvA := httptest.NewServer(flowd.NewServer(stA))
	clA := flowd.NewClient(srvA.URL).WithHTTPClient(srvA.Client())
	gr := stA.Graph("g")
	reqs := flowd.FamilyChecks("g", gr.N(), gr.NumFaces())
	want := make([]string, len(reqs))
	for i, q := range reqs {
		resp, err := clA.Query(ctx, q)
		if err != nil {
			srvA.Close()
			return nil, fmt.Errorf("%s: %w", q.Op, err)
		}
		want[i] = flowd.RestartKey(resp)
	}
	if snap, err := clA.Snapshot(ctx, ""); err != nil {
		srvA.Close()
		return nil, err
	} else if snap.Written < 1 {
		srvA.Close()
		return nil, fmt.Errorf("snapshot wrote %d bundles", snap.Written)
	}
	srvA.Close()

	stB := store.New(cfg)
	if _, err := stB.RegisterSpec("g", spec); err != nil {
		return nil, err
	}
	t0 = time.Now()
	restored, err := stB.TryRestore("g")
	if err != nil {
		return nil, err
	}
	restoreMS := float64(time.Since(t0).Microseconds()) / 1000
	if !restored {
		return nil, fmt.Errorf("restart restored nothing")
	}
	srvB := httptest.NewServer(flowd.NewServer(stB))
	defer srvB.Close()
	clB := flowd.NewClient(srvB.URL).WithHTTPClient(srvB.Client())
	identical := true
	for i, q := range reqs {
		resp, err := clB.Query(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("restored %s: %w", q.Op, err)
		}
		if got := flowd.RestartKey(resp); got != want[i] {
			identical = false
			fmt.Printf("  divergence [%s]\n    want %s\n    got  %s\n", q.Op, want[i], got)
			break
		}
	}
	snapB := stB.Snapshot()
	return &coldstartResult{
		buildMS: buildMS, restoreMS: restoreMS,
		wallMS:    float64(time.Since(begin).Microseconds()) / 1000,
		queries:   len(reqs),
		identical: identical,
		noRebuild: snapB.Builds == 0 && snapB.SnapshotRestores >= 1,
	}, nil
}
