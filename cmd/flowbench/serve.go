package main

// SERVE experiment: amortized serving over the prepared-graph artifact
// layer. Each workload fires K queries per instance twice — cold (one-shot
// path: every query rebuilds its own BDD/labelings) and prepared (one
// PreparedGraph shared by all K queries) — and records total simulated
// rounds, amortized speedup (cold rounds / prepared rounds), and wall-clock
// queries/sec. Results of the two paths are checked for equality per query;
// a mismatch flips the record's OK bit.
//
// The :sim/:fast instance pairs additionally gate the decode engine: the
// same K queries are served once through the simulated CONGEST route on a
// fresh bundle (:sim — the serving cost of the instance before the engine
// existed) and once through the default decode route at steady state
// (:fast — warm, build amortized away, qps measured over repeated sweeps).
// The fast record's OK requires bit-identical answers and rounds against
// the simulated route AND a qps ratio of at least serveFastFloor.

import (
	"encoding/json"
	"fmt"
	"time"

	"planarflow"
	"planarflow/internal/planar"
)

const serveQueries = 16 // K: queries per instance and path

// serveBench runs the serving workloads (sizes shown are -full; the default
// run shrinks them for smoke speed):
//
//   - dist on Grid(32,32): vertex-to-vertex distance queries. The whole
//     cost is label construction; prepared queries decode locally, so the
//     amortized speedup approaches K.
//   - dualsssp on Grid(16,16): dual SSSP from K source faces. Build
//     dominates but each query pays a label broadcast.
//   - maxflow on Grid(12,12): exact max st-flow for K (s,t) pairs. Only
//     the BDD is shared — the Miller–Naor search recomputes residual
//     labelings per λ — so the speedup is honest but modest.
func serveBench(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(20, rep)
		header(rep, "SERVE", fmt.Sprintf("prepared-graph serving: K=%d queries, cold vs prepared", serveQueries),
			"workload", "path", "rounds", "build", "query", "speedup", "qps", "ok")
		serveDist(s, c, rep, seed)
		serveDualSSSP(s, c, rep, seed)
		serveMaxFlow(s, c, rep, seed)
		serveDistFast(s, c, rep, seed)
		serveDualSSSPFast(s, c, rep, seed)
	}
}

// serveRecord emits one Record of a serving run and prints its table row.
func serveRecord(s *sink, rep int, seed int64, instance, workload, path string,
	n, d int, rounds, build, query int64, wall time.Duration, speedup float64, ok bool) {
	qps := float64(serveQueries) / wall.Seconds()
	s.add(Record{
		Exp: "SERVE", Instance: instance, N: n, D: d,
		// Every phase of these workloads is pipelining-derived, so the whole
		// total is charged rounds.
		Rounds: rounds, Charged: rounds,
		WallMS: float64(wall.Microseconds()) / 1000,
		Repeat: rep, Seed: seed, OK: ok,
		Queries: serveQueries, Speedup: speedup, QPS: qps,
	})
	row(rep, workload, path, rounds, build, query, speedup, qps, ok)
}

// serveDist: K point-to-point distance queries; Grid(32,32) under -full
// (the headline amortization instance recorded in BENCH_serve.json), a small
// grid otherwise so smoke runs stay fast.
func serveDist(s *sink, c cfg, rep int, seed int64) {
	rows, cols := 12, 12
	if c.full {
		rows, cols = 32, 32
	}
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(seed, 1, 9, 1, 16)
	n, d := g.N(), rows+cols-2
	rng := planar.NewRand(seed)
	type pair struct{ u, v int }
	pairs := make([]pair, serveQueries)
	for i := range pairs {
		pairs[i] = pair{rng.IntN(n), rng.IntN(n)}
	}

	// Cold path: every query prepares its own artifact from scratch, so the
	// whole cold cost is build rounds (point queries decode for free).
	coldVals := make([]int64, serveQueries)
	var coldRounds int64
	coldStart := time.Now()
	for i, pr := range pairs {
		p, err := planarflow.Prepare(g)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		v, err := p.Dist(pr.u, pr.v)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		coldVals[i] = v
		coldRounds += p.BuildRounds().Total
	}
	coldWall := time.Since(coldStart)

	// Prepared path: one artifact serves all K queries.
	p, err := planarflow.Prepare(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok := true
	prepStart := time.Now()
	for i, pr := range pairs {
		v, err := p.Dist(pr.u, pr.v)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ok = ok && v == coldVals[i]
	}
	prepWall := time.Since(prepStart)
	build := p.BuildRounds().Total
	prepRounds := build // point queries decode locally: zero per-query rounds
	speedup := float64(coldRounds) / float64(prepRounds)

	inst := fmt.Sprintf("dist-grid%dx%d", rows, cols)
	serveRecord(s, rep, seed, inst+":cold", "dist", "cold", n, d, coldRounds, coldRounds, 0, coldWall, 1, ok)
	serveRecord(s, rep, seed, inst+":prepared", "dist", "prepared", n, d, prepRounds, build, prepRounds-build, prepWall, speedup, ok)
}

// serveDualSSSP: K dual SSSP queries from distinct source faces.
func serveDualSSSP(s *sink, c cfg, rep int, seed int64) {
	rows, cols := 8, 8
	if c.full {
		rows, cols = 16, 16
	}
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(seed+1, 1, 9, 1, 16)
	n, d := g.N(), rows+cols-2
	rng := planar.NewRand(seed + 1)
	faces := make([]int, serveQueries)
	for i := range faces {
		faces[i] = rng.IntN(g.NumFaces())
	}

	coldDist := make([][]int64, serveQueries)
	var coldRounds, coldBuild int64
	coldStart := time.Now()
	for i, f := range faces {
		res, err := planarflow.DualSSSP(g, f)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		coldDist[i] = res.Dist
		coldRounds += res.Rounds.Total
		coldBuild += res.Rounds.Build
	}
	coldWall := time.Since(coldStart)

	p, err := planarflow.Prepare(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok := true
	var prepRounds, build int64
	prepStart := time.Now()
	for i, f := range faces {
		res, err := p.DualSSSP(f)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		prepRounds += res.Rounds.Total
		build += res.Rounds.Build
		ok = ok && equalInt64s(res.Dist, coldDist[i])
	}
	prepWall := time.Since(prepStart)
	speedup := float64(coldRounds) / float64(prepRounds)

	inst := fmt.Sprintf("dualsssp-grid%dx%d", rows, cols)
	serveRecord(s, rep, seed, inst+":cold", "dualsssp", "cold", n, d, coldRounds, coldBuild, coldRounds-coldBuild, coldWall, 1, ok)
	serveRecord(s, rep, seed, inst+":prepared", "dualsssp", "prepared", n, d, prepRounds, build, prepRounds-build, prepWall, speedup, ok)
}

// serveMaxFlow: K exact max-flow queries for distinct (s,t) pairs.
func serveMaxFlow(s *sink, c cfg, rep int, seed int64) {
	rows, cols := 6, 6
	if c.full {
		rows, cols = 12, 12
	}
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(seed+2, 1, 1, 1, 16)
	n, d := g.N(), rows+cols-2
	rng := planar.NewRand(seed + 2)
	type pair struct{ s, t int }
	pairs := make([]pair, serveQueries)
	for i := range pairs {
		st := rng.IntN(n / 2)
		tt := n/2 + rng.IntN(n/2)
		pairs[i] = pair{st, tt}
	}

	coldVals := make([]int64, serveQueries)
	var coldRounds, coldBuild int64
	coldStart := time.Now()
	for i, pr := range pairs {
		res, err := planarflow.MaxFlow(g, pr.s, pr.t)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		coldVals[i] = res.Value
		coldRounds += res.Rounds.Total
		coldBuild += res.Rounds.Build
	}
	coldWall := time.Since(coldStart)

	p, err := planarflow.Prepare(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok := true
	var prepRounds, build int64
	prepStart := time.Now()
	for i, pr := range pairs {
		res, err := p.MaxFlow(pr.s, pr.t)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		prepRounds += res.Rounds.Total
		build += res.Rounds.Build
		ok = ok && res.Value == coldVals[i]
	}
	prepWall := time.Since(prepStart)
	speedup := float64(coldRounds) / float64(prepRounds)

	inst := fmt.Sprintf("maxflow-grid%dx%d", rows, cols)
	serveRecord(s, rep, seed, inst+":cold", "maxflow", "cold", n, d, coldRounds, coldBuild, coldRounds-coldBuild, coldWall, 1, ok)
	serveRecord(s, rep, seed, inst+":prepared", "maxflow", "prepared", n, d, prepRounds, build, prepRounds-build, prepWall, speedup, ok)
}

// serveFastFloor is the qps ratio the :fast instances must clear against
// their :sim comparator. Under -full the tentpole target applies (the
// decode engine must beat the simulated serving path by >= 100x on the
// SERVE grid); the smoke grids build so little that the ratio's headroom
// shrinks (~27x observed), so the smoke gate is looser while still
// catching an engine that silently falls back to the simulator (ratio ~1).
func serveFastFloor(full bool) float64 {
	if full {
		return 100
	}
	return 10
}

// serveDistFast: the decode-engine gate on the dist serving grid.
func serveDistFast(s *sink, c cfg, rep int, seed int64) {
	rows, cols := 12, 12
	if c.full {
		rows, cols = 32, 32
	}
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(seed, 1, 9, 1, 16)
	rng := planar.NewRand(seed)
	queries := make([]planarflow.Query, serveQueries)
	for i := range queries {
		queries[i] = planarflow.DistQuery(rng.IntN(g.N()), rng.IntN(g.N()))
	}
	inst := fmt.Sprintf("dist-grid%dx%d", rows, cols)
	serveFastPath(s, c, rep, seed, "dist", inst, g, g.N(), rows+cols-2, queries)
}

// serveDualSSSPFast: the decode-engine gate on the dualsssp serving grid —
// the headline instance of the engine's row cache.
func serveDualSSSPFast(s *sink, c cfg, rep int, seed int64) {
	rows, cols := 8, 8
	if c.full {
		rows, cols = 16, 16
	}
	g := planarflow.GridGraph(rows, cols).WithRandomAttrs(seed+1, 1, 9, 1, 16)
	rng := planar.NewRand(seed + 1)
	queries := make([]planarflow.Query, serveQueries)
	for i := range queries {
		queries[i] = planarflow.DualSSSPQuery(rng.IntN(g.NumFaces()))
	}
	inst := fmt.Sprintf("dualsssp-grid%dx%d", rows, cols)
	serveFastPath(s, c, rep, seed, "dualsssp", inst, g, g.N(), rows+cols-2, queries)
}

// serveFastPath emits the :sim/:fast record pair for one workload: a fresh
// bundle serving the K queries through the simulated route (build
// included — the instance's serving cost before the decode engine), then a
// fresh bundle on the default route, whose warmup sweep doubles as the
// bit-identity check (payload, rounds, build attribution — the full Answer
// JSON must match query for query) and whose steady-state qps is measured
// over repeated warm sweeps. Speedup on the :fast record is the qps ratio.
func serveFastPath(s *sink, c cfg, rep int, seed int64, workload, inst string,
	g *planarflow.Graph, n, d int, queries []planarflow.Query) {
	pSim, err := planarflow.Prepare(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	simJSON := make([]string, len(queries))
	var simRounds, simBuild int64
	simStart := time.Now()
	for i, q := range queries {
		a, err := pSim.Do(nil, q.WithSimulated())
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		simRounds += a.Rounds.Total
		simBuild += a.Rounds.Build
		j, err := json.Marshal(a)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		simJSON[i] = string(j)
	}
	simWall := time.Since(simStart)

	pFast, err := planarflow.Prepare(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok := true
	var fastRounds, fastBuild int64
	for i, q := range queries {
		a, err := pFast.Do(nil, q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fastRounds += a.Rounds.Total
		fastBuild += a.Rounds.Build
		j, err := json.Marshal(a)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ok = ok && string(j) == simJSON[i]
	}

	// Steady state: sweep the warm query set until enough wall has elapsed
	// for a stable rate, then report the per-sweep wall (so the record's
	// qps is the warm decode rate, not a single-sweep timer quantum).
	sweeps := 0
	timedStart := time.Now()
	var elapsed time.Duration
	for elapsed < 50*time.Millisecond {
		for _, q := range queries {
			if _, err := pFast.Do(nil, q.WithoutPhases()); err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		sweeps++
		elapsed = time.Since(timedStart)
	}
	perSweep := elapsed / time.Duration(sweeps)

	simQPS := float64(serveQueries) / simWall.Seconds()
	fastQPS := float64(serveQueries) / perSweep.Seconds()
	ratio := fastQPS / simQPS
	queryRounds := fastRounds - fastBuild // one warm sweep's charged rounds
	serveRecord(s, rep, seed, inst+":sim", workload, "sim", n, d,
		simRounds, simBuild, simRounds-simBuild, simWall, 1, ok)
	serveRecord(s, rep, seed, inst+":fast", workload, "fast", n, d,
		queryRounds, 0, queryRounds, perSweep, ratio, ok && ratio >= serveFastFloor(c.full))
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
