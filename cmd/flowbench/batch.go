package main

// BATCH experiment: request batching on the flowd wire. The same
// mixed-family workload — Zipf-popular graphs from the TRAFFIC working
// set, queries drawn from dist/dualdist/dualsssp/maxflow/girth — is
// served twice from identical fresh daemons: once as singleton requests
// (B round trips, B store acquisitions per B queries) and once through
// POST /v1/batch (one round trip, one bundle pin, one LRU touch per B
// queries, with the batch's substrate warmup run once before fan-out).
// Each path records wall-clock throughput, per-request latency
// percentiles, hit rate and evictions; OK asserts the batching story:
// both paths answer identically query-for-query, nothing errors, and
// batched qps >= singleton qps (the whole point of the endpoint).

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/planar"
	"planarflow/internal/store"
)

// batchCfg sizes one BATCH run. The working set mirrors trafficCfg so the
// comparison runs on the TRAFFIC grid.
type batchCfg struct {
	graphs   int     // working-set size G
	side     int     // grid side
	resident int     // budget in units of one graph's measured footprint
	skew     float64 // Zipf exponent over graph popularity ranks
	queries  int     // total queries per path
	batch    int     // B: queries per batch request
	qpsFloor float64 // OK threshold for the singleton path (collapse guard)
}

func batchSizes(full bool) batchCfg {
	if full {
		return batchCfg{graphs: 16, side: 10, resident: 8, skew: 1.3, queries: 1600, batch: 16, qpsFloor: 25}
	}
	return batchCfg{graphs: 8, side: 6, resident: 5, skew: 1.3, queries: 320, batch: 16, qpsFloor: 25}
}

// batchGroup is one batch request's worth of workload: B mixed-family
// queries against one Zipf-drawn graph.
type batchGroup struct {
	graph   string
	queries []flowd.BatchQuery
}

// batchWorkload derives the full (seeded, reproducible) request sequence
// both paths serve.
func batchWorkload(bc batchCfg, seed int64, ids []string, n, faces int) []batchGroup {
	rng := planar.NewRand(seed + 500)
	z := newZipf(bc.graphs, bc.skew)
	groups := make([]batchGroup, bc.queries/bc.batch)
	for gi := range groups {
		qs := make([]flowd.BatchQuery, bc.batch)
		for i := range qs {
			switch roll := rng.Float64(); {
			case roll < 0.70:
				qs[i] = flowd.BatchQuery{Op: "dist", U: rng.IntN(n), V: rng.IntN(n)}
			case roll < 0.85:
				qs[i] = flowd.BatchQuery{Op: "dualdist", U: rng.IntN(faces), V: rng.IntN(faces)}
			case roll < 0.92:
				qs[i] = flowd.BatchQuery{Op: "dualsssp", Source: rng.IntN(faces)}
			case roll < 0.96:
				qs[i] = flowd.BatchQuery{Op: "maxflow", U: rng.IntN(n / 2), V: n/2 + rng.IntN(n/2)}
			default:
				qs[i] = flowd.BatchQuery{Op: "girth"}
			}
		}
		groups[gi] = batchGroup{graph: ids[z.sample(rng)], queries: qs}
	}
	return groups
}

// batchDaemon spins up one fresh daemon loaded with the working set.
// unit is the measured per-bundle footprint the budget is denominated in
// (computed once per repeat by batchBench and shared by both paths).
func batchDaemon(bc batchCfg, seed, unit int64) (cl *flowd.Client, shutdown func(), err error) {
	tc := trafficCfg{graphs: bc.graphs, side: bc.side, resident: bc.resident, skew: bc.skew}
	st := store.New(store.Config{MaxBytes: int64(bc.resident)*unit + unit/2})
	hsrv := httptest.NewServer(flowd.NewServer(st))
	cl = flowd.NewClient(hsrv.URL).WithHTTPClient(hsrv.Client())
	ctx := context.Background()
	for i := 0; i < bc.graphs; i++ {
		if _, rerr := cl.Register(ctx, fmt.Sprintf("g%02d", i), trafficSpec(tc, seed, i)); rerr != nil {
			hsrv.Close()
			return nil, nil, rerr
		}
	}
	return cl, hsrv.Close, nil
}

type batchPathResult struct {
	values          []int64 // scalar answer per query, in workload order
	qps             float64
	p50, p99        float64 // per-HTTP-request latency percentiles
	phases          phaseMeans
	hitRate, wallMS float64
	evictions       int64
	errs            int
}

// runBatchSingle serves the workload as one request per query.
func runBatchSingle(bc batchCfg, seed, unit int64, groups []batchGroup) (*batchPathResult, error) {
	cl, shutdown, err := batchDaemon(bc, seed, unit)
	if err != nil {
		return nil, err
	}
	defer shutdown()
	ctx := context.Background()
	res := &batchPathResult{values: make([]int64, 0, bc.queries)}
	hist := obs.NewHistogram()
	phasesBefore := snapPhases()
	begin := time.Now()
	for _, grp := range groups {
		for _, q := range grp.queries {
			t0 := time.Now()
			qr, err := cl.Query(ctx, flowd.QueryRequest{
				Graph: grp.graph, Op: q.Op, U: q.U, V: q.V, Source: q.Source, Eps: q.Eps,
			})
			hist.Observe(time.Since(t0))
			if err != nil {
				res.errs++
				res.values = append(res.values, 0)
				continue
			}
			res.values = append(res.values, qr.Value)
		}
	}
	wall := time.Since(begin)
	res.phases = snapPhases().meansSince(phasesBefore)
	stats, err := cl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.qps = float64(len(res.values)) / wall.Seconds()
	res.p50, res.p99 = quantilesMS(hist)
	res.hitRate, res.evictions = stats.HitRate, stats.Store.Evictions
	res.wallMS = float64(wall.Microseconds()) / 1000
	return res, nil
}

// runBatchBatched serves the workload as one /v1/batch request per group.
func runBatchBatched(bc batchCfg, seed, unit int64, groups []batchGroup) (*batchPathResult, error) {
	cl, shutdown, err := batchDaemon(bc, seed, unit)
	if err != nil {
		return nil, err
	}
	defer shutdown()
	ctx := context.Background()
	res := &batchPathResult{values: make([]int64, 0, bc.queries)}
	hist := obs.NewHistogram()
	phasesBefore := snapPhases()
	begin := time.Now()
	for _, grp := range groups {
		t0 := time.Now()
		br, err := cl.QueryBatch(ctx, flowd.BatchRequest{Graph: grp.graph, Queries: grp.queries})
		hist.Observe(time.Since(t0))
		if err != nil {
			return nil, err
		}
		for _, r := range br.Results {
			if r.Error != "" {
				res.errs++
				res.values = append(res.values, 0)
				continue
			}
			res.values = append(res.values, r.Value)
		}
	}
	wall := time.Since(begin)
	res.phases = snapPhases().meansSince(phasesBefore)
	stats, err := cl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.qps = float64(len(res.values)) / wall.Seconds()
	res.p50, res.p99 = quantilesMS(hist)
	res.hitRate, res.evictions = stats.HitRate, stats.Store.Evictions
	res.wallMS = float64(wall.Microseconds()) / 1000
	return res, nil
}

// batchBench runs the BATCH experiment: B queries per request vs B
// singleton requests over the same seeded workload.
func batchBench(s *sink, c cfg) {
	bc := batchSizes(c.full)
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(40, rep)
		header(rep, "BATCH", fmt.Sprintf(
			"flowd request batching: B=%d vs singletons, G=%d grids %dx%d, budget %d/%d resident, Zipf(%.1f)",
			bc.batch, bc.graphs, bc.side, bc.side, bc.resident, bc.graphs, bc.skew),
			"path", "queries", "reqs", "qps", "p50ms", "p99ms", "hitrate", "evict", "ok")

		// Probe the working-set shape and per-bundle footprint once; both
		// paths share them (all working-set graphs have the same n and
		// faces, and the budget unit is seed-deterministic).
		tc := trafficCfg{graphs: bc.graphs, side: bc.side, resident: bc.resident, skew: bc.skew}
		g0, err := trafficSpec(tc, seed, 0).Build()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		unit, err := trafficUnit(tc, seed)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ids := make([]string, bc.graphs)
		for i := range ids {
			ids[i] = fmt.Sprintf("g%02d", i)
		}
		groups := batchWorkload(bc, seed, ids, g0.N(), g0.NumFaces())

		single, err := runBatchSingle(bc, seed, unit, groups)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		batched, err := runBatchBatched(bc, seed, unit, groups)
		if err != nil {
			fmt.Println("error:", err)
			return
		}

		valuesEqual := len(single.values) == len(batched.values)
		if valuesEqual {
			for i := range single.values {
				if single.values[i] != batched.values[i] {
					valuesEqual = false
					break
				}
			}
		}
		singleOK := single.errs == 0 && single.qps >= bc.qpsFloor
		batchOK := batched.errs == 0 && valuesEqual && batched.qps >= single.qps

		n, d := bc.side*bc.side, 2*bc.side-2
		inst := fmt.Sprintf("zipf%.1f-g%d-r%d", bc.skew, bc.graphs, bc.resident)
		s.add(Record{
			Exp: "BATCH", Instance: inst + ":single", N: n, D: d,
			WallMS: single.wallMS, Repeat: rep, Seed: seed, OK: singleOK,
			Queries: bc.queries, QPS: single.qps, Clients: 1,
			HitRate: single.hitRate, Evictions: single.evictions,
			P50MS: single.p50, P99MS: single.p99,
			PhaseDecodeMS: single.phases.decode, PhaseAcquireMS: single.phases.acquire,
			PhaseBuildMS: single.phases.build, PhaseExecMS: single.phases.exec,
			PhaseEncodeMS: single.phases.encode,
		})
		s.add(Record{
			Exp: "BATCH", Instance: fmt.Sprintf("%s:batch%d", inst, bc.batch), N: n, D: d,
			WallMS: batched.wallMS, Repeat: rep, Seed: seed, OK: batchOK,
			Queries: bc.queries, QPS: batched.qps, Clients: 1, Batch: bc.batch,
			HitRate: batched.hitRate, Evictions: batched.evictions,
			P50MS: batched.p50, P99MS: batched.p99,
			PhaseDecodeMS: batched.phases.decode, PhaseAcquireMS: batched.phases.acquire,
			PhaseBuildMS: batched.phases.build, PhaseExecMS: batched.phases.exec,
			PhaseEncodeMS: batched.phases.encode,
		})
		row(rep, "single", bc.queries, bc.queries, single.qps, single.p50, single.p99,
			single.hitRate, single.evictions, singleOK)
		row(rep, fmt.Sprintf("batch%d", bc.batch), bc.queries, len(groups), batched.qps,
			batched.p50, batched.p99, batched.hitRate, batched.evictions, batchOK)
	}
}
