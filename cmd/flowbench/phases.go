package main

// Telemetry-backed measurement helpers. Latency percentiles come from
// internal/obs histograms — the same HDR-lite buckets the daemon serves
// on /metricsz (<= 12.5% relative error) — instead of unbounded
// in-memory sample slices, so a long run's latency digest costs a fixed
// 304-bucket array per path rather than one float64 per request. The
// TRAFFIC and BATCH records additionally carry per-phase wall
// breakdowns computed as snapshot deltas of the daemon's
// flowd_phase_seconds histograms around each run: the benchmark daemons
// run in-process, so they share the process registry with the driver.

import (
	"time"

	"planarflow/internal/obs"
)

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// quantilesMS digests one run's latency histogram: (p50, p99) in ms.
func quantilesMS(h *obs.Histogram) (float64, float64) {
	snap := h.Snapshot()
	return ms(snap.Quantile(0.50)), ms(snap.Quantile(0.99))
}

// phaseSnap is a point-in-time snapshot of the daemon's per-phase
// histograms (get-or-create, so taking one before any daemon exists is
// fine — the daemon's initObs resolves the same series).
type phaseSnap [obs.NumPhases]obs.Snapshot

func snapPhases() phaseSnap {
	var ps phaseSnap
	r := obs.Default()
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		ps[p] = r.Histogram("flowd_phase_seconds",
			"Per-request phase wall time (decode, acquire, build, exec, encode, write).",
			obs.L("phase", p.String())).Snapshot()
	}
	return ps
}

// phaseMeans is the mean per-request wall of each serving phase over one
// run, in ms. Phases a run never touches stay 0.
type phaseMeans struct {
	decode, acquire, build, exec, encode float64
}

// meansSince computes the per-phase means accumulated between two
// snapshots (before -> after).
func (after phaseSnap) meansSince(before phaseSnap) phaseMeans {
	val := func(p obs.Phase) float64 {
		d := after[p]
		d.Sub(before[p])
		if d.Count == 0 {
			return 0
		}
		return ms(d.Mean())
	}
	return phaseMeans{
		decode:  val(obs.PhaseDecode),
		acquire: val(obs.PhaseAcquire),
		build:   val(obs.PhaseBuild),
		exec:    val(obs.PhaseExec),
		encode:  val(obs.PhaseEncode),
	}
}
