package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"planarflow/internal/cmdtest"
)

// TestSmokeE8 runs the cheapest table-producing experiment end-to-end with
// repeats and both sinks, and checks the contract the harness promises:
// parseable CSV/JSONL with one record per instance per repeat.
func TestSmokeE8(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "out.jsonl")
	csvPath := filepath.Join(dir, "out.csv")
	out := cmdtest.RunMain(t, "-exp", "E8", "-repeats", "2", "-jsonl", jsonl, "-csv", csvPath)
	cmdtest.ExpectMarkers(t, out, "## E8", "grid6x6")

	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) == 0 || len(recs)%2 != 0 {
		t.Fatalf("want an even, positive number of records (2 repeats), got %d", len(recs))
	}
	perRepeat := map[int]int{}
	for _, r := range recs {
		if r.Exp != "E8" || r.N <= 0 || r.Rounds <= 0 {
			t.Fatalf("malformed record: %+v", r)
		}
		perRepeat[r.Repeat]++
	}
	if perRepeat[0] != perRepeat[1] {
		t.Fatalf("repeats differ in record count: %v", perRepeat)
	}

	cf, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	rows, err := csv.NewReader(cf).ReadAll()
	if err != nil {
		t.Fatalf("unparseable CSV: %v", err)
	}
	if len(rows) != len(recs)+1 {
		t.Fatalf("CSV rows=%d want %d (header + one per record)", len(rows), len(recs)+1)
	}
}

// TestSmokeServe runs the SERVE experiment at smoke size and checks the
// serving contract: per-query equality between cold and prepared paths (OK
// bit), prepared rounds strictly below cold rounds for every workload, an
// amortized speedup ≥ 5x for the label-decode (dist) workload, and a
// decode-engine (:fast) record per label-backed workload whose OK bit
// carries the fast-vs-simulated answer equality and qps-ratio gate — the
// patterns whose full-size trajectories live in BENCH_serve.json.
func TestSmokeServe(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "serve.jsonl")
	out := cmdtest.RunMain(t, "-exp", "serve", "-jsonl", jsonl)
	cmdtest.ExpectMarkers(t, out, "## SERVE", "dist", "prepared")

	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	byInstance := map[string]Record{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", sc.Text(), err)
		}
		if !r.OK {
			t.Fatalf("cold/prepared results diverged: %+v", r)
		}
		byInstance[r.Instance] = r
	}
	if len(byInstance) != 10 {
		t.Fatalf("want 10 serve records (3 workloads x 2 paths + 2 fast pairs), got %d", len(byInstance))
	}
	for _, workload := range []string{"dist", "dualsssp", "maxflow"} {
		var cold, prep *Record
		for inst, r := range byInstance {
			r := r
			if strings.HasPrefix(inst, workload+"-") {
				if strings.HasSuffix(inst, ":cold") {
					cold = &r
				} else if strings.HasSuffix(inst, ":prepared") {
					prep = &r
				}
			}
		}
		if cold == nil || prep == nil {
			t.Fatalf("workload %s missing cold/prepared records", workload)
		}
		if prep.Rounds >= cold.Rounds {
			t.Fatalf("%s: prepared rounds %d not below cold %d", workload, prep.Rounds, cold.Rounds)
		}
		if prep.Queries != serveQueries {
			t.Fatalf("%s: queries=%d want %d", workload, prep.Queries, serveQueries)
		}
	}
	for inst, r := range byInstance {
		if strings.HasPrefix(inst, "dist-") && strings.HasSuffix(inst, ":prepared") && r.Speedup < 5 {
			t.Fatalf("dist amortized speedup %.2f below 5x", r.Speedup)
		}
	}
	for _, workload := range []string{"dist", "dualsssp"} {
		var fast *Record
		for inst, r := range byInstance {
			r := r
			if strings.HasPrefix(inst, workload+"-") && strings.HasSuffix(inst, ":fast") {
				fast = &r
			}
		}
		if fast == nil {
			t.Fatalf("workload %s missing :fast record", workload)
		}
		if fast.Speedup < serveFastFloor(false) {
			t.Fatalf("%s: fast-path qps ratio %.2f below smoke floor %.0f",
				workload, fast.Speedup, serveFastFloor(false))
		}
	}
}

// TestSmokeBaselineRoundTrip writes a baseline from a SCHED run, verifies a
// second identical run passes against it, and that a doctored baseline is
// flagged as a regression (exit code 1).
func TestSmokeBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cmdtest.RunMain(t, "-exp", "sched", "-write-baseline", base)
	out := cmdtest.RunMain(t, "-exp", "sched", "-baseline", base)
	cmdtest.ExpectMarkers(t, out, "no round-count regressions")

	b, err := loadBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Points) == 0 {
		t.Fatal("baseline carries no trajectory points")
	}
	for k := range b.Records {
		b.Records[k] = 1 // everything becomes a regression
	}
	if regs := compare(b, b.Points, 0); regs == 0 {
		t.Fatal("doctored baseline not flagged as regression")
	}
}
