package main

// Reproducible-run reporting: every experiment instance emits one Record,
// which the sink fans out to the console table, a CSV file, a JSONL file
// (one JSON object per line), and the baseline comparator. The CSV/JSONL
// schema is documented in EXPERIMENTS.md.

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Record is one experiment run on one instance.
type Record struct {
	Exp      string  `json:"exp"`             // experiment id (E1..E10, SCHED, SERVE)
	Instance string  `json:"instance"`        // instance label, e.g. "a:grid12x12"
	N        int     `json:"n"`               // vertices
	D        int     `json:"d"`               // hop diameter (lower bound for random families)
	Rounds   int64   `json:"rounds"`          // total simulated CONGEST rounds
	Measured int64   `json:"measured_rounds"` // rounds counted by the engine
	Charged  int64   `json:"charged_rounds"`  // rounds derived by pipelining bounds
	Messages int64   `json:"messages"`        // engine messages delivered (engine-level experiments only)
	Bits     int64   `json:"bits"`            // engine payload bits delivered (engine-level experiments only)
	WallMS   float64 `json:"wall_ms"`         // host wall-clock of the run
	Repeat   int     `json:"repeat"`          // 0-based repeat index
	Seed     int64   `json:"seed"`            // RNG seed the repeat ran with
	OK       bool    `json:"ok"`              // experiment-specific correctness check

	// Serving metrics (SERVE and TRAFFIC experiments).
	Queries int     `json:"queries,omitempty"`   // number of queries in the batch
	Speedup float64 `json:"speedup_x,omitempty"` // cold rounds / prepared rounds
	QPS     float64 `json:"qps,omitempty"`       // wall-clock queries per second

	// Traffic metrics (TRAFFIC and BATCH experiments).
	Clients   int     `json:"clients,omitempty"`   // concurrent clients driving the daemon
	HitRate   float64 `json:"hit_rate,omitempty"`  // store hits / (hits + misses)
	Evictions int64   `json:"evictions,omitempty"` // bundles evicted under the budget
	P50MS     float64 `json:"p50_ms,omitempty"`    // median request latency
	P99MS     float64 `json:"p99_ms,omitempty"`    // tail request latency

	// Batch metrics (BATCH experiment only).
	Batch int `json:"batch,omitempty"` // queries per request (0 = singleton path)

	// Per-phase mean wall per request (TRAFFIC and BATCH; snapshot deltas
	// of the daemon's flowd_phase_seconds histograms over the measured
	// window). Exec is inclusive of Build — the split tells build-heavy
	// churn from decode-heavy steady state.
	PhaseDecodeMS  float64 `json:"phase_decode_ms,omitempty"`
	PhaseAcquireMS float64 `json:"phase_acquire_ms,omitempty"`
	PhaseBuildMS   float64 `json:"phase_build_ms,omitempty"`
	PhaseExecMS    float64 `json:"phase_exec_ms,omitempty"`
	PhaseEncodeMS  float64 `json:"phase_encode_ms,omitempty"`

	// Persistence metrics (COLDSTART experiment only).
	BuildMS   float64 `json:"build_ms,omitempty"`   // wall-clock to build all substrates cold
	RestoreMS float64 `json:"restore_ms,omitempty"` // wall-clock to restore them from a snapshot

	// Fleet metrics (FLEET experiment only).
	Replicas     int   `json:"replicas,omitempty"`      // fleet size the run started with
	Failovers    int64 `json:"failovers,omitempty"`     // requests re-routed after a replica kill
	PeerRestores int64 `json:"peer_restores,omitempty"` // survivor bundles restored over the snapshot stream
	Rebuilds     int64 `json:"rebuilds,omitempty"`      // survivor substrate builds after the kill (gated == 0)
	TraceHops    int   `json:"trace_hops,omitempty"`    // distinct hops in the stitched adopt trace (gated >= 2)
}

// key identifies a record across runs for baseline comparison. Wall-clock
// and seeds stay out: the key must be stable for identical configurations.
func (r Record) key() string {
	return fmt.Sprintf("%s/%s/r%d", r.Exp, r.Instance, r.Repeat)
}

// sink fans records out to the enabled outputs.
type sink struct {
	records []Record

	csvW   *csv.Writer
	csvF   *os.File
	jsonlW *bufio.Writer
	jsonlF *os.File
	enc    *json.Encoder
}

var csvHeader = []string{
	"exp", "instance", "n", "d", "rounds", "measured_rounds", "charged_rounds",
	"messages", "bits", "wall_ms", "repeat", "seed", "ok",
	"queries", "speedup_x", "qps",
	"clients", "hit_rate", "evictions", "p50_ms", "p99_ms", "batch",
	"build_ms", "restore_ms",
	"phase_decode_ms", "phase_acquire_ms", "phase_build_ms", "phase_exec_ms", "phase_encode_ms",
	"replicas", "failovers", "peer_restores", "rebuilds", "trace_hops",
}

func newSink(csvPath, jsonlPath string) (*sink, error) {
	s := &sink{}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return nil, err
		}
		s.csvF = f
		s.csvW = csv.NewWriter(f)
		if err := s.csvW.Write(csvHeader); err != nil {
			return nil, err
		}
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return nil, err
		}
		s.jsonlF = f
		s.jsonlW = bufio.NewWriter(f)
		s.enc = json.NewEncoder(s.jsonlW)
	}
	return s, nil
}

func (s *sink) add(r Record) {
	s.records = append(s.records, r)
	if s.csvW != nil {
		s.csvW.Write([]string{
			r.Exp, r.Instance, strconv.Itoa(r.N), strconv.Itoa(r.D),
			strconv.FormatInt(r.Rounds, 10), strconv.FormatInt(r.Measured, 10),
			strconv.FormatInt(r.Charged, 10), strconv.FormatInt(r.Messages, 10),
			strconv.FormatInt(r.Bits, 10), strconv.FormatFloat(r.WallMS, 'f', 3, 64),
			strconv.Itoa(r.Repeat), strconv.FormatInt(r.Seed, 10), strconv.FormatBool(r.OK),
			strconv.Itoa(r.Queries), strconv.FormatFloat(r.Speedup, 'f', 2, 64),
			strconv.FormatFloat(r.QPS, 'f', 2, 64),
			strconv.Itoa(r.Clients), strconv.FormatFloat(r.HitRate, 'f', 4, 64),
			strconv.FormatInt(r.Evictions, 10),
			strconv.FormatFloat(r.P50MS, 'f', 3, 64), strconv.FormatFloat(r.P99MS, 'f', 3, 64),
			strconv.Itoa(r.Batch),
			strconv.FormatFloat(r.BuildMS, 'f', 3, 64), strconv.FormatFloat(r.RestoreMS, 'f', 3, 64),
			strconv.FormatFloat(r.PhaseDecodeMS, 'f', 4, 64), strconv.FormatFloat(r.PhaseAcquireMS, 'f', 4, 64),
			strconv.FormatFloat(r.PhaseBuildMS, 'f', 4, 64), strconv.FormatFloat(r.PhaseExecMS, 'f', 4, 64),
			strconv.FormatFloat(r.PhaseEncodeMS, 'f', 4, 64),
			strconv.Itoa(r.Replicas), strconv.FormatInt(r.Failovers, 10),
			strconv.FormatInt(r.PeerRestores, 10), strconv.FormatInt(r.Rebuilds, 10),
			strconv.Itoa(r.TraceHops),
		})
	}
	if s.enc != nil {
		s.enc.Encode(r)
	}
}

func (s *sink) close() error {
	var firstErr error
	if s.csvW != nil {
		s.csvW.Flush()
		if err := s.csvW.Error(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.csvF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.jsonlW != nil {
		if err := s.jsonlW.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.jsonlF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// baseline is the stored trajectory a run is diffed against: Records holds
// the per-key round counts the comparator uses, Points the full records of
// the run that produced them (wall-clock included) so successive baselines
// form a performance trajectory across commits.
type baseline struct {
	Schema  string           `json:"schema"`
	Records map[string]int64 `json:"records"` // key() -> rounds
	Points  []Record         `json:"points,omitempty"`
}

const baselineSchema = "flowbench-baseline/v1"

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	if b.Schema != baselineSchema {
		return nil, fmt.Errorf("baseline %s: unknown schema %q", path, b.Schema)
	}
	return &b, nil
}

func writeBaseline(path string, records []Record) error {
	b := baseline{Schema: baselineSchema, Records: map[string]int64{}, Points: records}
	for _, r := range records {
		b.Records[r.key()] = r.Rounds
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare diffs this run's records against a stored baseline and reports
// per-key round-count regressions beyond tol (fractional). Baseline keys
// absent from this run also count as regressions: an instance that stopped
// producing a record (e.g. the algorithm now errors out) is a lost result,
// not a pass. Returns the number of regressions.
func compare(b *baseline, records []Record, tol float64) int {
	regressions := 0
	keys := make([]string, 0, len(records))
	byKey := map[string]int64{}
	for _, r := range records {
		if _, dup := byKey[r.key()]; !dup {
			keys = append(keys, r.key())
		}
		byKey[r.key()] = r.Rounds
	}
	sort.Strings(keys)
	fmt.Println("\n## baseline comparison")
	for _, k := range keys {
		got := byKey[k]
		want, ok := b.Records[k]
		switch {
		case !ok:
			fmt.Printf("  NEW        %-40s rounds=%d\n", k, got)
		case float64(got) > float64(want)*(1+tol):
			regressions++
			fmt.Printf("  REGRESSION %-40s rounds=%d baseline=%d (+%.1f%%)\n",
				k, got, want, 100*(float64(got)/float64(want)-1))
		case got < want:
			fmt.Printf("  IMPROVED   %-40s rounds=%d baseline=%d (%.1f%%)\n",
				k, got, want, 100*(float64(got)/float64(want)-1))
		default:
			fmt.Printf("  OK         %-40s rounds=%d\n", k, got)
		}
	}
	missing := make([]string, 0)
	for k := range b.Records {
		if _, ok := byKey[k]; !ok {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	for _, k := range missing {
		regressions++
		fmt.Printf("  MISSING    %-40s (in baseline, not in this run)\n", k)
	}
	if regressions > 0 {
		fmt.Printf("%d round-count regression(s) vs baseline\n", regressions)
	} else {
		fmt.Println("no round-count regressions vs baseline")
	}
	return regressions
}
