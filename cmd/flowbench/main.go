// Command flowbench regenerates the paper's complexity claims as measured
// tables (experiments E1–E9 of DESIGN.md / EXPERIMENTS.md).
//
// Two sweeps recur. "Squares" grow n and D together (D ≈ 2√n): an Õ(D²)
// claim predicts rounds/(D²·log²n) stays roughly flat. "Fixed-D" holds the
// diameter constant while n grows: the paper's central point is that rounds
// depend on D, not n, so the rounds column should stay flat as n doubles.
//
// Usage:
//
//	flowbench -exp E1        # one experiment
//	flowbench -exp all       # everything (default)
//	flowbench -exp all -full # larger instances
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"planarflow/internal/bdd"
	"planarflow/internal/core"
	"planarflow/internal/duallabel"
	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E9 or all)")
	full := flag.Bool("full", false, "run larger instances")
	flag.Parse()
	known := map[string]func(bool){
		"E1": e1ExactFlow, "E2": e2ApproxFlow, "E3": e3GlobalCut,
		"E4": e4Girth, "E5": e5Labels, "E6": e6MinCut,
		"E7": e7PA, "E8": e8BDD, "E9": e9Crossover, "E10": e10GirthAblation,
	}
	if *exp == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
			known[id](*full)
		}
		return
	}
	fn, ok := known[strings.ToUpper(*exp)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	fn(*full)
}

func squares(full bool) [][2]int {
	if full {
		return [][2]int{{8, 8}, {12, 12}, {16, 16}, {20, 20}, {24, 24}}
	}
	return [][2]int{{6, 6}, {9, 9}, {12, 12}, {16, 16}}
}

// fixedD returns grids sharing hop diameter rows+cols-2 = 34 with n growing.
func fixedD(full bool) [][2]int {
	if full {
		return [][2]int{{3, 33}, {6, 30}, {12, 24}, {18, 18}}
	}
	return [][2]int{{3, 23}, {5, 21}, {9, 17}, {13, 13}}
}

// triSizes returns vertex counts for the low-diameter family (stacked
// triangulations have D = Θ(log n)), used to grow n while D stays small —
// the regime where "rounds depend on D, not n" is visible.
func triSizes(full bool) []int {
	if full {
		return []int{150, 300, 600, 1200, 2400}
	}
	return []int{100, 200, 400, 800}
}

func triangulation(n int) *planar.Graph {
	return planar.StackedTriangulation(n, rand.New(rand.NewSource(int64(n))))
}

func header(id, claim string, cols ...string) {
	fmt.Printf("\n## %s — %s\n", id, claim)
	for _, c := range cols {
		fmt.Printf("%13s", c)
	}
	fmt.Println()
}

func row(vals ...interface{}) {
	for _, v := range vals {
		switch x := v.(type) {
		case float64:
			fmt.Printf("%13.2f", x)
		default:
			fmt.Printf("%13v", x)
		}
	}
	fmt.Println()
}

func log2(n int) float64 { return math.Log2(float64(n)) }

func e1ExactFlow(full bool) {
	rng := rand.New(rand.NewSource(1))
	runOne := func(a [2]int) (int, int64, int64, bool) {
		g := planar.Grid(a[0], a[1])
		g = planar.WithRandomWeights(g, rng, 1, 1, 1, 64)
		s, t := 0, g.N()-1
		led := ledger.New()
		res, err := core.MaxFlow(g, s, t, core.Options{}, led)
		if err != nil {
			fmt.Println("error:", err)
			return 0, 0, 0, false
		}
		ok := res.Value == core.DinicValue(g, s, t) &&
			core.CheckFlow(g, s, t, res.Flow, res.Value) == nil
		return a[0] + a[1] - 2, led.Total(), res.Value, ok
	}
	header("E1a", "Thm 1.2 (growing D): rounds/(D² log²n) stays flat",
		"grid", "n", "D", "rounds", "r/(D²lg²n)", "value", "==dinic")
	for _, a := range squares(full) {
		n := a[0] * a[1]
		d, rounds, val, ok := runOne(a)
		row(fmt.Sprintf("%dx%d", a[0], a[1]), n, d, rounds,
			float64(rounds)/(float64(d*d)*log2(n)*log2(n)), val, ok)
	}
	header("E1b", "Thm 1.2 (low D, growing n): rounds track D, not n",
		"graph", "n", "D", "rounds", "rounds/n", "value", "==dinic")
	for _, n := range triSizes(full) {
		g := planar.WithRandomWeights(triangulation(n), rng, 1, 1, 1, 64)
		g = planar.WithRandomDirections(g, rng)
		s, t := 0, g.N()-1
		led := ledger.New()
		res, err := core.MaxFlow(g, s, t, core.Options{}, led)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		ok := res.Value == core.DinicValue(g, s, t) &&
			core.CheckFlow(g, s, t, res.Flow, res.Value) == nil
		row(fmt.Sprintf("tri%d", n), n, g.DiameterLowerBound(), led.Total(),
			float64(led.Total())/float64(n), res.Value, ok)
	}
}

func e2ApproxFlow(full bool) {
	header("E2", "Thm 1.3: (1-eps) st-planar flow in D·n^{o(1)} rounds",
		"grid", "n", "D", "rounds", "rounds/D", "val/opt", "feasible")
	rng := rand.New(rand.NewSource(2))
	const eps = 0.1
	for _, a := range append(squares(full), fixedD(full)...) {
		g := planar.Grid(a[0], a[1])
		g = planar.WithRandomWeights(g, rng, 1, 1, 100, 1000)
		s, t := 0, g.N()-1
		led := ledger.New()
		res, err := core.STPlanarMaxFlow(g, s, t, eps, led)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		d := a[0] + a[1] - 2
		opt := core.UndirectedDinicValue(g, s, t)
		feas := core.CheckUndirectedFlow(g, s, t, res.Flow, res.Value) == nil
		row(fmt.Sprintf("%dx%d", a[0], a[1]), g.N(), d, led.Total(),
			float64(led.Total())/float64(d),
			float64(res.Value)/float64(opt), feas)
	}
}

func e3GlobalCut(full bool) {
	header("E3", "Thm 1.5: directed global min cut in Õ(D²) rounds",
		"graph", "n", "D", "rounds", "r/(D²lg²n)", "value", "==base")
	rng := rand.New(rand.NewSource(3))
	for _, a := range squares(full) {
		g := planar.BoustrophedonGrid(a[0], a[1])
		g = planar.WithRandomWeights(g, rng, 1, 40, 1, 1)
		led := ledger.New()
		res, err := core.GlobalMinCut(g, core.Options{}, led)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		d := a[0] + a[1] - 2
		check := "-"
		if g.N() <= 200 {
			us, vs, ws := triples(g)
			check = fmt.Sprint(res.Value == spath.DirectedGlobalMinCut(g.N(), us, vs, ws))
		}
		n := g.N()
		row(fmt.Sprintf("%dx%d", a[0], a[1]), n, d, led.Total(),
			float64(led.Total())/(float64(d*d)*log2(n)*log2(n)), res.Value, check)
	}
}

func e4Girth(full bool) {
	rng := rand.New(rand.NewSource(4))
	runOne := func(a [2]int) (int, int64, int64) {
		g := planar.Grid(a[0], a[1])
		g = planar.WithRandomWeights(g, rng, 1, 1000000, 1, 1)
		led := ledger.New()
		res, err := core.Girth(g, led)
		if err != nil {
			fmt.Println("error:", err)
			return 0, 0, 0
		}
		return a[0] + a[1] - 2, led.Total(), res.Weight
	}
	header("E4a", "Thm 1.7 (growing D): girth rounds/(D·lg²n) flat — Õ(D), not Õ(D²)",
		"grid", "n", "D", "rounds", "r/(D·lg²n)", "r/D²", "girth")
	for _, a := range squares(full) {
		n := a[0] * a[1]
		d, rounds, w := runOne(a)
		row(fmt.Sprintf("%dx%d", a[0], a[1]), n, d, rounds,
			float64(rounds)/(float64(d)*log2(n)*log2(n)),
			float64(rounds)/float64(d*d), w)
	}
	header("E4b", "Thm 1.7 (low D, growing n): rounds track D, not n",
		"graph", "n", "D", "rounds", "rounds/n", "girth")
	for _, n := range triSizes(full) {
		g := planar.WithRandomWeights(triangulation(n), rng, 1, 1000000, 1, 1)
		led := ledger.New()
		res, err := core.Girth(g, led)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		row(fmt.Sprintf("tri%d", n), n, g.DiameterLowerBound(), led.Total(),
			float64(led.Total())/float64(n), res.Weight)
	}
}

func e5Labels(full bool) {
	rng := rand.New(rand.NewSource(5))
	runOne := func(a [2]int) (int, int64, int) {
		g := planar.Grid(a[0], a[1])
		lens := make([]int64, g.NumDarts())
		for d := range lens {
			lens[d] = 1 + rng.Int63n(64)
		}
		led := ledger.New()
		tree := bdd.Build(g, 0, led)
		la := duallabel.Compute(tree, lens, led)
		if la.NegCycle {
			fmt.Println("unexpected negative cycle")
			return 0, 0, 0
		}
		maxWords := 0
		for f := 0; f < g.Faces().NumFaces(); f++ {
			if w := la.RootLabel(f).Words(); w > maxWords {
				maxWords = w
			}
		}
		return a[0] + a[1] - 2, led.Total(), maxWords
	}
	header("E5a", "Thm 2.1 (growing D): labels Õ(D) words, Õ(D²) rounds",
		"grid", "n", "D", "rounds", "r/(D²lg²n)", "maxWords", "words/D")
	for _, a := range squares(full) {
		n := a[0] * a[1]
		d, rounds, w := runOne(a)
		row(fmt.Sprintf("%dx%d", a[0], a[1]), n, d, rounds,
			float64(rounds)/(float64(d*d)*log2(n)*log2(n)), w, float64(w)/float64(d))
	}
	header("E5b", "Thm 2.1 (low D, growing n): label words track D, not n",
		"graph", "n", "D", "rounds", "maxWords", "words/n")
	for _, n := range triSizes(full) {
		g := triangulation(n)
		lens := make([]int64, g.NumDarts())
		for d := range lens {
			lens[d] = 1 + rng.Int63n(64)
		}
		led := ledger.New()
		tree := bdd.Build(g, 0, led)
		la := duallabel.Compute(tree, lens, led)
		if la.NegCycle {
			fmt.Println("unexpected negative cycle")
			continue
		}
		maxWords := 0
		for f := 0; f < g.Faces().NumFaces(); f++ {
			if w := la.RootLabel(f).Words(); w > maxWords {
				maxWords = w
			}
		}
		row(fmt.Sprintf("tri%d", n), n, g.DiameterLowerBound(), led.Total(),
			maxWords, float64(maxWords)/float64(n))
	}
}

func e6MinCut(full bool) {
	header("E6", "Thm 6.1/6.2: min st-cut equals max st-flow",
		"grid", "n", "exact cut", "exact flow", "eq", "apx cut", "apx==opt")
	rng := rand.New(rand.NewSource(6))
	for _, a := range squares(full) {
		g := planar.Grid(a[0], a[1])
		g = planar.WithRandomWeights(g, rng, 1, 1, 1, 32)
		s, t := 0, g.N()-1
		cut, err := core.MinSTCut(g, s, t, core.Options{}, ledger.New())
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fv := core.DinicValue(g, s, t)
		apx, err := core.STPlanarMinCut(g, s, t, 0, ledger.New())
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		row(fmt.Sprintf("%dx%d", a[0], a[1]), g.N(), cut.Value, fv,
			cut.Value == fv, apx.Value, apx.Value == core.UndirectedDinicValue(g, s, t))
	}
}

func e7PA(full bool) {
	header("E7", "Cor 4.6/Thm 4.10: faces-as-parts PA on G* in Õ(D) rounds",
		"grid", "n", "faces", "D", "rounds", "congest", "dilate", "rounds/D")
	for _, a := range append(squares(full), fixedD(full)...) {
		g := planar.Grid(a[0], a[1])
		h := hatg.New(g)
		net := pa.FromHatG(h)
		tree := pa.BuildTree(net, 0)
		nf := g.Faces().NumFaces()
		parts := pa.Parts{Of: make([]int, h.N()), Num: nf}
		input := make([]int64, h.N())
		for x := 0; x < h.N(); x++ {
			parts.Of[x] = -1
			if !h.IsStarCenter(x) {
				parts.Of[x] = h.FaceOfCopy(x)
				input[x] = 1
			}
		}
		res := pa.Aggregate(net, tree, parts, input, pa.Sum)
		d := a[0] + a[1] - 2
		row(fmt.Sprintf("%dx%d", a[0], a[1]), g.N(), nf, d, 2*res.Rounds,
			res.Congestion, res.Dilation, float64(2*res.Rounds)/float64(d))
	}
}

func e8BDD(full bool) {
	header("E8", "Lem 5.1/Thm 5.2: BDD structure (depth, S_X, F_X, face-parts)",
		"graph", "n", "D", "depth", "maxSX", "maxFX", "faceparts", "lg(n)")
	rng := rand.New(rand.NewSource(8))
	type gcase struct {
		name string
		g    *planar.Graph
	}
	var cases []gcase
	for _, a := range append(squares(full), fixedD(full)...) {
		cases = append(cases, gcase{fmt.Sprintf("grid%dx%d", a[0], a[1]), planar.Grid(a[0], a[1])})
	}
	cases = append(cases,
		gcase{"stack300", planar.StackedTriangulation(300, rng)},
		gcase{"nested50", planar.NestedTriangles(50)})
	for _, c := range cases {
		// Fixed small leaf limit so the full logarithmic depth is visible.
		tree := bdd.Build(c.g, 16, ledger.New())
		d := c.g.DiameterLowerBound()
		row(c.name, c.g.N(), d, tree.Depth, tree.MaxSXSize(), tree.MaxFX(),
			tree.MaxFaceParts(), log2(c.g.N()))
	}
}

func e9Crossover(full bool) {
	header("E9", "planar Õ(D²) vs general-graph Õ(√n+D) [16] at low D (modeled)",
		"graph", "n", "D", "planar", "general", "winner", "n*xover")
	rng := rand.New(rand.NewSource(9))
	for _, n := range triSizes(full) {
		g := planar.WithRandomWeights(triangulation(n), rng, 1, 1, 1, 16)
		led := ledger.New()
		if _, err := core.MaxFlow(g, 0, g.N()-1, core.Options{}, led); err != nil {
			fmt.Println("error:", err)
			continue
		}
		d := g.DiameterLowerBound()
		general := func(nn float64) float64 {
			l := math.Log2(nn)
			return (math.Sqrt(nn) + float64(d)) * l * l
		}
		ours := led.Total()
		winner := "planar"
		if int64(general(float64(n))) < ours {
			winner = "general"
		}
		// Planar rounds are ~flat in n at fixed D; find n* where the
		// general-graph bound overtakes the measured planar cost.
		nx := float64(n)
		for nx < 1e12 && general(nx) < float64(ours) {
			nx *= 2
		}
		row(fmt.Sprintf("tri%d", n), n, d, ours,
			int64(general(float64(n))), winner, fmt.Sprintf("%.0e", nx))
	}
}

func e10GirthAblation(full bool) {
	header("E10", "Question 1.6 ablation: girth via dual cut Õ(D) vs SSSP route [36] Õ(D²)",
		"grid", "n", "D", "dualcut", "ssspRoute", "ratio")
	rng := rand.New(rand.NewSource(10))
	for _, a := range squares(full) {
		gU := planar.WithRandomWeights(planar.Grid(a[0], a[1]), rng, 1, 100, 1, 1)
		ledA := ledger.New()
		if _, err := core.Girth(gU, ledA); err != nil {
			fmt.Println("error:", err)
			continue
		}
		gD := planar.BoustrophedonGrid(a[0], a[1])
		gD = gD.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
			old.Weight = 1 + rng.Int63n(100)
			return old
		})
		ledB := ledger.New()
		if _, err := core.DirectedGirth(gD, core.Options{}, ledB); err != nil {
			fmt.Println("error:", err)
			continue
		}
		d := a[0] + a[1] - 2
		row(fmt.Sprintf("%dx%d", a[0], a[1]), a[0]*a[1], d, ledA.Total(), ledB.Total(),
			float64(ledB.Total())/float64(ledA.Total()))
	}
}

func triples(g *planar.Graph) ([]int, []int, []int64) {
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	return us, vs, ws
}
