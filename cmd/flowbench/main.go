// Command flowbench regenerates the paper's complexity claims as measured
// tables (experiments E1–E10 of DESIGN.md / EXPERIMENTS.md) and doubles as
// a reproducible experiment runner: every instance run emits one Record to
// optional CSV/JSONL sinks, runs can be repeated over derived seeds, and a
// run can be diffed against a stored baseline to flag round-count
// regressions.
//
// Two sweeps recur. "Squares" grow n and D together (D ≈ 2√n): an Õ(D²)
// claim predicts rounds/(D²·log²n) stays roughly flat. "Fixed-D" holds the
// diameter constant while n grows: the paper's central point is that rounds
// depend on D, not n, so the rounds column should stay flat as n doubles.
//
// Usage:
//
//	flowbench -exp E1                          # one experiment
//	flowbench -exp all                         # everything (default)
//	flowbench -exp all -full                   # larger instances
//	flowbench -exp E1 -repeats 3 -jsonl out.jsonl -csv out.csv
//	flowbench -exp sched -write-baseline BENCH_sched.json
//	flowbench -exp sched -baseline BENCH_sched.json   # exit 1 on regression
//	flowbench -exp serve -full -baseline BENCH_serve.json  # serving gate
//	flowbench -exp traffic -baseline BENCH_traffic_smoke.json -require-ok  # fleet gate
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"planarflow/internal/artifact"
	"planarflow/internal/bdd"
	"planarflow/internal/congest"
	"planarflow/internal/core"
	"planarflow/internal/duallabel"
	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// cfg is the shared run configuration handed to every experiment.
type cfg struct {
	full    bool
	repeats int
	seed    int64 // 0 = use the experiment's traditional seed
}

// seedFor derives the RNG seed of one repeat: repeat 0 with the default
// seed uses each experiment's traditional base seed, so a given
// (exp, repeats, seed) configuration is fully reproducible.
func (c cfg) seedFor(traditional int64, rep int) int64 {
	base := traditional
	if c.seed != 0 {
		base = c.seed
	}
	return base + int64(rep)*1000
}

type experiment func(s *sink, c cfg)

var experiments = []struct {
	id string
	fn experiment
}{
	{"E1", e1ExactFlow}, {"E2", e2ApproxFlow}, {"E3", e3GlobalCut},
	{"E4", e4Girth}, {"E5", e5Labels}, {"E6", e6MinCut},
	{"E7", e7PA}, {"E8", e8BDD}, {"E9", e9Crossover}, {"E10", e10GirthAblation},
	{"SCHED", schedBench}, {"SERVE", serveBench}, {"TRAFFIC", trafficBench},
	{"BATCH", batchBench}, {"COLDSTART", coldstartBench}, {"FLEET", fleetBench},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E10, SCHED, SERVE, TRAFFIC, BATCH, COLDSTART, FLEET, or all)")
	full := flag.Bool("full", false, "run larger instances")
	repeats := flag.Int("repeats", 1, "repeat each experiment with derived seeds")
	csvPath := flag.String("csv", "", "write one CSV row per instance run")
	jsonlPath := flag.String("jsonl", "", "write one JSON object per instance run")
	basePath := flag.String("baseline", "", "diff run against this baseline JSON; exit 1 on regression")
	writeBase := flag.String("write-baseline", "", "store this run's rounds as a baseline JSON")
	tol := flag.Float64("tol", 0, "fractional rounds tolerance for -baseline comparison")
	seed := flag.Int64("seed", 0, "override base RNG seed (0 = per-experiment default)")
	requireOK := flag.Bool("require-ok", false, "exit 1 if any record's correctness check failed (gates wall-clock-dependent experiments whose rounds are not comparable)")
	flag.Parse()

	if *repeats < 1 {
		*repeats = 1
	}
	s, err := newSink(*csvPath, *jsonlPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c := cfg{full: *full, repeats: *repeats, seed: *seed}

	ran := false
	for _, e := range experiments {
		if strings.EqualFold(*exp, "all") || strings.EqualFold(*exp, e.id) {
			e.fn(s, c)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	// Flush the sinks before any baseline handling can exit: the run's
	// records must survive even if the baseline file is bad.
	if err := s.close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Compare before writing: passing the same file to -baseline and
	// -write-baseline gates against the old trajectory point, then
	// refreshes it.
	regressions := 0
	if *requireOK {
		for _, r := range s.records {
			if !r.OK {
				regressions++
				fmt.Fprintf(os.Stderr, "NOT-OK %s/%s/r%d\n", r.Exp, r.Instance, r.Repeat)
			}
		}
	}
	if *basePath != "" {
		b, err := loadBaseline(*basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		regressions += compare(b, s.records, *tol)
	}
	if *writeBase != "" {
		if err := writeBaseline(*writeBase, s.records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("\nbaseline written to %s (%d records)\n", *writeBase, len(s.records))
	}
	if regressions > 0 {
		os.Exit(1)
	}
}

func squares(full bool) [][2]int {
	if full {
		return [][2]int{{8, 8}, {12, 12}, {16, 16}, {20, 20}, {24, 24}}
	}
	return [][2]int{{6, 6}, {9, 9}, {12, 12}, {16, 16}}
}

// fixedD returns grids sharing hop diameter rows+cols-2 = 34 with n growing.
func fixedD(full bool) [][2]int {
	if full {
		return [][2]int{{3, 33}, {6, 30}, {12, 24}, {18, 18}}
	}
	return [][2]int{{3, 23}, {5, 21}, {9, 17}, {13, 13}}
}

// triSizes returns vertex counts for the low-diameter family (stacked
// triangulations have D = Θ(log n)), used to grow n while D stays small —
// the regime where "rounds depend on D, not n" is visible.
func triSizes(full bool) []int {
	if full {
		return []int{150, 300, 600, 1200, 2400}
	}
	return []int{100, 200, 400, 800}
}

func triangulation(n int, rng *rand.Rand) *planar.Graph {
	return planar.StackedTriangulation(n, rng)
}

func header(rep int, id, claim string, cols ...string) {
	if rep != 0 {
		return
	}
	fmt.Printf("\n## %s — %s\n", id, claim)
	for _, c := range cols {
		fmt.Printf("%13s", c)
	}
	fmt.Println()
}

func row(rep int, vals ...interface{}) {
	if rep != 0 {
		return
	}
	for _, v := range vals {
		switch x := v.(type) {
		case float64:
			fmt.Printf("%13.2f", x)
		default:
			fmt.Printf("%13v", x)
		}
	}
	fmt.Println()
}

func log2(n int) float64 { return math.Log2(float64(n)) }

// record fills the ledger-derived fields shared by all core experiments.
func record(exp, instance string, n, d int, led *ledger.Ledger, start time.Time, rep int, seed int64, ok bool) Record {
	m, ch := led.Split()
	return Record{
		Exp: exp, Instance: instance, N: n, D: d,
		Rounds: led.Total(), Measured: m, Charged: ch,
		WallMS: float64(time.Since(start).Microseconds()) / 1000,
		Repeat: rep, Seed: seed, OK: ok,
	}
}

func e1ExactFlow(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(1, rep)
		rng := planar.NewRand(seed)
		header(rep, "E1a", "Thm 1.2 (growing D): rounds/(D² log²n) stays flat",
			"grid", "n", "D", "rounds", "r/(D²lg²n)", "value", "==dinic")
		for _, a := range squares(c.full) {
			g := planar.Grid(a[0], a[1])
			g = planar.WithRandomWeights(g, rng, 1, 1, 1, 64)
			st, t := 0, g.N()-1
			led := ledger.New()
			begin := time.Now()
			res, err := core.MaxFlow(artifact.New(g), st, t, core.Options{}, led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			ok := res.Value == core.DinicValue(g, st, t) &&
				core.CheckFlow(g, st, t, res.Flow, res.Value) == nil
			n, d := g.N(), a[0]+a[1]-2
			s.add(record("E1", fmt.Sprintf("a:grid%dx%d", a[0], a[1]), n, d, led, begin, rep, seed, ok))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), n, d, led.Total(),
				float64(led.Total())/(float64(d*d)*log2(n)*log2(n)), res.Value, ok)
		}
		header(rep, "E1b", "Thm 1.2 (low D, growing n): rounds track D, not n",
			"graph", "n", "D", "rounds", "rounds/n", "value", "==dinic")
		for _, n := range triSizes(c.full) {
			g := planar.WithRandomWeights(triangulation(n, rng), rng, 1, 1, 1, 64)
			g = planar.WithRandomDirections(g, rng)
			st, t := 0, g.N()-1
			led := ledger.New()
			begin := time.Now()
			res, err := core.MaxFlow(artifact.New(g), st, t, core.Options{}, led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			ok := res.Value == core.DinicValue(g, st, t) &&
				core.CheckFlow(g, st, t, res.Flow, res.Value) == nil
			d := g.DiameterLowerBound()
			s.add(record("E1", fmt.Sprintf("b:tri%d", n), n, d, led, begin, rep, seed, ok))
			row(rep, fmt.Sprintf("tri%d", n), n, d, led.Total(),
				float64(led.Total())/float64(n), res.Value, ok)
		}
	}
}

func e2ApproxFlow(s *sink, c cfg) {
	const eps = 0.1
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(2, rep)
		rng := planar.NewRand(seed)
		header(rep, "E2", "Thm 1.3: (1-eps) st-planar flow in D·n^{o(1)} rounds",
			"grid", "n", "D", "rounds", "rounds/D", "val/opt", "feasible")
		for _, a := range append(squares(c.full), fixedD(c.full)...) {
			g := planar.Grid(a[0], a[1])
			g = planar.WithRandomWeights(g, rng, 1, 1, 100, 1000)
			st, t := 0, g.N()-1
			led := ledger.New()
			begin := time.Now()
			res, err := core.STPlanarMaxFlow(artifact.New(g), st, t, eps, led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			d := a[0] + a[1] - 2
			opt := core.UndirectedDinicValue(g, st, t)
			feas := core.CheckUndirectedFlow(g, st, t, res.Flow, res.Value) == nil
			ok := feas && float64(res.Value) >= (1-eps)*float64(opt)
			s.add(record("E2", fmt.Sprintf("grid%dx%d", a[0], a[1]), g.N(), d, led, begin, rep, seed, ok))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), g.N(), d, led.Total(),
				float64(led.Total())/float64(d),
				float64(res.Value)/float64(opt), feas)
		}
	}
}

func e3GlobalCut(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(3, rep)
		rng := planar.NewRand(seed)
		header(rep, "E3", "Thm 1.5: directed global min cut in Õ(D²) rounds",
			"graph", "n", "D", "rounds", "r/(D²lg²n)", "value", "==base")
		for _, a := range squares(c.full) {
			g := planar.BoustrophedonGrid(a[0], a[1])
			g = planar.WithRandomWeights(g, rng, 1, 40, 1, 1)
			led := ledger.New()
			begin := time.Now()
			res, err := core.GlobalMinCut(artifact.New(g), core.Options{}, led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			d := a[0] + a[1] - 2
			check := "-"
			ok := true
			if g.N() <= 200 {
				us, vs, ws := triples(g)
				ok = res.Value == spath.DirectedGlobalMinCut(g.N(), us, vs, ws)
				check = fmt.Sprint(ok)
			}
			n := g.N()
			s.add(record("E3", fmt.Sprintf("snake%dx%d", a[0], a[1]), n, d, led, begin, rep, seed, ok))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), n, d, led.Total(),
				float64(led.Total())/(float64(d*d)*log2(n)*log2(n)), res.Value, check)
		}
	}
}

func e4Girth(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(4, rep)
		rng := planar.NewRand(seed)
		header(rep, "E4a", "Thm 1.7 (growing D): girth rounds/(D·lg²n) flat — Õ(D), not Õ(D²)",
			"grid", "n", "D", "rounds", "r/(D·lg²n)", "r/D²", "girth")
		for _, a := range squares(c.full) {
			g := planar.Grid(a[0], a[1])
			g = planar.WithRandomWeights(g, rng, 1, 1000000, 1, 1)
			led := ledger.New()
			begin := time.Now()
			res, err := core.Girth(artifact.New(g), led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			n, d := a[0]*a[1], a[0]+a[1]-2
			s.add(record("E4", fmt.Sprintf("a:grid%dx%d", a[0], a[1]), n, d, led, begin, rep, seed, res.Weight > 0))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), n, d, led.Total(),
				float64(led.Total())/(float64(d)*log2(n)*log2(n)),
				float64(led.Total())/float64(d*d), res.Weight)
		}
		header(rep, "E4b", "Thm 1.7 (low D, growing n): rounds track D, not n",
			"graph", "n", "D", "rounds", "rounds/n", "girth")
		for _, n := range triSizes(c.full) {
			g := planar.WithRandomWeights(triangulation(n, rng), rng, 1, 1000000, 1, 1)
			led := ledger.New()
			begin := time.Now()
			res, err := core.Girth(artifact.New(g), led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			d := g.DiameterLowerBound()
			s.add(record("E4", fmt.Sprintf("b:tri%d", n), n, d, led, begin, rep, seed, res.Weight > 0))
			row(rep, fmt.Sprintf("tri%d", n), n, d, led.Total(),
				float64(led.Total())/float64(n), res.Weight)
		}
	}
}

func e5Labels(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(5, rep)
		rng := planar.NewRand(seed)
		header(rep, "E5a", "Thm 2.1 (growing D): labels Õ(D) words, Õ(D²) rounds",
			"grid", "n", "D", "rounds", "r/(D²lg²n)", "maxWords", "words/D")
		for _, a := range squares(c.full) {
			g := planar.Grid(a[0], a[1])
			lens := make([]int64, g.NumDarts())
			for d := range lens {
				lens[d] = 1 + rng.Int64N(64)
			}
			led := ledger.New()
			begin := time.Now()
			tree := bdd.Build(g, 0, led)
			la := duallabel.Compute(tree, lens, led)
			if la.NegCycle {
				fmt.Println("unexpected negative cycle")
				continue
			}
			maxWords := 0
			for f := 0; f < g.Faces().NumFaces(); f++ {
				if w := la.RootLabel(f).Words(); w > maxWords {
					maxWords = w
				}
			}
			n, d := a[0]*a[1], a[0]+a[1]-2
			s.add(record("E5", fmt.Sprintf("a:grid%dx%d", a[0], a[1]), n, d, led, begin, rep, seed, true))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), n, d, led.Total(),
				float64(led.Total())/(float64(d*d)*log2(n)*log2(n)), maxWords, float64(maxWords)/float64(d))
		}
		header(rep, "E5b", "Thm 2.1 (low D, growing n): label words track D, not n",
			"graph", "n", "D", "rounds", "maxWords", "words/n")
		for _, n := range triSizes(c.full) {
			g := triangulation(n, rng)
			lens := make([]int64, g.NumDarts())
			for d := range lens {
				lens[d] = 1 + rng.Int64N(64)
			}
			led := ledger.New()
			begin := time.Now()
			tree := bdd.Build(g, 0, led)
			la := duallabel.Compute(tree, lens, led)
			if la.NegCycle {
				fmt.Println("unexpected negative cycle")
				continue
			}
			maxWords := 0
			for f := 0; f < g.Faces().NumFaces(); f++ {
				if w := la.RootLabel(f).Words(); w > maxWords {
					maxWords = w
				}
			}
			d := g.DiameterLowerBound()
			s.add(record("E5", fmt.Sprintf("b:tri%d", n), n, d, led, begin, rep, seed, true))
			row(rep, fmt.Sprintf("tri%d", n), n, d, led.Total(),
				maxWords, float64(maxWords)/float64(n))
		}
	}
}

func e6MinCut(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(6, rep)
		rng := planar.NewRand(seed)
		header(rep, "E6", "Thm 6.1/6.2: min st-cut equals max st-flow",
			"grid", "n", "exact cut", "exact flow", "eq", "apx cut", "apx==opt")
		for _, a := range squares(c.full) {
			g := planar.Grid(a[0], a[1])
			g = planar.WithRandomWeights(g, rng, 1, 1, 1, 32)
			st, t := 0, g.N()-1
			led := ledger.New()
			begin := time.Now()
			cut, err := core.MinSTCut(artifact.New(g), st, t, core.Options{}, led)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fv := core.DinicValue(g, st, t)
			apx, err := core.STPlanarMinCut(artifact.New(g), st, t, 0, ledger.New())
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			apxOK := apx.Value == core.UndirectedDinicValue(g, st, t)
			ok := cut.Value == fv && apxOK
			d := a[0] + a[1] - 2
			s.add(record("E6", fmt.Sprintf("grid%dx%d", a[0], a[1]), g.N(), d, led, begin, rep, seed, ok))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), g.N(), cut.Value, fv,
				cut.Value == fv, apx.Value, apxOK)
		}
	}
}

func e7PA(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(7, rep)
		header(rep, "E7", "Cor 4.6/Thm 4.10: faces-as-parts PA on G* in Õ(D) rounds",
			"grid", "n", "faces", "D", "rounds", "congest", "dilate", "rounds/D")
		for _, a := range append(squares(c.full), fixedD(c.full)...) {
			g := planar.Grid(a[0], a[1])
			begin := time.Now()
			h := hatg.New(g)
			net := pa.FromHatG(h)
			tree := pa.BuildTree(net, 0)
			nf := g.Faces().NumFaces()
			parts := pa.Parts{Of: make([]int, h.N()), Num: nf}
			input := make([]int64, h.N())
			for x := 0; x < h.N(); x++ {
				parts.Of[x] = -1
				if !h.IsStarCenter(x) {
					parts.Of[x] = h.FaceOfCopy(x)
					input[x] = 1
				}
			}
			res := pa.Aggregate(net, tree, parts, input, pa.Sum)
			d := a[0] + a[1] - 2
			rounds := int64(2 * res.Rounds)
			s.add(Record{
				Exp: "E7", Instance: fmt.Sprintf("grid%dx%d", a[0], a[1]),
				N: g.N(), D: d, Rounds: rounds, Measured: rounds,
				WallMS: float64(time.Since(begin).Microseconds()) / 1000,
				Repeat: rep, Seed: seed, OK: true,
			})
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), g.N(), nf, d, 2*res.Rounds,
				res.Congestion, res.Dilation, float64(2*res.Rounds)/float64(d))
		}
	}
}

func e8BDD(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(8, rep)
		rng := planar.NewRand(seed)
		header(rep, "E8", "Lem 5.1/Thm 5.2: BDD structure (depth, S_X, F_X, face-parts)",
			"graph", "n", "D", "depth", "maxSX", "maxFX", "faceparts", "lg(n)")
		type gcase struct {
			name string
			g    *planar.Graph
		}
		var cases []gcase
		for _, a := range append(squares(c.full), fixedD(c.full)...) {
			cases = append(cases, gcase{fmt.Sprintf("grid%dx%d", a[0], a[1]), planar.Grid(a[0], a[1])})
		}
		cases = append(cases,
			gcase{"stack300", planar.StackedTriangulation(300, rng)},
			gcase{"nested50", planar.NestedTriangles(50)})
		for _, gc := range cases {
			// Fixed small leaf limit so the full logarithmic depth is visible.
			led := ledger.New()
			begin := time.Now()
			tree := bdd.Build(gc.g, 16, led)
			d := gc.g.DiameterLowerBound()
			ok := float64(tree.Depth) <= 4*log2(gc.g.N())+8
			s.add(record("E8", gc.name, gc.g.N(), d, led, begin, rep, seed, ok))
			row(rep, gc.name, gc.g.N(), d, tree.Depth, tree.MaxSXSize(), tree.MaxFX(),
				tree.MaxFaceParts(), log2(gc.g.N()))
		}
	}
}

func e9Crossover(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(9, rep)
		rng := planar.NewRand(seed)
		header(rep, "E9", "planar Õ(D²) vs general-graph Õ(√n+D) [16] at low D (modeled)",
			"graph", "n", "D", "planar", "general", "winner", "n*xover")
		for _, n := range triSizes(c.full) {
			g := planar.WithRandomWeights(triangulation(n, rng), rng, 1, 1, 1, 16)
			led := ledger.New()
			begin := time.Now()
			if _, err := core.MaxFlow(artifact.New(g), 0, g.N()-1, core.Options{}, led); err != nil {
				fmt.Println("error:", err)
				continue
			}
			d := g.DiameterLowerBound()
			general := func(nn float64) float64 {
				l := math.Log2(nn)
				return (math.Sqrt(nn) + float64(d)) * l * l
			}
			ours := led.Total()
			winner := "planar"
			if int64(general(float64(n))) < ours {
				winner = "general"
			}
			// Planar rounds are ~flat in n at fixed D; find n* where the
			// general-graph bound overtakes the measured planar cost.
			nx := float64(n)
			for nx < 1e12 && general(nx) < float64(ours) {
				nx *= 2
			}
			s.add(record("E9", fmt.Sprintf("tri%d", n), n, d, led, begin, rep, seed, true))
			row(rep, fmt.Sprintf("tri%d", n), n, d, ours,
				int64(general(float64(n))), winner, fmt.Sprintf("%.0e", nx))
		}
	}
}

func e10GirthAblation(s *sink, c cfg) {
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(10, rep)
		rng := planar.NewRand(seed)
		header(rep, "E10", "Question 1.6 ablation: girth via dual cut Õ(D) vs SSSP route [36] Õ(D²)",
			"grid", "n", "D", "dualcut", "ssspRoute", "ratio")
		for _, a := range squares(c.full) {
			gU := planar.WithRandomWeights(planar.Grid(a[0], a[1]), rng, 1, 100, 1, 1)
			ledA := ledger.New()
			beginA := time.Now()
			if _, err := core.Girth(artifact.New(gU), ledA); err != nil {
				fmt.Println("error:", err)
				continue
			}
			d := a[0] + a[1] - 2
			s.add(record("E10", fmt.Sprintf("dualcut:grid%dx%d", a[0], a[1]), a[0]*a[1], d, ledA, beginA, rep, seed, true))
			gD := planar.BoustrophedonGrid(a[0], a[1])
			gD = gD.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
				old.Weight = 1 + rng.Int64N(100)
				return old
			})
			ledB := ledger.New()
			beginB := time.Now()
			if _, err := core.DirectedGirth(artifact.New(gD), core.Options{}, ledB); err != nil {
				fmt.Println("error:", err)
				continue
			}
			s.add(record("E10", fmt.Sprintf("sssp:snake%dx%d", a[0], a[1]), a[0]*a[1], d, ledB, beginB, rep, seed, true))
			row(rep, fmt.Sprintf("%dx%d", a[0], a[1]), a[0]*a[1], d, ledA.Total(), ledB.Total(),
				float64(ledB.Total())/float64(ledA.Total()))
		}
	}
}

// schedBench runs the engine-level workloads that measure the simulation
// substrate itself: BFS (sparse wavefront) and FloodMin (dense activity) on
// Grid(32,32), on both the flat-mailbox scheduler and the reference channel
// engine. Its records carry real engine Stats (messages, bits) and are the
// trajectory points stored in BENCH_sched.json.
func schedBench(s *sink, c cfg) {
	g := planar.Grid(32, 32)
	d := 32 + 32 - 2
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(0, rep)
		header(rep, "SCHED", "flat-mailbox scheduler vs channel engine on Grid(32,32)",
			"workload", "engine", "rounds", "messages", "bits", "wall_ms", "halted")
		type run struct {
			workload, engine string
			stats            congest.Stats
			wallMS           float64
		}
		var runs []run
		time1 := func(workload, engine string, fn func() congest.Stats) {
			begin := time.Now()
			st := fn()
			runs = append(runs, run{workload, engine, st, float64(time.Since(begin).Microseconds()) / 1000})
		}
		vals := make([]int64, g.N())
		for v := range vals {
			vals[v] = int64(g.N() - v)
		}
		time1("bfs", "sched", func() congest.Stats {
			_, st := congest.DistributedBFS(congest.NewEngine(g), 0)
			return st
		})
		time1("bfs", "chan", func() congest.Stats {
			_, st := congest.DistributedBFS(congest.NewChanEngine(g), 0)
			return st
		})
		time1("floodmin", "sched", func() congest.Stats {
			_, st := congest.FloodMin(congest.NewEngine(g), vals)
			return st
		})
		time1("floodmin", "chan", func() congest.Stats {
			_, st := congest.FloodMin(congest.NewChanEngine(g), vals)
			return st
		})
		// Each workload's two engines must agree exactly.
		agree := map[string]bool{}
		byKey := map[string]congest.Stats{}
		for _, r := range runs {
			byKey[r.workload+"/"+r.engine] = r.stats
		}
		for _, w := range []string{"bfs", "floodmin"} {
			agree[w] = byKey[w+"/sched"] == byKey[w+"/chan"]
		}
		for _, r := range runs {
			s.add(Record{
				Exp: "SCHED", Instance: r.workload + "-grid32x32:" + r.engine,
				N: g.N(), D: d,
				Rounds: int64(r.stats.Rounds), Measured: int64(r.stats.Rounds),
				Messages: r.stats.Messages, Bits: r.stats.Bits,
				WallMS: r.wallMS, Repeat: rep, Seed: seed,
				OK: agree[r.workload] && r.stats.Violations == 0 && r.stats.HaltedNormal,
			})
			row(rep, r.workload, r.engine, r.stats.Rounds, r.stats.Messages,
				r.stats.Bits, r.wallMS, r.stats.HaltedNormal)
		}
	}
}

func triples(g *planar.Graph) ([]int, []int, []int64) {
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	return us, vs, ws
}
