package main

import (
	"math"
	"sort"
)

// percentile returns the p-th percentile of samples by the nearest-rank
// method: the smallest element with at least a p fraction of the sample at
// or below it (p in (0, 1]; p <= 0 returns the minimum, an empty sample
// returns 0). The input is copied before sorting — the experiments reuse
// their latency slices after reporting, so the shared helper must not
// mutate the caller. This replaces two per-experiment helpers that sorted
// in place and floored the rank index, which collapsed p99 of small
// samples toward p50.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(p * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
