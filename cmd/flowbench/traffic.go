package main

// TRAFFIC experiment: fleet-level serving through the flowd daemon. A
// fresh daemon (in-process HTTP server over internal/store) is loaded
// with a working set of G same-size grids whose artifact footprint
// exceeds the store's memory budget, then driven by C concurrent clients
// issuing queries over a Zipf-distributed graph popularity — the shape of
// real multi-tenant traffic: a popular head that should stay resident and
// a long tail that churns through the eviction policy. Each (C) run
// records wall-clock throughput (qps), latency percentiles, the store's
// hit rate, and the eviction count; OK asserts the serving story the
// subsystem exists for: nonzero evictions (the budget is real), >= 80%
// hit rate at the default skew (the LRU keeps the head), a qps floor,
// and wire answers equal to in-process answers.
//
// The op mix is decode-heavy on purpose (dist 80%, dualdist 15%,
// dualsssp 5%): point queries cost nothing once labels are warm, so
// throughput measures the serving layer — registry, singleflight,
// eviction, HTTP — not the simulator.
//
// The :ssspsim/:ssspfast instance pair additionally exercises the decode
// engine under fleet traffic: the same dualsssp-heavy mix is served once
// with the wire's simulated escape hatch and once on the default decode
// route, each gated by the standard invariants plus a dualsssp
// wire-vs-library ground-truth check; the fast record carries the qps
// ratio over the simulated run as its Speedup trajectory point (HTTP
// overhead dominates per-request wall here, so the ratio is informative,
// not gated — the >= 100x engine gate lives in SERVE).

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"planarflow"
	"planarflow/internal/flowd"
	"planarflow/internal/planar"
	"planarflow/internal/store"
)

// trafficCfg sizes one TRAFFIC run.
type trafficCfg struct {
	graphs   int     // working-set size G
	side     int     // grid side (all graphs same size, different seeds)
	resident int     // budget in units of one graph's measured footprint
	skew     float64 // Zipf exponent over graph popularity ranks
	queries  int     // total queries per run (split across clients)
	qpsFloor float64 // OK threshold: generous, catches collapse not noise
}

func trafficSizes(full bool) trafficCfg {
	if full {
		return trafficCfg{graphs: 16, side: 10, resident: 8, skew: 1.3, queries: 1600, qpsFloor: 25}
	}
	return trafficCfg{graphs: 10, side: 6, resident: 6, skew: 1.3, queries: 480, qpsFloor: 25}
}

// zipfDist is a seeded sampler over ranks 0..n-1 with P(i) ∝ 1/(i+1)^s.
// (math/rand/v2 dropped rand.Zipf; a CDF inversion is all we need.)
type zipfDist struct{ cdf []float64 }

func newZipf(n int, s float64) *zipfDist {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfDist{cdf: cdf}
}

func (z *zipfDist) sample(rng *rand.Rand) int {
	return sort.SearchFloat64s(z.cdf, rng.Float64())
}

func trafficSpec(tc trafficCfg, seed int64, i int) store.GraphSpec {
	return store.GraphSpec{
		Kind: "grid", Rows: tc.side, Cols: tc.side,
		Seed: seed + int64(i), WLo: 1, WHi: 9, CLo: 1, CHi: 16,
	}
}

// trafficUnit measures the accounted footprint of one working-set graph
// after the op mix's substrates (primal + dual labelings) are warm — the
// unit the store budget is denominated in.
func trafficUnit(tc trafficCfg, seed int64) (int64, error) {
	g, err := trafficSpec(tc, seed, 0).Build()
	if err != nil {
		return 0, err
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		return 0, err
	}
	if _, err := p.Dist(0, g.N()-1); err != nil {
		return 0, err
	}
	if _, err := p.DualDist(0, 1); err != nil {
		return 0, err
	}
	return p.Stats().Bytes, nil
}

// trafficMix selects the op mix and execution route of one TRAFFIC run:
// cumulative probability thresholds for dist and dualdist (dualsssp gets
// the remainder) and whether dualsssp requests set the wire's simulated
// escape hatch.
type trafficMix struct {
	label       string // instance suffix; "" is the default serving mix
	distP, ddsP float64
	simulated   bool
}

var (
	trafficDefaultMix = trafficMix{distP: 0.80, ddsP: 0.95}
	// The fast-path gate pair: a dualsssp-heavy mix (40%) so the decode
	// engine — not the point-decode ops — carries the run.
	trafficSSSPSim  = trafficMix{label: "ssspsim", distP: 0.40, ddsP: 0.60, simulated: true}
	trafficSSSPFast = trafficMix{label: "ssspfast", distP: 0.40, ddsP: 0.60}
)

// trafficBench runs the TRAFFIC experiment: one daemon per client count,
// C=1 then C=8 on the default mix, then the simulated/fast dualsssp-heavy
// pair at C=8. Same working set and query budget throughout.
func trafficBench(s *sink, c cfg) {
	tc := trafficSizes(c.full)
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(30, rep)
		header(rep, "TRAFFIC", fmt.Sprintf(
			"flowd under Zipf(%.1f) traffic: G=%d grids %dx%d, budget %d/%d resident",
			tc.skew, tc.graphs, tc.side, tc.side, tc.resident, tc.graphs),
			"clients", "queries", "qps", "p50ms", "p99ms", "hitrate", "evict", "ok")
		emit := func(clients int, mix trafficMix, res *trafficResult, speedup float64) {
			inst := fmt.Sprintf("zipf%.1f-g%d-r%d:c%d", tc.skew, tc.graphs, tc.resident, clients)
			label := fmt.Sprint(clients)
			if mix.label != "" {
				inst += ":" + mix.label
				label += ":" + mix.label
			}
			s.add(Record{
				Exp:      "TRAFFIC",
				Instance: inst,
				N:        tc.side * tc.side, D: 2*tc.side - 2,
				WallMS: res.wallMS, Repeat: rep, Seed: seed, OK: res.ok,
				Queries: tc.queries, QPS: res.qps, Speedup: speedup,
				Clients: clients, HitRate: res.hitRate, Evictions: res.evictions,
				P50MS: res.p50, P99MS: res.p99,
			})
			row(rep, label, tc.queries, res.qps, res.p50, res.p99, res.hitRate,
				res.evictions, res.ok)
		}
		for _, clients := range []int{1, 8} {
			res, err := runTraffic(tc, seed, clients, trafficDefaultMix)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			emit(clients, trafficDefaultMix, res, 0)
		}
		sim, err := runTraffic(tc, seed, 8, trafficSSSPSim)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		emit(8, trafficSSSPSim, sim, 0)
		fast, err := runTraffic(tc, seed, 8, trafficSSSPFast)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		emit(8, trafficSSSPFast, fast, fast.qps/sim.qps)
	}
}

type trafficResult struct {
	qps, p50, p99, hitRate, wallMS float64
	evictions                      int64
	ok                             bool
}

func runTraffic(tc trafficCfg, seed int64, clients int, mix trafficMix) (*trafficResult, error) {
	unit, err := trafficUnit(tc, seed)
	if err != nil {
		return nil, err
	}
	st := store.New(store.Config{MaxBytes: int64(tc.resident)*unit + unit/2})
	hsrv := httptest.NewServer(flowd.NewServer(st))
	defer hsrv.Close()
	ctx := context.Background()
	cl := flowd.NewClient(hsrv.URL).WithHTTPClient(hsrv.Client())

	ids := make([]string, tc.graphs)
	var n, faces int
	for i := range ids {
		ids[i] = fmt.Sprintf("g%02d", i)
		reg, err := cl.Register(ctx, ids[i], trafficSpec(tc, seed, i))
		if err != nil {
			return nil, err
		}
		n, faces = reg.N, reg.Faces
	}

	// Wire-vs-library ground truth on the most popular graph.
	g0, err := trafficSpec(tc, seed, 0).Build()
	if err != nil {
		return nil, err
	}
	p0, err := planarflow.Prepare(g0)
	if err != nil {
		return nil, err
	}
	wantDist, err := p0.Dist(0, n-1)
	if err != nil {
		return nil, err
	}
	wantSSSP, err := p0.DualSSSP(0)
	if err != nil {
		return nil, err
	}

	z := newZipf(tc.graphs, tc.skew)
	perClient := tc.queries / clients
	lat := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := planar.NewRand(seed + 1000*int64(w+1))
			lat[w] = make([]float64, 0, perClient)
			for q := 0; q < perClient; q++ {
				req := flowd.QueryRequest{Graph: ids[z.sample(rng)]}
				switch roll := rng.Float64(); {
				case roll < mix.distP:
					req.Op, req.U, req.V = "dist", rng.IntN(n), rng.IntN(n)
				case roll < mix.ddsP:
					req.Op, req.U, req.V = "dualdist", rng.IntN(faces), rng.IntN(faces)
				default:
					req.Op, req.Source = "dualsssp", rng.IntN(faces)
					req.Simulated = mix.simulated
				}
				t0 := time.Now()
				if _, err := cl.Query(ctx, req); err != nil {
					errs[w] = fmt.Errorf("client %d query %d: %w", w, q, err)
					return
				}
				lat[w] = append(lat[w], float64(time.Since(t0).Microseconds())/1000)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(begin)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	check, err := cl.Query(ctx, flowd.QueryRequest{Graph: ids[0], Op: "dist", U: 0, V: n - 1})
	if err != nil {
		return nil, err
	}
	checkSSSP, err := cl.Query(ctx, flowd.QueryRequest{
		Graph: ids[0], Op: "dualsssp", Source: 0, Simulated: mix.simulated,
	})
	if err != nil {
		return nil, err
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		return nil, err
	}

	all := make([]float64, 0, tc.queries)
	for _, l := range lat {
		all = append(all, l...)
	}
	res := &trafficResult{
		qps:       float64(clients*perClient) / wall.Seconds(),
		p50:       percentile(all, 0.50),
		p99:       percentile(all, 0.99),
		hitRate:   stats.HitRate,
		wallMS:    float64(wall.Microseconds()) / 1000,
		evictions: stats.Store.Evictions,
	}
	res.ok = res.evictions > 0 && // the working set really exceeded the budget
		res.hitRate >= 0.80 && // the LRU kept the Zipf head resident
		res.qps >= tc.qpsFloor && // throughput did not collapse
		check.Value == wantDist && // the wire agrees with the library
		equalInt64s(checkSSSP.Dist, wantSSSP.Dist) // on both execution routes
	return res, nil
}
