package main

// TRAFFIC experiment: fleet-level serving through the flowd daemon. A
// fresh daemon (in-process HTTP server over internal/store) is loaded
// with a working set of G same-size grids whose artifact footprint
// exceeds the store's memory budget, then driven by C concurrent clients
// issuing queries over a Zipf-distributed graph popularity — the shape of
// real multi-tenant traffic: a popular head that should stay resident and
// a long tail that churns through the eviction policy. Each (C) run
// records wall-clock throughput (qps), latency percentiles, the store's
// hit rate, and the eviction count; OK asserts the serving story the
// subsystem exists for: nonzero evictions (the budget is real), >= 80%
// hit rate at the default skew (the LRU keeps the head), a qps floor,
// and wire answers equal to in-process answers.
//
// The op mix is decode-heavy on purpose (dist 80%, dualdist 15%,
// dualsssp 5%): point queries cost nothing once labels are warm, so
// throughput measures the serving layer — registry, singleflight,
// eviction, HTTP — not the simulator.
//
// The :ssspsim/:ssspfast instance pair additionally exercises the decode
// engine under fleet traffic: the same dualsssp-heavy mix is served once
// with the wire's simulated escape hatch and once on the default decode
// route, each gated by the standard invariants plus a dualsssp
// wire-vs-library ground-truth check; the fast record carries the qps
// ratio over the simulated run as its Speedup trajectory point (HTTP
// overhead dominates per-request wall here, so the ratio is informative,
// not gated — the >= 100x engine gate lives in SERVE).
//
// The :http/:wire instance pair measures the transport itself: the same
// dualsssp-heavy mix at C=8, once over synchronous HTTP/JSON and once
// over the binary wire transport with pipelining (a window of in-flight
// requests per client) and the client-side micro-coalescer folding
// concurrent singletons into batch frames. Answers are identical by the
// daemon's shared execution plane; only the transport cost changes. The
// wire record's Speedup is its qps ratio over the http run, and — unlike
// the engine pair — the ratio IS gated: the wire run's OK requires
// >= 5x (full) / >= 2x (smoke) on top of the standard invariants,
// pinning the serving layer to within sight of the decode engine it
// fronts.

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"net"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"planarflow"
	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/planar"
	"planarflow/internal/store"
)

// trafficCfg sizes one TRAFFIC run.
type trafficCfg struct {
	graphs   int     // working-set size G
	side     int     // grid side (all graphs same size, different seeds)
	resident int     // budget in units of one graph's measured footprint
	skew     float64 // Zipf exponent over graph popularity ranks
	queries  int     // total queries per run (split across clients)
	qpsFloor float64 // OK threshold: generous, catches collapse not noise
}

func trafficSizes(full bool) trafficCfg {
	if full {
		return trafficCfg{graphs: 16, side: 10, resident: 8, skew: 1.3, queries: 1600, qpsFloor: 25}
	}
	return trafficCfg{graphs: 10, side: 6, resident: 6, skew: 1.3, queries: 480, qpsFloor: 25}
}

// zipfDist is a seeded sampler over ranks 0..n-1 with P(i) ∝ 1/(i+1)^s.
// (math/rand/v2 dropped rand.Zipf; a CDF inversion is all we need.)
type zipfDist struct{ cdf []float64 }

func newZipf(n int, s float64) *zipfDist {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfDist{cdf: cdf}
}

func (z *zipfDist) sample(rng *rand.Rand) int {
	return sort.SearchFloat64s(z.cdf, rng.Float64())
}

func trafficSpec(tc trafficCfg, seed int64, i int) store.GraphSpec {
	return store.GraphSpec{
		Kind: "grid", Rows: tc.side, Cols: tc.side,
		Seed: seed + int64(i), WLo: 1, WHi: 9, CLo: 1, CHi: 16,
	}
}

// trafficUnit measures the accounted footprint of one working-set graph
// after the op mix's substrates (primal + dual labelings) are warm — the
// unit the store budget is denominated in.
func trafficUnit(tc trafficCfg, seed int64) (int64, error) {
	g, err := trafficSpec(tc, seed, 0).Build()
	if err != nil {
		return 0, err
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		return 0, err
	}
	if _, err := p.Dist(0, g.N()-1); err != nil {
		return 0, err
	}
	if _, err := p.DualDist(0, 1); err != nil {
		return 0, err
	}
	return p.Stats().Bytes, nil
}

// trafficMix selects the op mix and execution route of one TRAFFIC run:
// cumulative probability thresholds for dist and dualdist (dualsssp gets
// the remainder), whether dualsssp requests set the wire's simulated
// escape hatch, and the transport (synchronous HTTP, or the binary wire
// transport with a pipelining window and the client-side coalescer).
type trafficMix struct {
	label       string // instance suffix; "" is the default serving mix
	distP, ddsP float64
	simulated   bool
	wire        bool // queries over the binary transport instead of HTTP
	window      int  // in-flight requests per client (<= 1 = synchronous)
	// noHitGate drops the >= 0.80 hit-rate invariant: under the wire
	// coalescer a fold of K head-graph queries costs ONE store
	// acquisition, so the acquisition-level hit rate is no longer
	// comparable with per-query transports — fewer, coarser acquisitions
	// deflate the ratio while serving exactly the same traffic. The
	// eviction and ground-truth invariants still apply.
	noHitGate bool
	// queries overrides the run's query budget when nonzero. The churn
	// instances keep the default; the transport pair needs a much longer
	// window — at wire throughput the default budget is tens of
	// milliseconds of wall, which measures scheduler and coalescer warmup
	// transients instead of the steady state. Both legs of a gated pair
	// must use the same override for the ratio to mean anything.
	queries int
	// resident runs the working set fully resident: unlimited budget,
	// graphs warm-registered, and the eviction invariant inverted to
	// evictions == 0. The default instances measure the store under
	// churn, where substrate rebuilds dominate the wall and any transport
	// measures the same; the transport pair instead measures the serving
	// layer the tentpole targets — warm decode-engine answers behind a
	// wire — so both of its legs run churn-free and steady-state.
	resident bool
}

var (
	trafficDefaultMix = trafficMix{distP: 0.80, ddsP: 0.95}
	// The fast-path gate pair: a dualsssp-heavy mix (40%) so the decode
	// engine — not the point-decode ops — carries the run.
	trafficSSSPSim  = trafficMix{label: "ssspsim", distP: 0.40, ddsP: 0.60, simulated: true}
	trafficSSSPFast = trafficMix{label: "ssspfast", distP: 0.40, ddsP: 0.60}
	// The transport gate pair: the same dualsssp-heavy mix, synchronous
	// HTTP vs pipelined+coalesced wire frames.
	trafficHTTPMix = trafficMix{label: "http", distP: 0.40, ddsP: 0.60, resident: true}
	trafficWireMix = trafficMix{label: "wire", distP: 0.40, ddsP: 0.60, resident: true,
		wire: true, window: 32, noHitGate: true}
)

// trafficWireFloor is the gated qps ratio of the :wire run over its
// :http twin — the tentpole claim that the binary transport moves the
// serving layer toward the decode engine's speed. Full runs must clear
// 5x; smoke runs (tiny query budgets, startup-dominated) 2x.
func trafficWireFloor(full bool) float64 {
	if full {
		return 5
	}
	return 2
}

// trafficPairQueries is the transport pair's query budget override: long
// enough that the wire leg's wall is seconds-scale steady state rather
// than a few tens of milliseconds of scheduler and coalescer warmup.
func trafficPairQueries(full bool) int {
	if full {
		return 32000
	}
	return 4800
}

// trafficBench runs the TRAFFIC experiment: one daemon per client count,
// C=1 then C=8 on the default mix, then the simulated/fast dualsssp-heavy
// pair at C=8. Same working set and query budget throughout.
func trafficBench(s *sink, c cfg) {
	tc := trafficSizes(c.full)
	for rep := 0; rep < c.repeats; rep++ {
		seed := c.seedFor(30, rep)
		header(rep, "TRAFFIC", fmt.Sprintf(
			"flowd under Zipf(%.1f) traffic: G=%d grids %dx%d, budget %d/%d resident",
			tc.skew, tc.graphs, tc.side, tc.side, tc.resident, tc.graphs),
			"clients", "queries", "qps", "p50ms", "p99ms", "hitrate", "evict", "ok")
		emit := func(clients int, mix trafficMix, res *trafficResult, speedup float64) {
			queries := tc.queries
			if mix.queries > 0 {
				queries = mix.queries
			}
			resident := fmt.Sprint(tc.resident)
			if mix.resident {
				resident = "all"
			}
			inst := fmt.Sprintf("zipf%.1f-g%d-r%s:c%d", tc.skew, tc.graphs, resident, clients)
			label := fmt.Sprint(clients)
			if mix.label != "" {
				inst += ":" + mix.label
				label += ":" + mix.label
			}
			s.add(Record{
				Exp:      "TRAFFIC",
				Instance: inst,
				N:        tc.side * tc.side, D: 2*tc.side - 2,
				WallMS: res.wallMS, Repeat: rep, Seed: seed, OK: res.ok,
				Queries: queries, QPS: res.qps, Speedup: speedup,
				Clients: clients, HitRate: res.hitRate, Evictions: res.evictions,
				P50MS: res.p50, P99MS: res.p99,
				PhaseDecodeMS: res.phases.decode, PhaseAcquireMS: res.phases.acquire,
				PhaseBuildMS: res.phases.build, PhaseExecMS: res.phases.exec,
				PhaseEncodeMS: res.phases.encode,
			})
			row(rep, label, queries, res.qps, res.p50, res.p99, res.hitRate,
				res.evictions, res.ok)
		}
		for _, clients := range []int{1, 8} {
			res, err := runTraffic(tc, seed, clients, trafficDefaultMix)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			emit(clients, trafficDefaultMix, res, 0)
		}
		sim, err := runTraffic(tc, seed, 8, trafficSSSPSim)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		emit(8, trafficSSSPSim, sim, 0)
		fast, err := runTraffic(tc, seed, 8, trafficSSSPFast)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		emit(8, trafficSSSPFast, fast, fast.qps/sim.qps)

		// The transport pair: same mix, HTTP vs wire; the ratio is gated.
		httpMix, wireMix := trafficHTTPMix, trafficWireMix
		httpMix.queries = trafficPairQueries(c.full)
		wireMix.queries = httpMix.queries
		httpRes, err := runTraffic(tc, seed, 8, httpMix)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		emit(8, httpMix, httpRes, 0)
		wireRes, err := runTraffic(tc, seed, 8, wireMix)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		ratio := wireRes.qps / httpRes.qps
		wireRes.ok = wireRes.ok && ratio >= trafficWireFloor(c.full)
		emit(8, wireMix, wireRes, ratio)
	}
}

type trafficResult struct {
	qps, p50, p99, hitRate, wallMS float64
	phases                         phaseMeans
	evictions                      int64
	ok                             bool
}

func runTraffic(tc trafficCfg, seed int64, clients int, mix trafficMix) (*trafficResult, error) {
	if mix.queries > 0 {
		tc.queries = mix.queries // tc is a copy; the caller's budget is untouched
	}
	unit, err := trafficUnit(tc, seed)
	if err != nil {
		return nil, err
	}
	budget := store.Config{MaxBytes: int64(tc.resident)*unit + unit/2}
	if mix.resident {
		budget = store.Config{} // unlimited: steady-state serving, no churn
	}
	st := store.New(budget)
	fsrv := flowd.NewServer(st)
	hsrv := httptest.NewServer(fsrv)
	defer hsrv.Close()
	ctx := context.Background()
	cl := flowd.NewClient(hsrv.URL).WithHTTPClient(hsrv.Client())

	// qcl carries the measured query traffic: the HTTP client itself, or
	// the same client with queries rerouted over the binary transport
	// (control plane — register, statsz — stays on HTTP either way).
	qcl := cl
	if mix.wire {
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go fsrv.Wire().Serve(wln)
		defer fsrv.Wire().Close()
		wc := flowd.NewWireClient("tcp", wln.Addr().String(),
			flowd.WireOptions{Coalesce: true, CoalesceMax: flowd.MaxBatchQueries})
		defer wc.Close()
		qcl = cl.WithWireTransport(wc)
	}

	ids := make([]string, tc.graphs)
	var n, faces int
	for i := range ids {
		ids[i] = fmt.Sprintf("g%02d", i)
		register := cl.Register
		if mix.resident {
			register = cl.RegisterWarm // steady state from the first query
		}
		reg, err := register(ctx, ids[i], trafficSpec(tc, seed, i))
		if err != nil {
			return nil, err
		}
		n, faces = reg.N, reg.Faces
	}

	// Wire-vs-library ground truth on the most popular graph.
	g0, err := trafficSpec(tc, seed, 0).Build()
	if err != nil {
		return nil, err
	}
	p0, err := planarflow.Prepare(g0)
	if err != nil {
		return nil, err
	}
	wantDist, err := p0.Dist(0, n-1)
	if err != nil {
		return nil, err
	}
	wantSSSP, err := p0.DualSSSP(0)
	if err != nil {
		return nil, err
	}

	z := newZipf(tc.graphs, tc.skew)
	perClient := tc.queries / clients
	// One shared latency histogram for the run: Observe is atomic, so all
	// clients feed it without coordination, and the digest is the same
	// HDR-lite shape the daemon itself exports.
	hist := obs.NewHistogram()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	phasesBefore := snapPhases()
	begin := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The request stream is generated up front so the rng sequence —
			// and therefore the workload — is identical whatever the transport
			// or issue discipline.
			rng := planar.NewRand(seed + 1000*int64(w+1))
			reqs := make([]flowd.QueryRequest, perClient)
			for q := range reqs {
				req := flowd.QueryRequest{Graph: ids[z.sample(rng)]}
				switch roll := rng.Float64(); {
				case roll < mix.distP:
					req.Op, req.U, req.V = "dist", rng.IntN(n), rng.IntN(n)
				case roll < mix.ddsP:
					req.Op, req.U, req.V = "dualdist", rng.IntN(faces), rng.IntN(faces)
				default:
					req.Op, req.Source = "dualsssp", rng.IntN(faces)
					req.Simulated = mix.simulated
				}
				reqs[q] = req
			}
			if mix.window <= 1 {
				// Synchronous: one request in flight, the HTTP discipline.
				for q, req := range reqs {
					t0 := time.Now()
					if _, err := qcl.Query(ctx, req); err != nil {
						errs[w] = fmt.Errorf("client %d query %d: %w", w, q, err)
						return
					}
					hist.Observe(time.Since(t0))
				}
				return
			}
			// Pipelined: up to window requests of this client in flight at
			// once — the wire transport multiplexes them by request id over
			// its pooled connections, and the coalescer folds coincident
			// singletons into batch frames.
			sem := make(chan struct{}, mix.window)
			var cwg sync.WaitGroup
			var errOnce sync.Once
			for q, req := range reqs {
				sem <- struct{}{}
				cwg.Add(1)
				go func(q int, req flowd.QueryRequest) {
					defer func() { <-sem; cwg.Done() }()
					t0 := time.Now()
					if _, err := qcl.Query(ctx, req); err != nil {
						errOnce.Do(func() {
							errs[w] = fmt.Errorf("client %d query %d: %w", w, q, err)
						})
						return
					}
					hist.Observe(time.Since(t0))
				}(q, req)
			}
			cwg.Wait()
		}(w)
	}
	wg.Wait()
	wall := time.Since(begin)
	// Phase attribution of the measured window only: snapshot before the
	// ground-truth queries below add their own samples.
	phases := snapPhases().meansSince(phasesBefore)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Ground truth over the measured transport: a wire run must agree with
	// the library through the wire route, not just over HTTP.
	check, err := qcl.Query(ctx, flowd.QueryRequest{Graph: ids[0], Op: "dist", U: 0, V: n - 1})
	if err != nil {
		return nil, err
	}
	checkSSSP, err := qcl.Query(ctx, flowd.QueryRequest{
		Graph: ids[0], Op: "dualsssp", Source: 0, Simulated: mix.simulated,
	})
	if err != nil {
		return nil, err
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		return nil, err
	}

	p50, p99 := quantilesMS(hist)
	res := &trafficResult{
		qps:       float64(clients*perClient) / wall.Seconds(),
		p50:       p50,
		p99:       p99,
		phases:    phases,
		hitRate:   stats.HitRate,
		wallMS:    float64(wall.Microseconds()) / 1000,
		evictions: stats.Store.Evictions,
	}
	evictOK := res.evictions > 0 // the working set really exceeded the budget
	if mix.resident {
		evictOK = res.evictions == 0 // ...or was meant to fit, and did
	}
	res.ok = evictOK &&
		(mix.noHitGate || res.hitRate >= 0.80) && // the LRU kept the Zipf head resident
		res.qps >= tc.qpsFloor && // throughput did not collapse
		check.Value == wantDist && // the wire agrees with the library
		equalInt64s(checkSSSP.Dist, wantSSSP.Dist) // on both execution routes
	return res, nil
}
