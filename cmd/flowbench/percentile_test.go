package main

import "testing"

func TestPercentile(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"empty", nil, 0.99, 0},
		{"single-p50", []float64{7}, 0.50, 7},
		{"single-p99", []float64{7}, 0.99, 7},
		{"two-p50", []float64{2, 1}, 0.50, 1},
		{"two-p99", []float64{2, 1}, 0.99, 2},
		// Nearest rank on small N: p99 of 10 samples is the maximum
		// (ceil(0.99*10) = 10), where the old floored index returned the
		// 9th-largest.
		{"ten-p99", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"ten-p50", []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 0.50, 5},
		{"p-zero-min", []float64{3, 1, 2}, 0, 1},
		{"p-one-max", []float64{3, 1, 2}, 1, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(tc.samples, tc.p); got != tc.want {
				t.Fatalf("percentile(%v, %v) = %v, want %v", tc.samples, tc.p, got, tc.want)
			}
		})
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	samples := []float64{3, 1, 2}
	percentile(samples, 0.99)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatalf("percentile sorted the caller's slice: %v", samples)
	}
}
