package main

import (
	"testing"

	"planarflow/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.RunMain(t, "-kind", "grid", "-rows", "4", "-cols", "5")
	cmdtest.ExpectMarkers(t, out, "Euler:", "face cycles verified", "diameter:")
}

func TestSmokeTriangulation(t *testing.T) {
	out := cmdtest.RunMain(t, "-kind", "triangulation", "-n", "24", "-seed", "3")
	cmdtest.ExpectMarkers(t, out, "Euler:", "face-disjoint graph")
}
