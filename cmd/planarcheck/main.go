// Command planarcheck inspects the embedded-planar-graph substrate: it
// generates a graph, validates Euler's formula and the face-disjoint graph
// invariants, and prints the structural quantities the paper's algorithms
// depend on (faces, dual size, diameter, BDD shape).
package main

import (
	"flag"
	"fmt"
	"log"

	"planarflow/internal/bdd"
	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

func main() {
	kind := flag.String("kind", "grid", "grid | cylinder | triangulation | nested | snake")
	rows := flag.Int("rows", 6, "rows (grid/cylinder)")
	cols := flag.Int("cols", 8, "cols (grid/cylinder)")
	n := flag.Int("n", 64, "vertices (triangulation)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var g *planar.Graph
	switch *kind {
	case "grid":
		g = planar.Grid(*rows, *cols)
	case "cylinder":
		g = planar.Cylinder(*rows, *cols)
	case "triangulation":
		g = planar.StackedTriangulation(*n, planar.NewRand(*seed))
	case "nested":
		g = planar.NestedTriangles(*n / 3)
	case "snake":
		g = planar.BoustrophedonGrid(*rows, *cols)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	fd := g.Faces()
	fmt.Printf("graph: %s  n=%d m=%d faces=%d (Euler: %d-%d+%d = %d)\n",
		*kind, g.N(), g.M(), fd.NumFaces(), g.N(), g.M(), fd.NumFaces(),
		g.N()-g.M()+fd.NumFaces())
	fmt.Printf("diameter: exact=%d 2-sweep>=%d\n", g.Diameter(), g.DiameterLowerBound())

	h := hatg.New(g)
	if err := h.CheckFaceCycles(); err != nil {
		log.Fatalf("face-disjoint graph invalid: %v", err)
	}
	fmt.Printf("face-disjoint graph: |V|=%d (n + 2m), face cycles verified\n", h.N())

	led := ledger.New()
	tree := bdd.Build(g, 0x7fffffff&(8*g.DiameterLowerBound()+16), led)
	fmt.Printf("BDD: bags=%d depth=%d max|S_X|=%d max|F_X|=%d max face-parts=%d\n",
		len(tree.Bags), tree.Depth, tree.MaxSXSize(), tree.MaxFX(), tree.MaxFaceParts())
	fmt.Printf("construction rounds charged: %d\n", led.Total())

	// Face size histogram (largest 3).
	sizes := make([]int, fd.NumFaces())
	for f := range sizes {
		sizes[f] = fd.Len(f)
	}
	big, second := 0, 0
	for _, s := range sizes {
		if s > big {
			big, second = s, big
		} else if s > second {
			second = s
		}
	}
	fmt.Printf("largest face boundaries: %d, %d darts\n", big, second)
}
