// Command dualview exports an embedded planar graph, its dual G*, or its
// Bounded Diameter Decomposition as Graphviz DOT for inspection.
//
//	dualview -kind grid -rows 4 -cols 5 -view primal > g.dot
//	dualview -view dual | dot -Tsvg > dual.svg
//	dualview -view bdd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

func main() {
	kind := flag.String("kind", "grid", "grid | cylinder | triangulation | snake")
	rows := flag.Int("rows", 4, "rows")
	cols := flag.Int("cols", 5, "cols")
	n := flag.Int("n", 32, "vertices (triangulation)")
	seed := flag.Int64("seed", 1, "seed")
	view := flag.String("view", "primal", "primal | dual | bdd")
	flag.Parse()

	var g *planar.Graph
	switch *kind {
	case "grid":
		g = planar.Grid(*rows, *cols)
	case "cylinder":
		g = planar.Cylinder(*rows, *cols)
	case "triangulation":
		g = planar.StackedTriangulation(*n, planar.NewRand(*seed))
	case "snake":
		g = planar.BoustrophedonGrid(*rows, *cols)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	w := os.Stdout
	switch *view {
	case "primal":
		fmt.Fprintln(w, "digraph primal {")
		fmt.Fprintln(w, "  node [shape=circle];")
		for e := 0; e < g.M(); e++ {
			ed := g.Edge(e)
			fmt.Fprintf(w, "  %d -> %d [label=\"e%d w%d c%d\"];\n", ed.U, ed.V, e, ed.Weight, ed.Cap)
		}
		fmt.Fprintln(w, "}")
	case "dual":
		du := g.Dual()
		fd := g.Faces()
		fmt.Fprintln(w, "digraph dual {")
		fmt.Fprintln(w, "  node [shape=box];")
		for f := 0; f < du.NumNodes(); f++ {
			fmt.Fprintf(w, "  f%d [label=\"f%d (%d darts)\"];\n", f, f, fd.Len(f))
		}
		for e := 0; e < g.M(); e++ {
			d := planar.ForwardDart(e)
			fmt.Fprintf(w, "  f%d -> f%d [label=\"e%d\"];\n", du.Tail(d), du.Head(d), e)
		}
		fmt.Fprintln(w, "}")
	case "bdd":
		tree := bdd.Build(g, 16, ledger.New())
		fmt.Fprintln(w, "digraph bdd {")
		fmt.Fprintln(w, "  node [shape=record];")
		for _, b := range tree.Bags {
			kind := "leaf"
			if !b.IsLeaf() {
				kind = fmt.Sprintf("|S_X|=%d |F_X|=%d", len(b.Sep.CycleVertices), len(b.FX))
			}
			fp := 0
			for _, f := range b.Faces {
				if !b.Whole[f] {
					fp++
				}
			}
			fmt.Fprintf(w, "  b%d [label=\"bag %d | lvl %d | %d edges | %d faces (%d parts) | %s\"];\n",
				b.ID, b.ID, b.Level, b.NumEdges(), len(b.Faces), fp, kind)
			for _, c := range b.Children {
				fmt.Fprintf(w, "  b%d -> b%d;\n", b.ID, c.ID)
			}
		}
		fmt.Fprintln(w, "}")
	default:
		log.Fatalf("unknown view %q", *view)
	}
}
