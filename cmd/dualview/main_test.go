package main

import (
	"testing"

	"planarflow/internal/cmdtest"
)

func TestSmokePrimal(t *testing.T) {
	out := cmdtest.RunMain(t, "-kind", "grid", "-rows", "3", "-cols", "3", "-view", "primal")
	cmdtest.ExpectMarkers(t, out, "digraph", "->")
}

func TestSmokeDual(t *testing.T) {
	out := cmdtest.RunMain(t, "-kind", "grid", "-rows", "3", "-cols", "3", "-view", "dual")
	cmdtest.ExpectMarkers(t, out, "graph")
}
