package main

import (
	"testing"

	"planarflow/internal/cmdtest"
)

func TestSelfcheckSmoke(t *testing.T) {
	out := cmdtest.RunMain(t, "-selfcheck", "-budget-mb", "64")
	cmdtest.ExpectMarkers(t, out,
		"flowd selfcheck: healthz ok",
		"registered grid n=36",
		"dist=",
		"maxflow=",
		"statsz: graphs=1",
		"flowd selfcheck: ok",
	)
}
