// Command flowd serves the paper's query families over many graphs from
// one process: an HTTP/JSON daemon over the prepared-substrate store
// (internal/store + internal/flowd). Graphs are registered as generator
// specs; substrates (BDD + distance labelings) build lazily on first
// query, deduplicate across concurrent requests, and are evicted
// least-recently-used when the artifact budget is exceeded.
//
// Usage:
//
//	flowd -addr :8373 -budget-mb 256          # serve until interrupted
//	flowd -listen-wire :8374                  # also serve the binary wire transport (TCP)
//	flowd -listen-uds /run/flowd.sock         # also serve the wire transport on a Unix socket
//	flowd -demo 8 ...                         # preregister demo grids demo0..demoN-1
//	flowd -snapshot-dir /var/lib/flowd        # disk tier: spill on evict, restore on miss/boot
//	flowd -selfcheck                          # end-to-end smoke: serve, query, snapshot, restart, exit
//
// The wire listeners serve the same daemon over internal/wire's framed
// binary protocol — persistent connections, pipelined request-id
// multiplexing, write coalescing — for the high-rate query path; HTTP
// remains the control/compat plane. Answers are identical on both
// planes (flowd.WireClient is the matching Go client).
//
// With -snapshot-dir, evicted bundles are demoted to disk snapshots
// instead of discarded, cache misses restore from disk at decode speed
// before falling back to a rebuild, registered specs warm-restore at
// boot, and POST /v1/snapshot persists the resident working set on
// demand (e.g. before a planned restart).
//
// Endpoints: POST /v1/graphs, GET /v1/graphs, POST /v1/query,
// POST /v1/batch, POST /v1/snapshot, GET /statsz, GET /healthz,
// GET /metricsz (Prometheus text), GET /tracez (recent + slow spans),
// GET /versionz — see internal/flowd for the protocol.
//
// Observability flags: -log-level sets the structured-log threshold
// (debug logs every request), -slow-query-ms sets the slow-query log
// threshold, and -debug-addr serves net/http/pprof on a side listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr side listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"planarflow/internal/fleet"
	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/store"
)

func main() {
	addr := flag.String("addr", ":8373", "HTTP listen address")
	wireAddr := flag.String("listen-wire", "", "binary wire-transport TCP listen address ('' = disabled)")
	wireUDS := flag.String("listen-uds", "", "binary wire-transport Unix-domain-socket path ('' = disabled)")
	budgetMB := flag.Int64("budget-mb", 256, "artifact memory budget in MiB (0 = unlimited)")
	maxGraphs := flag.Int("max-graphs", store.DefaultMaxGraphs, "cap on registered graphs (graphs are not evictable; < 0 = unlimited)")
	demo := flag.Int("demo", 0, "preregister this many demo grid graphs (demo0..demoN-1)")
	snapDir := flag.String("snapshot-dir", "", "disk snapshot tier: evicted bundles spill here, misses and boot restore from here ('' = disabled)")
	selfcheck := flag.Bool("selfcheck", false, "serve on a loopback port, run an end-to-end check (including snapshot → restart → query and a two-replica fleet failover), exit")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-drain budget on SIGTERM/SIGINT: finish in-flight requests, then flush resident bundles to the disk tier")
	logLevel := flag.String("log-level", "warn", "structured-log threshold: debug|info|warn|error (debug logs every request)")
	slowMS := flag.Int("slow-query-ms", 250, "requests at least this slow land in the slow-query log and /tracez")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address ('' = disabled)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "flowd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	opts := flowd.ServerOptions{
		Logger:        slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(2)
		}
		// net/http/pprof registers on DefaultServeMux; the main plane uses
		// its own mux, so the profiler is reachable only on this listener.
		go http.Serve(dln, nil)
		fmt.Printf("flowd: debug server (pprof) on %s\n", dln.Addr())
	}

	cfg := store.Config{MaxBytes: *budgetMB << 20, MaxGraphs: *maxGraphs, SpillDir: *snapDir}

	if *selfcheck {
		if cfg.SpillDir == "" {
			dir, err := os.MkdirTemp("", "flowd-selfcheck-snap")
			if err != nil {
				fmt.Fprintln(os.Stderr, "flowd selfcheck:", err)
				os.Exit(2)
			}
			defer os.RemoveAll(dir)
			cfg.SpillDir = dir
		}
		if err := runSelfcheck(cfg, *demo, opts); err != nil {
			fmt.Fprintln(os.Stderr, "flowd selfcheck:", err)
			os.Exit(1)
		}
		return
	}

	st := store.New(cfg)
	for i := 0; i < *demo; i++ {
		id := fmt.Sprintf("demo%d", i)
		if _, err := st.RegisterSpec(id, demoSpec(i)); err != nil {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(2)
		}
	}
	// Warm restore on boot: every registered spec whose snapshot survives
	// on disk comes back resident before the first request lands.
	if st.SpillEnabled() {
		restored := 0
		for _, id := range st.IDs() {
			ok, err := st.TryRestore(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flowd:", err)
				os.Exit(2)
			}
			if ok {
				restored++
			}
		}
		if restored > 0 {
			fmt.Printf("flowd: warm-restored %d graph(s) from %s\n", restored, *snapDir)
		}
	}
	srv := flowd.NewServerWith(st, opts)

	hs := &http.Server{Addr: *addr, Handler: srv}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowd:", err)
		os.Exit(2)
	}
	fmt.Printf("flowd: serving on %s (budget %d MiB, %d graphs preregistered)\n",
		ln.Addr(), *budgetMB, *demo)

	// Wire plane: both listeners (TCP and UDS) feed one wire.Server
	// sharing the daemon's execution plane and transport counters.
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(2)
		}
		go srv.Wire().Serve(wln)
		fmt.Printf("flowd: wire transport on %s\n", wln.Addr())
	}
	if *wireUDS != "" {
		os.Remove(*wireUDS) // stale socket from an unclean prior shutdown
		uln, err := net.Listen("unix", *wireUDS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(2)
		}
		go srv.Wire().Serve(uln)
		fmt.Printf("flowd: wire transport on unix:%s\n", *wireUDS)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain, bounded by -drain-timeout: stop accepting on both
		// planes, let in-flight requests finish and their responses flush,
		// then persist the warm working set so the next boot restores at
		// decode speed instead of rebuilding.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		hs.Shutdown(drainCtx)
		if *wireAddr != "" || *wireUDS != "" {
			srv.Wire().Shutdown(drainCtx)
		}
		if st.SpillEnabled() {
			if n, err := st.SnapshotResident(); err != nil {
				fmt.Fprintln(os.Stderr, "flowd: drain snapshot:", err)
			} else if n > 0 {
				fmt.Printf("flowd: drained %d resident bundle(s) to %s\n", n, *snapDir)
			}
		}
		st.FlushSpills() // let in-flight eviction spills reach disk
		fmt.Println("flowd: shut down")
	}
}

// checkSpec is the selfcheck's graph: small enough for seconds-scale
// runs, large enough that every family has non-trivial structure.
var checkSpec = store.GraphSpec{
	Kind: "grid", Rows: 6, Cols: 6, Seed: 42, WLo: 1, WHi: 9, CLo: 1, CHi: 16,
}

// demoSpec varies grid sizes and seeds so a demo fleet exercises the
// eviction policy with mixed footprints.
func demoSpec(i int) store.GraphSpec {
	side := 8 + 2*(i%4)
	return store.GraphSpec{
		Kind: "grid", Rows: side, Cols: side, Seed: int64(i + 1),
		WLo: 1, WHi: 9, CLo: 1, CHi: 16,
	}
}

// serveLoopback starts srv on an ephemeral loopback port and returns a
// client plus the shutdown func.
func serveLoopback(srv *flowd.Server) (*flowd.Client, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return flowd.NewClient("http://" + ln.Addr().String()), func() { hs.Close() }, nil
}

// runSelfcheck is the end-to-end smoke path: serve on a loopback port,
// drive the daemon through its own client (register, one query per
// family, batch, statsz), validate the telemetry plane (/metricsz
// exposition well-formedness and counter monotonicity across a query
// burst, a slow span with build-phase attribution on /tracez), then
// persist the warm working set with POST /v1/snapshot, restart onto a
// fresh store over the same snapshot directory, and verify the restored
// daemon answers every family bit-identically without rebuilding.
func runSelfcheck(cfg store.Config, demo int, opts flowd.ServerOptions) error {
	// A 1ms slow threshold guarantees the cold-build query below lands in
	// the slow log; errors-only logging keeps the marker output stable.
	opts.SlowThreshold = time.Millisecond
	opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	newStore := func() (*store.Store, error) {
		st := store.New(cfg)
		for i := 0; i < demo; i++ {
			if _, err := st.RegisterSpec(fmt.Sprintf("demo%d", i), demoSpec(i)); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	st, err := newStore()
	if err != nil {
		return err
	}
	srv := flowd.NewServerWith(st, opts)
	c, shutdown, err := serveLoopback(srv)
	if err != nil {
		return err
	}
	defer shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q", h.Status)
	}
	fmt.Println("flowd selfcheck: healthz ok")

	reg, err := c.RegisterWarm(ctx, "check", checkSpec)
	if err != nil {
		return err
	}
	fmt.Printf("registered grid n=%d m=%d faces=%d warmed=%v\n", reg.N, reg.M, reg.Faces, reg.Warmed)

	queries := []flowd.QueryRequest{
		{Graph: "check", Op: "dist", U: 0, V: reg.N - 1},
		{Graph: "check", Op: "dualdist", U: 0, V: reg.Faces - 1},
		{Graph: "check", Op: "maxflow", U: 0, V: reg.N - 1},
		{Graph: "check", Op: "minstcut", U: 0, V: reg.N - 1},
		{Graph: "check", Op: "girth"},
	}
	var flowVal, cutVal int64
	for _, q := range queries {
		resp, err := c.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Op, err)
		}
		fmt.Printf("%s=%d rounds=%d (build %d + query %d) hit=%v\n",
			q.Op, resp.Value, resp.Rounds.Total, resp.Rounds.Build, resp.Rounds.Query, resp.Hit)
		switch q.Op {
		case "maxflow":
			flowVal = resp.Value
		case "minstcut":
			cutVal = resp.Value
		}
	}
	if flowVal != cutVal {
		return fmt.Errorf("maxflow %d != minstcut %d", flowVal, cutVal)
	}

	// The same families through the batch plane: one request, one bundle
	// pin, per-query isolation (the bad entry fails alone).
	batch, err := c.QueryBatch(ctx, flowd.BatchRequest{Graph: "check", Queries: []flowd.BatchQuery{
		{Op: "maxflow", U: 0, V: reg.N - 1},
		{Op: "dist", U: 0, V: reg.N - 1},
		{Op: "dist", U: 0, V: reg.N + 999}, // out of range: its own error entry
		{Op: "girth"},
	}})
	if err != nil {
		return err
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			fmt.Printf("batch[%d] %s error=%q\n", i, r.Op, r.Error)
			continue
		}
		fmt.Printf("batch[%d] %s=%d\n", i, r.Op, r.Value)
	}
	if batch.Results[0].Value != flowVal {
		return fmt.Errorf("batch maxflow %d != singleton %d", batch.Results[0].Value, flowVal)
	}
	if batch.Results[2].Error == "" {
		return fmt.Errorf("out-of-range batch entry did not error")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("statsz: graphs=%d resident=%d bytes=%d hits=%d misses=%d builds=%d\n",
		stats.Store.Graphs, stats.Store.Resident, stats.Store.Bytes,
		stats.Store.Hits, stats.Store.Misses, stats.Store.Builds)
	for _, op := range flowd.Ops {
		if f, ok := stats.Families[op]; ok {
			fmt.Printf("family %-10s count=%d errors=%d rounds=%d\n", op, f.Count, f.Errors, f.Rounds)
		}
	}

	// ---- snapshot → restart → query ----
	// Every family twice on the live daemon (the second pass is fully warm,
	// Build == 0 — the state a restored daemon must reproduce exactly).
	checks := flowd.FamilyChecks("check", reg.N, reg.Faces)
	want := make([]string, len(checks))
	for i, q := range checks {
		if _, err := c.Query(ctx, q); err != nil {
			return fmt.Errorf("%s: %w", q.Op, err)
		}
		resp, err := c.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Op, err)
		}
		want[i] = flowd.RestartKey(resp)
	}
	// ---- wire transport parity ----
	// The same warm checks over the binary transport, TCP and UDS: every
	// family's RestartKey (value, dist vector, cut edges, neg-cycle bit,
	// iterations, full rounds breakdown) must match the HTTP answer — the
	// wire plane is transport, not semantics.
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Wire().Serve(wln)
	udsDir, err := os.MkdirTemp("", "flowd-selfcheck-wire")
	if err != nil {
		return err
	}
	defer os.RemoveAll(udsDir)
	udsPath := udsDir + "/wire.sock"
	uln, err := net.Listen("unix", udsPath)
	if err != nil {
		return err
	}
	go srv.Wire().Serve(uln)
	for _, leg := range []struct{ network, target string }{
		{"tcp", wln.Addr().String()}, {"unix", udsPath},
	} {
		wc := flowd.NewWireClient(leg.network, leg.target, flowd.WireOptions{})
		if err := wc.Ping(ctx); err != nil {
			wc.Close()
			return fmt.Errorf("wire %s ping: %w", leg.network, err)
		}
		cw := c.WithWireTransport(wc)
		for i, q := range checks {
			resp, err := cw.Query(ctx, q)
			if err != nil {
				wc.Close()
				return fmt.Errorf("wire %s %s: %w", leg.network, q.Op, err)
			}
			if got := flowd.RestartKey(resp); got != want[i] {
				wc.Close()
				return fmt.Errorf("wire %s %s diverged from http:\n  got  %s\n  want %s",
					leg.network, q.Op, got, want[i])
			}
		}
		wc.Close()
	}
	ws := srv.Wire().Stats()
	fmt.Printf("wire: %d families bit-identical over tcp+unix (frames in=%d out=%d, bytes in=%d out=%d)\n",
		len(checks), ws.FramesIn, ws.FramesOut, ws.BytesIn, ws.BytesOut)
	srv.Wire().Close()

	// ---- telemetry plane ----
	// /metricsz must be well-formed Prometheus text (the strict parser
	// rejects any malformed line), counters must be monotone across a
	// query burst, both transports must have per-family latency series,
	// and a cold-build query must land in /tracez's slow log with its
	// build phase attributed.
	scrape := func() (map[string]float64, error) {
		raw, err := c.Metricsz(ctx)
		if err != nil {
			return nil, err
		}
		series, err := obs.ParseExposition(raw)
		if err != nil {
			return nil, fmt.Errorf("metricsz: %w", err)
		}
		return series, nil
	}
	m1, err := scrape()
	if err != nil {
		return err
	}
	for i := 0; i < 32; i++ {
		if _, err := c.Query(ctx, queries[i%len(queries)]); err != nil {
			return fmt.Errorf("burst query %d: %w", i, err)
		}
	}
	// Cold build under a query (not register-warm): a 20x20 grid's
	// substrate build is far above the 1ms slow threshold, so this span
	// is guaranteed to land in the slow log with PhaseBuild > 0.
	coldSpec := store.GraphSpec{Kind: "grid", Rows: 20, Cols: 20, Seed: 7, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
	regCold, err := c.Register(ctx, "coldcheck", coldSpec)
	if err != nil {
		return err
	}
	if _, err := c.Query(ctx, flowd.QueryRequest{Graph: "coldcheck", Op: "dist", U: 0, V: regCold.N - 1}); err != nil {
		return err
	}
	m2, err := scrape()
	if err != nil {
		return err
	}
	monotone := 0
	for k, v1 := range m1 {
		if !strings.Contains(k, "_total") && !strings.Contains(k, "_count") {
			continue
		}
		v2, ok := m2[k]
		if !ok {
			return fmt.Errorf("metricsz: series %s disappeared between scrapes", k)
		}
		if v2 < v1 {
			return fmt.Errorf("metricsz: counter %s went backwards: %g -> %g", k, v1, v2)
		}
		monotone++
	}
	if monotone == 0 {
		return fmt.Errorf("metricsz: no counter series found")
	}
	distHTTP := `flowd_requests_total{family="dist",transport="http"}`
	if m2[distHTTP] <= m1[distHTTP] {
		return fmt.Errorf("metricsz: %s did not advance across the burst (%g -> %g)",
			distHTTP, m1[distHTTP], m2[distHTTP])
	}
	for _, tr := range []string{"http", "wire"} {
		k := fmt.Sprintf(`flowd_request_seconds_count{family="dist",transport=%q}`, tr)
		if m2[k] < 1 {
			return fmt.Errorf("metricsz: missing per-family latency series on %s transport (%s)", tr, k)
		}
	}
	traces, err := c.Tracez(ctx)
	if err != nil {
		return err
	}
	if len(traces.Slow) == 0 {
		return fmt.Errorf("tracez: slow log empty despite %.0fms threshold", traces.SlowThresholdMS)
	}
	slowBuild := false
	for _, sv := range traces.Slow {
		if sv.PhasesMS["build"] > 0 {
			slowBuild = true
			break
		}
	}
	if !slowBuild {
		return fmt.Errorf("tracez: no slow span carries a build phase (slow=%d)", len(traces.Slow))
	}
	fmt.Printf("telemetry: %d series parsed, %d counters monotone, %d slow span(s) traced\n",
		len(m2), monotone, len(traces.Slow))

	snap, err := c.Snapshot(ctx, "")
	if err != nil {
		return err
	}
	fmt.Printf("snapshot: wrote %d bundle(s)\n", snap.Written)
	if snap.Written < 1 {
		return fmt.Errorf("snapshot wrote nothing")
	}
	shutdown() // daemon gone; only the snapshot directory survives

	st2, err := newStore()
	if err != nil {
		return err
	}
	restored := 0
	for _, id := range st2.IDs() {
		ok, err := st2.TryRestore(id)
		if err != nil {
			return err
		}
		if ok {
			restored++
		}
	}
	// "check" was registered via the wire, not a boot spec: re-register and
	// warm-restore it the way a supervisor would replay its spec.
	if _, err := st2.RegisterSpec("check", checkSpec); err != nil {
		return err
	}
	ok, err := st2.TryRestore("check")
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("restart: no snapshot restored for %q", "check")
	}
	c2, shutdown2, err := serveLoopback(flowd.NewServer(st2))
	if err != nil {
		return err
	}
	defer shutdown2()
	for i, q := range checks {
		resp, err := c2.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("restored %s: %w", q.Op, err)
		}
		if got := flowd.RestartKey(resp); got != want[i] {
			return fmt.Errorf("restored %s diverged:\n  got  %s\n  want %s", q.Op, got, want[i])
		}
		if !resp.Hit {
			return fmt.Errorf("restored %s was not served from the restored bundle", q.Op)
		}
	}
	stats2, err := c2.Stats(ctx)
	if err != nil {
		return err
	}
	if stats2.Store.SnapshotRestores < 1 {
		return fmt.Errorf("restart: snapshot_restores = %d, want >= 1", stats2.Store.SnapshotRestores)
	}
	if stats2.Store.Builds > 0 {
		return fmt.Errorf("restart: %d substrates rebuilt despite restore", stats2.Store.Builds)
	}
	fmt.Printf("restart: warm-restored %d+1 graph(s), all %d families bit-identical, 0 rebuilds\n",
		restored, len(checks))

	if err := runFleetCheck(ctx, checks, want); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	fmt.Println("flowd selfcheck: ok")
	return nil
}

// runFleetCheck is the fleet leg of the selfcheck: three in-process
// replicas behind the consistent-hash client, the check graph placed on
// its owner and synced to the standby, then the owner hard-killed —
// every family must answer bit-identically through the failover, served
// from the standby's peer-restored bundle with zero rebuilds. A second
// fleet client (never standby-synced) drives the adopt path through the
// same kill, and the resulting trace must stitch across the client's
// failover spans, the adopting replica's restore, and the source peer's
// snapshot fetch — with matching eject/adopt/peer-restore journal
// events keyed by the same trace id.
func runFleetCheck(ctx context.Context, checks []flowd.QueryRequest, want []string) error {
	dir, err := os.MkdirTemp("", "flowd-selfcheck-fleet")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reps := make([]*fleet.Replica, 3)
	members := make([]fleet.Member, 3)
	for i := range reps {
		r, err := fleet.StartReplica(fleet.ReplicaConfig{
			Name:  fmt.Sprintf("r%d", i),
			Store: store.Config{SpillDir: dir},
		})
		if err != nil {
			return err
		}
		defer r.Stop()
		reps[i] = r
		members[i] = r.Member()
	}
	fc, err := fleet.New(members, fleet.Options{
		ProbeInterval: -1, // the kill below is permanent; nothing to probe for
		BackoffBase:   time.Millisecond,
		BackoffCap:    10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fc.Close()

	if err := fc.Register(ctx, "check", checkSpec); err != nil {
		return err
	}
	for i, q := range checks {
		resp, err := fc.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("pre-kill %s: %w", q.Op, err)
		}
		// Warm pass so the fleet answers from the same state the restart
		// leg pinned, then compare against its keys.
		resp, err = fc.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("pre-kill %s: %w", q.Op, err)
		}
		if got := flowd.RestartKey(resp); got != want[i] {
			return fmt.Errorf("pre-kill %s diverged:\n  got  %s\n  want %s", q.Op, got, want[i])
		}
	}
	if n, err := fc.SyncStandby(ctx); err != nil || n == 0 {
		return fmt.Errorf("standby sync: synced=%d err=%v", n, err)
	}
	owner, _ := fc.Owner("check")
	repByName := func(name string) *fleet.Replica {
		for _, r := range reps {
			if r.Name == name {
				return r
			}
		}
		return nil
	}
	chain := fc.Ring().Successors("check", 2)
	if len(chain) != 2 || chain[0] != owner {
		return fmt.Errorf("successor chain for check: %v (owner %s)", chain, owner)
	}
	ownerRep, standbyRep := repByName(owner), repByName(chain[1])
	if standbyRep.Store.Snapshot().PeerRestores < 1 {
		return fmt.Errorf("standby holds no peer-restored bundle after sync")
	}

	// Adopt/trace leg setup, before the kill: a second fleet client that
	// never runs a standby sync, a graph owned by the same victim, and a
	// warmed bystander copy on the tail of its successor chain — so the
	// post-kill failover target must adopt the graph and peer-restore it.
	fc2, err := fleet.New(members, fleet.Options{
		ProbeInterval: -1,
		BackoffBase:   time.Millisecond,
		BackoffCap:    10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fc2.Close()
	adoptSpec := store.GraphSpec{Kind: "grid", Rows: 8, Cols: 8, Seed: 23, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
	var adoptID string
	var adoptChain []string
	for i := 0; i < 4096 && adoptID == ""; i++ {
		id := fmt.Sprintf("adopt-%d", i)
		if o, ok := fc2.Owner(id); ok && o == owner {
			if ch := fc2.Ring().Successors(id, 3); len(ch) == 3 {
				adoptID, adoptChain = id, ch
			}
		}
	}
	if adoptID == "" {
		return fmt.Errorf("no graph id hashes to owner %s", owner)
	}
	if err := fc2.Register(ctx, adoptID, adoptSpec); err != nil {
		return err
	}
	adoptQuery := flowd.QueryRequest{Graph: adoptID, Op: "dist", U: 0, V: 63}
	adoptWant, err := fc2.Query(ctx, adoptQuery)
	if err != nil {
		return fmt.Errorf("pre-kill adopt query: %w", err)
	}
	bystander := flowd.NewClient(repByName(adoptChain[2]).Member().HTTP)
	if _, err := bystander.RegisterWarm(ctx, adoptID, adoptSpec); err != nil {
		return fmt.Errorf("bystander warm: %w", err)
	}

	// Builds on the check standby must not move past this point: the
	// failover below is served from its peer-restored bundle, and the
	// adopt leg's restore ships bytes instead of rebuilding.
	preBuilds := standbyRep.Store.Snapshot().Builds
	ownerRep.Stop()

	for i, q := range checks {
		resp, err := fc.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("post-kill %s: %w", q.Op, err)
		}
		if got := flowd.RestartKey(resp); got != want[i] {
			return fmt.Errorf("post-kill %s diverged:\n  got  %s\n  want %s", q.Op, got, want[i])
		}
	}
	if got := standbyRep.Store.Snapshot().Builds; got != preBuilds {
		return fmt.Errorf("standby rebuilt through the failover: builds %d -> %d", preBuilds, got)
	}
	fs := fc.Stats()
	if fs.Ejects < 1 || fs.Failovers < 1 {
		return fmt.Errorf("failover not exercised: %+v", fs)
	}
	fmt.Printf("fleet: owner %s killed, standby served all %d families bit-identically from its peer-restored bundle (0 rebuilds)\n",
		owner, len(checks))

	// Adopt/trace leg: the second client's post-kill query must fail over
	// to a replica that has never seen the graph, adopt it, and restore it
	// from the bystander peer — all inside one trace.
	adoptGot, err := fc2.Query(ctx, adoptQuery)
	if err != nil {
		return fmt.Errorf("post-kill adopt query: %w", err)
	}
	if adoptGot.Value != adoptWant.Value {
		return fmt.Errorf("adopted answer diverged: got %d want %d", adoptGot.Value, adoptWant.Value)
	}
	events := fc2.Journal().Recent()
	var traceID string
	for _, e := range events { // newest-first: the post-kill restore wins
		if e.Type == obs.EventPeerRestore && e.Graph == adoptID {
			traceID = e.TraceID
			break
		}
	}
	if traceID == "" {
		return fmt.Errorf("journal holds no peer-restore event for %q: %+v", adoptID, events)
	}
	var sawEject, sawAdopt bool
	for _, e := range events {
		if e.TraceID != traceID {
			continue
		}
		switch e.Type {
		case obs.EventEject:
			sawEject = true
		case obs.EventAdopt:
			sawAdopt = true
		}
	}
	if !sawEject || !sawAdopt {
		return fmt.Errorf("journal events for trace %s incomplete: eject=%v adopt=%v", traceID, sawEject, sawAdopt)
	}
	rings := [][]obs.SpanView{fc2.Tracer().Recent(), fc2.Tracer().Slow()}
	for _, r := range reps {
		rings = append(rings, r.Srv.Tracer().Recent(), r.Srv.Tracer().Slow())
	}
	var stitched *obs.TraceView
	for _, tv := range obs.Stitch(rings...) {
		if tv.TraceID == traceID {
			stitched = &tv
			break
		}
	}
	if stitched == nil {
		return fmt.Errorf("trace %s did not stitch across the fleet", traceID)
	}
	if stitched.Hops < 2 {
		return fmt.Errorf("trace %s spans %d hop(s), want >= 2 (client -> adopter -> source peer)", traceID, stitched.Hops)
	}
	fmt.Printf("fleet: adopt trace %s stitched %d span(s) over %d hops with eject/adopt/peer-restore journal events\n",
		traceID, len(stitched.Spans), stitched.Hops)
	return nil
}
