// Command flowd serves the paper's query families over many graphs from
// one process: an HTTP/JSON daemon over the prepared-substrate store
// (internal/store + internal/flowd). Graphs are registered as generator
// specs; substrates (BDD + distance labelings) build lazily on first
// query, deduplicate across concurrent requests, and are evicted
// least-recently-used when the artifact budget is exceeded.
//
// Usage:
//
//	flowd -addr :8373 -budget-mb 256          # serve until interrupted
//	flowd -demo 8 ...                         # preregister demo grids demo0..demoN-1
//	flowd -selfcheck                          # end-to-end smoke: serve, query, exit
//
// Endpoints: POST /v1/graphs, GET /v1/graphs, POST /v1/query,
// GET /statsz, GET /healthz — see internal/flowd for the protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"planarflow/internal/flowd"
	"planarflow/internal/store"
)

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	budgetMB := flag.Int64("budget-mb", 256, "artifact memory budget in MiB (0 = unlimited)")
	maxGraphs := flag.Int("max-graphs", store.DefaultMaxGraphs, "cap on registered graphs (graphs are not evictable; < 0 = unlimited)")
	demo := flag.Int("demo", 0, "preregister this many demo grid graphs (demo0..demoN-1)")
	selfcheck := flag.Bool("selfcheck", false, "serve on a loopback port, run an end-to-end check, exit")
	flag.Parse()

	st := store.New(store.Config{MaxBytes: *budgetMB << 20, MaxGraphs: *maxGraphs})
	for i := 0; i < *demo; i++ {
		id := fmt.Sprintf("demo%d", i)
		if _, err := st.RegisterSpec(id, demoSpec(i)); err != nil {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(2)
		}
	}
	srv := flowd.NewServer(st)

	if *selfcheck {
		if err := runSelfcheck(srv); err != nil {
			fmt.Fprintln(os.Stderr, "flowd selfcheck:", err)
			os.Exit(1)
		}
		return
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowd:", err)
		os.Exit(2)
	}
	fmt.Printf("flowd: serving on %s (budget %d MiB, %d graphs preregistered)\n",
		ln.Addr(), *budgetMB, *demo)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "flowd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		fmt.Println("flowd: shut down")
	}
}

// demoSpec varies grid sizes and seeds so a demo fleet exercises the
// eviction policy with mixed footprints.
func demoSpec(i int) store.GraphSpec {
	side := 8 + 2*(i%4)
	return store.GraphSpec{
		Kind: "grid", Rows: side, Cols: side, Seed: int64(i + 1),
		WLo: 1, WHi: 9, CLo: 1, CHi: 16,
	}
}

// runSelfcheck is the end-to-end smoke path: serve on a loopback port,
// drive the daemon through its own client (register, one query per family,
// statsz), and report what the wire saw.
func runSelfcheck(srv *flowd.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := flowd.NewClient("http://" + ln.Addr().String())
	if err := c.Health(ctx); err != nil {
		return err
	}
	fmt.Println("flowd selfcheck: healthz ok")

	reg, err := c.RegisterWarm(ctx, "check", store.GraphSpec{
		Kind: "grid", Rows: 6, Cols: 6, Seed: 42, WLo: 1, WHi: 9, CLo: 1, CHi: 16,
	})
	if err != nil {
		return err
	}
	fmt.Printf("registered grid n=%d m=%d faces=%d warmed=%v\n", reg.N, reg.M, reg.Faces, reg.Warmed)

	queries := []flowd.QueryRequest{
		{Graph: "check", Op: "dist", U: 0, V: reg.N - 1},
		{Graph: "check", Op: "dualdist", U: 0, V: reg.Faces - 1},
		{Graph: "check", Op: "maxflow", U: 0, V: reg.N - 1},
		{Graph: "check", Op: "minstcut", U: 0, V: reg.N - 1},
		{Graph: "check", Op: "girth"},
	}
	var flowVal, cutVal int64
	for _, q := range queries {
		resp, err := c.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Op, err)
		}
		fmt.Printf("%s=%d rounds=%d (build %d + query %d) hit=%v\n",
			q.Op, resp.Value, resp.Rounds.Total, resp.Rounds.Build, resp.Rounds.Query, resp.Hit)
		switch q.Op {
		case "maxflow":
			flowVal = resp.Value
		case "minstcut":
			cutVal = resp.Value
		}
	}
	if flowVal != cutVal {
		return fmt.Errorf("maxflow %d != minstcut %d", flowVal, cutVal)
	}

	// The same families through the batch plane: one request, one bundle
	// pin, per-query isolation (the bad entry fails alone).
	batch, err := c.QueryBatch(ctx, flowd.BatchRequest{Graph: "check", Queries: []flowd.BatchQuery{
		{Op: "maxflow", U: 0, V: reg.N - 1},
		{Op: "dist", U: 0, V: reg.N - 1},
		{Op: "dist", U: 0, V: reg.N + 999}, // out of range: its own error entry
		{Op: "girth"},
	}})
	if err != nil {
		return err
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			fmt.Printf("batch[%d] %s error=%q\n", i, r.Op, r.Error)
			continue
		}
		fmt.Printf("batch[%d] %s=%d\n", i, r.Op, r.Value)
	}
	if batch.Results[0].Value != flowVal {
		return fmt.Errorf("batch maxflow %d != singleton %d", batch.Results[0].Value, flowVal)
	}
	if batch.Results[2].Error == "" {
		return fmt.Errorf("out-of-range batch entry did not error")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("statsz: graphs=%d resident=%d bytes=%d hits=%d misses=%d builds=%d\n",
		stats.Store.Graphs, stats.Store.Resident, stats.Store.Bytes,
		stats.Store.Hits, stats.Store.Misses, stats.Store.Builds)
	for _, op := range flowd.Ops {
		if f, ok := stats.Families[op]; ok {
			fmt.Printf("family %-10s count=%d errors=%d rounds=%d\n", op, f.Count, f.Errors, f.Rounds)
		}
	}
	fmt.Println("flowd selfcheck: ok")
	return nil
}
