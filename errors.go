package planarflow

import "errors"

// Sentinel errors for argument validation, applied uniformly across the
// public API. Every error returned for an invalid argument wraps one of
// these, so callers dispatch with errors.Is instead of string matching;
// the wrapping message carries the offending values.
var (
	// ErrVertexRange reports a vertex id outside [0, N).
	ErrVertexRange = errors.New("vertex out of range")
	// ErrFaceRange reports a face id outside [0, NumFaces).
	ErrFaceRange = errors.New("face out of range")
	// ErrSameVertex reports s == t where distinct endpoints are required.
	ErrSameVertex = errors.New("s and t must differ")
	// ErrSameFaceRequired reports an st-planar precondition violation: the
	// approximate flow/cut algorithms need s and t on a common face.
	ErrSameFaceRequired = errors.New("s and t must share a face")
	// ErrEpsilonRange reports an approximation parameter outside [0, 1).
	ErrEpsilonRange = errors.New("epsilon out of [0, 1)")
	// ErrNegativeCycle reports a (primal or dual) negative cycle where
	// distances were requested; per Thm 2.1 the labeling detects and
	// reports it instead of returning invalid distances.
	ErrNegativeCycle = errors.New("negative cycle")
	// ErrNegativeWeight reports negative edge weights passed to an
	// algorithm requiring non-negative weights (global min cut, directed
	// girth).
	ErrNegativeWeight = errors.New("negative edge weights not supported")
	// ErrNonPositiveWeight reports non-positive edge weights passed to an
	// algorithm requiring strictly positive weights (girth).
	ErrNonPositiveWeight = errors.New("edge weights must be positive")
	// ErrNilGraph reports a nil *Graph handed to Prepare or a one-shot
	// entry point.
	ErrNilGraph = errors.New("nil graph")
	// ErrUnknownQueryKind reports a Query whose Kind is not one of
	// QueryKinds (including the zero Query).
	ErrUnknownQueryKind = errors.New("unknown query kind")
	// ErrUnknownSubstrate reports a Substrate name Warm does not know.
	ErrUnknownSubstrate = errors.New("unknown substrate")
	// ErrLeafLimitRange reports a negative BDD leaf limit.
	ErrLeafLimitRange = errors.New("leaf limit must be non-negative")
	// ErrBadSnapshot reports snapshot bytes RestorePrepared cannot decode:
	// foreign data, a future format version, a failed checksum, truncation,
	// or a structurally invalid payload.
	ErrBadSnapshot = errors.New("bad snapshot")
	// ErrSnapshotMismatch reports a structurally valid snapshot that was
	// encoded against a different graph (fingerprint mismatch); restoring
	// it would silently corrupt answers, so it is rejected.
	ErrSnapshotMismatch = errors.New("snapshot belongs to a different graph")
)
