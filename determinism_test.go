package planarflow

import (
	"fmt"
	"testing"

	"planarflow/internal/artifact"
	"planarflow/internal/core"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// Two runs of the same seeded algorithm must produce byte-identical round
// ledgers: the same phases, charged the same rounds, in the same order.
// This pins end-to-end determinism of the whole stack (graph generation,
// BDD construction, labeling, flow search) under the concurrent scheduler.

func ledgerBytes(led *ledger.Ledger) string {
	var s string
	for _, e := range led.Entries() {
		s += fmt.Sprintf("%s|%d|%d\n", e.Phase, e.Rounds, e.Kind)
	}
	return s
}

func TestMaxFlowLedgerDeterministic(t *testing.T) {
	run := func() (int64, string) {
		g := GridGraph(9, 9).WithRandomAttrs(17, 1, 1, 1, 64)
		led := ledger.New()
		res, err := core.MaxFlow(artifact.New(g.raw()), 0, g.N()-1, core.Options{}, led)
		if err != nil {
			t.Fatal(err)
		}
		return res.Value, ledgerBytes(led)
	}
	v1, l1 := run()
	v2, l2 := run()
	if v1 != v2 {
		t.Fatalf("values diverge: %d vs %d", v1, v2)
	}
	if l1 != l2 {
		t.Fatal("two runs of the same seeded max-flow produced different ledgers")
	}
}

func TestGirthLedgerDeterministic(t *testing.T) {
	run := func() (int64, string) {
		g := CylinderGraph(4, 12).WithRandomAttrs(23, 5, 40, 1, 1)
		led := ledger.New()
		res, err := core.Girth(artifact.New(g.raw()), led)
		if err != nil {
			t.Fatal(err)
		}
		return res.Weight, ledgerBytes(led)
	}
	w1, l1 := run()
	w2, l2 := run()
	if w1 != w2 || l1 != l2 {
		t.Fatalf("girth runs diverge: weight %d vs %d, ledgers equal=%v", w1, w2, l1 == l2)
	}
	if w1 == spath.Inf {
		t.Fatal("cylinder unexpectedly acyclic")
	}
}

// raw exposes the embedded planar graph to in-module tests.
func (gr *Graph) raw() *planar.Graph { return gr.g }
