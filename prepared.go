package planarflow

import (
	"context"
	"errors"
	"fmt"

	"planarflow/internal/artifact"
	"planarflow/internal/core"
	"planarflow/internal/decode"
	"planarflow/internal/ledger"
)

// PreparedGraph is a graph bundled with its reusable preprocessing
// artifacts: the Bounded Diameter Decomposition and the primal/dual distance
// labelings of §5, built lazily on first use and shared by every subsequent
// query. The paper's observation that the Õ(D)-bit labels "actually allow
// computation of all pairs shortest paths" (§5) makes this split natural:
// construction costs Õ(D²) rounds once, queries decode locally.
//
// All query methods are safe for concurrent use; a substrate needed by many
// in-flight queries is built exactly once and the others block until it is
// ready. Every result that carries a Rounds reports the Build/Query split:
// the query that triggered a construction carries its cost (Build > 0),
// queries served from the warm artifact report Build == 0. The point-query
// methods (Dist, DirectedDist, DualDist) return bare distances — they decode
// locally at zero per-query round cost; the Build rounds of a construction
// they trigger are visible on the corresponding Do answer and through
// BuildRounds.
type PreparedGraph struct {
	gr  *Graph
	art *artifact.Prepared

	// eng is the decode engine: the default execution route of the
	// label-backed families (dualsssp, girth, dirgirth, globalmincut),
	// answering from the prepared substrates with no per-query simulated
	// network while replaying the identical charged-rounds record. Shared
	// by every WithContext view, like the substrates it decodes from.
	eng *decode.Engine

	// buildSink absorbs the build charges of Warm and of DoBatch's warmup
	// pass, whose signatures carry no Rounds. It only ever receives entries
	// when a substrate is actually constructed, so it stays bounded under
	// serving; the cumulative cost is reported by BuildRounds.
	buildSink *ledger.Ledger
}

// Prepare wraps gr for repeated serving. Nothing is built until the first
// query needs it, so Prepare itself is O(1).
func Prepare(gr *Graph) (*PreparedGraph, error) {
	if gr == nil || gr.g == nil {
		return nil, fmt.Errorf("planarflow: Prepare: %w", ErrNilGraph)
	}
	return &PreparedGraph{gr: gr, art: artifact.New(gr.g), eng: decode.New(), buildSink: ledger.New()}, nil
}

// PrepareContext is Prepare with the returned PreparedGraph bound to ctx,
// as by WithContext.
func PrepareContext(ctx context.Context, gr *Graph) (*PreparedGraph, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.WithContext(ctx), nil
}

// WithContext returns a request-scoped view over the same substrate cache:
// queries on the view honor ctx at substrate-build checkpoints — a
// canceled waiter stops waiting, and a canceled builder abandons the
// half-built substrate (the next live query restarts it). Queries
// interrupted this way return an error wrapping ctx's error
// (context.Canceled / context.DeadlineExceeded). Substrates built through
// any view are shared by all views of the same PreparedGraph.
func (p *PreparedGraph) WithContext(ctx context.Context) *PreparedGraph {
	return &PreparedGraph{gr: p.gr, art: p.art.WithContext(ctx), eng: p.eng, buildSink: p.buildSink}
}

// Graph returns the underlying graph.
func (p *PreparedGraph) Graph() *Graph { return p.gr }

// SubstrateStat describes one built substrate of a prepared graph: which
// artifact it is, its estimated resident footprint, and its one-time
// construction cost in simulated rounds.
type SubstrateStat struct {
	Kind        string `json:"kind"`              // "bdd" | "dual-label" | "primal-label"
	Lengths     string `json:"lengths,omitempty"` // length function of a labeling
	LeafLimit   int    `json:"leaf_limit"`
	Bytes       int64  `json:"bytes"`
	BuildRounds int64  `json:"build_rounds"`
}

// PreparedStats is a point-in-time snapshot of everything a PreparedGraph
// has built: the per-substrate breakdown plus the totals a serving layer
// budgets by.
type PreparedStats struct {
	Substrates  []SubstrateStat `json:"substrates"`
	Bytes       int64           `json:"bytes"`        // total estimated resident footprint
	BuildRounds int64           `json:"build_rounds"` // total one-time construction rounds
}

// Stats reports the substrates built so far (in-flight builds appear once
// they publish), with estimated resident bytes and build rounds per
// substrate. The byte figures are accounting estimates for memory
// budgeting and eviction policy, not exact heap measurements.
func (p *PreparedGraph) Stats() PreparedStats {
	as := p.art.Stats()
	st := PreparedStats{Bytes: as.Bytes, BuildRounds: as.BuildRounds}
	for _, s := range as.Substrates {
		st.Substrates = append(st.Substrates, SubstrateStat{
			Kind: s.Kind, Lengths: s.LengthsName, LeafLimit: s.LeafLimit,
			Bytes: s.Bytes, BuildRounds: s.BuildRounds,
		})
	}
	return st
}

// BuildRounds reports the cumulative cost of every substrate built so far
// (each BDD and labeling counted once, however many queries shared it).
func (p *PreparedGraph) BuildRounds() Rounds {
	return roundsOf(p.art.BuildLedger())
}

func (p *PreparedGraph) checkVertices(vs ...int) error {
	for _, v := range vs {
		if v < 0 || v >= p.gr.N() {
			return fmt.Errorf("planarflow: vertex %d out of [0,%d): %w", v, p.gr.N(), ErrVertexRange)
		}
	}
	return nil
}

func (p *PreparedGraph) checkFaces(fs ...int) error {
	for _, f := range fs {
		if f < 0 || f >= p.gr.NumFaces() {
			return fmt.Errorf("planarflow: face %d out of [0,%d): %w", f, p.gr.NumFaces(), ErrFaceRange)
		}
	}
	return nil
}

func (p *PreparedGraph) checkPair(s, t int) error {
	if err := p.checkVertices(s, t); err != nil {
		return err
	}
	if s == t {
		return fmt.Errorf("planarflow: s=t=%d: %w", s, ErrSameVertex)
	}
	return nil
}

func (p *PreparedGraph) checkSTPlanar(s, t int, eps float64) error {
	if err := p.checkPair(s, t); err != nil {
		return err
	}
	if eps < 0 || eps >= 1 {
		return fmt.Errorf("planarflow: eps=%v: %w", eps, ErrEpsilonRange)
	}
	// The st-planarity precondition (s, t on a common face) is checked by
	// core, which needs the common face anyway; sentinelErr maps its error.
	return nil
}

// sentinelErr translates core's typed precondition errors into the public
// sentinels, so each precondition is computed exactly once (in core) while
// callers still dispatch with the planarflow sentinels.
func sentinelErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrNotSTPlanar):
		return fmt.Errorf("planarflow: %v: %w", err, ErrSameFaceRequired)
	case errors.Is(err, core.ErrNegativeWeight):
		return fmt.Errorf("planarflow: %v: %w", err, ErrNegativeWeight)
	case errors.Is(err, core.ErrNonPositiveWeight):
		return fmt.Errorf("planarflow: %v: %w", err, ErrNonPositiveWeight)
	case errors.Is(err, core.ErrFaceRange):
		return fmt.Errorf("planarflow: %v: %w", err, ErrFaceRange)
	default:
		return err
	}
}

// MaxFlow computes the exact maximum st-flow (Thm 1.2). The BDD is shared
// across queries; the per-λ residual labelings of the Miller–Naor search are
// per-query work. Thin wrapper over Do(MaxFlowQuery(s, t)).
func (p *PreparedGraph) MaxFlow(s, t int) (*FlowResult, error) {
	a, err := p.do(MaxFlowQuery(s, t))
	if err != nil {
		return nil, err
	}
	return &FlowResult{Value: a.Value, Flow: a.Flow, Iterations: a.Iterations, Rounds: a.Rounds}, nil
}

// MinSTCut computes the exact directed minimum st-cut (Thm 6.1). Thin
// wrapper over Do(MinSTCutQuery(s, t)).
func (p *PreparedGraph) MinSTCut(s, t int) (*CutResult, error) {
	a, err := p.do(MinSTCutQuery(s, t))
	if err != nil {
		return nil, err
	}
	return &CutResult{Value: a.Value, Side: a.Side, CutEdges: a.Edges, Rounds: a.Rounds}, nil
}

// ApproxMaxFlowSTPlanar computes a (1-eps)-approximate maximum st-flow with
// s and t on a common face (Thm 1.3); eps = 0 runs the exact oracle. Thin
// wrapper over Do(STFlowQuery(s, t, eps)).
func (p *PreparedGraph) ApproxMaxFlowSTPlanar(s, t int, eps float64) (*ApproxFlowResult, error) {
	a, err := p.do(STFlowQuery(s, t, eps))
	if err != nil {
		return nil, err
	}
	return &ApproxFlowResult{Value: a.Value, Flow: a.Flow, Epsilon: eps, Rounds: a.Rounds}, nil
}

// ApproxMinCutSTPlanar computes the corresponding (approximate) minimum
// st-cut (Thm 6.2). Thin wrapper over Do(STCutQuery(s, t, eps)).
func (p *PreparedGraph) ApproxMinCutSTPlanar(s, t int, eps float64) (*CutResult, error) {
	a, err := p.do(STCutQuery(s, t, eps))
	if err != nil {
		return nil, err
	}
	return &CutResult{Value: a.Value, Side: a.Side, CutEdges: a.Edges, Rounds: a.Rounds}, nil
}

// Girth computes the weighted girth (Thm 1.7). Its minor-aggregation route
// has no reusable substrate, so prepared and one-shot cost coincide. Thin
// wrapper over Do(GirthQuery()).
func (p *PreparedGraph) Girth() (*GirthResult, error) {
	a, err := p.do(GirthQuery())
	if err != nil {
		return nil, err
	}
	return &GirthResult{Weight: a.Value, CycleEdges: a.Edges, Rounds: a.Rounds}, nil
}

// DirectedGirth computes the minimum weight of a directed cycle via the
// SSSP/BDD route of [36]; the directed primal labeling it decodes from is a
// shared artifact. Thin wrapper over Do(DirectedGirthQuery()).
func (p *PreparedGraph) DirectedGirth() (*GirthResult, error) {
	a, err := p.do(DirectedGirthQuery())
	if err != nil {
		return nil, err
	}
	return &GirthResult{Weight: a.Value, Rounds: a.Rounds}, nil
}

// GlobalMinCut computes the directed global minimum cut (Thm 1.5); the
// free-reversal dual labeling is a shared artifact. Thin wrapper over
// Do(GlobalMinCutQuery()).
func (p *PreparedGraph) GlobalMinCut() (*CutResult, error) {
	a, err := p.do(GlobalMinCutQuery())
	if err != nil {
		return nil, err
	}
	return &CutResult{Value: a.Value, Side: a.Side, CutEdges: a.Edges, Rounds: a.Rounds}, nil
}

// DualSSSP computes shortest paths in the dual graph from the given source
// face (Thm 2.1 / Lemma 2.2). The undirected dual labeling is the shared
// artifact; each query pays one label broadcast. Thin wrapper over
// Do(DualSSSPQuery(sourceFace)).
func (p *PreparedGraph) DualSSSP(sourceFace int) (*DualSSSPResult, error) {
	a, err := p.do(DualSSSPQuery(sourceFace))
	if err != nil {
		return nil, err
	}
	return &DualSSSPResult{Source: sourceFace, Dist: a.Dist, NegCycle: a.NegCycle, Rounds: a.Rounds}, nil
}

// Dist returns the shortest-path distance from u to v under undirected
// weight semantics (both traversal directions cost Weight), decoding locally
// from the shared primal labeling; Inf if unreachable. Thin wrapper over
// Do(DistQuery(u, v)).
func (p *PreparedGraph) Dist(u, v int) (int64, error) {
	a, err := p.do(DistQuery(u, v))
	if err != nil {
		return 0, err
	}
	return a.Value, nil
}

// DirectedDist is Dist with one-way edge semantics (each edge traversable
// only U -> V). Thin wrapper over Do(DirectedDistQuery(u, v)).
func (p *PreparedGraph) DirectedDist(u, v int) (int64, error) {
	a, err := p.do(DirectedDistQuery(u, v))
	if err != nil {
		return 0, err
	}
	return a.Value, nil
}

// DualDist returns the shortest-path distance between two faces of the dual
// graph under undirected weight semantics. Thin wrapper over
// Do(DualDistQuery(f1, f2)).
func (p *PreparedGraph) DualDist(f1, f2 int) (int64, error) {
	a, err := p.do(DualDistQuery(f1, f2))
	if err != nil {
		return 0, err
	}
	return a.Value, nil
}
