package planarflow

import (
	"fmt"

	"planarflow/internal/artifact"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/primallabel"
)

// DistanceOracle answers vertex-to-vertex and face-to-face (dual) distance
// queries from the Õ(D)-bit distance labels of [27] and §5. It is a thin
// view over a PreparedGraph's label artifacts: construction costs Õ(D²)
// simulated rounds once per graph; afterwards any pair decodes locally from
// two labels — the paper's observation that the labeling "actually allows
// computation of all pairs shortest paths" (§5). Safe for concurrent use.
type DistanceOracle struct {
	g      *Graph
	primal *primallabel.Labeling
	dual   *duallabel.Labeling
	rounds Rounds
}

// NewDistanceOracle builds primal and dual distance labels for the graph
// under its edge weights (both traversal directions cost Weight; use
// NewDirectedDistanceOracle for one-way semantics). Weights may be negative
// as long as no negative cycle exists; a negative cycle is reported as an
// error, per Thm 2.1.
func NewDistanceOracle(gr *Graph) (*DistanceOracle, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.DistanceOracle()
}

// NewDirectedDistanceOracle builds labels where each edge is traversable
// only in its U -> V direction.
func NewDirectedDistanceOracle(gr *Graph) (*DistanceOracle, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.DirectedDistanceOracle()
}

// DistanceOracle returns the undirected distance oracle over this prepared
// graph's label artifacts, building them if needed. Its Rounds report the
// cost paid by this call: the full labeling construction the first time, and
// zero once the artifacts are warm.
func (p *PreparedGraph) DistanceOracle() (*DistanceOracle, error) {
	return p.oracle(artifact.Undirected)
}

// DirectedDistanceOracle is DistanceOracle with one-way edge semantics.
func (p *PreparedGraph) DirectedDistanceOracle() (*DistanceOracle, error) {
	return p.oracle(artifact.Directed)
}

func (p *PreparedGraph) oracle(kind artifact.LengthKind) (*DistanceOracle, error) {
	led := ledger.New()
	pl, err := p.art.PrimalLabels(kind, 0, led)
	if err != nil {
		return nil, fmt.Errorf("planarflow: %w", err)
	}
	if pl.NegCycle {
		return nil, fmt.Errorf("planarflow: graph: %w", ErrNegativeCycle)
	}
	dl, err := p.art.DualLabels(kind, 0, led)
	if err != nil {
		return nil, fmt.Errorf("planarflow: %w", err)
	}
	if dl.NegCycle {
		return nil, fmt.Errorf("planarflow: dual graph: %w", ErrNegativeCycle)
	}
	return &DistanceOracle{g: p.gr, primal: pl, dual: dl, rounds: roundsOf(led)}, nil
}

// Rounds reports the construction cost paid when this oracle was built (zero
// when it was served from an already-warm PreparedGraph).
func (o *DistanceOracle) Rounds() Rounds { return o.rounds }

// Dist returns the shortest-path distance from u to v (Inf if unreachable).
func (o *DistanceOracle) Dist(u, v int) (int64, error) {
	if u < 0 || v < 0 || u >= o.g.N() || v >= o.g.N() {
		return 0, fmt.Errorf("planarflow: vertex pair (%d,%d) out of [0,%d): %w", u, v, o.g.N(), ErrVertexRange)
	}
	return o.primal.Dist(u, v), nil
}

// DualDist returns the shortest-path distance between two faces in the dual
// graph G* (each edge crossable in both directions at its weight, or one
// direction for directed oracles).
func (o *DistanceOracle) DualDist(f1, f2 int) (int64, error) {
	if f1 < 0 || f2 < 0 || f1 >= o.g.NumFaces() || f2 >= o.g.NumFaces() {
		return 0, fmt.Errorf("planarflow: face pair (%d,%d) out of [0,%d): %w", f1, f2, o.g.NumFaces(), ErrFaceRange)
	}
	return o.dual.Dist(f1, f2), nil
}

// LabelWords returns the size, in O(log n)-bit words, of vertex v's primal
// label — the quantity Lemma 5.17 bounds by Õ(D).
func (o *DistanceOracle) LabelWords(v int) int {
	l := o.primal.Label(o.primal.T.Root, v)
	if l == nil {
		return 0
	}
	return l.Words()
}
