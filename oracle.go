package planarflow

import (
	"fmt"

	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
	"planarflow/internal/spath"
)

// DistanceOracle answers vertex-to-vertex and face-to-face (dual) distance
// queries from the Õ(D)-bit distance labels of [27] and §5. Construction
// costs Õ(D²) simulated rounds once; afterwards any pair decodes locally
// from two labels — the paper's observation that the labeling "actually
// allows computation of all pairs shortest paths" (§5).
type DistanceOracle struct {
	g      *Graph
	primal *primallabel.Labeling
	dual   *duallabel.Labeling
	rounds Rounds
}

// NewDistanceOracle builds primal and dual distance labels for the graph
// under its edge weights (both traversal directions cost Weight; use
// NewDirectedDistanceOracle for one-way semantics). Weights may be negative
// as long as no negative cycle exists; a negative cycle is reported as an
// error, per Thm 2.1.
func NewDistanceOracle(gr *Graph) (*DistanceOracle, error) {
	return newOracle(gr, false)
}

// NewDirectedDistanceOracle builds labels where each edge is traversable
// only in its U -> V direction.
func NewDirectedDistanceOracle(gr *Graph) (*DistanceOracle, error) {
	return newOracle(gr, true)
}

func newOracle(gr *Graph, directed bool) (*DistanceOracle, error) {
	led := ledger.New()
	tree := bdd.Build(gr.g, 0, led)
	lens := make([]int64, gr.g.NumDarts())
	for e := 0; e < gr.g.M(); e++ {
		w := gr.g.Edge(e).Weight
		lens[planar.ForwardDart(e)] = w
		if directed {
			lens[planar.BackwardDart(e)] = spath.Inf
		} else {
			lens[planar.BackwardDart(e)] = w
		}
	}
	pl := primallabel.Compute(tree, lens, led)
	if pl.NegCycle {
		return nil, fmt.Errorf("planarflow: graph contains a negative cycle")
	}
	dl := duallabel.Compute(tree, lens, led)
	if dl.NegCycle {
		return nil, fmt.Errorf("planarflow: dual graph contains a negative cycle")
	}
	return &DistanceOracle{g: gr, primal: pl, dual: dl, rounds: roundsOf(led)}, nil
}

// Rounds reports the construction cost.
func (o *DistanceOracle) Rounds() Rounds { return o.rounds }

// Dist returns the shortest-path distance from u to v (Inf if unreachable).
func (o *DistanceOracle) Dist(u, v int) (int64, error) {
	if u < 0 || v < 0 || u >= o.g.N() || v >= o.g.N() {
		return 0, fmt.Errorf("planarflow: vertex pair (%d,%d) out of range", u, v)
	}
	return o.primal.Dist(u, v), nil
}

// DualDist returns the shortest-path distance between two faces in the dual
// graph G* (each edge crossable in both directions at its weight, or one
// direction for directed oracles).
func (o *DistanceOracle) DualDist(f1, f2 int) (int64, error) {
	if f1 < 0 || f2 < 0 || f1 >= o.g.NumFaces() || f2 >= o.g.NumFaces() {
		return 0, fmt.Errorf("planarflow: face pair (%d,%d) out of range", f1, f2)
	}
	return o.dual.Dist(f1, f2), nil
}

// LabelWords returns the size, in O(log n)-bit words, of vertex v's primal
// label — the quantity Lemma 5.17 bounds by Õ(D).
func (o *DistanceOracle) LabelWords(v int) int {
	l := o.primal.Label(o.primal.T.Root, v)
	if l == nil {
		return 0
	}
	return l.Words()
}
