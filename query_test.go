package planarflow

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestDoEquivalence asserts that Do(Q) is bit-identical — payload and full
// Rounds report, per-phase breakdown included — to the legacy named method
// for every query family. Each side runs on its own fresh PreparedGraph so
// both pay the same (deterministic) build cost.
func TestDoEquivalence(t *testing.T) {
	g := servingGraph()
	gd := BoustrophedonGridGraph(5, 5).WithRandomAttrs(7, 1, 20, 1, 1)
	s, tt := 0, g.N()-1
	ctx := context.Background()

	fresh := func(gr *Graph) *PreparedGraph {
		p, err := Prepare(gr)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("MaxFlow", func(t *testing.T) {
		want, err1 := fresh(g).MaxFlow(s, tt)
		a, err2 := fresh(g).Do(ctx, MaxFlowQuery(s, tt))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &FlowResult{Value: a.Value, Flow: a.Flow, Iterations: a.Iterations, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Do diverges from MaxFlow:\n%+v\n%+v", want, got)
		}
	})
	t.Run("MinSTCut", func(t *testing.T) {
		want, err1 := fresh(g).MinSTCut(s, tt)
		a, err2 := fresh(g).Do(ctx, MinSTCutQuery(s, tt))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &CutResult{Value: a.Value, Side: a.Side, CutEdges: a.Edges, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("Do diverges from MinSTCut")
		}
	})
	t.Run("STFlowAndSTCut", func(t *testing.T) {
		want, err1 := fresh(g).ApproxMaxFlowSTPlanar(s, tt, 0.1)
		a, err2 := fresh(g).Do(ctx, STFlowQuery(s, tt, 0.1))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &ApproxFlowResult{Value: a.Value, Flow: a.Flow, Epsilon: 0.1, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("Do diverges from ApproxMaxFlowSTPlanar")
		}
		wcut, err3 := fresh(g).ApproxMinCutSTPlanar(s, tt, 0)
		ac, err4 := fresh(g).Do(ctx, STCutQuery(s, tt, 0))
		if err3 != nil || err4 != nil {
			t.Fatal(err3, err4)
		}
		gcut := &CutResult{Value: ac.Value, Side: ac.Side, CutEdges: ac.Edges, Rounds: ac.Rounds}
		if !reflect.DeepEqual(wcut, gcut) {
			t.Fatal("Do diverges from ApproxMinCutSTPlanar")
		}
	})
	t.Run("Girth", func(t *testing.T) {
		want, err1 := fresh(g).Girth()
		a, err2 := fresh(g).Do(ctx, GirthQuery())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &GirthResult{Weight: a.Value, CycleEdges: a.Edges, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("Do diverges from Girth")
		}
	})
	t.Run("DirectedGirth", func(t *testing.T) {
		want, err1 := fresh(gd).DirectedGirth()
		a, err2 := fresh(gd).Do(ctx, DirectedGirthQuery())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &GirthResult{Weight: a.Value, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("Do diverges from DirectedGirth")
		}
	})
	t.Run("GlobalMinCut", func(t *testing.T) {
		want, err1 := fresh(gd).GlobalMinCut()
		a, err2 := fresh(gd).Do(ctx, GlobalMinCutQuery())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &CutResult{Value: a.Value, Side: a.Side, CutEdges: a.Edges, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("Do diverges from GlobalMinCut")
		}
	})
	t.Run("DualSSSP", func(t *testing.T) {
		want, err1 := fresh(g).DualSSSP(1)
		a, err2 := fresh(g).Do(ctx, DualSSSPQuery(1))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		got := &DualSSSPResult{Source: 1, Dist: a.Dist, NegCycle: a.NegCycle, Rounds: a.Rounds}
		if !reflect.DeepEqual(want, got) {
			t.Fatal("Do diverges from DualSSSP")
		}
	})
	t.Run("PointDistances", func(t *testing.T) {
		pLegacy, pDo := fresh(g), fresh(g)
		first := true
		for u := 0; u < g.N(); u += 7 {
			for v := 0; v < g.N(); v += 5 {
				want, err1 := pLegacy.Dist(u, v)
				a, err2 := pDo.Do(ctx, DistQuery(u, v))
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				// Point decodes have no per-query rounds; the one query
				// that triggers the labeling build carries it as Build.
				if a.Value != want || a.Rounds.Query != 0 {
					t.Fatalf("dist(%d,%d): Do %d (query rounds %d), legacy %d", u, v, a.Value, a.Rounds.Query, want)
				}
				if first && a.Rounds.Build <= 0 {
					t.Fatalf("triggering dist query Build=%d, want > 0", a.Rounds.Build)
				}
				if !first && a.Rounds.Build != 0 {
					t.Fatalf("warm dist query Build=%d, want 0", a.Rounds.Build)
				}
				first = false
			}
		}
		wantD, err1 := pLegacy.DirectedDist(2, 9)
		ad, err2 := pDo.Do(ctx, DirectedDistQuery(2, 9))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ad.Value != wantD {
			t.Fatalf("dirdist: Do %d, legacy %d", ad.Value, wantD)
		}
		wantF, err3 := pLegacy.DualDist(0, g.NumFaces()-1)
		af, err4 := pDo.Do(ctx, DualDistQuery(0, g.NumFaces()-1))
		if err3 != nil || err4 != nil {
			t.Fatal(err3, err4)
		}
		if af.Value != wantF {
			t.Fatalf("dualdist: Do %d, legacy %d", af.Value, wantF)
		}
	})
}

// TestDoErrors asserts Do rejects what the legacy methods reject, with the
// same sentinels, plus the query-plane-specific sentinels.
func TestDoErrors(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		q    Query
		want error
	}{
		{Query{}, ErrUnknownQueryKind},
		{Query{Kind: "warp"}, ErrUnknownQueryKind},
		{DistQuery(-1, 2), ErrVertexRange},
		{DistQuery(0, g.N()), ErrVertexRange},
		{DualDistQuery(0, g.NumFaces()), ErrFaceRange},
		{DualSSSPQuery(g.NumFaces()), ErrFaceRange},
		{MaxFlowQuery(3, 3), ErrSameVertex},
		{STFlowQuery(0, g.N()-1, 1.5), ErrEpsilonRange},
		{MaxFlowQuery(0, 1).WithLeafLimit(-4), ErrLeafLimitRange},
	}
	for _, tc := range cases {
		if _, err := p.Do(ctx, tc.q); !errors.Is(err, tc.want) {
			t.Errorf("Do(%+v) error %v, want %v", tc.q, err, tc.want)
		}
	}
}

// batchQueries is the mixed-family workload the DoBatch tests share.
func batchQueries(g *Graph) []Query {
	n, f := g.N(), g.NumFaces()
	return []Query{
		DistQuery(0, n-1),
		MaxFlowQuery(0, n-1),
		DualSSSPQuery(1),
		GirthQuery(),
		MinSTCutQuery(0, n-1),
		DualDistQuery(0, f-1),
		DistQuery(3, 17),
		STFlowQuery(0, n-1, 0.1),
		DirectedDistQuery(2, 9),
		STCutQuery(0, n-1, 0),
	}
}

// TestDoBatchEquivalence runs a mixed-family batch with a concurrent
// worker pool (exercised under -race) and asserts every answer's payload
// and per-query rounds are identical to the legacy method calls, and that
// the warmup pass stripped every Build charge from the answers.
func TestDoBatchEquivalence(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(g)
	answers, err := p.DoBatch(context.Background(), queries, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(queries) {
		t.Fatalf("batch returned %d answers for %d queries", len(answers), len(queries))
	}
	for i, a := range answers {
		if a == nil || a.Err != nil {
			t.Fatalf("query %d (%s): answer %+v", i, queries[i].Kind, a)
		}
		if a.Kind != queries[i].Kind {
			t.Fatalf("query %d: kind %q answered as %q", i, queries[i].Kind, a.Kind)
		}
		if a.Rounds.Build != 0 {
			t.Fatalf("query %d (%s): Build=%d after warmup, want 0", i, a.Kind, a.Rounds.Build)
		}
	}

	// Legacy ground truth on a fresh bundle (warm after first calls).
	pl, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		a := answers[i]
		legacy, err := pl.Do(nil, q) // fresh-bundle do() shares the legacy path
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != legacy.Value || !reflect.DeepEqual(a.Dist, legacy.Dist) ||
			!reflect.DeepEqual(a.Flow, legacy.Flow) || !reflect.DeepEqual(a.Side, legacy.Side) ||
			!reflect.DeepEqual(a.Edges, legacy.Edges) || a.NegCycle != legacy.NegCycle ||
			a.Iterations != legacy.Iterations {
			t.Fatalf("query %d (%s): batch payload diverges from sequential", i, q.Kind)
		}
		if a.Rounds.Query != legacy.Rounds.Query {
			t.Fatalf("query %d (%s): batch Query rounds %d, sequential %d", i, q.Kind, a.Rounds.Query, legacy.Rounds.Query)
		}
	}

	// And against the named legacy methods proper, for the headline pair.
	flow, err := pl.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if answers[1].Value != flow.Value || !reflect.DeepEqual(answers[1].Flow, flow.Flow) {
		t.Fatal("batch maxflow diverges from legacy MaxFlow")
	}
}

// TestDoBatchIsolation asserts one bad query fails alone: its Answer
// carries the error, every other entry of the batch succeeds.
func TestDoBatchIsolation(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		DistQuery(0, 5),
		MaxFlowQuery(7, 7),       // ErrSameVertex
		DistQuery(0, g.N()+1000), // ErrVertexRange (graph-dependent)
		Query{Kind: "warp"},      // ErrUnknownQueryKind (fails validation)
		GirthQuery(),
	}
	answers, err := p.DoBatch(context.Background(), queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := []error{nil, ErrSameVertex, ErrVertexRange, ErrUnknownQueryKind, nil}
	for i, a := range answers {
		if wantErr[i] == nil {
			if a == nil || a.Err != nil {
				t.Fatalf("query %d: unexpected failure %+v", i, a)
			}
			continue
		}
		if a == nil || !errors.Is(a.Err, wantErr[i]) {
			t.Fatalf("query %d: Err=%v, want %v", i, a, wantErr[i])
		}
	}
}

// TestDoBatchCanceled asserts a canceled context settles every entry with
// the cancellation error instead of hanging or panicking.
func TestDoBatchCanceled(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	answers, err := p.DoBatch(ctx, batchQueries(g), BatchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v, want context.Canceled", err)
	}
	for i, a := range answers {
		if a == nil || !errors.Is(a.Err, context.Canceled) {
			t.Fatalf("query %d not settled with cancellation: %+v", i, a)
		}
	}
}

// TestWarm asserts the eager prefetch moves every build out of the first
// query: after Warm, queries over the warmed substrates report Build == 0
// while the construction cost shows up in BuildRounds.
func TestWarm(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b := p.BuildRounds(); b.Total <= 0 {
		t.Fatalf("BuildRounds %d after Warm, want > 0", b.Total)
	}
	if st := p.Stats(); len(st.Substrates) != 3 { // bdd + primal + dual undirected
		t.Fatalf("substrates after default Warm: %d, want 3", len(st.Substrates))
	}
	// maxflow needs only the BDD, which the default set includes.
	res, err := p.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds.Build != 0 {
		t.Fatalf("post-Warm maxflow Build=%d, want 0", res.Rounds.Build)
	}
	if _, err := p.Dist(0, 1); err != nil {
		t.Fatal(err)
	}

	// Named substrates, including one outside the default set.
	if err := p.Warm(nil, SubstrateDualFreeReversal); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); len(st.Substrates) != 4 {
		t.Fatalf("substrates after free-reversal Warm: %d, want 4", len(st.Substrates))
	}
	if err := p.Warm(nil, Substrate("tarmac")); !errors.Is(err, ErrUnknownSubstrate) {
		t.Fatalf("unknown substrate error %v", err)
	}

	// A canceled Warm fails without poisoning the bundle.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p2, err := Prepare(servingGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Warm(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Warm error %v", err)
	}
	if _, err := p2.Dist(0, 1); err != nil {
		t.Fatalf("query after canceled Warm: %v", err)
	}
}

// TestDoBatchConcurrentBatches fires several mixed batches at one bundle
// under -race and cross-checks a stable answer.
func TestDoBatchConcurrentBatches(t *testing.T) {
	g := servingGraph()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Dist(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			answers, err := p.DoBatch(context.Background(), batchQueries(g), BatchOptions{Workers: 3})
			if err != nil {
				t.Error(err)
				return
			}
			if answers[0].Err != nil || answers[0].Value != want {
				t.Errorf("concurrent batch dist: %+v, want %d", answers[0], want)
			}
		}()
	}
	wg.Wait()
}

// TestQueryGoldenJSON pins the wire encoding of every query kind: the
// golden strings are the protocol, and every Query round-trips through
// them losslessly.
func TestQueryGoldenJSON(t *testing.T) {
	golden := []struct {
		q    Query
		json string
	}{
		{DistQuery(3, 5), `{"kind":"dist","u":3,"v":5}`},
		{DirectedDistQuery(2, 9), `{"kind":"dirdist","u":2,"v":9}`},
		{DualDistQuery(0, 7), `{"kind":"dualdist","v":7}`},
		{DualSSSPQuery(4), `{"kind":"dualsssp","source":4}`},
		{MaxFlowQuery(0, 35), `{"kind":"maxflow","v":35}`},
		{MinSTCutQuery(1, 34), `{"kind":"minstcut","u":1,"v":34}`},
		{STFlowQuery(0, 35, 0.25), `{"kind":"stflow","v":35,"eps":0.25}`},
		{STCutQuery(0, 35, 0), `{"kind":"stcut","v":35}`},
		{GirthQuery(), `{"kind":"girth"}`},
		{DirectedGirthQuery(), `{"kind":"dirgirth"}`},
		{GlobalMinCutQuery(), `{"kind":"globalmincut"}`},
		{MaxFlowQuery(0, 35).WithLeafLimit(16).WithoutPhases(),
			`{"kind":"maxflow","v":35,"leaf_limit":16,"no_phases":true}`},
		{GirthQuery().WithSimulated(), `{"kind":"girth","simulated":true}`},
	}
	if kinds := len(QueryKinds); kinds != 11 {
		t.Fatalf("QueryKinds has %d kinds; update the golden table", kinds)
	}
	for _, tc := range golden {
		enc, err := json.Marshal(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != tc.json {
			t.Errorf("Query(%s) encodes as %s, golden %s", tc.q.Kind, enc, tc.json)
		}
		var back Query
		if err := json.Unmarshal([]byte(tc.json), &back); err != nil {
			t.Fatal(err)
		}
		if back != tc.q {
			t.Errorf("golden %s decodes to %+v, want %+v", tc.json, back, tc.q)
		}
	}
}

// TestQuerySubstrates pins the query -> substrate map the warmup pass and
// Warm rely on.
func TestQuerySubstrates(t *testing.T) {
	cases := map[QueryKind][]Substrate{
		QDist:          {SubstratePrimalUndirected},
		QDirectedDist:  {SubstratePrimalDirected},
		QDualDist:      {SubstrateDualUndirected},
		QDualSSSP:      {SubstrateDualUndirected},
		QMaxFlow:       {SubstrateBDD},
		QMinSTCut:      {SubstrateBDD},
		QSTFlow:        nil,
		QSTCut:         nil,
		QGirth:         nil,
		QDirectedGirth: {SubstratePrimalDirected},
		QGlobalMinCut:  {SubstrateDualFreeReversal},
	}
	for kind, want := range cases {
		if got := (Query{Kind: kind}).Substrates(); !reflect.DeepEqual(got, want) {
			t.Errorf("Substrates(%s) = %v, want %v", kind, got, want)
		}
	}
}
