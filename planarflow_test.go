package planarflow

import (
	"testing"
)

func TestBuilderRoundTrip(t *testing.T) {
	// A triangle via the public builder.
	b := NewBuilder(3)
	e01 := b.AddEdge(0, 1, 1, 5)
	e12 := b.AddEdge(1, 2, 2, 5)
	e20 := b.AddEdge(2, 0, 3, 5)
	if err := b.SetRotation(0, []int{e01, e20}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetRotation(1, []int{e12, e01}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetRotation(2, []int{e20, e12}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 || g.NumFaces() != 2 {
		t.Fatalf("n=%d m=%d f=%d", g.N(), g.M(), g.NumFaces())
	}
	gr, err := Girth(g)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Weight != 6 {
		t.Fatalf("girth=%d want 6", gr.Weight)
	}
}

func TestBuilderRejectsBadRotation(t *testing.T) {
	b := NewBuilder(2)
	e := b.AddEdge(0, 1, 1, 1)
	if err := b.SetRotation(0, []int{e + 5}); err == nil {
		t.Fatal("expected unknown-edge error")
	}
	if err := b.SetRotation(1, []int{e}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected build error for missing rotation")
	}
}

func TestPublicMaxFlow(t *testing.T) {
	g := GridGraph(4, 4).WithRandomAttrs(1, 1, 1, 1, 9)
	res, err := MaxFlow(g, 0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 {
		t.Fatalf("value=%d", res.Value)
	}
	if err := CheckFlow(g, 0, g.N()-1, res.Flow, res.Value); err != nil {
		t.Fatal(err)
	}
	if res.Rounds.Total <= 0 || len(res.Rounds.ByPhase) == 0 {
		t.Fatal("missing round report")
	}
	cut, err := MinSTCut(g, 0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Value != res.Value {
		t.Fatalf("cut=%d flow=%d", cut.Value, res.Value)
	}
}

func TestPublicApproxFlow(t *testing.T) {
	g := GridGraph(4, 5).WithRandomAttrs(2, 1, 1, 50, 200)
	res, err := ApproxMaxFlowSTPlanar(g, 0, g.N()-1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckUndirectedFlow(g, 0, g.N()-1, res.Flow, res.Value); err != nil {
		t.Fatal(err)
	}
	cut, err := ApproxMinCutSTPlanar(g, 0, g.N()-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Value < res.Value {
		t.Fatalf("exact cut %d below approximate flow %d", cut.Value, res.Value)
	}
}

func TestPublicGirthAndGlobalCut(t *testing.T) {
	g := GridGraph(5, 5)
	gr, err := Girth(g)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Weight != 4 {
		t.Fatalf("girth=%d want 4", gr.Weight)
	}
	gc, err := GlobalMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Value != 0 {
		t.Fatalf("acyclic orientation must have zero cut, got %d", gc.Value)
	}
}

func TestPublicDualSSSP(t *testing.T) {
	g := GridGraph(4, 4)
	res, err := DualSSSP(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	if res.Dist[0] != 0 {
		t.Fatal("source distance not zero")
	}
	for f := 1; f < g.NumFaces(); f++ {
		if res.Dist[f] <= 0 || res.Dist[f] >= Inf {
			t.Fatalf("dist[%d]=%d", f, res.Dist[f])
		}
	}
}

func TestSharedFace(t *testing.T) {
	g := GridGraph(5, 5)
	if !g.SharedFace(0, 24) {
		t.Fatal("corners share the outer face")
	}
	if g.SharedFace(12, 0) {
		t.Fatal("center and corner share no face")
	}
}
