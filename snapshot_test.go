package planarflow_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"planarflow"
)

// snapshotSubstrates is the full substrate set — warming it makes the
// snapshot carry every family's decode source.
var snapshotSubstrates = []planarflow.Substrate{
	planarflow.SubstrateBDD,
	planarflow.SubstratePrimalUndirected,
	planarflow.SubstratePrimalDirected,
	planarflow.SubstrateDualUndirected,
	planarflow.SubstrateDualDirected,
	planarflow.SubstrateDualFreeReversal,
}

// familyQueries is one query per family, plus point queries at a few
// extra argument choices (stflow/stcut on an adjacent pair: common face).
func familyQueries(n, faces int) []planarflow.Query {
	return []planarflow.Query{
		planarflow.DistQuery(0, n-1),
		planarflow.DistQuery(1, n/2),
		planarflow.DirectedDistQuery(0, n-1),
		planarflow.DualDistQuery(0, faces-1),
		planarflow.DualSSSPQuery(0),
		planarflow.DualSSSPQuery(faces / 2),
		planarflow.MaxFlowQuery(0, n-1),
		planarflow.MinSTCutQuery(0, n-1),
		planarflow.STFlowQuery(0, 1, 0),
		planarflow.STFlowQuery(0, 1, 0.1),
		planarflow.STCutQuery(0, 1, 0),
		planarflow.GirthQuery(),
		planarflow.DirectedGirthQuery(),
		planarflow.GlobalMinCutQuery(),
	}
}

// goldenJSON executes the queries and returns each Answer marshalled —
// payload, witness sets and the Build/Query rounds split all included,
// so "equal" means bit-identical serving behavior.
func goldenJSON(t *testing.T, p *planarflow.PreparedGraph, queries []planarflow.Query) []string {
	t.Helper()
	out := make([]string, len(queries))
	for i, q := range queries {
		a, err := p.Do(nil, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Kind, err)
		}
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(data)
	}
	return out
}

// TestSnapshotRestoreBitIdentical is the round-trip property test: for
// every query family, answers from a restored PreparedGraph are
// bit-identical (as golden JSON) to the original's warm answers — on a
// grid and on a low-diameter triangulation, with concurrent queries on
// the restored bundle to hold the property under -race.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	graphs := map[string]*planarflow.Graph{
		"grid":          planarflow.GridGraph(7, 7).WithRandomAttrs(11, 1, 9, 1, 16),
		"triangulation": planarflow.TriangulationGraph(60, 3).WithRandomAttrs(5, 1, 7, 1, 8),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			p, err := planarflow.Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Warm(nil, snapshotSubstrates...); err != nil {
				t.Fatal(err)
			}
			queries := familyQueries(g.N(), g.NumFaces())
			want := goldenJSON(t, p, queries)

			var snap bytes.Buffer
			if err := p.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			p2, err := planarflow.RestorePrepared(g, bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// Everything arrived warm with its original accounting.
			st, st2 := p.Stats(), p2.Stats()
			if len(st2.Substrates) != len(st.Substrates) {
				t.Fatalf("restored %d substrates, want %d", len(st2.Substrates), len(st.Substrates))
			}
			if st2.BuildRounds != st.BuildRounds {
				t.Fatalf("restored build rounds %d, want %d", st2.BuildRounds, st.BuildRounds)
			}

			got := goldenJSON(t, p2, queries)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s diverged after restore:\n  want %s\n  got  %s",
						queries[i].Kind, want[i], got[i])
				}
			}
			// No query grew the restored bundle: nothing was rebuilt.
			if after := p2.Stats(); len(after.Substrates) != len(st.Substrates) {
				t.Fatalf("restored bundle grew to %d substrates (rebuild happened)", len(after.Substrates))
			}

			// Concurrent mixed-family queries on the restored bundle agree
			// with the golden answers (exercised under -race in CI).
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i, q := range queries {
						a, err := p2.Do(nil, q)
						if err != nil {
							t.Errorf("worker %d %s: %v", w, q.Kind, err)
							return
						}
						data, _ := json.Marshal(a)
						if string(data) != want[i] {
							t.Errorf("worker %d %s diverged", w, q.Kind)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestSnapshotPartialWarm pins that a snapshot carries exactly what was
// built: restoring a bundle that only warmed the default serving set
// leaves the other substrates cold, and they rebuild on demand with
// answers that still match a fully-built reference.
func TestSnapshotPartialWarm(t *testing.T) {
	g := planarflow.GridGraph(6, 6).WithRandomAttrs(2, 1, 9, 1, 16)
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warm(nil); err != nil { // default set: BDD + undirected labelings
		t.Fatal(err)
	}
	built := len(p.Stats().Substrates)
	var snap bytes.Buffer
	if err := p.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	p2, err := planarflow.RestorePrepared(g, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p2.Stats().Substrates); got != built {
		t.Fatalf("restored %d substrates, want %d", got, built)
	}
	// A family whose substrate was not snapshotted still answers — by
	// building it now — and matches the original.
	wantGirth, err := p.DirectedGirth()
	if err != nil {
		t.Fatal(err)
	}
	gotGirth, err := p2.DirectedGirth()
	if err != nil {
		t.Fatal(err)
	}
	if wantGirth.Weight != gotGirth.Weight {
		t.Fatalf("directed girth %d != %d after partial restore", gotGirth.Weight, wantGirth.Weight)
	}
	if got := len(p2.Stats().Substrates); got != built+1 {
		t.Fatalf("expected exactly one on-demand build, have %d substrates (was %d)", got, built)
	}
}

// TestRestoreErrors pins the public sentinel mapping.
func TestRestoreErrors(t *testing.T) {
	g := planarflow.GridGraph(5, 5).WithRandomAttrs(3, 1, 9, 1, 16)
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warm(nil); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := p.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	t.Run("wrong graph", func(t *testing.T) {
		other := planarflow.GridGraph(5, 5).WithRandomAttrs(4, 1, 9, 1, 16)
		_, err := planarflow.RestorePrepared(other, bytes.NewReader(snap.Bytes()))
		if !errors.Is(err, planarflow.ErrSnapshotMismatch) {
			t.Fatalf("got %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		_, err := planarflow.RestorePrepared(g, bytes.NewReader(snap.Bytes()[:snap.Len()/2]))
		if !errors.Is(err, planarflow.ErrBadSnapshot) {
			t.Fatalf("got %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		_, err := planarflow.RestorePrepared(g, bytes.NewReader([]byte("not a snapshot at all")))
		if !errors.Is(err, planarflow.ErrBadSnapshot) {
			t.Fatalf("got %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("nil graph", func(t *testing.T) {
		_, err := planarflow.RestorePrepared(nil, bytes.NewReader(snap.Bytes()))
		if !errors.Is(err, planarflow.ErrNilGraph) {
			t.Fatalf("got %v, want ErrNilGraph", err)
		}
	})
}

// TestSnapshotDeterministicBytes pins public-level encode determinism:
// two snapshots of the same state are identical, and a snapshot of a
// restored bundle reproduces the original bytes.
func TestSnapshotDeterministicBytes(t *testing.T) {
	g := planarflow.GridGraph(6, 6).WithRandomAttrs(9, 1, 9, 1, 16)
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warm(nil, snapshotSubstrates...); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := p.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same state differ")
	}
	p2, err := planarflow.RestorePrepared(g, bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := p2.Snapshot(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("snapshot of a restored bundle differs from the original")
	}
}
