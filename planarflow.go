// Package planarflow is a Go implementation of the distributed planar
// maximum-flow toolkit of Abd-Elhaleem, Dory, Parter and Weimann,
// "Distributed Maximum Flow in Planar Graphs" (PODC 2025).
//
// The library runs the paper's CONGEST-model algorithms on a simulated
// synchronous network and reports both their results and their round
// complexity:
//
//   - exact maximum st-flow and minimum st-cut in directed planar graphs in
//     Õ(D²) rounds (Theorems 1.2 and 6.1), via single-source shortest paths
//     on the dual graph computed through distance labels over a Bounded
//     Diameter Decomposition;
//   - (1-ε)-approximate maximum st-flow and minimum st-cut when s and t
//     share a face (Theorems 1.3 and 6.2), via Hassin's reduction simulated
//     in the minor-aggregation model on the dual;
//   - weighted girth in Õ(D) rounds (Theorem 1.7), via a dual minimum cut;
//   - directed global minimum cut in Õ(D²) rounds (Theorem 1.5), via
//     minimum directed cycles in the dual.
//
// Graphs are built with the Builder (or the generators in GridGraph etc.);
// every algorithm returns a Rounds report derived from the simulation's
// measured message schedules. For serving many queries on one graph, Prepare
// returns a PreparedGraph that builds the expensive substrates (BDD +
// distance labelings, the paper's §5 artifact) once and answers queries
// concurrently. Every query family is also expressible as a first-class
// Query value executed through one entry point — Do for one query, DoBatch
// for many (bounded worker pool, single-pass substrate warmup, per-query
// error isolation), Warm for eager substrate prefetch; the named methods
// and the one-shot functions below are thin wrappers over the same plane.
// See DESIGN.md for the correspondence between packages and the paper's
// sections, and EXPERIMENTS.md for the reproduced complexity measurements.
package planarflow

import (
	"fmt"

	"planarflow/internal/core"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// Inf is the "unreachable / acyclic" sentinel used by distance- and
// girth-valued results.
const Inf = spath.Inf

// Graph is an embedded planar network. Edge directions carry flow/weight
// semantics; the embedding (rotation system) is fixed at construction.
type Graph struct {
	g *planar.Graph
}

// Edge describes one directed, weighted, capacitated edge.
type Edge struct {
	U, V   int
	Weight int64
	Cap    int64
}

// Builder assembles a planar graph from edges plus an explicit combinatorial
// embedding: for every vertex, the cyclic order of its incident edge-ends.
type Builder struct {
	n     int
	edges []planar.Edge
	rot   [][]planar.Dart
}

// NewBuilder starts a builder for n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rot: make([][]planar.Dart, n)}
}

// AddEdge appends a directed edge u -> v and returns its id. The edge is not
// embedded until it appears in both endpoints' rotations.
func (b *Builder) AddEdge(u, v int, weight, capacity int64) int {
	b.edges = append(b.edges, planar.Edge{U: u, V: v, Weight: weight, Cap: capacity})
	return len(b.edges) - 1
}

// SetRotation fixes the clockwise cyclic order of edge-ends at vertex v.
// Each element is an edge id previously returned by AddEdge; an edge
// incident to v twice (self-loops are not supported) cannot occur in simple
// graphs.
func (b *Builder) SetRotation(v int, edgeOrder []int) error {
	darts := make([]planar.Dart, len(edgeOrder))
	for i, e := range edgeOrder {
		if e < 0 || e >= len(b.edges) {
			return fmt.Errorf("planarflow: rotation of %d references unknown edge %d", v, e)
		}
		switch {
		case b.edges[e].U == v:
			darts[i] = planar.ForwardDart(e)
		case b.edges[e].V == v:
			darts[i] = planar.BackwardDart(e)
		default:
			return fmt.Errorf("planarflow: edge %d not incident to vertex %d", e, v)
		}
	}
	b.rot[v] = darts
	return nil
}

// Build validates the embedding (connectivity + Euler's formula) and returns
// the graph.
func (b *Builder) Build() (*Graph, error) {
	g, err := planar.NewGraph(b.n, b.edges, b.rot)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GridGraph returns a rows x cols grid with unit weights and capacities
// (hop diameter rows+cols-2).
func GridGraph(rows, cols int) *Graph { return &Graph{g: planar.Grid(rows, cols)} }

// CylinderGraph returns a rows x cols cylindrical grid (cols >= 3).
func CylinderGraph(rows, cols int) *Graph { return &Graph{g: planar.Cylinder(rows, cols)} }

// BoustrophedonGridGraph returns a strongly connected one-way grid (rows
// alternate direction, snake-style) — the canonical non-trivial input for
// directed global minimum cut and directed girth.
func BoustrophedonGridGraph(rows, cols int) *Graph {
	return &Graph{g: planar.BoustrophedonGrid(rows, cols)}
}

// TriangulationGraph returns a random maximal planar graph on n >= 3
// vertices (seeded).
func TriangulationGraph(n int, seed int64) *Graph {
	return &Graph{g: planar.StackedTriangulation(n, planar.NewRand(seed))}
}

// WithAttrs returns a copy with edge weights/capacities rewritten by fn.
func (gr *Graph) WithAttrs(fn func(e int, old Edge) Edge) *Graph {
	return &Graph{g: gr.g.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		ne := fn(e, Edge{U: old.U, V: old.V, Weight: old.Weight, Cap: old.Cap})
		return planar.Edge{U: old.U, V: old.V, Weight: ne.Weight, Cap: ne.Cap}
	})}
}

// WithRandomAttrs returns a copy with weights in [wLo, wHi] and capacities
// in [cLo, cHi] drawn from the seeded generator.
func (gr *Graph) WithRandomAttrs(seed, wLo, wHi, cLo, cHi int64) *Graph {
	rng := planar.NewRand(seed)
	return &Graph{g: planar.WithRandomWeights(gr.g, rng, wLo, wHi, cLo, cHi)}
}

// WithRandomDirections flips each edge's direction with probability 1/2.
func (gr *Graph) WithRandomDirections(seed int64) *Graph {
	return &Graph{g: planar.WithRandomDirections(gr.g, planar.NewRand(seed))}
}

// N returns the number of vertices.
func (gr *Graph) N() int { return gr.g.N() }

// M returns the number of edges.
func (gr *Graph) M() int { return gr.g.M() }

// EdgeAt returns edge e.
func (gr *Graph) EdgeAt(e int) Edge {
	ed := gr.g.Edge(e)
	return Edge{U: ed.U, V: ed.V, Weight: ed.Weight, Cap: ed.Cap}
}

// Diameter returns the exact unweighted hop diameter (O(n·m); for large
// graphs use DiameterEstimate).
func (gr *Graph) Diameter() int { return gr.g.Diameter() }

// DiameterEstimate returns a 2-sweep BFS lower bound on the diameter.
func (gr *Graph) DiameterEstimate() int { return gr.g.DiameterLowerBound() }

// NumFaces returns the number of faces of the embedding.
func (gr *Graph) NumFaces() int { return gr.g.Faces().NumFaces() }

// SharedFace reports whether u and v lie on a common face (the st-planarity
// precondition of the approximate flow algorithms).
func (gr *Graph) SharedFace(u, v int) bool { return len(gr.g.CommonFaces(u, v)) > 0 }

// Rounds reports the CONGEST cost of one algorithm run, split two ways:
// Measured vs Charged (how the rounds were accounted) and Build vs Query
// (whether they construct the reusable BDD/labeling artifact or are paid per
// query). One-shot entry points pay Build + Query every call; on a
// PreparedGraph only the query that triggers a construction carries Build
// rounds, so second-and-later queries report Build == 0 — the amortization
// the paper's §5 labels enable.
type Rounds struct {
	Total    int64
	Measured int64            // rounds counted by executing message schedules
	Charged  int64            // rounds derived from measured quantities
	Build    int64            // one-time artifact construction (BDD + labelings)
	Query    int64            // per-query work
	ByPhase  map[string]int64 // per-phase totals
}

func roundsOf(l *ledger.Ledger) Rounds {
	r := roundsTotalsOf(l)
	r.ByPhase = l.ByPhase()
	return r
}

// roundsTotalsOf is roundsOf without the per-phase map — the shape
// NoPhases queries ask for, skipping the map allocation entirely.
func roundsTotalsOf(l *ledger.Ledger) Rounds {
	m, c := l.Split()
	b, q := l.BuildSplit()
	return Rounds{Total: m + c, Measured: m, Charged: c, Build: b, Query: q}
}

// FlowResult is a maximum st-flow: value, per-edge assignment and cost.
type FlowResult struct {
	Value      int64
	Flow       []int64 // per edge, in [0, Cap] along the edge direction
	Iterations int     // Miller–Naor binary-search steps
	Rounds     Rounds
}

// MaxFlow computes the exact maximum st-flow of the directed planar graph
// (Thm 1.2, Õ(D²) rounds). One-shot: equivalent to Prepare followed by one
// query, with the artifact discarded afterwards; its Rounds carry the full
// Build + Query cost.
func MaxFlow(gr *Graph, s, t int) (*FlowResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.MaxFlow(s, t)
}

// CutResult is an st-cut or global cut: value, one side of the bisection,
// and the crossing edges.
type CutResult struct {
	Value    int64
	Side     []bool
	CutEdges []int
	Rounds   Rounds
}

// MinSTCut computes the exact directed minimum st-cut (Thm 6.1).
func MinSTCut(gr *Graph, s, t int) (*CutResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.MinSTCut(s, t)
}

// ApproxFlowResult is a (1-ε)-approximate undirected st-planar flow.
type ApproxFlowResult struct {
	Value   int64
	Flow    []int64 // signed per edge: positive U->V
	Epsilon float64
	Rounds  Rounds
}

// ApproxMaxFlowSTPlanar computes a (1-eps)-approximate maximum st-flow of an
// undirected planar graph with s, t on a common face (Thm 1.3); eps = 0 runs
// the exact oracle.
func ApproxMaxFlowSTPlanar(gr *Graph, s, t int, eps float64) (*ApproxFlowResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.ApproxMaxFlowSTPlanar(s, t, eps)
}

// ApproxMinCutSTPlanar computes the corresponding (approximate) minimum
// st-cut with its bisection and cut edges (Thm 6.2).
func ApproxMinCutSTPlanar(gr *Graph, s, t int, eps float64) (*CutResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.ApproxMinCutSTPlanar(s, t, eps)
}

// GirthResult is a minimum-weight cycle.
type GirthResult struct {
	Weight     int64 // Inf when acyclic
	CycleEdges []int
	Rounds     Rounds
}

// Girth computes the weighted girth of the undirected planar graph with
// positive weights (Thm 1.7, Õ(D) rounds).
func Girth(gr *Graph) (*GirthResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.Girth()
}

// DirectedGirth computes the minimum weight of a directed cycle (Inf if the
// orientation is acyclic) via the SSSP/BDD route of [36] in Õ(D²) rounds —
// the algorithm the paper's Õ(D) undirected Girth improves upon
// (Question 1.6).
func DirectedGirth(gr *Graph) (*GirthResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.DirectedGirth()
}

// GlobalMinCut computes the directed global minimum cut (Thm 1.5, Õ(D²)
// rounds).
func GlobalMinCut(gr *Graph) (*CutResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.GlobalMinCut()
}

// DualSSSPResult holds single-source shortest-path distances on the dual
// graph G* (per face of the embedding).
type DualSSSPResult struct {
	Source   int
	Dist     []int64
	NegCycle bool
	Rounds   Rounds
}

// DualSSSP computes shortest paths in the dual graph from the given source
// face, with per-edge lengths taken from edge weights applied to both
// crossing directions (Thm 2.1 / Lemma 2.2, Õ(D²) rounds). Negative weights
// are allowed; a negative dual cycle is reported instead of distances.
func DualSSSP(gr *Graph, sourceFace int) (*DualSSSPResult, error) {
	p, err := Prepare(gr)
	if err != nil {
		return nil, err
	}
	return p.DualSSSP(sourceFace)
}

// CheckFlow verifies a directed flow assignment (capacities + conservation).
func CheckFlow(gr *Graph, s, t int, flow []int64, value int64) error {
	return core.CheckFlow(gr.g, s, t, flow, value)
}

// CheckUndirectedFlow verifies a signed undirected flow assignment.
func CheckUndirectedFlow(gr *Graph, s, t int, flow []int64, value int64) error {
	return core.CheckUndirectedFlow(gr.g, s, t, flow, value)
}
