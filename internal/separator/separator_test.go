package separator

import (
	"testing"

	"planarflow/internal/planar"
)

func allEdges(g *planar.Graph) []bool {
	in := make([]bool, g.M())
	for i := range in {
		in[i] = true
	}
	return in
}

// checkSeparator verifies the structural invariants of a separator result:
// crossing edges == cycle real edges, cycle is a valid tree path + EX, and
// both regions are non-empty.
func checkSeparator(t *testing.T, g *planar.Graph, edgeIn []bool, res *Result) {
	t.Helper()
	if !res.Found {
		t.Fatal("no separator found")
	}
	// 1. The set of bag edges whose darts disagree on side must be exactly
	// the real cycle edges (interdigitating-tree fact).
	crossing := map[int]bool{}
	for e := 0; e < g.M(); e++ {
		if !edgeIn[e] {
			continue
		}
		sf, sb := res.Side[planar.ForwardDart(e)], res.Side[planar.BackwardDart(e)]
		if sf < 0 || sb < 0 {
			t.Fatalf("bag edge %d has unassigned dart side", e)
		}
		if sf != sb {
			crossing[e] = true
		}
	}
	cyc := map[int]bool{}
	for _, e := range res.CycleEdges {
		cyc[e] = true
	}
	if len(crossing) != len(cyc) {
		t.Fatalf("crossing=%d cycle edges=%d", len(crossing), len(cyc))
	}
	for e := range crossing {
		if !cyc[e] {
			t.Fatalf("edge %d crosses regions but is not on the cycle", e)
		}
	}
	// 2. Cycle vertices trace a path whose consecutive pairs are joined by
	// the cycle edges, ending at EX's endpoints.
	if res.CycleVertices[0] != res.EX.U && res.CycleVertices[0] != res.EX.V {
		t.Fatal("cycle path does not start at an EX endpoint")
	}
	last := res.CycleVertices[len(res.CycleVertices)-1]
	if last != res.EX.U && last != res.EX.V {
		t.Fatal("cycle path does not end at an EX endpoint")
	}
	// 3. Balance sanity.
	if res.InsideWeight <= 0 || res.InsideWeight >= res.TotalWeight {
		t.Fatalf("degenerate region split: %d/%d", res.InsideWeight, res.TotalWeight)
	}
}

func TestSeparatorGrid(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {4, 6}, {8, 8}, {2, 20}} {
		g := planar.Grid(dims[0], dims[1])
		in := allEdges(g)
		sf := planar.NewSubFaces(g, in)
		res := FindCycleSeparator(g, in, sf)
		checkSeparator(t, g, in, res)
		if res.Balance > 0.90 {
			t.Fatalf("grid %v: balance %.2f too poor", dims, res.Balance)
		}
	}
}

func TestSeparatorTriangulation(t *testing.T) {
	rng := planar.NewRand(17)
	for _, n := range []int{10, 50, 200} {
		g := planar.StackedTriangulation(n, rng)
		in := allEdges(g)
		sf := planar.NewSubFaces(g, in)
		res := FindCycleSeparator(g, in, sf)
		checkSeparator(t, g, in, res)
		if res.Balance > 0.80 {
			t.Fatalf("stacked n=%d: balance %.2f", n, res.Balance)
		}
	}
}

func TestSeparatorSparse(t *testing.T) {
	rng := planar.NewRand(23)
	for trial := 0; trial < 10; trial++ {
		g0 := planar.StackedTriangulation(60, rng)
		g := planar.RemoveRandomEdges(g0, rng, 50)
		in := allEdges(g)
		sf := planar.NewSubFaces(g, in)
		res := FindCycleSeparator(g, in, sf)
		if !res.Found {
			continue // very sparse bags may be near-trees
		}
		checkSeparator(t, g, in, res)
	}
}

func TestSeparatorTreeBagHasVirtualEX(t *testing.T) {
	// A path graph has no real cycles: any separator must use a virtual
	// chord (the triangulation of its single orbit).
	g := planar.Grid(1, 8)
	in := allEdges(g)
	sf := planar.NewSubFaces(g, in)
	res := FindCycleSeparator(g, in, sf)
	if !res.Found {
		t.Fatal("path bag should still split via a virtual chord")
	}
	if res.EX.Real {
		t.Fatal("EX must be virtual on a tree bag")
	}
	checkSeparator(t, g, in, res)
}

func TestSeparatorOnSubBag(t *testing.T) {
	// Run the separator on the interior child of a first split: exercises
	// bags with holes.
	g := planar.Grid(7, 7)
	in := allEdges(g)
	sf := planar.NewSubFaces(g, in)
	res := FindCycleSeparator(g, in, sf)
	checkSeparator(t, g, in, res)
	// Child bag: edges with a dart on side 1, plus cycle edges.
	childIn := make([]bool, g.M())
	cnt := 0
	for e := 0; e < g.M(); e++ {
		if !in[e] {
			continue
		}
		if res.Side[planar.ForwardDart(e)] == 1 || res.Side[planar.BackwardDart(e)] == 1 {
			childIn[e] = true
			cnt++
		}
	}
	if cnt < 8 {
		t.Skip("child too small")
	}
	csf := planar.NewSubFaces(g, childIn)
	cres := FindCycleSeparator(g, childIn, csf)
	if cres.Found {
		checkSeparator(t, g, childIn, cres)
	}
}

func TestSeparatorCycleIsTreePath(t *testing.T) {
	g := planar.Grid(6, 6)
	in := allEdges(g)
	sf := planar.NewSubFaces(g, in)
	res := FindCycleSeparator(g, in, sf)
	// Consecutive cycle vertices must be adjacent in G via cycle edges.
	adj := map[[2]int]bool{}
	for _, e := range res.CycleEdges {
		u, v := g.Edge(e).U, g.Edge(e).V
		adj[[2]int{u, v}] = true
		adj[[2]int{v, u}] = true
	}
	for i := 0; i+1 < len(res.CycleVertices); i++ {
		a, b := res.CycleVertices[i], res.CycleVertices[i+1]
		if !adj[[2]int{a, b}] {
			t.Fatalf("cycle vertices %d,%d not joined by a cycle edge", a, b)
		}
	}
	// No repeated vertices on the path.
	seen := map[int]bool{}
	for _, v := range res.CycleVertices {
		if seen[v] {
			t.Fatalf("vertex %d repeats on separator path", v)
		}
		seen[v] = true
	}
}

func TestSubFacesEulerOnBags(t *testing.T) {
	// v - m + f = 1 + c for sub-embeddings (c connected components).
	rng := planar.NewRand(3)
	for trial := 0; trial < 20; trial++ {
		g := planar.StackedTriangulation(30, rng)
		in := make([]bool, g.M())
		m := 0
		for e := range in {
			if rng.IntN(4) > 0 {
				in[e] = true
				m++
			}
		}
		if m == 0 {
			continue
		}
		sf := planar.NewSubFaces(g, in)
		// Count touched vertices and components.
		touched := map[int]bool{}
		for e := 0; e < g.M(); e++ {
			if in[e] {
				touched[g.Edge(e).U] = true
				touched[g.Edge(e).V] = true
			}
		}
		comp := map[int]int{}
		numComp := 0
		for v := range touched {
			if _, ok := comp[v]; ok {
				continue
			}
			numComp++
			b := g.BFSWithin(v, func(d planar.Dart) bool { return in[planar.EdgeOf(d)] })
			for u := range touched {
				if b.Dist[u] >= 0 {
					comp[u] = numComp
				}
			}
		}
		if len(touched)-m+sf.NumFaces() != 1+numComp {
			t.Fatalf("trial %d: euler v=%d m=%d f=%d c=%d",
				trial, len(touched), m, sf.NumFaces(), numComp)
		}
	}
}
