// Package separator finds balanced cycle separators of embedded planar
// subgraphs ("bags"), matching the output shape of the distributed separator
// of Ghaffari–Parter [17] that the BDD of Li–Parter [27] consumes: a cycle
// S_X consisting of two BFS-tree paths closed by one edge e_X which is
// either a real edge or a *virtual* edge absent from the graph (the source
// of the paper's critical-face / face-part machinery, §5.1).
//
// The construction is the classic Lipton–Tarjan fundamental-cycle argument
// made concrete: triangulate every face of the bag with virtual chords,
// observe that the duals of non-tree edges form a spanning tree of the
// triangulated dual (the interdigitating tree), and pick the non-tree edge
// whose fundamental cycle best balances the dart weight of the two regions.
// Removing that edge's dual-tree arc yields the two regions directly, giving
// a side assignment for every dart of the bag.
package separator

import (
	"planarflow/internal/planar"
)

// EX describes the cycle-closing edge; when Real is false the edge is
// virtual: it exists only in the triangulation, splitting the face of the
// bag it is embedded in (the paper's critical face).
type EX struct {
	Real bool
	Edge int // primal edge id when Real
	U, V int // endpoints
}

// Result is a computed cycle separator for one bag.
type Result struct {
	Found bool
	EX    EX

	// CycleVertices lists the separator path u .. lca .. v in path order
	// (the full cycle closes with EX).
	CycleVertices []int
	// CycleEdges are the real edges of the cycle: the tree-path edges plus
	// EX.Edge when EX is real.
	CycleEdges []int

	// Side assigns every dart of a bag edge to region 0 or 1 (-1 for darts
	// of edges outside the bag). The two darts of a cycle edge lie in
	// different regions; every other bag edge has both darts on one side.
	Side []int8

	InsideWeight int     // darts in region 1
	TotalWeight  int     // darts in the bag
	Balance      float64 // max-region dart fraction
	TreeDepth    int     // BFS-tree depth of the bag (for round accounting)
}

// FindCycleSeparator computes a balanced cycle separator of the connected
// subgraph given by edgeIn; sf must be the subgraph's face structure. It
// returns Found=false when the bag admits no non-degenerate fundamental
// cycle (e.g. trees), in which case the caller treats the bag as a leaf.
func FindCycleSeparator(g *planar.Graph, edgeIn []bool, sf *planar.SubFaces) *Result {
	res := &Result{Side: make([]int8, g.NumDarts())}
	for d := range res.Side {
		res.Side[d] = -1
	}

	// Root the bag BFS tree at an endpoint of the first kept edge.
	root := -1
	for e := 0; e < g.M(); e++ {
		if edgeIn[e] {
			root = g.Edge(e).U
			break
		}
	}
	if root == -1 {
		return res
	}
	bfs := g.BFSWithin(root, func(d planar.Dart) bool { return edgeIn[planar.EdgeOf(d)] })
	res.TreeDepth = bfs.Depth
	treeEdge := make([]bool, g.M())
	for _, p := range bfs.Parent {
		if p != planar.NoDart {
			treeEdge[planar.EdgeOf(p)] = true
		}
	}

	// ---- Triangulate orbits and assign darts to triangles. ----
	numTri := 0
	triOf := make([]int32, g.NumDarts())
	for d := range triOf {
		triOf[d] = -1
	}
	triW := []int{}
	type dualEdge struct {
		t1, t2 int
		// candidate edge: real primal edge (edge >= 0) or virtual chord
		// (edge == -1) with endpoints u, v.
		edge int
		u, v int
	}
	var dualEdges []dualEdge
	rootOrbit, rootOrbitLen := 0, -1
	triOfOrbitStart := make([]int, sf.NumFaces())

	for f := 0; f < sf.NumFaces(); f++ {
		cyc := sf.Cycle(f)
		k := len(cyc)
		if k > rootOrbitLen {
			rootOrbit, rootOrbitLen = f, k
		}
		triOfOrbitStart[f] = numTri
		if k <= 2 {
			// Degenerate orbit (single edge walked twice): one node.
			t := numTri
			numTri++
			triW = append(triW, k)
			for _, d := range cyc {
				triOf[d] = int32(t)
			}
			continue
		}
		// Fan triangulation from corner 0: triangles t_1..t_{k-2}; dart
		// cyc[i] -> t_i, with cyc[0] -> t_1 and cyc[k-1] -> t_{k-2}.
		base := numTri
		numTri += k - 2
		for i := 0; i < k-2; i++ {
			triW = append(triW, 1)
		}
		c0 := g.Tail(cyc[0])
		triOf[cyc[0]] = int32(base)
		triW[base]++
		triOf[cyc[k-1]] = int32(base + k - 3)
		triW[base+k-3]++
		for i := 1; i <= k-2; i++ {
			triOf[cyc[i]] = int32(base + i - 1)
		}
		// Chords (c0, tail(cyc[i])) between consecutive fan triangles.
		for i := 2; i <= k-2; i++ {
			dualEdges = append(dualEdges, dualEdge{
				t1: base + i - 2, t2: base + i - 1,
				edge: -1, u: c0, v: g.Tail(cyc[i]),
			})
		}
	}

	// Real non-tree bag edges are dual-tree edges between the triangles of
	// their two darts.
	for e := 0; e < g.M(); e++ {
		if !edgeIn[e] || treeEdge[e] {
			continue
		}
		t1 := int(triOf[planar.ForwardDart(e)])
		t2 := int(triOf[planar.BackwardDart(e)])
		if t1 == t2 {
			continue // degenerate (both darts in one triangle): dual self-loop
		}
		dualEdges = append(dualEdges, dualEdge{
			t1: t1, t2: t2, edge: e, u: g.Edge(e).U, v: g.Edge(e).V,
		})
	}

	// ---- Interdigitating tree: BFS spanning tree of the dual edges. ----
	adj := make([][]int32, numTri) // indices into dualEdges
	for i, de := range dualEdges {
		adj[de.t1] = append(adj[de.t1], int32(i))
		adj[de.t2] = append(adj[de.t2], int32(i))
	}
	rootTri := triOfOrbitStart[rootOrbit]
	parentEdge := make([]int32, numTri) // dual edge to parent (-1 at root)
	parentTri := make([]int32, numTri)
	order := make([]int32, 0, numTri)
	for t := range parentEdge {
		parentEdge[t] = -2 // unvisited
		parentTri[t] = -1
	}
	parentEdge[rootTri] = -1
	queue := []int32{int32(rootTri)}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, ei := range adj[t] {
			de := dualEdges[ei]
			o := int32(de.t1)
			if o == t {
				o = int32(de.t2)
			}
			if parentEdge[o] == -2 {
				parentEdge[o] = ei
				parentTri[o] = t
				queue = append(queue, o)
			}
		}
	}

	// Subtree dart weights (children before parents in reverse BFS order).
	sub := make([]int, numTri)
	for _, t := range order {
		sub[t] = triW[t]
	}
	for i := len(order) - 1; i >= 1; i-- {
		t := order[i]
		sub[parentTri[t]] += sub[t]
	}
	total := 0
	for _, t := range order {
		if parentTri[t] == -1 {
			total += sub[t]
		}
	}
	res.TotalWeight = total

	// ---- Pick the most balanced usable dual-tree edge. ----
	bestEdge, bestScore, bestChild := -1, total+1, -1
	for i := 1; i < len(order); i++ {
		t := order[i]
		ei := parentEdge[t]
		de := dualEdges[ei]
		if de.u == de.v {
			continue // degenerate chord: closed curve, not a cycle through 2 vertices
		}
		if bfs.Dist[de.u] < 0 || bfs.Dist[de.v] < 0 {
			continue // endpoint outside the BFS component (disconnected bag)
		}
		inside := sub[t]
		outside := total - inside
		if inside == 0 || outside == 0 {
			continue
		}
		score := inside
		if outside > score {
			score = outside
		}
		if score < bestScore {
			bestScore, bestEdge, bestChild = score, int(ei), int(t)
		}
	}
	if bestEdge == -1 {
		return res
	}

	de := dualEdges[bestEdge]
	res.Found = true
	res.EX = EX{Real: de.edge >= 0, Edge: de.edge, U: de.u, V: de.v}
	res.InsideWeight = sub[bestChild]
	res.Balance = float64(bestScore) / float64(total)

	// Region assignment: triangles in the subtree below the chosen edge are
	// side 1.
	side := make([]int8, numTri)
	// Mark subtree of bestChild: BFS over dual tree children.
	children := make([][]int32, numTri)
	for _, t := range order {
		if parentTri[t] >= 0 {
			children[parentTri[t]] = append(children[parentTri[t]], t)
		}
	}
	stack := []int32{int32(bestChild)}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		side[t] = 1
		stack = append(stack, children[t]...)
	}
	for d := 0; d < g.NumDarts(); d++ {
		if triOf[d] >= 0 {
			res.Side[d] = side[triOf[d]]
		}
	}

	// ---- Fundamental cycle: tree paths from u and v to their LCA. ----
	res.CycleVertices, res.CycleEdges = treePath(g, bfs, de.u, de.v)
	if de.edge >= 0 {
		res.CycleEdges = append(res.CycleEdges, de.edge)
	}
	return res
}

// treePath returns the vertices (u..lca..v) and edges of the tree path
// between u and v in the BFS tree.
func treePath(g *planar.Graph, bfs *planar.BFSResult, u, v int) ([]int, []int) {
	var upU, upV []int
	var edgesU, edgesV []int
	a, b := u, v
	for bfs.Dist[a] > bfs.Dist[b] {
		upU = append(upU, a)
		edgesU = append(edgesU, planar.EdgeOf(bfs.Parent[a]))
		a = g.Tail(bfs.Parent[a])
	}
	for bfs.Dist[b] > bfs.Dist[a] {
		upV = append(upV, b)
		edgesV = append(edgesV, planar.EdgeOf(bfs.Parent[b]))
		b = g.Tail(bfs.Parent[b])
	}
	for a != b {
		upU = append(upU, a)
		edgesU = append(edgesU, planar.EdgeOf(bfs.Parent[a]))
		a = g.Tail(bfs.Parent[a])
		upV = append(upV, b)
		edgesV = append(edgesV, planar.EdgeOf(bfs.Parent[b]))
		b = g.Tail(bfs.Parent[b])
	}
	verts := append(upU, a)
	for i := len(upV) - 1; i >= 0; i-- {
		verts = append(verts, upV[i])
	}
	edges := edgesU
	for i := len(edgesV) - 1; i >= 0; i-- {
		edges = append(edges, edgesV[i])
	}
	return verts, edges
}
