package spath

import "container/heap"

// SSSPResult holds single-source distances and a shortest-path tree.
type SSSPResult struct {
	Source      int
	Dist        []int64 // Inf if unreachable
	ParentArcID []int   // caller arc ID entering v on the tree (-1 at source/unreachable)
	Parent      []int   // tree parent vertex (-1 at source/unreachable)
}

type pqItem struct {
	v int
	d int64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes shortest paths from source; all arc lengths must be
// non-negative.
func Dijkstra(g *Digraph, source int) *SSSPResult {
	n := g.N()
	res := &SSSPResult{
		Source:      source,
		Dist:        make([]int64, n),
		ParentArcID: make([]int, n),
		Parent:      make([]int, n),
	}
	for v := range res.Dist {
		res.Dist[v] = Inf
		res.ParentArcID[v] = -1
		res.Parent[v] = -1
	}
	res.Dist[source] = 0
	q := &pq{{v: source, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > res.Dist[it.v] {
			continue
		}
		for _, a := range g.Out(it.v) {
			if a.Len >= Inf {
				continue
			}
			nd := it.d + a.Len
			if nd < res.Dist[a.To] {
				res.Dist[a.To] = nd
				res.ParentArcID[a.To] = a.ID
				res.Parent[a.To] = it.v
				heap.Push(q, pqItem{v: a.To, d: nd})
			}
		}
	}
	return res
}

// BellmanFord computes shortest paths from source with arbitrary (possibly
// negative) arc lengths. It returns (result, false) if a negative cycle is
// reachable from source.
func BellmanFord(g *Digraph, source int) (*SSSPResult, bool) {
	n := g.N()
	res := &SSSPResult{
		Source:      source,
		Dist:        make([]int64, n),
		ParentArcID: make([]int, n),
		Parent:      make([]int, n),
	}
	for v := range res.Dist {
		res.Dist[v] = Inf
		res.ParentArcID[v] = -1
		res.Parent[v] = -1
	}
	res.Dist[source] = 0
	for i := 0; i < n; i++ {
		changed := false
		for v := 0; v < n; v++ {
			dv := res.Dist[v]
			if dv >= Inf {
				continue
			}
			for _, a := range g.Out(v) {
				if a.Len >= Inf {
					continue
				}
				if nd := dv + a.Len; nd < res.Dist[a.To] {
					res.Dist[a.To] = nd
					res.ParentArcID[a.To] = a.ID
					res.Parent[a.To] = v
					changed = true
				}
			}
		}
		if !changed {
			return res, true
		}
	}
	return res, false
}

// APSPBellmanFord runs BellmanFord from every vertex; it returns false if the
// graph contains a negative cycle (reachable from any vertex). Intended for
// the paper's small local computations (leaf bags, DDGs of size Õ(D)).
func APSPBellmanFord(g *Digraph) ([][]int64, bool) {
	n := g.N()
	all := make([][]int64, n)
	for s := 0; s < n; s++ {
		res, ok := BellmanFord(g, s)
		if !ok {
			return nil, false
		}
		all[s] = res.Dist
	}
	return all, true
}
