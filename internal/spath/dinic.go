package spath

// FlowNetwork is a capacitated directed graph for the Dinic max-flow
// baseline. Arcs are stored with explicit residual twins.
type FlowNetwork struct {
	n    int
	head []int32 // head[a] = target of arc a
	next [][]int32
	cap  []int64
	orig []int64 // original capacity, to read back flow
	id   []int   // caller-assigned id of the forward arc (-1 for residual twins)
}

// NewFlowNetwork returns an empty flow network on n vertices.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{n: n, next: make([][]int32, n)}
}

// N returns the number of vertices.
func (fn *FlowNetwork) N() int { return fn.n }

// AddEdge adds a directed edge u->v with the given capacity and returns its
// arc index. A zero-capacity residual twin v->u is added automatically.
func (fn *FlowNetwork) AddEdge(u, v int, capacity int64, id int) int {
	a := len(fn.head)
	fn.head = append(fn.head, int32(v), int32(u))
	fn.cap = append(fn.cap, capacity, 0)
	fn.orig = append(fn.orig, capacity, 0)
	fn.id = append(fn.id, id, -1)
	fn.next[u] = append(fn.next[u], int32(a))
	fn.next[v] = append(fn.next[v], int32(a+1))
	return a
}

// Flow returns the flow pushed on forward arc a (original cap - residual).
func (fn *FlowNetwork) Flow(a int) int64 { return fn.orig[a] - fn.cap[a] }

// MaxFlow computes the maximum s-t flow with Dinic's algorithm and returns
// its value. Flow assignments are readable per arc afterwards via Flow.
func (fn *FlowNetwork) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int32, fn.n)
	iter := make([]int, fn.n)
	queue := make([]int32, 0, fn.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, int32(s))
		level[s] = 0
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, a := range fn.next[v] {
				if fn.cap[a] > 0 && level[fn.head[a]] == -1 {
					level[fn.head[a]] = level[v] + 1
					queue = append(queue, fn.head[a])
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(v int, f int64) int64
	dfs = func(v int, f int64) int64 {
		if v == t {
			return f
		}
		for ; iter[v] < len(fn.next[v]); iter[v]++ {
			a := fn.next[v][iter[v]]
			u := fn.head[a]
			if fn.cap[a] <= 0 || level[u] != level[v]+1 {
				continue
			}
			pushed := f
			if fn.cap[a] < pushed {
				pushed = fn.cap[a]
			}
			got := dfs(int(u), pushed)
			if got > 0 {
				fn.cap[a] -= got
				fn.cap[a^1] += got
				return got
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, Inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// MinCutSide returns, after MaxFlow(s, t) has run, the set of vertices
// reachable from s in the residual network (the s-side of a minimum cut).
func (fn *FlowNetwork) MinCutSide(s int) []bool {
	side := make([]bool, fn.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range fn.next[v] {
			u := int(fn.head[a])
			if fn.cap[a] > 0 && !side[u] {
				side[u] = true
				stack = append(stack, u)
			}
		}
	}
	return side
}
