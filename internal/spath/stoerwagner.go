package spath

import "container/heap"

// GlobalMinCut computes the global minimum cut of an undirected weighted
// graph (Stoer–Wagner). Edges are given as (u, v, w) triples with w >= 0;
// parallel edges are allowed (their weights add). It returns the cut weight
// and one side of the cut as a vertex set. n must be >= 2.
func GlobalMinCut(n int, us, vs []int, ws []int64) (int64, []bool) {
	type swArc struct {
		to int
		w  int64
	}
	adj := make([][]swArc, n)
	for i := range us {
		if us[i] == vs[i] {
			continue // self-loops never cross a cut
		}
		adj[us[i]] = append(adj[us[i]], swArc{to: vs[i], w: ws[i]})
		adj[vs[i]] = append(adj[vs[i]], swArc{to: us[i], w: ws[i]})
	}

	// members[v] = original vertices merged into supernode v.
	members := make([][]int, n)
	for v := range members {
		members[v] = []int{v}
	}
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	aliveCnt := n

	best := Inf
	var bestSide []int

	w := make([]int64, n)
	inA := make([]bool, n)
	for aliveCnt > 1 {
		// Minimum-cut phase: maximum adjacency order via a heap.
		for v := 0; v < n; v++ {
			w[v] = 0
			inA[v] = false
		}
		var start int
		for v := 0; v < n; v++ {
			if alive[v] {
				start = v
				break
			}
		}
		q := &pq{}
		heap.Push(q, pqItem{v: start, d: 0})
		prev, last := -1, -1
		added := 0
		for added < aliveCnt {
			v := -1
			for q.Len() > 0 {
				it := heap.Pop(q).(pqItem)
				if alive[it.v] && !inA[it.v] && -it.d == w[it.v] {
					v = it.v
					break
				}
			}
			if v == -1 {
				// Disconnected remainder: pick any alive vertex not yet in A
				// (its cut-of-the-phase weight is 0).
				for u := 0; u < n; u++ {
					if alive[u] && !inA[u] {
						v = u
						break
					}
				}
			}
			inA[v] = true
			added++
			prev, last = last, v
			for _, a := range adj[v] {
				if alive[a.to] && !inA[a.to] {
					w[a.to] += a.w
					heap.Push(q, pqItem{v: a.to, d: -w[a.to]})
				}
			}
		}
		// Cut-of-the-phase: last vertex alone vs the rest.
		if w[last] < best {
			best = w[last]
			bestSide = append([]int(nil), members[last]...)
		}
		// Merge last into prev: move last's arcs to prev and redirect all
		// arcs pointing at last. Arcs between prev and last become
		// self-loops, which the phase loop skips (inA check).
		if prev >= 0 {
			members[prev] = append(members[prev], members[last]...)
			adj[prev] = append(adj[prev], adj[last]...)
			adj[last] = nil
			for v := 0; v < n; v++ {
				if !alive[v] || v == last {
					continue
				}
				for i := range adj[v] {
					if adj[v][i].to == last {
						adj[v][i].to = prev
					}
				}
			}
		}
		alive[last] = false
		aliveCnt--
	}

	side := make([]bool, n)
	for _, v := range bestSide {
		side[v] = true
	}
	return best, side
}
