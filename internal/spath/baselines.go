package spath

// This file holds brute-force comparators used only by tests and the
// experiment harness to validate the distributed algorithms.

// UndirectedGirth returns the minimum total weight of a simple cycle in an
// undirected weighted graph, or Inf if the graph is acyclic. Edges are (u, v,
// w) triples with w >= 0. Computed as min over edges e of w(e) +
// dist_{G-e}(u, v).
func UndirectedGirth(n int, us, vs []int, ws []int64) int64 {
	best := Inf
	for skip := range us {
		if us[skip] == vs[skip] {
			// Self-loop: a cycle by itself.
			if ws[skip] < best {
				best = ws[skip]
			}
			continue
		}
		g := NewDigraph(n)
		for i := range us {
			if i == skip {
				continue
			}
			g.AddArc(us[i], vs[i], ws[i], i)
			g.AddArc(vs[i], us[i], ws[i], i)
		}
		d := Dijkstra(g, us[skip]).Dist[vs[skip]]
		if d < Inf && d+ws[skip] < best {
			best = d + ws[skip]
		}
	}
	return best
}

// DirectedMinCycle returns the minimum total length of a directed cycle in a
// digraph with non-negative arc lengths (Inf if acyclic): min over arcs
// a=(u,v) of len(a) + dist(v, u).
func DirectedMinCycle(g *Digraph) int64 {
	best := Inf
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Out(u) {
			if a.Len >= Inf {
				continue
			}
			if a.To == u {
				if a.Len < best {
					best = a.Len
				}
				continue
			}
			d := Dijkstra(g, a.To).Dist[u]
			if d < Inf && d+a.Len < best {
				best = d + a.Len
			}
		}
	}
	return best
}

// DirectedGlobalMinCut returns the minimum, over bisections (S, V\S) with
// both sides non-empty, of the total weight of arcs leaving S, for a directed
// weighted graph given as arc triples. It fixes vertex 0 and computes
// min(min_v maxflow(0->v), min_v maxflow(v->0)).
func DirectedGlobalMinCut(n int, us, vs []int, ws []int64) int64 {
	best := Inf
	run := func(s, t int) {
		fn := NewFlowNetwork(n)
		for i := range us {
			if us[i] != vs[i] {
				fn.AddEdge(us[i], vs[i], ws[i], i)
			}
		}
		if f := fn.MaxFlow(s, t); f < best {
			best = f
		}
	}
	for v := 1; v < n; v++ {
		run(0, v)
		run(v, 0)
	}
	return best
}

// CutWeightDirected sums the weights of arcs leaving side (side[u] && !side[v]).
func CutWeightDirected(us, vs []int, ws []int64, side []bool) int64 {
	var s int64
	for i := range us {
		if side[us[i]] && !side[vs[i]] {
			s += ws[i]
		}
	}
	return s
}

// CutWeightUndirected sums the weights of edges crossing side in either
// direction.
func CutWeightUndirected(us, vs []int, ws []int64, side []bool) int64 {
	var s int64
	for i := range us {
		if side[us[i]] != side[vs[i]] {
			s += ws[i]
		}
	}
	return s
}
