package spath

import (
	"math/rand"
	"testing"
)

func TestDijkstraSmall(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1, 5, 0)
	g.AddArc(0, 2, 2, 1)
	g.AddArc(2, 1, 1, 2)
	g.AddArc(1, 3, 1, 3)
	g.AddArc(2, 3, 10, 4)
	res := Dijkstra(g, 0)
	want := []int64{0, 3, 2, 4}
	for v, w := range want {
		if res.Dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, res.Dist[v], w)
		}
	}
	if res.Parent[1] != 2 || res.ParentArcID[1] != 2 {
		t.Fatal("parent pointers wrong")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1, 1, 0)
	res := Dijkstra(g, 0)
	if res.Dist[2] != Inf {
		t.Fatal("vertex 2 should be unreachable")
	}
}

func TestBellmanFordNegativeEdges(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1, 4, 0)
	g.AddArc(0, 2, 6, 1)
	g.AddArc(2, 1, -5, 2)
	g.AddArc(1, 3, 2, 3)
	res, ok := BellmanFord(g, 0)
	if !ok {
		t.Fatal("no negative cycle expected")
	}
	want := []int64{0, 1, 6, 3}
	for v, w := range want {
		if res.Dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, res.Dist[v], w)
		}
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(1, 2, -3, 1)
	g.AddArc(2, 1, 1, 2)
	if _, ok := BellmanFord(g, 0); ok {
		t.Fatal("negative cycle not detected")
	}
}

func TestBellmanFordMatchesDijkstraRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		g := NewDigraph(n)
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n), rng.Int63n(100), i)
		}
		d1 := Dijkstra(g, 0)
		d2, ok := BellmanFord(g, 0)
		if !ok {
			t.Fatal("unexpected negative cycle with non-negative weights")
		}
		for v := 0; v < n; v++ {
			if d1.Dist[v] != d2.Dist[v] {
				t.Fatalf("trial %d: dist[%d] dijkstra=%d bf=%d", trial, v, d1.Dist[v], d2.Dist[v])
			}
		}
	}
}

func TestDinicSmall(t *testing.T) {
	// Classic 6-vertex example with max flow 23.
	fn := NewFlowNetwork(6)
	fn.AddEdge(0, 1, 16, 0)
	fn.AddEdge(0, 2, 13, 1)
	fn.AddEdge(1, 2, 10, 2)
	fn.AddEdge(2, 1, 4, 3)
	fn.AddEdge(1, 3, 12, 4)
	fn.AddEdge(3, 2, 9, 5)
	fn.AddEdge(2, 4, 14, 6)
	fn.AddEdge(4, 3, 7, 7)
	fn.AddEdge(3, 5, 20, 8)
	fn.AddEdge(4, 5, 4, 9)
	if f := fn.MaxFlow(0, 5); f != 23 {
		t.Fatalf("maxflow=%d want 23", f)
	}
	side := fn.MinCutSide(0)
	if !side[0] || side[5] {
		t.Fatal("cut side wrong")
	}
}

func TestDinicDisconnected(t *testing.T) {
	fn := NewFlowNetwork(4)
	fn.AddEdge(0, 1, 5, 0)
	fn.AddEdge(2, 3, 5, 1)
	if f := fn.MaxFlow(0, 3); f != 0 {
		t.Fatalf("maxflow=%d want 0", f)
	}
}

func TestDinicFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		fn := NewFlowNetwork(n)
		var arcs []int
		type uv struct{ u, v int }
		ends := []uv{}
		for i := 0; i < 4*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			arcs = append(arcs, fn.AddEdge(u, v, 1+rng.Int63n(20), i))
			ends = append(ends, uv{u, v})
		}
		s, tt := 0, n-1
		val := fn.MaxFlow(s, tt)
		net := make([]int64, n)
		for i, a := range arcs {
			f := fn.Flow(a)
			if f < 0 {
				t.Fatal("negative flow")
			}
			net[ends[i].u] -= f
			net[ends[i].v] += f
		}
		for v := 0; v < n; v++ {
			switch v {
			case s:
				if net[v] != -val {
					t.Fatalf("source imbalance %d vs value %d", net[v], val)
				}
			case tt:
				if net[v] != val {
					t.Fatalf("sink imbalance %d vs value %d", net[v], val)
				}
			default:
				if net[v] != 0 {
					t.Fatalf("conservation broken at %d", v)
				}
			}
		}
	}
}

func TestStoerWagnerSmall(t *testing.T) {
	// A 4-cycle with one light edge: min cut isolates across the two
	// lightest edges.
	us := []int{0, 1, 2, 3}
	vs := []int{1, 2, 3, 0}
	ws := []int64{1, 10, 2, 10}
	w, side := GlobalMinCut(4, us, vs, ws)
	if w != 3 {
		t.Fatalf("min cut=%d want 3", w)
	}
	if got := CutWeightUndirected(us, vs, ws, side); got != 3 {
		t.Fatalf("side weight=%d want 3", got)
	}
}

func TestStoerWagnerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		var us, vs []int
		var ws []int64
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) > 0 {
					us = append(us, u)
					vs = append(vs, v)
					ws = append(ws, rng.Int63n(20))
				}
			}
		}
		got, side := GlobalMinCut(n, us, vs, ws)
		// Brute force over all bisections.
		want := Inf
		for mask := 1; mask < (1<<n)-1; mask++ {
			s := make([]bool, n)
			for v := 0; v < n; v++ {
				s[v] = mask&(1<<v) != 0
			}
			if w := CutWeightUndirected(us, vs, ws, s); w < want {
				want = w
			}
		}
		if got != want {
			t.Fatalf("trial %d n=%d: stoer-wagner=%d brute=%d", trial, n, got, want)
		}
		if got < Inf {
			if w := CutWeightUndirected(us, vs, ws, side); w != got {
				t.Fatalf("trial %d: returned side weight %d != %d", trial, w, got)
			}
			any, all := false, true
			for v := 0; v < n; v++ {
				if side[v] {
					any = true
				} else {
					all = false
				}
			}
			if !any || all {
				t.Fatalf("trial %d: degenerate side", trial)
			}
		}
	}
}

func TestUndirectedGirthSmall(t *testing.T) {
	// Triangle of weight 6 plus a pendant.
	us := []int{0, 1, 2, 0}
	vs := []int{1, 2, 0, 3}
	ws := []int64{1, 2, 3, 100}
	if g := UndirectedGirth(4, us, vs, ws); g != 6 {
		t.Fatalf("girth=%d want 6", g)
	}
}

func TestUndirectedGirthAcyclic(t *testing.T) {
	us := []int{0, 1}
	vs := []int{1, 2}
	ws := []int64{1, 1}
	if g := UndirectedGirth(3, us, vs, ws); g != Inf {
		t.Fatalf("girth of a tree should be Inf, got %d", g)
	}
}

func TestDirectedMinCycle(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(1, 2, 1, 1)
	g.AddArc(2, 0, 1, 2)
	g.AddArc(2, 3, 1, 3)
	g.AddArc(3, 2, 5, 4)
	if c := DirectedMinCycle(g); c != 3 {
		t.Fatalf("min cycle=%d want 3", c)
	}
}

func TestDirectedGlobalMinCutSmall(t *testing.T) {
	// Strongly connected 3-cycle with weights 4,5,6: cutting any single
	// vertex off severs exactly one forward arc; the min is 4.
	us := []int{0, 1, 2}
	vs := []int{1, 2, 0}
	ws := []int64{4, 5, 6}
	if c := DirectedGlobalMinCut(3, us, vs, ws); c != 4 {
		t.Fatalf("global cut=%d want 4", c)
	}
}

func TestDirectedGlobalMinCutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		var us, vs []int
		var ws []int64
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			us = append(us, u)
			vs = append(vs, v)
			ws = append(ws, rng.Int63n(15))
		}
		got := DirectedGlobalMinCut(n, us, vs, ws)
		want := Inf
		for mask := 1; mask < (1<<n)-1; mask++ {
			s := make([]bool, n)
			for v := 0; v < n; v++ {
				s[v] = mask&(1<<v) != 0
			}
			if w := CutWeightDirected(us, vs, ws, s); w < want {
				want = w
			}
		}
		if got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func TestAPSPBellmanFord(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1, 2, 0)
	g.AddArc(1, 2, -1, 1)
	g.AddArc(0, 2, 5, 2)
	all, ok := APSPBellmanFord(g)
	if !ok {
		t.Fatal("unexpected negative cycle")
	}
	if all[0][2] != 1 {
		t.Fatalf("apsp[0][2]=%d want 1", all[0][2])
	}
}
