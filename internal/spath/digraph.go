// Package spath provides centralized shortest-path, flow and cut algorithms.
//
// These serve two roles in the reproduction: (1) as the *local computations*
// the paper's distributed algorithms perform inside bags and DDGs (vertices
// compute APSP on collected subgraphs locally, §5.3), and (2) as independent
// baselines that every distributed result is validated against (Dinic for
// flows, Stoer–Wagner for cuts, Bellman–Ford on the explicit dual for SSSP).
package spath

import "math"

// Inf is the distance sentinel for "unreachable". It is large enough that
// Inf + any polynomial weight never overflows int64.
const Inf int64 = math.MaxInt64 / 4

// Arc is a directed, weighted arc with an opaque caller-assigned identifier
// (planar callers store the primal Dart here).
type Arc struct {
	To  int
	Len int64
	ID  int
}

// Digraph is a mutable directed multigraph used by the centralized
// algorithms.
type Digraph struct {
	adj [][]Arc
}

// NewDigraph returns an empty digraph on n vertices.
func NewDigraph(n int) *Digraph {
	return &Digraph{adj: make([][]Arc, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// AddArc appends a directed arc.
func (g *Digraph) AddArc(from, to int, length int64, id int) {
	g.adj[from] = append(g.adj[from], Arc{To: to, Len: length, ID: id})
}

// Out returns the out-arcs of v. The returned slice must not be modified.
func (g *Digraph) Out(v int) []Arc { return g.adj[v] }

// NumArcs returns the total number of arcs.
func (g *Digraph) NumArcs() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m
}
