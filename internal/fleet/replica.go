package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"path/filepath"

	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/store"
)

// ReplicaConfig configures one in-process replica.
type ReplicaConfig struct {
	Name string
	// Store is the replica's store config. When SpillDir is set it is
	// treated as a fleet-level root: the replica spills under
	// SpillDir/<name> so co-hosted replicas never share snapshot files.
	Store store.Config
	// Wire attaches a TCP wire listener alongside HTTP.
	Wire bool
	// Logger for the replica's daemon (nil = flowd's quiet default).
	Logger *slog.Logger
}

// Replica is one in-process flowd replica: a store, a daemon, its own
// metric registry, and live HTTP (plus optionally wire) listeners on
// loopback. It is the unit cmd/flowdfleet, the FLEET benchmark and the
// fleet selfcheck boot N of. Each replica owning its registry is what
// makes fleet-wide telemetry a pure merge (obs.WriteMergedPrometheus)
// instead of a shared-registry muddle.
type Replica struct {
	Name  string
	Store *store.Store
	Srv   *flowd.Server
	Reg   *obs.Registry

	hs     *http.Server
	httpLn net.Listener
	wireLn net.Listener
	member Member
}

// StartReplica boots one replica on ephemeral loopback ports.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("fleet: replica needs a name")
	}
	sc := cfg.Store
	if sc.SpillDir != "" {
		sc.SpillDir = filepath.Join(sc.SpillDir, cfg.Name)
	}
	st := store.New(sc)
	reg := obs.NewRegistry()
	srv := flowd.NewServerWith(st, flowd.ServerOptions{Logger: cfg.Logger, Registry: reg})

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %s: %w", cfg.Name, err)
	}
	r := &Replica{
		Name:   cfg.Name,
		Store:  st,
		Srv:    srv,
		Reg:    reg,
		hs:     &http.Server{Handler: srv},
		httpLn: httpLn,
		member: Member{Name: cfg.Name, HTTP: "http://" + httpLn.Addr().String()},
	}
	if cfg.Wire {
		wireLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			httpLn.Close()
			return nil, fmt.Errorf("fleet: replica %s wire: %w", cfg.Name, err)
		}
		r.wireLn = wireLn
		r.member.WireNet, r.member.WireAddr = "tcp", wireLn.Addr().String()
		go srv.Wire().Serve(wireLn)
	}
	go r.hs.Serve(httpLn)
	return r, nil
}

// Member is how the fleet client addresses this replica.
func (r *Replica) Member() Member { return r.member }

// Stop hard-kills the replica: listeners and connections drop
// immediately, in-flight requests fail. This is the benchmark's
// replica-death event.
func (r *Replica) Stop() {
	r.hs.Close()
	if r.wireLn != nil {
		r.Srv.Wire().Close()
	}
}

// Drain shuts the replica down gracefully within ctx's budget: stop
// accepting, finish in-flight requests on both planes, then flush every
// resident bundle to the disk tier (when one is configured) so a
// restart restores instead of rebuilding.
func (r *Replica) Drain(ctx context.Context) error {
	var errs []error
	if err := r.hs.Shutdown(ctx); err != nil {
		errs = append(errs, fmt.Errorf("http shutdown: %w", err))
	}
	if r.wireLn != nil {
		if err := r.Srv.Wire().Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("wire shutdown: %w", err))
		}
	}
	if r.Store.SpillEnabled() {
		if _, err := r.Store.SnapshotResident(); err != nil {
			errs = append(errs, fmt.Errorf("snapshot resident: %w", err))
		}
		r.Store.FlushSpills()
	}
	return errors.Join(errs...)
}
