package fleet

import (
	"context"
	"fmt"
	"testing"

	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/store"
)

// TestFleetTraceDifferential pins trace propagation across both
// transports: one trace id minted by the caller must appear on the
// fleet client's hop-0 spans and on the owning replica's hop-1 server
// span, whether the query crossed the HTTP plane or the binary wire
// plane — and the rings must stitch into one two-hop trace.
func TestFleetTraceDifferential(t *testing.T) {
	for _, mode := range []struct {
		name string
		wire bool
	}{{"http", false}, {"wire", true}} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			reps := make([]*Replica, 2)
			members := make([]Member, 2)
			for i := range reps {
				r, err := StartReplica(ReplicaConfig{
					Name:  fmt.Sprintf("r%d", i),
					Store: store.Config{SpillDir: dir},
					Wire:  mode.wire,
				})
				if err != nil {
					t.Fatal(err)
				}
				reps[i] = r
				members[i] = r.Member()
				t.Cleanup(r.Stop)
			}
			c, err := New(members, Options{ProbeInterval: -1, Wire: mode.wire})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })

			const id = "traced-graph"
			if err := c.Register(context.Background(), id, testSpec(3)); err != nil {
				t.Fatal(err)
			}

			tc := obs.NewTrace()
			ctx := obs.ContextWithTrace(context.Background(), tc)
			resp, err := c.Query(ctx, flowd.QueryRequest{Graph: id, Op: "dist", U: 0, V: 35})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.Hit {
				t.Fatal("warm-registered graph missed")
			}
			want := tc.TraceID()

			// Hop 0: the fleet client's root span continues the caller's
			// trace, and its attempt child is parented under it.
			var root, attempt *obs.SpanView
			fleetSpans := c.Tracer().Recent()
			for i, v := range fleetSpans {
				if v.TraceID != want {
					continue
				}
				switch v.Family {
				case "dist":
					root = &fleetSpans[i]
				case "attempt":
					attempt = &fleetSpans[i]
				}
			}
			if root == nil || attempt == nil {
				t.Fatalf("fleet rings missing root/attempt for trace %s: %+v", want, fleetSpans)
			}
			if root.Transport != "fleet" || root.Hop != 0 {
				t.Fatalf("root span: %+v", root)
			}
			if attempt.Hop != 0 || attempt.ParentID != root.SpanID {
				t.Fatalf("attempt span not parented under root: %+v (root span %s)", attempt, root.SpanID)
			}

			// Hop 1: the owner's server span carries the same trace id over
			// the mode's transport.
			owner, _ := c.Owner(id)
			var server *obs.SpanView
			ownerSpans := replicaByName(reps, owner).Srv.Tracer().Recent()
			for i, v := range ownerSpans {
				if v.TraceID == want && v.Family == "dist" {
					server = &ownerSpans[i]
					break
				}
			}
			if server == nil {
				t.Fatalf("owner %s has no server span for trace %s: %+v", owner, want, ownerSpans)
			}
			wantTransport := "http"
			if mode.wire {
				wantTransport = "wire"
			}
			if server.Transport != wantTransport {
				t.Fatalf("server span transport %q, want %q", server.Transport, wantTransport)
			}
			if server.Hop != 1 {
				t.Fatalf("server span hop %d, want 1", server.Hop)
			}

			// The rings stitch into one trace spanning both hops.
			var stitched *obs.TraceView
			for _, tv := range obs.Stitch(fleetSpans, ownerSpans) {
				if tv.TraceID == want {
					stitched = &tv
					break
				}
			}
			if stitched == nil {
				t.Fatalf("trace %s did not stitch", want)
			}
			if stitched.Hops != 2 {
				t.Fatalf("stitched hops = %d, want 2: %+v", stitched.Hops, stitched.Spans)
			}
			// Hop ordering: every hop-0 span precedes the hop-1 server span.
			if last := stitched.Spans[len(stitched.Spans)-1]; last.Hop != 1 {
				t.Fatalf("stitched trace does not end at the server hop: %+v", last)
			}
		})
	}
}
