package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"r2", "r0", "r1"}
	a, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"r0", "r1", "r2"}, 64) // different input order
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("graph-%d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("placement differs for %q: %q vs %q", key, oa, ob)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		o, ok := r.Owner(fmt.Sprintf("graph-%d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[o]++
	}
	for m, c := range counts {
		// Fair share is n/3 = 1000; with 64 vnodes the spread stays well
		// inside a factor of two for any realistic hash behaviour.
		if c < n/6 || c > n/2+n/6 {
			t.Fatalf("member %s owns %d of %d keys — ring badly unbalanced: %v", m, c, n, counts)
		}
	}
}

func TestRingSuccessorsDistinctAndAliveAware(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := r.Successors("graph-42", 3)
	if len(chain) != 3 {
		t.Fatalf("want 3 successors, got %v", chain)
	}
	seen := map[string]bool{}
	for _, m := range chain {
		if seen[m] {
			t.Fatalf("duplicate member in chain %v", chain)
		}
		seen[m] = true
	}
	owner := chain[0]
	if got, _ := r.Owner("graph-42"); got != owner {
		t.Fatalf("Owner %q != Successors[0] %q", got, owner)
	}

	// Kill the owner: the old first successor becomes the owner.
	r.SetAlive(owner, false)
	next, ok := r.Owner("graph-42")
	if !ok {
		t.Fatal("no owner after single failure")
	}
	if next != chain[1] {
		t.Fatalf("after killing %s, owner = %q, want old successor %q", owner, next, chain[1])
	}
	if got := r.Successors("graph-42", 3); len(got) != 2 {
		t.Fatalf("dead member still in chain: %v", got)
	}

	// Keys owned by surviving members must not move (the consistency in
	// consistent hashing).
	r2, _ := NewRing([]string{"r0", "r1", "r2"}, 0)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k-%d", i)
		before, _ := r2.Owner(key)
		if before == owner {
			continue
		}
		after, _ := r.Owner(key)
		if after == before {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by survivors moved after unrelated failure (kept %d)", moved, kept)
	}
}

func TestRingEpochAndRecovery(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Epoch(); got != 1 {
		t.Fatalf("fresh epoch = %d, want 1", got)
	}
	r.SetAlive("r0", true) // no-op: already alive
	if got := r.Epoch(); got != 1 {
		t.Fatalf("no-op SetAlive bumped epoch to %d", got)
	}
	r.SetAlive("r0", false)
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch after death = %d, want 2", got)
	}
	if r.Alive("r0") {
		t.Fatal("r0 still alive")
	}
	if got := r.AliveCount(); got != 1 {
		t.Fatalf("alive count = %d, want 1", got)
	}
	r.SetAlive("r0", true)
	if got := r.Epoch(); got != 3 {
		t.Fatalf("epoch after recovery = %d, want 3", got)
	}
	r.SetAlive("ghost", false) // unknown member: ignored
	if got := r.Epoch(); got != 3 {
		t.Fatalf("unknown member bumped epoch to %d", got)
	}

	// All members dead: no owner.
	r.SetAlive("r0", false)
	r.SetAlive("r1", false)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("owner returned with zero alive members")
	}
	if got := r.Successors("k", 2); len(got) != 0 {
		t.Fatalf("successors %v with zero alive members", got)
	}
}
