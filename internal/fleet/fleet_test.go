package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"planarflow/internal/flowd"
	"planarflow/internal/store"
)

func testSpec(seed int64) store.GraphSpec {
	return store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: seed, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
}

// startFleet boots n replicas (spilling under t.TempDir()) and a fleet
// client over them, with probing disabled unless probe is set (tests
// drive aliveness explicitly to stay deterministic).
func startFleet(t *testing.T, n int, opt Options) ([]*Replica, *Client) {
	t.Helper()
	dir := t.TempDir()
	reps := make([]*Replica, n)
	members := make([]Member, n)
	for i := range reps {
		r, err := StartReplica(ReplicaConfig{
			Name:  fmt.Sprintf("r%d", i),
			Store: store.Config{SpillDir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
		members[i] = r.Member()
		t.Cleanup(r.Stop)
	}
	c, err := New(members, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return reps, c
}

func replicaByName(reps []*Replica, name string) *Replica {
	for _, r := range reps {
		if r.Name == name {
			return r
		}
	}
	return nil
}

func TestFleetRoutesToOwner(t *testing.T) {
	reps, c := startFleet(t, 3, Options{ProbeInterval: -1})
	ctx := context.Background()
	const graphs = 6
	for i := 0; i < graphs; i++ {
		id := fmt.Sprintf("g%d", i)
		if err := c.Register(ctx, id, testSpec(int64(i+1))); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	for i := 0; i < graphs; i++ {
		id := fmt.Sprintf("g%d", i)
		owner, ok := c.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		resp, err := c.Query(ctx, flowd.QueryRequest{Graph: id, Op: "dist", U: 0, V: 35})
		if err != nil {
			t.Fatalf("query %s: %v", id, err)
		}
		if !resp.Hit {
			t.Fatalf("%s not resident on owner %s after warm register", id, owner)
		}
		// Only the owner holds the graph before any standby sync.
		st := replicaByName(reps, owner).Store.Snapshot()
		if st.Graphs == 0 {
			t.Fatalf("owner %s of %s reports zero graphs", owner, id)
		}
	}
	// Registration must land every graph on exactly one replica.
	total := 0
	for _, r := range reps {
		total += r.Store.Snapshot().Graphs
	}
	if total != graphs {
		t.Fatalf("fleet holds %d registrations for %d graphs", total, graphs)
	}
}

func TestFleetFailoverBitIdentical(t *testing.T) {
	reps, c := startFleet(t, 3, Options{
		ProbeInterval: -1,
		BackoffBase:   time.Millisecond,
		BackoffCap:    5 * time.Millisecond,
	})
	ctx := context.Background()
	const id = "failover-graph"
	spec := testSpec(7)
	if err := c.Register(ctx, id, spec); err != nil {
		t.Fatal(err)
	}

	// Ground truth: answers from the fleet before the kill.
	type q struct {
		op   string
		u, v int
	}
	qs := []q{{"dist", 0, 35}, {"dist", 3, 30}, {"maxflow", 0, 35}, {"girth", 0, 0}}
	want := make([]*flowd.QueryResponse, len(qs))
	for i, qq := range qs {
		resp, err := c.Query(ctx, flowd.QueryRequest{Graph: id, Op: qq.op, U: qq.u, V: qq.v})
		if err != nil {
			t.Fatalf("pre-kill %s: %v", qq.op, err)
		}
		want[i] = resp
	}

	// Replicate to the standby, then hard-kill the owner.
	if n, err := c.SyncStandby(ctx); err != nil || n == 0 {
		t.Fatalf("standby sync: n=%d err=%v", n, err)
	}
	owner, _ := c.Owner(id)
	chain := c.Ring().Successors(id, 2)
	if len(chain) != 2 {
		t.Fatalf("successor chain %v", chain)
	}
	standby := chain[1]
	sb := replicaByName(reps, standby)
	preBuilds := sb.Store.Snapshot().Builds
	st := sb.Store.Snapshot()
	if st.PeerRestores == 0 {
		t.Fatalf("standby %s has no peer restores after sync: %+v", standby, st)
	}
	replicaByName(reps, owner).Stop()

	epochBefore := c.Ring().Epoch()
	for i, qq := range qs {
		resp, err := c.Query(ctx, flowd.QueryRequest{Graph: id, Op: qq.op, U: qq.u, V: qq.v})
		if err != nil {
			t.Fatalf("post-kill %s: %v", qq.op, err)
		}
		if resp.Value != want[i].Value || resp.NegCycle != want[i].NegCycle ||
			len(resp.CutEdges) != len(want[i].CutEdges) {
			t.Fatalf("post-kill %s answer differs: got %+v want %+v", qq.op, resp, want[i])
		}
	}
	if got, _ := c.Owner(id); got != standby {
		t.Fatalf("post-kill owner %s, want standby %s", got, standby)
	}
	if c.Ring().Epoch() == epochBefore {
		t.Fatal("epoch did not advance on eject")
	}
	// The standby answered from its peer-restored bundle: no new builds.
	if got := sb.Store.Snapshot().Builds; got != preBuilds {
		t.Fatalf("standby rebuilt after failover: builds %d -> %d", preBuilds, got)
	}
	if s := c.Stats(); s.Ejects == 0 || s.Failovers == 0 {
		t.Fatalf("stats missed the failover: %+v", s)
	}
}

func TestFleetAdoptWithoutStandbySync(t *testing.T) {
	reps, c := startFleet(t, 3, Options{
		ProbeInterval: -1,
		BackoffBase:   time.Millisecond,
		BackoffCap:    5 * time.Millisecond,
	})
	ctx := context.Background()
	const id = "adopt-graph"
	if err := c.Register(ctx, id, testSpec(11)); err != nil {
		t.Fatal(err)
	}
	want, err := c.Query(ctx, flowd.QueryRequest{Graph: id, Op: "dist", U: 0, V: 35})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the owner with NO standby sync: the successor has never seen
	// the graph. The adopt path must register + restore on the fly. The
	// owner is dead, so the peer rung misses and the ladder falls through
	// to a shared-spill-root disk restore or a cold rebuild — either way
	// the answer must match.
	owner, _ := c.Owner(id)
	replicaByName(reps, owner).Stop()
	got, err := c.Query(ctx, flowd.QueryRequest{Graph: id, Op: "dist", U: 0, V: 35})
	if err != nil {
		t.Fatalf("post-kill query: %v", err)
	}
	if got.Value != want.Value {
		t.Fatalf("adopted answer %d != %d", got.Value, want.Value)
	}
	if s := c.Stats(); s.Adoptions == 0 {
		t.Fatalf("adopt path not taken: %+v", s)
	}
}

func TestFleetProbeRecovery(t *testing.T) {
	_, c := startFleet(t, 2, Options{
		ProbeInterval: 10 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		BackoffCap:    5 * time.Millisecond,
	})
	// Eject a live member by hand: the probe must bring it back.
	name := c.Ring().Members()[0]
	c.eject(name, c.rootSpan(context.Background(), "test", ""))
	if c.Ring().Alive(name) {
		t.Fatal("eject did not mark dead")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.Ring().Alive(name) {
		if time.Now().After(deadline) {
			t.Fatal("probe never recovered the member")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := c.Stats(); s.Recoveries == 0 {
		t.Fatalf("recovery not counted: %+v", s)
	}
}

func TestFleetAllDead(t *testing.T) {
	reps, c := startFleet(t, 2, Options{
		ProbeInterval: -1,
		BackoffBase:   time.Millisecond,
		BackoffCap:    2 * time.Millisecond,
		MaxAttempts:   3,
	})
	ctx := context.Background()
	if err := c.Register(ctx, "g", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		r.Stop()
	}
	_, err := c.Query(ctx, flowd.QueryRequest{Graph: "g", Op: "dist", U: 0, V: 35})
	if err == nil {
		t.Fatal("query succeeded against a dead fleet")
	}
}

func TestReplicaDrainFlushesResident(t *testing.T) {
	dir := t.TempDir()
	r, err := StartReplica(ReplicaConfig{Name: "solo", Store: store.Config{SpillDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := flowd.NewClient(r.Member().HTTP)
	if _, err := cl.RegisterWarm(ctx, "g", testSpec(5)); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := r.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := r.Store.Snapshot()
	if st.SnapshotWrites == 0 {
		t.Fatalf("drain wrote no snapshots: %+v", st)
	}
	// The HTTP plane must be down after drain.
	if _, err := cl.Health(ctx); err == nil {
		t.Fatal("healthz answered after drain")
	}
}
