package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"planarflow/internal/flowd"
	"planarflow/internal/store"
)

// Options tunes the fleet client's routing and failure handling. The
// zero value is usable: DefaultVnodes, one standby per graph, 10ms–500ms
// capped exponential backoff, 250ms health probes.
type Options struct {
	// Vnodes per member on the ring (<= 0 = DefaultVnodes).
	Vnodes int
	// Replication is how many standby replicas each graph keeps beyond
	// its owner — SyncStandby registers the graph and ships its snapshot
	// to this many ring successors (<= 0 = 1; capped at fleet size - 1).
	Replication int
	// BackoffBase/BackoffCap bound the exponential retry backoff after a
	// replica failure (0 = 10ms / 500ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxAttempts is the routing retry budget per request: each attempt
	// may eject a dead replica and re-route to its successor
	// (<= 0 = one attempt per member + 1).
	MaxAttempts int
	// ProbeInterval paces the health probe that watches an ejected
	// replica for recovery (0 = 250ms; < 0 disables probing — dead
	// replicas stay dead until SetAlive).
	ProbeInterval time.Duration
	// Wire attaches a binary-transport WireClient to every member that
	// advertises a wire address, routing Query/QueryBatch over it.
	Wire bool
	// WireOptions configures those transports (pool size, coalescing).
	WireOptions flowd.WireOptions
	// Seed fixes the backoff jitter stream (0 = 1; the fleet client is
	// deterministic given the seed, which the benchmarks rely on).
	Seed int64
}

func (o *Options) withDefaults(members int) Options {
	out := *o
	if out.Vnodes <= 0 {
		out.Vnodes = DefaultVnodes
	}
	if out.Replication <= 0 {
		out.Replication = 1
	}
	if out.Replication > members-1 {
		out.Replication = members - 1
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 10 * time.Millisecond
	}
	if out.BackoffCap <= 0 {
		out.BackoffCap = 500 * time.Millisecond
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = members + 1
	}
	if out.ProbeInterval == 0 {
		out.ProbeInterval = 250 * time.Millisecond
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// ErrNoReplicas reports a request that found every fleet member marked
// dead — there is nowhere left to route.
var ErrNoReplicas = errors.New("fleet: no alive replicas")

// Stats counts the fleet client's failure-handling events.
type Stats struct {
	Failovers    int64 `json:"failovers"`     // requests re-routed after an eject
	Ejects       int64 `json:"ejects"`        // replicas marked dead
	Recoveries   int64 `json:"recoveries"`    // replicas probed back alive
	Adoptions    int64 `json:"adoptions"`     // graphs registered+restored on a non-owner at query time
	StandbySyncs int64 `json:"standby_syncs"` // graph/standby pairs synced by SyncStandby
}

// memberState is one replica as the client sees it: the HTTP (and
// optionally wire) client plus the single-prober guard.
type memberState struct {
	m       Member
	cl      *flowd.Client
	wc      *flowd.WireClient
	probing atomic.Bool
}

// Client routes flowd requests across a fleet of replicas by consistent
// hash: each graph id maps to an owning replica; Register, Warm, Query
// and QueryBatch all follow that placement. On a transport-level
// failure the owner is ejected from the ring (epoch bump), a background
// probe watches it for recovery, and the request retries against the
// ring successor after a jittered exponential backoff. A successor that
// answers "unknown graph" for a graph the client has registered runs
// the adopt path first: re-register the cached spec, then restore the
// bundle via the peer ladder (snapshot fetch from the old owner or any
// other alive replica, then the successor's own disk tier, then cold).
type Client struct {
	ring    *Ring
	members map[string]*memberState
	order   []string
	opt     Options

	specMu sync.Mutex
	specs  map[string]store.GraphSpec
	// syncedAt memoizes standby sync per "graph|standby" by the ring
	// epoch it ran at: a periodic SyncStandby is then a no-op until
	// membership changes, instead of re-registering (409) and re-walking
	// the restore ladder on every tick.
	syncedAt map[string]uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	failovers, ejects, recoveries, adoptions, standbySyncs atomic.Int64
}

// New builds a fleet client over a static member list.
func New(members []Member, opt Options) (*Client, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: need at least one member")
	}
	names := make([]string, len(members))
	for i, m := range members {
		if m.HTTP == "" {
			return nil, fmt.Errorf("fleet: member %q has no HTTP base", m.Name)
		}
		names[i] = m.Name
	}
	o := opt.withDefaults(len(members))
	ring, err := NewRing(names, o.Vnodes)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ring:     ring,
		members:  make(map[string]*memberState, len(members)),
		order:    ring.Members(),
		opt:      o,
		specs:    map[string]store.GraphSpec{},
		syncedAt: map[string]uint64{},
		rng:      rand.New(rand.NewSource(o.Seed)),
		stop:     make(chan struct{}),
	}
	for _, m := range members {
		ms := &memberState{m: m, cl: flowd.NewClient(m.HTTP)}
		if o.Wire && m.WireNet != "" {
			ms.wc = flowd.NewWireClient(m.WireNet, m.WireAddr, o.WireOptions)
			ms.cl = ms.cl.WithWireTransport(ms.wc)
		}
		c.members[m.Name] = ms
	}
	return c, nil
}

// Close stops the probes and releases every member's wire transport.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	c.wg.Wait()
	for _, ms := range c.members {
		if ms.wc != nil {
			ms.wc.Close()
		}
	}
	return nil
}

// Ring exposes the routing ring (epoch, aliveness, placement).
func (c *Client) Ring() *Ring { return c.ring }

// Stats snapshots the failure-handling counters.
func (c *Client) Stats() Stats {
	return Stats{
		Failovers:    c.failovers.Load(),
		Ejects:       c.ejects.Load(),
		Recoveries:   c.recoveries.Load(),
		Adoptions:    c.adoptions.Load(),
		StandbySyncs: c.standbySyncs.Load(),
	}
}

// MemberClient returns the per-replica flowd client (telemetry scrapes,
// tests). Unknown names return nil.
func (c *Client) MemberClient(name string) *flowd.Client {
	if ms := c.members[name]; ms != nil {
		return ms.cl
	}
	return nil
}

// Owner returns the replica currently owning the graph.
func (c *Client) Owner(graph string) (string, bool) { return c.ring.Owner(graph) }

// isConflict reports a 409 — the graph is already registered there,
// which every idempotent path here treats as success.
func isConflict(err error) bool {
	var ae *flowd.APIError
	return errors.As(err, &ae) && ae.Status == http.StatusConflict
}

// Register places the graph on its owning replica (warm, so the
// substrates are built before the call returns) and caches the spec for
// adoption and standby sync. A duplicate registration is success.
func (c *Client) Register(ctx context.Context, id string, spec store.GraphSpec) error {
	_, err := c.withOwner(ctx, id, func(ms *memberState) (any, error) {
		_, err := ms.cl.RegisterWarm(ctx, id, spec)
		if isConflict(err) {
			err = nil
		}
		return nil, err
	})
	if err != nil {
		return err
	}
	c.specMu.Lock()
	c.specs[id] = spec
	c.specMu.Unlock()
	return nil
}

// Warm eagerly builds the graph's substrates on its owning replica.
func (c *Client) Warm(ctx context.Context, graph string) error {
	_, err := c.withOwner(ctx, graph, func(ms *memberState) (any, error) {
		_, err := ms.cl.Warm(ctx, graph)
		return nil, err
	})
	return err
}

// Query routes one query to the graph's owner, failing over along the
// ring when the owner is down.
func (c *Client) Query(ctx context.Context, req flowd.QueryRequest) (*flowd.QueryResponse, error) {
	v, err := c.withOwner(ctx, req.Graph, func(ms *memberState) (any, error) {
		return ms.cl.Query(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	return v.(*flowd.QueryResponse), nil
}

// QueryBatch routes one batch to the graph's owner.
func (c *Client) QueryBatch(ctx context.Context, req flowd.BatchRequest) (*flowd.BatchResponse, error) {
	v, err := c.withOwner(ctx, req.Graph, func(ms *memberState) (any, error) {
		return ms.cl.QueryBatch(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	return v.(*flowd.BatchResponse), nil
}

// withOwner is the routing loop every graph-keyed call runs through:
// resolve the owner, run the call, and on failure either eject +
// backoff + retry (transport failure), adopt + retry (owner-side
// unknown graph with a cached spec), or surface the error.
func (c *Client) withOwner(ctx context.Context, graph string, call func(*memberState) (any, error)) (any, error) {
	adopted := false
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		owner, ok := c.ring.Owner(graph)
		if !ok {
			return nil, ErrNoReplicas
		}
		ms := c.members[owner]
		v, err := call(ms)
		if err == nil {
			if attempt > 0 {
				c.failovers.Add(1)
			}
			return v, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		switch {
		case flowd.IsUnavailable(err):
			c.eject(owner)
			if berr := c.backoff(ctx, attempt); berr != nil {
				return nil, err
			}
		case flowd.IsNotFound(err) && !adopted && c.hasSpec(graph):
			// The routed replica does not hold the graph (fresh successor
			// after a failover): register the cached spec and run the peer
			// restore ladder, then retry the call once on the same replica.
			adopted = true
			if aerr := c.adopt(ctx, owner, graph); aerr != nil {
				if flowd.IsUnavailable(aerr) {
					c.eject(owner)
					continue
				}
				return nil, fmt.Errorf("fleet: adopt %q on %s: %w", graph, owner, aerr)
			}
		default:
			return nil, err
		}
	}
	return nil, fmt.Errorf("fleet: %q: retries exhausted: %w", graph, ErrNoReplicas)
}

func (c *Client) hasSpec(graph string) bool {
	c.specMu.Lock()
	defer c.specMu.Unlock()
	_, ok := c.specs[graph]
	return ok
}

// adopt makes a replica that has never seen the graph serviceable:
// register the cached spec (409 = already there), then run its restore
// ladder with every other alive replica as a peer — so the bundle the
// old owner built ships over instead of being rebuilt.
func (c *Client) adopt(ctx context.Context, member, graph string) error {
	c.specMu.Lock()
	spec, ok := c.specs[graph]
	c.specMu.Unlock()
	if !ok {
		return store.ErrUnknownGraph
	}
	ms := c.members[member]
	if _, err := ms.cl.Register(ctx, graph, spec); err != nil && !isConflict(err) {
		return err
	}
	if _, err := ms.cl.Restore(ctx, graph, c.peerBases(member)); err != nil {
		return err
	}
	c.adoptions.Add(1)
	return nil
}

// peerBases lists every alive member's HTTP base except self — the peer
// list handed to the restore ladder.
func (c *Client) peerBases(self string) []string {
	var out []string
	for _, name := range c.order {
		if name == self || !c.ring.Alive(name) {
			continue
		}
		out = append(out, c.members[name].m.HTTP)
	}
	return out
}

// eject marks a member dead on the ring and starts its recovery probe.
func (c *Client) eject(member string) {
	if !c.ring.Alive(member) {
		return
	}
	c.ring.SetAlive(member, false)
	c.ejects.Add(1)
	c.startProbe(member)
}

// startProbe launches the single background prober for an ejected
// member: poll /healthz until it answers, then mark the member alive.
func (c *Client) startProbe(member string) {
	if c.opt.ProbeInterval < 0 || c.closed.Load() {
		return
	}
	ms := c.members[member]
	if !ms.probing.CompareAndSwap(false, true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer ms.probing.Store(false)
		t := time.NewTicker(c.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.opt.ProbeInterval)
				_, err := ms.cl.Health(ctx)
				cancel()
				if err == nil {
					c.ring.SetAlive(member, true)
					c.recoveries.Add(1)
					return
				}
			}
		}
	}()
}

// backoff sleeps the jittered exponential delay for the given attempt,
// honoring ctx.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opt.BackoffBase << uint(attempt)
	if d > c.opt.BackoffCap || d <= 0 {
		d = c.opt.BackoffCap
	}
	// Full jitter over [d/2, d): enough spread to de-synchronize
	// concurrent retriers without losing the exponential shape.
	c.rngMu.Lock()
	j := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(j):
		return nil
	}
}

// SyncStandby replicates every registered graph onto its ring standbys:
// for each graph, the Replication successors beyond the owner get the
// spec registered (idempotent) and the bundle restored via the peer
// ladder with the owner first in the fetch order. Run it after
// registration (and periodically) so a failover finds the successor
// already holding a restored bundle — zero rebuilds on the kill path.
// Returns how many graph/standby pairs synced.
func (c *Client) SyncStandby(ctx context.Context) (int, error) {
	c.specMu.Lock()
	ids := make([]string, 0, len(c.specs))
	for id := range c.specs {
		ids = append(ids, id)
	}
	specs := make(map[string]store.GraphSpec, len(ids))
	for id := range c.specs {
		specs[id] = c.specs[id]
	}
	c.specMu.Unlock()

	epoch := c.ring.Epoch()
	synced := 0
	var firstErr error
	for _, id := range ids {
		chain := c.ring.Successors(id, 1+c.opt.Replication)
		if len(chain) < 2 {
			continue
		}
		owner := chain[0]
		for _, standby := range chain[1:] {
			key := id + "|" + standby
			c.specMu.Lock()
			done := c.syncedAt[key] == epoch
			c.specMu.Unlock()
			if done {
				continue
			}
			ms := c.members[standby]
			if _, err := ms.cl.Register(ctx, id, specs[id]); err != nil && !isConflict(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: standby register %q on %s: %w", id, standby, err)
				}
				continue
			}
			// Owner first in the peer order: the freshest bundle lives there.
			peers := []string{c.members[owner].m.HTTP}
			for _, p := range c.peerBases(standby) {
				if p != peers[0] {
					peers = append(peers, p)
				}
			}
			if _, err := ms.cl.Restore(ctx, id, peers); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: standby restore %q on %s: %w", id, standby, err)
				}
				continue
			}
			c.specMu.Lock()
			c.syncedAt[key] = epoch
			c.specMu.Unlock()
			synced++
			c.standbySyncs.Add(1)
		}
	}
	return synced, firstErr
}
