package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"planarflow/internal/flowd"
	"planarflow/internal/obs"
	"planarflow/internal/store"
)

// Options tunes the fleet client's routing and failure handling. The
// zero value is usable: DefaultVnodes, one standby per graph, 10ms–500ms
// capped exponential backoff, 250ms health probes.
type Options struct {
	// Vnodes per member on the ring (<= 0 = DefaultVnodes).
	Vnodes int
	// Replication is how many standby replicas each graph keeps beyond
	// its owner — SyncStandby registers the graph and ships its snapshot
	// to this many ring successors (<= 0 = 1; capped at fleet size - 1).
	Replication int
	// BackoffBase/BackoffCap bound the exponential retry backoff after a
	// replica failure (0 = 10ms / 500ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxAttempts is the routing retry budget per request: each attempt
	// may eject a dead replica and re-route to its successor
	// (<= 0 = one attempt per member + 1).
	MaxAttempts int
	// ProbeInterval paces the health probe that watches an ejected
	// replica for recovery (0 = 250ms; < 0 disables probing — dead
	// replicas stay dead until SetAlive).
	ProbeInterval time.Duration
	// Wire attaches a binary-transport WireClient to every member that
	// advertises a wire address, routing Query/QueryBatch over it.
	Wire bool
	// WireOptions configures those transports (pool size, coalescing).
	WireOptions flowd.WireOptions
	// Seed fixes the backoff jitter stream (0 = 1; the fleet client is
	// deterministic given the seed, which the benchmarks rely on).
	Seed int64
	// TraceRing sizes the client's own span rings (0 = obs default).
	// Every routed call roots a trace here; replicas continue it.
	TraceRing int
	// SlowThreshold flags routed calls at least this slow for the
	// client's slow ring (0 = obs default).
	SlowThreshold time.Duration
	// JournalSize bounds the ops event journal (0 = obs default).
	JournalSize int
}

func (o *Options) withDefaults(members int) Options {
	out := *o
	if out.Vnodes <= 0 {
		out.Vnodes = DefaultVnodes
	}
	if out.Replication <= 0 {
		out.Replication = 1
	}
	if out.Replication > members-1 {
		out.Replication = members - 1
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 10 * time.Millisecond
	}
	if out.BackoffCap <= 0 {
		out.BackoffCap = 500 * time.Millisecond
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = members + 1
	}
	if out.ProbeInterval == 0 {
		out.ProbeInterval = 250 * time.Millisecond
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// ErrNoReplicas reports a request that found every fleet member marked
// dead — there is nowhere left to route.
var ErrNoReplicas = errors.New("fleet: no alive replicas")

// Stats counts the fleet client's failure-handling events.
type Stats struct {
	Failovers    int64 `json:"failovers"`     // requests re-routed after an eject
	Ejects       int64 `json:"ejects"`        // replicas marked dead
	Recoveries   int64 `json:"recoveries"`    // replicas probed back alive
	Adoptions    int64 `json:"adoptions"`     // graphs registered+restored on a non-owner at query time
	StandbySyncs int64 `json:"standby_syncs"` // graph/standby pairs synced by SyncStandby
}

// memberState is one replica as the client sees it: the HTTP (and
// optionally wire) client plus the single-prober guard.
type memberState struct {
	m       Member
	cl      *flowd.Client
	wc      *flowd.WireClient
	probing atomic.Bool
}

// Client routes flowd requests across a fleet of replicas by consistent
// hash: each graph id maps to an owning replica; Register, Warm, Query
// and QueryBatch all follow that placement. On a transport-level
// failure the owner is ejected from the ring (epoch bump), a background
// probe watches it for recovery, and the request retries against the
// ring successor after a jittered exponential backoff. A successor that
// answers "unknown graph" for a graph the client has registered runs
// the adopt path first: re-register the cached spec, then restore the
// bundle via the peer ladder (snapshot fetch from the old owner or any
// other alive replica, then the successor's own disk tier, then cold).
type Client struct {
	ring    *Ring
	members map[string]*memberState
	order   []string
	opt     Options

	specMu sync.Mutex
	specs  map[string]store.GraphSpec
	// syncedAt memoizes standby sync per "graph|standby" by the ring
	// epoch it ran at: a periodic SyncStandby is then a no-op until
	// membership changes, instead of re-registering (409) and re-walking
	// the restore ladder on every tick.
	syncedAt map[string]uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	// tracer holds the client's own spans: every routed call roots a
	// trace (transport "fleet", hop 0) whose children record the route
	// decision, each attempt, ejects, backoffs, probes, and adopts —
	// replicas record the downstream hops, and /fleettracez stitches.
	tracer  *obs.Tracer
	journal *obs.Journal
	spanSeq atomic.Uint64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	failovers, ejects, recoveries, adoptions, standbySyncs atomic.Int64
}

// New builds a fleet client over a static member list.
func New(members []Member, opt Options) (*Client, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: need at least one member")
	}
	names := make([]string, len(members))
	for i, m := range members {
		if m.HTTP == "" {
			return nil, fmt.Errorf("fleet: member %q has no HTTP base", m.Name)
		}
		names[i] = m.Name
	}
	o := opt.withDefaults(len(members))
	ring, err := NewRing(names, o.Vnodes)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ring:     ring,
		members:  make(map[string]*memberState, len(members)),
		order:    ring.Members(),
		opt:      o,
		specs:    map[string]store.GraphSpec{},
		syncedAt: map[string]uint64{},
		rng:      rand.New(rand.NewSource(o.Seed)),
		tracer:   obs.NewTracer(o.TraceRing, o.SlowThreshold),
		journal:  obs.NewJournal(o.JournalSize),
		stop:     make(chan struct{}),
	}
	for _, m := range members {
		ms := &memberState{m: m, cl: flowd.NewClient(m.HTTP)}
		if o.Wire && m.WireNet != "" {
			ms.wc = flowd.NewWireClient(m.WireNet, m.WireAddr, o.WireOptions)
			ms.cl = ms.cl.WithWireTransport(ms.wc)
		}
		c.members[m.Name] = ms
	}
	return c, nil
}

// Close stops the probes and releases every member's wire transport.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	c.wg.Wait()
	for _, ms := range c.members {
		if ms.wc != nil {
			ms.wc.Close()
		}
	}
	return nil
}

// Ring exposes the routing ring (epoch, aliveness, placement).
func (c *Client) Ring() *Ring { return c.ring }

// Tracer exposes the client's span rings for fleet-wide stitching.
func (c *Client) Tracer() *obs.Tracer { return c.tracer }

// Journal exposes the ops event journal (ejects, re-admits, epoch
// bumps, adopts, peer restores, drains).
func (c *Client) Journal() *obs.Journal { return c.journal }

// RecordDrain journals a graceful drain of a member — called by the
// fleet front during shutdown so the journal closes the membership
// story it opened.
func (c *Client) RecordDrain(member string) {
	c.journal.Record(obs.Event{Type: obs.EventDrain, Member: member})
}

// rootSpan opens a hop-0 fleet span for one routed call. An inbound
// trace on ctx (a nested fleet call) is continued; otherwise a fresh
// trace is minted here — the fleet client is the usual trace root.
func (c *Client) rootSpan(ctx context.Context, family, graph string) *obs.Span {
	sp := obs.NewSpan(c.spanSeq.Add(1), "fleet")
	sp.Family, sp.Graph = family, graph
	if tc, ok := obs.TraceFromContext(ctx); ok {
		sp.SetTrace(tc)
	} else {
		sp.SetTrace(obs.NewTrace())
	}
	return sp
}

// childSpan opens an in-process child under parent: same trace, same
// hop.
func (c *Client) childSpan(parent *obs.Span, family, graph string) *obs.Span {
	sp := obs.NewSpan(c.spanSeq.Add(1), "fleet")
	sp.Family, sp.Graph = family, graph
	sp.SetTrace(parent.ChildCtx())
	return sp
}

// finishSpan closes a fleet span into the client's rings.
func (c *Client) finishSpan(sp *obs.Span, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	c.tracer.Finish(sp, time.Since(sp.Start), msg)
}

// Stats snapshots the failure-handling counters.
func (c *Client) Stats() Stats {
	return Stats{
		Failovers:    c.failovers.Load(),
		Ejects:       c.ejects.Load(),
		Recoveries:   c.recoveries.Load(),
		Adoptions:    c.adoptions.Load(),
		StandbySyncs: c.standbySyncs.Load(),
	}
}

// MemberClient returns the per-replica flowd client (telemetry scrapes,
// tests). Unknown names return nil.
func (c *Client) MemberClient(name string) *flowd.Client {
	if ms := c.members[name]; ms != nil {
		return ms.cl
	}
	return nil
}

// Owner returns the replica currently owning the graph.
func (c *Client) Owner(graph string) (string, bool) { return c.ring.Owner(graph) }

// isConflict reports a 409 — the graph is already registered there,
// which every idempotent path here treats as success.
func isConflict(err error) bool {
	var ae *flowd.APIError
	return errors.As(err, &ae) && ae.Status == http.StatusConflict
}

// Register places the graph on its owning replica (warm, so the
// substrates are built before the call returns) and caches the spec for
// adoption and standby sync. A duplicate registration is success.
func (c *Client) Register(ctx context.Context, id string, spec store.GraphSpec) error {
	_, err := c.withOwner(ctx, id, "register", func(ctx context.Context, ms *memberState) (any, error) {
		_, err := ms.cl.RegisterWarm(ctx, id, spec)
		if isConflict(err) {
			err = nil
		}
		return nil, err
	})
	if err != nil {
		return err
	}
	c.specMu.Lock()
	c.specs[id] = spec
	c.specMu.Unlock()
	return nil
}

// Warm eagerly builds the graph's substrates on its owning replica.
func (c *Client) Warm(ctx context.Context, graph string) error {
	_, err := c.withOwner(ctx, graph, "warm", func(ctx context.Context, ms *memberState) (any, error) {
		_, err := ms.cl.Warm(ctx, graph)
		return nil, err
	})
	return err
}

// Query routes one query to the graph's owner, failing over along the
// ring when the owner is down.
func (c *Client) Query(ctx context.Context, req flowd.QueryRequest) (*flowd.QueryResponse, error) {
	v, err := c.withOwner(ctx, req.Graph, req.Op, func(ctx context.Context, ms *memberState) (any, error) {
		return ms.cl.Query(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	return v.(*flowd.QueryResponse), nil
}

// QueryBatch routes one batch to the graph's owner.
func (c *Client) QueryBatch(ctx context.Context, req flowd.BatchRequest) (*flowd.BatchResponse, error) {
	v, err := c.withOwner(ctx, req.Graph, "batch", func(ctx context.Context, ms *memberState) (any, error) {
		return ms.cl.QueryBatch(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	return v.(*flowd.BatchResponse), nil
}

// withOwner is the routing loop every graph-keyed call runs through:
// resolve the owner, run the call, and on failure either eject +
// backoff + retry (transport failure), adopt + retry (owner-side
// unknown graph with a cached spec), or surface the error. The whole
// loop runs under a hop-0 root span; each routing decision and attempt
// is a child span, and each attempt's call runs with the attempt
// span's propagation on ctx so the replica's server span lands one hop
// deeper in the same trace.
func (c *Client) withOwner(ctx context.Context, graph, family string, call func(context.Context, *memberState) (any, error)) (v any, err error) {
	root := c.rootSpan(ctx, family, graph)
	defer func() { c.finishSpan(root, err) }()
	adopted := false
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		owner, ok := c.ring.Owner(graph)
		if !ok {
			err = ErrNoReplicas
			return nil, err
		}
		root.Annotate("route", owner)
		ms := c.members[owner]

		attFam := "attempt"
		if attempt > 0 {
			attFam = "failover"
		}
		att := c.childSpan(root, attFam, graph)
		att.Annotate("member", owner)
		att.Annotate("attempt", strconv.Itoa(attempt))
		cctx := obs.ContextWithTrace(ctx, att.Propagate())
		var cerr error
		v, cerr = call(cctx, ms)
		c.finishSpan(att, cerr)
		if cerr == nil {
			if attempt > 0 {
				c.failovers.Add(1)
			}
			return v, nil
		}
		if ctx.Err() != nil {
			return nil, cerr
		}
		switch {
		case flowd.IsUnavailable(cerr):
			c.eject(owner, root)
			if berr := c.backoff(ctx, attempt, root); berr != nil {
				err = cerr
				return nil, err
			}
		case flowd.IsNotFound(cerr) && !adopted && c.hasSpec(graph):
			// The routed replica does not hold the graph (fresh successor
			// after a failover): register the cached spec and run the peer
			// restore ladder, then retry the call once on the same replica.
			adopted = true
			if aerr := c.adopt(ctx, owner, graph, root); aerr != nil {
				if flowd.IsUnavailable(aerr) {
					c.eject(owner, root)
					continue
				}
				err = fmt.Errorf("fleet: adopt %q on %s: %w", graph, owner, aerr)
				return nil, err
			}
		default:
			err = cerr
			return nil, err
		}
	}
	err = fmt.Errorf("fleet: %q: retries exhausted: %w", graph, ErrNoReplicas)
	return nil, err
}

func (c *Client) hasSpec(graph string) bool {
	c.specMu.Lock()
	defer c.specMu.Unlock()
	_, ok := c.specs[graph]
	return ok
}

// adopt makes a replica that has never seen the graph serviceable:
// register the cached spec (409 = already there), then run its restore
// ladder with every other alive replica as a peer — so the bundle the
// old owner built ships over instead of being rebuilt. The adopt span
// propagates onto the register/restore calls, so the adopting
// replica's restore span and the source peer's snapfetch span land in
// the same trace at increasing hops.
func (c *Client) adopt(ctx context.Context, member, graph string, root *obs.Span) (err error) {
	c.specMu.Lock()
	spec, ok := c.specs[graph]
	c.specMu.Unlock()
	if !ok {
		return store.ErrUnknownGraph
	}
	ad := c.childSpan(root, "adopt", graph)
	ad.Annotate("member", member)
	defer func() { c.finishSpan(ad, err) }()
	actx := obs.ContextWithTrace(ctx, ad.Propagate())
	ms := c.members[member]
	if _, err = ms.cl.Register(actx, graph, spec); err != nil && !isConflict(err) {
		return err
	}
	resp, rerr := ms.cl.Restore(actx, graph, c.peerBases(member))
	if rerr != nil {
		err = rerr
		return err
	}
	err = nil
	c.adoptions.Add(1)
	c.journal.Record(obs.Event{
		Type: obs.EventAdopt, Member: member, Graph: graph,
		TraceID: root.TraceID(), Detail: "source=" + resp.Source,
	})
	ad.Annotate("source", resp.Source)
	if resp.Source == "peer" {
		c.journal.Record(obs.Event{
			Type: obs.EventPeerRestore, Member: member, Graph: graph,
			TraceID: root.TraceID(), Detail: "peer=" + resp.Peer,
		})
	}
	return nil
}

// peerBases lists every alive member's HTTP base except self — the peer
// list handed to the restore ladder.
func (c *Client) peerBases(self string) []string {
	var out []string
	for _, name := range c.order {
		if name == self || !c.ring.Alive(name) {
			continue
		}
		out = append(out, c.members[name].m.HTTP)
	}
	return out
}

// eject marks a member dead on the ring and starts its recovery probe.
// root is the span of the routed call that hit the failure; the
// journal's eject and epoch-bump events carry its trace id so the
// membership change is attributable to the request that caused it.
func (c *Client) eject(member string, root *obs.Span) {
	if !c.ring.Alive(member) {
		return
	}
	ej := c.childSpan(root, "eject", "")
	ej.Annotate("member", member)
	c.ring.SetAlive(member, false)
	epoch := c.ring.Epoch()
	ej.Annotate("epoch", strconv.FormatUint(epoch, 10))
	c.ejects.Add(1)
	c.journal.Record(obs.Event{Type: obs.EventEject, Member: member, TraceID: root.TraceID()})
	c.journal.Record(obs.Event{
		Type: obs.EventEpochBump, Member: member, TraceID: root.TraceID(),
		Detail: "epoch=" + strconv.FormatUint(epoch, 10),
	})
	c.finishSpan(ej, nil)
	c.startProbe(member, root)
}

// startProbe launches the single background prober for an ejected
// member: poll /healthz until it answers, then mark the member alive.
// The probe span and re-admit events carry the trace of the request
// whose failure started the watch.
func (c *Client) startProbe(member string, root *obs.Span) {
	if c.opt.ProbeInterval < 0 || c.closed.Load() {
		return
	}
	ms := c.members[member]
	if !ms.probing.CompareAndSwap(false, true) {
		return
	}
	traceID := root.TraceID()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer ms.probing.Store(false)
		pr := c.childSpan(root, "probe", "")
		pr.Annotate("member", member)
		polls := 0
		t := time.NewTicker(c.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				pr.Annotate("polls", strconv.Itoa(polls))
				c.finishSpan(pr, context.Canceled)
				return
			case <-t.C:
				polls++
				ctx, cancel := context.WithTimeout(context.Background(), c.opt.ProbeInterval)
				_, err := ms.cl.Health(ctx)
				cancel()
				if err == nil {
					c.ring.SetAlive(member, true)
					epoch := c.ring.Epoch()
					c.recoveries.Add(1)
					c.journal.Record(obs.Event{Type: obs.EventReadmit, Member: member, TraceID: traceID})
					c.journal.Record(obs.Event{
						Type: obs.EventEpochBump, Member: member, TraceID: traceID,
						Detail: "epoch=" + strconv.FormatUint(epoch, 10),
					})
					pr.Annotate("polls", strconv.Itoa(polls))
					c.finishSpan(pr, nil)
					return
				}
			}
		}
	}()
}

// backoff sleeps the jittered exponential delay for the given attempt,
// honoring ctx. The sleep is a child span so a stitched slow trace
// shows where the waiting went.
func (c *Client) backoff(ctx context.Context, attempt int, root *obs.Span) error {
	d := c.opt.BackoffBase << uint(attempt)
	if d > c.opt.BackoffCap || d <= 0 {
		d = c.opt.BackoffCap
	}
	// Full jitter over [d/2, d): enough spread to de-synchronize
	// concurrent retriers without losing the exponential shape.
	c.rngMu.Lock()
	j := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	bo := c.childSpan(root, "backoff", "")
	bo.Annotate("attempt", strconv.Itoa(attempt))
	select {
	case <-ctx.Done():
		c.finishSpan(bo, ctx.Err())
		return ctx.Err()
	case <-time.After(j):
		c.finishSpan(bo, nil)
		return nil
	}
}

// SyncStandby replicates every registered graph onto its ring standbys:
// for each graph, the Replication successors beyond the owner get the
// spec registered (idempotent) and the bundle restored via the peer
// ladder with the owner first in the fetch order. Run it after
// registration (and periodically) so a failover finds the successor
// already holding a restored bundle — zero rebuilds on the kill path.
// Returns how many graph/standby pairs synced.
func (c *Client) SyncStandby(ctx context.Context) (int, error) {
	c.specMu.Lock()
	ids := make([]string, 0, len(c.specs))
	for id := range c.specs {
		ids = append(ids, id)
	}
	specs := make(map[string]store.GraphSpec, len(ids))
	for id := range c.specs {
		specs[id] = c.specs[id]
	}
	c.specMu.Unlock()

	root := c.rootSpan(ctx, "standby", "")
	epoch := c.ring.Epoch()
	synced := 0
	var firstErr error
	for _, id := range ids {
		chain := c.ring.Successors(id, 1+c.opt.Replication)
		if len(chain) < 2 {
			continue
		}
		owner := chain[0]
		for _, standby := range chain[1:] {
			key := id + "|" + standby
			c.specMu.Lock()
			done := c.syncedAt[key] == epoch
			c.specMu.Unlock()
			if done {
				continue
			}
			sy := c.childSpan(root, "sync", id)
			sy.Annotate("standby", standby)
			sy.Annotate("owner", owner)
			sctx := obs.ContextWithTrace(ctx, sy.Propagate())
			ms := c.members[standby]
			if _, err := ms.cl.Register(sctx, id, specs[id]); err != nil && !isConflict(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: standby register %q on %s: %w", id, standby, err)
				}
				c.finishSpan(sy, err)
				continue
			}
			// Owner first in the peer order: the freshest bundle lives there.
			peers := []string{c.members[owner].m.HTTP}
			for _, p := range c.peerBases(standby) {
				if p != peers[0] {
					peers = append(peers, p)
				}
			}
			resp, err := ms.cl.Restore(sctx, id, peers)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: standby restore %q on %s: %w", id, standby, err)
				}
				c.finishSpan(sy, err)
				continue
			}
			if resp.Source == "peer" {
				c.journal.Record(obs.Event{
					Type: obs.EventPeerRestore, Member: standby, Graph: id,
					TraceID: root.TraceID(), Detail: "peer=" + resp.Peer,
				})
			}
			sy.Annotate("source", resp.Source)
			c.finishSpan(sy, nil)
			c.specMu.Lock()
			c.syncedAt[key] = epoch
			c.specMu.Unlock()
			synced++
			c.standbySyncs.Add(1)
		}
	}
	root.Annotate("synced", strconv.Itoa(synced))
	c.finishSpan(root, firstErr)
	return synced, firstErr
}
