// Package fleet shards a set of flowd replicas behind one smart client:
// a consistent-hash ring decides which replica owns each graph, the
// client routes queries there and fails over along the ring when a
// replica dies, and snapshot shipping (flowd's peer plane) moves built
// bundles to the successor so failover answers from a restored bundle
// instead of a cold rebuild.
//
// The ring is the only policy holder. Daemons stay shard-oblivious —
// they serve whatever graphs they are handed — which keeps the fleet a
// pure client-side construction over the existing flowd surface.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Member describes one flowd replica: how the fleet client reaches it
// over HTTP and (optionally) over the binary wire transport.
type Member struct {
	Name     string // stable identity; hashed onto the ring
	HTTP     string // base URL, e.g. "http://127.0.0.1:7001"
	WireNet  string // "tcp" or "unix"; empty disables the wire path
	WireAddr string
}

// ringPoint is one virtual node: a hash position claimed by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes and explicit
// epochs. Placement is deterministic in (members, vnodes): every client
// built from the same static member list computes the same owner for
// every graph, so a fleet needs no coordination service to agree on
// routing. The epoch increments on any aliveness change, giving
// callers a cheap "did routing move since I cached this?" check.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	members []string // sorted, for deterministic iteration
	points  []ringPoint
	alive   map[string]bool
	epoch   uint64
}

// DefaultVnodes spreads each member over enough virtual points that the
// largest ownership share stays within a few percent of fair for small
// fleets.
const DefaultVnodes = 64

// NewRing builds a ring over the given member names. vnodes <= 0 uses
// DefaultVnodes. Duplicate names are an error: two points claiming one
// identity would silently double that member's share.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	names := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("fleet: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("fleet: duplicate member %q", m)
		}
		seen[m] = true
		names = append(names, m)
	}
	sort.Strings(names)
	r := &Ring{
		vnodes:  vnodes,
		members: names,
		alive:   make(map[string]bool, len(names)),
		epoch:   1,
	}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for _, m := range names {
		r.alive[m] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(fmt.Sprintf("%s|%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // total order even on hash collision
	})
	return r, nil
}

// ringHash is FNV-1a 64 (the store's spill-path hash) pushed through a
// 64-bit avalanche finalizer. Raw FNV-1a disperses poorly on the short,
// near-identical "member|vnode" strings the ring feeds it — without the
// finalizer one member can own 2/3 of the keyspace; with it, vnode
// points spread uniformly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the alive member owning key: the first alive member at
// or clockwise of the key's hash. ok is false when no member is alive.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	chain := r.successorsLocked(key, 1)
	if len(chain) == 0 {
		return "", false
	}
	return chain[0], true
}

// Successors returns up to n distinct alive members in ring order
// starting at key's owner. Successors(key, 1)[0] == Owner(key); the
// remainder is the failover / standby chain.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.successorsLocked(key, n)
}

func (r *Ring) successorsLocked(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] || !r.alive[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}

// SetAlive marks a member alive or dead. A state change bumps the
// epoch — routing moved. Unknown members are ignored.
func (r *Ring) SetAlive(member string, alive bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.alive[member]
	if !ok || cur == alive {
		return
	}
	r.alive[member] = alive
	r.epoch++
}

// Alive reports whether the member is currently marked alive.
func (r *Ring) Alive(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[member]
}

// AliveCount returns how many members are currently marked alive.
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, a := range r.alive {
		if a {
			n++
		}
	}
	return n
}

// Epoch returns the current ring epoch. It starts at 1 and increments
// on every aliveness change.
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Members returns the sorted member names (alive or not).
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}
