package pa

import (
	"testing"
	"testing/quick"

	"planarflow/internal/planar"
)

func TestQuickAggregateMatchesDirect(t *testing.T) {
	prop := func(seed int64, numParts, size uint8) bool {
		rng := planar.NewRand(seed)
		g := planar.StackedTriangulation(4+int(size)%50, rng)
		net := FromPlanar(g)
		tree := BuildTree(net, rng.IntN(g.N()))
		num := 1 + int(numParts)%6
		parts := Parts{Of: make([]int, g.N()), Num: num}
		input := make([]int64, g.N())
		wantSum := make([]int64, num)
		for v := 0; v < g.N(); v++ {
			parts.Of[v] = rng.IntN(num+1) - 1
			input[v] = rng.Int64N(500)
			if p := parts.Of[v]; p >= 0 {
				wantSum[p] += input[v]
			}
		}
		res := Aggregate(net, tree, parts, input, Sum)
		for p := 0; p < num; p++ {
			if res.Value[p] != wantSum[p] {
				return false
			}
		}
		// Schedule sanity: rounds within a factor of dilation+congestion.
		return res.Rounds <= 4*(res.Dilation+res.Congestion)+8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSteinerDilationBounded(t *testing.T) {
	// Dilation never exceeds twice the BFS tree height.
	prop := func(seed int64, size uint8) bool {
		rng := planar.NewRand(seed)
		g := planar.StackedTriangulation(4+int(size)%40, rng)
		net := FromPlanar(g)
		tree := BuildTree(net, 0)
		parts := Parts{Of: make([]int, g.N()), Num: 3}
		input := make([]int64, g.N())
		for v := range parts.Of {
			parts.Of[v] = v % 3
			input[v] = 1
		}
		res := Aggregate(net, tree, parts, input, Sum)
		return res.Dilation <= 2*tree.Height+2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeCoversGraph(t *testing.T) {
	g := planar.NestedTriangles(12)
	net := FromPlanar(g)
	tree := BuildTree(net, 5)
	for v := 0; v < g.N(); v++ {
		if tree.Depth[v] < 0 {
			t.Fatalf("vertex %d unreached", v)
		}
		if v != tree.Root && tree.Parent[v] == -1 {
			t.Fatalf("vertex %d lacks parent", v)
		}
	}
	if tree.Height < g.Diameter()/2 {
		t.Fatalf("height %d below D/2 (D=%d)", tree.Height, g.Diameter())
	}
}
