package pa

import (
	"testing"

	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

func TestAggregateSingleGlobalPart(t *testing.T) {
	g := planar.Grid(5, 5)
	net := FromPlanar(g)
	tree := BuildTree(net, 0)
	parts := Parts{Of: make([]int, g.N()), Num: 1}
	input := make([]int64, g.N())
	var want int64
	for v := range input {
		input[v] = int64(v)
		want += int64(v)
	}
	res := Aggregate(net, tree, parts, input, Sum)
	if res.Value[0] != want {
		t.Fatalf("sum=%d want %d", res.Value[0], want)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds measured")
	}
}

func TestAggregateRowParts(t *testing.T) {
	rows, cols := 6, 7
	g := planar.Grid(rows, cols)
	net := FromPlanar(g)
	tree := BuildTree(net, 0)
	parts := Parts{Of: make([]int, g.N()), Num: rows}
	input := make([]int64, g.N())
	want := make([]int64, rows)
	for v := 0; v < g.N(); v++ {
		r := v / cols
		parts.Of[v] = r
		input[v] = int64(v % 10)
		want[r] += input[v]
	}
	res := Aggregate(net, tree, parts, input, Sum)
	for r := 0; r < rows; r++ {
		if res.Value[r] != want[r] {
			t.Fatalf("row %d: %d want %d", r, res.Value[r], want[r])
		}
	}
}

func TestAggregateMinWithRelays(t *testing.T) {
	g := planar.Grid(4, 8)
	net := FromPlanar(g)
	tree := BuildTree(net, 5)
	// Two parts at opposite corners; everything else relays.
	parts := Parts{Of: make([]int, g.N()), Num: 2}
	for v := range parts.Of {
		parts.Of[v] = -1
	}
	input := make([]int64, g.N())
	parts.Of[0], input[0] = 0, 42
	parts.Of[1], input[1] = 0, 17
	last := g.N() - 1
	parts.Of[last], input[last] = 1, 9
	parts.Of[last-1], input[last-1] = 1, 23
	res := Aggregate(net, tree, parts, input, Min)
	if res.Value[0] != 17 || res.Value[1] != 9 {
		t.Fatalf("values=%v want [17 9]", res.Value)
	}
}

func TestAggregateEmptyPart(t *testing.T) {
	g := planar.Grid(2, 3)
	net := FromPlanar(g)
	tree := BuildTree(net, 0)
	parts := Parts{Of: []int{0, 0, -1, -1, -1, -1}, Num: 2}
	input := []int64{3, 4, 0, 0, 0, 0}
	res := Aggregate(net, tree, parts, input, Sum)
	if res.Value[0] != 7 {
		t.Fatalf("part0=%d want 7", res.Value[0])
	}
	if res.Value[1] != 0 {
		t.Fatalf("empty part=%d want 0", res.Value[1])
	}
}

func TestAggregateRandomAgainstDirect(t *testing.T) {
	rng := planar.NewRand(31)
	for trial := 0; trial < 25; trial++ {
		g := planar.StackedTriangulation(5+rng.IntN(60), rng)
		net := FromPlanar(g)
		tree := BuildTree(net, rng.IntN(g.N()))
		num := 1 + rng.IntN(5)
		parts := Parts{Of: make([]int, g.N()), Num: num}
		input := make([]int64, g.N())
		want := make([]int64, num)
		seen := make([]bool, num)
		for v := 0; v < g.N(); v++ {
			parts.Of[v] = rng.IntN(num+1) - 1
			input[v] = rng.Int64N(1000)
			if p := parts.Of[v]; p >= 0 {
				if !seen[p] {
					want[p], seen[p] = input[v], true
				} else if input[v] < want[p] {
					want[p] = input[v]
				}
			}
		}
		res := Aggregate(net, tree, parts, input, Min)
		for p := 0; p < num; p++ {
			if seen[p] && res.Value[p] != want[p] {
				t.Fatalf("trial %d part %d: %d want %d", trial, p, res.Value[p], want[p])
			}
		}
	}
}

func TestScheduleCostBound(t *testing.T) {
	// Rounds must be within a small factor of dilation + congestion.
	g := planar.Grid(8, 8)
	net := FromPlanar(g)
	tree := BuildTree(net, 0)
	parts := Parts{Of: make([]int, g.N()), Num: 8}
	input := make([]int64, g.N())
	for v := range parts.Of {
		parts.Of[v] = v % 8
		input[v] = 1
	}
	res := Aggregate(net, tree, parts, input, Sum)
	if res.Rounds > 4*(res.Dilation+res.Congestion)+8 {
		t.Fatalf("rounds=%d dilation=%d congestion=%d", res.Rounds, res.Dilation, res.Congestion)
	}
}

func TestDualPAFacesAsParts(t *testing.T) {
	// Cor 4.6 on G*: every face its own part; aggregate over each face's
	// boundary must see exactly its own input.
	g := planar.Grid(4, 5)
	h := hatg.New(g)
	led := ledger.New()
	d := NewDualPA(h, led)
	nf := g.Faces().NumFaces()
	partOf := make([]int, nf)
	in := make([]int64, nf)
	for f := 0; f < nf; f++ {
		partOf[f] = f
		in[f] = int64(100 + f)
	}
	vals := d.AggregateFaces(partOf, nf, in, int64(1<<60), Min)
	for f := 0; f < nf; f++ {
		if vals[f] != int64(100+f) {
			t.Fatalf("face %d: %d want %d", f, vals[f], 100+f)
		}
	}
	if led.Total() == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestDualPAGroupedFaces(t *testing.T) {
	// Group faces into two parts (interior quads vs outer face) and sum.
	g := planar.Grid(3, 6)
	h := hatg.New(g)
	d := NewDualPA(h, ledger.New())
	fd := g.Faces()
	outer := fd.LargestFace()
	nf := fd.NumFaces()
	partOf := make([]int, nf)
	in := make([]int64, nf)
	var wantIn int64
	for f := 0; f < nf; f++ {
		in[f] = int64(f + 1)
		if f == outer {
			partOf[f] = 1
		} else {
			partOf[f] = 0
			wantIn += in[f]
		}
	}
	vals := d.AggregateFaces(partOf, 2, in, 0, Sum)
	if vals[0] != wantIn {
		t.Fatalf("interior sum=%d want %d", vals[0], wantIn)
	}
	if vals[1] != int64(outer+1) {
		t.Fatalf("outer=%d want %d", vals[1], outer+1)
	}
}

func TestPARoundsScaleWithDiameterOnDual(t *testing.T) {
	// E7 shape check (coarse): faces-as-parts PA on a long thin grid must
	// not cost asymptotically more than O(D * polylog); compare against a
	// square grid of the same size.
	thin := planar.Grid(2, 50)
	square := planar.Grid(10, 10)
	r := func(g *planar.Graph) int64 {
		led := ledger.New()
		h := hatg.New(g)
		d := NewDualPA(h, led)
		nf := g.Faces().NumFaces()
		partOf := make([]int, nf)
		in := make([]int64, nf)
		for f := range partOf {
			partOf[f] = f
			in[f] = 1
		}
		d.AggregateFaces(partOf, nf, in, 0, Sum)
		return led.Total()
	}
	rThin, rSquare := r(thin), r(square)
	if rThin <= 0 || rSquare <= 0 {
		t.Fatal("no rounds")
	}
	// Thin grid has D=50 vs 18; expect strictly more rounds but same order.
	if rThin <= rSquare {
		t.Fatalf("expected thin grid to cost more: %d vs %d", rThin, rSquare)
	}
}
