package pa

import (
	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
)

// DualPA solves the part-wise aggregation problem on the dual graph G*
// (Lemma 4.9): given a partition of the faces of G into parts and one input
// per face, every part's aggregate is computed by inducing the partition on
// the face-disjoint graph Ĝ (each dual node is simulated by the copies of
// its face cycle) and running shortcut-based PA there. Star centers only
// relay. Rounds on Ĝ are charged 2x on G (Property 3 of Ĝ).
type DualPA struct {
	H    *hatg.Graph
	net  Network
	tree *Tree
	Led  *ledger.Ledger
}

// NewDualPA prepares the Ĝ network and its global shortcut skeleton,
// charging the BFS construction.
func NewDualPA(h *hatg.Graph, led *ledger.Ledger) *DualPA {
	d := &DualPA{H: h, net: FromHatG(h), Led: led}
	d.tree = BuildTree(d.net, 0)
	led.Measure("hatg/bfs-tree", 2*(d.tree.Height+1))
	return d
}

// Tree exposes the global BFS tree on Ĝ.
func (d *DualPA) Tree() *Tree { return d.tree }

// AggregateFaces computes, for each part of the face partition, the
// op-aggregate of the per-face inputs. identity is op's neutral element
// (relay copies contribute it). Returns per-part values.
func (d *DualPA) AggregateFaces(partOfFace []int, numParts int, faceInput []int64, identity int64, op Op) []int64 {
	h := d.H
	n := h.N()
	parts := Parts{Of: make([]int, n), Num: numParts}
	input := make([]int64, n)
	leader := faceLeaders(h)
	for x := 0; x < n; x++ {
		parts.Of[x] = -1
		input[x] = identity
		if h.IsStarCenter(x) {
			continue
		}
		f := h.FaceOfCopy(x)
		if p := partOfFace[f]; p >= 0 {
			parts.Of[x] = p
			if leader[f] == x {
				input[x] = faceInput[f]
			}
		}
	}
	res := Aggregate(d.net, d.tree, parts, input, op)
	d.Led.Measure("dual-pa/aggregate", 2*res.Rounds)
	return res.Value
}

// AggregateCopies computes per-part aggregates where the caller supplies an
// input per Ĝ vertex directly (used for aggregations over dual edges: each
// chord endpoint knows its edge's contribution). Copies belong to the part
// of their face per partOfFace; star centers relay.
func (d *DualPA) AggregateCopies(partOfFace []int, numParts int, copyInput []int64, op Op) []int64 {
	h := d.H
	n := h.N()
	parts := Parts{Of: make([]int, n), Num: numParts}
	for x := 0; x < n; x++ {
		parts.Of[x] = -1
		if h.IsStarCenter(x) {
			continue
		}
		if p := partOfFace[h.FaceOfCopy(x)]; p >= 0 {
			parts.Of[x] = p
		}
	}
	res := Aggregate(d.net, d.tree, parts, copyInput, op)
	d.Led.Measure("dual-pa/aggregate", 2*res.Rounds)
	return res.Value
}

// MeasureUnit runs one canonical faces-as-parts PA (the most congested
// pattern the paper's compilations use) against a throwaway ledger and
// returns its measured CONGEST cost. Model simulations use this as the price
// of one PA instance on this Ĝ.
func (d *DualPA) MeasureUnit() int64 {
	probe := ledger.New()
	saved := d.Led
	d.Led = probe
	nf := d.H.Primal().Faces().NumFaces()
	partOf := make([]int, nf)
	in := make([]int64, nf)
	for f := range partOf {
		partOf[f] = f
		in[f] = 1
	}
	d.AggregateFaces(partOf, nf, in, 0, Sum)
	d.Led = saved
	unit := probe.Total()
	if unit < 1 {
		unit = 1
	}
	return unit
}

// faceLeaders elects the minimum-ID copy of each face (Property 4 of Ĝ; the
// distributed election is an Õ(D)-round PA which callers charge when they
// construct the DualPA).
func faceLeaders(h *hatg.Graph) []int {
	nf := h.Primal().Faces().NumFaces()
	leader := make([]int, nf)
	for f := range leader {
		leader[f] = -1
	}
	for x := h.Primal().N(); x < h.N(); x++ {
		f := h.FaceOfCopy(x)
		if leader[f] == -1 || x < leader[f] {
			leader[f] = x
		}
	}
	return leader
}
