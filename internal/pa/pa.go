// Package pa implements low-congestion shortcuts and the part-wise
// aggregation (PA) primitive (§4.1), the workhorse the minor-aggregation
// model compiles down to.
//
// Given a partition of (a subset of) the vertices into parts, each part's
// aggregate is routed over the part's Steiner tree inside a global BFS tree
// — the tree-restricted shortcut construction for planar graphs [14]. The
// schedule is simulated token-by-token under the CONGEST constraint of one
// message per directed edge per round, so the reported round count is a
// measurement of the realized congestion + dilation, not an assumed bound.
package pa

// Network is the minimal view of a communication graph (satisfied by both
// the primal graph and the face-disjoint graph Ĝ).
type Network interface {
	N() int
	NeighborsOf(v int) []int
}

// Op is a commutative, associative aggregation operator (Def. 4.3).
type Op func(a, b int64) int64

// Min, Max, Sum are the standard operators.
var (
	Min Op = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	Max Op = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	Sum Op = func(a, b int64) int64 { return a + b }
)

// Tree is a global BFS tree used as the shortcut skeleton.
type Tree struct {
	Root   int
	Parent []int // parent vertex (-1 at root)
	Depth  []int
	Height int
}

// BuildTree constructs a BFS tree from root; distributed cost is
// Height + O(1) rounds (callers charge it).
func BuildTree(net Network, root int) *Tree {
	n := net.N()
	t := &Tree{Root: root, Parent: make([]int, n), Depth: make([]int, n)}
	for v := range t.Parent {
		t.Parent[v] = -1
		t.Depth[v] = -1
	}
	t.Depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if t.Depth[v] > t.Height {
			t.Height = t.Depth[v]
		}
		for _, u := range net.NeighborsOf(v) {
			if t.Depth[u] == -1 {
				t.Depth[u] = t.Depth[v] + 1
				t.Parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return t
}

// Parts assigns vertices to parts: Of[v] is the part of v or -1 for vertices
// that only relay messages.
type Parts struct {
	Of  []int
	Num int
}

// Result reports a PA run: per-part aggregates plus the realized cost of the
// token schedule.
type Result struct {
	Value      []int64 // aggregate per part
	Rounds     int     // measured schedule length (up + down phases)
	Congestion int     // max tokens over a single tree edge in one phase
	Dilation   int     // max Steiner-tree height over parts
}

// steiner describes one part's Steiner tree inside the global tree.
type steiner struct {
	root     int
	nodes    []int
	children map[int][]int // within the Steiner tree
	parent   map[int]int
}

func buildSteiner(t *Tree, members []int) steiner {
	st := steiner{parent: make(map[int]int), children: make(map[int][]int)}
	if len(members) == 0 {
		st.root = -1
		return st
	}
	inTree := make(map[int]bool)
	isMember := make(map[int]bool, len(members))
	for _, v := range members {
		isMember[v] = true
	}
	// Union of member-to-root paths.
	for _, v := range members {
		for x := v; x != -1 && !inTree[x]; x = t.Parent[x] {
			inTree[x] = true
		}
	}
	for x := range inTree {
		p := t.Parent[x]
		if p != -1 && inTree[p] {
			st.parent[x] = p
			st.children[p] = append(st.children[p], x)
		}
	}
	// Trim the chain above the LCA: descend from the global root while the
	// current node is a non-member with exactly one Steiner child.
	root := t.Root
	for !isMember[root] && len(st.children[root]) == 1 {
		next := st.children[root][0]
		delete(st.children, root)
		delete(st.parent, next)
		root = next
	}
	st.root = root
	// Collect nodes reachable from the trimmed root.
	stack := []int{root}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.nodes = append(st.nodes, x)
		stack = append(stack, st.children[x]...)
	}
	return st
}

// Aggregate solves the PA problem: for every part, the op-aggregate of the
// inputs of its members, computed by convergecast + broadcast over per-part
// Steiner trees with a round-by-round token schedule.
func Aggregate(net Network, t *Tree, parts Parts, input []int64, op Op) *Result {
	res := &Result{Value: make([]int64, parts.Num)}
	members := make([][]int, parts.Num)
	for v, p := range parts.Of {
		if p >= 0 {
			members[p] = append(members[p], v)
		}
	}
	sts := make([]steiner, parts.Num)
	for i := range sts {
		sts[i] = buildSteiner(t, members[i])
		h := steinerHeight(sts[i])
		if h > res.Dilation {
			res.Dilation = h
		}
	}

	// ---- Up phase: convergecast one token per Steiner edge. ----
	type key struct{ part, v int }
	acc := make(map[key]int64)
	pendingKids := make(map[key]int)
	memberSet := make(map[key]bool)
	for i, st := range sts {
		if st.root == -1 {
			continue
		}
		for _, v := range st.nodes {
			pendingKids[key{i, v}] = len(st.children[v])
		}
		for _, v := range members[i] {
			memberSet[key{i, v}] = true
			acc[key{i, v}] = input[v]
		}
	}
	combine := func(k key, val int64) {
		if cur, ok := acc[k]; ok {
			acc[k] = op(cur, val)
		} else {
			acc[k] = val
		}
	}

	// upQueue[v] holds tokens waiting to traverse the tree edge v->parent(v);
	// one token crosses per round (CONGEST capacity).
	upQueue := make([][]key, net.N())
	edgeLoad := make([]int, net.N()) // tokens ever enqueued on v->parent(v)
	ready := func(i, v int) {
		st := &sts[i]
		if v == st.root {
			res.Value[i] = acc[key{i, v}]
			return
		}
		upQueue[v] = append(upQueue[v], key{i, v})
		edgeLoad[v]++
	}
	for i, st := range sts {
		if st.root == -1 {
			continue
		}
		for _, v := range st.nodes {
			if pendingKids[key{i, v}] == 0 {
				ready(i, v)
			}
		}
	}
	upRounds := 0
	for {
		moved := false
		// Deliver at most one token per directed edge this round.
		type delivery struct {
			k      key
			parent int
		}
		var ds []delivery
		for v := range upQueue {
			if len(upQueue[v]) == 0 {
				continue
			}
			k := upQueue[v][0]
			upQueue[v] = upQueue[v][1:]
			ds = append(ds, delivery{k: k, parent: sts[k.part].parent[k.v]})
			moved = true
		}
		if !moved {
			break
		}
		upRounds++
		for _, d := range ds {
			pk := key{d.k.part, d.parent}
			combine(pk, acc[d.k])
			pendingKids[pk]--
			if pendingKids[pk] == 0 {
				ready(d.k.part, d.parent)
			}
		}
	}
	for v := range edgeLoad {
		if edgeLoad[v] > res.Congestion {
			res.Congestion = edgeLoad[v]
		}
	}

	// ---- Down phase: broadcast the result over the same Steiner trees.
	// Token per Steiner edge again; queue keyed by the child endpoint.
	downQueue := make([][]key, net.N()) // tokens waiting on parent(v)->v
	for i, st := range sts {
		if st.root == -1 {
			continue
		}
		for _, c := range st.children[st.root] {
			downQueue[c] = append(downQueue[c], key{i, c})
		}
	}
	downRounds := 0
	for {
		moved := false
		var arrivals []key
		for v := range downQueue {
			if len(downQueue[v]) == 0 {
				continue
			}
			k := downQueue[v][0]
			downQueue[v] = downQueue[v][1:]
			arrivals = append(arrivals, k)
			moved = true
		}
		if !moved {
			break
		}
		downRounds++
		for _, k := range arrivals {
			for _, c := range sts[k.part].children[k.v] {
				downQueue[c] = append(downQueue[c], key{k.part, c})
			}
		}
	}

	res.Rounds = upRounds + downRounds
	return res
}

func steinerHeight(st steiner) int {
	if st.root == -1 {
		return 0
	}
	h := 0
	var rec func(v, d int)
	rec = func(v, d int) {
		if d > h {
			h = d
		}
		for _, c := range st.children[v] {
			rec(c, d+1)
		}
	}
	rec(st.root, 0)
	return h
}
