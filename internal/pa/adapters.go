package pa

import (
	"planarflow/internal/hatg"
	"planarflow/internal/planar"
)

// adjNet is a Network over a fixed adjacency list.
type adjNet struct {
	adj [][]int
}

var _ Network = (*adjNet)(nil)

func (a *adjNet) N() int                  { return len(a.adj) }
func (a *adjNet) NeighborsOf(v int) []int { return a.adj[v] }

// FromAdjacency wraps an adjacency list as a Network.
func FromAdjacency(adj [][]int) Network { return &adjNet{adj: adj} }

// FromPlanar adapts an embedded planar graph as a communication network.
func FromPlanar(g *planar.Graph) Network {
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, d := range g.Rotation(v) {
			adj[v] = append(adj[v], g.Head(d))
		}
	}
	return &adjNet{adj: adj}
}

// FromHatG adapts the face-disjoint graph Ĝ as a communication network.
func FromHatG(h *hatg.Graph) Network {
	adj := make([][]int, h.N())
	for x := 0; x < h.N(); x++ {
		for _, a := range h.Adj(x) {
			adj[x] = append(adj[x], a.To)
		}
	}
	return &adjNet{adj: adj}
}
