package ledger

import (
	"strings"
	"sync"
	"testing"
)

func TestTotalsAndSplit(t *testing.T) {
	l := New()
	l.Measure("bfs", 10)
	l.Charge("broadcast", 25)
	l.Measure("bfs", 5)
	if l.Total() != 40 {
		t.Fatalf("total=%d want 40", l.Total())
	}
	m, c := l.Split()
	if m != 15 || c != 25 {
		t.Fatalf("split=(%d,%d) want (15,25)", m, c)
	}
}

func TestByPhaseAggregates(t *testing.T) {
	l := New()
	l.Measure("x", 1)
	l.Charge("x", 2)
	l.Charge("y", 3)
	by := l.ByPhase()
	if by["x"] != 3 || by["y"] != 3 {
		t.Fatalf("byPhase=%v", by)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Measure("p", 7)
	b.Charge("q", 9)
	a.Merge(b)
	if a.Total() != 16 {
		t.Fatalf("merged total=%d", a.Total())
	}
	if len(a.Entries()) != 2 {
		t.Fatalf("entries=%d", len(a.Entries()))
	}
}

func TestNegativeClamped(t *testing.T) {
	l := New()
	l.Charge("neg", -5)
	if l.Total() != 0 {
		t.Fatalf("negative rounds not clamped: %d", l.Total())
	}
}

func TestSummaryMentionsPhases(t *testing.T) {
	l := New()
	l.Measure("alpha", 10)
	l.Charge("beta", 90)
	s := l.Summary()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatalf("summary missing phases: %q", s)
	}
	if !strings.Contains(s, "total=100") {
		t.Fatalf("summary missing total: %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Measure("m", 1)
				l.Charge("c", 1)
			}
		}()
	}
	wg.Wait()
	if l.Total() != 1600 {
		t.Fatalf("total=%d want 1600", l.Total())
	}
}

func TestHelpers(t *testing.T) {
	if PipelinedBroadcastRounds(10, 5) != 15 {
		t.Fatal("pipelined broadcast formula")
	}
	if MessagesForBits(100, 32) != 4 {
		t.Fatal("messages for bits")
	}
	if MessagesForBits(96, 32) != 3 {
		t.Fatal("exact multiple")
	}
	if MessagesForBits(10, 0) != 10 {
		t.Fatal("zero budget guard")
	}
	if Measured.String() != "measured" || Charged.String() != "charged" || Kind(0).String() != "unknown" {
		t.Fatal("kind strings")
	}
}
