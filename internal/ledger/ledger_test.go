package ledger

import (
	"strings"
	"sync"
	"testing"
)

func TestTotalsAndSplit(t *testing.T) {
	l := New()
	l.Measure("bfs", 10)
	l.Charge("broadcast", 25)
	l.Measure("bfs", 5)
	if l.Total() != 40 {
		t.Fatalf("total=%d want 40", l.Total())
	}
	m, c := l.Split()
	if m != 15 || c != 25 {
		t.Fatalf("split=(%d,%d) want (15,25)", m, c)
	}
}

func TestByPhaseAggregates(t *testing.T) {
	l := New()
	l.Measure("x", 1)
	l.Charge("x", 2)
	l.Charge("y", 3)
	by := l.ByPhase()
	if by["x"] != 3 || by["y"] != 3 {
		t.Fatalf("byPhase=%v", by)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Measure("p", 7)
	b.Charge("q", 9)
	a.Merge(b)
	if a.Total() != 16 {
		t.Fatalf("merged total=%d", a.Total())
	}
	if len(a.Entries()) != 2 {
		t.Fatalf("entries=%d", len(a.Entries()))
	}
}

func TestNegativeClamped(t *testing.T) {
	l := New()
	l.Charge("neg", -5)
	if l.Total() != 0 {
		t.Fatalf("negative rounds not clamped: %d", l.Total())
	}
}

func TestSummaryMentionsPhases(t *testing.T) {
	l := New()
	l.Measure("alpha", 10)
	l.Charge("beta", 90)
	s := l.Summary()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatalf("summary missing phases: %q", s)
	}
	if !strings.Contains(s, "total=100") {
		t.Fatalf("summary missing total: %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Measure("m", 1)
				l.Charge("c", 1)
			}
		}()
	}
	wg.Wait()
	if l.Total() != 1600 {
		t.Fatalf("total=%d want 1600", l.Total())
	}
}

func TestBuildSplitAndMergeAs(t *testing.T) {
	build := New()
	build.Charge("bdd/construct-level", 30)
	build.Measure("label/level", 12)

	q := New()
	q.Charge("sssp/broadcast", 8)
	q.MergeAs(build, Build)

	b, qr := q.BuildSplit()
	if b != 42 || qr != 8 {
		t.Fatalf("build/query=(%d,%d) want (42,8)", b, qr)
	}
	// Kind is preserved through a scoped merge.
	m, c := q.Split()
	if m != 12 || c != 38 {
		t.Fatalf("split=(%d,%d) want (12,38)", m, c)
	}
	// A plain Merge preserves the scope already on the entries.
	q2 := New()
	q2.Merge(q)
	b2, qr2 := q2.BuildSplit()
	if b2 != 42 || qr2 != 8 {
		t.Fatalf("merged build/query=(%d,%d) want (42,8)", b2, qr2)
	}
	if Build.String() != "build" || Query.String() != "query" {
		t.Fatal("scope strings")
	}
	if !strings.Contains(q.Summary(), "build=42 query=8") {
		t.Fatalf("summary missing build split: %q", q.Summary())
	}
}

func TestDefaultScopeIsQuery(t *testing.T) {
	l := New()
	l.Charge("x", 5)
	l.Measure("y", 6)
	b, q := l.BuildSplit()
	if b != 0 || q != 11 {
		t.Fatalf("build/query=(%d,%d) want (0,11)", b, q)
	}
	for _, e := range l.Entries() {
		if e.Scope != Query {
			t.Fatalf("entry %v not query-scoped by default", e)
		}
	}
}

func TestHelpers(t *testing.T) {
	if PipelinedBroadcastRounds(10, 5) != 15 {
		t.Fatal("pipelined broadcast formula")
	}
	if MessagesForBits(100, 32) != 4 {
		t.Fatal("messages for bits")
	}
	if MessagesForBits(96, 32) != 3 {
		t.Fatal("exact multiple")
	}
	if MessagesForBits(10, 0) != 10 {
		t.Fatal("zero budget guard")
	}
	if Measured.String() != "measured" || Charged.String() != "charged" || Kind(0).String() != "unknown" {
		t.Fatal("kind strings")
	}
}
