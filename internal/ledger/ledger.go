// Package ledger accounts CONGEST rounds for composite algorithms.
//
// The simulator executes the paper's communication primitives literally and
// measures their rounds; phases whose message pattern is fixed by already
// measured quantities (e.g. a pipelined broadcast of k B-bit messages over a
// depth-d tree) are charged d + k rounds from those quantities. Every entry
// records which of the two it is, so experiments can report the split.
package ledger

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind distinguishes measured engine rounds from charged (derived) rounds.
type Kind int

const (
	// Measured rounds were counted by the CONGEST engine executing messages.
	Measured Kind = iota + 1
	// Charged rounds were computed from measured run quantities (bit counts,
	// tree depths, congestion) using the standard pipelining bounds.
	Charged
)

func (k Kind) String() string {
	switch k {
	case Measured:
		return "measured"
	case Charged:
		return "charged"
	default:
		return "unknown"
	}
}

// Scope distinguishes one-time preprocessing cost (building the BDD and the
// distance labelings — the reusable artifact of §5) from the per-query cost
// paid on every invocation. The zero value is Query, so phases recorded by
// code that predates the artifact layer count as query cost.
type Scope int

const (
	// Query rounds are paid by every query.
	Query Scope = iota
	// Build rounds are paid once per (graph, length-function) artifact and
	// amortize across queries.
	Build
)

func (s Scope) String() string {
	if s == Build {
		return "build"
	}
	return "query"
}

// Entry is one accounted phase.
type Entry struct {
	Phase  string
	Rounds int64
	Kind   Kind
	Scope  Scope
}

// Ledger accumulates entries; safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	entries []Entry
}

// New returns an empty ledger.
func New() *Ledger { return &Ledger{} }

// Measure records engine-measured rounds for a phase.
func (l *Ledger) Measure(phase string, rounds int) { l.add(phase, int64(rounds), Measured) }

// Charge records derived rounds for a phase.
func (l *Ledger) Charge(phase string, rounds int64) { l.add(phase, rounds, Charged) }

func (l *Ledger) add(phase string, rounds int64, k Kind) {
	l.addScoped(phase, rounds, k, Query)
}

func (l *Ledger) addScoped(phase string, rounds int64, k Kind, sc Scope) {
	if rounds < 0 {
		rounds = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Entry{Phase: phase, Rounds: rounds, Kind: k, Scope: sc})
}

// Total returns the sum of all rounds.
func (l *Ledger) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s int64
	for _, e := range l.entries {
		s += e.Rounds
	}
	return s
}

// Split returns (measured, charged) round totals.
func (l *Ledger) Split() (measured, charged int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.Kind == Measured {
			measured += e.Rounds
		} else {
			charged += e.Rounds
		}
	}
	return measured, charged
}

// Entries returns a copy of all entries.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ByPhase returns per-phase totals, aggregating repeated phases.
func (l *Ledger) ByPhase() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64)
	for _, e := range l.entries {
		out[e.Phase] += e.Rounds
	}
	return out
}

// BuildSplit returns (build, query) round totals.
func (l *Ledger) BuildSplit() (build, query int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.Scope == Build {
			build += e.Rounds
		} else {
			query += e.Rounds
		}
	}
	return build, query
}

// Merge folds all entries of other into l, preserving kinds and scopes.
func (l *Ledger) Merge(other *Ledger) {
	for _, e := range other.Entries() {
		l.addScoped(e.Phase, e.Rounds, e.Kind, e.Scope)
	}
}

// MergeAs folds all entries of other into l, rewriting their scope — the
// artifact layer uses it to mark substrate-construction phases as Build cost
// when a query triggers (or replays) a build.
func (l *Ledger) MergeAs(other *Ledger, sc Scope) {
	for _, e := range other.Entries() {
		l.addScoped(e.Phase, e.Rounds, e.Kind, sc)
	}
}

// MergeScoped folds only other's entries of the given scope into l,
// preserving kinds and scopes. The decode engine uses it to keep a replayable
// record of a query's per-query phases without the one-time Build phases the
// first invocation happened to trigger.
func (l *Ledger) MergeScoped(other *Ledger, sc Scope) {
	for _, e := range other.Entries() {
		if e.Scope == sc {
			l.addScoped(e.Phase, e.Rounds, e.Kind, e.Scope)
		}
	}
}

// Summary formats per-phase totals sorted by descending rounds.
func (l *Ledger) Summary() string {
	phases := l.ByPhase()
	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return phases[keys[i]] > phases[keys[j]] })
	var b strings.Builder
	m, c := l.Split()
	bu, q := l.BuildSplit()
	fmt.Fprintf(&b, "total=%d (measured=%d charged=%d | build=%d query=%d)\n", m+c, m, c, bu, q)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-32s %12d\n", k, phases[k])
	}
	return b.String()
}

// PipelinedBroadcastRounds returns the standard cost of broadcasting k
// messages over a depth-d tree with pipelining: d + k.
func PipelinedBroadcastRounds(depth, messages int64) int64 { return depth + messages }

// MessagesForBits returns the number of B-bit messages needed to ship a
// payload of the given bit length.
func MessagesForBits(bits, b int64) int64 {
	if b <= 0 {
		return bits
	}
	return (bits + b - 1) / b
}
