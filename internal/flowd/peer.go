package flowd

// The daemon's peer plane: the two endpoints the fleet's snapshot
// shipping runs on, plus the client methods that drive them.
//
//	GET  /v1/snapshot/{graph}   stream the graph's PFSNAP snapshot
//	                            (snapstream-framed; 404 when the graph is
//	                            unknown or holds no snapshot anywhere)
//	POST /v1/restore            make the graph resident via the fallback
//	                            ladder: peer fetch → local SpillDir →
//	                            nothing (the next query rebuilds cold)
//
// The ladder's policy — which peers, in what order — belongs to the
// fleet client (it knows the ring); the daemon only executes a fetch
// list it is handed. The store's InstallSnapshot validates the full
// PFSNAP envelope against the locally registered graph, so a peer
// serving stale or foreign bytes can cost a fetch, never a wrong answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"planarflow/internal/obs"
)

// newStrictDecoder is the daemon's uniform JSON stance: unknown fields
// rejected, caller checks More() for trailing garbage.
func newStrictDecoder(data []byte) *json.Decoder {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec
}

// ErrNoSnapshot reports a snapshot fetch for a graph with no resident
// bundle and no disk snapshot — nothing to ship.
var ErrNoSnapshot = errors.New("flowd: no snapshot available")

// RestoreRequest asks the daemon to make one graph's bundle resident
// without running a query: try each peer base URL in order (snapshot
// fetch + install), then the local disk tier. Peers is optional — an
// empty list is a disk-only restore.
type RestoreRequest struct {
	Graph string   `json:"graph"`
	Peers []string `json:"peers,omitempty"`
}

// RestoreResponse reports what the restore ladder found. Source is
// "resident" (nothing to do), "peer" (Peer holds which), "disk", or
// "none" (every rung missed; the next query rebuilds cold — which is
// the ladder's designed floor, not an error).
type RestoreResponse struct {
	Graph    string `json:"graph"`
	Restored bool   `json:"restored"`
	Source   string `json:"source"`
	Peer     string `json:"peer,omitempty"`
}

// WarmRequest asks the daemon to eagerly build (or finish building) one
// registered graph's serving substrates — registration-independent, so a
// standby that adopted a graph can warm it without re-registering.
type WarmRequest struct {
	Graph string `json:"graph"`
}

// WarmResponse confirms the warm completed.
type WarmResponse struct {
	Graph  string `json:"graph"`
	Warmed bool   `json:"warmed"`
}

// handleWarm builds the graph's serving substrates before responding.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	req, err := decodeStrict[WarmRequest](data, "warm request")
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Graph == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad warm request: missing graph id"})
		return
	}
	if err := s.st.Warm(r.Context(), req.Graph); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, WarmResponse{Graph: req.Graph, Warmed: true})
}

// Warm eagerly builds the graph's serving substrates on the daemon.
func (c *Client) Warm(ctx context.Context, graph string) (*WarmResponse, error) {
	var out WarmResponse
	if err := c.do(ctx, http.MethodPost, "/v1/warm", WarmRequest{Graph: graph}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// peerFetchTimeout bounds one peer snapshot fetch inside the restore
// ladder: a dead peer must cost one rung, not the whole request budget.
const peerFetchTimeout = 10 * time.Second

// peerHTTPClient is the daemon's lazily built client for fetching
// snapshots off peers (keep-alive pooled; shared across restores).
func (s *Server) peerHTTPClient() *http.Client {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.peerHC == nil {
		s.peerHC = &http.Client{}
	}
	return s.peerHC
}

// handleFetchSnapshot streams the graph's snapshot, snapstream-framed.
// The PFSNAP bytes are encoded into memory first (bundles are a few MB
// and the encode is pinned either way), then framed onto the response —
// so a failure before the first body byte is still a clean JSON error.
func (s *Server) handleFetchSnapshot(w http.ResponseWriter, r *http.Request) {
	graph := r.PathValue("graph")
	sp, _ := s.beginSpan(r.Context(), "http", httpTrace(r))
	sp.Family, sp.Graph = "snapfetch", graph
	var buf bytes.Buffer
	ok, err := s.st.SnapshotTo(graph, &buf)
	if err != nil {
		s.writeError(w, err)
		s.finishRequest(sp, err.Error())
		return
	}
	if !ok {
		err := fmt.Errorf("%w: %q", ErrNoSnapshot, graph)
		s.writeError(w, err)
		s.finishRequest(sp, err.Error())
		return
	}
	sp.Annotate("bytes", strconv.Itoa(buf.Len()))
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := EncodeSnapStream(w, graph, buf.Bytes()); err != nil {
		// Mid-stream failure: the client's decoder sees a truncated stream
		// and falls back; all we can do is count it.
		s.writeErrs.Add(1)
		s.log.Warn("snapshot stream failed", "graph", graph, "err", err.Error())
		s.finishRequest(sp, err.Error())
		return
	}
	s.finishRequest(sp, "")
}

// handleRestore runs the restore ladder for one graph.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	req, err := decodeStrict[RestoreRequest](data, "restore request")
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Graph == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad restore request: missing graph id"})
		return
	}
	sp, ctx := s.beginSpan(r.Context(), "http", httpTrace(r))
	sp.Family, sp.Graph = "restore", req.Graph
	resp, err := s.restore(ctx, req.Graph, req.Peers)
	if err != nil {
		s.writeError(w, err)
		s.finishRequest(sp, err.Error())
		return
	}
	sp.Annotate("source", resp.Source)
	if resp.Peer != "" {
		sp.Annotate("peer", resp.Peer)
	}
	s.writeJSON(w, http.StatusOK, resp)
	s.finishRequest(sp, "")
}

// restore executes the fallback ladder: peer fetch (each peer in the
// given order), then the local disk tier, then nothing. Unknown graphs
// error; every other miss is a rung, not a failure.
func (s *Server) restore(ctx context.Context, graph string, peers []string) (*RestoreResponse, error) {
	resp := &RestoreResponse{Graph: graph}
	if s.st.Graph(graph) == nil {
		_, err := s.st.TryRestore(graph) // surfaces the typed unknown-graph error
		return nil, err
	}
	for _, peer := range peers {
		snap, err := s.fetchPeerSnapshot(ctx, peer, graph)
		if err != nil {
			s.log.Debug("peer snapshot fetch missed", "graph", graph, "peer", peer, "err", err.Error())
			continue
		}
		installed, err := s.st.InstallSnapshot(graph, snap)
		if err != nil {
			s.log.Warn("peer snapshot rejected", "graph", graph, "peer", peer, "err", err.Error())
			continue
		}
		// installed=false means a bundle is already resident (we lost a
		// benign race) — equally restored from the caller's point of view.
		resp.Restored = true
		resp.Source, resp.Peer = "peer", peer
		if !installed {
			resp.Source = "resident"
		}
		return resp, nil
	}
	restored, err := s.st.TryRestore(graph)
	if err != nil {
		return nil, err
	}
	if restored {
		resp.Restored, resp.Source = true, "disk"
		return resp, nil
	}
	resp.Source = "none"
	return resp, nil
}

// fetchPeerSnapshot pulls one graph's snapshot off a peer daemon and
// returns the verified PFSNAP bytes.
func (s *Server) fetchPeerSnapshot(ctx context.Context, base, graph string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, peerFetchTimeout)
	defer cancel()
	u := base + "/v1/snapshot/" + url.PathEscape(graph)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.Header.Set(obs.TraceHeader, tc.String())
	}
	hr, err := s.peerHTTPClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	if hr.StatusCode/100 != 2 {
		return nil, fmt.Errorf("flowd: peer snapshot %s: status %d", u, hr.StatusCode)
	}
	id, snap, err := DecodeSnapStream(hr.Body, 0)
	if err != nil {
		return nil, err
	}
	if id != graph {
		return nil, fmt.Errorf("%w: stream carries %q, asked for %q", ErrSnapStream, id, graph)
	}
	return snap, nil
}

// decodeStrict is the shared strict JSON decode (unknown fields and
// trailing data rejected) for the peer plane's small request bodies.
func decodeStrict[T any](data []byte, what string) (*T, error) {
	var v T
	dec := newStrictDecoder(data)
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("flowd: bad %s: %w", what, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("flowd: bad %s: trailing data after JSON object", what)
	}
	return &v, nil
}

// ---- client side ----

// FetchSnapshot pulls graph's snapshot off the daemon and returns the
// verified PFSNAP bytes (install them with store.InstallSnapshot, or
// hand them to another daemon's restore path).
func (c *Client) FetchSnapshot(ctx context.Context, graph string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/snapshot/"+url.PathEscape(graph), nil)
	if err != nil {
		return nil, fmt.Errorf("flowd client: %w", err)
	}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.Header.Set(obs.TraceHeader, tc.String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("flowd client: GET /v1/snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		return nil, apiError(http.MethodGet, "/v1/snapshot/"+graph, resp.StatusCode, data)
	}
	id, snap, err := DecodeSnapStream(resp.Body, 0)
	if err != nil {
		return nil, fmt.Errorf("flowd client: snapshot stream: %w", err)
	}
	if id != graph {
		return nil, fmt.Errorf("%w: stream carries %q, asked for %q", ErrSnapStream, id, graph)
	}
	return snap, nil
}

// Restore runs the daemon's restore ladder for one graph: peers in
// order, then the daemon's local disk tier.
func (c *Client) Restore(ctx context.Context, graph string, peers []string) (*RestoreResponse, error) {
	var out RestoreResponse
	if err := c.do(ctx, http.MethodPost, "/v1/restore", RestoreRequest{Graph: graph, Peers: peers}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
