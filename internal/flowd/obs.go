package flowd

// The daemon's face of the telemetry plane (internal/obs): per-request
// spans with phase attribution, end-to-end latency histograms per
// (transport, family), structured request logging, and the scrape
// endpoints — GET /metricsz (Prometheus text exposition), GET /tracez
// (recent + slow spans), GET /versionz (build/runtime info), and the
// readiness body on GET /healthz.
//
// Hot-path discipline: every per-request record resolves through maps
// prebuilt at server construction (famMetrics below), so serving a
// request touches no registry lock — the marginal cost is a few atomic
// bumps, one tracer ring insert, and a level-gated slog call.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"planarflow/internal/obs"
)

// ServerOptions tunes the daemon's telemetry; the zero value gives
// always-on defaults (warn-level logging to stderr, 128-span rings,
// 250ms slow threshold).
type ServerOptions struct {
	// Logger receives structured request/error lines. nil means a
	// text handler on stderr at LevelWarn — errors and slow queries are
	// visible, per-request lines are not.
	Logger *slog.Logger
	// SlowThreshold flags requests at least this slow for the slow-query
	// log (0 = obs.DefaultSlowThreshold).
	SlowThreshold time.Duration
	// TraceRing sizes the recent- and slow-span rings
	// (0 = obs.DefaultTraceRing).
	TraceRing int
	// Registry is the metric registry this server records into and its
	// /metricsz serves. nil means obs.Default() — the right choice for one
	// daemon per process. A fleet of in-process replicas gives each its
	// own registry so per-replica metrics stay separable and the fleet
	// front can merge them (obs.WriteMergedPrometheus).
	Registry *obs.Registry
}

// famMetrics is one (transport, family) cell of the prebuilt metric
// grid: the end-to-end latency histogram and request/error counters.
type famMetrics struct {
	lat  *obs.Histogram
	reqs *obs.Counter
	errs *obs.Counter
}

// famKey addresses one grid cell. A struct key (rather than a joined
// string) keeps the per-request lookup allocation-free.
type famKey struct {
	transport, family string
}

// decodeFamily is the pseudo-family requests that fail before their op
// is known are accounted under.
const decodeFamily = "_decode"

// batchFamily is the family of /v1/batch requests at the handler level
// (per-entry ops keep their own statsz family counters).
const batchFamily = "batch"

// transports the daemon serves on.
var transports = []string{"http", "wire"}

// initObs builds the per-(transport, family) metric grid, the phase
// histograms, the tracer, and the daemon gauges. Metric handles come
// from the process registry via get-or-create, so several servers in
// one process (tests, benches) share series.
func (s *Server) initObs(opt ServerOptions) {
	s.log = opt.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	s.tracer = obs.NewTracer(opt.TraceRing, opt.SlowThreshold)

	s.reg = opt.Registry
	if s.reg == nil {
		s.reg = obs.Default()
	}
	r := s.reg
	families := append(append([]string{}, Ops...), batchFamily, decodeFamily)
	s.fmGrid = make(map[famKey]*famMetrics, len(transports)*len(families))
	for _, tr := range transports {
		for _, fam := range families {
			s.fmGrid[famKey{tr, fam}] = &famMetrics{
				lat: r.Histogram("flowd_request_seconds",
					"End-to-end request latency by transport and query family.",
					obs.L("transport", tr), obs.L("family", fam)),
				reqs: r.Counter("flowd_requests_total",
					"Requests served by transport and query family.",
					obs.L("transport", tr), obs.L("family", fam)),
				errs: r.Counter("flowd_errors_total",
					"Requests that failed, by transport and query family.",
					obs.L("transport", tr), obs.L("family", fam)),
			}
		}
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		s.phaseHist[p] = r.Histogram("flowd_phase_seconds",
			"Per-request phase wall time (decode, acquire, build, exec, encode, write).",
			obs.L("phase", p.String()))
	}
	tr := s.tracer
	r.CounterFunc("trace_spans_dropped_total",
		"Finished spans overwritten by a tracer ring wrap.", tr.Dropped)

	st := s.st
	r.Gauge("flowd_graphs", "Registered graphs.", func() float64 {
		g, _, _ := st.Counts()
		return float64(g)
	})
	r.Gauge("flowd_resident_graphs", "Graphs with a resident artifact bundle.", func() float64 {
		_, res, _ := st.Counts()
		return float64(res)
	})
	r.Gauge("flowd_store_bytes", "Accounted footprint of resident bundles.", func() float64 {
		_, _, b := st.Counts()
		return float64(b)
	})
	start := s.start
	r.Gauge("flowd_uptime_seconds", "Daemon uptime.", func() float64 {
		return time.Since(start).Seconds()
	})
	obs.RegisterRuntimeGauges(r)
}

// beginSpan opens the span for one request and hands back the context
// the execution plane should run under. tc is the inbound trace
// context (X-Pf-Trace on HTTP, the frame trace block on the wire); an
// invalid tc self-roots a fresh trace so every span is stitchable. The
// returned context also carries the span's outbound propagation, so
// any downstream hop this request makes (peer snapshot fetch) joins
// the same trace one hop deeper.
func (s *Server) beginSpan(ctx context.Context, transport string, tc obs.TraceContext) (*obs.Span, context.Context) {
	sp := obs.NewSpan(s.reqSeq.Add(1), transport)
	if !tc.Valid() {
		tc = obs.NewTrace()
	}
	sp.SetTrace(tc)
	ctx = obs.ContextWithSpan(ctx, sp)
	return sp, obs.ContextWithTrace(ctx, sp.Propagate())
}

// httpTrace extracts the inbound trace context of an HTTP request.
func httpTrace(r *http.Request) obs.TraceContext {
	return obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
}

// beginWireSpan is beginSpan for the wire plane: the inbound trace
// context rode the frame's trace block, which the wire server already
// attached to ctx. The frame id doubles as the span id.
func (s *Server) beginWireSpan(ctx context.Context, id uint64) (*obs.Span, context.Context) {
	sp := obs.NewSpan(id, "wire")
	tc, _ := obs.TraceFromContext(ctx)
	if !tc.Valid() {
		tc = obs.NewTrace()
	}
	sp.SetTrace(tc)
	ctx = obs.ContextWithSpan(ctx, sp)
	return sp, obs.ContextWithTrace(ctx, sp.Propagate())
}

// finishRequest closes out one request: end-to-end histogram, request
// and error counters on the (transport, family) cell, phase histograms
// from the span's accumulators, tracer ring insert, and the structured
// log line (always for errors, always for slow requests, and for every
// request when the logger admits LevelDebug).
func (s *Server) finishRequest(sp *obs.Span, errMsg string) {
	total := time.Since(sp.Start)
	if m := s.fmGrid[famKey{sp.Transport, sp.Family}]; m != nil {
		m.lat.Observe(total)
		m.reqs.Inc()
		if errMsg != "" {
			m.errs.Inc()
		}
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if ns := sp.PhaseNS(p); ns > 0 {
			s.phaseHist[p].ObserveNS(ns)
		}
	}
	slow := s.tracer.Finish(sp, total, errMsg)

	switch {
	case errMsg != "":
		s.log.Warn("request failed",
			"id", sp.ID, "trace_id", sp.TraceID(), "transport", sp.Transport,
			"family", sp.Family, "graph", sp.Graph, "ms", durMS(total), "err", errMsg)
	case slow:
		s.log.Warn("slow request",
			"id", sp.ID, "trace_id", sp.TraceID(), "transport", sp.Transport,
			"family", sp.Family, "graph", sp.Graph, "ms", durMS(total),
			"build_ms", phaseMS(sp, obs.PhaseBuild), "exec_ms", phaseMS(sp, obs.PhaseExec))
	case s.log.Enabled(context.Background(), slog.LevelDebug):
		s.log.Debug("request",
			"id", sp.ID, "trace_id", sp.TraceID(), "transport", sp.Transport,
			"family", sp.Family, "graph", sp.Graph, "route", sp.Route, "ms", durMS(total))
	}
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func phaseMS(sp *obs.Span, p obs.Phase) float64 {
	return float64(sp.PhaseNS(p)) / 1e6
}

// routeOf names the execution route a request asked for: "sim" when it
// forces the simulated CONGEST route, "fast" otherwise (the query plane
// serves label-backed families through the decode engine by default).
func routeOf(simulated bool) string {
	if simulated {
		return "sim"
	}
	return "fast"
}

// HealthResponse is the GET /healthz readiness body.
type HealthResponse struct {
	Status string `json:"status"`
	// Graphs / Resident: registered graphs and how many have a resident
	// artifact bundle right now.
	Graphs   int `json:"graphs"`
	Resident int `json:"resident"`
	// WarmRestores counts disk-tier snapshot restores since boot — nonzero
	// right after a warm restart means the working set survived.
	WarmRestores int64   `json:"warm_restores"`
	UptimeMS     float64 `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.st.Snapshot()
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok", Graphs: snap.Graphs, Resident: snap.Resident,
		WarmRestores: snap.SnapshotRestores,
		UptimeMS:     durMS(time.Since(s.start)),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.writeErrs.Add(1)
		s.log.Warn("metricsz write failed", "err", err.Error())
	}
}

// TraceResponse is the GET /tracez payload: recent spans newest-first,
// the slow-query log, and the threshold that feeds it.
type TraceResponse struct {
	SlowThresholdMS float64        `json:"slow_threshold_ms"`
	SlowTotal       int64          `json:"slow_total"`
	Recent          []obs.SpanView `json:"recent"`
	Slow            []obs.SpanView `json:"slow"`
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	f, err := SpanFilterFromQuery(r.URL.Query())
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, TraceResponse{
		SlowThresholdMS: durMS(s.tracer.Threshold()),
		SlowTotal:       s.tracer.SlowCount(),
		Recent:          obs.FilterSpans(s.tracer.Recent(), f),
		Slow:            obs.FilterSpans(s.tracer.Slow(), f),
	})
}

// SpanFilterFromQuery parses the ?family= / ?graph= / ?min_ms= span
// filters shared by /tracez and the fleet front's /fleettracez.
func SpanFilterFromQuery(q url.Values) (obs.SpanFilter, error) {
	f := obs.SpanFilter{Family: q.Get("family"), Graph: q.Get("graph")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return f, fmt.Errorf("flowd: bad min_ms %q", v)
		}
		f.MinMS = ms
	}
	return f, nil
}

// Tracer returns the server's span tracer — the fleet front drains it
// for cross-replica stitching.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// VersionResponse is the GET /versionz payload: build identity plus the
// runtime vitals an operator checks first.
type VersionResponse struct {
	GoVersion  string            `json:"go_version"`
	Module     string            `json:"module,omitempty"`
	Revision   string            `json:"revision,omitempty"`
	BuildTime  string            `json:"build_time,omitempty"`
	Settings   map[string]string `json:"settings,omitempty"`
	UptimeMS   float64           `json:"uptime_ms"`
	Goroutines int               `json:"goroutines"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	GCCycles   uint32            `json:"gc_cycles"`
	HeapAlloc  uint64            `json:"heap_alloc_bytes"`
}

func (s *Server) handleVersionz(w http.ResponseWriter, r *http.Request) {
	resp := VersionResponse{
		GoVersion:  runtime.Version(),
		UptimeMS:   durMS(time.Since(s.start)),
		Goroutines: runtime.NumGoroutine(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	resp.GCCycles, resp.HeapAlloc = ms.NumGC, ms.HeapAlloc
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				resp.Revision = kv.Value
			case "vcs.time":
				resp.BuildTime = kv.Value
			case "GOARCH", "GOOS", "vcs.modified":
				if resp.Settings == nil {
					resp.Settings = map[string]string{}
				}
				resp.Settings[kv.Key] = kv.Value
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HistSummary is the quantile digest of one latency histogram, folded
// into /statsz next to the counter stats.
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarize(snap obs.Snapshot) HistSummary {
	return HistSummary{
		Count:  snap.Count,
		MeanMS: durMS(snap.Mean()),
		P50MS:  durMS(snap.Quantile(0.50)),
		P90MS:  durMS(snap.Quantile(0.90)),
		P99MS:  durMS(snap.Quantile(0.99)),
		MaxMS:  float64(snap.Max) / 1e6,
	}
}

// SummarizeLatency folds one latency snapshot into the /statsz quantile
// digest — exported for the fleet front, which merges per-replica
// snapshots (Snapshot.Merge) and summarizes the union.
func SummarizeLatency(snap obs.Snapshot) HistSummary { return summarize(snap) }

// latencySnapshot digests the non-empty (transport, family) histograms
// as "transport/family" → summary.
func (s *Server) latencySnapshot() map[string]HistSummary {
	var out map[string]HistSummary
	for key, m := range s.fmGrid {
		snap := m.lat.Snapshot()
		if snap.Count == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]HistSummary)
		}
		out[key.transport+"/"+key.family] = summarize(snap)
	}
	return out
}

// LatencySnapshots exports the raw (transport, family) latency
// histogram snapshots keyed "transport/family" — the mergeable form.
// The fleet front merges these across replicas (obs Snapshot.Merge) and
// summarizes the union, so fleet-wide quantiles come from merged
// buckets, not averaged per-replica quantiles.
func (s *Server) LatencySnapshots() map[string]obs.Snapshot {
	out := make(map[string]obs.Snapshot, len(s.fmGrid))
	for key, m := range s.fmGrid {
		snap := m.lat.Snapshot()
		if snap.Count == 0 {
			continue
		}
		out[key.transport+"/"+key.family] = snap
	}
	return out
}

// Registry returns the metric registry this server records into.
func (s *Server) Registry() *obs.Registry { return s.reg }
