package flowd

// The binary wire plane: the same daemon served over internal/wire's
// framed transport instead of HTTP. The frame payloads ARE the HTTP
// JSON bodies — OpQuery carries a QueryRequest and returns a
// QueryResponse, OpBatch a BatchRequest/BatchResponse — decoded by the
// same strict decoders and executed by the same runQuery/runBatch, so a
// wire answer is byte-identical to the HTTP answer for the same request
// (the differential tests pin that). What changes is purely transport:
// persistent connections, many in-flight requests per connection
// multiplexed by request id, and write coalescing on both directions.
//
// HTTP stays the control/compat plane (register, snapshot, statsz); the
// wire plane carries the high-rate query traffic. WireClient is the
// matching client: a connection pool with true pipelining and an opt-in
// micro-coalescer that folds concurrent singleton queries into OpBatch
// frames.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"planarflow/internal/obs"
	"planarflow/internal/wire"
)

// encodeBody marshals v exactly as the HTTP plane does (json.Encoder
// appends a newline), so wire payloads and HTTP bodies are
// byte-identical for the same value.
func encodeBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// errBody is the uniform error payload, the wire twin of writeError.
func errBody(msg string) []byte {
	b, _ := encodeBody(errorResponse{Error: msg}) // errorResponse always marshals
	return b
}

// wireStatusOf projects the library's sentinel errors onto wire
// statuses through the same classification statusOf uses for HTTP, so
// the two planes cannot disagree about an error's class. The full
// mapping table (HTTP status ↔ wire status ↔ sentinel) is in DESIGN.md.
func wireStatusOf(err error) wire.Status {
	switch statusOf(err) {
	case http.StatusNotFound:
		return wire.StatusNotFound
	case http.StatusConflict:
		return wire.StatusConflict
	case http.StatusTooManyRequests:
		return wire.StatusOverload
	case http.StatusBadRequest:
		return wire.StatusBadRequest
	case 499:
		return wire.StatusCanceled
	case http.StatusGatewayTimeout:
		return wire.StatusTimeout
	default:
		return wire.StatusInternal
	}
}

// Wire returns the daemon's binary-transport server, creating it on
// first use. Serve it on any listener (cmd/flowd wires -listen-wire and
// -listen-uds here); all listeners share one server, one set of
// transport counters, and this daemon's execution plane. The counters
// register on the process telemetry registry as the server role (client
// pools keep theirs off the registry to avoid colliding series).
func (s *Server) Wire() *wire.Server {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.wireSrv == nil {
		s.wireSrv = wire.NewServer(s)
		s.wireSrv.Counters().RegisterObs(s.reg, obs.L("role", "server"))
	}
	return s.wireSrv
}

// wireStats snapshots the wire plane's counters for /statsz, nil when
// no wire server was ever attached.
func (s *Server) wireStats() *wire.Stats {
	s.wireMu.Lock()
	srv := s.wireSrv
	s.wireMu.Unlock()
	if srv == nil {
		return nil
	}
	st := srv.Stats()
	return &st
}

// ServeFrame implements wire.Handler: one request frame in, one
// response frame out, the payloads exactly the HTTP plane's JSON
// bodies (or their binary twins). Each query/batch frame runs under a
// span keyed by the frame id; pings and unknown ops are not traced.
func (s *Server) ServeFrame(ctx context.Context, op wire.Op, id uint64, payload []byte) (wire.Status, []byte) {
	switch op {
	case wire.OpPing:
		b, _ := encodeBody(map[string]string{"status": "ok"})
		return wire.StatusOK, b
	case wire.OpQuery:
		return s.serveQueryFrame(ctx, id, payload, DecodeQuery,
			func(resp *QueryResponse) (wire.Status, []byte) { return s.okBody(resp) })
	case wire.OpBatch:
		return s.serveBatchFrame(ctx, id, payload, DecodeBatch,
			func(resp *BatchResponse) (wire.Status, []byte) { return s.okBody(resp) })
	case wire.OpQueryB:
		return s.serveQueryFrame(ctx, id, payload, decodeWireQueryRequest,
			func(resp *QueryResponse) (wire.Status, []byte) {
				return wire.StatusOK, appendWireQueryResponse(make([]byte, 0, 96+8*len(resp.Dist)+8*len(resp.CutEdges)), resp)
			})
	case wire.OpBatchB:
		return s.serveBatchFrame(ctx, id, payload, decodeWireBatchRequest,
			func(resp *BatchResponse) (wire.Status, []byte) {
				return wire.StatusOK, appendWireBatchResponse(make([]byte, 0, 32+96*len(resp.Results)), resp)
			})
	case wire.OpSnapB:
		return s.serveSnapFrame(payload)
	default:
		return wire.StatusBadRequest, errBody(fmt.Sprintf("flowd: unknown wire op %d", op))
	}
}

// serveSnapFrame answers one OpSnapB request: the payload is the raw
// graph-id bytes, the response a snapstream-framed snapshot in one
// frame. A snapshot too big for one wire frame answers StatusOverload —
// the caller falls back to the HTTP endpoint, which has no frame cap.
func (s *Server) serveSnapFrame(payload []byte) (wire.Status, []byte) {
	graph := string(payload)
	if graph == "" || len(graph) > MaxSnapIDLen {
		return wire.StatusBadRequest, errBody(fmt.Sprintf("flowd: bad snapshot request: id length %d", len(payload)))
	}
	var buf bytes.Buffer
	ok, err := s.st.SnapshotTo(graph, &buf)
	if err != nil {
		return wireStatusOf(err), errBody(err.Error())
	}
	if !ok {
		err := fmt.Errorf("%w: %q", ErrNoSnapshot, graph)
		return wireStatusOf(err), errBody(err.Error())
	}
	body, err := AppendSnapStream(make([]byte, 0, buf.Len()+64), graph, buf.Bytes())
	if err != nil {
		return wire.StatusInternal, errBody(err.Error())
	}
	if len(body) > wire.MaxPayload {
		return wire.StatusOverload, errBody(fmt.Sprintf(
			"flowd: snapshot of %q is %d bytes, over the %d frame cap; use GET /v1/snapshot", graph, len(body), wire.MaxPayload))
	}
	return wire.StatusOK, body
}

// serveQueryFrame is the wire plane's span-wrapped singleton execution,
// parameterized over the JSON and binary payload codecs.
func (s *Server) serveQueryFrame(ctx context.Context, id uint64, payload []byte,
	decode func([]byte) (*QueryRequest, error),
	encode func(*QueryResponse) (wire.Status, []byte)) (wire.Status, []byte) {
	sp, ctx := s.beginWireSpan(ctx, id)
	sp.Family = decodeFamily
	req, err := decode(payload)
	sp.MarkSince(obs.PhaseDecode, sp.Start)
	if err != nil {
		s.finishRequest(sp, err.Error())
		return wire.StatusBadRequest, errBody(err.Error())
	}
	sp.Family, sp.Graph, sp.Route = req.Op, req.Graph, routeOf(req.Simulated)
	resp, err := s.runQuery(ctx, req)
	if err != nil {
		s.finishRequest(sp, err.Error())
		return wireStatusOf(err), errBody(err.Error())
	}
	t0 := time.Now()
	status, body := encode(resp)
	sp.MarkSince(obs.PhaseEncode, t0)
	s.finishRequest(sp, "")
	return status, body
}

// serveBatchFrame is serveQueryFrame's batch twin; it also feeds the
// transport-level fold counter (how many queries arrived per batch
// frame — the client-side coalescer reports the same shape from its
// end).
func (s *Server) serveBatchFrame(ctx context.Context, id uint64, payload []byte,
	decode func([]byte) (*BatchRequest, error),
	encode func(*BatchResponse) (wire.Status, []byte)) (wire.Status, []byte) {
	sp, ctx := s.beginWireSpan(ctx, id)
	sp.Family = decodeFamily
	req, err := decode(payload)
	sp.MarkSince(obs.PhaseDecode, sp.Start)
	if err != nil {
		s.finishRequest(sp, err.Error())
		return wire.StatusBadRequest, errBody(err.Error())
	}
	sp.Family, sp.Graph = batchFamily, req.Graph
	s.Wire().Counters().AddCoalesced(len(req.Queries))
	resp, err := s.runBatch(ctx, req)
	if err != nil {
		s.finishRequest(sp, err.Error())
		return wireStatusOf(err), errBody(err.Error())
	}
	t0 := time.Now()
	status, body := encode(resp)
	sp.MarkSince(obs.PhaseEncode, t0)
	s.finishRequest(sp, "")
	return status, body
}

// okBody encodes a success payload; an encode failure (cannot happen
// for the response types, but the transport must stay total) degrades
// to an internal error so the requester is never left hanging.
func (s *Server) okBody(v any) (wire.Status, []byte) {
	b, err := encodeBody(v)
	if err != nil {
		return wire.StatusInternal, errBody("flowd: encoding response: " + err.Error())
	}
	return wire.StatusOK, b
}

// StatusError is a daemon-reported failure over the wire transport: the
// wire status plus the error body's message. errors.Is maps the
// cancellation statuses back onto the context sentinels, so callers
// handle "server observed my cancellation" and "my own ctx fired" the
// same way they do over HTTP.
type StatusError struct {
	Status wire.Status
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("flowd wire: status %s: %s", e.Status, e.Msg)
}

// Is matches the context sentinels for the cancellation statuses.
func (e *StatusError) Is(target error) bool {
	switch target {
	case context.Canceled:
		return e.Status == wire.StatusCanceled
	case context.DeadlineExceeded:
		return e.Status == wire.StatusTimeout
	}
	return false
}

// wireErr decodes an error frame into a StatusError.
func wireErr(status wire.Status, body []byte) error {
	var e errorResponse
	if json.Unmarshal(body, &e) != nil || e.Error == "" {
		e.Error = fmt.Sprintf("(%d-byte undecodable error body)", len(body))
	}
	return &StatusError{Status: status, Msg: e.Error}
}

// WireOptions configures a WireClient.
type WireOptions struct {
	// PoolSize is the connection count (<= 0 = wire.DefaultPoolSize).
	// Requests pipeline freely within each connection, so the pool sizes
	// for server-side parallelism, not for concurrent callers.
	PoolSize int
	// Coalesce enables the micro-coalescer: concurrent singleton Query
	// calls against the same graph are folded into one OpBatch frame
	// (execution via the store's batch plane — answers are bit-identical
	// to the singleton route by the query plane's own differential
	// tests). Queries keep per-call contexts: a canceled caller stops
	// waiting while the folded frame completes for the rest.
	Coalesce bool
	// CoalesceMax caps queries per folded frame (<= 0 = 64; never more
	// than MaxBatchQueries).
	CoalesceMax int
}

// WireClient is the Go client for the daemon's binary transport: a
// connection pool with true pipelining — any number of concurrent
// Query/QueryBatch calls share the pool's connections, each call
// waiting only on its own request id. Control-plane operations
// (register, stats, snapshot) stay on the HTTP Client; pair the two
// with Client.WithWireTransport.
type WireClient struct {
	pool *wire.Pool
	co   *coalescer
}

// NewWireClient targets a wire listener ("tcp" host:port, or "unix"
// socket path).
func NewWireClient(network, addr string, opt WireOptions) *WireClient {
	c := &WireClient{pool: wire.NewPool(network, addr, opt.PoolSize)}
	if opt.Coalesce {
		max := opt.CoalesceMax
		if max <= 0 {
			max = 64
		}
		if max > MaxBatchQueries {
			max = MaxBatchQueries
		}
		c.co = newCoalescer(c, max)
		c.co.start()
	}
	return c
}

// TransportStats snapshots the client's transport counters (frames,
// bytes, flush coalescing, fold sizes).
func (c *WireClient) TransportStats() wire.Stats { return c.pool.Stats() }

// Ping verifies the transport end to end.
func (c *WireClient) Ping(ctx context.Context) error { return c.pool.Ping(ctx) }

// Close releases the connections; in-flight requests fail with
// wire.ErrConnClosed.
func (c *WireClient) Close() error {
	if c.co != nil {
		c.co.stop()
	}
	return c.pool.Close()
}

// Query runs one query over the wire. With coalescing enabled the call
// may travel inside a folded OpBatch frame; either way the answer is
// the daemon's QueryResponse for exactly this request.
func (c *WireClient) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	if c.co != nil {
		return c.co.query(ctx, req)
	}
	return c.query(ctx, req)
}

// query is the direct (uncoalesced) singleton path, on the binary
// payload codec.
func (c *WireClient) query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	payload := appendWireQueryRequest(make([]byte, 0, 64), &req)
	status, body, err := c.pool.Do(ctx, wire.OpQueryB, payload)
	if err != nil {
		return nil, fmt.Errorf("flowd wire: query: %w", err)
	}
	if status != wire.StatusOK {
		return nil, wireErr(status, body)
	}
	out, err := decodeWireQueryResponse(body)
	if err != nil {
		return nil, fmt.Errorf("flowd wire: decode: %w", err)
	}
	return out, nil
}

// QueryBatch runs one explicit batch over the wire, with the HTTP batch
// endpoint's semantics (per-entry error isolation), on the binary
// payload codec.
func (c *WireClient) QueryBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	payload := appendWireBatchRequest(make([]byte, 0, 32+56*len(req.Queries)), &req)
	status, body, err := c.pool.Do(ctx, wire.OpBatchB, payload)
	if err != nil {
		return nil, fmt.Errorf("flowd wire: batch: %w", err)
	}
	if status != wire.StatusOK {
		return nil, wireErr(status, body)
	}
	out, err := decodeWireBatchResponse(body)
	if err != nil {
		return nil, fmt.Errorf("flowd wire: decode: %w", err)
	}
	return out, nil
}

// ---- micro-coalescer ----

// coalItem is one waiting singleton query.
type coalItem struct {
	ctx  context.Context
	req  QueryRequest
	done chan coalResult // cap 1
}

type coalResult struct {
	resp *QueryResponse
	err  error
}

// coalescer folds concurrent singleton queries into OpBatch frames: a
// dispatcher drains everything queued at the moment it wakes, groups by
// graph id, and ships each group of two-or-more as one batch frame (a
// group of one goes out as a plain query frame — the fold never adds a
// round trip). Under sequential load every query is a group of one and
// the coalescer is a no-op; under concurrent load the fold divides the
// frame count by the burst size.
type coalescer struct {
	c      *WireClient
	max    int
	ch     chan *coalItem
	stopCh chan struct{}
}

func newCoalescer(c *WireClient, max int) *coalescer {
	return &coalescer{c: c, max: max, ch: make(chan *coalItem, 4*MaxBatchQueries), stopCh: make(chan struct{})}
}

func (co *coalescer) start() { go co.run() }

func (co *coalescer) stop() { close(co.stopCh) }

// query submits one singleton through the fold and waits for its
// result, honoring only this caller's ctx.
func (co *coalescer) query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	item := &coalItem{ctx: ctx, req: req, done: make(chan coalResult, 1)}
	select {
	case co.ch <- item:
	case <-co.stopCh:
		return co.c.query(ctx, req) // stopped: degrade to the direct path
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-item.done:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (co *coalescer) run() {
	for {
		var first *coalItem
		select {
		case first = <-co.ch:
		case <-co.stopCh:
			co.failPending()
			return
		}
		batch := []*coalItem{first}
		yielded := false
		for len(batch) < co.max {
			select {
			case it := <-co.ch:
				batch = append(batch, it)
				yielded = false
				continue
			default:
			}
			// Empty right after an item usually means the concurrent senders
			// haven't been scheduled yet, not that the burst is over (a send
			// into ch readies this goroutine immediately). One yield lets
			// them land; a queue still empty after that is a real lull.
			if yielded {
				break
			}
			runtime.Gosched()
			yielded = true
		}
		for graph, items := range groupByGraph(batch) {
			go co.flush(graph, items)
		}
	}
}

// failPending drains queued items after stop; their waiters fall back
// to the pool, which reports ErrPoolClosed once Close lands.
func (co *coalescer) failPending() {
	for {
		select {
		case it := <-co.ch:
			resp, err := co.c.query(it.ctx, it.req)
			it.done <- coalResult{resp: resp, err: err}
		default:
			return
		}
	}
}

func groupByGraph(items []*coalItem) map[string][]*coalItem {
	groups := make(map[string][]*coalItem, 1)
	for _, it := range items {
		groups[it.req.Graph] = append(groups[it.req.Graph], it)
	}
	return groups
}

// flush ships one graph's fold. Two or more items become an OpBatch
// frame whose per-entry results are translated back into
// QueryResponses; the frame's context outlives any single caller (a
// canceled caller stops waiting, the frame completes for the rest).
func (co *coalescer) flush(graph string, items []*coalItem) {
	if len(items) == 1 {
		it := items[0]
		resp, err := co.c.query(it.ctx, it.req)
		it.done <- coalResult{resp: resp, err: err}
		return
	}
	co.c.pool.Counters().AddCoalesced(len(items))
	breq := BatchRequest{Graph: graph, Queries: make([]BatchQuery, len(items))}
	for i, it := range items {
		breq.Queries[i] = BatchQuery{
			Op: it.req.Op, U: it.req.U, V: it.req.V,
			Source: it.req.Source, Eps: it.req.Eps, Simulated: it.req.Simulated,
		}
	}
	bresp, err := co.c.QueryBatch(context.WithoutCancel(items[0].ctx), breq)
	if err != nil {
		for _, it := range items {
			it.done <- coalResult{err: err}
		}
		return
	}
	for i, it := range items {
		r := bresp.Results[i]
		if r.Error != "" {
			// Entry-level failures cross the batch plane as strings (as on
			// HTTP), so the status class is not recoverable here.
			it.done <- coalResult{err: fmt.Errorf("flowd wire: coalesced query: %s", r.Error)}
			continue
		}
		it.done <- coalResult{resp: &QueryResponse{
			Graph: graph, Op: r.Op,
			Value: r.Value, Dist: r.Dist, CutEdges: r.CutEdges,
			NegCycle: r.NegCycle, Iterations: r.Iterations,
			Hit: bresp.Hit, Rounds: r.Rounds, WallMS: bresp.WallMS,
		}}
	}
}
