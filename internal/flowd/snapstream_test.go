package flowd

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed FuzzDecodeSnapStream seed corpus")

func TestSnapStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, snapMaxChunk - 1, snapMaxChunk, snapMaxChunk + 1, 3*snapMaxChunk + 17} {
		data := make([]byte, size)
		rng.Read(data)
		var buf bytes.Buffer
		if err := EncodeSnapStream(&buf, "graph-a", data); err != nil {
			t.Fatalf("size %d: encode: %v", size, err)
		}
		id, got, err := DecodeSnapStream(&buf, 0)
		if err != nil {
			t.Fatalf("size %d: decode: %v", size, err)
		}
		if id != "graph-a" {
			t.Fatalf("size %d: id %q", size, id)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: data mismatch", size)
		}
	}
}

func TestSnapStreamAppendMatchesEncode(t *testing.T) {
	data := []byte("snapshot payload bytes")
	var buf bytes.Buffer
	if err := EncodeSnapStream(&buf, "g", data); err != nil {
		t.Fatal(err)
	}
	app, err := AppendSnapStream(nil, "g", data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(app, buf.Bytes()) {
		t.Fatal("AppendSnapStream diverges from EncodeSnapStream")
	}
}

func TestSnapStreamEncodeRejectsBadID(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapStream(&buf, "", nil); !errors.Is(err, ErrSnapStream) {
		t.Fatalf("empty id: %v", err)
	}
	if err := EncodeSnapStream(&buf, strings.Repeat("x", MaxSnapIDLen+1), nil); !errors.Is(err, ErrSnapStream) {
		t.Fatalf("oversize id: %v", err)
	}
}

// TestSnapStreamTruncation cuts a valid stream at every byte boundary:
// each prefix must fail with the truncation sentinel (never succeed,
// never panic) — the property the peer-restore fallback ladder rests on.
func TestSnapStreamTruncation(t *testing.T) {
	data := make([]byte, 1000)
	rand.New(rand.NewSource(2)).Read(data)
	full, err := AppendSnapStream(nil, "gg", data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeSnapStream(bytes.NewReader(full[:cut]), 0)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(full))
		}
		if !errors.Is(err, ErrSnapStreamTruncated) {
			t.Fatalf("cut at %d: %v, want truncation sentinel", cut, err)
		}
	}
}

func TestSnapStreamCorruption(t *testing.T) {
	data := []byte("some snapshot bytes that matter")
	full, err := AppendSnapStream(nil, "g", data)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(i int, x byte) []byte {
		b := append([]byte(nil), full...)
		b[i] ^= x
		return b
	}
	cases := map[string][]byte{
		"bad-magic":       mut(0, 0xff),
		"bad-version":     mut(2, 0x05),
		"flipped-payload": mut(10+2, 0x01), // inside the first chunk
		"flipped-crc":     mut(len(full)-1, 0x01),
	}
	for name, b := range cases {
		if _, _, err := DecodeSnapStream(bytes.NewReader(b), 0); !errors.Is(err, ErrSnapStream) {
			t.Fatalf("%s: %v, want ErrSnapStream", name, err)
		}
	}
}

func TestSnapStreamSizeCap(t *testing.T) {
	data := make([]byte, 4096)
	full, err := AppendSnapStream(nil, "g", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSnapStream(bytes.NewReader(full), 100); !errors.Is(err, ErrSnapStreamSize) {
		t.Fatalf("size cap: %v", err)
	}
	if _, _, err := DecodeSnapStream(bytes.NewReader(full), 4096); err != nil {
		t.Fatalf("exact budget rejected: %v", err)
	}
}

// snapFuzzSeeds are the stream shapes the fuzzer starts from.
func snapFuzzSeeds(t testing.TB) map[string][]byte {
	valid, err := AppendSnapStream(nil, "g", []byte("snapshot bytes"))
	if err != nil {
		t.Fatal(err)
	}
	empty, err := AppendSnapStream(nil, "empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	two, err := AppendSnapStream(nil, "ab", bytes.Repeat([]byte{7}, 600))
	if err != nil {
		t.Fatal(err)
	}
	mut := func(i int, x byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= x
		return b
	}
	bigChunk := append([]byte(nil), valid...)
	bigChunk[6+1], bigChunk[6+1+1], bigChunk[6+1+2], bigChunk[6+1+3] = 0xff, 0xff, 0xff, 0xff
	return map[string][]byte{
		"valid":            valid,
		"valid-empty-data": empty,
		"valid-two-chunks": two,
		"empty":            {},
		"truncated-header": valid[:3],
		"truncated-chunk":  valid[:len(valid)-10],
		"truncated-term":   valid[:len(valid)-2],
		"bad-magic":        mut(0, 0xff),
		"future-version":   mut(2, 0x06),
		"zero-id-len":      mut(4, valid[4]),
		"flipped-payload":  mut(6+1+4, 0x10),
		"flipped-crc":      mut(len(valid)-1, 0x01),
		"oversized-chunk":  bigChunk,
	}
}

// TestWriteSnapSeedCorpus (with -update-corpus) materializes the seeds
// as committed corpus files under testdata/fuzz/FuzzDecodeSnapStream —
// the same discipline as the wire frame fuzzer.
func TestWriteSnapSeedCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update-corpus to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapStream")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := snapFuzzSeeds(t)
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus seeds to %s", len(seeds), dir)
}

// FuzzDecodeSnapStream holds the stream decoder to its contract: any
// byte string either decodes to (id, data) that re-encodes to a stream
// decoding identically, or fails with exactly one typed sentinel —
// never a panic, never an allocation beyond the declared capped sizes.
func FuzzDecodeSnapStream(f *testing.F) {
	for _, data := range snapFuzzSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		id, data, err := DecodeSnapStream(bytes.NewReader(stream), 1<<20)
		if err != nil {
			if !errors.Is(err, ErrSnapStream) && !errors.Is(err, ErrSnapStreamTruncated) &&
				!errors.Is(err, ErrSnapStreamSize) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if len(id) == 0 || len(id) > MaxSnapIDLen {
			t.Fatalf("decoded id length %d out of range", len(id))
		}
		// decode∘encode∘decode is the identity on the logical content.
		re, err := AppendSnapStream(nil, id, data)
		if err != nil {
			t.Fatalf("decoded stream failed to re-encode: %v", err)
		}
		id2, data2, err := DecodeSnapStream(bytes.NewReader(re), 1<<20)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if id2 != id || !bytes.Equal(data2, data) {
			t.Fatal("round trip diverged")
		}
	})
}
