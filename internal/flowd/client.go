package flowd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"

	"planarflow/internal/obs"
	"planarflow/internal/store"
	"planarflow/internal/wire"
)

// APIError is a daemon-reported HTTP failure: the status code plus the
// decoded error body. Typed so callers (the fleet client above all) can
// branch on the status class — 404 unknown graph vs 409 duplicate —
// without string matching.
type APIError struct {
	Status int
	Msg    string
	method string
	path   string
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("flowd client: %s %s: status %d: %s", e.method, e.path, e.Status, e.Msg)
	}
	return fmt.Sprintf("flowd client: %s %s: status %d", e.method, e.path, e.Status)
}

// apiError decodes a non-2xx response body into the typed error.
func apiError(method, path string, status int, body []byte) *APIError {
	var e errorResponse
	_ = json.Unmarshal(body, &e)
	return &APIError{Status: status, Msg: e.Error, method: method, path: path}
}

// IsUnavailable classifies transport-level failures — the server is
// down, unreachable, or the connection died mid-flight — as opposed to
// the server rejecting the request. True for wire dial failures
// (wire.ErrUnavailable), dead wire connections (ErrConnClosed), closed
// pools, and HTTP transport errors (*url.Error / net.OpError under the
// client's %w wrapping). The fleet client ejects a replica and re-routes
// on exactly this class.
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, wire.ErrUnavailable) || errors.Is(err, wire.ErrConnClosed) ||
		errors.Is(err, wire.ErrPoolClosed) || errors.Is(err, wire.ErrServerClosed) {
		return true
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// IsNotFound reports a daemon answering "no such graph" on either
// plane: an HTTP 404 APIError or a wire StatusNotFound. The fleet
// client reads it as "this replica does not hold the graph yet" and
// runs the adopt path (register + restore) before retrying.
func IsNotFound(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusNotFound
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == wire.StatusNotFound
	}
	return false
}

// ClientMaxIdleConnsPerHost sizes NewClient's connection pool. The
// stdlib default (http.DefaultMaxIdleConnsPerHost = 2) closes all but
// two keep-alive connections to the daemon, so a benchmark driving C=8+
// concurrent clients re-handshakes on most requests; this floor keeps
// every benchmark-scale worker on a persistent connection.
const ClientMaxIdleConnsPerHost = 64

// Client is the Go client for a flowd daemon's HTTP plane. NewClient
// installs a transport with keep-alive pooling sized for benchmark
// concurrency (see ClientMaxIdleConnsPerHost); WithHTTPClient replaces
// it wholesale. All methods honor ctx. For the high-rate query path over
// the binary transport, pair with a WireClient via WithWireTransport.
type Client struct {
	base string
	hc   *http.Client
	wc   *WireClient // nil: Query/QueryBatch go over HTTP
}

// NewClient targets a daemon at base (e.g. "http://127.0.0.1:8373").
func NewClient(base string) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = ClientMaxIdleConnsPerHost
	if tr.MaxIdleConns < ClientMaxIdleConnsPerHost {
		tr.MaxIdleConns = ClientMaxIdleConnsPerHost
	}
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// WithHTTPClient substitutes the transport (tests, timeouts, pooling).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	return &Client{base: c.base, hc: hc, wc: c.wc}
}

// WithWireTransport routes Query and QueryBatch over the binary wire
// transport while every control-plane method (Register, Graphs,
// Snapshot, Stats, Health) stays on HTTP. Answers are identical either
// way — the wire plane shares the daemon's decoders and execution (the
// differential tests pin byte-identity) — only the transport cost
// changes. The caller owns wc's lifecycle (Close it when done).
func (c *Client) WithWireTransport(wc *WireClient) *Client {
	return &Client{base: c.base, hc: c.hc, wc: wc}
}

// do runs one JSON round trip. A non-2xx response is decoded as the
// daemon's error body and returned as an error carrying the status.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("flowd client: encode: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("flowd client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.Header.Set(obs.TraceHeader, tc.String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("flowd client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("flowd client: read: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return apiError(method, path, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("flowd client: decode: %w", err)
	}
	return nil
}

// Register generates and registers a graph on the daemon.
func (c *Client) Register(ctx context.Context, id string, spec store.GraphSpec) (*RegisterResponse, error) {
	var out RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs", RegisterRequest{ID: id, Spec: spec}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterWarm is Register with the ?warm=1 prefetch: the daemon builds
// the graph's serving substrates before responding, so the first user
// query finds them resident instead of paying the cold-start build.
func (c *Client) RegisterWarm(ctx context.Context, id string, spec store.GraphSpec) (*RegisterResponse, error) {
	var out RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs?warm=1", RegisterRequest{ID: id, Spec: spec}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Graphs lists the registered graphs with their serving stats.
func (c *Client) Graphs(ctx context.Context) ([]store.GraphStats, error) {
	var out []store.GraphStats
	if err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Query runs one query, over the wire transport when one is attached.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	if c.wc != nil {
		return c.wc.Query(ctx, req)
	}
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryBatch runs a batch of queries against one graph under a single
// bundle acquisition on the daemon. Per-query failures come back in the
// index-aligned Results entries (Error set); the call itself fails only
// for batch-level problems (bad request, unknown graph, cancellation).
func (c *Client) QueryBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	if c.wc != nil {
		return c.wc.QueryBatch(ctx, req)
	}
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot asks the daemon to persist prepared substrates to its disk
// tier: the named graph, or every resident bundle when graph is empty.
func (c *Client) Snapshot(ctx context.Context, graph string) (*SnapshotResponse, error) {
	var out SnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/snapshot", SnapshotRequest{Graph: graph}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats scrapes /statsz.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health scrapes /healthz and returns the typed readiness body.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metricsz scrapes GET /metricsz and returns the raw Prometheus text
// exposition (parse it with obs.ParseExposition if needed).
func (c *Client) Metricsz(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metricsz", nil)
	if err != nil {
		return nil, fmt.Errorf("flowd client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("flowd client: GET /metricsz: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("flowd client: read: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("flowd client: GET /metricsz: status %d", resp.StatusCode)
	}
	return data, nil
}

// Tracez scrapes GET /tracez: the recent-span ring and slow-query log.
func (c *Client) Tracez(ctx context.Context) (*TraceResponse, error) {
	var out TraceResponse
	if err := c.do(ctx, http.MethodGet, "/tracez", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
