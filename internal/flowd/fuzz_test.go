package flowd

import (
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzDecodeQuery holds DecodeQuery to its contract: no input panics, and
// any accepted request is well-formed (known op, non-negative ids, eps in
// range, round-trippable through the wire encoding). Seeds cover every op
// plus the rejection classes; the committed corpus under
// testdata/fuzz/FuzzDecodeQuery extends them.
func FuzzDecodeQuery(f *testing.F) {
	for _, op := range Ops {
		f.Add([]byte(`{"graph":"g","op":"` + op + `","u":0,"v":5,"source":2,"eps":0.5}`))
	}
	f.Add([]byte(`{"graph":"g","op":"dist"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"graph":"g","op":"dist","u":-1}`))
	f.Add([]byte(`{"graph":"g","op":"dist","eps":1.5}`))
	f.Add([]byte(`{"graph":"g","op":"dist","bogus":true}`))
	f.Add([]byte(`{"graph":"g","op":"dist"} trailing`))
	f.Add([]byte(`{"graph":"g","op":"dist","u":9223372036854775807}`))
	f.Add([]byte(`{"graph":"x","op":"girth"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeQuery(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if err := req.Query().Validate(); err != nil {
			t.Fatalf("accepted request maps to invalid query: %v", err)
		}
		if req.Graph == "" {
			t.Fatal("accepted request with empty graph id")
		}
		if !opSet[req.Op] {
			t.Fatalf("accepted unknown op %q", req.Op)
		}
		if req.U < 0 || req.V < 0 || req.Source < 0 {
			t.Fatalf("accepted negative ids: %+v", req)
		}
		if req.Eps < 0 || req.Eps >= 1 {
			t.Fatalf("accepted eps %v", req.Eps)
		}
		// Accepted requests survive the wire round trip losslessly (modulo
		// JSON's string sanitization of invalid UTF-8, which re-encoding
		// would not preserve byte-for-byte).
		if !utf8.ValidString(req.Graph) {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		req2, err := DecodeQuery(enc)
		if err != nil {
			t.Fatalf("re-decode of %s: %v", enc, err)
		}
		if *req != *req2 {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, req2)
		}
	})
}

// FuzzDecodeBatch holds DecodeBatch to the same contract: no input
// panics, and any accepted batch is well-formed — non-empty and under the
// cap, every entry a known op with non-negative ids and in-range eps,
// workers bounded, and the whole request round-trippable through the wire
// encoding. Seeds cover the acceptance and each rejection class; the
// committed corpus under testdata/fuzz/FuzzDecodeBatch extends them.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(`{"graph":"g","queries":[{"op":"dist","u":0,"v":5},{"op":"girth"},{"op":"maxflow","u":1,"v":2}]}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"stflow","u":0,"v":5,"eps":0.25}],"workers":4}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"dualsssp","source":3}]}`))
	f.Add([]byte(`{"graph":"g","queries":[]}`))
	f.Add([]byte(`{"graph":"","queries":[{"op":"girth"}]}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"warp"}]}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"dist","u":-1}]}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"stcut","eps":1.5}]}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"girth"}],"workers":-1}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"girth","bogus":true}]}`))
	f.Add([]byte(`{"graph":"g","queries":[{"op":"girth"}]} trailing`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeBatch(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if req.Graph == "" {
			t.Fatal("accepted batch with empty graph id")
		}
		if len(req.Queries) == 0 || len(req.Queries) > MaxBatchQueries {
			t.Fatalf("accepted batch of %d queries", len(req.Queries))
		}
		if req.Workers < 0 || req.Workers > MaxBatchWorkers {
			t.Fatalf("accepted workers=%d", req.Workers)
		}
		for i, q := range req.Queries {
			if !opSet[q.Op] {
				t.Fatalf("accepted unknown op %q", q.Op)
			}
			if q.U < 0 || q.V < 0 || q.Source < 0 {
				t.Fatalf("accepted negative ids: %+v", q)
			}
			if q.Eps < 0 || q.Eps >= 1 {
				t.Fatalf("accepted eps %v", q.Eps)
			}
			if err := q.Query().Validate(); err != nil {
				t.Fatalf("accepted entry %d maps to invalid query: %v", i, err)
			}
		}
		if !utf8.ValidString(req.Graph) {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		req2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of %s: %v", enc, err)
		}
		if req.Graph != req2.Graph || req.Workers != req2.Workers || len(req.Queries) != len(req2.Queries) {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, req2)
		}
		for i := range req.Queries {
			if req.Queries[i] != req2.Queries[i] {
				t.Fatalf("round trip changed query %d: %+v -> %+v", i, req.Queries[i], req2.Queries[i])
			}
		}
	})
}
