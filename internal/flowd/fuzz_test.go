package flowd

import (
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzDecodeQuery holds DecodeQuery to its contract: no input panics, and
// any accepted request is well-formed (known op, non-negative ids, eps in
// range, round-trippable through the wire encoding). Seeds cover every op
// plus the rejection classes; the committed corpus under
// testdata/fuzz/FuzzDecodeQuery extends them.
func FuzzDecodeQuery(f *testing.F) {
	for _, op := range Ops {
		f.Add([]byte(`{"graph":"g","op":"` + op + `","u":0,"v":5,"source":2,"eps":0.5}`))
	}
	f.Add([]byte(`{"graph":"g","op":"dist"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"graph":"g","op":"dist","u":-1}`))
	f.Add([]byte(`{"graph":"g","op":"dist","eps":1.5}`))
	f.Add([]byte(`{"graph":"g","op":"dist","bogus":true}`))
	f.Add([]byte(`{"graph":"g","op":"dist"} trailing`))
	f.Add([]byte(`{"graph":"g","op":"dist","u":9223372036854775807}`))
	f.Add([]byte(`{"graph":"x","op":"girth"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeQuery(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if req.Graph == "" {
			t.Fatal("accepted request with empty graph id")
		}
		if !opSet[req.Op] {
			t.Fatalf("accepted unknown op %q", req.Op)
		}
		if req.U < 0 || req.V < 0 || req.Source < 0 {
			t.Fatalf("accepted negative ids: %+v", req)
		}
		if req.Eps < 0 || req.Eps >= 1 {
			t.Fatalf("accepted eps %v", req.Eps)
		}
		// Accepted requests survive the wire round trip losslessly (modulo
		// JSON's string sanitization of invalid UTF-8, which re-encoding
		// would not preserve byte-for-byte).
		if !utf8.ValidString(req.Graph) {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		req2, err := DecodeQuery(enc)
		if err != nil {
			t.Fatalf("re-decode of %s: %v", enc, err)
		}
		if *req != *req2 {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, req2)
		}
	})
}
