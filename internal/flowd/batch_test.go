package flowd

import (
	"context"
	"strings"
	"testing"

	"planarflow"
	"planarflow/internal/store"
)

// TestBatchEndToEnd drives the acceptance shape of the batch plane: B=16
// mixed-family queries in one request, per-query isolation (the one bad
// query yields its own error entry, every other entry succeeds), answers
// equal to singleton requests, and exactly one store acquisition for the
// whole batch.
func TestBatchEndToEnd(t *testing.T) {
	c, st := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	spec := store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 3, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
	reg, err := c.Register(ctx, "g", spec)
	if err != nil {
		t.Fatal(err)
	}
	n, faces := reg.N, reg.Faces

	queries := []BatchQuery{
		{Op: "dist", U: 0, V: n - 1},
		{Op: "maxflow", U: 0, V: n - 1},
		{Op: "dualdist", U: 0, V: faces - 1},
		{Op: "dualsssp", Source: 1},
		{Op: "girth"},
		{Op: "minstcut", U: 0, V: n - 1},
		{Op: "dist", U: 3, V: 17},
		{Op: "stflow", U: 0, V: n - 1, Eps: 0.1},
		{Op: "dist", U: 0, V: n + 500}, // out of range: fails alone
		{Op: "stcut", U: 0, V: n - 1},
		{Op: "dirdist", U: 2, V: 9},
		{Op: "dist", U: 1, V: 2},
		{Op: "dualdist", U: 1, V: 2},
		{Op: "dist", U: 5, V: 30},
		{Op: "maxflow", U: 1, V: n - 2},
		{Op: "dist", U: 7, V: 11},
	}
	const badIdx = 8

	resp, err := c.QueryBatch(ctx, BatchRequest{Graph: "g", Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(resp.Results), len(queries))
	}
	for i, res := range resp.Results {
		if i == badIdx {
			if res.Error == "" || !strings.Contains(res.Error, "out of") {
				t.Fatalf("bad query %d: error %q, want vertex-range error", i, res.Error)
			}
			continue
		}
		if res.Error != "" {
			t.Fatalf("query %d (%s) failed: %s", i, res.Op, res.Error)
		}
		if res.Op != queries[i].Op {
			t.Fatalf("query %d: op %q answered as %q", i, queries[i].Op, res.Op)
		}
	}

	// Each batch entry must equal the singleton-request answer.
	for i, q := range queries {
		if i == badIdx {
			continue
		}
		single, err := c.Query(ctx, QueryRequest{Graph: "g", Op: q.Op, U: q.U, V: q.V, Source: q.Source, Eps: q.Eps})
		if err != nil {
			t.Fatal(err)
		}
		res := resp.Results[i]
		if res.Value != single.Value || res.NegCycle != single.NegCycle {
			t.Fatalf("query %d (%s): batch value %d, singleton %d", i, q.Op, res.Value, single.Value)
		}
	}

	// The whole batch was one store acquisition: 1 miss for the batch plus
	// 1 hit per singleton re-check.
	snap := st.Snapshot()
	if got := snap.Hits + snap.Misses; got != 1+int64(len(queries)-1) {
		t.Fatalf("store lookups %d, want %d (one per batch + one per singleton)", got, 1+len(queries)-1)
	}
	if snap.Misses != 1 {
		t.Fatalf("misses %d, want 1 (the batch's single acquisition)", snap.Misses)
	}
}

// TestBatchRejects pins the strict decoder behavior at the HTTP surface.
func TestBatchRejects(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	if _, err := c.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 4, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		req  BatchRequest
		frag string
	}{
		{BatchRequest{Graph: "nope", Queries: []BatchQuery{{Op: "girth"}}}, "404"},
		{BatchRequest{Graph: "g"}, "empty query list"},
		{BatchRequest{Graph: "g", Queries: []BatchQuery{{Op: "warp"}}}, "unknown op"},
		{BatchRequest{Graph: "g", Queries: []BatchQuery{{Op: "dist", U: -1}}}, "negative id"},
		{BatchRequest{Graph: "g", Queries: []BatchQuery{{Op: "stflow", Eps: 2}}}, "eps"},
		{BatchRequest{Graph: "g", Queries: []BatchQuery{{Op: "girth"}}, Workers: 1000}, "workers"},
		{BatchRequest{Graph: "g", Queries: make([]BatchQuery, MaxBatchQueries+1)}, "exceeds cap"},
	}
	for _, tc := range cases {
		if _, err := c.QueryBatch(ctx, tc.req); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("QueryBatch(%.40v...) error %v, want fragment %q", tc.req, err, tc.frag)
		}
	}
}

// TestRegisterWarmMovesColdStart asserts ?warm=1 builds the serving
// substrates at registration: the first query afterwards is a store hit
// with zero Build rounds.
func TestRegisterWarmMovesColdStart(t *testing.T) {
	c, st := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	reg, err := c.RegisterWarm(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 5, WLo: 1, WHi: 9, CLo: 1, CHi: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Warmed {
		t.Fatal("register with ?warm=1 did not report Warmed")
	}
	if snap := st.Snapshot(); snap.Builds == 0 {
		t.Fatalf("no substrates built by warm registration: %+v", snap)
	}
	resp, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "maxflow", U: 0, V: reg.N - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hit {
		t.Fatal("first query after warm registration missed the bundle")
	}
	if resp.Rounds.Build != 0 {
		t.Fatalf("first query after warm registration paid Build=%d rounds", resp.Rounds.Build)
	}
}

// TestStatszFamilies asserts the per-family traffic counters: counts,
// errors and rounds per op, across singleton and batch traffic.
func TestStatszFamilies(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	reg, err := c.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 5, Cols: 5, Seed: 2, WLo: 1, WHi: 9, CLo: 1, CHi: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: reg.N - 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "maxflow", U: 0, V: reg.N - 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "maxflow", U: 2, V: 2}); err == nil {
		t.Fatal("same-vertex maxflow did not error")
	}
	if _, err := c.QueryBatch(ctx, BatchRequest{Graph: "g", Queries: []BatchQuery{
		{Op: "dist", U: 1, V: 2}, {Op: "girth"},
	}}); err != nil {
		t.Fatal(err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fam := stats.Families
	if fam == nil {
		t.Fatal("statsz has no families section")
	}
	if f := fam["dist"]; f.Count != 4 || f.Errors != 0 {
		t.Fatalf("dist counters %+v, want count=4 errors=0", f)
	}
	if f := fam["maxflow"]; f.Count != 2 || f.Errors != 1 || f.Rounds == 0 {
		t.Fatalf("maxflow counters %+v, want count=2 errors=1 rounds>0", f)
	}
	if f := fam["girth"]; f.Count != 1 || f.Rounds == 0 {
		t.Fatalf("girth counters %+v, want count=1 rounds>0", f)
	}
}

// TestBatchEqualsLibrary cross-checks the wire batch against the library's
// DoBatch on the same spec.
func TestBatchEqualsLibrary(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	spec := store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 11, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
	reg, err := c.Register(ctx, "g", spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	queries := []planarflow.Query{
		planarflow.DistQuery(0, reg.N-1),
		planarflow.MaxFlowQuery(0, reg.N-1),
		planarflow.GirthQuery(),
	}
	want, err := p.DoBatch(ctx, queries, planarflow.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.QueryBatch(ctx, BatchRequest{Graph: "g", Queries: []BatchQuery{
		{Op: "dist", U: 0, V: reg.N - 1},
		{Op: "maxflow", U: 0, V: reg.N - 1},
		{Op: "girth"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if resp.Results[i].Error != "" {
			t.Fatalf("wire query %d failed: %s", i, resp.Results[i].Error)
		}
		if resp.Results[i].Value != want[i].Value {
			t.Fatalf("query %d: wire %d, library %d", i, resp.Results[i].Value, want[i].Value)
		}
	}
}
