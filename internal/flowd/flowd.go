// Package flowd is the query daemon over the multi-graph store: an
// HTTP/JSON surface that registers (generates) graphs and serves the
// paper's query families — distances, dual SSSP, max flow / min cut,
// girth — from the prepared-substrate cache, with per-request
// cancellation plumbed down to substrate-build checkpoints and the
// store's hit/miss/build/evict accounting exported on /statsz.
//
// Endpoints:
//
//	POST /v1/graphs   {"id": ..., "spec": {...}}   register a generated graph
//	                  ?warm=1                      eagerly build the serving substrates
//	GET  /v1/graphs                                list graphs with serving stats
//	POST /v1/query    QueryRequest                 run one query
//	POST /v1/batch    BatchRequest                 run a batch under one bundle pin
//	POST /v1/snapshot SnapshotRequest              persist resident bundles to the disk tier
//	GET  /statsz                                   store metrics snapshot + per-family counters
//	GET  /healthz                                  liveness
//
// Requests decode straight onto the library's query plane: a QueryRequest
// is a planarflow.Query plus a graph id, and execution is one store.Do
// (store.DoBatch for /v1/batch) — there is no per-family dispatch in the
// daemon. The wire protocol is strict: unknown fields are rejected, bodies
// are size-capped, and every error is a JSON {"error": ...} with a
// meaningful status code. Client (client.go) is the matching Go client.
package flowd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"planarflow"
	"planarflow/internal/obs"
	"planarflow/internal/store"
	"planarflow/internal/wire"
)

// maxBodyBytes caps request bodies: specs and queries are tiny; anything
// bigger is abuse.
const maxBodyBytes = 1 << 20

// Ops understood by the query endpoints — the wire names of
// planarflow.QueryKinds — and the argument fields each uses. U/V double
// as the face pair of dualdist.
//
//	dist, dirdist   U, V  (vertices)
//	dualdist        U, V  (faces)
//	dualsssp        Source (face)
//	maxflow,        U, V  (s, t)
//	minstcut        U, V
//	stflow, stcut   U, V, Eps (st-planar approximations; Eps=0 exact)
//	girth, dirgirth, globalmincut   (no arguments)
var Ops = func() []string {
	ops := make([]string, len(planarflow.QueryKinds))
	for i, k := range planarflow.QueryKinds {
		ops[i] = string(k)
	}
	return ops
}()

var opSet = func() map[string]bool {
	m := make(map[string]bool, len(Ops))
	for _, op := range Ops {
		m[op] = true
	}
	return m
}()

// QueryRequest is one query against a registered graph: a
// planarflow.Query's wire shape plus the graph id.
type QueryRequest struct {
	Graph  string  `json:"graph"`
	Op     string  `json:"op"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	Source int     `json:"source,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	// Simulated forces the label-backed ops through the simulated CONGEST
	// route instead of the decode engine (identical answer and rounds; an
	// audit knob, not a serving one).
	Simulated bool `json:"simulated,omitempty"`
}

// Query maps the request onto the library's first-class query value — the
// op string is the QueryKind, the argument fields carry over verbatim.
// The wire Rounds carries only the totals, so the per-phase breakdown is
// not requested.
func (r *QueryRequest) Query() planarflow.Query {
	return planarflow.Query{
		Kind: planarflow.QueryKind(r.Op),
		U:    r.U, V: r.V, Source: r.Source, Eps: r.Eps,
		NoPhases:  true,
		Simulated: r.Simulated,
	}
}

// Rounds is the wire-compact round report: the simulated CONGEST cost of
// the query, split into one-time substrate construction (nonzero only for
// the request that triggered a build) and per-query work. The point-decode
// ops (dist, dirdist, dualdist) always report zero Query rounds — they
// decode locally — so a nonzero report on them is pure Build cost of the
// triggering request, the same split every other op reports.
type Rounds struct {
	Total int64 `json:"total"`
	Build int64 `json:"build"`
	Query int64 `json:"query"`
}

// QueryResponse is the result of one query. Value is the scalar answer
// (distance, flow value, cut value, girth weight; planarflow.Inf means
// unreachable/acyclic). Hit reports whether the graph's bundle was
// resident when the request arrived.
type QueryResponse struct {
	Graph      string  `json:"graph"`
	Op         string  `json:"op"`
	Value      int64   `json:"value"`
	Dist       []int64 `json:"dist,omitempty"`      // dualsssp distances per face
	CutEdges   []int   `json:"cut_edges,omitempty"` // cut-valued ops
	NegCycle   bool    `json:"neg_cycle,omitempty"`
	Iterations int     `json:"iterations,omitempty"` // maxflow binary-search steps
	Hit        bool    `json:"hit"`
	Rounds     Rounds  `json:"rounds"`
	WallMS     float64 `json:"wall_ms"`
}

// RegisterRequest registers a generated graph under an id.
type RegisterRequest struct {
	ID   string          `json:"id"`
	Spec store.GraphSpec `json:"spec"`
}

// RegisterResponse echoes the registered graph's shape. Warmed reports
// that the ?warm=1 prefetch built the serving substrates before the
// response was written.
type RegisterResponse struct {
	ID     string `json:"id"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Faces  int    `json:"faces"`
	Warmed bool   `json:"warmed,omitempty"`
}

// SnapshotRequest asks the daemon to persist prepared substrates to its
// snapshot directory: one graph when Graph is set, every resident bundle
// otherwise. Requires the daemon to run with -snapshot-dir.
type SnapshotRequest struct {
	Graph string `json:"graph,omitempty"`
}

// SnapshotResponse reports how many snapshots the request wrote.
type SnapshotResponse struct {
	Written int `json:"written"`
}

// FamilyStats is the per-query-family traffic counter exported on
// /statsz: how many queries of the family ran, how many errored, and the
// total simulated rounds they reported (build + query) — enough to see
// the traffic mix and where the round budget goes.
type FamilyStats struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	Rounds int64 `json:"rounds"`
}

// StatsResponse is the /statsz payload.
type StatsResponse struct {
	Store    store.Stats            `json:"store"`
	HitRate  float64                `json:"hit_rate"`
	UptimeMS float64                `json:"uptime_ms"`
	Families map[string]FamilyStats `json:"families,omitempty"`
	// WriteErrors counts HTTP responses whose JSON encoding failed midway
	// (a client that hung up while the body was streaming): the response
	// on the wire was truncated, and this is where that becomes visible.
	WriteErrors int64 `json:"write_errors"`
	// Transport is the binary wire plane's counters (connections, frames,
	// bytes, write coalescing, batch folding), present once the daemon has
	// a wire listener attached. The fleet work reads these to see whether
	// replicas are wire-bound or engine-bound.
	Transport *wire.Stats `json:"transport,omitempty"`
	// Latency digests the end-to-end latency histograms per
	// "transport/family" (count, mean, p50/p90/p99, max) — the same
	// histograms /metricsz exposes in full.
	Latency map[string]HistSummary `json:"latency,omitempty"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// checkArgs is the op/argument validation shared by the single-query and
// batch decoders: known op, non-negative ids, eps in [0, 1) whatever the
// op (the wire is stricter than Query.Validate, which only ranges eps for
// the approximate families).
func checkArgs(op string, u, v, source int, eps float64) error {
	if !opSet[op] {
		return fmt.Errorf("unknown op %q", op)
	}
	if u < 0 || v < 0 || source < 0 {
		return fmt.Errorf("negative id (u=%d v=%d source=%d)", u, v, source)
	}
	if eps < 0 || eps >= 1 {
		return fmt.Errorf("eps=%v out of [0, 1)", eps)
	}
	return nil
}

// DecodeQuery parses and shape-validates one query request. It is strict
// — unknown fields, trailing garbage, missing graph/op, negative ids and
// out-of-range eps are all rejected — and total: no input may panic (the
// fuzz test holds it to that). Range checks that need the graph (vertex
// < N, face < NumFaces) happen at query time.
func DecodeQuery(data []byte) (*QueryRequest, error) {
	var req QueryRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("flowd: bad query: %w", err)
	}
	if dec.More() {
		return nil, errors.New("flowd: bad query: trailing data after JSON object")
	}
	if req.Graph == "" {
		return nil, errors.New("flowd: bad query: missing graph id")
	}
	if err := checkArgs(req.Op, req.U, req.V, req.Source, req.Eps); err != nil {
		return nil, fmt.Errorf("flowd: bad query: %s", err)
	}
	return &req, nil
}

// Server is the HTTP handler over one store, and (via Wire) the handler
// behind the binary wire transport — both planes execute through the
// same store.Do/DoBatch calls, the same per-family counters, and the
// same telemetry plane (obs.go: spans, latency histograms, /metricsz).
type Server struct {
	st    *store.Store
	mux   *http.ServeMux
	start time.Time

	famMu sync.Mutex
	fam   map[string]*FamilyStats

	// writeErrs counts writeJSON encode failures (half-written HTTP
	// responses), exported on /statsz.
	writeErrs atomic.Int64

	wireMu  sync.Mutex
	wireSrv *wire.Server

	// Peer plane (peer.go): the lazily built HTTP client restores fetch
	// snapshots with.
	peerMu sync.Mutex
	peerHC *http.Client

	// Telemetry plane (initObs): structured logger, span tracer, request
	// id sequence for the HTTP plane (wire requests key by frame id), the
	// prebuilt (transport, family) metric grid and per-phase histograms.
	log       *slog.Logger
	tracer    *obs.Tracer
	reg       *obs.Registry
	reqSeq    atomic.Uint64
	fmGrid    map[famKey]*famMetrics
	phaseHist [obs.NumPhases]*obs.Histogram
}

// NewServer wraps st in the daemon's HTTP surface with default
// telemetry options.
func NewServer(st *store.Store) *Server { return NewServerWith(st, ServerOptions{}) }

// NewServerWith wraps st with explicit telemetry options.
func NewServerWith(st *store.Store, opt ServerOptions) *Server {
	s := &Server{st: st, mux: http.NewServeMux(), start: time.Now(), fam: map[string]*FamilyStats{}}
	s.initObs(opt)
	s.mux.HandleFunc("POST /v1/graphs", s.handleRegister)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/snapshot/{graph}", s.handleFetchSnapshot)
	s.mux.HandleFunc("POST /v1/restore", s.handleRestore)
	s.mux.HandleFunc("POST /v1/warm", s.handleWarm)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	s.mux.HandleFunc("GET /versionz", s.handleVersionz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// recordFamily bumps the op's traffic counters: one query executed, its
// reported rounds, and whether it errored.
func (s *Server) recordFamily(op string, rounds int64, errored bool) {
	s.famMu.Lock()
	defer s.famMu.Unlock()
	f := s.fam[op]
	if f == nil {
		f = &FamilyStats{}
		s.fam[op] = f
	}
	f.Count++
	f.Rounds += rounds
	if errored {
		f.Errors++
	}
}

// familySnapshot copies the per-family counters for /statsz.
func (s *Server) familySnapshot() map[string]FamilyStats {
	s.famMu.Lock()
	defer s.famMu.Unlock()
	if len(s.fam) == 0 {
		return nil
	}
	out := make(map[string]FamilyStats, len(s.fam))
	for op, f := range s.fam {
		out[op] = *f
	}
	return out
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store returns the underlying store (the traffic driver reads metrics
// directly when it runs the server in-process).
func (s *Server) Store() *store.Store { return s.st }

// writeJSON writes one JSON response. An Encode failure here means the
// response left half-written (the status line is already gone, so the
// client sees a truncated body, not an error) — it cannot be repaired,
// but it must not be silent either: the daemon counts it and /statsz
// exposes the count as write_errors.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.writeErrs.Add(1)
		s.log.Warn("response write failed", "status", status, "err", err.Error())
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// statusOf maps the library's sentinel errors to HTTP statuses: unknown
// graphs are 404, argument and precondition violations 400, canceled or
// timed-out requests 499/504, everything else 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, store.ErrUnknownGraph), errors.Is(err, ErrNoSnapshot):
		return http.StatusNotFound
	case errors.Is(err, store.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, store.ErrGraphLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, store.ErrSpillDisabled):
		return http.StatusBadRequest
	case errors.Is(err, planarflow.ErrVertexRange),
		errors.Is(err, planarflow.ErrFaceRange),
		errors.Is(err, planarflow.ErrSameVertex),
		errors.Is(err, planarflow.ErrSameFaceRequired),
		errors.Is(err, planarflow.ErrEpsilonRange),
		errors.Is(err, planarflow.ErrNegativeCycle),
		errors.Is(err, planarflow.ErrNegativeWeight),
		errors.Is(err, planarflow.ErrNonPositiveWeight),
		errors.Is(err, planarflow.ErrNilGraph),
		errors.Is(err, planarflow.ErrUnknownQueryKind),
		errors.Is(err, planarflow.ErrUnknownSubstrate),
		errors.Is(err, planarflow.ErrLeafLimitRange):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("flowd: reading body: %w", err)
	}
	return data, nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req RegisterRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad register: " + err.Error()})
		return
	}
	if req.ID == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad register: missing id"})
		return
	}
	gr, err := s.st.RegisterSpec(req.ID, req.Spec)
	if err != nil {
		s.log.Warn("register failed", "graph", req.ID, "err", err.Error())
		s.writeError(w, err)
		return
	}
	resp := RegisterResponse{ID: req.ID, N: gr.N(), M: gr.M(), Faces: gr.NumFaces()}
	// ?warm=1 prefetches the serving substrates before the response is
	// written, so cold-start construction happens here instead of on the
	// first user query. The graph stays registered if warming is cut short
	// by a dropped connection — the next query resumes the build.
	if warm := r.URL.Query().Get("warm"); warm == "1" || warm == "true" {
		if err := s.st.Warm(r.Context(), req.ID); err != nil {
			s.writeError(w, err)
			return
		}
		resp.Warmed = true
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot persists resident bundles to the store's disk tier.
// The write is synchronous: a 200 means the snapshots are on disk, so an
// operator can snapshot-then-restart knowing the warm set will survive.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req SnapshotRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad snapshot request: " + err.Error()})
		return
	}
	var ids []string
	if req.Graph != "" {
		ids = append(ids, req.Graph)
	}
	written, err := s.st.SnapshotResident(ids...)
	if err != nil {
		s.log.Warn("snapshot failed", "graph", req.Graph, "err", err.Error())
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{Written: written})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.st.Snapshot().PerGraph)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.st.Snapshot()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Store:       snap,
		HitRate:     snap.HitRate(),
		UptimeMS:    float64(time.Since(s.start).Microseconds()) / 1000,
		Families:    s.familySnapshot(),
		WriteErrors: s.writeErrs.Load(),
		Transport:   s.wireStats(),
		Latency:     s.latencySnapshot(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sp, ctx := s.beginSpan(r.Context(), "http", httpTrace(r))
	sp.Family = decodeFamily
	data, err := readBody(w, r)
	if err != nil {
		sp.MarkSince(obs.PhaseDecode, sp.Start)
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		s.finishRequest(sp, err.Error())
		return
	}
	req, err := DecodeQuery(data)
	sp.MarkSince(obs.PhaseDecode, sp.Start)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		s.finishRequest(sp, err.Error())
		return
	}
	sp.Family, sp.Graph, sp.Route = req.Op, req.Graph, routeOf(req.Simulated)
	resp, err := s.runQuery(ctx, req)
	if err != nil {
		s.writeError(w, err)
		s.finishRequest(sp, err.Error())
		return
	}
	// Encode and write fuse on the HTTP plane: the JSON encoder streams
	// into the ResponseWriter (PhaseWrite stays zero here).
	t0 := time.Now()
	s.writeJSON(w, http.StatusOK, resp)
	sp.MarkSince(obs.PhaseEncode, t0)
	s.finishRequest(sp, "")
}

func roundsOf(r planarflow.Rounds) Rounds {
	return Rounds{Total: r.Total, Build: r.Build, Query: r.Query}
}

// answerFields copies an Answer's kind-discriminated payload into the wire
// response. Flow assignments and cut bisections stay off the wire (they
// are O(m)/O(n) payloads; the wire carries the witness edge set instead).
func (resp *QueryResponse) answerFields(a *planarflow.Answer) {
	resp.Value = a.Value
	resp.Dist = a.Dist
	resp.CutEdges = a.Edges
	resp.NegCycle = a.NegCycle
	resp.Iterations = a.Iterations
	resp.Rounds = roundsOf(a.Rounds)
}

// runQuery executes one decoded query against the store: decoder output
// maps onto a planarflow.Query and execution is a single store.Do — the
// per-family dispatch lives in the library's query plane, not here.
func (s *Server) runQuery(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	begin := time.Now()
	a, hit, err := s.st.Do(ctx, req.Graph, req.Query())
	var rounds int64
	if a != nil {
		rounds = a.Rounds.Total
	}
	s.recordFamily(req.Op, rounds, err != nil)
	if err != nil {
		return nil, err
	}
	resp := &QueryResponse{Graph: req.Graph, Op: req.Op, Hit: hit}
	resp.answerFields(a)
	resp.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	return resp, nil
}
