// Package flowd is the query daemon over the multi-graph store: an
// HTTP/JSON surface that registers (generates) graphs and serves the
// paper's query families — distances, dual SSSP, max flow / min cut,
// girth — from the prepared-substrate cache, with per-request
// cancellation plumbed down to substrate-build checkpoints and the
// store's hit/miss/build/evict accounting exported on /statsz.
//
// Endpoints:
//
//	POST /v1/graphs   {"id": ..., "spec": {...}}   register a generated graph
//	GET  /v1/graphs                                list graphs with serving stats
//	POST /v1/query    QueryRequest                 run one query
//	GET  /statsz                                   store metrics snapshot
//	GET  /healthz                                  liveness
//
// The wire protocol is strict: unknown fields are rejected, bodies are
// size-capped, and every error is a JSON {"error": ...} with a meaningful
// status code. Client (client.go) is the matching Go client.
package flowd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"planarflow"
	"planarflow/internal/store"
)

// maxBodyBytes caps request bodies: specs and queries are tiny; anything
// bigger is abuse.
const maxBodyBytes = 1 << 20

// Ops understood by the query endpoint, and the argument fields each
// uses. U/V double as the face pair of dualdist.
//
//	dist, dirdist   U, V  (vertices)
//	dualdist        U, V  (faces)
//	dualsssp        Source (face)
//	maxflow,        U, V  (s, t)
//	minstcut        U, V
//	stflow, stcut   U, V, Eps (st-planar approximations; Eps=0 exact)
//	girth, dirgirth, globalmincut   (no arguments)
var Ops = []string{
	"dist", "dirdist", "dualdist", "dualsssp",
	"maxflow", "minstcut", "stflow", "stcut",
	"girth", "dirgirth", "globalmincut",
}

var opSet = func() map[string]bool {
	m := make(map[string]bool, len(Ops))
	for _, op := range Ops {
		m[op] = true
	}
	return m
}()

// QueryRequest is one query against a registered graph.
type QueryRequest struct {
	Graph  string  `json:"graph"`
	Op     string  `json:"op"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	Source int     `json:"source,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
}

// Rounds is the wire-compact round report: the simulated CONGEST cost of
// the query, split into one-time substrate construction (nonzero only for
// the request that triggered a build) and per-query work. The point-decode
// ops (dist, dirdist, dualdist) always report zero: they decode locally at
// no per-query round cost and their signatures carry no round report, so
// any build they trigger is visible in /statsz build_rounds rather than on
// the response.
type Rounds struct {
	Total int64 `json:"total"`
	Build int64 `json:"build"`
	Query int64 `json:"query"`
}

// QueryResponse is the result of one query. Value is the scalar answer
// (distance, flow value, cut value, girth weight; planarflow.Inf means
// unreachable/acyclic). Hit reports whether the graph's bundle was
// resident when the request arrived.
type QueryResponse struct {
	Graph      string  `json:"graph"`
	Op         string  `json:"op"`
	Value      int64   `json:"value"`
	Dist       []int64 `json:"dist,omitempty"`      // dualsssp distances per face
	CutEdges   []int   `json:"cut_edges,omitempty"` // cut-valued ops
	NegCycle   bool    `json:"neg_cycle,omitempty"`
	Iterations int     `json:"iterations,omitempty"` // maxflow binary-search steps
	Hit        bool    `json:"hit"`
	Rounds     Rounds  `json:"rounds"`
	WallMS     float64 `json:"wall_ms"`
}

// RegisterRequest registers a generated graph under an id.
type RegisterRequest struct {
	ID   string          `json:"id"`
	Spec store.GraphSpec `json:"spec"`
}

// RegisterResponse echoes the registered graph's shape.
type RegisterResponse struct {
	ID    string `json:"id"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Faces int    `json:"faces"`
}

// StatsResponse is the /statsz payload.
type StatsResponse struct {
	Store    store.Stats `json:"store"`
	HitRate  float64     `json:"hit_rate"`
	UptimeMS float64     `json:"uptime_ms"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// DecodeQuery parses and shape-validates one query request. It is strict
// — unknown fields, trailing garbage, missing graph/op, negative ids and
// out-of-range eps are all rejected — and total: no input may panic (the
// fuzz test holds it to that). Range checks that need the graph (vertex
// < N, face < NumFaces) happen at query time.
func DecodeQuery(data []byte) (*QueryRequest, error) {
	var req QueryRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("flowd: bad query: %w", err)
	}
	if dec.More() {
		return nil, errors.New("flowd: bad query: trailing data after JSON object")
	}
	if req.Graph == "" {
		return nil, errors.New("flowd: bad query: missing graph id")
	}
	if !opSet[req.Op] {
		return nil, fmt.Errorf("flowd: bad query: unknown op %q", req.Op)
	}
	if req.U < 0 || req.V < 0 || req.Source < 0 {
		return nil, fmt.Errorf("flowd: bad query: negative id (u=%d v=%d source=%d)", req.U, req.V, req.Source)
	}
	if req.Eps < 0 || req.Eps >= 1 {
		return nil, fmt.Errorf("flowd: bad query: eps=%v out of [0, 1)", req.Eps)
	}
	return &req, nil
}

// Server is the HTTP handler over one store.
type Server struct {
	st    *store.Store
	mux   *http.ServeMux
	start time.Time
}

// NewServer wraps st in the daemon's HTTP surface.
func NewServer(st *store.Store) *Server {
	s := &Server{st: st, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/graphs", s.handleRegister)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store returns the underlying store (the traffic driver reads metrics
// directly when it runs the server in-process).
func (s *Server) Store() *store.Store { return s.st }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// statusOf maps the library's sentinel errors to HTTP statuses: unknown
// graphs are 404, argument and precondition violations 400, canceled or
// timed-out requests 499/504, everything else 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, store.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, store.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, store.ErrGraphLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, planarflow.ErrVertexRange),
		errors.Is(err, planarflow.ErrFaceRange),
		errors.Is(err, planarflow.ErrSameVertex),
		errors.Is(err, planarflow.ErrSameFaceRequired),
		errors.Is(err, planarflow.ErrEpsilonRange),
		errors.Is(err, planarflow.ErrNegativeCycle),
		errors.Is(err, planarflow.ErrNegativeWeight),
		errors.Is(err, planarflow.ErrNonPositiveWeight),
		errors.Is(err, planarflow.ErrNilGraph):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("flowd: reading body: %w", err)
	}
	return data, nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req RegisterRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad register: " + err.Error()})
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "flowd: bad register: missing id"})
		return
	}
	gr, err := s.st.RegisterSpec(req.ID, req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{ID: req.ID, N: gr.N(), M: gr.M(), Faces: gr.NumFaces()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.st.Snapshot().PerGraph)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.st.Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		Store:    snap,
		HitRate:  snap.HitRate(),
		UptimeMS: float64(time.Since(s.start).Microseconds()) / 1000,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	req, err := DecodeQuery(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp, err := s.runQuery(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func roundsOf(r planarflow.Rounds) Rounds {
	return Rounds{Total: r.Total, Build: r.Build, Query: r.Query}
}

// runQuery executes one decoded query against the store, pinned and bound
// to ctx for the duration.
func (s *Server) runQuery(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	resp := &QueryResponse{Graph: req.Graph, Op: req.Op}
	begin := time.Now()
	err := s.st.With(ctx, req.Graph, func(pg *planarflow.PreparedGraph, hit bool) error {
		resp.Hit = hit
		switch req.Op {
		case "dist":
			v, err := pg.Dist(req.U, req.V)
			resp.Value = v
			return err
		case "dirdist":
			v, err := pg.DirectedDist(req.U, req.V)
			resp.Value = v
			return err
		case "dualdist":
			v, err := pg.DualDist(req.U, req.V)
			resp.Value = v
			return err
		case "dualsssp":
			res, err := pg.DualSSSP(req.Source)
			if err != nil {
				return err
			}
			resp.Dist, resp.NegCycle, resp.Rounds = res.Dist, res.NegCycle, roundsOf(res.Rounds)
			return nil
		case "maxflow":
			res, err := pg.MaxFlow(req.U, req.V)
			if err != nil {
				return err
			}
			resp.Value, resp.Iterations, resp.Rounds = res.Value, res.Iterations, roundsOf(res.Rounds)
			return nil
		case "minstcut":
			res, err := pg.MinSTCut(req.U, req.V)
			if err != nil {
				return err
			}
			resp.Value, resp.CutEdges, resp.Rounds = res.Value, res.CutEdges, roundsOf(res.Rounds)
			return nil
		case "stflow":
			res, err := pg.ApproxMaxFlowSTPlanar(req.U, req.V, req.Eps)
			if err != nil {
				return err
			}
			resp.Value, resp.Rounds = res.Value, roundsOf(res.Rounds)
			return nil
		case "stcut":
			res, err := pg.ApproxMinCutSTPlanar(req.U, req.V, req.Eps)
			if err != nil {
				return err
			}
			resp.Value, resp.CutEdges, resp.Rounds = res.Value, res.CutEdges, roundsOf(res.Rounds)
			return nil
		case "girth":
			res, err := pg.Girth()
			if err != nil {
				return err
			}
			resp.Value, resp.CutEdges, resp.Rounds = res.Weight, res.CycleEdges, roundsOf(res.Rounds)
			return nil
		case "dirgirth":
			res, err := pg.DirectedGirth()
			if err != nil {
				return err
			}
			resp.Value, resp.Rounds = res.Weight, roundsOf(res.Rounds)
			return nil
		case "globalmincut":
			res, err := pg.GlobalMinCut()
			if err != nil {
				return err
			}
			resp.Value, resp.CutEdges, resp.Rounds = res.Value, res.CutEdges, roundsOf(res.Rounds)
			return nil
		default:
			return fmt.Errorf("flowd: unknown op %q", req.Op)
		}
	})
	if err != nil {
		return nil, err
	}
	resp.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	return resp, nil
}
