package flowd

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"planarflow/internal/store"
	"planarflow/internal/wire"
)

// newWireDaemon spins up one daemon serving both planes: the HTTP mux on
// an httptest server and the wire transport on an ephemeral loopback TCP
// listener (plus UDS when udsDir is non-empty). Returns the HTTP client,
// the wire address, and the UDS path ("" if unused).
func newWireDaemon(t *testing.T, cfg store.Config, udsDir string) (*Client, *Server, string, string) {
	t.Helper()
	st := store.New(cfg)
	s := NewServer(st)
	hsrv := httptest.NewServer(s)
	t.Cleanup(hsrv.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Wire().Serve(ln)
	t.Cleanup(func() { s.Wire().Close() })

	uds := ""
	if udsDir != "" {
		uds = filepath.Join(udsDir, "flowd.sock")
		uln, err := net.Listen("unix", uds)
		if err != nil {
			t.Fatal(err)
		}
		go s.Wire().Serve(uln)
	}
	return NewClient(hsrv.URL).WithHTTPClient(hsrv.Client()), s, ln.Addr().String(), uds
}

// marshalDeterministic renders a QueryResponse for comparison with the
// timing field zeroed (WallMS is wall clock, everything else must be
// bit-identical between transports).
func marshalDeterministic(t *testing.T, r *QueryResponse) string {
	t.Helper()
	cp := *r
	cp.WallMS = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWireDifferentialIdentity is the tentpole's correctness gate: the
// identical request sequence — every query family on a grid and a
// triangulation, cold through warm — replayed against three identically
// configured daemons, one over HTTP and two over the wire transport
// (TCP and UDS), must produce bit-identical QueryResponses at every
// step: full JSON including hit bits and round counts (WallMS is wall
// clock and excepted). Replaying the whole sequence per daemon means
// cache-state evolution (first query builds, later ones hit) is part of
// what must match — the wire plane is transport, not semantics.
func TestWireDifferentialIdentity(t *testing.T) {
	ctx := context.Background()

	httpRef, _, _, _ := newWireDaemon(t, store.Config{}, "")
	tcpC, _, tcpAddr, _ := newWireDaemon(t, store.Config{}, "")
	udsC, _, _, uds := newWireDaemon(t, store.Config{}, t.TempDir())

	wcTCP := NewWireClient("tcp", tcpAddr, WireOptions{})
	defer wcTCP.Close()
	wcUDS := NewWireClient("unix", uds, WireOptions{PoolSize: 1})
	defer wcUDS.Close()
	targets := []struct {
		name  string
		admin *Client // registers on its own daemon (HTTP control plane)
		query *Client // queries over the wire transport
	}{
		{"wire-tcp", tcpC, tcpC.WithWireTransport(wcTCP)},
		{"wire-uds", udsC, udsC.WithWireTransport(wcUDS)},
	}

	graphs := []struct {
		id   string
		spec store.GraphSpec
	}{
		{"grid", store.GraphSpec{Kind: "grid", Rows: 7, Cols: 7, Seed: 11, WLo: 1, WHi: 9, CLo: 1, CHi: 16}},
		{"tri", store.GraphSpec{Kind: "triangulation", N: 40, Seed: 5, WLo: 1, WHi: 9, CLo: 1, CHi: 16}},
	}
	var gridN int
	for _, g := range graphs {
		reg, err := httpRef.Register(ctx, g.id, g.spec)
		if err != nil {
			t.Fatal(err)
		}
		if g.id == "grid" {
			gridN = reg.N
		}
		for _, tg := range targets {
			if _, err := tg.admin.Register(ctx, g.id, g.spec); err != nil {
				t.Fatalf("%s register: %v", tg.name, err)
			}
		}
		// The same sequence twice: pass 0 exercises cold builds (hit=false,
		// build rounds), pass 1 the warm path (hit=true) — both must match.
		for pass := 0; pass < 2; pass++ {
			for _, req := range FamilyChecks(g.id, reg.N, reg.Faces) {
				want, err := httpRef.Query(ctx, req)
				if err != nil {
					t.Fatalf("%s/%s http: %v", g.id, req.Op, err)
				}
				wantJSON := marshalDeterministic(t, want)
				for _, tg := range targets {
					got, err := tg.query.Query(ctx, req)
					if err != nil {
						t.Fatalf("%s/%s %s: %v", g.id, req.Op, tg.name, err)
					}
					if gotJSON := marshalDeterministic(t, got); gotJSON != wantJSON {
						t.Errorf("%s/%s pass %d: %s answer diverges from http:\n http: %s\n wire: %s",
							g.id, req.Op, pass, tg.name, wantJSON, gotJSON)
					}
				}
			}
		}
	}

	// Batch parity at the same sequence point: the same queries shipped as
	// one OpBatch frame must match the HTTP batch route result for result.
	breq := BatchRequest{Graph: "grid", Queries: []BatchQuery{
		{Op: "dist", U: 0, V: gridN - 1}, {Op: "maxflow", U: 0, V: gridN - 1}, {Op: "girth"},
	}}
	hb, err := httpRef.QueryBatch(ctx, breq)
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range targets {
		wb, err := tg.query.QueryBatch(ctx, breq)
		if err != nil {
			t.Fatalf("%s batch: %v", tg.name, err)
		}
		hb.WallMS, wb.WallMS = 0, 0
		hj, _ := json.Marshal(hb)
		wj, _ := json.Marshal(wb)
		if string(hj) != string(wj) {
			t.Errorf("%s batch diverges:\n http: %s\n wire: %s", tg.name, hj, wj)
		}
	}
}

// TestWireErrorParity pins the error mapping table: each failure class
// must surface with the documented wire status, and the cancellation
// statuses must errors.Is-match the context sentinels as they would
// in-process.
func TestWireErrorParity(t *testing.T) {
	hc, _, addr, _ := newWireDaemon(t, store.Config{}, "")
	wc := NewWireClient("tcp", addr, WireOptions{PoolSize: 1})
	defer wc.Close()
	ctx := context.Background()

	if _, err := hc.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 4, Cols: 4, Seed: 1, WLo: 1, WHi: 5, CLo: 1, CHi: 8}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		req  QueryRequest
		want wire.Status
	}{
		{"unknown graph", QueryRequest{Graph: "nope", Op: "dist", U: 0, V: 1}, wire.StatusNotFound},
		{"bad vertex", QueryRequest{Graph: "g", Op: "dist", U: 0, V: 99999}, wire.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := wc.Query(ctx, tc.req)
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("%s: err = %v, want StatusError", tc.name, err)
		}
		if se.Status != tc.want {
			t.Errorf("%s: status = %s, want %s", tc.name, se.Status, tc.want)
		}
	}

	// Malformed frames at the decode layer: garbage JSON must come back
	// as StatusBadRequest, not kill the connection.
	status, body, err := wc.pool.Do(ctx, wire.OpQuery, []byte("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if status != wire.StatusBadRequest || len(body) == 0 {
		t.Fatalf("garbage query: (%v, %q)", status, body)
	}
	if err := wc.Ping(ctx); err != nil {
		t.Fatalf("conn did not survive a bad request: %v", err)
	}

	// The sentinel mapping itself.
	if !errors.Is(&StatusError{Status: wire.StatusCanceled}, context.Canceled) {
		t.Error("StatusCanceled does not match context.Canceled")
	}
	if !errors.Is(&StatusError{Status: wire.StatusTimeout}, context.DeadlineExceeded) {
		t.Error("StatusTimeout does not match context.DeadlineExceeded")
	}
	if errors.Is(&StatusError{Status: wire.StatusNotFound}, context.Canceled) {
		t.Error("StatusNotFound must not match context.Canceled")
	}
}

// TestCoalescerFoldsBurst drives the micro-coalescer deterministically:
// items enqueued before the dispatcher starts must fold into OpBatch
// frames (observable in the transport counters), and every caller must
// still get its own correct answer.
func TestCoalescerFoldsBurst(t *testing.T) {
	hc, s, addr, _ := newWireDaemon(t, store.Config{}, "")
	ctx := context.Background()
	reg, err := hc.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 7, WLo: 1, WHi: 9, CLo: 1, CHi: 16})
	if err != nil {
		t.Fatal(err)
	}

	wc := &WireClient{pool: wire.NewPool("tcp", addr, 1)}
	wc.co = newCoalescer(wc, 64) // not started: the burst queues first
	defer wc.Close()

	const n = 16
	var wg sync.WaitGroup
	resps := make([]*QueryResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = wc.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: i, V: reg.N - 1 - i})
		}(i)
	}
	// All n are parked in the coalescer's queue; release the dispatcher.
	for len(wc.co.ch) < n {
	}
	wc.co.start()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := hc.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: i, V: reg.N - 1 - i})
		if err != nil {
			t.Fatal(err)
		}
		if resps[i].Value != want.Value || resps[i].Op != "dist" || resps[i].Graph != "g" {
			t.Errorf("query %d: coalesced value %d, http %d", i, resps[i].Value, want.Value)
		}
	}

	cst := wc.TransportStats()
	if cst.CoalescedBatches == 0 || cst.CoalescedQueries < n {
		t.Fatalf("client saw no folding: %+v", cst)
	}
	if cst.CoalescedMax != int64(n) {
		t.Errorf("coalesced_max = %d, want %d (single burst, one graph)", cst.CoalescedMax, n)
	}
	// The server counts the same fold from its side of the wire.
	sst := s.wireStats()
	if sst == nil || sst.CoalescedQueries < n {
		t.Fatalf("server saw no folding: %+v", sst)
	}
	// The fold must not multiply frames: n queries, 1 batch frame.
	if cst.FramesOut >= int64(n) {
		t.Errorf("frames_out = %d for %d coalesced queries — fold did not reduce frames", cst.FramesOut, n)
	}
}

// TestStatszTransportCounters: /statsz (via Client.Stats) exposes the
// wire plane's counters once traffic has flowed.
func TestStatszTransportCounters(t *testing.T) {
	hc, _, addr, _ := newWireDaemon(t, store.Config{}, "")
	ctx := context.Background()
	if _, err := hc.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 4, Cols: 4, Seed: 2, WLo: 1, WHi: 5, CLo: 1, CHi: 8}); err != nil {
		t.Fatal(err)
	}
	wc := NewWireClient("tcp", addr, WireOptions{})
	defer wc.Close()
	qc := hc.WithWireTransport(wc)
	for i := 0; i < 5; i++ {
		if _, err := qc.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: 15}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := hc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tr := st.Transport
	if tr == nil {
		t.Fatal("statsz has no transport block despite wire traffic")
	}
	if tr.ConnsTotal < 1 || tr.FramesIn < 5 || tr.FramesOut < 5 || tr.BytesIn == 0 || tr.BytesOut == 0 {
		t.Fatalf("transport counters %+v", tr)
	}
	if tr.ConnsOpen < 1 {
		t.Fatalf("conns_open = %d with a live client", tr.ConnsOpen)
	}
	if st.WriteErrors != 0 {
		t.Fatalf("write_errors = %d on a healthy run", st.WriteErrors)
	}
}

// TestWriteJSONCountsEncodeErrors: a response body that fails midway
// through streaming (client hangup) must land in the write_errors
// counter instead of vanishing.
func TestWriteJSONCountsEncodeErrors(t *testing.T) {
	s := NewServer(store.New(store.Config{}))
	s.writeJSON(failingWriter{}, http.StatusOK, map[string]string{"k": "v"})
	if got := s.writeErrs.Load(); got != 1 {
		t.Fatalf("writeErrs = %d after failed encode, want 1", got)
	}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]string{"k": "v"})
	if got := s.writeErrs.Load(); got != 1 {
		t.Fatalf("writeErrs = %d after healthy encode, want 1", got)
	}
	if !strings.Contains(rec.Body.String(), `"k":"v"`) {
		t.Fatalf("healthy write body %q", rec.Body.String())
	}
}

type failingWriter struct{}

func (failingWriter) Header() http.Header       { return http.Header{} }
func (failingWriter) WriteHeader(int)           {}
func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("client hung up") }
