package flowd

// The batch endpoint: POST /v1/batch runs up to MaxBatchQueries queries
// against one graph under a single store acquisition — one registry
// lookup, one LRU touch and one bundle pin for the whole batch, so B
// queries cost one unit of store traffic instead of B. Failures are
// isolated per entry: a bad query yields its own error string while the
// rest of the batch answers normally; only batch-level failures (unknown
// graph, canceled request) fail the HTTP request.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"planarflow"
	"planarflow/internal/obs"
)

// MaxBatchQueries caps the number of queries one batch request may carry:
// enough to amortize the wire and store overhead, small enough that a
// single request cannot monopolize the worker pool.
const MaxBatchQueries = 256

// MaxBatchWorkers caps the client-requested concurrency of one batch.
const MaxBatchWorkers = 64

// BatchQuery is one entry of a batch: a QueryRequest without the graph id
// (the batch's graph applies to every entry).
type BatchQuery struct {
	Op     string  `json:"op"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	Source int     `json:"source,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	// Simulated forces the entry through the simulated CONGEST route, as
	// for QueryRequest.Simulated.
	Simulated bool `json:"simulated,omitempty"`
}

// Query maps the entry onto the library's query value. As for
// QueryRequest.Query, the per-phase rounds breakdown is not requested.
func (q *BatchQuery) Query() planarflow.Query {
	return planarflow.Query{
		Kind: planarflow.QueryKind(q.Op),
		U:    q.U, V: q.V, Source: q.Source, Eps: q.Eps,
		NoPhases:  true,
		Simulated: q.Simulated,
	}
}

// BatchRequest runs Queries against Graph under one bundle acquisition.
type BatchRequest struct {
	Graph   string       `json:"graph"`
	Queries []BatchQuery `json:"queries"`
	// Workers bounds how many queries run concurrently on the daemon
	// (0 = the daemon's default, min(batch size, GOMAXPROCS)).
	Workers int `json:"workers,omitempty"`
}

// BatchResult is one entry's outcome: either the answer fields or Error.
type BatchResult struct {
	Op         string  `json:"op"`
	Value      int64   `json:"value"`
	Dist       []int64 `json:"dist,omitempty"`
	CutEdges   []int   `json:"cut_edges,omitempty"`
	NegCycle   bool    `json:"neg_cycle,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Rounds     Rounds  `json:"rounds"`
	Error      string  `json:"error,omitempty"`
}

// BatchResponse is the result of one batch, index-aligned with the
// request's Queries. Hit reports whether the graph's bundle was resident
// when the batch arrived (one acquisition, so one hit bit).
type BatchResponse struct {
	Graph   string        `json:"graph"`
	Results []BatchResult `json:"results"`
	Hit     bool          `json:"hit"`
	WallMS  float64       `json:"wall_ms"`
}

// DecodeBatch parses and shape-validates one batch request with the same
// strictness contract as DecodeQuery: unknown fields, trailing garbage,
// missing graph, empty or oversized batches, unknown ops, negative ids,
// out-of-range eps and workers are all rejected, and no input may panic
// (FuzzDecodeBatch holds it to that). Graph-dependent range checks happen
// at query time, isolated per entry.
func DecodeBatch(data []byte) (*BatchRequest, error) {
	var req BatchRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("flowd: bad batch: %w", err)
	}
	if dec.More() {
		return nil, errors.New("flowd: bad batch: trailing data after JSON object")
	}
	if req.Graph == "" {
		return nil, errors.New("flowd: bad batch: missing graph id")
	}
	if len(req.Queries) == 0 {
		return nil, errors.New("flowd: bad batch: empty query list")
	}
	if len(req.Queries) > MaxBatchQueries {
		return nil, fmt.Errorf("flowd: bad batch: %d queries exceeds cap %d", len(req.Queries), MaxBatchQueries)
	}
	if req.Workers < 0 || req.Workers > MaxBatchWorkers {
		return nil, fmt.Errorf("flowd: bad batch: workers=%d out of [0, %d]", req.Workers, MaxBatchWorkers)
	}
	for i, q := range req.Queries {
		if err := checkArgs(q.Op, q.U, q.V, q.Source, q.Eps); err != nil {
			return nil, fmt.Errorf("flowd: bad batch: query %d: %s", i, err)
		}
	}
	return &req, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sp, ctx := s.beginSpan(r.Context(), "http", httpTrace(r))
	sp.Family = decodeFamily
	data, err := readBody(w, r)
	if err != nil {
		sp.MarkSince(obs.PhaseDecode, sp.Start)
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		s.finishRequest(sp, err.Error())
		return
	}
	req, err := DecodeBatch(data)
	sp.MarkSince(obs.PhaseDecode, sp.Start)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		s.finishRequest(sp, err.Error())
		return
	}
	sp.Family, sp.Graph = batchFamily, req.Graph
	resp, err := s.runBatch(ctx, req)
	if err != nil {
		s.writeError(w, err)
		s.finishRequest(sp, err.Error())
		return
	}
	t0 := time.Now()
	s.writeJSON(w, http.StatusOK, resp)
	sp.MarkSince(obs.PhaseEncode, t0)
	s.finishRequest(sp, "")
}

// runBatch executes one decoded batch against the store — the execution
// shared by POST /v1/batch and the wire transport's OpBatch frames, so
// the two planes cannot drift.
func (s *Server) runBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	begin := time.Now()
	queries := make([]planarflow.Query, len(req.Queries))
	for i := range req.Queries {
		queries[i] = req.Queries[i].Query()
	}
	answers, hit, err := s.st.DoBatch(ctx, req.Graph, queries, planarflow.BatchOptions{Workers: req.Workers})
	if err != nil {
		return nil, err
	}

	resp := &BatchResponse{Graph: req.Graph, Hit: hit, Results: make([]BatchResult, len(answers))}
	for i, a := range answers {
		res := BatchResult{Op: req.Queries[i].Op}
		switch {
		case a == nil: // defensive: DoBatch settles every entry
			res.Error = "flowd: query not executed"
			s.recordFamily(res.Op, 0, true)
		case a.Err != nil:
			res.Error = a.Err.Error()
			s.recordFamily(res.Op, 0, true)
		default:
			res.Value = a.Value
			res.Dist = a.Dist
			res.CutEdges = a.Edges
			res.NegCycle = a.NegCycle
			res.Iterations = a.Iterations
			res.Rounds = roundsOf(a.Rounds)
			s.recordFamily(res.Op, a.Rounds.Total, false)
		}
		resp.Results[i] = res
	}
	resp.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	return resp, nil
}
