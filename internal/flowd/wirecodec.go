package flowd

// The compact binary payload codec for the wire transport's hot ops
// (wire.OpQueryB / wire.OpBatchB): the same QueryRequest/QueryResponse
// and BatchRequest/BatchResponse values the JSON ops carry, hand-encoded
// little-endian with length-prefixed strings and slices. JSON reflection
// is the dominant per-query cost once the decode engine answers in
// microseconds — this codec removes it from the serving path while the
// JSON ops remain for compatibility (and the differential tests pin that
// a binary-routed answer renders to exactly the same JSON as the HTTP
// route's).
//
// Discipline mirrors the PFSNAP snapshot codec: decoders never panic,
// fail with errors wrapping ErrWireCodec, validate lengths against the
// remaining input before allocating, and reject trailing bytes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrWireCodec is the typed sentinel every binary payload decode failure
// wraps (errors.Is-matchable), the codec twin of the frame layer's
// ErrTruncated/ErrChecksum.
var ErrWireCodec = errors.New("flowd: bad wire payload")

// nilSlice marks a nil slice in the stream, distinct from an empty one,
// so decode(encode(x)) round-trips the value exactly.
const nilSlice = ^uint32(0)

// maxWireString caps string lengths (graph ids, op names, error texts);
// anything longer is corruption, not data.
const maxWireString = 1 << 12

// ---- encode ----

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendI64s(dst []byte, v []int64) []byte {
	if v == nil {
		return appendU32(dst, nilSlice)
	}
	dst = appendU32(dst, uint32(len(v)))
	for _, x := range v {
		dst = appendI64(dst, x)
	}
	return dst
}

func appendInts(dst []byte, v []int) []byte {
	if v == nil {
		return appendU32(dst, nilSlice)
	}
	dst = appendU32(dst, uint32(len(v)))
	for _, x := range v {
		dst = appendI64(dst, int64(x))
	}
	return dst
}

// ---- decode ----

// wdec is a bounds-checked little-endian cursor with a sticky error:
// after the first failure every read returns the zero value, so decoders
// read straight through and check err once.
type wdec struct {
	b   []byte
	err error
}

func (d *wdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrWireCodec, fmt.Sprintf(format, args...))
	}
}

func (d *wdec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *wdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wdec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wdec) i64() int64     { return int64(d.u64()) }
func (d *wdec) intv() int      { return int(d.i64()) }
func (d *wdec) f64() float64   { return math.Float64frombits(d.u64()) }
func (d *wdec) rounds() Rounds { return Rounds{Total: d.i64(), Build: d.i64(), Query: d.i64()} }

func (d *wdec) bool1() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		d.fail("bool byte 0x%02x", b[0])
		return false
	}
	return b[0] == 1
}

func (d *wdec) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxWireString {
		d.fail("string length %d exceeds cap %d", n, maxWireString)
		return ""
	}
	return string(d.take(int(n)))
}

func (d *wdec) i64s() []int64 {
	n := d.u32()
	if d.err != nil || n == nilSlice {
		return nil
	}
	// The elements are 8 bytes each: the count can never exceed the
	// remaining input, so allocation is capped by what was actually sent.
	if int64(n)*8 > int64(len(d.b)) {
		d.fail("slice count %d exceeds remaining %d bytes", n, len(d.b))
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

func (d *wdec) ints() []int {
	n := d.u32()
	if d.err != nil || n == nilSlice {
		return nil
	}
	if int64(n)*8 > int64(len(d.b)) {
		d.fail("slice count %d exceeds remaining %d bytes", n, len(d.b))
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.intv()
	}
	return out
}

// done rejects trailing bytes, the codec's analogue of DecodeQuery's
// trailing-data check.
func (d *wdec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrWireCodec, len(d.b))
	}
	return nil
}

// ---- QueryRequest ----

func appendWireQueryRequest(dst []byte, r *QueryRequest) []byte {
	dst = appendString(dst, r.Graph)
	dst = appendString(dst, r.Op)
	dst = appendI64(dst, int64(r.U))
	dst = appendI64(dst, int64(r.V))
	dst = appendI64(dst, int64(r.Source))
	dst = appendF64(dst, r.Eps)
	return appendBool(dst, r.Simulated)
}

// decodeWireQueryRequest decodes and validates with exactly
// DecodeQuery's checks (graph present, known op, argument ranges), so a
// request rejected on one plane is rejected on the other.
func decodeWireQueryRequest(b []byte) (*QueryRequest, error) {
	d := &wdec{b: b}
	r := &QueryRequest{
		Graph: d.str(), Op: d.str(),
		U: d.intv(), V: d.intv(), Source: d.intv(),
		Eps: d.f64(), Simulated: d.bool1(),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if r.Graph == "" {
		return nil, errors.New("flowd: bad query: missing graph id")
	}
	if err := checkArgs(r.Op, r.U, r.V, r.Source, r.Eps); err != nil {
		return nil, fmt.Errorf("flowd: bad query: %s", err)
	}
	return r, nil
}

// ---- QueryResponse ----

func appendWireQueryResponse(dst []byte, r *QueryResponse) []byte {
	dst = appendString(dst, r.Graph)
	dst = appendString(dst, r.Op)
	dst = appendI64(dst, r.Value)
	dst = appendI64s(dst, r.Dist)
	dst = appendInts(dst, r.CutEdges)
	dst = appendBool(dst, r.NegCycle)
	dst = appendI64(dst, int64(r.Iterations))
	dst = appendBool(dst, r.Hit)
	dst = appendI64(dst, r.Rounds.Total)
	dst = appendI64(dst, r.Rounds.Build)
	dst = appendI64(dst, r.Rounds.Query)
	return appendF64(dst, r.WallMS)
}

func decodeWireQueryResponse(b []byte) (*QueryResponse, error) {
	d := &wdec{b: b}
	r := &QueryResponse{
		Graph: d.str(), Op: d.str(), Value: d.i64(),
		Dist: d.i64s(), CutEdges: d.ints(),
		NegCycle: d.bool1(), Iterations: d.intv(), Hit: d.bool1(),
		Rounds: d.rounds(), WallMS: d.f64(),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// ---- BatchRequest ----

func appendWireBatchRequest(dst []byte, r *BatchRequest) []byte {
	dst = appendString(dst, r.Graph)
	dst = appendI64(dst, int64(r.Workers))
	dst = appendU32(dst, uint32(len(r.Queries)))
	for i := range r.Queries {
		q := &r.Queries[i]
		dst = appendString(dst, q.Op)
		dst = appendI64(dst, int64(q.U))
		dst = appendI64(dst, int64(q.V))
		dst = appendI64(dst, int64(q.Source))
		dst = appendF64(dst, q.Eps)
		dst = appendBool(dst, q.Simulated)
	}
	return dst
}

// decodeWireBatchRequest applies DecodeBatch's validation set: graph
// present, batch size in (0, MaxBatchQueries], workers in range, every
// entry's arguments checked.
func decodeWireBatchRequest(b []byte) (*BatchRequest, error) {
	d := &wdec{b: b}
	r := &BatchRequest{Graph: d.str(), Workers: d.intv()}
	n := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, errors.New("flowd: bad batch: empty query list")
	}
	if n > MaxBatchQueries {
		return nil, fmt.Errorf("flowd: bad batch: %d queries exceeds cap %d", n, MaxBatchQueries)
	}
	r.Queries = make([]BatchQuery, n)
	for i := range r.Queries {
		q := &r.Queries[i]
		q.Op = d.str()
		q.U, q.V, q.Source = d.intv(), d.intv(), d.intv()
		q.Eps, q.Simulated = d.f64(), d.bool1()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if r.Graph == "" {
		return nil, errors.New("flowd: bad batch: missing graph id")
	}
	if r.Workers < 0 || r.Workers > MaxBatchWorkers {
		return nil, fmt.Errorf("flowd: bad batch: workers=%d out of [0, %d]", r.Workers, MaxBatchWorkers)
	}
	for i := range r.Queries {
		q := &r.Queries[i]
		if err := checkArgs(q.Op, q.U, q.V, q.Source, q.Eps); err != nil {
			return nil, fmt.Errorf("flowd: bad batch: query %d: %s", i, err)
		}
	}
	return r, nil
}

// ---- BatchResponse ----

func appendWireBatchResponse(dst []byte, r *BatchResponse) []byte {
	dst = appendString(dst, r.Graph)
	dst = appendBool(dst, r.Hit)
	dst = appendF64(dst, r.WallMS)
	dst = appendU32(dst, uint32(len(r.Results)))
	for i := range r.Results {
		e := &r.Results[i]
		dst = appendString(dst, e.Op)
		dst = appendI64(dst, e.Value)
		dst = appendI64s(dst, e.Dist)
		dst = appendInts(dst, e.CutEdges)
		dst = appendBool(dst, e.NegCycle)
		dst = appendI64(dst, int64(e.Iterations))
		dst = appendI64(dst, e.Rounds.Total)
		dst = appendI64(dst, e.Rounds.Build)
		dst = appendI64(dst, e.Rounds.Query)
		dst = appendString(dst, e.Error)
	}
	return dst
}

func decodeWireBatchResponse(b []byte) (*BatchResponse, error) {
	d := &wdec{b: b}
	r := &BatchResponse{Graph: d.str(), Hit: d.bool1(), WallMS: d.f64()}
	n := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if n > MaxBatchQueries {
		return nil, fmt.Errorf("flowd: bad batch response: %d results exceeds cap %d", n, MaxBatchQueries)
	}
	r.Results = make([]BatchResult, n)
	for i := range r.Results {
		e := &r.Results[i]
		e.Op = d.str()
		e.Value = d.i64()
		e.Dist = d.i64s()
		e.CutEdges = d.ints()
		e.NegCycle = d.bool1()
		e.Iterations = d.intv()
		e.Rounds = d.rounds()
		e.Error = d.str()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}
