package flowd

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"planarflow"
	"planarflow/internal/store"
)

// newTestDaemon spins up an in-process daemon and a client against it.
func newTestDaemon(t *testing.T, cfg store.Config) (*Client, *store.Store) {
	t.Helper()
	st := store.New(cfg)
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL).WithHTTPClient(srv.Client()), st
}

func TestRegisterAndQueryEndToEnd(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Graphs != 0 {
		t.Fatalf("fresh daemon health: %+v", h)
	}
	spec := store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 3, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
	reg, err := c.Register(ctx, "g", spec)
	if err != nil {
		t.Fatal(err)
	}
	if reg.N != 36 || reg.M != 60 {
		t.Fatalf("registered grid6x6: n=%d m=%d", reg.N, reg.M)
	}

	// The daemon's answers must match the library run on the same spec.
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, err := p.Dist(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	wantFlow, err := p.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}

	qr, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: g.N() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Value != wantDist {
		t.Fatalf("dist over the wire %d, in-process %d", qr.Value, wantDist)
	}
	if qr.Hit {
		t.Fatal("first query reported a resident bundle")
	}
	qr2, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "maxflow", U: 0, V: g.N() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if qr2.Value != wantFlow.Value {
		t.Fatalf("maxflow over the wire %d, in-process %d", qr2.Value, wantFlow.Value)
	}
	if !qr2.Hit {
		t.Fatal("second query missed the resident bundle")
	}
	if qr2.Rounds.Total == 0 {
		t.Fatal("maxflow reported zero rounds")
	}

	// dualsssp returns the per-face vector.
	qr3, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dualsssp", Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr3.Dist) != g.NumFaces() {
		t.Fatalf("dualsssp returned %d faces, want %d", len(qr3.Dist), g.NumFaces())
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Graphs != 1 || st.Store.Hits+st.Store.Misses != 3 {
		t.Fatalf("statsz: %+v", st.Store)
	}
	gs, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].ID != "g" || !gs[0].Resident {
		t.Fatalf("graphs listing: %+v", gs)
	}
}

func TestQueryErrorsOverTheWire(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	if _, err := c.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 4, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		req  QueryRequest
		frag string // expected error fragment
	}{
		{QueryRequest{Graph: "nope", Op: "dist", U: 0, V: 1}, "404"},
		{QueryRequest{Graph: "g", Op: "dist", U: 0, V: 999}, "400"},
		{QueryRequest{Graph: "g", Op: "maxflow", U: 3, V: 3}, "400"},
		{QueryRequest{Graph: "g", Op: "warp", U: 0, V: 1}, "400"},
	}
	for _, tc := range cases {
		_, err := c.Query(ctx, tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Query(%+v) error %v, want fragment %q", tc.req, err, tc.frag)
		}
	}
	// Duplicate registration is a conflict.
	if _, err := c.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 4, Cols: 4}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate register: %v", err)
	}
}

// TestConcurrentClientsShareBuilds hammers one graph from many goroutines
// through the HTTP surface and checks the substrate singleflight held:
// every response agrees and the store accounted one construction.
func TestConcurrentClientsShareBuilds(t *testing.T) {
	c, st := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	if _, err := c.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 8, Cols: 8, Seed: 9, WLo: 1, WHi: 9, CLo: 1, CHi: 9}); err != nil {
		t.Fatal(err)
	}
	const workers = 12
	vals := make([]int64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: 63})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			vals[i] = qr.Value
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("worker %d got %d, worker 0 got %d", i, vals[i], vals[0])
		}
	}
	snap := st.Snapshot()
	if snap.Builds != 2 { // bdd + undirected primal labeling, built once
		t.Fatalf("substrates built %d, want 2", snap.Builds)
	}
	if snap.Misses != 1 {
		t.Fatalf("misses %d, want 1", snap.Misses)
	}
}

func TestEvictionVisibleOnStatsz(t *testing.T) {
	// Measure one bundle, then budget for ~1.5 bundles and register two
	// graphs: serving both must evict.
	spec := store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 1, WLo: 1, WHi: 9}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Dist(0, 1); err != nil {
		t.Fatal(err)
	}
	unit := p.Stats().Bytes

	c, _ := newTestDaemon(t, store.Config{MaxBytes: unit + unit/2})
	ctx := context.Background()
	for i, id := range []string{"a", "b"} {
		sp := spec
		sp.Seed = int64(i + 1)
		if _, err := c.Register(ctx, id, sp); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 3; r++ {
		for _, id := range []string{"a", "b"} {
			if _, err := c.Query(ctx, QueryRequest{Graph: id, Op: "dist", U: 0, V: 35}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Evictions == 0 {
		t.Fatalf("no evictions under a one-bundle budget: %+v", st.Store)
	}
	if st.Store.Bytes > st.Store.MaxBytes {
		t.Fatalf("resting bytes %d over budget %d", st.Store.Bytes, st.Store.MaxBytes)
	}
}

// TestSimulatedWireParity asserts the simulated escape hatch is reachable
// over the wire and bit-identical to the default decode-engine route: same
// payload, same per-query rounds, on both the query and batch endpoints.
func TestSimulatedWireParity(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	ctx := context.Background()
	if _, err := c.Register(ctx, "g", store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 5, WLo: 1, WHi: 9, CLo: 1, CHi: 16}); err != nil {
		t.Fatal(err)
	}
	// The simulated request runs first and carries the substrate build;
	// the fast request then decodes warm (Build == 0 on both thereafter).
	sim, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dualsssp", Source: 0, Simulated: true})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dualsssp", Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Dist) != len(sim.Dist) {
		t.Fatalf("fast returned %d faces, simulated %d", len(fast.Dist), len(sim.Dist))
	}
	for i := range fast.Dist {
		if fast.Dist[i] != sim.Dist[i] {
			t.Fatalf("face %d: fast %d, simulated %d", i, fast.Dist[i], sim.Dist[i])
		}
	}
	if fast.Rounds.Query != sim.Rounds.Query {
		t.Fatalf("fast Query rounds %d, simulated %d", fast.Rounds.Query, sim.Rounds.Query)
	}
	if fast.Rounds.Build != 0 {
		t.Fatalf("warm fast query paid Build=%d", fast.Rounds.Build)
	}

	resp, err := c.QueryBatch(ctx, BatchRequest{Graph: "g", Queries: []BatchQuery{
		{Op: "girth"},
		{Op: "girth", Simulated: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f, s := resp.Results[0], resp.Results[1]
	if f.Error != "" || s.Error != "" {
		t.Fatalf("batch errors: %q / %q", f.Error, s.Error)
	}
	if f.Value != s.Value || f.Rounds.Query != s.Rounds.Query {
		t.Fatalf("batch girth fast %+v diverges from simulated %+v", f, s)
	}
}
