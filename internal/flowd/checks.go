package flowd

import "fmt"

// FamilyChecks returns one QueryRequest per query family against the
// given graph (n vertices, faces faces): the whole op surface, with the
// st-planar families on an adjacent (common-face) vertex pair and eps=0
// so the exact oracle runs. cmd/flowd's selfcheck and flowbench's
// COLDSTART experiment both gate restart bit-identity on this one list,
// so their coverage cannot drift apart — or away from Ops (a test pins
// the correspondence).
func FamilyChecks(graph string, n, faces int) []QueryRequest {
	return []QueryRequest{
		{Graph: graph, Op: "dist", U: 0, V: n - 1},
		{Graph: graph, Op: "dirdist", U: 0, V: n - 1},
		{Graph: graph, Op: "dualdist", U: 0, V: faces - 1},
		{Graph: graph, Op: "dualsssp", Source: 0},
		{Graph: graph, Op: "maxflow", U: 0, V: n - 1},
		{Graph: graph, Op: "minstcut", U: 0, V: n - 1},
		{Graph: graph, Op: "stflow", U: 0, V: 1},
		{Graph: graph, Op: "stcut", U: 0, V: 1},
		{Graph: graph, Op: "girth"},
		{Graph: graph, Op: "dirgirth"},
		{Graph: graph, Op: "globalmincut"},
	}
}

// RestartKey reduces a response to the fields that must survive a
// daemon restart bit-for-bit: the payload, its witnesses, and the
// Build/Query rounds split. Wall clock and residency are excluded.
func RestartKey(r *QueryResponse) string {
	return fmt.Sprintf("%s v=%d dist=%v cut=%v neg=%v iter=%d rounds=%+v",
		r.Op, r.Value, r.Dist, r.CutEdges, r.NegCycle, r.Iterations, r.Rounds)
}
