package flowd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"planarflow/internal/store"
)

func testSpec(seed int64) store.GraphSpec {
	return store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: seed, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
}

// TestSnapshotEndpointDisabled: without -snapshot-dir the endpoint is a
// clean 400, not a 500.
func TestSnapshotEndpointDisabled(t *testing.T) {
	c, _ := newTestDaemon(t, store.Config{})
	_, err := c.Snapshot(context.Background(), "")
	if err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("got %v, want status 400", err)
	}
}

// TestSnapshotEndpointAndRestart drives the full daemon lifecycle over
// the wire: register + warm, query, snapshot, kill the daemon, boot a
// fresh one over the same snapshot directory, warm-restore, and verify
// the restored daemon serves identically with zero rebuilds and its
// counters visible on /statsz.
func TestSnapshotEndpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := store.Config{SpillDir: dir}
	ctx := context.Background()

	c1, _ := newTestDaemon(t, cfg)
	reg, err := c1.RegisterWarm(ctx, "g", testSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	q := QueryRequest{Graph: "g", Op: "maxflow", U: 0, V: reg.N - 1}
	want, err := c1.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown graph errors; known graph writes one snapshot.
	if _, err := c1.Snapshot(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "status 404") {
		t.Fatalf("got %v, want status 404", err)
	}
	snap, err := c1.Snapshot(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Written != 1 {
		t.Fatalf("written = %d, want 1", snap.Written)
	}
	st1, err := c1.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Store.SnapshotWrites != 1 {
		t.Fatalf("statsz snapshot_writes = %d, want 1", st1.Store.SnapshotWrites)
	}

	// "Restart": fresh store, same spill dir, same spec, warm restore.
	c2, st := newTestDaemon(t, cfg)
	if _, err := st.RegisterSpec("g", testSpec(42)); err != nil {
		t.Fatal(err)
	}
	ok, err := st.TryRestore("g")
	if err != nil || !ok {
		t.Fatalf("TryRestore = %v, %v", ok, err)
	}
	got, err := c2.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Rounds != want.Rounds ||
		got.Iterations != want.Iterations || !got.Hit {
		t.Fatalf("restored answer diverged: %+v vs %+v", got, want)
	}
	st2, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Store.SnapshotRestores != 1 || st2.Store.Builds != 0 {
		t.Fatalf("restored daemon: restores=%d builds=%d, want 1/0",
			st2.Store.SnapshotRestores, st2.Store.Builds)
	}
	// Per-bundle last-access rides on /statsz (observability satellite).
	for _, pg := range st2.Store.PerGraph {
		if pg.ID == "g" && pg.LastAccessUnixMS == 0 {
			t.Fatal("last_access_unix_ms missing from /statsz")
		}
	}
}

// TestSnapshotRequestStrictDecode: the endpoint rejects unknown fields
// like every other decoder on this wire.
func TestSnapshotRequestStrictDecode(t *testing.T) {
	st := store.New(store.Config{SpillDir: t.TempDir()})
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/snapshot", "application/json",
		strings.NewReader(`{"graph": "g", "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestClientHonorsContext pins the client-side cancellation satellite:
// an in-flight request aborts promptly when its context is canceled —
// for queries, registration, stats and snapshot alike.
func TestClientHonorsContext(t *testing.T) {
	release := make(chan struct{})
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	// LIFO: the handlers must unblock before Close waits on them.
	defer blocked.Close()
	defer close(release)
	c := NewClient(blocked.URL).WithHTTPClient(blocked.Client())

	calls := map[string]func(ctx context.Context) error{
		"query": func(ctx context.Context) error {
			_, err := c.Query(ctx, QueryRequest{Graph: "g", Op: "dist"})
			return err
		},
		"batch": func(ctx context.Context) error {
			_, err := c.QueryBatch(ctx, BatchRequest{Graph: "g", Queries: []BatchQuery{{Op: "girth"}}})
			return err
		},
		"register": func(ctx context.Context) error {
			_, err := c.Register(ctx, "g", testSpec(1))
			return err
		},
		"stats": func(ctx context.Context) error {
			_, err := c.Stats(ctx)
			return err
		},
		"snapshot": func(ctx context.Context) error {
			_, err := c.Snapshot(ctx, "")
			return err
		},
	}
	for name, call := range calls {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			done := make(chan error, 1)
			go func() { done <- call(ctx) }()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("blocked call returned nil despite canceled context")
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("got %v, want context.DeadlineExceeded in the chain", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("client ignored context cancellation")
			}
		})
	}
}

// TestFamilyChecksCoverOps pins the drift guard: FamilyChecks exercises
// every op the daemon serves, exactly once each.
func TestFamilyChecksCoverOps(t *testing.T) {
	covered := map[string]int{}
	for _, q := range FamilyChecks("g", 36, 26) {
		covered[q.Op]++
		if q.Graph != "g" {
			t.Fatalf("%s targets graph %q", q.Op, q.Graph)
		}
	}
	for _, op := range Ops {
		if covered[op] != 1 {
			t.Fatalf("op %q covered %d times by FamilyChecks, want 1", op, covered[op])
		}
	}
	if len(covered) != len(Ops) {
		t.Fatalf("%d ops covered, daemon serves %d", len(covered), len(Ops))
	}
}
