package flowd

// The snapshot-stream codec: the framing that carries one graph's PFSNAP
// snapshot between replicas — the body of GET /v1/snapshot/{graph} and
// the payload of the wire's OpSnapB frames. The PFSNAP blob inside has
// its own fingerprint/version/checksum envelope (internal/snapshot), so
// this layer is pure transport integrity: it exists to make a truncated
// or bit-flipped transfer *detectable at the stream level*, before the
// receiver spends decode work, and to carry the graph id so a fetcher
// can confirm it got the snapshot it asked for.
//
// Stream layout (integers little-endian, CRC32-IEEE, mirroring the wire
// frame and PFSNAP disciplines):
//
//	offset size field
//	0      2    magic "PS"
//	2      1    version (1)
//	3      1    reserved (0)
//	4      2    graph-id length (1..MaxSnapIDLen)
//	6      n    graph id
//	then data chunks, each:
//	       4    chunk length (1..snapMaxChunk)
//	       k    chunk bytes
//	       4    CRC32(chunk bytes)
//	terminator:
//	       4    zero length
//	       4    CRC32(entire data)
//
// A transfer cut anywhere mid-stream is ErrSnapStreamTruncated — the
// zero-length terminator chunk is the only clean end — so a peer fetch
// interrupted by the sender dying can never be mistaken for a complete
// snapshot. Decoding never panics and allocates no more than the
// declared (capped) sizes; the fuzz harness holds it to that.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// SnapStreamVersion is the stream framing version (independent of the
// PFSNAP codec version inside).
const SnapStreamVersion = 1

// MaxSnapIDLen caps the graph id carried in the stream header.
const MaxSnapIDLen = 256

// snapMaxChunk caps one chunk's declared length: a length prefix read
// off an untrusted stream must never size an unbounded allocation.
const snapMaxChunk = 256 << 10

// DefaultMaxSnapBytes is the decoder's default budget for one
// reassembled snapshot (serving-sized graphs are a few MB; this is
// generous headroom, not a tuning knob).
const DefaultMaxSnapBytes = 256 << 20

// snapStreamMagic opens every snapshot stream.
var snapStreamMagic = [2]byte{'P', 'S'}

// Typed sentinel errors of the stream decoder.
var (
	// ErrSnapStream reports a malformed stream: bad magic, an unsupported
	// version, an out-of-range id or chunk length, or a checksum mismatch.
	ErrSnapStream = errors.New("flowd: bad snapshot stream")
	// ErrSnapStreamTruncated reports a stream that ends before its
	// terminator chunk — the signature of a transfer cut mid-flight. A
	// peer fetch seeing this must fall back (disk, then rebuild), never
	// install.
	ErrSnapStreamTruncated = errors.New("flowd: snapshot stream truncated")
	// ErrSnapStreamSize reports a stream whose data exceeds the caller's
	// byte budget.
	ErrSnapStreamSize = errors.New("flowd: snapshot stream exceeds size cap")
)

// EncodeSnapStream frames one graph's snapshot bytes onto w.
func EncodeSnapStream(w io.Writer, graph string, data []byte) error {
	if len(graph) == 0 || len(graph) > MaxSnapIDLen {
		return fmt.Errorf("%w: graph id length %d", ErrSnapStream, len(graph))
	}
	hdr := make([]byte, 0, 6+len(graph))
	hdr = append(hdr, snapStreamMagic[0], snapStreamMagic[1], SnapStreamVersion, 0)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(graph)))
	hdr = append(hdr, graph...)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var lenbuf [4]byte
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > snapMaxChunk {
			n = snapMaxChunk
		}
		chunk := data[off : off+n]
		binary.LittleEndian.PutUint32(lenbuf[:], uint32(n))
		if _, err := w.Write(lenbuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(lenbuf[:], crc32.ChecksumIEEE(chunk))
		if _, err := w.Write(lenbuf[:]); err != nil {
			return err
		}
		off += n
	}
	var term [8]byte // zero length + whole-stream CRC
	binary.LittleEndian.PutUint32(term[4:], crc32.ChecksumIEEE(data))
	_, err := w.Write(term[:])
	return err
}

// AppendSnapStream is EncodeSnapStream into a byte slice (the wire
// OpSnapB payload path).
func AppendSnapStream(dst []byte, graph string, data []byte) ([]byte, error) {
	buf := sliceWriter{b: dst}
	if err := EncodeSnapStream(&buf, graph, data); err != nil {
		return dst, err
	}
	return buf.b, nil
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// DecodeSnapStream reads one framed snapshot off r: the graph id it
// carries and the reassembled snapshot bytes. maxBytes caps the total
// data size (<= 0 means DefaultMaxSnapBytes); every failure wraps one
// of the typed sentinels above, with mid-stream EOF always
// ErrSnapStreamTruncated.
func DecodeSnapStream(r io.Reader, maxBytes int64) (string, []byte, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxSnapBytes
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [6]byte
	if err := readFull(br, hdr[:]); err != nil {
		return "", nil, err
	}
	if hdr[0] != snapStreamMagic[0] || hdr[1] != snapStreamMagic[1] {
		return "", nil, fmt.Errorf("%w: bad magic", ErrSnapStream)
	}
	if hdr[2] != SnapStreamVersion {
		return "", nil, fmt.Errorf("%w: version %d (speak %d)", ErrSnapStream, hdr[2], SnapStreamVersion)
	}
	idLen := int(binary.LittleEndian.Uint16(hdr[4:6]))
	if idLen == 0 || idLen > MaxSnapIDLen {
		return "", nil, fmt.Errorf("%w: graph id length %d", ErrSnapStream, idLen)
	}
	id := make([]byte, idLen)
	if err := readFull(br, id); err != nil {
		return "", nil, err
	}
	var data []byte
	var lenbuf [4]byte
	for {
		if err := readFull(br, lenbuf[:]); err != nil {
			return "", nil, err
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n == 0 { // terminator: whole-stream checksum follows
			if err := readFull(br, lenbuf[:]); err != nil {
				return "", nil, err
			}
			if binary.LittleEndian.Uint32(lenbuf[:]) != crc32.ChecksumIEEE(data) {
				return "", nil, fmt.Errorf("%w: stream checksum mismatch", ErrSnapStream)
			}
			return string(id), data, nil
		}
		if n > snapMaxChunk {
			return "", nil, fmt.Errorf("%w: chunk length %d > %d", ErrSnapStream, n, snapMaxChunk)
		}
		if int64(len(data))+int64(n) > maxBytes {
			return "", nil, fmt.Errorf("%w: %d bytes > %d", ErrSnapStreamSize, int64(len(data))+int64(n), maxBytes)
		}
		off := len(data)
		data = append(data, make([]byte, n)...)
		if err := readFull(br, data[off:]); err != nil {
			return "", nil, err
		}
		if err := readFull(br, lenbuf[:]); err != nil {
			return "", nil, err
		}
		if binary.LittleEndian.Uint32(lenbuf[:]) != crc32.ChecksumIEEE(data[off:]) {
			return "", nil, fmt.Errorf("%w: chunk checksum mismatch", ErrSnapStream)
		}
	}
}

// readFull reads len(p) bytes, mapping any short read to the truncation
// sentinel: inside a snapshot stream there is no such thing as a clean
// early EOF.
func readFull(r io.Reader, p []byte) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %v", ErrSnapStreamTruncated, err)
		}
		return err
	}
	return nil
}
