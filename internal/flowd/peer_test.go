package flowd

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"planarflow/internal/store"
)

func peerSpec() store.GraphSpec {
	return store.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: 3, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
}

// newPeerDaemon is newTestDaemon plus the raw base URL, which the
// restore ladder needs as a peer address.
func newPeerDaemon(t *testing.T, cfg store.Config) (*Client, *store.Store, string) {
	t.Helper()
	st := store.New(cfg)
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL).WithHTTPClient(srv.Client()), st, srv.URL
}

func TestPeerSnapshotFetchAndRestore(t *testing.T) {
	ctx := context.Background()
	ca, _, baseA := newPeerDaemon(t, store.Config{})
	cb, stb, _ := newPeerDaemon(t, store.Config{})

	if _, err := ca.RegisterWarm(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	want, err := ca.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: 35})
	if err != nil {
		t.Fatal(err)
	}

	// FetchSnapshot returns verified PFSNAP bytes with the right id.
	snap, err := ca.FetchSnapshot(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	if _, err := ca.FetchSnapshot(ctx, "ghost"); !IsNotFound(err) {
		t.Fatalf("unknown graph fetch: %v", err)
	}

	// Restore on B via the peer rung: the bundle ships over, no build.
	if _, err := cb.Register(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	resp, err := cb.Restore(ctx, "g", []string{baseA})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Restored || resp.Source != "peer" || resp.Peer != baseA {
		t.Fatalf("restore: %+v", resp)
	}
	st := stb.Snapshot()
	if st.PeerRestores != 1 || st.Builds != 0 {
		t.Fatalf("peer restore accounting: %+v", st)
	}
	got, err := cb.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: 35})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || !got.Hit {
		t.Fatalf("restored answer %+v != %+v", got, want)
	}
}

// TestPeerRestoreTruncatedStreamFallsBack serves a snapshot stream cut
// mid-transfer: the restore ladder must reject the rung — no partial
// install, PeerRestores stays zero — and fall through to the next rung
// (a good peer, or cold rebuild), with answers unchanged either way.
func TestPeerRestoreTruncatedStreamFallsBack(t *testing.T) {
	ctx := context.Background()
	ca, _, baseA := newPeerDaemon(t, store.Config{})
	if _, err := ca.RegisterWarm(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	want, err := ca.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: 35})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ca.FetchSnapshot(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}

	// A peer that 200s but cuts the stream partway through the data.
	full, err := AppendSnapStream(nil, "g", snap)
	if err != nil {
		t.Fatal(err)
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(full[:len(full)/2])
	}))
	t.Cleanup(bad.Close)

	// Truncated peer only: every rung misses, the graph stays cold, and
	// nothing partial is installed.
	cb, stb, _ := newPeerDaemon(t, store.Config{})
	if _, err := cb.Register(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	resp, err := cb.Restore(ctx, "g", []string{bad.URL})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Restored || resp.Source != "none" {
		t.Fatalf("truncated stream restored: %+v", resp)
	}
	st := stb.Snapshot()
	if st.PeerRestores != 0 || st.Resident != 0 {
		t.Fatalf("partial restore visible: %+v", st)
	}
	// The ladder's floor: the next query rebuilds cold and still agrees.
	got, err := cb.Query(ctx, QueryRequest{Graph: "g", Op: "dist", U: 0, V: 35})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Hit {
		t.Fatalf("cold fallback answer %+v != %+v", got, want)
	}

	// Truncated peer first, good peer second: the ladder skips the bad
	// rung and restores from the good one.
	cc, stc, _ := newPeerDaemon(t, store.Config{})
	if _, err := cc.Register(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	resp, err = cc.Restore(ctx, "g", []string{bad.URL, baseA})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Restored || resp.Source != "peer" || resp.Peer != baseA {
		t.Fatalf("good-peer rung not taken: %+v", resp)
	}
	if st := stc.Snapshot(); st.PeerRestores != 1 || st.Builds != 0 {
		t.Fatalf("accounting after skip: %+v", st)
	}
}

// TestPeerRestoreDiskRung: with peers exhausted, the ladder falls back
// to the local disk tier.
func TestPeerRestoreDiskRung(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c, st, _ := newPeerDaemon(t, store.Config{SpillDir: dir})
	t.Cleanup(st.FlushSpills)
	if _, err := c.RegisterWarm(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	st.FlushSpills()
	st.EvictAll()
	resp, err := c.Restore(ctx, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Restored || resp.Source != "disk" {
		t.Fatalf("disk rung: %+v", resp)
	}
	// Restoring a resident graph is a no-op reported as such.
	resp, err = c.Restore(ctx, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "resident" && (resp.Restored || resp.Source != "none") {
		t.Fatalf("resident restore: %+v", resp)
	}
	// Unknown graphs surface the typed 404.
	if _, err := c.Restore(ctx, "ghost", nil); !IsNotFound(err) {
		t.Fatalf("unknown graph restore: %v", err)
	}
}

// TestWarmEndpoint: the registration-independent warm builds substrates
// on demand (the fleet client's Warm routes here).
func TestWarmEndpoint(t *testing.T) {
	ctx := context.Background()
	c, st, _ := newPeerDaemon(t, store.Config{})
	if _, err := c.Register(ctx, "g", peerSpec()); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot().Resident != 0 {
		t.Fatal("resident before warm")
	}
	resp, err := c.Warm(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Warmed || resp.Graph != "g" {
		t.Fatalf("warm: %+v", resp)
	}
	if st.Snapshot().Resident != 1 {
		t.Fatal("not resident after warm")
	}
	// Warming twice is idempotent; warming the unknown is a 404.
	if _, err := c.Warm(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Warm(ctx, "ghost"); !IsNotFound(err) {
		t.Fatalf("unknown warm: %v", err)
	}
}
