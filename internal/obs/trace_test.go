package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestTraceRingEviction fills a small ring past capacity and checks
// newest-first ordering with the oldest spans evicted.
func TestTraceRingEviction(t *testing.T) {
	tr := NewTracer(4, time.Hour)
	for i := 1; i <= 10; i++ {
		s := NewSpan(uint64(i), "http")
		s.Family = fmt.Sprintf("q%d", i)
		tr.Finish(s, time.Duration(i)*time.Millisecond, "")
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if got[i].ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (order: %+v)", i, got[i].ID, want, got)
		}
	}
	if len(tr.Slow()) != 0 {
		t.Fatal("nothing crossed the slow threshold")
	}
}

// TestTraceRingPartial checks newest-first order before the ring wraps.
func TestTraceRingPartial(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	for i := 1; i <= 3; i++ {
		tr.Finish(NewSpan(uint64(i), "wire"), time.Millisecond, "")
	}
	got := tr.Recent()
	if len(got) != 3 || got[0].ID != 3 || got[2].ID != 1 {
		t.Fatalf("partial ring order wrong: %+v", got)
	}
}

// TestSlowLog checks threshold classification and the slow ring.
func TestSlowLog(t *testing.T) {
	tr := NewTracer(16, 10*time.Millisecond)
	if tr.Finish(NewSpan(1, "http"), 2*time.Millisecond, "") {
		t.Fatal("fast span flagged slow")
	}
	s := NewSpan(2, "http")
	s.Family = "maxflow"
	s.Add(PhaseBuild, 40*time.Millisecond)
	if !tr.Finish(s, 50*time.Millisecond, "") {
		t.Fatal("slow span not flagged")
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].ID != 2 {
		t.Fatalf("slow log = %+v", slow)
	}
	if slow[0].PhasesMS["build"] != 40 {
		t.Fatalf("slow span lost phase attribution: %+v", slow[0].PhasesMS)
	}
	if tr.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d", tr.SlowCount())
	}
}

// TestSpanContext checks context plumbing and nil-span tolerance.
func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a span")
	}
	var nilSpan *Span
	nilSpan.Add(PhaseExec, time.Second) // must not panic
	nilSpan.MarkSince(PhaseExec, time.Now())
	if nilSpan.PhaseNS(PhaseExec) != 0 {
		t.Fatal("nil span reported phase time")
	}

	s := NewSpan(7, "wire")
	ctx := ContextWithSpan(context.Background(), s)
	got := SpanFromContext(ctx)
	if got != s {
		t.Fatal("span did not round-trip through context")
	}
	got.Add(PhaseDecode, 3*time.Millisecond)
	got.Add(PhaseDecode, 2*time.Millisecond)
	if s.PhaseNS(PhaseDecode) != int64(5*time.Millisecond) {
		t.Fatalf("phase accumulation = %d", s.PhaseNS(PhaseDecode))
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		n := p.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("phase %d name %q invalid or duplicate", p, n)
		}
		seen[n] = true
	}
	if Phase(-1).String() != "unknown" || NumPhases.String() != "unknown" {
		t.Fatal("out-of-range phases must stringify as unknown")
	}
}
