package obs

// Log-bucketed latency histogram (HDR-lite): each power-of-two octave of
// nanoseconds is split into 2^histMinorBits linear sub-buckets, so the
// worst-case relative resolution is 1/2^histMinorBits (12.5%) across the
// whole range — nanoseconds to minutes — with one fixed array and no
// per-observation allocation. Observe is a few atomic adds; Snapshot is
// a lock-free copy; snapshots merge and subtract, which is how flowbench
// extracts a single run's delta from the always-on process registry.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histMinorBits sets the per-octave resolution: 2^3 = 8 linear
	// sub-buckets per power of two (≤ 12.5% relative error).
	histMinorBits = 3
	histMinors    = 1 << histMinorBits
	// histMaxMajor caps the covered range at 2^40 ns ≈ 18 minutes;
	// anything slower clamps into the last bucket (Quantile still reports
	// the exact observed Max).
	histMaxMajor = 40
	// histBuckets: the first octaves 0..histMinors-1 are exact single
	// values, then 8 sub-buckets per octave up to histMaxMajor.
	histBuckets = (histMaxMajor-histMinorBits)<<histMinorBits + histMinors
)

// Histogram counts duration observations in log-spaced buckets. The zero
// value is NOT ready — use NewHistogram (or Registry.Histogram).
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // total ns
	count  atomic.Uint64
	max    atomic.Int64 // ns
}

// NewHistogram returns an empty standalone histogram (not registered).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < histMinors {
		return int(u)
	}
	major := bits.Len64(u) // >= histMinorBits+1 here
	shift := major - 1 - histMinorBits
	idx := (major-histMinorBits)<<histMinorBits + int((u>>uint(shift))&(histMinors-1))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound (ns) of bucket i — the
// `le` edge of the Prometheus exposition and the representative value
// quantile extraction reports.
func bucketUpper(i int) int64 {
	if i < histMinors {
		return int64(i)
	}
	major := i>>histMinorBits + histMinorBits
	minor := i & (histMinors - 1)
	shift := uint(major - 1 - histMinorBits)
	lower := uint64(1)<<(major-1) + uint64(minor)<<shift
	return int64(lower + 1<<shift - 1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// ObserveNS records one duration given in nanoseconds.
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIdx(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a histogram, safe to merge,
// subtract and query without touching the live counters.
type Snapshot struct {
	Counts [histBuckets]uint64
	Sum    int64 // ns
	Count  uint64
	Max    int64 // ns
}

// Snapshot copies the current state. Concurrent observations may land in
// some fields and not others (the copy is not atomic across buckets);
// for exact accounting, snapshot quiescent histograms or difference two
// snapshots of a monotone run.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	s.Max = h.max.Load()
	return s
}

// Merge adds o into s.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Sub subtracts an earlier snapshot of the same histogram, yielding the
// delta of the interval. Max is kept from s (the later snapshot): the
// per-interval maximum is not recoverable from monotone counters.
func (s *Snapshot) Sub(o Snapshot) {
	for i := range s.Counts {
		s.Counts[i] -= o.Counts[i]
	}
	s.Sum -= o.Sum
	s.Count -= o.Count
}

// Quantile returns the q-th quantile (q in (0, 1]) by nearest rank over
// the bucketed counts, reporting the containing bucket's upper edge
// clamped to the exact observed Max — so Quantile(1) == Max, and any
// quantile is within one bucket's resolution (≤ 12.5%) of the true
// sample statistic. An empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			v := bucketUpper(i)
			if v > s.Max {
				v = s.Max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the average observation.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}
