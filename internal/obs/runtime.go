package obs

// Go runtime gauges for /versionz and /metricsz. All values are read at
// scrape time only — registering these costs nothing on request paths.

import (
	"runtime"
	"sync"
)

// memStats caches one ReadMemStats per scrape pass: the registry
// evaluates each gauge callback independently, and ReadMemStats
// stops the world, so the heap gauges share a short-lived snapshot.
var memStats struct {
	mu sync.Mutex
	ms runtime.MemStats
}

func readMem(f func(*runtime.MemStats) float64) func() float64 {
	return func() float64 {
		memStats.mu.Lock()
		defer memStats.mu.Unlock()
		runtime.ReadMemStats(&memStats.ms)
		return f(&memStats.ms)
	}
}

// RegisterRuntimeGauges installs goroutine, heap, and GC gauges on r.
// Idempotent: re-registration replaces callbacks in place.
func RegisterRuntimeGauges(r *Registry) {
	r.Gauge("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		readMem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	r.Gauge("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.",
		readMem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }))
	r.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.",
		readMem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapObjects) }))
	r.Gauge("go_gc_cycles_total", "Completed GC cycles.",
		readMem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	r.Gauge("go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause.",
		readMem(func(ms *runtime.MemStats) float64 { return float64(ms.PauseTotalNs) / 1e9 }))
}
