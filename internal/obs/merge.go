package obs

// Fleet-level exposition: render several registries — one per replica —
// as a single Prometheus text page, the aggregation behind flowdfleet's
// /metricsz. Counters and gauges holding the same series key sum;
// histograms merge their snapshots (the log-bucketed layout is shared,
// so a merged histogram is exactly the histogram of the union of
// observations). This is the payoff of making Snapshot mergeable by
// design: fleet-wide p99 is computed from merged buckets, not averaged
// from per-replica quantiles (which would be statistically meaningless).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// mergedSeries accumulates one series key across registries.
type mergedSeries struct {
	name   string
	labels []Label
	kind   string
	num    float64  // counters (incl. callback counters) and gauges
	hist   Snapshot // histograms
}

// WriteMergedPrometheus renders the union of the given registries in the
// text exposition format. Series present in several registries aggregate
// by canonical series key: counters and gauges sum, histogram snapshots
// merge. Family HELP/TYPE come from the first registry that defines the
// family; a series whose kind disagrees with an earlier registry's is
// skipped (two replicas of the same build never disagree — this guards a
// mixed-version fleet from producing an unparseable page).
func WriteMergedPrometheus(w io.Writer, regs ...*Registry) error {
	fams := map[string]*family{}
	merged := map[string]*mergedSeries{}
	var order []string

	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.RLock()
		for name, f := range r.families {
			if _, ok := fams[name]; !ok {
				fams[name] = &family{name: f.name, help: f.help, kind: f.kind}
			}
		}
		for _, key := range r.order {
			s := r.series[key]
			kind := seriesKind(s)
			m := merged[key]
			if m == nil {
				m = &mergedSeries{name: s.name, labels: s.labels, kind: kind}
				merged[key] = m
				order = append(order, key)
			} else if m.kind != kind {
				continue
			}
			switch {
			case s.ctr != nil:
				m.num += float64(s.ctr.Value())
			case s.ctrFn != nil:
				m.num += s.ctrFn.value()
			case s.gauge != nil:
				m.num += s.gauge.Value()
			case s.hist != nil:
				m.hist.Merge(s.hist.Snapshot())
			}
		}
		r.mu.RUnlock()
	}

	famNames := make([]string, 0, len(fams))
	for name := range fams {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)
	byFam := map[string][]*mergedSeries{}
	for _, key := range order {
		m := merged[key]
		byFam[m.name] = append(byFam[m.name], m)
	}

	bw := bufio.NewWriter(w)
	for _, name := range famNames {
		f := fams[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range byFam[name] {
			if m.kind != f.kind {
				continue
			}
			switch m.kind {
			case "histogram":
				writeHist(bw, m.name, m.labels, m.hist)
			default:
				fmt.Fprintf(bw, "%s %s\n", seriesKey(m.name, m.labels), formatFloat(m.num))
			}
		}
	}
	return bw.Flush()
}

func seriesKind(s *series) string {
	switch {
	case s.hist != nil:
		return "histogram"
	case s.gauge != nil:
		return "gauge"
	default:
		return "counter"
	}
}
