package obs

// Hand-built Prometheus text exposition (version 0.0.4) — no external
// deps. Families render in name order with HELP/TYPE headers; histograms
// render as cumulative `_bucket{le="..."}` series (only non-empty
// buckets, plus +Inf), `_sum`, and `_count`, with durations converted to
// seconds. ParseExposition is the validating counterpart the selfcheck
// and CI use to fail on unparseable lines and to assert counter
// monotonicity across a query burst.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the text exposition
// format. Families are sorted by name; series within a family keep
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	byFam := make(map[string][]*series, len(r.families))
	for _, key := range r.order {
		s := r.series[key]
		byFam[s.name] = append(byFam[s.name], s)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range byFam[f.name] {
			switch {
			case s.ctr != nil:
				fmt.Fprintf(bw, "%s %d\n", seriesKey(s.name, s.labels), s.ctr.Value())
			case s.ctrFn != nil:
				fmt.Fprintf(bw, "%s %s\n", seriesKey(s.name, s.labels), formatFloat(s.ctrFn.value()))
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s %s\n", seriesKey(s.name, s.labels), formatFloat(s.gauge.Value()))
			case s.hist != nil:
				writeHist(bw, s.name, s.labels, s.hist.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeHist renders one histogram series: cumulative buckets at the
// upper edges of non-empty buckets (seconds), +Inf, _sum, _count. The
// "le" label is merged into sorted position so every rendered series
// string is canonical seriesKey form.
func writeHist(w io.Writer, name string, labels []Label, snap Snapshot) {
	withLE := func(le string) []Label {
		ls := append(append(make([]Label, 0, len(labels)+1), labels...), L("le", le))
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		return ls
	}
	var cum uint64
	for i, c := range snap.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := formatFloat(float64(bucketUpper(i)) / 1e9)
		fmt.Fprintf(w, "%s %d\n", seriesKey(name+"_bucket", withLE(le)), cum)
	}
	fmt.Fprintf(w, "%s %d\n", seriesKey(name+"_bucket", withLE("+Inf")), snap.Count)
	fmt.Fprintf(w, "%s %s\n", seriesKey(name+"_sum", labels), formatFloat(float64(snap.Sum)/1e9))
	fmt.Fprintf(w, "%s %d\n", seriesKey(name+"_count", labels), snap.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ParseExposition validates a text exposition and returns its samples as
// series-string → value. It checks comment-line shape, metric/label name
// legality, label quoting, and numeric values; any malformed line is an
// error naming the line number. Series strings match seriesKey rendering
// (labels sorted by key), so callers can look up exactly what they
// registered.
func ParseExposition(data []byte) (map[string]float64, error) {
	out := map[string]float64{}
	lines := strings.Split(string(data), "\n")
	for n, line := range lines {
		lno := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") || !validName(fields[2]) {
				return nil, fmt.Errorf("line %d: malformed comment %q", lno, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE missing kind", lno)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lno, fields[3])
				}
			}
			continue
		}
		key, rest, err := parseSeries(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lno, err)
		}
		val := strings.TrimSpace(rest)
		if i := strings.IndexByte(val, ' '); i >= 0 {
			// optional timestamp — must itself be numeric
			ts := strings.TrimSpace(val[i+1:])
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", lno, ts)
			}
			val = val[:i]
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", lno, val)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lno, key)
		}
		out[key] = f
	}
	return out, nil
}

// parseSeries splits one sample line into its canonical series string
// (labels re-sorted by key) and the remainder after the series.
func parseSeries(line string) (string, string, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("missing value on %q", line)
	}
	name := line[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i:], nil
	}
	var labels []Label
	rest := line[i+1:]
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return "", "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", "", fmt.Errorf("label missing '='")
		}
		lname := strings.TrimSpace(rest[:eq])
		if !validLabelName(lname) {
			return "", "", fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", "", fmt.Errorf("label %q value not quoted", lname)
		}
		val, rem, err := parseQuoted(rest)
		if err != nil {
			return "", "", fmt.Errorf("label %q: %v", lname, err)
		}
		labels = append(labels, Label{Key: lname, Value: val})
		rest = rem
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return seriesKey(name, labels), rest, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped string at the
// start of s, returning the decoded value and the remainder.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}
