package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket layout: exact singleton buckets
// below histMinors, then 8 linear sub-buckets per octave, contiguous
// edges, and clamping at both ends.
func TestBucketBoundaries(t *testing.T) {
	golden := []struct {
		ns  int64
		idx int
	}{
		{0, 0}, {1, 1}, {7, 7}, // exact singletons
		{8, 8}, {15, 15}, // first split octave, shift 0
		{16, 16}, {17, 16}, {18, 17}, // octave [16,32): width-2 sub-buckets
		{31, 23}, {32, 24}, // octave boundary
		{1000, bucketIdx(1000)},
		{-5, 0},                    // negative clamps to zero
		{1 << 62, histBuckets - 1}, // beyond histMaxMajor clamps to last
		{int64(^uint64(0) >> 1), histBuckets - 1},
	}
	for _, g := range golden {
		if got := bucketIdx(g.ns); got != g.idx {
			t.Errorf("bucketIdx(%d) = %d, want %d", g.ns, got, g.idx)
		}
	}

	// Every bucket's upper edge must map back into that bucket, and edges
	// must be contiguous: upper(i)+1 lands in bucket i+1.
	for i := 0; i < histBuckets-1; i++ {
		up := bucketUpper(i)
		if got := bucketIdx(up); got != i {
			t.Fatalf("bucketIdx(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if got := bucketIdx(up + 1); got != i+1 {
			t.Fatalf("bucketIdx(%d+1) = %d, want %d", up, got, i+1)
		}
		if next := bucketUpper(i + 1); next <= up {
			t.Fatalf("bucketUpper not increasing at %d: %d -> %d", i, up, next)
		}
	}

	// Relative bucket width stays within the designed 12.5% above the
	// singleton range.
	for i := histMinors; i < histBuckets; i++ {
		up, lo := bucketUpper(i), bucketUpper(i-1)+1
		if width := up - lo + 1; float64(width) > 0.125*float64(lo)+1 {
			t.Fatalf("bucket %d too wide: [%d,%d]", i, lo, up)
		}
	}
}

// TestQuantileVsSortedReference drives randomized inputs through the
// histogram and checks every extracted quantile against the exact
// nearest-rank statistic of the sorted sample, within one bucket's
// relative resolution.
func TestQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		n := 100 + rng.Intn(5000)
		samples := make([]int64, n)
		for i := range samples {
			// log-uniform spread: ns to ~minutes
			v := int64(1) << uint(rng.Intn(36))
			v += rng.Int63n(v + 1)
			samples[i] = v
			h.ObserveNS(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		if snap.Count != uint64(n) {
			t.Fatalf("count = %d, want %d", snap.Count, n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			rank := int(float64(n)*q+0.9999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			exact := samples[rank]
			got := int64(snap.Quantile(q))
			// The histogram reports the containing bucket's upper edge, so
			// it can only overshoot, and by at most one bucket width.
			if got < exact {
				t.Fatalf("q%.2f = %d below exact %d", q, got, exact)
			}
			if float64(got) > float64(exact)*1.126+1 {
				t.Fatalf("q%.2f = %d, exact %d: error > bucket resolution", q, got, exact)
			}
		}
		if got, want := int64(snap.Quantile(1)), samples[n-1]; got != want {
			t.Fatalf("Quantile(1) = %d, want exact max %d", got, want)
		}
	}
}

// TestConcurrentMergeEquivalence bumps one shared histogram from many
// goroutines and separately each goroutine's private histogram, then
// checks the merged private snapshots equal the shared snapshot. Run
// under -race this also exercises the atomic paths.
func TestConcurrentMergeEquivalence(t *testing.T) {
	const workers, per = 8, 2000
	shared := NewHistogram()
	privs := make([]*Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		privs[w] = NewHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				v := rng.Int63n(int64(10 * time.Second))
				shared.ObserveNS(v)
				privs[w].ObserveNS(v)
			}
		}(w)
	}
	wg.Wait()
	var merged Snapshot
	for _, p := range privs {
		merged.Merge(p.Snapshot())
	}
	got := shared.Snapshot()
	if got != merged {
		t.Fatalf("merged private snapshots != shared snapshot\nshared: count=%d sum=%d max=%d\nmerged: count=%d sum=%d max=%d",
			got.Count, got.Sum, got.Max, merged.Count, merged.Sum, merged.Max)
	}
}

// TestSnapshotSub checks interval deltas: observe, snapshot, observe
// more, and the difference must describe only the second batch.
func TestSnapshotSub(t *testing.T) {
	h := NewHistogram()
	h.ObserveNS(100)
	h.ObserveNS(200)
	before := h.Snapshot()
	h.ObserveNS(1000)
	h.ObserveNS(3000)
	after := h.Snapshot()
	after.Sub(before)
	if after.Count != 2 || after.Sum != 4000 {
		t.Fatalf("delta count=%d sum=%d, want 2/4000", after.Count, after.Sum)
	}
	if got := int64(after.Quantile(0.5)); got < 1000 || got > 1125 {
		t.Fatalf("delta p50 = %d, want ~1000", got)
	}
}

func TestEmptySnapshot(t *testing.T) {
	var s Snapshot
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}
