package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210, Parent: 0x1122334455667788, Hop: 7}
	h := tc.String()
	if len(h) != 52 || h[32] != '-' || h[49] != '-' {
		t.Fatalf("header shape wrong: %q", h)
	}
	if got := ParseTraceHeader(h); got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}
	// Uppercase hex parses too (forgiving on input, lowercase on output).
	if got := ParseTraceHeader(strings.ToUpper(h)); got != tc {
		t.Fatalf("uppercase round trip: got %+v want %+v", got, tc)
	}
	if tc.TraceID() != "0123456789abcdeffedcba9876543210" {
		t.Fatalf("trace id rendering: %q", tc.TraceID())
	}
}

func TestParseTraceHeaderMalformed(t *testing.T) {
	good := TraceContext{Hi: 1, Lo: 2, Parent: 3, Hop: 4}.String()
	bad := []string{
		"",
		"not-a-header",
		good[:len(good)-1],                 // truncated
		good + "0",                         // too long
		strings.Replace(good, "-", "_", 1), // wrong separator
		"zz" + good[2:],                    // non-hex digits
	}
	for _, s := range bad {
		if tc := ParseTraceHeader(s); tc.Valid() {
			t.Fatalf("malformed header %q parsed as %+v", s, tc)
		}
	}
}

func TestNewTraceAndSpanIDs(t *testing.T) {
	a, b := NewTrace(), NewTrace()
	if !a.Valid() || !b.Valid() {
		t.Fatal("minted trace invalid")
	}
	if a == b {
		t.Fatalf("two minted traces collided: %+v", a)
	}
	if a.Hop != 0 || a.Parent != 0 {
		t.Fatalf("root trace must start at hop 0 with no parent: %+v", a)
	}
	ids := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 || ids[id] {
			t.Fatalf("span id %d zero or duplicate at iteration %d", id, i)
		}
		ids[id] = true
	}
}

func TestHopSemantics(t *testing.T) {
	root := NewSpan(1, "fleet")
	root.SetTrace(NewTrace())

	// In-process child: same trace, same hop, parented under the span.
	child := root.ChildCtx()
	if child.Hi != root.TraceHi || child.Lo != root.TraceLo {
		t.Fatal("child left the trace")
	}
	if child.Hop != root.Hop || child.Parent != root.SpanID {
		t.Fatalf("child ctx: %+v (root hop %d, span %d)", child, root.Hop, root.SpanID)
	}

	// Cross-process transfer: hop increments.
	out := root.Propagate()
	if out.Hop != root.Hop+1 || out.Parent != root.SpanID {
		t.Fatalf("propagated ctx: %+v", out)
	}

	// The receiving span stamps the inbound identity.
	srv := NewSpan(2, "http")
	srv.SetTrace(ParseTraceHeader(out.String()))
	if srv.TraceID() != root.TraceID() || srv.Hop != root.Hop+1 {
		t.Fatalf("server span: trace %q hop %d, want %q hop %d",
			srv.TraceID(), srv.Hop, root.TraceID(), root.Hop+1)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context yielded a trace")
	}
	// An invalid context attached to ctx reads back as absent.
	ctx := ContextWithTrace(context.Background(), TraceContext{})
	if _, ok := TraceFromContext(ctx); ok {
		t.Fatal("invalid trace context treated as present")
	}
	tc := NewTrace()
	got, ok := TraceFromContext(ContextWithTrace(context.Background(), tc))
	if !ok || got != tc {
		t.Fatalf("trace did not round-trip through context: %+v ok=%v", got, ok)
	}
}

func TestSpanAnnotations(t *testing.T) {
	var nilSpan *Span
	nilSpan.Annotate("k", "v") // must not panic
	if nilSpan.TraceID() != "" {
		t.Fatal("nil span reported a trace id")
	}
	s := NewSpan(3, "fleet")
	s.SetTrace(NewTrace())
	s.Annotate("member", "r1")
	s.Annotate("attempt", "0")
	tr := NewTracer(4, 0)
	tr.Finish(s, 0, "")
	got := tr.Recent()[0]
	if len(got.Notes) != 2 || got.Notes[0] != "member=r1" || got.Notes[1] != "attempt=0" {
		t.Fatalf("notes = %+v", got.Notes)
	}
	if got.TraceID == "" || got.SpanID == "" {
		t.Fatalf("trace identity missing from view: %+v", got)
	}
}
