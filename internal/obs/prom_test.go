package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestExpositionRoundTrip renders a registry with all three metric kinds
// and re-parses it, checking the parsed samples match what was recorded
// and that histogram bucket series are cumulative and consistent.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.", L("transport", "http"), L("family", "sssp"))
	c.Add(42)
	r.Gauge("test_resident", "Resident graphs.", func() float64 { return 3 })
	h := r.Histogram("test_latency_seconds", "Latency.", L("family", "sssp"))
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(500 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"# TYPE test_resident gauge",
		"# TYPE test_latency_seconds histogram",
		"# HELP test_requests_total Requests.",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("self-rendered exposition failed to parse: %v\n%s", err, text)
	}
	// Labels sort by key: family before transport.
	if got := samples[`test_requests_total{family="sssp",transport="http"}`]; got != 42 {
		t.Fatalf("counter sample = %v", got)
	}
	if got := samples[`test_resident`]; got != 3 {
		t.Fatalf("gauge sample = %v", got)
	}
	if got := samples[`test_latency_seconds_count{family="sssp"}`]; got != 3 {
		t.Fatalf("hist count = %v", got)
	}
	if got := samples[`test_latency_seconds_bucket{family="sssp",le="+Inf"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %v", got)
	}
	sum := samples[`test_latency_seconds_sum{family="sssp"}`]
	if sum < 0.502 || sum > 0.504 {
		t.Fatalf("hist sum = %v, want ~0.503", sum)
	}
	// Cumulative buckets never decrease and end at count.
	var prev float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "test_latency_seconds_bucket") {
			continue
		}
		key, _, _ := strings.Cut(line, " ")
		v := samples[key]
		if v < prev {
			t.Fatalf("bucket series not cumulative at %s: %v < %v", key, v, prev)
		}
		prev = v
	}
	if prev != 3 {
		t.Fatalf("last bucket = %v, want count 3", prev)
	}
}

// TestParseExpositionRejects feeds malformed lines the CI gate must fail
// on.
func TestParseExpositionRejects(t *testing.T) {
	bad := []string{
		"no_value_here",
		"1leading_digit 3",
		`m{label~="x"} 1`,
		`m{l="unterminated} 1`,
		`m{l="x"} notanumber`,
		`m{l="x"} 1 badtimestamp`,
		"# BOGUS m counter",
		"# TYPE m frobnicator",
		"# TYPE m",
		`m{l="a"} 1` + "\n" + `m{l="a"} 2`, // duplicate series
		`m{l="bad\escape"} 1`,
	}
	for _, in := range bad {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("ParseExposition accepted malformed input %q", in)
		}
	}
}

// TestParseExpositionAccepts covers valid corners: timestamps, escaped
// label values, label order canonicalization, trailing commas.
func TestParseExpositionAccepts(t *testing.T) {
	in := strings.Join([]string{
		"# HELP m Some help with spaces.",
		"# TYPE m counter",
		`m{z="1",a="2"} 5 1700000000000`,
		`m{a="es\"c\\ap\ne",} 7`,
		"plain 1.5e-3",
	}, "\n")
	samples, err := ParseExposition([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples[`m{a="2",z="1"}`]; got != 5 {
		t.Fatalf("label canonicalization failed: %v", samples)
	}
	if got := samples[`m{a="es\"c\\ap\ne"}`]; got != 7 {
		t.Fatalf("escape round-trip failed: %v", samples)
	}
	if got := samples["plain"]; got != 0.0015 {
		t.Fatalf("plain sample = %v", got)
	}
}

// TestRegistryIdempotent checks get-or-create returns the same handle
// and kind mismatches panic.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("idem_total", "x", L("k", "v"))
	b := r.Counter("idem_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not shared")
	}
	c := r.Counter("idem_total", "x", L("k", "w"))
	if c == a {
		t.Fatal("distinct labels returned same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch did not panic")
			}
		}()
		r.Histogram("idem_total", "x")
	}()
}

// TestGaugeReplace checks re-registering a gauge swaps the callback.
func TestGaugeReplace(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "x", func() float64 { return 1 })
	r.Gauge("g", "x", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if samples["g"] != 2 {
		t.Fatalf("gauge = %v after replace", samples["g"])
	}
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	RegisterRuntimeGauges(r) // idempotent
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if samples["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", samples["go_goroutines"])
	}
	if samples["go_memstats_heap_alloc_bytes"] <= 0 {
		t.Fatalf("heap gauge = %v", samples["go_memstats_heap_alloc_bytes"])
	}
}
