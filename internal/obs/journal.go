package obs

// The ops event journal: a bounded ring of typed fleet events (ejects,
// re-admits, epoch bumps, adopts, peer restores, drains) so membership
// churn is inspectable after the fact and cross-linked to the trace
// that caused it. The fleet client records into it as routing decisions
// fire; cmd/flowdfleet serves it on /fleetz next to the ring epoch the
// events explain.

import (
	"sync"
	"time"
)

// EventType names one kind of fleet membership or recovery event.
type EventType string

const (
	// EventEject: a member was marked dead after an unavailable call.
	EventEject EventType = "eject"
	// EventReadmit: a probe saw the member healthy and re-admitted it.
	EventReadmit EventType = "readmit"
	// EventEpochBump: ring epoch advanced (every eject/readmit bumps it).
	EventEpochBump EventType = "epoch_bump"
	// EventAdopt: a member registered a graph it did not own before,
	// because routing moved the graph to it.
	EventAdopt EventType = "adopt"
	// EventPeerRestore: an adopted or standby graph was restored from a
	// peer's snapshot stream instead of a cold rebuild.
	EventPeerRestore EventType = "peer_restore"
	// EventDrain: a member was drained (graceful shutdown).
	EventDrain EventType = "drain"
)

// Event is one journal entry. TraceID links the event to the request
// trace whose routing caused it, where one exists.
type Event struct {
	Seq     int64     `json:"seq"`
	UnixMS  int64     `json:"unix_ms"`
	Type    EventType `json:"type"`
	Member  string    `json:"member,omitempty"`
	Graph   string    `json:"graph,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// DefaultJournalRing is the journal size when unconfigured.
const DefaultJournalRing = 256

// Journal is a bounded, concurrency-safe ring of Events.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	at      int
	seq     int64
	dropped int64
}

// NewJournal sizes the ring; zero or negative takes the default.
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = DefaultJournalRing
	}
	return &Journal{ring: make([]Event, 0, size)}
}

// Record stamps sequence and time onto e and appends it, overwriting
// the oldest entry once the ring is full.
func (j *Journal) Record(e Event) {
	now := time.Now().UnixMilli()
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if e.UnixMS == 0 {
		e.UnixMS = now
	}
	var wrapped bool
	if j.at, wrapped = push(&j.ring, j.at, cap(j.ring), e); wrapped {
		j.dropped++
	}
	j.mu.Unlock()
}

// Recent returns the retained events, newest first.
func (j *Journal) Recent() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return drain(j.ring, j.at)
}

// Total returns how many events have ever been recorded.
func (j *Journal) Total() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dropped returns how many events a ring wrap has overwritten.
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
