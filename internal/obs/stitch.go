package obs

// Cross-replica trace stitching: /fleettracez drains every replica's
// tracer ring plus the fleet client's own and hands the spans here.
// Spans sharing a trace id become one TraceView ordered by (hop, start)
// — the control-transfer order — and traces come back newest-first.

import "sort"

// TraceView is one stitched end-to-end trace.
type TraceView struct {
	TraceID     string     `json:"trace_id"`
	StartUnixMS int64      `json:"start_unix_ms"`
	TotalMS     float64    `json:"total_ms"` // earliest span start to latest span end
	Hops        int        `json:"hops"`     // distinct hop values seen
	Spans       []SpanView `json:"spans"`
}

// Stitch groups spans from any number of rings by trace id. Untraced
// spans are skipped; a span appearing in several rings (e.g. both the
// recent and slow rings of one tracer) counts once. Within a trace,
// spans order by (hop, start, span id); traces return newest-first by
// start time.
func Stitch(rings ...[]SpanView) []TraceView {
	type spanKey struct {
		trace, span string
		start       int64
	}
	seen := make(map[spanKey]bool)
	byTrace := make(map[string][]SpanView)
	for _, ring := range rings {
		for _, v := range ring {
			if v.TraceID == "" {
				continue
			}
			k := spanKey{v.TraceID, v.SpanID, v.StartUnixMS}
			if seen[k] {
				continue
			}
			seen[k] = true
			byTrace[v.TraceID] = append(byTrace[v.TraceID], v)
		}
	}
	out := make([]TraceView, 0, len(byTrace))
	for id, spans := range byTrace {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Hop != spans[j].Hop {
				return spans[i].Hop < spans[j].Hop
			}
			if spans[i].StartUnixMS != spans[j].StartUnixMS {
				return spans[i].StartUnixMS < spans[j].StartUnixMS
			}
			return spans[i].SpanID < spans[j].SpanID
		})
		tv := TraceView{TraceID: id, Spans: spans}
		hops := make(map[int]bool)
		var endMS float64
		for i, v := range spans {
			hops[v.Hop] = true
			if i == 0 || v.StartUnixMS < tv.StartUnixMS {
				tv.StartUnixMS = v.StartUnixMS
			}
			if e := float64(v.StartUnixMS) + v.TotalMS; e > endMS {
				endMS = e
			}
		}
		tv.Hops = len(hops)
		tv.TotalMS = endMS - float64(tv.StartUnixMS)
		out = append(out, tv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixMS != out[j].StartUnixMS {
			return out[i].StartUnixMS > out[j].StartUnixMS
		}
		return out[i].TraceID > out[j].TraceID
	})
	return out
}
