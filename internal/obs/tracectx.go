package obs

// Distributed trace identity. A TraceContext names one end-to-end
// request — a 128-bit trace id minted at the first span (usually the
// fleet client), plus the parent span id and the hop count of the edge
// being crossed. It travels over the HTTP plane in the X-Pf-Trace
// header and over the wire plane in the version-2 frame's trace block;
// every replica that receives one stamps its server span with the
// inbound identity so /fleettracez can stitch the per-replica rings
// back into one tree.
//
// Hop semantics: the span that mints a trace sits at hop 0. Spans
// created in the same process under a parent share its hop; crossing a
// process boundary (HTTP request, wire frame) increments it. So hop
// counts the number of control transfers, not the number of spans.

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a TraceContext across the HTTP plane, formatted
// by TraceContext.String and parsed by ParseTraceHeader.
const TraceHeader = "X-Pf-Trace"

// TraceContext is the propagated trace identity.
type TraceContext struct {
	Hi, Lo uint64 // 128-bit trace id; zero means "no trace"
	Parent uint64 // span id of the sender's span, 0 at the root
	Hop    uint8  // control transfers taken so far
}

// Valid reports whether tc names a trace at all.
func (tc TraceContext) Valid() bool { return tc.Hi|tc.Lo != 0 }

// TraceID renders the 128-bit trace id as 32 hex digits.
func (tc TraceContext) TraceID() string {
	return fmt.Sprintf("%016x%016x", tc.Hi, tc.Lo)
}

// String renders the header form: 32-hex trace id, 16-hex parent span
// id, 2-hex hop, dash-separated.
func (tc TraceContext) String() string {
	return fmt.Sprintf("%016x%016x-%016x-%02x", tc.Hi, tc.Lo, tc.Parent, tc.Hop)
}

// ParseTraceHeader decodes the String form. Absent or malformed input
// returns the zero (invalid) context: a bad header degrades to an
// untraced request, it never fails one.
func ParseTraceHeader(s string) TraceContext {
	if len(s) != 32+1+16+1+2 || s[32] != '-' || s[49] != '-' {
		return TraceContext{}
	}
	var tc TraceContext
	var ok bool
	if tc.Hi, ok = parseHex(s[:16]); !ok {
		return TraceContext{}
	}
	if tc.Lo, ok = parseHex(s[16:32]); !ok {
		return TraceContext{}
	}
	if tc.Parent, ok = parseHex(s[33:49]); !ok {
		return TraceContext{}
	}
	h, ok := parseHex(s[50:52])
	if !ok {
		return TraceContext{}
	}
	tc.Hop = uint8(h)
	return tc
}

// parseHex decodes fixed-width lowercase/uppercase hex without the
// strconv error allocation on the hot header path.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// Per-process id source: trace ids need only be unique with high
// probability across the fleet, so a seeded PRNG behind a mutex is
// plenty — and span ids come from an atomic counter striding from a
// random base, keeping the per-request cost to one atomic add.
var traceRng = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(rngSeed()))}

func rngSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return int64(binary.LittleEndian.Uint64(b[:]))
	}
	return time.Now().UnixNano()
}

func randU64() uint64 {
	traceRng.mu.Lock()
	v := traceRng.r.Uint64()
	traceRng.mu.Unlock()
	return v
}

var spanIDCtr = func() *atomic.Uint64 {
	var a atomic.Uint64
	a.Store(randU64())
	return &a
}()

// NewTrace mints a fresh root trace context (hop 0, no parent).
func NewTrace() TraceContext {
	tc := TraceContext{Hi: randU64(), Lo: randU64()}
	if !tc.Valid() {
		tc.Lo = 1
	}
	return tc
}

// NewSpanID returns a process-unique nonzero span id: a golden-ratio
// stride from a random per-process base, so concurrent spans pay one
// atomic add instead of a PRNG lock.
func NewSpanID() uint64 {
	for {
		if v := spanIDCtr.Add(0x9e3779b97f4a7c15); v != 0 {
			return v
		}
	}
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace context for the next outbound hop:
// the HTTP client stamps it into X-Pf-Trace, the wire client into the
// frame trace block.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the attached trace context, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
