package obs

// Lightweight per-request tracing: a Span accumulates per-phase wall
// time as the request crosses the serving layers (decode → store acquire
// → substrate build → execution → encode → write), keyed by the request
// id that already flows through the HTTP and wire planes. Spans are
// carried down the stack via context — store, artifact and decode mark
// their phases without any API signature changes — and finished spans
// land in a bounded ring (plus a separate slow-query ring above a
// configurable threshold) that /tracez serves as JSON.
//
// Phase counters are atomic: a batch request's worker goroutines share
// one span, so concurrent marks must not race.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one segment of a request's life.
type Phase int

const (
	// PhaseDecode: parsing and validating the request payload.
	PhaseDecode Phase = iota
	// PhaseAcquire: store registry lookup, LRU touch, pin (including any
	// disk-tier restore a miss triggers).
	PhaseAcquire
	// PhaseBuild: substrate construction charged to this request (the
	// singleflight builder's wall; waiters charge nothing here).
	PhaseBuild
	// PhaseExec: query execution against the pinned bundle — decode
	// engine or simulated route — inclusive of PhaseBuild time, which is
	// reported separately to split build-heavy from decode-heavy requests.
	PhaseExec
	// PhaseEncode: response encoding (on the HTTP plane this includes the
	// network write: encoder and ResponseWriter are fused).
	PhaseEncode
	// PhaseWrite: response write where it is separable from encoding
	// (unused on HTTP; the wire plane's writer-queue dwell has its own
	// histogram since frames outlive their span).
	PhaseWrite
	NumPhases
)

var phaseNames = [NumPhases]string{"decode", "acquire", "build", "exec", "encode", "write"}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Span is one request's phase accounting. Identity fields are written
// once by the owning handler before the span enters shared contexts;
// phase marks are atomic, and annotations take a mutex (they are rare:
// fleet control-plane events, not per-query marks).
type Span struct {
	ID        uint64
	SpanID    uint64 // process-unique id for parent/child stitching
	Transport string // "http" | "wire" | "fleet"
	Family    string // query op, or "batch"
	Graph     string
	Route     string // "fast" | "sim" | ""
	Start     time.Time

	// Trace identity: the 128-bit trace this span belongs to, the span
	// id of its parent, and the hop it executes at. Written once by the
	// owner via SetTrace before the span is shared.
	TraceHi, TraceLo uint64
	Parent           uint64
	Hop              uint8

	phases [NumPhases]atomic.Int64 // ns

	noteMu sync.Mutex
	notes  []string
}

// NewSpan starts a span for one request.
func NewSpan(id uint64, transport string) *Span {
	return &Span{ID: id, SpanID: NewSpanID(), Transport: transport, Start: time.Now()}
}

// SetTrace stamps the span with an inbound trace identity: the span
// executes at the context's hop, under the context's parent.
func (s *Span) SetTrace(tc TraceContext) {
	s.TraceHi, s.TraceLo = tc.Hi, tc.Lo
	s.Parent = tc.Parent
	s.Hop = tc.Hop
}

// TraceID renders the span's trace id, or "" when untraced.
func (s *Span) TraceID() string {
	if s == nil || s.TraceHi|s.TraceLo == 0 {
		return ""
	}
	return TraceContext{Hi: s.TraceHi, Lo: s.TraceLo}.TraceID()
}

// ChildCtx derives the context for a child span in the same process:
// same trace, same hop, parented under this span.
func (s *Span) ChildCtx() TraceContext {
	return TraceContext{Hi: s.TraceHi, Lo: s.TraceLo, Parent: s.SpanID, Hop: s.Hop}
}

// Propagate derives the context for the next outbound hop: same trace,
// parented under this span, hop incremented for the control transfer.
func (s *Span) Propagate() TraceContext {
	return TraceContext{Hi: s.TraceHi, Lo: s.TraceLo, Parent: s.SpanID, Hop: s.Hop + 1}
}

// Annotate attaches a key=value note to the span (route decisions,
// member names, attempt counts). Nil-tolerant like the phase marks.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.noteMu.Lock()
	s.notes = append(s.notes, key+"="+value)
	s.noteMu.Unlock()
}

// Add charges d to phase p.
func (s *Span) Add(p Phase, d time.Duration) {
	if s == nil || p < 0 || p >= NumPhases {
		return
	}
	s.phases[p].Add(d.Nanoseconds())
}

// MarkSince charges the wall since t0 to phase p and returns that
// duration (so callers can feed the same measurement to a histogram).
func (s *Span) MarkSince(p Phase, t0 time.Time) time.Duration {
	d := time.Since(t0)
	s.Add(p, d)
	return d
}

// PhaseNS returns the accumulated nanoseconds of phase p.
func (s *Span) PhaseNS(p Phase) int64 {
	if s == nil || p < 0 || p >= NumPhases {
		return 0
	}
	return s.phases[p].Load()
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to ctx for the layers below.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached to ctx, or nil. All Span
// methods tolerate a nil receiver, so callers may mark unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanView is the JSON shape of a finished span served on /tracez.
type SpanView struct {
	ID          uint64             `json:"id"`
	Transport   string             `json:"transport"`
	Family      string             `json:"family"`
	Graph       string             `json:"graph,omitempty"`
	Route       string             `json:"route,omitempty"`
	Err         string             `json:"err,omitempty"`
	TraceID     string             `json:"trace_id,omitempty"`
	SpanID      string             `json:"span_id,omitempty"`
	ParentID    string             `json:"parent_id,omitempty"`
	Hop         int                `json:"hop"`
	Notes       []string           `json:"notes,omitempty"`
	StartUnixMS int64              `json:"start_unix_ms"`
	TotalMS     float64            `json:"total_ms"`
	PhasesMS    map[string]float64 `json:"phases_ms,omitempty"`
}

// view freezes a finished span. Only nonzero phases are materialized.
func view(s *Span, total time.Duration, errMsg string) SpanView {
	v := SpanView{
		ID: s.ID, Transport: s.Transport, Family: s.Family,
		Graph: s.Graph, Route: s.Route, Err: errMsg,
		TraceID:     s.TraceID(),
		Hop:         int(s.Hop),
		StartUnixMS: s.Start.UnixMilli(),
		TotalMS:     float64(total.Microseconds()) / 1000,
	}
	if s.SpanID != 0 {
		v.SpanID = fmt.Sprintf("%016x", s.SpanID)
	}
	if s.Parent != 0 {
		v.ParentID = fmt.Sprintf("%016x", s.Parent)
	}
	s.noteMu.Lock()
	if len(s.notes) > 0 {
		v.Notes = append([]string(nil), s.notes...)
	}
	s.noteMu.Unlock()
	for p := Phase(0); p < NumPhases; p++ {
		if ns := s.phases[p].Load(); ns > 0 {
			if v.PhasesMS == nil {
				v.PhasesMS = make(map[string]float64, int(NumPhases))
			}
			v.PhasesMS[p.String()] = float64(ns) / 1e6
		}
	}
	return v
}

// SpanFilter selects spans on /tracez and /fleettracez: zero fields
// match everything.
type SpanFilter struct {
	Family string  // exact family match when nonempty
	Graph  string  // exact graph match when nonempty
	MinMS  float64 // keep spans at least this slow
}

// Empty reports whether the filter matches every span.
func (f SpanFilter) Empty() bool { return f.Family == "" && f.Graph == "" && f.MinMS <= 0 }

// Match reports whether v passes the filter.
func (f SpanFilter) Match(v SpanView) bool {
	if f.Family != "" && v.Family != f.Family {
		return false
	}
	if f.Graph != "" && v.Graph != f.Graph {
		return false
	}
	return v.TotalMS >= f.MinMS
}

// FilterSpans returns the spans passing f, preserving order. The empty
// filter returns the input unchanged (no copy).
func FilterSpans(in []SpanView, f SpanFilter) []SpanView {
	if f.Empty() {
		return in
	}
	out := make([]SpanView, 0, len(in))
	for _, v := range in {
		if f.Match(v) {
			out = append(out, v)
		}
	}
	return out
}

// Tracer keeps the most recent finished spans in a bounded ring and the
// most recent slow ones (total >= threshold) in a second ring.
type Tracer struct {
	mu        sync.Mutex
	recent    []SpanView
	recentAt  int
	slow      []SpanView
	slowAt    int
	threshold time.Duration
	slowTotal int64
	dropped   int64 // spans overwritten on ring wrap, both rings
}

// DefaultTraceRing is the recent-span ring size when unconfigured.
const DefaultTraceRing = 128

// DefaultSlowThreshold flags requests slower than this for the
// slow-query log when unconfigured.
const DefaultSlowThreshold = 250 * time.Millisecond

// NewTracer sizes the rings; zero or negative values take the defaults
// (slow ring defaults to the recent ring's size).
func NewTracer(ring int, threshold time.Duration) *Tracer {
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	return &Tracer{
		recent:    make([]SpanView, 0, ring),
		slow:      make([]SpanView, 0, ring),
		threshold: threshold,
	}
}

// Threshold returns the slow-query threshold.
func (t *Tracer) Threshold() time.Duration { return t.threshold }

// SlowCount returns how many finished spans crossed the threshold.
func (t *Tracer) SlowCount() int64 { return atomic.LoadInt64(&t.slowTotal) }

// Dropped returns how many finished spans a ring wrap has overwritten —
// the registry exposes it as trace_spans_dropped_total so a too-small
// ring stops being a silent loss.
func (t *Tracer) Dropped() int64 { return atomic.LoadInt64(&t.dropped) }

// Finish records a completed span and reports whether it was slow. The
// span must not be marked after Finish.
func (t *Tracer) Finish(s *Span, total time.Duration, errMsg string) bool {
	v := view(s, total, errMsg)
	slow := total >= t.threshold
	overwrote := 0
	t.mu.Lock()
	var wrapped bool
	if t.recentAt, wrapped = push(&t.recent, t.recentAt, cap(t.recent), v); wrapped {
		overwrote++
	}
	if slow {
		if t.slowAt, wrapped = push(&t.slow, t.slowAt, cap(t.slow), v); wrapped {
			overwrote++
		}
	}
	t.mu.Unlock()
	if slow {
		atomic.AddInt64(&t.slowTotal, 1)
	}
	if overwrote > 0 {
		atomic.AddInt64(&t.dropped, int64(overwrote))
	}
	return slow
}

// push appends v into the ring backing slice, overwriting the oldest
// entry once full, and returns the next write position plus whether an
// entry was overwritten.
func push[T any](ring *[]T, at, size int, v T) (int, bool) {
	if len(*ring) < size {
		*ring = append(*ring, v)
		return 0, false // position unused until the ring wraps
	}
	if at >= size {
		at = 0
	}
	(*ring)[at] = v
	return at + 1, true
}

// Recent returns the retained spans, newest first.
func (t *Tracer) Recent() []SpanView {
	t.mu.Lock()
	defer t.mu.Unlock()
	return drain(t.recent, t.recentAt)
}

// Slow returns the retained slow spans, newest first.
func (t *Tracer) Slow() []SpanView {
	t.mu.Lock()
	defer t.mu.Unlock()
	return drain(t.slow, t.slowAt)
}

// drain copies a ring out newest-first. While the ring is still filling,
// the newest entry is the last appended; after wrapping, it is the one
// just before the write cursor.
func drain[T any](ring []T, at int) []T {
	out := make([]T, 0, len(ring))
	if len(ring) < cap(ring) {
		for i := len(ring) - 1; i >= 0; i-- {
			out = append(out, ring[i])
		}
		return out
	}
	for i := 0; i < len(ring); i++ {
		idx := at - 1 - i
		for idx < 0 {
			idx += len(ring)
		}
		out = append(out, ring[idx])
	}
	return out
}
