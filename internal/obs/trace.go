package obs

// Lightweight per-request tracing: a Span accumulates per-phase wall
// time as the request crosses the serving layers (decode → store acquire
// → substrate build → execution → encode → write), keyed by the request
// id that already flows through the HTTP and wire planes. Spans are
// carried down the stack via context — store, artifact and decode mark
// their phases without any API signature changes — and finished spans
// land in a bounded ring (plus a separate slow-query ring above a
// configurable threshold) that /tracez serves as JSON.
//
// Phase counters are atomic: a batch request's worker goroutines share
// one span, so concurrent marks must not race.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one segment of a request's life.
type Phase int

const (
	// PhaseDecode: parsing and validating the request payload.
	PhaseDecode Phase = iota
	// PhaseAcquire: store registry lookup, LRU touch, pin (including any
	// disk-tier restore a miss triggers).
	PhaseAcquire
	// PhaseBuild: substrate construction charged to this request (the
	// singleflight builder's wall; waiters charge nothing here).
	PhaseBuild
	// PhaseExec: query execution against the pinned bundle — decode
	// engine or simulated route — inclusive of PhaseBuild time, which is
	// reported separately to split build-heavy from decode-heavy requests.
	PhaseExec
	// PhaseEncode: response encoding (on the HTTP plane this includes the
	// network write: encoder and ResponseWriter are fused).
	PhaseEncode
	// PhaseWrite: response write where it is separable from encoding
	// (unused on HTTP; the wire plane's writer-queue dwell has its own
	// histogram since frames outlive their span).
	PhaseWrite
	NumPhases
)

var phaseNames = [NumPhases]string{"decode", "acquire", "build", "exec", "encode", "write"}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Span is one request's phase accounting. Identity fields are written
// once by the owning handler before the span enters shared contexts;
// phase marks are atomic.
type Span struct {
	ID        uint64
	Transport string // "http" | "wire"
	Family    string // query op, or "batch"
	Graph     string
	Route     string // "fast" | "sim" | ""
	Start     time.Time

	phases [NumPhases]atomic.Int64 // ns
}

// NewSpan starts a span for one request.
func NewSpan(id uint64, transport string) *Span {
	return &Span{ID: id, Transport: transport, Start: time.Now()}
}

// Add charges d to phase p.
func (s *Span) Add(p Phase, d time.Duration) {
	if s == nil || p < 0 || p >= NumPhases {
		return
	}
	s.phases[p].Add(d.Nanoseconds())
}

// MarkSince charges the wall since t0 to phase p and returns that
// duration (so callers can feed the same measurement to a histogram).
func (s *Span) MarkSince(p Phase, t0 time.Time) time.Duration {
	d := time.Since(t0)
	s.Add(p, d)
	return d
}

// PhaseNS returns the accumulated nanoseconds of phase p.
func (s *Span) PhaseNS(p Phase) int64 {
	if s == nil || p < 0 || p >= NumPhases {
		return 0
	}
	return s.phases[p].Load()
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to ctx for the layers below.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached to ctx, or nil. All Span
// methods tolerate a nil receiver, so callers may mark unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanView is the JSON shape of a finished span served on /tracez.
type SpanView struct {
	ID          uint64             `json:"id"`
	Transport   string             `json:"transport"`
	Family      string             `json:"family"`
	Graph       string             `json:"graph,omitempty"`
	Route       string             `json:"route,omitempty"`
	Err         string             `json:"err,omitempty"`
	StartUnixMS int64              `json:"start_unix_ms"`
	TotalMS     float64            `json:"total_ms"`
	PhasesMS    map[string]float64 `json:"phases_ms,omitempty"`
}

// view freezes a finished span. Only nonzero phases are materialized.
func view(s *Span, total time.Duration, errMsg string) SpanView {
	v := SpanView{
		ID: s.ID, Transport: s.Transport, Family: s.Family,
		Graph: s.Graph, Route: s.Route, Err: errMsg,
		StartUnixMS: s.Start.UnixMilli(),
		TotalMS:     float64(total.Microseconds()) / 1000,
	}
	for p := Phase(0); p < NumPhases; p++ {
		if ns := s.phases[p].Load(); ns > 0 {
			if v.PhasesMS == nil {
				v.PhasesMS = make(map[string]float64, int(NumPhases))
			}
			v.PhasesMS[p.String()] = float64(ns) / 1e6
		}
	}
	return v
}

// Tracer keeps the most recent finished spans in a bounded ring and the
// most recent slow ones (total >= threshold) in a second ring.
type Tracer struct {
	mu        sync.Mutex
	recent    []SpanView
	recentAt  int
	slow      []SpanView
	slowAt    int
	threshold time.Duration
	slowTotal int64
}

// DefaultTraceRing is the recent-span ring size when unconfigured.
const DefaultTraceRing = 128

// DefaultSlowThreshold flags requests slower than this for the
// slow-query log when unconfigured.
const DefaultSlowThreshold = 250 * time.Millisecond

// NewTracer sizes the rings; zero or negative values take the defaults
// (slow ring defaults to the recent ring's size).
func NewTracer(ring int, threshold time.Duration) *Tracer {
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	return &Tracer{
		recent:    make([]SpanView, 0, ring),
		slow:      make([]SpanView, 0, ring),
		threshold: threshold,
	}
}

// Threshold returns the slow-query threshold.
func (t *Tracer) Threshold() time.Duration { return t.threshold }

// SlowCount returns how many finished spans crossed the threshold.
func (t *Tracer) SlowCount() int64 { return atomic.LoadInt64(&t.slowTotal) }

// Finish records a completed span and reports whether it was slow. The
// span must not be marked after Finish.
func (t *Tracer) Finish(s *Span, total time.Duration, errMsg string) bool {
	v := view(s, total, errMsg)
	slow := total >= t.threshold
	t.mu.Lock()
	t.recentAt = push(&t.recent, t.recentAt, cap(t.recent), v)
	if slow {
		t.slowAt = push(&t.slow, t.slowAt, cap(t.slow), v)
	}
	t.mu.Unlock()
	if slow {
		atomic.AddInt64(&t.slowTotal, 1)
	}
	return slow
}

// push appends v into the ring backing slice, overwriting the oldest
// entry once full, and returns the next write position.
func push(ring *[]SpanView, at, size int, v SpanView) int {
	if len(*ring) < size {
		*ring = append(*ring, v)
		return 0 // unused until the ring wraps
	}
	if at >= size {
		at = 0
	}
	(*ring)[at] = v
	return at + 1
}

// Recent returns the retained spans, newest first.
func (t *Tracer) Recent() []SpanView {
	t.mu.Lock()
	defer t.mu.Unlock()
	return drain(t.recent, t.recentAt)
}

// Slow returns the retained slow spans, newest first.
func (t *Tracer) Slow() []SpanView {
	t.mu.Lock()
	defer t.mu.Unlock()
	return drain(t.slow, t.slowAt)
}

// drain copies a ring out newest-first. While the ring is still filling,
// the newest entry is the last appended; after wrapping, it is the one
// just before the write cursor.
func drain(ring []SpanView, at int) []SpanView {
	out := make([]SpanView, 0, len(ring))
	if len(ring) < cap(ring) {
		for i := len(ring) - 1; i >= 0; i-- {
			out = append(out, ring[i])
		}
		return out
	}
	for i := 0; i < len(ring); i++ {
		idx := at - 1 - i
		for idx < 0 {
			idx += len(ring)
		}
		out = append(out, ring[idx])
	}
	return out
}
