package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(Event{Type: EventEject, Member: fmt.Sprintf("r%d", i)})
	}
	got := j.Recent()
	if len(got) != 4 {
		t.Fatalf("journal kept %d events, want 4", len(got))
	}
	// Newest-first: the last four records, sequence descending.
	for i, wantSeq := range []int64{10, 9, 8, 7} {
		if got[i].Seq != wantSeq {
			t.Fatalf("recent[%d].Seq = %d, want %d (order: %+v)", i, got[i].Seq, wantSeq, got)
		}
		if got[i].UnixMS == 0 {
			t.Fatalf("recent[%d] missing timestamp", i)
		}
	}
	if got[0].Member != "r9" || got[3].Member != "r6" {
		t.Fatalf("wrong events retained: %+v", got)
	}
	if j.Total() != 10 {
		t.Fatalf("Total = %d, want 10", j.Total())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
}

func TestJournalPartialAndFields(t *testing.T) {
	j := NewJournal(8)
	j.Record(Event{Type: EventAdopt, Member: "r1", Graph: "g", TraceID: "abc", Detail: "source=peer"})
	j.Record(Event{Type: EventPeerRestore, Member: "r1", Graph: "g", TraceID: "abc", Detail: "peer=http://x"})
	got := j.Recent()
	if len(got) != 2 || got[0].Type != EventPeerRestore || got[1].Type != EventAdopt {
		t.Fatalf("order/partial drain wrong: %+v", got)
	}
	if got[0].TraceID != "abc" || got[0].Graph != "g" || got[0].Detail != "peer=http://x" {
		t.Fatalf("fields lost: %+v", got[0])
	}
	if j.Dropped() != 0 {
		t.Fatalf("Dropped = %d before any wrap", j.Dropped())
	}
}

// TestTracerDropped pins the ring-wrap overwrite counter the registry
// exports as trace_spans_dropped_total.
func TestTracerDropped(t *testing.T) {
	tr := NewTracer(2, time.Hour)
	for i := 0; i < 5; i++ {
		tr.Finish(NewSpan(uint64(i), "http"), 0, "")
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	// Slow spans land in both rings, so each wrap counts twice.
	slow := NewTracer(2, time.Millisecond)
	for i := 0; i < 3; i++ {
		slow.Finish(NewSpan(uint64(i), "http"), time.Second, "")
	}
	if got := slow.Dropped(); got != 2 {
		t.Fatalf("slow Dropped = %d, want 2 (one wrap in each ring)", got)
	}
}
