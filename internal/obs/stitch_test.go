package obs

import "testing"

func sv(trace, span string, hop int, startMS int64, totalMS float64) SpanView {
	return SpanView{TraceID: trace, SpanID: span, Hop: hop, StartUnixMS: startMS, TotalMS: totalMS}
}

func TestStitchOrdersAndDedupes(t *testing.T) {
	// Two traces spread across three rings, with one span duplicated
	// (present in both a recent and a slow ring) and one untraced span.
	ringA := []SpanView{
		sv("t1", "s2", 1, 105, 5), // t1's server hop
		sv("t2", "s9", 0, 200, 1), // newer trace
		{SpanID: "untraced", StartUnixMS: 50},
	}
	ringB := []SpanView{
		sv("t1", "s1", 0, 100, 20), // t1's root, started first
		sv("t1", "s3", 2, 108, 2),  // t1's deepest hop
	}
	ringC := []SpanView{
		sv("t1", "s2", 1, 105, 5), // duplicate of ringA's
	}
	traces := Stitch(ringA, ringB, ringC)
	if len(traces) != 2 {
		t.Fatalf("stitched %d traces, want 2: %+v", len(traces), traces)
	}
	// Newest-first by start time.
	if traces[0].TraceID != "t2" || traces[1].TraceID != "t1" {
		t.Fatalf("trace order: %s, %s", traces[0].TraceID, traces[1].TraceID)
	}
	t1 := traces[1]
	if len(t1.Spans) != 3 {
		t.Fatalf("t1 deduped to %d spans, want 3: %+v", len(t1.Spans), t1.Spans)
	}
	for i, want := range []string{"s1", "s2", "s3"} {
		if t1.Spans[i].SpanID != want {
			t.Fatalf("t1 span order: got %s at %d, want %s", t1.Spans[i].SpanID, i, want)
		}
	}
	if t1.Hops != 3 {
		t.Fatalf("t1 hops = %d, want 3", t1.Hops)
	}
	if t1.StartUnixMS != 100 {
		t.Fatalf("t1 start = %d, want 100", t1.StartUnixMS)
	}
	// Total spans earliest start (100) to latest end (100+20 = 120).
	if t1.TotalMS != 20 {
		t.Fatalf("t1 total = %v, want 20", t1.TotalMS)
	}
}

func TestStitchSameHopOrdersByStart(t *testing.T) {
	traces := Stitch([]SpanView{
		sv("t", "b", 0, 20, 1),
		sv("t", "a", 0, 10, 1),
		sv("t", "c", 0, 15, 1),
	})
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	got := traces[0].Spans
	if got[0].SpanID != "a" || got[1].SpanID != "c" || got[2].SpanID != "b" {
		t.Fatalf("same-hop order: %s %s %s", got[0].SpanID, got[1].SpanID, got[2].SpanID)
	}
	if traces[0].Hops != 1 {
		t.Fatalf("hops = %d, want 1", traces[0].Hops)
	}
}

func TestFilterSpans(t *testing.T) {
	in := []SpanView{
		{Family: "dist", Graph: "g1", TotalMS: 1},
		{Family: "dist", Graph: "g2", TotalMS: 10},
		{Family: "maxflow", Graph: "g1", TotalMS: 100},
	}
	if got := FilterSpans(in, SpanFilter{}); len(got) != 3 {
		t.Fatalf("empty filter dropped spans: %d", len(got))
	}
	if got := FilterSpans(in, SpanFilter{Family: "dist"}); len(got) != 2 {
		t.Fatalf("family filter: %+v", got)
	}
	if got := FilterSpans(in, SpanFilter{Graph: "g1"}); len(got) != 2 {
		t.Fatalf("graph filter: %+v", got)
	}
	if got := FilterSpans(in, SpanFilter{MinMS: 5}); len(got) != 2 {
		t.Fatalf("min_ms filter: %+v", got)
	}
	got := FilterSpans(in, SpanFilter{Family: "dist", Graph: "g2", MinMS: 5})
	if len(got) != 1 || got[0].Graph != "g2" {
		t.Fatalf("combined filter: %+v", got)
	}
	if !(SpanFilter{}).Empty() || (SpanFilter{Family: "x"}).Empty() {
		t.Fatal("Empty misclassifies filters")
	}
}
