// Package obs is the unified telemetry plane: a dependency-free metric
// registry (lock-free counters, function gauges, log-bucketed latency
// histograms) plus lightweight per-request traces (trace.go) and a
// hand-built Prometheus text exposition (prom.go). Every serving layer —
// store, artifact, decode, wire, flowd — records into the process-wide
// Default registry, so one /metricsz scrape sees the whole stack and
// flowbench can diff registry snapshots around a run for per-phase
// breakdowns.
//
// Hot-path discipline: a metric handle is resolved once (package-level
// var, or a prebuilt per-family map) and every subsequent Observe/Add is
// a handful of atomic bumps — no locks, no allocation, no formatting.
// The registry's own mutex is touched only at registration and scrape
// time.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored: a
// counter never goes down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value read at scrape time via a callback, so
// registering one costs nothing on any request path.
type Gauge struct{ funcValue }

// Value evaluates the gauge (0 before a callback is installed).
func (g *Gauge) Value() float64 { return g.value() }

// funcValue is a scrape-time callback holder shared by gauges and
// callback-backed counters; the mutex only guards callback replacement.
type funcValue struct {
	mu sync.Mutex
	fn func() float64
}

func (f *funcValue) set(fn func() float64) {
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

func (f *funcValue) value() float64 {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// series is one registered metric: its family identity plus exactly one
// of the metric kinds.
type series struct {
	name   string // family name
	labels []Label
	ctr    *Counter
	ctrFn  *funcValue // counter backed by a scrape-time callback
	gauge  *Gauge
	hist   *Histogram
}

// family groups the series of one metric name for exposition.
type family struct {
	name string
	help string
	kind string // "counter" | "gauge" | "histogram"
}

// Registry holds metric series keyed by (name, labels). Get-or-create
// lookups are idempotent: two callers asking for the same (name, labels)
// receive the same handle, which is what lets flowbench share the
// daemon's histograms in-process.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	series   map[string]*series // seriesKey -> series
	order    []string           // registration order of series keys (stable exposition)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, series: map[string]*series{}}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every layer records into.
func Default() *Registry { return defaultRegistry }

// seriesKey renders the canonical identity of one series: the family
// name plus its labels sorted by key — the same rendering the Prometheus
// exposition uses, so a key is also a valid series string.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal Prometheus label name.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// prep validates and canonicalizes a registration request, returning the
// sorted label copy and the series key. Invalid names are programmer
// errors and panic at registration (never on a request path).
func prep(name, kind string, labels []Label) ([]Label, string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Key, name))
		}
	}
	_ = kind
	return ls, seriesKey(name, ls)
}

// register resolves (or creates) one series under the registry lock.
// A kind mismatch against an existing family panics: two layers fighting
// over one name is a bug worth failing loudly on.
func (r *Registry) register(name, help, kind string, labels []Label, mk func() *series) *series {
	ls, key := prep(name, kind, labels)
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.series[key]; s != nil {
		return s
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s = mk()
	s.name, s.labels = name, ls
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. help is recorded on first registration of the family.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels, func() *series {
		return &series{ctr: &Counter{}}
	})
	if s.ctr == nil {
		panic(fmt.Sprintf("obs: series %q is not a counter", seriesKey(name, labels)))
	}
	return s.ctr
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. Values are durations; the exposition is in seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.register(name, help, "histogram", labels, func() *series {
		return &series{hist: NewHistogram()}
	})
	if s.hist == nil {
		panic(fmt.Sprintf("obs: series %q is not a histogram", seriesKey(name, labels)))
	}
	return s.hist
}

// Gauge registers fn as the value of (name, labels), evaluated at scrape
// time. Re-registering the same series replaces the callback.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, "gauge", labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: series %q is not a gauge", seriesKey(name, labels)))
	}
	s.gauge.set(fn)
}

// CounterFunc registers fn as a counter read at scrape time — for layers
// (like the wire transport) that already keep their own atomic counters
// and should not double-bump on the hot path. fn must be monotone.
// Re-registering the same series replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.register(name, help, "counter", labels, func() *series {
		return &series{ctrFn: &funcValue{}}
	})
	if s.ctrFn == nil {
		panic(fmt.Sprintf("obs: series %q is not a callback counter", seriesKey(name, labels)))
	}
	s.ctrFn.set(func() float64 { return float64(fn()) })
}
