package store

// Query-plane entry points: the store-level mirror of PreparedGraph.Do /
// DoBatch / Warm. Each acquires (pins) the graph's bundle exactly once —
// for a batch, that is one registry lookup, one LRU touch and one pin for
// B queries, the amortization the /batch wire endpoint exists for — and
// releases it when execution finishes, re-accounting the footprint and
// running eviction as usual.

import (
	"context"

	"planarflow"
)

// Do executes one query against the graph's bundle, pinned and bound to
// ctx for the duration. hit reports whether the bundle was resident when
// the request arrived.
func (s *Store) Do(ctx context.Context, id string, q planarflow.Query) (a *planarflow.Answer, hit bool, err error) {
	err = s.With(ctx, id, func(pg *planarflow.PreparedGraph, h bool) error {
		hit = h
		var qerr error
		a, qerr = pg.Do(nil, q) // pg is already bound to ctx by With
		return qerr
	})
	if err != nil {
		return nil, hit, err
	}
	return a, hit, nil
}

// DoBatch executes queries under one bundle acquisition: one pin, one LRU
// touch, one footprint re-accounting for the whole batch. Per-query
// failures are isolated in the returned answers (Answer.Err); the error
// return carries batch-level failures (unknown graph, context canceled
// during warmup).
func (s *Store) DoBatch(ctx context.Context, id string, queries []planarflow.Query, opt planarflow.BatchOptions) (answers []*planarflow.Answer, hit bool, err error) {
	err = s.With(ctx, id, func(pg *planarflow.PreparedGraph, h bool) error {
		hit = h
		var berr error
		answers, berr = pg.DoBatch(nil, queries, opt)
		return berr
	})
	return answers, hit, err
}

// Warm eagerly builds the graph's substrates (PreparedGraph.Warm; no
// substrates means the default decode-heavy serving set), so cold-start
// construction happens at registration time instead of on the first user
// query. The warmed bundle is accounted and evictable like any other.
func (s *Store) Warm(ctx context.Context, id string, substrates ...planarflow.Substrate) error {
	return s.With(ctx, id, func(pg *planarflow.PreparedGraph, _ bool) error {
		return pg.Warm(nil, substrates...)
	})
}
