// Package store is the fleet-level serving layer over the prepared-graph
// artifacts: a concurrency-safe registry mapping graph IDs to
// planarflow.PreparedGraph bundles, with singleflight deduplication of
// concurrent builds, cost-aware LRU eviction under a configurable memory
// budget, and per-graph serving metrics. It is the piece between "one
// graph served many times" (PR 2's Prepare) and "many graphs served to
// many clients" (the flowd daemon): the store decides which substrates
// stay resident, the artifact layer (internal/artifact) guarantees each
// (graph, substrate) key is built exactly once however many requests race
// for it, and a context-canceled request abandons its half-built
// substrate at the next build checkpoint.
//
// Residency and eviction: the unit of eviction is a graph's whole
// artifact bundle (its PreparedGraph). The registered Graph itself is
// never dropped — an evicted graph rebuilds its substrates on the next
// query. Footprints come from PreparedGraph.Stats (estimated bytes per
// substrate) and are re-accounted after every query, since substrates
// build lazily and a query can grow the bundle. Eviction removes
// least-recently-used unpinned bundles until the total accounted
// footprint fits Config.MaxBytes; bundles pinned by in-flight queries are
// never evicted (the store may transiently exceed the budget while every
// resident bundle is in use). Queries racing an eviction are safe: a
// bundle is immutable, so an evicted bundle keeps serving the requests
// that hold it and is reclaimed when they finish.
package store

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"planarflow"
)

var (
	// ErrUnknownGraph reports a query for an id never registered.
	ErrUnknownGraph = errors.New("store: unknown graph")
	// ErrDuplicateID reports a Register for an id already registered.
	ErrDuplicateID = errors.New("store: duplicate graph id")
	// ErrGraphLimit reports a Register past Config.MaxGraphs.
	ErrGraphLimit = errors.New("store: graph limit reached")
)

// DefaultMaxGraphs caps registrations when Config.MaxGraphs is zero.
// Registered graphs live outside the MaxBytes budget (only their
// artifact bundles are evictable), and registration is a network-facing
// operation in flowd — an uncapped registry is an OOM hand-crank.
const DefaultMaxGraphs = 1024

// Config parameterizes a Store.
type Config struct {
	// MaxBytes is the artifact memory budget (estimated bytes, as
	// accounted by PreparedGraph.Stats). <= 0 means unlimited.
	MaxBytes int64
	// MaxGraphs caps how many graphs may be registered (the graphs
	// themselves are not evictable). 0 means DefaultMaxGraphs; negative
	// means unlimited.
	MaxGraphs int
}

// GraphStats is the per-graph serving metrics snapshot.
type GraphStats struct {
	ID        string `json:"id"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Resident  bool   `json:"resident"`
	Bytes     int64  `json:"bytes"` // accounted footprint when resident
	Pins      int    `json:"pins"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Builds    int64  `json:"builds"` // substrates built (across rebuilds)
	Evictions int64  `json:"evictions"`
	// BuildRounds is the cumulative simulated cost of every substrate this
	// graph built, including rebuilds after eviction — the price of cache
	// pressure in the model's own currency.
	BuildRounds int64 `json:"build_rounds"`
}

// Stats is the store-wide snapshot: aggregate counters plus one entry per
// registered graph (sorted by id).
type Stats struct {
	Graphs      int          `json:"graphs"`
	Resident    int          `json:"resident"`
	Bytes       int64        `json:"bytes"`
	MaxBytes    int64        `json:"max_bytes"`
	Hits        int64        `json:"hits"`
	Misses      int64        `json:"misses"`
	Builds      int64        `json:"builds"`
	Evictions   int64        `json:"evictions"`
	BuildRounds int64        `json:"build_rounds"`
	PerGraph    []GraphStats `json:"per_graph"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one registered graph. The Graph is permanent; the
// PreparedGraph bundle is the resident, evictable part.
type entry struct {
	id string
	gr *planarflow.Graph

	pg   *planarflow.PreparedGraph // nil when not resident
	elem *list.Element             // position in the LRU list when resident
	pins int                       // in-flight queries holding pg

	// Accounting of the current resident bundle (re-read after queries).
	bytes      int64
	substrates int
	rounds     int64

	hits, misses, builds, evictions, buildRounds int64
}

// Store is the registry. Safe for concurrent use.
type Store struct {
	cfg Config

	mu   sync.Mutex
	ents map[string]*entry
	lru  *list.List // of *entry; front = most recently used resident bundle

	bytes                           int64
	hits, misses, builds, evictions int64
	buildRounds                     int64
}

// New returns an empty store with the given budget.
func New(cfg Config) *Store {
	return &Store{cfg: cfg, ents: map[string]*entry{}, lru: list.New()}
}

// Register adds a graph under id. The graph itself is retained for the
// store's lifetime; its artifact bundle is built on first query.
func (s *Store) Register(id string, gr *planarflow.Graph) error {
	if gr == nil {
		return fmt.Errorf("store: register %q: nil graph", id)
	}
	if id == "" {
		return errors.New("store: empty graph id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(id, gr)
}

func (s *Store) registerLocked(id string, gr *planarflow.Graph) error {
	if _, ok := s.ents[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	limit := s.cfg.MaxGraphs
	if limit == 0 {
		limit = DefaultMaxGraphs
	}
	if limit > 0 && len(s.ents) >= limit {
		return fmt.Errorf("%w: %d graphs registered", ErrGraphLimit, len(s.ents))
	}
	s.ents[id] = &entry{id: id, gr: gr}
	return nil
}

// RegisterSpec generates the graph described by sp and registers it. The
// duplicate/limit checks run before the (possibly large) generation, and
// again authoritatively at insertion; a racing duplicate can still waste
// one build, but a repeated or abusive one cannot.
func (s *Store) RegisterSpec(id string, sp GraphSpec) (*planarflow.Graph, error) {
	if id == "" {
		return nil, errors.New("store: empty graph id")
	}
	s.mu.Lock()
	_, dup := s.ents[id]
	s.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	gr, err := sp.Build()
	if err != nil {
		return nil, err
	}
	if err := s.Register(id, gr); err != nil {
		return nil, err
	}
	return gr, nil
}

// Graph returns the registered graph (not its bundle); nil if unknown.
func (s *Store) Graph(id string) *planarflow.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.ents[id]; ok {
		return e.gr
	}
	return nil
}

// IDs returns the registered graph ids, sorted.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.ents))
	for id := range s.ents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// With runs fn against the graph's bundle, pinned for the duration of the
// call. The bundle fn receives is bound to ctx: substrate builds it
// triggers are abandoned at the next checkpoint if ctx is canceled. hit
// reports whether the bundle was already resident (a hit does not imply
// the substrates fn needs are warm — those build lazily, deduplicated
// across all concurrent callers by the artifact layer). After fn returns,
// the bundle's footprint is re-accounted and LRU eviction runs if the
// store is over budget.
func (s *Store) With(ctx context.Context, id string, fn func(pg *planarflow.PreparedGraph, hit bool) error) error {
	e, pg, hit, err := s.acquire(id)
	if err != nil {
		return err
	}
	defer s.release(e, pg)
	return fn(pg.WithContext(ctx), hit)
}

// acquire pins the bundle of id, creating it on a miss.
func (s *Store) acquire(id string) (*entry, *planarflow.PreparedGraph, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.ents[id]
	if !ok {
		return nil, nil, false, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	hit := e.pg != nil
	if hit {
		e.hits++
		s.hits++
		s.lru.MoveToFront(e.elem)
	} else {
		pg, err := planarflow.Prepare(e.gr) // O(1): substrates build lazily
		if err != nil {
			return nil, nil, false, err
		}
		e.pg = pg
		e.elem = s.lru.PushFront(e)
		e.misses++
		s.misses++
	}
	e.pins++
	return e, e.pg, hit, nil
}

// release re-accounts the bundle's footprint after a query, unpins it,
// and evicts if over budget. The Stats snapshot happens outside the store
// lock; accounting applies only if the entry still holds the same bundle
// (a bundle evicted mid-query stops being accounted the moment it is
// dropped — its remaining growth belongs to the dying reference).
func (s *Store) release(e *entry, pg *planarflow.PreparedGraph) {
	st := pg.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	e.pins--
	// A bundle only grows, so each accounting field advances monotonically:
	// a release whose snapshot raced a concurrent build (and is staler than
	// what another release already recorded) must not regress the recorded
	// values, or the next release would re-count the difference.
	if e.pg == pg {
		if st.Bytes > e.bytes {
			s.bytes += st.Bytes - e.bytes
			e.bytes = st.Bytes
		}
		if nb := len(st.Substrates) - e.substrates; nb > 0 {
			e.builds += int64(nb)
			s.builds += int64(nb)
			e.substrates = len(st.Substrates)
		}
		if dr := st.BuildRounds - e.rounds; dr > 0 {
			e.buildRounds += dr
			s.buildRounds += dr
			e.rounds = st.BuildRounds
		}
	}
	s.evictLocked()
}

// evictLocked drops least-recently-used unpinned bundles until the
// accounted footprint fits the budget.
func (s *Store) evictLocked() {
	if s.cfg.MaxBytes <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.bytes > s.cfg.MaxBytes; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.pins == 0 {
			s.dropLocked(e)
		}
		el = prev
	}
}

// dropLocked evicts one resident bundle.
func (s *Store) dropLocked(e *entry) {
	s.bytes -= e.bytes
	s.lru.Remove(e.elem)
	e.pg, e.elem = nil, nil
	e.bytes, e.substrates, e.rounds = 0, 0, 0
	e.evictions++
	s.evictions++
}

// EvictAll drops every unpinned resident bundle (a debugging/ops valve;
// pinned bundles are left to the regular budget path).
func (s *Store) EvictAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.lru.Back(); el != nil; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.pins == 0 {
			s.dropLocked(e)
		}
		el = prev
	}
}

// Snapshot returns the store-wide metrics.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Graphs: len(s.ents), Bytes: s.bytes, MaxBytes: s.cfg.MaxBytes,
		Hits: s.hits, Misses: s.misses, Builds: s.builds,
		Evictions: s.evictions, BuildRounds: s.buildRounds,
	}
	ids := make([]string, 0, len(s.ents))
	for id := range s.ents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := s.ents[id]
		if e.pg != nil {
			st.Resident++
		}
		st.PerGraph = append(st.PerGraph, GraphStats{
			ID: id, N: e.gr.N(), M: e.gr.M(),
			Resident: e.pg != nil, Bytes: e.bytes, Pins: e.pins,
			Hits: e.hits, Misses: e.misses, Builds: e.builds,
			Evictions: e.evictions, BuildRounds: e.buildRounds,
		})
	}
	return st
}
