// Package store is the fleet-level serving layer over the prepared-graph
// artifacts: a concurrency-safe registry mapping graph IDs to
// planarflow.PreparedGraph bundles, with singleflight deduplication of
// concurrent builds, cost-aware LRU eviction under a configurable memory
// budget, and per-graph serving metrics. It is the piece between "one
// graph served many times" (PR 2's Prepare) and "many graphs served to
// many clients" (the flowd daemon): the store decides which substrates
// stay resident, the artifact layer (internal/artifact) guarantees each
// (graph, substrate) key is built exactly once however many requests race
// for it, and a context-canceled request abandons its half-built
// substrate at the next build checkpoint.
//
// Residency and eviction: the unit of eviction is a graph's whole
// artifact bundle (its PreparedGraph). The registered Graph itself is
// never dropped — an evicted graph rebuilds its substrates on the next
// query. Footprints come from PreparedGraph.Stats (estimated bytes per
// substrate) and are re-accounted after every query, since substrates
// build lazily and a query can grow the bundle. Eviction removes
// least-recently-used unpinned bundles until the total accounted
// footprint fits Config.MaxBytes; bundles pinned by in-flight queries are
// never evicted (the store may transiently exceed the budget while every
// resident bundle is in use). Queries racing an eviction are safe: a
// bundle is immutable, so an evicted bundle keeps serving the requests
// that hold it and is reclaimed when they finish.
//
// Disk tier: with Config.SpillDir set, eviction demotes instead of
// destroying — the evicted bundle's substrates are written as a snapshot
// (outside the store lock; the bundle is immutable), and a later miss
// checks the disk before rebuilding, restoring at decode speed with the
// snapshot-restore counted separately from builds. Snapshots are
// invalidated by the graph fingerprint baked into the format: a file
// that fails to decode (corruption, version skew, a re-registered id
// with a different graph) is deleted and the miss falls through to a
// normal rebuild, so the disk tier can only ever save work, never serve
// wrong answers.
package store

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"planarflow"
	"planarflow/internal/obs"
)

var (
	// ErrUnknownGraph reports a query for an id never registered.
	ErrUnknownGraph = errors.New("store: unknown graph")
	// ErrDuplicateID reports a Register for an id already registered.
	ErrDuplicateID = errors.New("store: duplicate graph id")
	// ErrGraphLimit reports a Register past Config.MaxGraphs.
	ErrGraphLimit = errors.New("store: graph limit reached")
	// ErrSpillDisabled reports a snapshot request on a store with no
	// Config.SpillDir.
	ErrSpillDisabled = errors.New("store: snapshot tier disabled (no spill directory)")
)

// DefaultMaxGraphs caps registrations when Config.MaxGraphs is zero.
// Registered graphs live outside the MaxBytes budget (only their
// artifact bundles are evictable), and registration is a network-facing
// operation in flowd — an uncapped registry is an OOM hand-crank.
const DefaultMaxGraphs = 1024

// Config parameterizes a Store.
type Config struct {
	// MaxBytes is the artifact memory budget (estimated bytes, as
	// accounted by PreparedGraph.Stats). <= 0 means unlimited.
	MaxBytes int64
	// MaxGraphs caps how many graphs may be registered (the graphs
	// themselves are not evictable). 0 means DefaultMaxGraphs; negative
	// means unlimited.
	MaxGraphs int
	// SpillDir enables the disk snapshot tier when non-empty: evicted
	// bundles write their substrate snapshot under this directory, and a
	// miss checks the disk before rebuilding. The directory is created on
	// first use; files are one per graph id.
	SpillDir string
}

// GraphStats is the per-graph serving metrics snapshot.
type GraphStats struct {
	ID        string `json:"id"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Resident  bool   `json:"resident"`
	Bytes     int64  `json:"bytes"` // accounted footprint when resident
	Pins      int    `json:"pins"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Builds    int64  `json:"builds"` // substrates built (across rebuilds)
	Evictions int64  `json:"evictions"`
	// BuildRounds is the cumulative simulated cost of every substrate this
	// graph built, including rebuilds after eviction — the price of cache
	// pressure in the model's own currency.
	BuildRounds int64 `json:"build_rounds"`
	// LastAccessUnixMS is the wall-clock time of the bundle's most recent
	// acquisition (query, batch or warm), in Unix milliseconds; 0 before
	// the first access.
	LastAccessUnixMS int64 `json:"last_access_unix_ms,omitempty"`
	// SnapshotRestores counts misses this graph served from the disk tier
	// instead of rebuilding.
	SnapshotRestores int64 `json:"snapshot_restores,omitempty"`
	// SnapshotWrites counts snapshots of this graph written to the disk
	// tier (on eviction or an explicit snapshot request).
	SnapshotWrites int64 `json:"snapshot_writes,omitempty"`
	// PeerRestores counts bundles this graph installed from snapshot bytes
	// fetched off another replica (the fleet's peer-to-peer restore path),
	// as opposed to the local disk tier.
	PeerRestores int64 `json:"peer_restores,omitempty"`
}

// Stats is the store-wide snapshot: aggregate counters plus one entry per
// registered graph (sorted by id).
type Stats struct {
	Graphs      int   `json:"graphs"`
	Resident    int   `json:"resident"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Builds      int64 `json:"builds"`
	Evictions   int64 `json:"evictions"`
	BuildRounds int64 `json:"build_rounds"`
	// Disk-tier counters (all zero when Config.SpillDir is unset).
	SnapshotWrites   int64 `json:"snapshot_writes,omitempty"`
	SnapshotRestores int64 `json:"snapshot_restores,omitempty"`
	SnapshotErrors   int64 `json:"snapshot_errors,omitempty"`
	// PeerRestores counts bundles installed from peer-fetched snapshot
	// bytes (InstallSnapshot) — the fleet's warm-restore path.
	PeerRestores int64        `json:"peer_restores,omitempty"`
	PerGraph     []GraphStats `json:"per_graph"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one registered graph. The Graph is permanent; the
// PreparedGraph bundle is the resident, evictable part.
type entry struct {
	id string
	gr *planarflow.Graph

	pg   *planarflow.PreparedGraph // nil when not resident
	elem *list.Element             // position in the LRU list when resident
	pins int                       // in-flight queries holding pg

	// Accounting of the current resident bundle (re-read after queries).
	bytes      int64
	substrates int
	rounds     int64

	hits, misses, builds, evictions, buildRounds int64
	lastAccessMS                                 int64 // Unix ms of the latest acquire
	snapRestores, snapWrites, peerRestores       int64
}

// Store is the registry. Safe for concurrent use.
type Store struct {
	cfg Config

	mu   sync.Mutex
	ents map[string]*entry
	lru  *list.List // of *entry; front = most recently used resident bundle

	bytes                           int64
	hits, misses, builds, evictions int64
	buildRounds                     int64
	snapWrites, snapRestores        int64
	snapErrors, peerRestores        int64

	spillWG sync.WaitGroup // in-flight eviction spills
}

// New returns an empty store with the given budget.
func New(cfg Config) *Store {
	return &Store{cfg: cfg, ents: map[string]*entry{}, lru: list.New()}
}

// Register adds a graph under id. The graph itself is retained for the
// store's lifetime; its artifact bundle is built on first query.
func (s *Store) Register(id string, gr *planarflow.Graph) error {
	if gr == nil {
		return fmt.Errorf("store: register %q: nil graph", id)
	}
	if id == "" {
		return errors.New("store: empty graph id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(id, gr)
}

func (s *Store) registerLocked(id string, gr *planarflow.Graph) error {
	if _, ok := s.ents[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	limit := s.cfg.MaxGraphs
	if limit == 0 {
		limit = DefaultMaxGraphs
	}
	if limit > 0 && len(s.ents) >= limit {
		return fmt.Errorf("%w: %d graphs registered", ErrGraphLimit, len(s.ents))
	}
	s.ents[id] = &entry{id: id, gr: gr}
	return nil
}

// RegisterSpec generates the graph described by sp and registers it. The
// duplicate/limit checks run before the (possibly large) generation, and
// again authoritatively at insertion; a racing duplicate can still waste
// one build, but a repeated or abusive one cannot.
func (s *Store) RegisterSpec(id string, sp GraphSpec) (*planarflow.Graph, error) {
	if id == "" {
		return nil, errors.New("store: empty graph id")
	}
	s.mu.Lock()
	_, dup := s.ents[id]
	s.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	gr, err := sp.Build()
	if err != nil {
		return nil, err
	}
	if err := s.Register(id, gr); err != nil {
		return nil, err
	}
	return gr, nil
}

// Graph returns the registered graph (not its bundle); nil if unknown.
func (s *Store) Graph(id string) *planarflow.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.ents[id]; ok {
		return e.gr
	}
	return nil
}

// IDs returns the registered graph ids, sorted.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.ents))
	for id := range s.ents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// With runs fn against the graph's bundle, pinned for the duration of the
// call. The bundle fn receives is bound to ctx: substrate builds it
// triggers are abandoned at the next checkpoint if ctx is canceled. hit
// reports whether the bundle was already resident (a hit does not imply
// the substrates fn needs are warm — those build lazily, deduplicated
// across all concurrent callers by the artifact layer). After fn returns,
// the bundle's footprint is re-accounted and LRU eviction runs if the
// store is over budget.
func (s *Store) With(ctx context.Context, id string, fn func(pg *planarflow.PreparedGraph, hit bool) error) error {
	sp := obs.SpanFromContext(ctx)
	t0 := time.Now()
	e, pg, hit, err := s.acquire(id)
	d := time.Since(t0)
	mAcquire.Observe(d)
	sp.Add(obs.PhaseAcquire, d)
	if err != nil {
		return err
	}
	defer s.release(e, pg)
	t0 = time.Now()
	err = fn(pg.WithContext(ctx), hit)
	sp.MarkSince(obs.PhaseExec, t0)
	return err
}

// acquire pins the bundle of id, creating it on a miss. A miss checks
// the disk tier first: a valid snapshot restores the substrates at
// decode speed (accounted immediately, counted as a snapshot restore,
// not as builds); otherwise the bundle starts empty and substrates build
// lazily. The restore runs under the store lock — it is decode-bound
// (milliseconds for serving-sized graphs), and holding the lock keeps
// the one-bundle-per-id invariant without a second singleflight layer.
func (s *Store) acquire(id string) (*entry, *planarflow.PreparedGraph, bool, error) {
	t0 := time.Now()
	s.mu.Lock()
	mQueueWait.Observe(time.Since(t0))
	defer s.mu.Unlock()
	e, ok := s.ents[id]
	if !ok {
		return nil, nil, false, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	e.lastAccessMS = time.Now().UnixMilli()
	hit := e.pg != nil
	if hit {
		e.hits++
		s.hits++
		s.lru.MoveToFront(e.elem)
	} else {
		if err := s.residentLocked(e); err != nil {
			return nil, nil, false, err
		}
		e.misses++
		s.misses++
	}
	e.pins++
	return e, e.pg, hit, nil
}

// residentLocked makes e's bundle resident on a miss: disk restore when
// the spill tier holds a valid snapshot, empty bundle otherwise.
func (s *Store) residentLocked(e *entry) error {
	if pg := s.restoreLocked(e); pg != nil {
		e.pg = pg
		e.elem = s.lru.PushFront(e)
		// Restored substrates are resident right now: account them on
		// arrival (release will only ever grow these monotonically).
		st := pg.Stats()
		e.bytes, e.substrates, e.rounds = st.Bytes, len(st.Substrates), st.BuildRounds
		s.bytes += st.Bytes
		e.snapRestores++
		s.snapRestores++
		return nil
	}
	pg, err := planarflow.Prepare(e.gr) // O(1): substrates build lazily
	if err != nil {
		return err
	}
	e.pg = pg
	e.elem = s.lru.PushFront(e)
	return nil
}

// restoreLocked attempts a disk-tier restore for e; nil means no usable
// snapshot. A file that is provably dead — corrupt bytes, or a
// fingerprint from a different graph (the id was re-registered) — is
// deleted so the next miss does not retry it; a transient read error
// leaves the file in place (it may decode fine next time) and only
// counts against the error metric.
func (s *Store) restoreLocked(e *entry) *planarflow.PreparedGraph {
	if s.cfg.SpillDir == "" {
		return nil
	}
	path := s.spillPath(e.id)
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	t0 := time.Now()
	pg, err := planarflow.RestorePrepared(e.gr, bufio.NewReader(f))
	f.Close()
	if err != nil {
		s.snapErrors++
		if errors.Is(err, planarflow.ErrBadSnapshot) || errors.Is(err, planarflow.ErrSnapshotMismatch) {
			os.Remove(path)
		}
		return nil
	}
	mRestore.Observe(time.Since(t0))
	return pg
}

// release re-accounts the bundle's footprint after a query, unpins it,
// and evicts if over budget. The Stats snapshot happens outside the store
// lock; accounting applies only if the entry still holds the same bundle
// (a bundle evicted mid-query stops being accounted the moment it is
// dropped — its remaining growth belongs to the dying reference).
func (s *Store) release(e *entry, pg *planarflow.PreparedGraph) {
	st := pg.Stats()
	s.mu.Lock()
	e.pins--
	// A bundle only grows, so each accounting field advances monotonically:
	// a release whose snapshot raced a concurrent build (and is staler than
	// what another release already recorded) must not regress the recorded
	// values, or the next release would re-count the difference.
	if e.pg == pg {
		if st.Bytes > e.bytes {
			s.bytes += st.Bytes - e.bytes
			e.bytes = st.Bytes
		}
		if nb := len(st.Substrates) - e.substrates; nb > 0 {
			e.builds += int64(nb)
			s.builds += int64(nb)
			e.substrates = len(st.Substrates)
		}
		if dr := st.BuildRounds - e.rounds; dr > 0 {
			e.buildRounds += dr
			s.buildRounds += dr
			e.rounds = st.BuildRounds
		}
	}
	jobs := s.evictLocked()
	s.mu.Unlock()
	s.spillAsync(jobs)
}

// spillJob is one demotion to the disk tier: the bundle captured before
// dropLocked cleared the entry (immutable, so safe to encode while
// in-flight queries still hold it).
type spillJob struct {
	e  *entry
	pg *planarflow.PreparedGraph
}

// evictLocked drops least-recently-used unpinned bundles until the
// accounted footprint fits the budget, returning the spill jobs the
// caller must run after releasing the lock.
func (s *Store) evictLocked() []spillJob {
	if s.cfg.MaxBytes <= 0 {
		return nil
	}
	var jobs []spillJob
	for el := s.lru.Back(); el != nil && s.bytes > s.cfg.MaxBytes; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.pins == 0 {
			jobs = append(jobs, s.dropLocked(e)...)
		}
		el = prev
	}
	return jobs
}

// dropLocked evicts one resident bundle, returning its spill job when
// the disk tier is enabled.
func (s *Store) dropLocked(e *entry) []spillJob {
	pg := e.pg
	s.bytes -= e.bytes
	s.lru.Remove(e.elem)
	e.pg, e.elem = nil, nil
	e.bytes, e.substrates, e.rounds = 0, 0, 0
	e.evictions++
	s.evictions++
	mEvictions.Inc()
	if s.cfg.SpillDir == "" {
		return nil
	}
	return []spillJob{{e: e, pg: pg}}
}

// spillAsync writes demoted bundles to the disk tier off the serving
// path: the releasing query's latency must not include encode + disk
// I/O for bundles it happened to push over the budget. A miss that
// races an in-flight spill simply rebuilds (the spill still lands for
// the next one); two spills of the same id serialize through the
// temp+rename, so the file is always one complete snapshot.
func (s *Store) spillAsync(jobs []spillJob) {
	if len(jobs) == 0 {
		return
	}
	s.spillWG.Add(1)
	go func() {
		defer s.spillWG.Done()
		s.spill(jobs)
	}()
}

// FlushSpills blocks until every in-flight eviction spill has been
// written — the orderly-shutdown hook (and the tests' determinism
// valve). Explicit SnapshotResident writes are synchronous already.
func (s *Store) FlushSpills() { s.spillWG.Wait() }

// spill writes demoted bundles to the disk tier. Errors are counted, not
// fatal: a failed spill only means the next miss rebuilds.
func (s *Store) spill(jobs []spillJob) {
	for _, j := range jobs {
		err := s.writeSnapshot(j.e.id, j.pg)
		s.mu.Lock()
		if err != nil {
			s.snapErrors++
		} else {
			j.e.snapWrites++
			s.snapWrites++
		}
		s.mu.Unlock()
	}
}

// writeSnapshot persists one bundle under the spill directory, via a
// temp file and rename so readers never see a torn snapshot.
func (s *Store) writeSnapshot(id string, pg *planarflow.PreparedGraph) error {
	t0 := time.Now()
	defer func() { mSpillWrite.Observe(time.Since(t0)) }()
	if err := os.MkdirAll(s.cfg.SpillDir, 0o755); err != nil {
		return err
	}
	path := s.spillPath(id)
	tmp, err := os.CreateTemp(s.cfg.SpillDir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	if err := pg.Snapshot(bw); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// spillPath maps a graph id to its snapshot file. Ids are sanitized to a
// filesystem-safe alphabet; a short hash of the raw id keeps sanitized
// collisions (e.g. "a/b" vs "a_b") apart.
func (s *Store) spillPath(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	var h uint64 = 14695981039346656037 // FNV-1a over the raw id
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return filepath.Join(s.cfg.SpillDir, fmt.Sprintf("%s-%016x.pfsnap", b.String(), h))
}

// SpillEnabled reports whether the disk tier is configured.
func (s *Store) SpillEnabled() bool { return s.cfg.SpillDir != "" }

// SnapshotResident writes the current resident bundles (all of them, or
// just the given ids) to the disk tier without evicting anything — the
// ops valve behind flowd's POST /v1/snapshot, and the way a daemon
// persists its warm working set before a planned restart. Unknown ids
// error; known-but-not-resident ids are skipped (an evicted bundle
// already spilled on the way out). Returns how many snapshots were
// written.
func (s *Store) SnapshotResident(ids ...string) (int, error) {
	if !s.SpillEnabled() {
		return 0, ErrSpillDisabled
	}
	s.mu.Lock()
	if len(ids) == 0 {
		for id := range s.ents {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	var jobs []spillJob
	for _, id := range ids {
		e, ok := s.ents[id]
		if !ok {
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
		}
		if e.pg != nil {
			jobs = append(jobs, spillJob{e: e, pg: e.pg})
		}
	}
	s.mu.Unlock()
	var firstErr error
	written := 0
	for _, j := range jobs {
		err := s.writeSnapshot(j.e.id, j.pg)
		s.mu.Lock()
		if err != nil {
			s.snapErrors++
			if firstErr == nil {
				firstErr = err
			}
		} else {
			j.e.snapWrites++
			s.snapWrites++
			written++
		}
		s.mu.Unlock()
	}
	return written, firstErr
}

// TryRestore warm-restores one registered graph from the disk tier
// without running a query: on a daemon boot, restoring every registered
// spec turns the first traffic spike from cold rebuilds into decode-time
// restores. Reports whether a snapshot was restored (false when the
// bundle is already resident, the tier is disabled, or no usable
// snapshot exists — none of which is an error).
func (s *Store) TryRestore(id string) (bool, error) {
	s.mu.Lock()
	e, ok := s.ents[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	if e.pg != nil {
		s.mu.Unlock()
		return false, nil
	}
	pg := s.restoreLocked(e)
	if pg == nil {
		s.mu.Unlock()
		return false, nil
	}
	e.pg = pg
	e.elem = s.lru.PushFront(e)
	st := pg.Stats()
	e.bytes, e.substrates, e.rounds = st.Bytes, len(st.Substrates), st.BuildRounds
	s.bytes += st.Bytes
	e.snapRestores++
	s.snapRestores++
	e.lastAccessMS = time.Now().UnixMilli()
	jobs := s.evictLocked() // the restore may overshoot the budget
	s.mu.Unlock()
	s.spillAsync(jobs)
	return true, nil
}

// SnapshotTo streams the graph's current substrate snapshot into w —
// the serving side of the fleet's peer-to-peer restore path. A bundle
// not resident in memory is first promoted from the disk tier (a spilled
// bundle is still shippable); (false, nil) means there is nothing to
// ship — not resident anywhere — which is a routing fact, not an error.
// The encode runs outside the store lock (bundles are immutable) with
// the bundle pinned so eviction cannot race the stream.
func (s *Store) SnapshotTo(id string, w io.Writer) (bool, error) {
	s.mu.Lock()
	e, ok := s.ents[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	if e.pg == nil {
		pg := s.restoreLocked(e)
		if pg == nil {
			s.mu.Unlock()
			return false, nil
		}
		e.pg = pg
		e.elem = s.lru.PushFront(e)
		st := pg.Stats()
		e.bytes, e.substrates, e.rounds = st.Bytes, len(st.Substrates), st.BuildRounds
		s.bytes += st.Bytes
		e.snapRestores++
		s.snapRestores++
	}
	pg := e.pg
	e.pins++
	s.mu.Unlock()
	err := pg.Snapshot(w)
	s.mu.Lock()
	e.pins--
	jobs := s.evictLocked() // the disk promotion may have overshot the budget
	s.mu.Unlock()
	s.spillAsync(jobs)
	if err != nil {
		return false, err
	}
	return true, nil
}

// InstallSnapshot decodes peer-fetched snapshot bytes and installs the
// bundle for id — the receiving side of the fleet restore path. The
// decode validates the full PFSNAP envelope (fingerprint, version,
// checksums) against the locally registered graph, so bytes from a
// mismatched or corrupt peer are rejected with no partial state; the
// install is first-publish-wins ((false, nil) when a bundle went
// resident while we were decoding — the resident one is just as good).
// A successful install counts as a peer restore, never as builds.
func (s *Store) InstallSnapshot(id string, data []byte) (bool, error) {
	s.mu.Lock()
	e, ok := s.ents[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	if e.pg != nil {
		s.mu.Unlock()
		return false, nil
	}
	gr := e.gr
	s.mu.Unlock()

	// Decode outside the lock: restore is decode-bound and must not stall
	// the serving path. RestorePrepared guarantees no partial bundle is
	// visible on error.
	pg, err := planarflow.RestorePrepared(gr, bytes.NewReader(data))
	if err != nil {
		s.mu.Lock()
		s.snapErrors++
		s.mu.Unlock()
		return false, err
	}

	s.mu.Lock()
	if e.pg != nil {
		s.mu.Unlock()
		return false, nil
	}
	e.pg = pg
	e.elem = s.lru.PushFront(e)
	st := pg.Stats()
	e.bytes, e.substrates, e.rounds = st.Bytes, len(st.Substrates), st.BuildRounds
	s.bytes += st.Bytes
	e.peerRestores++
	s.peerRestores++
	e.lastAccessMS = time.Now().UnixMilli()
	jobs := s.evictLocked()
	s.mu.Unlock()
	s.spillAsync(jobs)
	return true, nil
}

// EvictAll drops every unpinned resident bundle (a debugging/ops valve;
// pinned bundles are left to the regular budget path). With the disk
// tier enabled the dropped bundles spill before EvictAll returns — an
// ops call, not a serving path, so it waits for its own writes.
func (s *Store) EvictAll() {
	s.mu.Lock()
	var jobs []spillJob
	for el := s.lru.Back(); el != nil; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.pins == 0 {
			jobs = append(jobs, s.dropLocked(e)...)
		}
		el = prev
	}
	s.mu.Unlock()
	s.spill(jobs)
}

// Counts returns the cheap aggregate triple — registered graphs,
// resident bundles, accounted bytes — for gauge callbacks that must not
// pay Snapshot's per-graph walk on every scrape.
func (s *Store) Counts() (graphs, resident int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ents), s.lru.Len(), s.bytes
}

// Snapshot returns the store-wide metrics.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Graphs: len(s.ents), Bytes: s.bytes, MaxBytes: s.cfg.MaxBytes,
		Hits: s.hits, Misses: s.misses, Builds: s.builds,
		Evictions: s.evictions, BuildRounds: s.buildRounds,
		SnapshotWrites: s.snapWrites, SnapshotRestores: s.snapRestores,
		SnapshotErrors: s.snapErrors, PeerRestores: s.peerRestores,
	}
	ids := make([]string, 0, len(s.ents))
	for id := range s.ents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := s.ents[id]
		if e.pg != nil {
			st.Resident++
		}
		st.PerGraph = append(st.PerGraph, GraphStats{
			ID: id, N: e.gr.N(), M: e.gr.M(),
			Resident: e.pg != nil, Bytes: e.bytes, Pins: e.pins,
			Hits: e.hits, Misses: e.misses, Builds: e.builds,
			Evictions: e.evictions, BuildRounds: e.buildRounds,
			LastAccessUnixMS: e.lastAccessMS,
			SnapshotRestores: e.snapRestores, SnapshotWrites: e.snapWrites,
			PeerRestores: e.peerRestores,
		})
	}
	return st
}
