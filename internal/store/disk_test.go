package store

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"planarflow"
)

// warmDist runs a dist query so the primal labeling builds (or restores).
func warmDist(t *testing.T, s *Store, id string) int64 {
	t.Helper()
	g := s.Graph(id)
	a, _, err := s.Do(context.Background(), id, planarflow.DistQuery(0, g.N()-1))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return a.Value
}

// TestEvictionSpillsAndMissRestores is the disk tier's core loop: an
// eviction demotes the bundle to a snapshot file, and the next miss
// restores it from disk — counted as a snapshot restore, not a build —
// with identical answers.
func TestEvictionSpillsAndMissRestores(t *testing.T) {
	dir := t.TempDir()
	// Budget fits one bundle: the second graph's build evicts the first.
	unit := distFootprint(t)
	s := New(Config{MaxBytes: unit + unit/2, SpillDir: dir})
	t.Cleanup(s.FlushSpills) // async spills must land before TempDir cleanup
	for _, id := range []string{"a", "b"} {
		if _, err := s.RegisterSpec(id, gridSpec(map[string]int64{"a": 1, "b": 2}[id])); err != nil {
			t.Fatal(err)
		}
	}
	wantA := warmDist(t, s, "a")
	builds0 := s.Snapshot().Builds
	warmDist(t, s, "b") // evicts a → spills its snapshot
	s.FlushSpills()     // eviction spills are async off the query path

	st := s.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("no eviction happened; budget mis-sized")
	}
	if st.SnapshotWrites == 0 {
		t.Fatal("eviction did not spill a snapshot")
	}
	if _, err := os.Stat(s.spillPath("a")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// Miss on a: must restore from disk, answer identically, build nothing.
	gotA := warmDist(t, s, "a")
	if gotA != wantA {
		t.Fatalf("restored dist %d, want %d", gotA, wantA)
	}
	st = s.Snapshot()
	if st.SnapshotRestores != 1 {
		t.Fatalf("snapshot_restores = %d, want 1", st.SnapshotRestores)
	}
	if st.Builds != builds0+2 { // only b's BDD+labeling, never a's again
		t.Fatalf("builds = %d, want %d (restore must not rebuild)", st.Builds, builds0+2)
	}
	for _, pg := range st.PerGraph {
		if pg.ID == "a" && pg.SnapshotRestores != 1 {
			t.Fatalf("per-graph snapshot_restores = %d, want 1", pg.SnapshotRestores)
		}
	}
}

// TestCorruptSnapshotFallsBackToRebuild: a damaged spill file is counted,
// deleted and the miss rebuilds — wrong answers are impossible, a dead
// file is not retried.
func TestCorruptSnapshotFallsBackToRebuild(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{SpillDir: dir})
	if _, err := s.RegisterSpec("g", gridSpec(3)); err != nil {
		t.Fatal(err)
	}
	want := warmDist(t, s, "g")
	if _, err := s.SnapshotResident("g"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file in place.
	path := s.spillPath("g")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s.EvictAll() // rewrites the snapshot — so corrupt again after dropping
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := warmDist(t, s, "g")
	if got != want {
		t.Fatalf("rebuilt dist %d, want %d", got, want)
	}
	st := s.Snapshot()
	if st.SnapshotErrors == 0 {
		t.Fatal("corrupt snapshot not counted")
	}
	if st.SnapshotRestores != 0 {
		t.Fatal("corrupt snapshot must not count as a restore")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt snapshot file not deleted")
	}
}

// TestTryRestoreWarmBoot: the boot path — a fresh store over an existing
// spill directory restores registered specs without serving a query.
func TestTryRestoreWarmBoot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SpillDir: dir}
	s1 := New(cfg)
	if _, err := s1.RegisterSpec("g", gridSpec(4)); err != nil {
		t.Fatal(err)
	}
	want := warmDist(t, s1, "g")
	if n, err := s1.SnapshotResident(); err != nil || n != 1 {
		t.Fatalf("SnapshotResident = %d, %v", n, err)
	}

	s2 := New(cfg)
	if _, err := s2.RegisterSpec("g", gridSpec(4)); err != nil {
		t.Fatal(err)
	}
	ok, err := s2.TryRestore("g")
	if err != nil || !ok {
		t.Fatalf("TryRestore = %v, %v", ok, err)
	}
	st := s2.Snapshot()
	if st.Resident != 1 || st.Bytes == 0 {
		t.Fatalf("restored bundle not accounted: resident=%d bytes=%d", st.Resident, st.Bytes)
	}
	if got := warmDist(t, s2, "g"); got != want {
		t.Fatalf("dist after warm boot %d, want %d", got, want)
	}
	if st := s2.Snapshot(); st.Builds != 0 {
		t.Fatalf("warm boot rebuilt %d substrates", st.Builds)
	}
	// Idempotent: already resident → false, no error.
	if ok, err := s2.TryRestore("g"); ok || err != nil {
		t.Fatalf("second TryRestore = %v, %v", ok, err)
	}
	// Unknown id errors.
	if _, err := s2.TryRestore("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("got %v, want ErrUnknownGraph", err)
	}
}

// TestSnapshotResidentErrors pins the ops-valve edge cases.
func TestSnapshotResidentErrors(t *testing.T) {
	s := New(Config{})
	if _, err := s.SnapshotResident(); !errors.Is(err, ErrSpillDisabled) {
		t.Fatalf("got %v, want ErrSpillDisabled", err)
	}
	s = New(Config{SpillDir: t.TempDir()})
	if _, err := s.RegisterSpec("g", gridSpec(5)); err != nil {
		t.Fatal(err)
	}
	// Registered but not resident: skipped, not an error.
	if n, err := s.SnapshotResident(); err != nil || n != 0 {
		t.Fatalf("SnapshotResident = %d, %v", n, err)
	}
	if _, err := s.SnapshotResident("missing"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("got %v, want ErrUnknownGraph", err)
	}
}

// TestLastAccessTimestamp: the per-bundle last-access satellite.
func TestLastAccessTimestamp(t *testing.T) {
	s := New(Config{})
	if _, err := s.RegisterSpec("g", gridSpec(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterSpec("idle", gridSpec(7)); err != nil {
		t.Fatal(err)
	}
	before := time.Now().UnixMilli()
	warmDist(t, s, "g")
	after := time.Now().UnixMilli()
	for _, pg := range s.Snapshot().PerGraph {
		switch pg.ID {
		case "g":
			if pg.LastAccessUnixMS < before || pg.LastAccessUnixMS > after {
				t.Fatalf("last access %d outside [%d, %d]", pg.LastAccessUnixMS, before, after)
			}
		case "idle":
			if pg.LastAccessUnixMS != 0 {
				t.Fatalf("idle graph has last access %d", pg.LastAccessUnixMS)
			}
		}
	}
}

// TestConcurrentSpillRestore hammers a budget-constrained spill-enabled
// store from many goroutines (meaningful under -race): evictions spill
// while misses restore, and every answer stays correct.
func TestConcurrentSpillRestore(t *testing.T) {
	dir := t.TempDir()
	unit := distFootprint(t)
	s := New(Config{MaxBytes: unit + unit/2, SpillDir: dir})
	t.Cleanup(s.FlushSpills) // async spills must land before TempDir cleanup
	ids := []string{"a", "b", "c"}
	want := map[string]int64{}
	for i, id := range ids {
		g, err := s.RegisterSpec(id, gridSpec(int64(40+i)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := planarflow.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.Dist(0, g.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = d
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := ids[(w+i)%len(ids)]
				g := s.Graph(id)
				a, _, err := s.Do(context.Background(), id, planarflow.DistQuery(0, g.N()-1))
				if err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				if a.Value != want[id] {
					t.Errorf("%s: dist %d, want %d", id, a.Value, want[id])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.FlushSpills()
	st := s.Snapshot()
	if st.SnapshotWrites == 0 {
		t.Fatalf("expected spills under churn, got writes=%d", st.SnapshotWrites)
	}
	// Deterministic restore pass: with every spill flushed, dropping the
	// residents and touching each graph must restore from disk.
	s.EvictAll()
	restores0 := st.SnapshotRestores
	for _, id := range ids {
		if got := warmDist(t, s, id); got != want[id] {
			t.Fatalf("%s after final restore: dist %d, want %d", id, got, want[id])
		}
	}
	if st := s.Snapshot(); st.SnapshotRestores <= restores0 {
		t.Fatalf("final pass restored nothing (restores %d -> %d)", restores0, st.SnapshotRestores)
	}
}
