package store

// Telemetry handles, resolved once at init: every serving-path record is
// atomic bumps on these, never a registry lookup.

import "planarflow/internal/obs"

var (
	mQueueWait = obs.Default().Histogram("store_queue_wait_seconds",
		"Time spent waiting for the store registry lock on acquire.")
	mAcquire = obs.Default().Histogram("store_acquire_seconds",
		"Bundle acquire latency: registry lookup, LRU touch, pin, and any disk-tier restore a miss triggers.")
	mRestore = obs.Default().Histogram("store_restore_seconds",
		"Disk-tier snapshot restore latency (successful restores only).")
	mSpillWrite = obs.Default().Histogram("store_spill_write_seconds",
		"Disk-tier snapshot write latency (evictions and explicit snapshots).")
	mEvictions = obs.Default().Counter("store_evictions_total",
		"Resident bundles evicted under the memory budget.")
)
