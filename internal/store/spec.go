package store

import (
	"fmt"

	"planarflow"
)

// MaxSpecVertices bounds the size of a generated graph: the store serves
// network requests, so a spec is untrusted input and must not be able to
// ask for an unbounded allocation.
const MaxSpecVertices = 1 << 20

// GraphSpec describes a generated graph, the wire-friendly way flowd
// clients register working sets without shipping an embedding. Weights and
// capacities default to the generator's unit values; a nonzero WHi (CHi)
// redraws weights (capacities) uniformly from [WLo, WHi] ([CLo, CHi])
// with the given seed.
type GraphSpec struct {
	// Kind selects the generator: "grid" (Rows x Cols grid), "cylinder"
	// (Rows x Cols cylindrical grid, Cols >= 3), "snake" (boustrophedon
	// one-way grid), or "triangulation" (random stacked triangulation on N
	// vertices).
	Kind string `json:"kind"`
	Rows int    `json:"rows,omitempty"`
	Cols int    `json:"cols,omitempty"`
	N    int    `json:"n,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	WLo  int64  `json:"w_lo,omitempty"`
	WHi  int64  `json:"w_hi,omitempty"`
	CLo  int64  `json:"c_lo,omitempty"`
	CHi  int64  `json:"c_hi,omitempty"`
}

// Validate checks the spec without building anything.
func (sp GraphSpec) Validate() error {
	switch sp.Kind {
	case "grid", "cylinder", "snake":
		if sp.Rows < 2 || sp.Cols < 2 {
			return fmt.Errorf("store: %s spec needs rows, cols >= 2 (got %dx%d)", sp.Kind, sp.Rows, sp.Cols)
		}
		if sp.Kind == "cylinder" && sp.Cols < 3 {
			return fmt.Errorf("store: cylinder spec needs cols >= 3 (got %d)", sp.Cols)
		}
		if sp.Rows > MaxSpecVertices/sp.Cols {
			return fmt.Errorf("store: %s spec %dx%d exceeds %d vertices", sp.Kind, sp.Rows, sp.Cols, MaxSpecVertices)
		}
	case "triangulation":
		if sp.N < 3 || sp.N > MaxSpecVertices {
			return fmt.Errorf("store: triangulation spec needs 3 <= n <= %d (got %d)", MaxSpecVertices, sp.N)
		}
	default:
		return fmt.Errorf("store: unknown graph kind %q", sp.Kind)
	}
	if sp.WHi != 0 && sp.WLo > sp.WHi {
		return fmt.Errorf("store: weight range [%d, %d] is empty", sp.WLo, sp.WHi)
	}
	if sp.CHi != 0 && sp.CLo > sp.CHi {
		return fmt.Errorf("store: capacity range [%d, %d] is empty", sp.CLo, sp.CHi)
	}
	return nil
}

// Build validates the spec and materializes the graph.
func (sp GraphSpec) Build() (*planarflow.Graph, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var g *planarflow.Graph
	switch sp.Kind {
	case "grid":
		g = planarflow.GridGraph(sp.Rows, sp.Cols)
	case "cylinder":
		g = planarflow.CylinderGraph(sp.Rows, sp.Cols)
	case "snake":
		g = planarflow.BoustrophedonGridGraph(sp.Rows, sp.Cols)
	case "triangulation":
		g = planarflow.TriangulationGraph(sp.N, sp.Seed)
	}
	if sp.WHi != 0 || sp.CHi != 0 {
		wLo, wHi := sp.WLo, sp.WHi
		if wHi == 0 {
			wLo, wHi = 1, 1
		}
		cLo, cHi := sp.CLo, sp.CHi
		if cHi == 0 {
			cLo, cHi = 1, 1
		}
		g = g.WithRandomAttrs(sp.Seed, wLo, wHi, cLo, cHi)
	}
	return g, nil
}
