package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"planarflow"
)

func gridSpec(seed int64) GraphSpec {
	return GraphSpec{Kind: "grid", Rows: 6, Cols: 6, Seed: seed, WLo: 1, WHi: 9, CLo: 1, CHi: 16}
}

// distFootprint measures the accounted footprint of one grid's bundle
// after a Dist query, so tests can size budgets in units of "one bundle".
func distFootprint(t *testing.T) int64 {
	t.Helper()
	g, err := gridSpec(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := planarflow.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Dist(0, g.N()-1); err != nil {
		t.Fatal(err)
	}
	b := p.Stats().Bytes
	if b <= 0 {
		t.Fatalf("footprint %d, want > 0", b)
	}
	return b
}

func TestRegisterErrors(t *testing.T) {
	s := New(Config{})
	if _, err := s.RegisterSpec("a", gridSpec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterSpec("a", gridSpec(2)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := s.Register("", planarflow.GridGraph(3, 3)); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := s.Register("b", nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	err := s.With(context.Background(), "nope", func(*planarflow.PreparedGraph, bool) error { return nil })
	if !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
	if _, err := s.RegisterSpec("bad", GraphSpec{Kind: "dodecahedron"}); err == nil {
		t.Fatal("unknown spec kind accepted")
	}
}

// TestSingleflightDedup drives N concurrent queries needing the same
// (graph, substrate) key through the store and asserts the substrate was
// built exactly once: one residency miss, and the substrate count/build
// rounds of a single construction.
func TestSingleflightDedup(t *testing.T) {
	s := New(Config{})
	g, err := s.RegisterSpec("g", gridSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	dists := make([]int64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := s.With(context.Background(), "g", func(pg *planarflow.PreparedGraph, hit bool) error {
				d, err := pg.Dist(0, g.N()-1)
				dists[i] = d
				return err
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if dists[i] != dists[0] {
			t.Fatalf("worker %d saw distance %d, worker 0 saw %d", i, dists[i], dists[0])
		}
	}
	st := s.Snapshot()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, workers-1)
	}
	// Dist needs the BDD + the undirected primal labeling: exactly two
	// substrates however many workers raced.
	if st.Builds != 2 {
		t.Fatalf("substrates built = %d, want 2 (one build per key)", st.Builds)
	}
	// Build rounds equal one construction of each substrate, not N.
	var one int64
	err = s.With(context.Background(), "g", func(pg *planarflow.PreparedGraph, hit bool) error {
		one = pg.Stats().BuildRounds
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.BuildRounds != one {
		t.Fatalf("accounted build rounds %d != single-construction cost %d", st.BuildRounds, one)
	}
}

// TestLRUEvictionOrder registers three same-size graphs under a budget
// that fits two bundles and checks the least-recently-used one is evicted.
func TestLRUEvictionOrder(t *testing.T) {
	unit := distFootprint(t)
	s := New(Config{MaxBytes: 2*unit + unit/2})
	for i, id := range []string{"a", "b", "c"} {
		if _, err := s.RegisterSpec(id, gridSpec(int64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	touch := func(id string) {
		t.Helper()
		err := s.With(context.Background(), id, func(pg *planarflow.PreparedGraph, hit bool) error {
			_, err := pg.Dist(0, 1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	resident := func() map[string]bool {
		m := map[string]bool{}
		for _, gs := range s.Snapshot().PerGraph {
			m[gs.ID] = gs.Resident
		}
		return m
	}

	touch("a")
	touch("b")
	if r := resident(); !r["a"] || !r["b"] {
		t.Fatalf("two bundles should fit: %v", r)
	}
	touch("c") // over budget: evict a (least recent)
	if r := resident(); r["a"] || !r["b"] || !r["c"] {
		t.Fatalf("after touching c want b,c resident: %v", r)
	}
	touch("b") // refresh b; rebuild a -> evict c (now least recent)
	touch("a")
	if r := resident(); !r["a"] || !r["b"] || r["c"] {
		t.Fatalf("after refreshing b and rebuilding a want a,b resident: %v", r)
	}
	st := s.Snapshot()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("accounted bytes %d exceed budget %d after eviction", st.Bytes, st.MaxBytes)
	}
	// a's rebuild was accounted as a second miss + fresh builds.
	for _, gs := range st.PerGraph {
		if gs.ID == "a" && (gs.Misses != 2 || gs.Evictions != 1) {
			t.Fatalf("a: misses=%d evictions=%d, want 2/1", gs.Misses, gs.Evictions)
		}
	}
}

// TestPinnedBundleSurvivesEviction holds a bundle pinned while another
// graph blows the budget, and asserts the pinned bundle is not evicted
// until released.
func TestPinnedBundleSurvivesEviction(t *testing.T) {
	unit := distFootprint(t)
	s := New(Config{MaxBytes: unit + unit/2}) // fits one bundle
	for i, id := range []string{"a", "b"} {
		if _, err := s.RegisterSpec(id, gridSpec(int64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	err := s.With(context.Background(), "a", func(pg *planarflow.PreparedGraph, hit bool) error {
		if _, err := pg.Dist(0, 1); err != nil {
			return err
		}
		// a is pinned; building b exceeds the budget but must not evict a.
		err := s.With(context.Background(), "b", func(pg2 *planarflow.PreparedGraph, hit bool) error {
			_, err := pg2.Dist(0, 1)
			return err
		})
		if err != nil {
			return err
		}
		for _, gs := range s.Snapshot().PerGraph {
			if gs.ID == "a" && !gs.Resident {
				return errors.New("pinned bundle was evicted")
			}
		}
		// a is still queryable mid-pressure.
		_, err = pg.Dist(0, 2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// After release, the next eviction pass may drop a (b was dropped at
	// a's release, or a was — either way the budget holds).
	if st := s.Snapshot(); st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d after release", st.Bytes, st.MaxBytes)
	}
}

// TestQueryDuringEvictRace hammers a store whose budget forces constant
// eviction with concurrent queries over a working set, asserting every
// query returns the right answer while bundles are dropped under it. Run
// with -race, this is the eviction-vs-query safety test.
func TestQueryDuringEvictRace(t *testing.T) {
	const graphs = 4
	unit := distFootprint(t)
	s := New(Config{MaxBytes: unit * 2}) // thrash: ~half the working set fits
	want := map[string]int64{}
	for i := 0; i < graphs; i++ {
		id := fmt.Sprintf("g%d", i)
		g, err := s.RegisterSpec(id, gridSpec(int64(30+i)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := planarflow.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.Dist(0, g.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = d
	}
	const workers = 8
	const rounds = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("g%d", (w+r)%graphs)
				err := s.With(context.Background(), id, func(pg *planarflow.PreparedGraph, hit bool) error {
					d, err := pg.Dist(0, pg.Graph().N()-1)
					if err != nil {
						return err
					}
					if d != want[id] {
						return fmt.Errorf("%s: distance %d, want %d", id, d, want[id])
					}
					return nil
				})
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a thrashing budget")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d at rest", st.Bytes, st.MaxBytes)
	}
}

// TestContextCancellationPropagates ensures a canceled request context
// surfaces from With as context.Canceled and leaves the store serviceable.
func TestContextCancellationPropagates(t *testing.T) {
	s := New(Config{})
	g, err := s.RegisterSpec("g", gridSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.With(ctx, "g", func(pg *planarflow.PreparedGraph, hit bool) error {
		_, err := pg.Dist(0, g.N()-1)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The abandoned build left no half-accounted substrate; a live request
	// builds from scratch and succeeds.
	err = s.With(context.Background(), "g", func(pg *planarflow.PreparedGraph, hit bool) error {
		_, err := pg.Dist(0, g.N()-1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.Builds != 2 {
		t.Fatalf("builds = %d, want 2 (bdd + primal, once)", st.Builds)
	}
}

func TestGraphLimit(t *testing.T) {
	s := New(Config{MaxGraphs: 2})
	if _, err := s.RegisterSpec("a", gridSpec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterSpec("b", gridSpec(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterSpec("c", gridSpec(3)); !errors.Is(err, ErrGraphLimit) {
		t.Fatalf("third register under MaxGraphs=2: %v", err)
	}
	// Duplicate ids are rejected before generation and don't consume limit.
	if _, err := s.RegisterSpec("a", gridSpec(4)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate register: %v", err)
	}
	if got := len(s.IDs()); got != 2 {
		t.Fatalf("%d graphs registered, want 2", got)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		sp GraphSpec
		ok bool
	}{
		{GraphSpec{Kind: "grid", Rows: 4, Cols: 4}, true},
		{GraphSpec{Kind: "grid", Rows: 1, Cols: 9}, false},
		{GraphSpec{Kind: "grid", Rows: 1 << 12, Cols: 1 << 12}, false},
		{GraphSpec{Kind: "cylinder", Rows: 3, Cols: 2}, false},
		{GraphSpec{Kind: "cylinder", Rows: 3, Cols: 3}, true},
		{GraphSpec{Kind: "snake", Rows: 4, Cols: 5}, true},
		{GraphSpec{Kind: "triangulation", N: 2}, false},
		{GraphSpec{Kind: "triangulation", N: 64}, true},
		{GraphSpec{Kind: "grid", Rows: 4, Cols: 4, WLo: 5, WHi: 2}, false},
		{GraphSpec{Kind: ""}, false},
	}
	for _, c := range cases {
		if err := c.sp.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.sp, err, c.ok)
		}
	}
}
