package store

import (
	"context"
	"sync"
	"testing"

	"planarflow"
)

// TestRestoreEvictRace hammers TryRestore on one graph while queries on
// a sibling keep the LRU demoting it under a one-bundle budget — the
// exact interleaving the fleet creates when a standby restore races
// live traffic. Run under -race this holds the store's promise that
// restore and evict serialize on the entry: no torn bundle, no double
// accounting, and the answer stays right throughout.
func TestRestoreEvictRace(t *testing.T) {
	dir := t.TempDir()
	unit := distFootprint(t)
	s := New(Config{MaxBytes: unit + unit/2, SpillDir: dir})
	t.Cleanup(s.FlushSpills)
	for _, id := range []string{"a", "b"} {
		seed := map[string]int64{"a": 1, "b": 2}[id]
		if _, err := s.RegisterSpec(id, gridSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	wantA := warmDist(t, s, "a")
	warmDist(t, s, "b") // evicts a: its snapshot is on disk
	s.FlushSpills()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Restorer: promote a's snapshot back into memory, over and over.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.TryRestore("a"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Evictor: alternate queries on b and a; every b query under the
	// one-bundle budget demotes a (and vice versa), so the restorer's
	// promotions race LRU demotions of the same entry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		g := s.Graph("a")
		for i := 0; i < 100; i++ {
			id := "a"
			if i%2 == 0 {
				id = "b"
			}
			a, _, err := s.Do(ctx, id, planarflow.DistQuery(0, g.N()-1))
			if err != nil {
				t.Errorf("%s: %v", id, err)
				return
			}
			if id == "a" && a.Value != wantA {
				t.Errorf("mid-race answer %d != %d", a.Value, wantA)
				return
			}
		}
	}()

	wg.Wait()
	s.FlushSpills()
	if got := warmDist(t, s, "a"); got != wantA {
		t.Fatalf("post-race answer %d != %d", got, wantA)
	}
	st := s.Snapshot()
	if st.Resident > 2 || st.Bytes > s.cfg.MaxBytes+unit {
		t.Fatalf("accounting drifted: %+v", st)
	}
}
