// Package cmdtest runs main packages end-to-end for smoke tests: every
// cmd/ and examples/ binary gets a test that builds it, runs it with tiny
// inputs, and asserts exit 0 plus expected stdout markers.
package cmdtest

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// RunMain executes `go run . args...` in the calling test's working
// directory (go test runs each test in its package source directory, so
// "." is the main package under test). It fails the test on a non-zero
// exit and returns captured stdout.
func RunMain(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run . %s: %v\nstderr:\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out.String()
}

// ExpectMarkers asserts that stdout contains every marker.
func ExpectMarkers(t *testing.T, out string, markers ...string) {
	t.Helper()
	for _, m := range markers {
		if !strings.Contains(out, m) {
			t.Fatalf("stdout missing marker %q; got:\n%s", m, out)
		}
	}
}
