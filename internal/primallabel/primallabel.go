// Package primallabel implements the primal distance labeling of Li–Parter
// [27] over the same Bounded Diameter Decomposition the dual labeling uses:
// every vertex of every bag receives a label storing its distances to the
// bag's separator vertices, so that primal distances decode from two labels
// alone in Õ(D) bits per label and Õ(D²) construction rounds.
//
// The paper's minimum st-cut (Thm 6.1) consumes this as its final step: the
// residual-reachability query is an SSSP on the primal graph with residual
// dart lengths, solved by [27]'s algorithm. Lengths are per-dart: dart d
// contributes an arc Tail(d) -> Head(d) of length lengths[d] (spath.Inf
// deactivates it), so directed residual graphs are expressed directly.
package primallabel

import (
	"context"
	"fmt"

	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// Label is the distance label of one vertex within one bag.
type Label struct {
	Bag    *bdd.Bag
	Vertex int

	// To[f] / From[f] are distances vertex->f / f->vertex within the bag,
	// for every separator vertex f (non-leaf bags).
	To, From map[int]int64

	// Child is the recursive label in the unique child containing the
	// vertex (nil for separator vertices and leaves).
	Child *Label

	// Leaf labels store distances to/from every vertex of the leaf bag.
	LeafTo, LeafFrom map[int]int64
}

// Words returns the label size in O(log n)-bit words.
func (l *Label) Words() int {
	w := 2
	if l.LeafTo != nil {
		w += 2 * len(l.LeafTo)
	}
	w += 2 * (len(l.To) + len(l.From))
	if l.Child != nil {
		w += l.Child.Words()
	}
	return w
}

// Decode returns dist(a.Vertex -> b.Vertex) within the bag both labels
// belong to.
func Decode(a, b *Label) int64 {
	if a.Vertex == b.Vertex {
		return 0
	}
	if a.LeafTo != nil {
		if d, ok := a.LeafTo[b.Vertex]; ok {
			return d
		}
		return spath.Inf
	}
	if d, ok := a.To[b.Vertex]; ok {
		return d
	}
	if d, ok := b.From[a.Vertex]; ok {
		return d
	}
	best := spath.Inf
	for f, da := range a.To {
		if db, ok := b.From[f]; ok && da < spath.Inf && db < spath.Inf && da+db < best {
			best = da + db
		}
	}
	if a.Child != nil && b.Child != nil && a.Child.Bag == b.Child.Bag {
		if d := Decode(a.Child, b.Child); d < best {
			best = d
		}
	}
	return best
}

// Labeling holds vertex labels for every bag under one length assignment.
type Labeling struct {
	T        *bdd.BDD
	Lengths  []int64
	NegCycle bool

	byBag []map[int]*Label
}

// Compute runs the labeling bottom-up, mirroring §5.3 with vertices in the
// role of dual nodes and the separator vertex set S_X (plus vertices shared
// between children) in the role of F_X.
func Compute(t *bdd.BDD, lengths []int64, led *ledger.Ledger) *Labeling {
	la, _ := ComputeContext(context.Background(), t, lengths, led)
	return la
}

// ComputeContext is Compute with a cancellation checkpoint before every
// bag: a canceled context aborts the remaining bottom-up pass and returns
// ctx.Err() with a nil labeling, charging nothing (level charges are
// emitted only on completion).
func ComputeContext(ctx context.Context, t *bdd.BDD, lengths []int64, led *ledger.Ledger) (*Labeling, error) {
	la := &Labeling{
		T:       t,
		Lengths: lengths,
		byBag:   make([]map[int]*Label, len(t.Bags)),
	}
	levelCost := map[int]int64{}
	for i := len(t.Bags) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := t.Bags[i]
		var cost int64
		if b.IsLeaf() {
			cost = la.computeLeaf(b)
		} else {
			cost = la.computeInternal(b)
		}
		if la.NegCycle {
			led.Charge("primal-label/negative-cycle-abort", int64(b.TreeDepth+1))
			return la, nil
		}
		if cost > levelCost[b.Level] {
			levelCost[b.Level] = cost
		}
	}
	for lvl := 0; lvl < t.Depth; lvl++ {
		led.Charge(fmt.Sprintf("primal-label/level-%02d", lvl), 2*levelCost[lvl])
	}
	return la, nil
}

// Label returns the label of vertex v in bag b (nil if absent).
func (la *Labeling) Label(b *bdd.Bag, v int) *Label { return la.byBag[b.ID][v] }

// FootprintBytes estimates the resident memory of the labeling: every
// bag's vertex-label maps (Child pointers reference labels counted in
// their own bag and add nothing). An accounting estimate for eviction
// budgeting; maps count entries at the ~48 bytes/entry rule of thumb.
// The BDD is accounted separately.
func (la *Labeling) FootprintBytes() int64 {
	const (
		mapEntry   = 48
		labelFixed = 96
	)
	var b int64
	for _, labels := range la.byBag {
		b += int64(len(labels)) * mapEntry
		for _, l := range labels {
			b += labelFixed
			b += int64(len(l.To)+len(l.From)+len(l.LeafTo)+len(l.LeafFrom)) * mapEntry
		}
	}
	return b
}

// Dist returns dist(u -> v) in the full graph.
func (la *Labeling) Dist(u, v int) int64 {
	if la.NegCycle {
		return spath.Inf
	}
	a, b := la.byBag[0][u], la.byBag[0][v]
	if a == nil || b == nil {
		return spath.Inf
	}
	return Decode(a, b)
}

// SSSP decodes single-source distances from src to every vertex and charges
// the label broadcast (Õ(D) words over a depth-D tree).
func (la *Labeling) SSSP(src int, led *ledger.Ledger) []int64 {
	g := la.T.G
	dist := make([]int64, g.N())
	srcLab := la.byBag[0][src]
	for v := 0; v < g.N(); v++ {
		if la.NegCycle || srcLab == nil || la.byBag[0][v] == nil {
			dist[v] = spath.Inf
			continue
		}
		dist[v] = Decode(srcLab, la.byBag[0][v])
	}
	words := 0
	if srcLab != nil {
		words = srcLab.Words()
	}
	led.Charge("primal-sssp/broadcast-label",
		ledger.PipelinedBroadcastRounds(int64(la.T.Root.TreeDepth), int64(words)))
	return dist
}

// bagVertices collects the vertices of a bag (endpoints of its edges).
func bagVertices(g *planar.Graph, b *bdd.Bag) []int {
	seen := map[int]bool{}
	var out []int
	for e := 0; e < g.M(); e++ {
		if !b.EdgeIn[e] {
			continue
		}
		for _, v := range []int{g.Edge(e).U, g.Edge(e).V} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// arcsOf enumerates the directed arcs available inside a bag: both darts of
// every bag edge, with the caller's per-dart lengths.
func (la *Labeling) arcsOf(b *bdd.Bag, visit func(d planar.Dart, from, to int)) {
	g := la.T.G
	for e := 0; e < g.M(); e++ {
		if !b.EdgeIn[e] {
			continue
		}
		for _, d := range []planar.Dart{planar.ForwardDart(e), planar.BackwardDart(e)} {
			if la.Lengths[d] < spath.Inf {
				visit(d, g.Tail(d), g.Head(d))
			}
		}
	}
}

func (la *Labeling) computeLeaf(b *bdd.Bag) int64 {
	g := la.T.G
	verts := bagVertices(g, b)
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	dg := spath.NewDigraph(len(verts))
	arcs := 0
	la.arcsOf(b, func(d planar.Dart, from, to int) {
		dg.AddArc(idx[from], idx[to], la.Lengths[d], int(d))
		arcs++
	})
	all, ok := spath.APSPBellmanFord(dg)
	if !ok {
		la.NegCycle = true
		return 0
	}
	labels := make(map[int]*Label, len(verts))
	for i, v := range verts {
		l := &Label{
			Bag: b, Vertex: v,
			LeafTo:   make(map[int]int64, len(verts)),
			LeafFrom: make(map[int]int64, len(verts)),
		}
		for j, u := range verts {
			l.LeafTo[u] = all[i][j]
			l.LeafFrom[u] = all[j][i]
		}
		labels[v] = l
	}
	la.byBag[b.ID] = labels
	return int64(b.TreeDepth + len(verts) + arcs)
}

func (la *Labeling) computeInternal(b *bdd.Bag) int64 {
	g := la.T.G

	// Separator vertex set: vertices present in both children (this
	// contains the S_X cycle vertices; shared hole vertices join too).
	childVerts := [2]map[int]bool{{}, {}}
	for ci, c := range b.Children {
		for _, v := range bagVertices(g, c) {
			childVerts[ci][v] = true
		}
	}
	var sep []int
	inSep := map[int]bool{}
	for v := range childVerts[0] {
		if childVerts[1][v] {
			sep = append(sep, v)
			inSep[v] = true
		}
	}

	// Base DDG over (child, vertex) representatives of separator vertices.
	type node struct{ child, v int }
	index := map[node]int{}
	var nodes []node
	repsOf := map[int][]int{}
	for _, v := range sep {
		for ci := range b.Children {
			if childVerts[ci][v] {
				n := node{ci, v}
				index[n] = len(nodes)
				repsOf[v] = append(repsOf[v], len(nodes))
				nodes = append(nodes, n)
			}
		}
	}
	base := spath.NewDigraph(len(nodes) + 1)
	broadcastWords := 0
	childSep := [2][]int{}
	for ci := range b.Children {
		for _, v := range sep {
			if childVerts[ci][v] {
				childSep[ci] = append(childSep[ci], v)
			}
		}
		for _, v1 := range childSep[ci] {
			l1 := la.byBag[b.Children[ci].ID][v1]
			broadcastWords += l1.Words()
			for _, v2 := range childSep[ci] {
				if v1 == v2 {
					continue
				}
				if w := Decode(l1, la.byBag[b.Children[ci].ID][v2]); w < spath.Inf {
					base.AddArc(index[node{ci, v1}], index[node{ci, v2}], w, -1)
				}
			}
		}
	}
	for _, v := range sep {
		reps := repsOf[v]
		for i := 0; i < len(reps); i++ {
			for j := 0; j < len(reps); j++ {
				if i != j {
					base.AddArc(reps[i], reps[j], 0, -1)
				}
			}
		}
	}
	// Negative-cycle check across the separator.
	super := len(nodes)
	for i := range nodes {
		base.AddArc(super, i, 0, -1)
	}
	if _, ok := spath.BellmanFord(base, super); !ok {
		la.NegCycle = true
		return 0
	}
	// All-pairs over the base nodes.
	mat := make([][]int64, len(nodes))
	for i := range nodes {
		res, _ := spath.BellmanFord(base, i)
		mat[i] = res.Dist[:len(nodes)]
	}
	minReps := func(from, to []int) int64 {
		best := spath.Inf
		for _, i := range from {
			for _, j := range to {
				if mat[i][j] < best {
					best = mat[i][j]
				}
			}
		}
		return best
	}

	// Labels for every vertex of the bag.
	labels := make(map[int]*Label)
	for _, v := range bagVertices(g, b) {
		l := &Label{
			Bag: b, Vertex: v,
			To:   make(map[int]int64, len(sep)),
			From: make(map[int]int64, len(sep)),
		}
		if inSep[v] {
			for _, f := range sep {
				l.To[f] = minReps(repsOf[v], repsOf[f])
				l.From[f] = minReps(repsOf[f], repsOf[v])
			}
		} else {
			ci := 0
			if childVerts[1][v] {
				ci = 1
			}
			child := b.Children[ci]
			lv := la.byBag[child.ID][v]
			l.Child = lv
			for _, f := range sep {
				to, from := spath.Inf, spath.Inf
				for _, fp := range childSep[ci] {
					lp := la.byBag[child.ID][fp]
					rep := index[node{ci, fp}]
					if dgo := Decode(lv, lp); dgo < spath.Inf {
						for _, hr := range repsOf[f] {
							if dd := mat[rep][hr]; dd < spath.Inf && dgo+dd < to {
								to = dgo + dd
							}
						}
					}
					if dback := Decode(lp, lv); dback < spath.Inf {
						for _, hr := range repsOf[f] {
							if dd := mat[hr][rep]; dd < spath.Inf && dd+dback < from {
								from = dd + dback
							}
						}
					}
				}
				l.To[f] = to
				l.From[f] = from
			}
		}
		labels[v] = l
	}
	la.byBag[b.ID] = labels
	return int64(b.TreeDepth + broadcastWords)
}
