package primallabel

import (
	"math/rand/v2"
	"testing"

	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func explicitDist(g *planar.Graph, lengths []int64) ([][]int64, bool) {
	dg := spath.NewDigraph(g.N())
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		if lengths[d] < spath.Inf {
			dg.AddArc(g.Tail(d), g.Head(d), lengths[d], int(d))
		}
	}
	return spath.APSPBellmanFord(dg)
}

func check(t *testing.T, g *planar.Graph, lengths []int64, leaf int) {
	t.Helper()
	led := ledger.New()
	tree := bdd.Build(g, leaf, led)
	la := Compute(tree, lengths, led)
	want, ok := explicitDist(g, lengths)
	if !ok {
		if !la.NegCycle {
			t.Fatal("negative cycle missed")
		}
		return
	}
	if la.NegCycle {
		t.Fatal("spurious negative cycle")
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got := la.Dist(u, v); got != want[u][v] {
				t.Fatalf("dist(%d,%d)=%d want %d", u, v, got, want[u][v])
			}
		}
	}
	if led.Total() == 0 {
		t.Fatal("no rounds charged")
	}
}

func symLengths(g *planar.Graph, rng *rand.Rand, lo, hi int64) []int64 {
	lens := make([]int64, g.NumDarts())
	for e := 0; e < g.M(); e++ {
		w := lo + rng.Int64N(hi-lo+1)
		lens[planar.ForwardDart(e)] = w
		lens[planar.BackwardDart(e)] = w
	}
	return lens
}

func TestMatchesBaselineGrids(t *testing.T) {
	rng := planar.NewRand(2)
	for _, dims := range [][2]int{{3, 3}, {4, 6}, {6, 6}, {2, 12}} {
		g := planar.Grid(dims[0], dims[1])
		check(t, g, symLengths(g, rng, 1, 40), 10)
	}
}

func TestMatchesBaselineDirected(t *testing.T) {
	// Asymmetric dart lengths (directed graphs), including deactivated
	// darts — the residual-graph pattern MinSTCut uses.
	rng := planar.NewRand(3)
	for trial := 0; trial < 8; trial++ {
		g := planar.Grid(2+rng.IntN(4), 3+rng.IntN(4))
		lens := make([]int64, g.NumDarts())
		for d := range lens {
			switch rng.IntN(3) {
			case 0:
				lens[d] = spath.Inf
			default:
				lens[d] = rng.Int64N(20)
			}
		}
		check(t, g, lens, 8)
	}
}

func TestMatchesBaselineTriangulations(t *testing.T) {
	rng := planar.NewRand(5)
	for _, n := range []int{10, 30, 60} {
		g := planar.StackedTriangulation(n, rng)
		check(t, g, symLengths(g, rng, 1, 15), 12)
	}
}

func TestNegativeLengthsViaPotentials(t *testing.T) {
	rng := planar.NewRand(7)
	g := planar.Grid(4, 5)
	phi := make([]int64, g.N())
	for v := range phi {
		phi[v] = rng.Int64N(50)
	}
	lens := make([]int64, g.NumDarts())
	neg := false
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		lens[d] = 1 + rng.Int64N(10) + phi[g.Tail(d)] - phi[g.Head(d)]
		neg = neg || lens[d] < 0
	}
	if !neg {
		t.Fatal("no negative lengths generated")
	}
	check(t, g, lens, 8)
}

func TestNegativeCycleDetected(t *testing.T) {
	g := planar.Grid(3, 3)
	lens := make([]int64, g.NumDarts())
	for d := range lens {
		lens[d] = -1
	}
	led := ledger.New()
	tree := bdd.Build(g, 6, led)
	la := Compute(tree, lens, led)
	if !la.NegCycle {
		t.Fatal("negative cycle missed")
	}
}

func TestLeafLimitInvariance(t *testing.T) {
	rng := planar.NewRand(11)
	g := planar.Grid(5, 5)
	lens := symLengths(g, rng, 1, 25)
	for _, leaf := range []int{4, 8, 20, 1000} {
		check(t, g, lens, leaf)
	}
}

func TestSSSPAndLabelWords(t *testing.T) {
	rng := planar.NewRand(13)
	g := planar.Grid(5, 6)
	lens := symLengths(g, rng, 1, 9)
	led := ledger.New()
	tree := bdd.Build(g, 10, led)
	la := Compute(tree, lens, led)
	want, _ := explicitDist(g, lens)
	dist := la.SSSP(0, led)
	for v := range dist {
		if dist[v] != want[0][v] {
			t.Fatalf("sssp dist[%d]=%d want %d", v, dist[v], want[0][v])
		}
	}
	for v := 0; v < g.N(); v++ {
		if w := la.Label(tree.Root, v).Words(); w <= 0 || w > 40*g.Diameter() {
			t.Fatalf("label words %d out of range for D=%d", w, g.Diameter())
		}
	}
}
