package primallabel

import "planarflow/internal/bdd"

// State exposes the labeling's per-bag vertex→label maps, indexed by bag
// ID, for the snapshot codec. The returned slice is the live state, not
// a copy; callers must treat it as read-only (a published labeling is
// immutable).
func (la *Labeling) State() []map[int]*Label { return la.byBag }

// FromState reassembles a Labeling from codec-decoded parts: the tree it
// decodes over, the per-dart lengths (rederived from the graph, never
// stored), the negative-cycle flag, and the per-bag label maps in bag-ID
// order. It is the snapshot codec's inverse of State; the result is
// indistinguishable from one produced by Compute.
func FromState(t *bdd.BDD, lengths []int64, negCycle bool, byBag []map[int]*Label) *Labeling {
	return &Labeling{T: t, Lengths: lengths, NegCycle: negCycle, byBag: byBag}
}
