package duallabel

import (
	"math/rand/v2"
	"testing"

	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// explicitDualDist computes APSP on the explicit dual graph with the given
// per-dart lengths: the independent baseline every label decode is checked
// against.
func explicitDualDist(g *planar.Graph, lengths []int64) ([][]int64, bool) {
	du := g.Dual()
	dg := spath.NewDigraph(du.NumNodes())
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		if lengths[d] >= spath.Inf {
			continue
		}
		dg.AddArc(du.Tail(d), du.Head(d), lengths[d], int(d))
	}
	return spath.APSPBellmanFord(dg)
}

func randomLengths(g *planar.Graph, rng *rand.Rand, lo, hi int64) []int64 {
	lens := make([]int64, g.NumDarts())
	for d := range lens {
		lens[d] = lo + rng.Int64N(hi-lo+1)
	}
	return lens
}

func checkAgainstBaseline(t *testing.T, g *planar.Graph, lengths []int64, leafLimit int) {
	t.Helper()
	led := ledger.New()
	tree := bdd.Build(g, leafLimit, led)
	la := Compute(tree, lengths, led)
	want, ok := explicitDualDist(g, lengths)
	if !ok {
		if !la.NegCycle {
			t.Fatal("baseline found a negative cycle; labeling did not")
		}
		return
	}
	if la.NegCycle {
		t.Fatal("labeling reported a spurious negative cycle")
	}
	nf := g.Faces().NumFaces()
	for f1 := 0; f1 < nf; f1++ {
		for f2 := 0; f2 < nf; f2++ {
			got := la.Dist(f1, f2)
			if got != want[f1][f2] {
				t.Fatalf("dist(%d,%d)=%d want %d (n=%d leaf=%d)",
					f1, f2, got, want[f1][f2], g.N(), leafLimit)
			}
		}
	}
	if led.Total() == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestLabelsMatchBaselinePositive(t *testing.T) {
	rng := planar.NewRand(1)
	for _, dims := range [][2]int{{3, 3}, {4, 5}, {6, 6}, {2, 12}} {
		g := planar.Grid(dims[0], dims[1])
		checkAgainstBaseline(t, g, randomLengths(g, rng, 1, 50), 8)
	}
}

func TestLabelsMatchBaselineNegativeLengths(t *testing.T) {
	// The paper's SSSP works with positive and negative lengths; use
	// residual-like vectors: forward positive, some backwards negative, but
	// crafted to avoid negative cycles (check baseline first).
	// Potential-shifted lengths: len'(d) = len(d) + phi(tail) - phi(head)
	// keeps all cycle sums unchanged (no negative cycles) while making many
	// arcs negative — exactly the structure the Miller–Naor residual duals
	// have.
	rng := planar.NewRand(7)
	negSeen := false
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(3+rng.IntN(3), 3+rng.IntN(4))
		du := g.Dual()
		phi := make([]int64, du.NumNodes())
		for f := range phi {
			phi[f] = rng.Int64N(60)
		}
		lens := make([]int64, g.NumDarts())
		for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
			lens[d] = 1 + rng.Int64N(20) + phi[du.Tail(d)] - phi[du.Head(d)]
			if lens[d] < 0 {
				negSeen = true
			}
		}
		checkAgainstBaseline(t, g, lens, 8)
	}
	if !negSeen {
		t.Fatal("no negative lengths generated")
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	rng := planar.NewRand(3)
	found := 0
	for trial := 0; trial < 60 && found < 5; trial++ {
		g := planar.Grid(3+rng.IntN(3), 3+rng.IntN(3))
		lens := make([]int64, g.NumDarts())
		for d := range lens {
			lens[d] = rng.Int64N(21) - 10
		}
		_, ok := explicitDualDist(g, lens)
		led := ledger.New()
		tree := bdd.Build(g, 8, led)
		la := Compute(tree, lens, led)
		if ok && la.NegCycle {
			t.Fatal("spurious negative cycle")
		}
		if !ok {
			found++
			if !la.NegCycle {
				t.Fatal("negative cycle missed")
			}
		}
	}
	if found == 0 {
		t.Fatal("no negative-cycle instances generated")
	}
}

func TestLabelsOnVariedFamilies(t *testing.T) {
	rng := planar.NewRand(11)
	graphs := []*planar.Graph{
		planar.Cylinder(3, 6),
		planar.StackedTriangulation(40, rng),
		planar.RemoveRandomEdges(planar.StackedTriangulation(50, rng), rng, 25),
		planar.Grid(1, 8), // path: dual is a single node with self-loops
	}
	for _, g := range graphs {
		checkAgainstBaseline(t, g, randomLengths(g, rng, 1, 30), 10)
	}
}

func TestLeafLimitInvariance(t *testing.T) {
	// The decode must be exact regardless of where the recursion bottoms
	// out.
	rng := planar.NewRand(13)
	g := planar.Grid(5, 6)
	lens := randomLengths(g, rng, 1, 40)
	for _, leaf := range []int{4, 8, 16, 64, 1000} {
		checkAgainstBaseline(t, g, lens, leaf)
	}
}

func TestSSSPAndTreeMarking(t *testing.T) {
	rng := planar.NewRand(17)
	g := planar.Grid(5, 5)
	lens := randomLengths(g, rng, 1, 25)
	led := ledger.New()
	tree := bdd.Build(g, 8, led)
	la := Compute(tree, lens, led)
	want, _ := explicitDualDist(g, lens)
	for src := 0; src < g.Faces().NumFaces(); src += 3 {
		res := la.SSSP(src, led)
		if res.NegCycle {
			t.Fatal("unexpected negative cycle")
		}
		for f, d := range res.Dist {
			if d != want[src][f] {
				t.Fatalf("sssp(%d) dist[%d]=%d want %d", src, f, d, want[src][f])
			}
		}
		if !res.VerifyTree(la) {
			t.Fatalf("sssp(%d): tree verification failed", src)
		}
	}
}

func TestLabelSizeNearLinearInD(t *testing.T) {
	// Lemma 5.17: labels are Õ(D) words. Compare a long-thin grid (large D)
	// with a square grid (small D) of the same size: per-face label words
	// should track D, not n.
	thin := planar.Grid(2, 32)
	square := planar.Grid(8, 8)
	words := func(g *planar.Graph) int {
		led := ledger.New()
		tree := bdd.Build(g, 4*g.Diameter(), led)
		la := Compute(tree, UniformLengths(g, false), led)
		max := 0
		for f := 0; f < g.Faces().NumFaces(); f++ {
			if w := la.RootLabel(f).Words(); w > max {
				max = w
			}
		}
		return max
	}
	wThin, wSquare := words(thin), words(square)
	if wThin == 0 || wSquare == 0 {
		t.Fatal("no labels")
	}
	// D(thin)=32, D(square)=14: thin labels may be larger but must stay
	// within a small factor of D * polylog; sanity: not worse than 20x D.
	if wThin > 40*thin.Diameter() {
		t.Fatalf("thin label words=%d too large for D=%d", wThin, thin.Diameter())
	}
	if wSquare > 40*square.Diameter() {
		t.Fatalf("square label words=%d too large for D=%d", wSquare, square.Diameter())
	}
}

func TestUniformLengths(t *testing.T) {
	g := planar.Grid(3, 3)
	lens := UniformLengths(g, true)
	for e := 0; e < g.M(); e++ {
		if lens[planar.ForwardDart(e)] != g.Edge(e).Weight {
			t.Fatal("forward length wrong")
		}
		if lens[planar.BackwardDart(e)] < spath.Inf {
			t.Fatal("backward should be deactivated")
		}
	}
}
