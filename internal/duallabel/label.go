// Package duallabel implements the paper's dual distance labeling (§5):
// every face (dual node) of every bag of the BDD receives an Õ(D)-bit label
// such that the distance in the dual bag X* between any two nodes can be
// decoded from their labels alone, with negative lengths supported and
// negative cycles detected. The root bag's labels answer distances in G*,
// which powers dual SSSP (Lemma 2.2) and hence max st-flow (Thm 1.2).
//
// Lengths are per-dart: the dual arc of dart d runs FaceOf(d) ->
// FaceOf(Rev(d)) with length lengths[d] (spath.Inf deactivates the arc).
package duallabel

import (
	"planarflow/internal/bdd"
	"planarflow/internal/spath"
)

// Label is the distance label of one face (dual node) within one bag (§5.2).
type Label struct {
	Bag  *bdd.Bag
	Face int

	// To[f] = dist(Face -> f) and From[f] = dist(f -> Face) in X*, for every
	// f in F_X (non-leaf bags).
	To, From map[int]int64

	// Child is the recursive label in the unique child bag wholly containing
	// Face (nil for F_X faces and leaves).
	Child *Label

	// Leaf labels store distances to/from every face of the leaf bag.
	LeafTo, LeafFrom map[int]int64
}

// Words returns the label size in O(log n)-bit words (an ID plus a distance
// per entry, per level), the quantity Lemma 5.17 bounds by Õ(D).
func (l *Label) Words() int {
	w := 2 // bag ID + face ID
	if l.LeafTo != nil {
		w += 2 * len(l.LeafTo)
	}
	w += 2 * (len(l.To) + len(l.From))
	if l.Child != nil {
		w += l.Child.Words()
	}
	return w
}

// Decode returns dist(a.Face -> b.Face) in the dual bag both labels belong
// to (Lemma 5.16). Returns spath.Inf when unreachable.
func Decode(a, b *Label) int64 {
	if a.Face == b.Face {
		return 0
	}
	if a.LeafTo != nil {
		if d, ok := a.LeafTo[b.Face]; ok {
			return d
		}
		return spath.Inf
	}
	// If either face is in F_X the distance is stored directly (the key set
	// of To/From is exactly F_X).
	if d, ok := a.To[b.Face]; ok {
		return d
	}
	if d, ok := b.From[a.Face]; ok {
		return d
	}
	best := spath.Inf
	for f, da := range a.To {
		if db, ok := b.From[f]; ok && da < spath.Inf && db < spath.Inf {
			if da+db < best {
				best = da + db
			}
		}
	}
	if a.Child != nil && b.Child != nil && a.Child.Bag == b.Child.Bag {
		if d := Decode(a.Child, b.Child); d < best {
			best = d
		}
	}
	return best
}
