package duallabel

import (
	"testing"

	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func TestLabelsOnNestedTriangles(t *testing.T) {
	// Worst-case diameter family with deep decompositions.
	rng := planar.NewRand(23)
	g := planar.NestedTriangles(10)
	checkAgainstBaseline(t, g, randomLengths(g, rng, 1, 40), 8)
}

func TestLabelsWithDeactivatedArcs(t *testing.T) {
	// Mixed Inf/finite lengths (the Miller–Naor residual pattern where the
	// dual becomes effectively directed).
	rng := planar.NewRand(29)
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(3+rng.IntN(3), 3+rng.IntN(3))
		lens := make([]int64, g.NumDarts())
		for d := range lens {
			if rng.IntN(4) == 0 {
				lens[d] = spath.Inf
			} else {
				lens[d] = rng.Int64N(30)
			}
		}
		checkAgainstBaseline(t, g, lens, 8)
	}
}

func TestDDGStructure(t *testing.T) {
	g := planar.Grid(8, 8)
	led := ledger.New()
	tree := bdd.Build(g, 16, led)
	la := Compute(tree, UniformLengths(g, false), led)
	if la.NegCycle {
		t.Fatal("unexpected negative cycle")
	}
	for _, b := range tree.Bags {
		if b.IsLeaf() {
			if la.DDG(b) != nil {
				t.Fatalf("leaf bag %d has a DDG", b.ID)
			}
			continue
		}
		ddg := la.DDG(b)
		if ddg == nil {
			t.Fatalf("bag %d missing DDG", b.ID)
		}
		// Every node represents an FX face inside a child containing it.
		fx := map[int]bool{}
		for _, f := range b.FX {
			fx[f] = true
		}
		for _, nd := range ddg.Nodes {
			if !fx[nd.Face] {
				t.Fatalf("bag %d: DDG node for non-FX face %d", b.ID, nd.Face)
			}
			if !b.Children[nd.Child].FaceSet[nd.Face] {
				t.Fatalf("bag %d: DDG node (%d,%d) not in child", b.ID, nd.Child, nd.Face)
			}
		}
		// Separator arcs carry real darts of dual S_X edges; zero/clique
		// arcs carry NoDart.
		for _, a := range ddg.Arcs {
			if a.Dart != planar.NoDart {
				e := planar.EdgeOf(a.Dart)
				found := false
				for _, se := range b.DualSXEdges {
					if se == e {
						found = true
					}
				}
				if !found {
					t.Fatalf("bag %d: separator arc for non-S_X edge %d", b.ID, e)
				}
			}
			if a.Len < 0 {
				t.Fatalf("bag %d: negative DDG arc with non-negative lengths", b.ID)
			}
		}
		// The distance matrix is internally consistent (triangle
		// inequality over explicit arcs).
		for _, a := range ddg.Arcs {
			for k := range ddg.Nodes {
				if ddg.Dist[k][a.From] < spath.Inf && ddg.Dist[k][a.From]+a.Len < ddg.Dist[k][a.To] {
					t.Fatalf("bag %d: matrix violates arc relaxation", b.ID)
				}
			}
		}
	}
}

func TestLabelWordsAccounting(t *testing.T) {
	g := planar.Grid(6, 6)
	led := ledger.New()
	tree := bdd.Build(g, 10, led)
	la := Compute(tree, UniformLengths(g, false), led)
	for f := 0; f < g.Faces().NumFaces(); f++ {
		l := la.RootLabel(f)
		// Words must count both the local To/From entries and the
		// recursive tail.
		want := 2 + 2*(len(l.To)+len(l.From))
		if l.Child != nil {
			want += l.Child.Words()
		}
		if l.LeafTo != nil {
			want += 2 * len(l.LeafTo)
		}
		if l.Words() != want {
			t.Fatalf("face %d: words=%d want %d", f, l.Words(), want)
		}
	}
}

func TestSSSPFromEveryFaceSmall(t *testing.T) {
	rng := planar.NewRand(31)
	g := planar.Cylinder(2, 5)
	lens := randomLengths(g, rng, 1, 15)
	led := ledger.New()
	tree := bdd.Build(g, 8, led)
	la := Compute(tree, lens, led)
	want, _ := explicitDualDist(g, lens)
	for src := 0; src < g.Faces().NumFaces(); src++ {
		res := la.SSSP(src, led)
		for f, d := range res.Dist {
			if d != want[src][f] {
				t.Fatalf("src=%d dist[%d]=%d want %d", src, f, d, want[src][f])
			}
		}
		if !res.VerifyTree(la) {
			t.Fatalf("src=%d: tree invalid", src)
		}
	}
}
