package duallabel

import (
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// SSSPResult is the outcome of a dual single-source computation (Lemma 2.2).
type SSSPResult struct {
	Source   int
	Dist     []int64 // per face of G; spath.Inf if unreachable
	NegCycle bool
	// TreeDart[f] is the dart whose dual arc enters f on the marked
	// shortest-path tree (NoDart at the source/unreachable faces).
	TreeDart []planar.Dart
}

// SSSP computes single-source shortest paths in G* from the given source
// face by broadcasting the source's label and decoding everywhere, then
// marks a shortest-path tree via one aggregation per face (Lemma 2.2). The
// label broadcast is charged at its measured word count over a depth-D tree.
func (la *Labeling) SSSP(source int, led *ledger.Ledger) *SSSPResult {
	g := la.T.G
	fd := g.Faces()
	nf := fd.NumFaces()
	res := &SSSPResult{
		Source:   source,
		Dist:     make([]int64, nf),
		TreeDart: make([]planar.Dart, nf),
	}
	if la.NegCycle {
		res.NegCycle = true
		return res
	}
	src := la.RootLabel(source)
	// Broadcast Label(source): Words() messages over a depth-D BFS tree.
	led.Charge("dual-sssp/broadcast-label",
		ledger.PipelinedBroadcastRounds(int64(la.T.Root.TreeDepth), int64(src.Words())))
	for f := 0; f < nf; f++ {
		res.Dist[f] = Decode(src, la.RootLabel(f))
		res.TreeDart[f] = planar.NoDart
	}
	// Tree marking: for each face f, the incoming dual arc minimizing
	// dist(s, tail) + len — one PA on G* (we mark centrally and charge the
	// measured-equivalent single aggregation; callers with a minoragg
	// simulator charge its calibrated unit instead).
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		if la.Lengths[d] >= spath.Inf {
			continue
		}
		from, to := fd.FaceOf(d), fd.FaceOf(planar.Rev(d))
		if to == source || res.Dist[from] >= spath.Inf {
			continue
		}
		cand := res.Dist[from] + la.Lengths[d]
		cur := res.TreeDart[to]
		if cand < res.Dist[to] {
			continue // cannot happen without a negative cycle
		}
		if cand == res.Dist[to] {
			if cur == planar.NoDart || d < cur {
				res.TreeDart[to] = d
			}
		}
	}
	led.Charge("dual-sssp/mark-tree", int64(2*(la.T.Root.TreeDepth+1)))
	return res
}

// VerifyTree checks that the marked tree darts realize the distances (used
// by tests and the harness as a self-check).
func (res *SSSPResult) VerifyTree(la *Labeling) bool {
	g := la.T.G
	fd := g.Faces()
	for f := range res.Dist {
		if f == res.Source || res.Dist[f] >= spath.Inf {
			continue
		}
		d := res.TreeDart[f]
		if d == planar.NoDart {
			return false
		}
		if fd.FaceOf(planar.Rev(d)) != f {
			return false
		}
		if res.Dist[fd.FaceOf(d)]+la.Lengths[d] != res.Dist[f] {
			return false
		}
	}
	return true
}

// UniformLengths builds a per-dart length vector realizing the "dual of a
// weighted directed graph" convention used by the girth and min-cut
// reductions: the dual arc of edge e's forward dart carries e's weight and
// the reverse dart is deactivated (one dual arc per primal edge).
func UniformLengths(g *planar.Graph, forwardOnly bool) []int64 {
	lens := make([]int64, g.NumDarts())
	for e := 0; e < g.M(); e++ {
		lens[planar.ForwardDart(e)] = g.Edge(e).Weight
		if forwardOnly {
			lens[planar.BackwardDart(e)] = spath.Inf
		} else {
			lens[planar.BackwardDart(e)] = g.Edge(e).Weight
		}
	}
	return lens
}
