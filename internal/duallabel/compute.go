package duallabel

import (
	"context"
	"fmt"

	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// DDGNode is a node of a bag's dense distance graph: the representative of
// an F_X face inside one child bag (§5.3, Figure 13).
type DDGNode struct {
	Child int // index into bag.Children
	Face  int
}

// DDGArc is an arc of the base DDG, tagged with its provenance.
type DDGArc struct {
	From, To int // node indices
	Len      int64
	// Dart is the primal dart for separator arcs (NoDart for clique and
	// zero arcs).
	Dart planar.Dart
}

// BagDDG is the base dense distance graph of a non-leaf bag: nodes are the
// child representatives of F_X faces; arcs are (i) within-child cliques
// weighted by decoded child-label distances, (ii) dual S_X arcs, and (iii)
// zero arcs joining representatives of the same face.
type BagDDG struct {
	Bag   *bdd.Bag
	Nodes []DDGNode
	Index map[DDGNode]int
	Arcs  []DDGArc
	// Dist is the all-pairs matrix over Nodes (computed by Bellman–Ford;
	// spath.Inf when unreachable).
	Dist [][]int64
	// RepsOf maps each F_X face to its node indices (1 or 2).
	RepsOf map[int][]int
}

// Labeling holds the labels of every face in every bag for one length
// assignment.
type Labeling struct {
	T       *bdd.BDD
	Lengths []int64

	// NegCycle is true when G* contains a negative cycle; labels are then
	// invalid (Thm 2.1's failure report).
	NegCycle bool

	byBag []map[int]*Label // bag ID -> face -> label
	ddgs  []*BagDDG        // bag ID -> base DDG (nil for leaves)
}

// Compute runs the labeling algorithm of §5.3 bottom-up over the BDD,
// charging the per-level broadcast costs from measured quantities.
func Compute(t *bdd.BDD, lengths []int64, led *ledger.Ledger) *Labeling {
	la, _ := ComputeContext(context.Background(), t, lengths, led)
	return la
}

// ComputeContext is Compute with a cancellation checkpoint before every
// bag: a canceled context aborts the remaining bottom-up pass and returns
// ctx.Err() with a nil labeling, charging nothing (level charges are
// emitted only on completion).
func ComputeContext(ctx context.Context, t *bdd.BDD, lengths []int64, led *ledger.Ledger) (*Labeling, error) {
	la := &Labeling{
		T:       t,
		Lengths: lengths,
		byBag:   make([]map[int]*Label, len(t.Bags)),
		ddgs:    make([]*BagDDG, len(t.Bags)),
	}

	// Process bags bottom-up (children have larger IDs than parents by
	// construction, so reverse ID order is a valid post-order).
	levelCost := map[int]int64{}
	for i := len(t.Bags) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := t.Bags[i]
		var cost int64
		if b.IsLeaf() {
			cost = la.computeLeaf(b)
		} else {
			cost = la.computeInternal(b)
		}
		if la.NegCycle {
			led.Charge("label/negative-cycle-abort", int64(b.TreeDepth+1))
			return la, nil
		}
		if cost > levelCost[b.Level] {
			levelCost[b.Level] = cost
		}
	}
	// Bags of a level run in parallel at 2x congestion (property 7); Ĝ
	// simulation costs another 2x.
	for lvl := 0; lvl < t.Depth; lvl++ {
		led.Charge(fmt.Sprintf("label/level-%02d", lvl), 4*levelCost[lvl])
	}
	return la, nil
}

// Label returns the label of face f in bag b (nil if f is absent from b).
func (la *Labeling) Label(b *bdd.Bag, f int) *Label { return la.byBag[b.ID][f] }

// RootLabel returns the label of face f in the root bag (G*).
func (la *Labeling) RootLabel(f int) *Label { return la.byBag[t0][f] }

const t0 = 0 // root bag ID

// Dist returns dist(f1 -> f2) in G* (spath.Inf if unreachable).
func (la *Labeling) Dist(f1, f2 int) int64 {
	if la.NegCycle {
		return spath.Inf
	}
	return Decode(la.byBag[t0][f1], la.byBag[t0][f2])
}

// DDG returns the base dense distance graph of a non-leaf bag.
func (la *Labeling) DDG(b *bdd.Bag) *BagDDG { return la.ddgs[b.ID] }

// FootprintBytes estimates the resident memory of the labeling: every
// bag's label maps plus the retained DDGs (labels are counted where they
// live in byBag — Child pointers reference those same objects and add
// nothing). An accounting estimate for eviction budgeting, not an exact
// heap measurement; maps count entries at the ~48 bytes/entry rule of
// thumb. The BDD the labeling decodes over is accounted separately.
func (la *Labeling) FootprintBytes() int64 {
	const (
		mapEntry   = 48
		labelFixed = 96
		arcSize    = 40
	)
	var b int64
	for _, labels := range la.byBag {
		b += int64(len(labels)) * mapEntry
		for _, l := range labels {
			b += labelFixed
			b += int64(len(l.To)+len(l.From)+len(l.LeafTo)+len(l.LeafFrom)) * mapEntry
		}
	}
	for _, ddg := range la.ddgs {
		if ddg == nil {
			continue
		}
		b += int64(len(ddg.Nodes))*16 + int64(len(ddg.Index)+len(ddg.RepsOf))*mapEntry
		b += int64(len(ddg.Arcs)) * arcSize
		for _, row := range ddg.Dist {
			b += int64(len(row)) * 8
		}
	}
	return b
}

// computeLeaf gathers the whole dual bag and computes all-pairs distances
// (the "collect the entire graph" step); returns the measured broadcast cost
// TreeDepth + #nodes + #arcs (pipelined).
func (la *Labeling) computeLeaf(b *bdd.Bag) int64 {
	g := la.T.G
	idx := make(map[int]int, len(b.Faces))
	for i, f := range b.Faces {
		idx[f] = i
	}
	dg := spath.NewDigraph(len(b.Faces))
	arcs := 0
	b.DualArcs(g, func(d planar.Dart, from, to int) {
		if la.Lengths[d] >= spath.Inf {
			return
		}
		dg.AddArc(idx[from], idx[to], la.Lengths[d], int(d))
		arcs++
	})
	all, ok := spath.APSPBellmanFord(dg)
	if !ok {
		la.NegCycle = true
		return 0
	}
	labels := make(map[int]*Label, len(b.Faces))
	for i, f := range b.Faces {
		l := &Label{
			Bag: b, Face: f,
			LeafTo:   make(map[int]int64, len(b.Faces)),
			LeafFrom: make(map[int]int64, len(b.Faces)),
		}
		for j, h := range b.Faces {
			l.LeafTo[h] = all[i][j]
			l.LeafFrom[h] = all[j][i]
		}
		labels[f] = l
	}
	la.byBag[b.ID] = labels
	return int64(b.TreeDepth + len(b.Faces) + arcs)
}

// computeInternal builds the base DDG from child labels, checks for
// negative cycles, and derives every face's label via min-plus products over
// the base matrix (§5.3); returns the charged broadcast cost.
func (la *Labeling) computeInternal(b *bdd.Bag) int64 {
	g := la.T.G
	fd := g.Faces()
	ddg := &BagDDG{
		Bag:    b,
		Index:  make(map[DDGNode]int),
		RepsOf: make(map[int][]int),
	}
	addNode := func(ci, f int) int {
		n := DDGNode{Child: ci, Face: f}
		if i, ok := ddg.Index[n]; ok {
			return i
		}
		i := len(ddg.Nodes)
		ddg.Nodes = append(ddg.Nodes, n)
		ddg.Index[n] = i
		ddg.RepsOf[f] = append(ddg.RepsOf[f], i)
		return i
	}
	inFX := make(map[int]bool, len(b.FX))
	for _, f := range b.FX {
		inFX[f] = true
		for ci, c := range b.Children {
			if c.FaceSet[f] {
				addNode(ci, f)
			}
		}
	}

	// (i) Within-child cliques from decoded child labels.
	childFX := [2][]int{}
	for ci, c := range b.Children {
		for _, f := range b.FX {
			if c.FaceSet[f] {
				childFX[ci] = append(childFX[ci], f)
			}
		}
	}
	broadcastWords := 0
	for ci := range b.Children {
		for _, f1 := range childFX[ci] {
			l1 := la.byBag[b.Children[ci].ID][f1]
			broadcastWords += l1.Words()
			for _, f2 := range childFX[ci] {
				if f1 == f2 {
					continue
				}
				l2 := la.byBag[b.Children[ci].ID][f2]
				if w := Decode(l1, l2); w < spath.Inf {
					ddg.Arcs = append(ddg.Arcs, DDGArc{
						From: ddg.Index[DDGNode{ci, f1}],
						To:   ddg.Index[DDGNode{ci, f2}],
						Len:  w, Dart: planar.NoDart,
					})
				}
			}
		}
	}
	// (ii) Dual S_X arcs.
	for _, e := range b.DualSXEdges {
		for _, d := range []planar.Dart{planar.ForwardDart(e), planar.BackwardDart(e)} {
			if la.Lengths[d] >= spath.Inf {
				continue
			}
			fromC := int(b.Sep.Side[d])
			toC := int(b.Sep.Side[planar.Rev(d)])
			ddg.Arcs = append(ddg.Arcs, DDGArc{
				From: ddg.Index[DDGNode{fromC, fd.FaceOf(d)}],
				To:   ddg.Index[DDGNode{toC, fd.FaceOf(planar.Rev(d))}],
				Len:  la.Lengths[d], Dart: d,
			})
		}
	}
	broadcastWords += 2 * len(b.DualSXEdges)
	// (iii) Zero arcs between representatives of the same face.
	for _, f := range b.FX {
		reps := ddg.RepsOf[f]
		for i := 0; i < len(reps); i++ {
			for j := 0; j < len(reps); j++ {
				if i != j {
					ddg.Arcs = append(ddg.Arcs, DDGArc{From: reps[i], To: reps[j], Len: 0, Dart: planar.NoDart})
				}
			}
		}
	}

	// Negative-cycle check + all-pairs matrix on the base DDG.
	dg := spath.NewDigraph(len(ddg.Nodes) + 1)
	super := len(ddg.Nodes)
	for _, a := range ddg.Arcs {
		dg.AddArc(a.From, a.To, a.Len, -1)
	}
	for i := range ddg.Nodes {
		dg.AddArc(super, i, 0, -1)
	}
	if _, ok := spath.BellmanFord(dg, super); !ok {
		la.NegCycle = true
		return 0
	}
	ddg.Dist = make([][]int64, len(ddg.Nodes))
	base := spath.NewDigraph(len(ddg.Nodes))
	for _, a := range ddg.Arcs {
		base.AddArc(a.From, a.To, a.Len, -1)
	}
	for i := range ddg.Nodes {
		res, _ := spath.BellmanFord(base, i)
		ddg.Dist[i] = res.Dist
	}
	la.ddgs[b.ID] = ddg

	// ---- Labels for every face of the bag. ----
	labels := make(map[int]*Label, len(b.Faces))
	for _, f := range b.Faces {
		l := &Label{
			Bag: b, Face: f,
			To:   make(map[int]int64, len(b.FX)),
			From: make(map[int]int64, len(b.FX)),
		}
		if inFX[f] {
			// Distances directly from the base matrix (min over reps).
			for _, h := range b.FX {
				l.To[h] = minOverReps(ddg, ddg.RepsOf[f], ddg.RepsOf[h])
				l.From[h] = minOverReps(ddg, ddg.RepsOf[h], ddg.RepsOf[f])
			}
		} else {
			// f lives wholly in one child: first/last hop through FX∩child.
			ci := b.ChildContaining(f)
			child := b.Children[ci]
			lf := la.byBag[child.ID][f]
			l.Child = lf
			for _, h := range b.FX {
				to, from := spath.Inf, spath.Inf
				for _, fp := range childFX[ci] {
					lp := la.byBag[child.ID][fp]
					rep := ddg.Index[DDGNode{ci, fp}]
					if dgo := Decode(lf, lp); dgo < spath.Inf {
						for _, hr := range ddg.RepsOf[h] {
							if dd := ddg.Dist[rep][hr]; dd < spath.Inf && dgo+dd < to {
								to = dgo + dd
							}
						}
					}
					if dback := Decode(lp, lf); dback < spath.Inf {
						for _, hr := range ddg.RepsOf[h] {
							if dd := ddg.Dist[hr][rep]; dd < spath.Inf && dd+dback < from {
								from = dd + dback
							}
						}
					}
				}
				// A path may also stay inside the child when h is there too.
				if child.FaceSet[h] {
					lh := la.byBag[child.ID][h]
					if d := Decode(lf, lh); d < to {
						to = d
					}
					if d := Decode(lh, lf); d < from {
						from = d
					}
				}
				l.To[h] = to
				l.From[h] = from
			}
		}
		labels[f] = l
	}
	la.byBag[b.ID] = labels
	return int64(b.TreeDepth + broadcastWords)
}

func minOverReps(ddg *BagDDG, from, to []int) int64 {
	best := spath.Inf
	for _, i := range from {
		for _, j := range to {
			if d := ddg.Dist[i][j]; d < best {
				best = d
			}
		}
	}
	return best
}
