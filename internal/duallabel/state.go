package duallabel

import "planarflow/internal/bdd"

// State exposes the labeling's internals — the per-bag face→label maps
// and the retained base DDGs, both indexed by bag ID — for the snapshot
// codec. The returned slices are the live state, not copies; callers
// must treat them as read-only (a published labeling is immutable).
func (la *Labeling) State() (byBag []map[int]*Label, ddgs []*BagDDG) {
	return la.byBag, la.ddgs
}

// FromState reassembles a Labeling from codec-decoded parts: the tree it
// decodes over, the per-dart lengths (rederived from the graph, never
// stored), the negative-cycle flag, and the per-bag state in bag-ID
// order. It is the snapshot codec's inverse of State; the result is
// indistinguishable from one produced by Compute.
func FromState(t *bdd.BDD, lengths []int64, negCycle bool, byBag []map[int]*Label, ddgs []*BagDDG) *Labeling {
	return &Labeling{T: t, Lengths: lengths, NegCycle: negCycle, byBag: byBag, ddgs: ddgs}
}
