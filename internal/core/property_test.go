package core

import (
	"testing"
	"testing/quick"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// smallInstance derives a deterministic random planar flow instance from
// quick-check inputs.
func smallInstance(seed int64, kind, size uint8) (*planar.Graph, int, int) {
	rng := planar.NewRand(seed)
	var g *planar.Graph
	switch kind % 3 {
	case 0:
		g = planar.Grid(2+int(size)%3, 2+int(size/3)%4)
	case 1:
		g = planar.StackedTriangulation(5+int(size)%15, rng)
	default:
		g = planar.Cylinder(1+int(size)%3, 3+int(size/4)%4)
	}
	g = planar.WithRandomWeights(g, rng, 1, 12, 1, 9)
	g = planar.WithRandomDirections(g, rng)
	s := rng.IntN(g.N())
	t := (s + 1 + rng.IntN(g.N()-1)) % g.N()
	return g, s, t
}

func TestQuickMaxFlowMatchesDinic(t *testing.T) {
	prop := func(seed int64, kind, size uint8) bool {
		g, s, tt := smallInstance(seed, kind, size)
		res, err := MaxFlow(prep(g), s, tt, Options{LeafLimit: 10}, ledger.New())
		if err != nil {
			return false
		}
		if res.Value != DinicValue(g, s, tt) {
			return false
		}
		return CheckFlow(g, s, tt, res.Flow, res.Value) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxFlowMinCutDuality(t *testing.T) {
	prop := func(seed int64, kind, size uint8) bool {
		g, s, tt := smallInstance(seed, kind, size)
		cut, err := MinSTCut(prep(g), s, tt, Options{LeafLimit: 10}, ledger.New())
		if err != nil {
			return false
		}
		// The cut must upper-bound every feasible flow and be achieved.
		return cut.Value == DinicValue(g, s, tt) && cut.Side[s] && !cut.Side[tt]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCycleCutDuality(t *testing.T) {
	// Fact 3.1 end-to-end: the girth's cycle edges, viewed in the dual,
	// split the faces into exactly two connected sides.
	prop := func(seed int64, size uint8) bool {
		rng := planar.NewRand(seed)
		g := planar.StackedTriangulation(6+int(size)%20, rng)
		g = planar.WithRandomWeights(g, rng, 1, 25, 1, 1)
		res, err := Girth(prep(g), ledger.New())
		if err != nil || res.Weight >= spath.Inf {
			return err == nil
		}
		if CheckCycle(g, res.CycleEdges, res.Weight) != nil {
			return false
		}
		// Removing the cycle's dual edges disconnects G* into exactly two
		// components.
		du := g.Dual()
		onCycle := map[int]bool{}
		for _, e := range res.CycleEdges {
			onCycle[e] = true
		}
		comp := make([]int, du.NumNodes())
		for i := range comp {
			comp[i] = -1
		}
		num := 0
		for f := 0; f < du.NumNodes(); f++ {
			if comp[f] != -1 {
				continue
			}
			stack := []int{f}
			comp[f] = num
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range du.OutDarts(x) {
					if onCycle[planar.EdgeOf(d)] {
						continue
					}
					y := du.Head(d)
					if comp[y] == -1 {
						comp[y] = num
						stack = append(stack, y)
					}
				}
			}
			num++
		}
		return num == 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGlobalCutUpperBoundsEveryBisection(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := planar.NewRand(seed)
		r, c := 2+int(size)%3, 2+int(size/3)%3
		g := planar.BoustrophedonGrid(r, c)
		g = g.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
			old.Weight = 1 + rng.Int64N(15)
			return old
		})
		res, err := GlobalMinCut(prep(g), Options{LeafLimit: 8}, ledger.New())
		if err != nil {
			return false
		}
		// Check against 50 random bisections.
		us := make([]int, g.M())
		vs := make([]int, g.M())
		ws := make([]int64, g.M())
		for e := 0; e < g.M(); e++ {
			ed := g.Edge(e)
			us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
		}
		for i := 0; i < 50; i++ {
			side := make([]bool, g.N())
			any, all := false, true
			for v := range side {
				side[v] = rng.IntN(2) == 0
				if side[v] {
					any = true
				} else {
					all = false
				}
			}
			if !any || all {
				continue
			}
			if spath.CutWeightDirected(us, vs, ws, side) < res.Value {
				return false
			}
		}
		return spath.CutWeightDirected(us, vs, ws, res.Side) == res.Value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHassinFeasibility(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := planar.NewRand(seed)
		g := planar.Grid(2+int(size)%4, 2+int(size/4)%4)
		g = planar.WithRandomWeights(g, rng, 1, 1, 10, 99)
		s, tt := 0, g.N()-1
		res, err := STPlanarMaxFlow(prep(g), s, tt, 0, ledger.New())
		if err != nil {
			return false
		}
		if res.Value != UndirectedDinicValue(g, s, tt) {
			return false
		}
		return CheckUndirectedFlow(g, s, tt, res.Flow, res.Value) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
