package core

import (
	"math/rand"
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func edgeTriples(g *planar.Graph) ([]int, []int, []int64) {
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	return us, vs, ws
}

func TestGirthGrid(t *testing.T) {
	// Unit-weight grid: minimum cycle is a unit square of weight 4.
	g := planar.Grid(4, 5)
	res, err := Girth(g, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 4 {
		t.Fatalf("girth=%d want 4", res.Weight)
	}
	if err := CheckCycle(g, res.CycleEdges, res.Weight); err != nil {
		t.Fatal(err)
	}
}

func TestGirthTree(t *testing.T) {
	g := planar.Grid(1, 6)
	res, err := Girth(g, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight < spath.Inf {
		t.Fatalf("tree girth should be Inf, got %d", res.Weight)
	}
}

func TestGirthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		var g *planar.Graph
		switch trial % 3 {
		case 0:
			g = planar.Grid(2+rng.Intn(4), 2+rng.Intn(5))
		case 1:
			g = planar.StackedTriangulation(8+rng.Intn(25), rng)
		default:
			g = planar.RemoveRandomEdges(planar.StackedTriangulation(20, rng), rng, 10)
		}
		g = planar.WithRandomWeights(g, rng, 1, 30, 1, 1)
		res, err := Girth(g, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		us, vs, ws := edgeTriples(g)
		want := spath.UndirectedGirth(g.N(), us, vs, ws)
		if res.Weight != want {
			t.Fatalf("trial %d: girth=%d want %d", trial, res.Weight, want)
		}
		if want < spath.Inf {
			if err := CheckCycle(g, res.CycleEdges, res.Weight); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestGirthRejectsNonPositiveWeights(t *testing.T) {
	g := planar.Grid(3, 3).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = 0
		return old
	})
	if _, err := Girth(g, ledger.New()); err == nil {
		t.Fatal("expected error for zero weights")
	}
}

func TestGlobalMinCutNotStronglyConnected(t *testing.T) {
	// All grid edges point right/down: no cycles at all, cut value 0.
	g := planar.Grid(3, 3)
	res, err := GlobalMinCut(g, Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("value=%d want 0", res.Value)
	}
	us, vs, ws := edgeTriples(g)
	if w := spath.CutWeightDirected(us, vs, ws, res.Side); w != 0 {
		t.Fatalf("side weight=%d want 0", w)
	}
}

func TestGlobalMinCutMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	done := 0
	for trial := 0; trial < 40 && done < 10; trial++ {
		var g *planar.Graph
		if trial%2 == 0 {
			g = planar.Grid(2+rng.Intn(3), 2+rng.Intn(4))
		} else {
			g = planar.StackedTriangulation(6+rng.Intn(12), rng)
		}
		g = planar.WithRandomWeights(g, rng, 1, 20, 1, 1)
		g = planar.WithRandomDirections(g, rng)
		res, err := GlobalMinCut(g, Options{LeafLimit: 10}, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		us, vs, ws := edgeTriples(g)
		want := spath.DirectedGlobalMinCut(g.N(), us, vs, ws)
		if res.Value != want {
			t.Fatalf("trial %d: value=%d want %d (n=%d m=%d)", trial, res.Value, want, g.N(), g.M())
		}
		if got := spath.CutWeightDirected(us, vs, ws, res.Side); got != res.Value {
			t.Fatalf("trial %d: side weight %d != value %d", trial, got, res.Value)
		}
		if res.Value > 0 {
			done++
		}
	}
	if done < 3 {
		t.Fatalf("too few strongly-connected instances: %d", done)
	}
}

func TestMinSTCutMatchesFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(2+rng.Intn(3), 3+rng.Intn(3))
		g = planar.WithRandomWeights(g, rng, 1, 5, 1, 12)
		g = planar.WithRandomDirections(g, rng)
		s, tt := 0, g.N()-1
		res, err := MinSTCut(g, s, tt, Options{LeafLimit: 10}, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := DinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: cut=%d flow=%d", trial, res.Value, want)
		}
		if !res.Side[s] || res.Side[tt] {
			t.Fatalf("trial %d: bisection does not separate s,t", trial)
		}
		// Cut edges must be exactly the edges leaving the side with total
		// capacity = value.
		var sum int64
		for _, e := range res.CutEdges {
			ed := g.Edge(e)
			if !res.Side[ed.U] || res.Side[ed.V] {
				t.Fatalf("trial %d: edge %d not leaving the side", trial, e)
			}
			sum += ed.Cap
		}
		if sum != res.Value {
			t.Fatalf("trial %d: cut edges sum %d != %d", trial, sum, res.Value)
		}
	}
}

func TestSTPlanarExactMatchesDinic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		g := planar.Grid(2+rng.Intn(4), 2+rng.Intn(5))
		g = planar.WithRandomWeights(g, rng, 1, 1, 1, 40)
		// s, t on the outer face: two corners.
		s, tt := 0, g.N()-1
		res, err := STPlanarMaxFlow(g, s, tt, 0, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := UndirectedDinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: value=%d want %d", trial, res.Value, want)
		}
		if err := CheckUndirectedFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSTPlanarApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(3+rng.Intn(3), 3+rng.Intn(3))
		g = planar.WithRandomWeights(g, rng, 1, 1, 100, 1000)
		s, tt := 0, g.N()-1
		eps := 0.1
		res, err := STPlanarMaxFlow(g, s, tt, eps, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := UndirectedDinicValue(g, s, tt)
		if res.Value > opt {
			t.Fatalf("trial %d: approximate value %d exceeds optimum %d", trial, res.Value, opt)
		}
		if float64(res.Value) < (1-eps)*float64(opt)-float64(g.Faces().NumFaces()) {
			t.Fatalf("trial %d: value %d too far below (1-eps)*%d", trial, res.Value, opt)
		}
		// The assignment must be feasible for the *original* capacities.
		if err := CheckUndirectedFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSTPlanarRequiresCommonFace(t *testing.T) {
	g := planar.Grid(5, 5)
	// Center vertex and a corner share no face.
	if _, err := STPlanarMaxFlow(g, 12, 0, 0, ledger.New()); err == nil {
		t.Fatal("expected error for non-st-planar pair")
	}
}

func TestSTPlanarMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(2+rng.Intn(4), 3+rng.Intn(3))
		g = planar.WithRandomWeights(g, rng, 1, 1, 1, 25)
		s, tt := 0, g.N()-1
		res, err := STPlanarMinCut(g, s, tt, 0, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := UndirectedDinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: cut=%d want %d", trial, res.Value, want)
		}
		if !res.Side[s] || res.Side[tt] {
			t.Fatalf("trial %d: side does not separate", trial)
		}
	}
}
