package core

import (
	"testing"

	"planarflow/internal/artifact"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func edgeTriples(g *planar.Graph) ([]int, []int, []int64) {
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	return us, vs, ws
}

func TestGirthGrid(t *testing.T) {
	// Unit-weight grid: minimum cycle is a unit square of weight 4.
	g := planar.Grid(4, 5)
	res, err := Girth(prep(g), ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 4 {
		t.Fatalf("girth=%d want 4", res.Weight)
	}
	if err := CheckCycle(g, res.CycleEdges, res.Weight); err != nil {
		t.Fatal(err)
	}
}

func TestGirthTree(t *testing.T) {
	g := planar.Grid(1, 6)
	res, err := Girth(prep(g), ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight < spath.Inf {
		t.Fatalf("tree girth should be Inf, got %d", res.Weight)
	}
}

func TestGirthMatchesBruteForce(t *testing.T) {
	rng := planar.NewRand(41)
	for trial := 0; trial < 12; trial++ {
		var g *planar.Graph
		switch trial % 3 {
		case 0:
			g = planar.Grid(2+rng.IntN(4), 2+rng.IntN(5))
		case 1:
			g = planar.StackedTriangulation(8+rng.IntN(25), rng)
		default:
			g = planar.RemoveRandomEdges(planar.StackedTriangulation(20, rng), rng, 10)
		}
		g = planar.WithRandomWeights(g, rng, 1, 30, 1, 1)
		res, err := Girth(prep(g), ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		us, vs, ws := edgeTriples(g)
		want := spath.UndirectedGirth(g.N(), us, vs, ws)
		if res.Weight != want {
			t.Fatalf("trial %d: girth=%d want %d", trial, res.Weight, want)
		}
		if want < spath.Inf {
			if err := CheckCycle(g, res.CycleEdges, res.Weight); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestGirthRejectsNonPositiveWeights(t *testing.T) {
	g := planar.Grid(3, 3).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = 0
		return old
	})
	if _, err := Girth(prep(g), ledger.New()); err == nil {
		t.Fatal("expected error for zero weights")
	}
}

func TestGlobalMinCutNotStronglyConnected(t *testing.T) {
	// All grid edges point right/down: no cycles at all, cut value 0.
	g := planar.Grid(3, 3)
	res, err := GlobalMinCut(prep(g), Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("value=%d want 0", res.Value)
	}
	us, vs, ws := edgeTriples(g)
	if w := spath.CutWeightDirected(us, vs, ws, res.Side); w != 0 {
		t.Fatalf("side weight=%d want 0", w)
	}
}

func TestGlobalMinCutMatchesBaseline(t *testing.T) {
	rng := planar.NewRand(55)
	done := 0
	for trial := 0; trial < 40 && done < 10; trial++ {
		var g *planar.Graph
		if trial%2 == 0 {
			g = planar.Grid(2+rng.IntN(3), 2+rng.IntN(4))
		} else {
			g = planar.StackedTriangulation(6+rng.IntN(12), rng)
		}
		g = planar.WithRandomWeights(g, rng, 1, 20, 1, 1)
		g = planar.WithRandomDirections(g, rng)
		res, err := GlobalMinCut(prep(g), Options{LeafLimit: 10}, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		us, vs, ws := edgeTriples(g)
		want := spath.DirectedGlobalMinCut(g.N(), us, vs, ws)
		if res.Value != want {
			t.Fatalf("trial %d: value=%d want %d (n=%d m=%d)", trial, res.Value, want, g.N(), g.M())
		}
		if got := spath.CutWeightDirected(us, vs, ws, res.Side); got != res.Value {
			t.Fatalf("trial %d: side weight %d != value %d", trial, got, res.Value)
		}
		if res.Value > 0 {
			done++
		}
	}
	if done < 3 {
		t.Fatalf("too few strongly-connected instances: %d", done)
	}
}

func TestMinSTCutMatchesFlow(t *testing.T) {
	rng := planar.NewRand(61)
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(2+rng.IntN(3), 3+rng.IntN(3))
		g = planar.WithRandomWeights(g, rng, 1, 5, 1, 12)
		g = planar.WithRandomDirections(g, rng)
		s, tt := 0, g.N()-1
		res, err := MinSTCut(prep(g), s, tt, Options{LeafLimit: 10}, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := DinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: cut=%d flow=%d", trial, res.Value, want)
		}
		if !res.Side[s] || res.Side[tt] {
			t.Fatalf("trial %d: bisection does not separate s,t", trial)
		}
		// Cut edges must be exactly the edges leaving the side with total
		// capacity = value.
		var sum int64
		for _, e := range res.CutEdges {
			ed := g.Edge(e)
			if !res.Side[ed.U] || res.Side[ed.V] {
				t.Fatalf("trial %d: edge %d not leaving the side", trial, e)
			}
			sum += ed.Cap
		}
		if sum != res.Value {
			t.Fatalf("trial %d: cut edges sum %d != %d", trial, sum, res.Value)
		}
	}
}

func TestSTPlanarExactMatchesDinic(t *testing.T) {
	rng := planar.NewRand(71)
	for trial := 0; trial < 8; trial++ {
		g := planar.Grid(2+rng.IntN(4), 2+rng.IntN(5))
		g = planar.WithRandomWeights(g, rng, 1, 1, 1, 40)
		// s, t on the outer face: two corners.
		s, tt := 0, g.N()-1
		res, err := STPlanarMaxFlow(prep(g), s, tt, 0, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := UndirectedDinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: value=%d want %d", trial, res.Value, want)
		}
		if err := CheckUndirectedFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSTPlanarApproximate(t *testing.T) {
	rng := planar.NewRand(73)
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(3+rng.IntN(3), 3+rng.IntN(3))
		g = planar.WithRandomWeights(g, rng, 1, 1, 100, 1000)
		s, tt := 0, g.N()-1
		eps := 0.1
		res, err := STPlanarMaxFlow(prep(g), s, tt, eps, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := UndirectedDinicValue(g, s, tt)
		if res.Value > opt {
			t.Fatalf("trial %d: approximate value %d exceeds optimum %d", trial, res.Value, opt)
		}
		if float64(res.Value) < (1-eps)*float64(opt)-float64(g.Faces().NumFaces()) {
			t.Fatalf("trial %d: value %d too far below (1-eps)*%d", trial, res.Value, opt)
		}
		// The assignment must be feasible for the *original* capacities.
		if err := CheckUndirectedFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSTPlanarRequiresCommonFace(t *testing.T) {
	g := planar.Grid(5, 5)
	// Center vertex and a corner share no face.
	if _, err := STPlanarMaxFlow(prep(g), 12, 0, 0, ledger.New()); err == nil {
		t.Fatal("expected error for non-st-planar pair")
	}
}

func TestSTPlanarMinCut(t *testing.T) {
	rng := planar.NewRand(79)
	for trial := 0; trial < 6; trial++ {
		g := planar.Grid(2+rng.IntN(4), 3+rng.IntN(3))
		g = planar.WithRandomWeights(g, rng, 1, 1, 1, 25)
		s, tt := 0, g.N()-1
		res, err := STPlanarMinCut(prep(g), s, tt, 0, ledger.New())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := UndirectedDinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: cut=%d want %d", trial, res.Value, want)
		}
		if !res.Side[s] || res.Side[tt] {
			t.Fatalf("trial %d: side does not separate", trial)
		}
	}
}

// prep wraps a graph in a fresh one-query artifact; tests exercising the
// cache share a Prepared explicitly instead.
func prep(g *planar.Graph) *artifact.Prepared { return artifact.New(g) }

// TestArtifactAmortizesAcrossQueries pins the serving contract: the first
// query on a Prepared pays the BDD/labeling build, later queries on the same
// Prepared report zero build rounds, and results are identical to one-shot.
func TestArtifactAmortizesAcrossQueries(t *testing.T) {
	g := planar.WithRandomWeights(planar.Grid(6, 6), planar.NewRand(5), 1, 9, 1, 9)
	p := artifact.New(g)

	led1 := ledger.New()
	r1, err := MaxFlow(p, 0, g.N()-1, Options{}, led1)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := led1.BuildSplit()
	if b1 <= 0 {
		t.Fatalf("first query build rounds = %d, want > 0", b1)
	}

	led2 := ledger.New()
	r2, err := MaxFlow(p, 0, g.N()-1, Options{}, led2)
	if err != nil {
		t.Fatal(err)
	}
	b2, q2 := led2.BuildSplit()
	if b2 != 0 {
		t.Fatalf("second query build rounds = %d, want 0", b2)
	}
	if q2 <= 0 {
		t.Fatal("second query charged no query rounds")
	}
	if r1.Value != r2.Value {
		t.Fatalf("values diverge: %d vs %d", r1.Value, r2.Value)
	}

	// A different entry point sharing the same tree pays only its own
	// labeling, never a second BDD construction.
	led3 := ledger.New()
	if _, err := DirectedGirth(p, Options{}, led3); err != nil {
		t.Fatal(err)
	}
	for _, e := range led3.Entries() {
		if e.Phase == "bdd/construct-level" {
			t.Fatal("DirectedGirth rebuilt the BDD despite the shared artifact")
		}
	}

	// One-shot (fresh artifact) equals the prepared result bit for bit.
	ledCold := ledger.New()
	cold, err := MaxFlow(artifact.New(g), 0, g.N()-1, Options{}, ledCold)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Value != r1.Value || len(cold.Flow) != len(r1.Flow) {
		t.Fatal("one-shot and prepared results diverge")
	}
	for e := range cold.Flow {
		if cold.Flow[e] != r1.Flow[e] {
			t.Fatalf("flow[%d] diverges: %d vs %d", e, cold.Flow[e], r1.Flow[e])
		}
	}
	if ledCold.Total() != led1.Total() {
		t.Fatalf("cold total %d != first-prepared total %d", ledCold.Total(), led1.Total())
	}
}
