package core

import (
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
)

func TestMaxFlowTinyGrid(t *testing.T) {
	g := planar.Grid(2, 2) // 4 vertices, 4 edges, unit caps
	led := ledger.New()
	res, err := MaxFlow(prep(g), 0, 3, Options{LeafLimit: 4}, led)
	if err != nil {
		t.Fatal(err)
	}
	want := DinicValue(g, 0, 3)
	if res.Value != want {
		t.Fatalf("value=%d want %d", res.Value, want)
	}
	if err := CheckFlow(g, 0, 3, res.Flow, res.Value); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowRandomGrids(t *testing.T) {
	rng := planar.NewRand(21)
	for trial := 0; trial < 8; trial++ {
		rows, cols := 2+rng.IntN(4), 2+rng.IntN(5)
		g0 := planar.Grid(rows, cols)
		g := planar.WithRandomWeights(g0, rng, 1, 10, 1, 20)
		g = planar.WithRandomDirections(g, rng)
		s := rng.IntN(g.N())
		tt := rng.IntN(g.N())
		if s == tt {
			continue
		}
		led := ledger.New()
		res, err := MaxFlow(prep(g), s, tt, Options{LeafLimit: 12}, led)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := DinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d (%dx%d s=%d t=%d): value=%d want %d",
				trial, rows, cols, s, tt, res.Value, want)
		}
		if err := CheckFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if led.Total() == 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestMaxFlowTriangulations(t *testing.T) {
	rng := planar.NewRand(33)
	for trial := 0; trial < 5; trial++ {
		g0 := planar.StackedTriangulation(12+rng.IntN(20), rng)
		g := planar.WithRandomWeights(g0, rng, 1, 5, 1, 15)
		g = planar.WithRandomDirections(g, rng)
		s, tt := 0, g.N()-1
		res, err := MaxFlow(prep(g), s, tt, Options{LeafLimit: 16}, led())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := DinicValue(g, s, tt)
		if res.Value != want {
			t.Fatalf("trial %d: value=%d want %d", trial, res.Value, want)
		}
		if err := CheckFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func led() *ledger.Ledger { return ledger.New() }
