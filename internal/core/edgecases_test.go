package core

import (
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func TestMaxFlowNestedTriangles(t *testing.T) {
	// Worst-case-diameter family: D = Θ(n).
	rng := planar.NewRand(101)
	g := planar.NestedTriangles(6)
	g = planar.WithRandomWeights(g, rng, 1, 5, 1, 10)
	g = planar.WithRandomDirections(g, rng)
	s, tt := 0, g.N()-1
	res, err := MaxFlow(prep(g), s, tt, Options{}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != DinicValue(g, s, tt) {
		t.Fatalf("value=%d want %d", res.Value, DinicValue(g, s, tt))
	}
	if err := CheckFlow(g, s, tt, res.Flow, res.Value); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowAdjacentPair(t *testing.T) {
	g := planar.Grid(3, 3)
	res, err := MaxFlow(prep(g), 0, 1, Options{LeafLimit: 6}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != DinicValue(g, 0, 1) {
		t.Fatalf("value=%d want %d", res.Value, DinicValue(g, 0, 1))
	}
}

func TestMaxFlowZeroCapacityEdges(t *testing.T) {
	rng := planar.NewRand(103)
	g := planar.Grid(3, 4).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Cap = rng.Int64N(4) // zeros included
		return old
	})
	s, tt := 0, g.N()-1
	res, err := MaxFlow(prep(g), s, tt, Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != DinicValue(g, s, tt) {
		t.Fatalf("value=%d want %d", res.Value, DinicValue(g, s, tt))
	}
	if err := CheckFlow(g, s, tt, res.Flow, res.Value); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowSaturatedSource(t *testing.T) {
	// All capacity concentrated on one source edge: value capped by it.
	g := planar.Grid(2, 3).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Cap = 100
		return old
	})
	// Vertex 0's two incident edges get capacity 1 and 2.
	first := true
	g = g.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		if old.U == 0 || old.V == 0 {
			if first {
				old.Cap = 1
				first = false
			} else {
				old.Cap = 2
			}
		}
		return old
	})
	res, err := MaxFlow(prep(g), 0, 5, Options{LeafLimit: 6}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != DinicValue(g, 0, 5) {
		t.Fatalf("value=%d want %d", res.Value, DinicValue(g, 0, 5))
	}
	if res.Value > 3 {
		t.Fatalf("value=%d exceeds source capacity 3", res.Value)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := planar.Grid(2, 2)
	if _, err := MaxFlow(prep(g), 1, 1, Options{}, ledger.New()); err == nil {
		t.Fatal("s==t must error")
	}
	if _, err := MaxFlow(prep(g), -1, 2, Options{}, ledger.New()); err == nil {
		t.Fatal("out-of-range s must error")
	}
	if _, err := MaxFlow(prep(g), 0, 99, Options{}, ledger.New()); err == nil {
		t.Fatal("out-of-range t must error")
	}
}

func TestGirthNestedTriangles(t *testing.T) {
	rng := planar.NewRand(107)
	g := planar.NestedTriangles(8)
	g = planar.WithRandomWeights(g, rng, 1, 50, 1, 1)
	res, err := Girth(prep(g), ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	want := spath.UndirectedGirth(g.N(), us, vs, ws)
	if res.Weight != want {
		t.Fatalf("girth=%d want %d", res.Weight, want)
	}
}

func TestGirthCylinder(t *testing.T) {
	// Cylinders have many parallel dual edges (ring faces share several
	// edges with the disk faces): stresses deactivation.
	rng := planar.NewRand(109)
	g := planar.Cylinder(3, 5)
	g = planar.WithRandomWeights(g, rng, 1, 20, 1, 1)
	res, err := Girth(prep(g), ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	want := spath.UndirectedGirth(g.N(), us, vs, ws)
	if res.Weight != want {
		t.Fatalf("girth=%d want %d", res.Weight, want)
	}
	if err := CheckCycle(g, res.CycleEdges, res.Weight); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalMinCutNestedTriangles(t *testing.T) {
	// Nested triangles admit a natural strongly connected orientation:
	// rings oriented around, spokes alternating in/out.
	g0 := planar.NestedTriangles(4)
	g := g0.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = int64(1 + e%7)
		return old
	})
	res, err := GlobalMinCut(prep(g), Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	us := make([]int, g.M())
	vs := make([]int, g.M())
	ws := make([]int64, g.M())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		us[e], vs[e], ws[e] = ed.U, ed.V, ed.Weight
	}
	want := spath.DirectedGlobalMinCut(g.N(), us, vs, ws)
	if res.Value != want {
		t.Fatalf("cut=%d want %d", res.Value, want)
	}
}

func TestSTPlanarEpsilonSweep(t *testing.T) {
	rng := planar.NewRand(113)
	g := planar.Grid(4, 5)
	g = planar.WithRandomWeights(g, rng, 1, 1, 200, 900)
	s, tt := 0, g.N()-1
	opt := UndirectedDinicValue(g, s, tt)
	prev := int64(-1)
	for _, eps := range []float64{0.5, 0.2, 0.1, 0.05, 0} {
		res, err := STPlanarMaxFlow(prep(g), s, tt, eps, ledger.New())
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if res.Value > opt {
			t.Fatalf("eps=%v: value %d exceeds optimum %d", eps, res.Value, opt)
		}
		if res.Value < prev {
			t.Fatalf("eps=%v: value %d decreased from %d at larger eps", eps, res.Value, prev)
		}
		prev = res.Value
		if err := CheckUndirectedFlow(g, s, tt, res.Flow, res.Value); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
	}
	if prev != opt {
		t.Fatalf("eps=0 value %d != optimum %d", prev, opt)
	}
}

func TestSTPlanarInvalidEps(t *testing.T) {
	g := planar.Grid(3, 3)
	for _, eps := range []float64{-0.1, 1.0, 2.5} {
		if _, err := STPlanarMaxFlow(prep(g), 0, 8, eps, ledger.New()); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
}

func TestDirectedGirthNestedRings(t *testing.T) {
	// All ring edges oriented the same way: shortest cycle is the cheapest
	// ring (spokes form no directed cycles without return edges).
	g := planar.NestedTriangles(5).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = int64(1 + e)
		return old
	})
	c, err := DirectedGirth(prep(g), Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	want := spath.DirectedMinCycle(primalDigraph(g))
	if c != want {
		t.Fatalf("girth=%d want %d", c, want)
	}
}
