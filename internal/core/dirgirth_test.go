package core

import (
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

func primalDigraph(g *planar.Graph) *spath.Digraph {
	dg := spath.NewDigraph(g.N())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		dg.AddArc(ed.U, ed.V, ed.Weight, e)
	}
	return dg
}

func TestDirectedGirthAcyclic(t *testing.T) {
	// Default grids point right/down: no directed cycles.
	g := planar.Grid(4, 4)
	c, err := DirectedGirth(prep(g), Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	if c < spath.Inf {
		t.Fatalf("acyclic orientation has cycle of weight %d", c)
	}
}

func TestDirectedGirthBoustrophedon(t *testing.T) {
	g := planar.BoustrophedonGrid(4, 4)
	c, err := DirectedGirth(prep(g), Options{LeafLimit: 8}, ledger.New())
	if err != nil {
		t.Fatal(err)
	}
	want := spath.DirectedMinCycle(primalDigraph(g))
	if c != want {
		t.Fatalf("girth=%d want %d", c, want)
	}
}

func TestDirectedGirthMatchesBaseline(t *testing.T) {
	rng := planar.NewRand(91)
	for trial := 0; trial < 12; trial++ {
		var g *planar.Graph
		switch trial % 3 {
		case 0:
			g = planar.BoustrophedonGrid(2+rng.IntN(5), 2+rng.IntN(5))
		case 1:
			g = planar.WithRandomDirections(planar.Grid(3+rng.IntN(3), 3+rng.IntN(4)), rng)
		default:
			g = planar.WithRandomDirections(planar.StackedTriangulation(8+rng.IntN(25), rng), rng)
		}
		g = g.WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
			old.Weight = rng.Int64N(40)
			return old
		})
		led := ledger.New()
		c, err := DirectedGirth(prep(g), Options{LeafLimit: 10}, led)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := spath.DirectedMinCycle(primalDigraph(g))
		if c != want {
			t.Fatalf("trial %d: girth=%d want %d (n=%d)", trial, c, want, g.N())
		}
		if led.Total() == 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestDirectedGirthRejectsNegative(t *testing.T) {
	g := planar.Grid(3, 3).WithEdgeAttrs(func(e int, old planar.Edge) planar.Edge {
		old.Weight = -1
		return old
	})
	if _, err := DirectedGirth(prep(g), Options{}, ledger.New()); err == nil {
		t.Fatal("expected negative-weight rejection")
	}
}

func TestGirthVsSSSPRouteRounds(t *testing.T) {
	// The paper's Question 1.6 contrast: the dual-cut girth (Thm 1.7) must
	// be asymptotically cheaper than the SSSP route [36] as D grows. Check
	// the ratio grows with D on squares.
	ratio := func(k int) float64 {
		g := planar.Grid(k, k)
		ledA := ledger.New()
		if _, err := Girth(prep(planar.WithRandomWeights(g, planar.NewRand(1), 1, 100, 1, 1)), ledA); err != nil {
			t.Fatal(err)
		}
		ledB := ledger.New()
		gb := planar.BoustrophedonGrid(k, k)
		if _, err := DirectedGirth(prep(gb), Options{}, ledB); err != nil {
			t.Fatal(err)
		}
		return float64(ledB.Total()) / float64(ledA.Total())
	}
	small, large := ratio(6), ratio(14)
	if large <= small*0.5 {
		t.Fatalf("SSSP-route/dual-cut round ratio should not shrink with D: %f -> %f", small, large)
	}
}
