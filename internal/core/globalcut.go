package core

import (
	"errors"
	"fmt"
	"math/bits"

	"planarflow/internal/artifact"
	"planarflow/internal/bdd"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// GlobalCutResult is a directed global minimum cut: a bisection (Side,
// complement) minimizing the total weight of edges leaving Side.
type GlobalCutResult struct {
	Value    int64
	Side     []bool
	CutEdges []int // edges leaving Side
}

// GlobalMinCut computes the directed global minimum cut of a weighted planar
// digraph (Thm 1.5): by cycle-cut duality the answer is the minimum-weight
// directed cycle of the dual where crossing an edge against its direction is
// free (reversal darts of weight 0, §7). The cycle is found over the BDD:
// cycles inside a bag's child are found recursively; cycles crossing the
// dual separator F_X are enumerated per separator arc a as w(a) +
// dist(head(a), tail(a)) in the bag's DDG with rev(a) removed, plus
// zero-transition cycles through faces split between the children — the
// "two options related to the dual separator" that keep all candidate
// cycles simple in darts.
func GlobalMinCut(p *artifact.Prepared, opt Options, led *ledger.Ledger) (*GlobalCutResult, error) {
	g := p.Graph()
	for e := 0; e < g.M(); e++ {
		if g.Edge(e).Weight < 0 {
			return nil, fmt.Errorf("core: global min cut: edge %d has weight %d: %w", e, g.Edge(e).Weight, ErrNegativeWeight)
		}
	}
	// Zero cuts = not strongly connected (Õ(D) rounds of directed BFS both
	// ways, charged below).
	if res := zeroCut(g, led); res != nil {
		return res, nil
	}

	// Dual lengths: crossing e forward costs w(e); crossing against it is
	// free (reversal dart). The labeling under these lengths is a shared
	// artifact — the query's own work is the per-bag cycle enumeration.
	lengths := artifact.Lengths(g, artifact.FreeReversal)
	tree, err := p.Tree(opt.LeafLimit, led)
	if err != nil {
		return nil, err
	}
	la, err := p.DualLabels(artifact.FreeReversal, opt.LeafLimit, led)
	if err != nil {
		return nil, err
	}
	if la.NegCycle {
		return nil, errors.New("core: internal: negative cycle with non-negative lengths")
	}

	best := spath.Inf
	for _, b := range tree.Bags {
		var cand int64
		if b.IsLeaf() {
			cand = leafMinCycle(g, b, lengths)
		} else {
			cand = ddgMinCycle(la.DDG(b))
		}
		if cand < best {
			best = cand
		}
	}
	logn := int64(bits.Len(uint(g.N())))
	d := int64(tree.Root.TreeDepth + 2)
	led.Charge("globalcut/assemble", d*logn)
	if best >= spath.Inf {
		return nil, errors.New("core: no dual cycle found in a strongly connected graph")
	}

	// Reconstruct the bisection from the value on the explicit dual (one
	// more Õ(D²)-style phase, §7's component detection).
	side, cut, err := reconstructCut(g, lengths, best)
	if err != nil {
		return nil, err
	}
	led.Charge("globalcut/reconstruct", d*d*logn)
	return &GlobalCutResult{Value: best, Side: side, CutEdges: cut}, nil
}

// zeroCut returns a weight-0 cut when g is not strongly connected, else nil.
func zeroCut(g *planar.Graph, led *ledger.Ledger) *GlobalCutResult {
	reach := func(backward bool) []bool {
		seen := make([]bool, g.N())
		seen[0] = true
		stack := []int{0}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, d := range g.Rotation(v) {
				// Forward reachability follows edge direction: usable darts
				// are forward darts; backward reachability uses reversals.
				if planar.IsForward(d) == backward {
					continue
				}
				u := g.Head(d)
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		return seen
	}
	led.Charge("globalcut/strong-connectivity", int64(4*(g.DiameterLowerBound()+1)))
	fwd := reach(false)
	all := true
	for _, ok := range fwd {
		all = all && ok
	}
	if !all {
		return &GlobalCutResult{Value: 0, Side: fwd}
	}
	bwd := reach(true)
	all = true
	for _, ok := range bwd {
		all = all && ok
	}
	if !all {
		side := make([]bool, g.N())
		for v, ok := range bwd {
			side[v] = !ok
		}
		return &GlobalCutResult{Value: 0, Side: side}
	}
	return nil
}

// leafMinCycle finds the minimum dart-simple dual cycle inside a leaf bag:
// for every dual arc a, w(a) + dist(head(a) -> tail(a)) avoiding rev(a).
func leafMinCycle(g *planar.Graph, b *bdd.Bag, lengths []int64) int64 {
	idx := make(map[int]int, len(b.Faces))
	for i, f := range b.Faces {
		idx[f] = i
	}
	type arc struct {
		d        planar.Dart
		from, to int
	}
	var arcs []arc
	b.DualArcs(g, func(d planar.Dart, from, to int) {
		if lengths[d] < spath.Inf {
			arcs = append(arcs, arc{d: d, from: idx[from], to: idx[to]})
		}
	})
	best := spath.Inf
	for _, a := range arcs {
		if lengths[a.d] >= best {
			continue
		}
		if a.from == a.to {
			// Dual self-loop: valid cycle by itself.
			if lengths[a.d] < best {
				best = lengths[a.d]
			}
			continue
		}
		dg := spath.NewDigraph(len(b.Faces))
		for _, o := range arcs {
			if o.d == planar.Rev(a.d) {
				continue
			}
			dg.AddArc(o.from, o.to, lengths[o.d], int(o.d))
		}
		if back := spath.Dijkstra(dg, a.to).Dist[a.from]; back < spath.Inf {
			if c := lengths[a.d] + back; c < best {
				best = c
			}
		}
	}
	return best
}

// ddgMinCycle enumerates cycles crossing a bag's dual separator: per
// separator arc, and per split face via its zero transitions.
func ddgMinCycle(ddg *duallabel.BagDDG) int64 {
	best := spath.Inf
	build := func(skip func(a duallabel.DDGArc) bool) *spath.Digraph {
		dg := spath.NewDigraph(len(ddg.Nodes))
		for _, a := range ddg.Arcs {
			if skip(a) {
				continue
			}
			dg.AddArc(a.From, a.To, a.Len, -1)
		}
		return dg
	}
	// (1) Cycles using a dual separator arc a (and hence not rev(a)).
	for _, a := range ddg.Arcs {
		if a.Dart == planar.NoDart || a.Len >= best {
			continue
		}
		rev := planar.Rev(a.Dart)
		dg := build(func(o duallabel.DDGArc) bool { return o.Dart == rev })
		if back := spath.Dijkstra(dg, a.To).Dist[a.From]; back < spath.Inf {
			if c := a.Len + back; c < best {
				best = c
			}
		}
	}
	// (2) Cycles through a split face f without separator arcs at f: they
	// enter one representative and leave the other; forbid f's internal
	// zero arcs so the path is forced around.
	for f, reps := range ddg.RepsOf {
		if len(reps) < 2 {
			continue
		}
		inReps := map[int]bool{}
		for _, r := range reps {
			inReps[r] = true
		}
		dg := build(func(o duallabel.DDGArc) bool {
			return o.Dart == planar.NoDart && o.Len == 0 && inReps[o.From] && inReps[o.To]
		})
		for _, r1 := range reps {
			dist := spath.Dijkstra(dg, r1).Dist
			for _, r2 := range reps {
				if r1 != r2 && dist[r2] < best {
					best = dist[r2]
				}
			}
		}
		_ = f
	}
	return best
}

// reconstructCut locates a dual cycle of exactly the given weight on the
// explicit dual, removes its crossed edges and reads off the bisection.
func reconstructCut(g *planar.Graph, lengths []int64, value int64) ([]bool, []int, error) {
	du := g.Dual()
	nf := du.NumNodes()
	for d0 := planar.Dart(0); int(d0) < g.NumDarts(); d0++ {
		if lengths[d0] > value {
			continue
		}
		from, to := du.Tail(d0), du.Head(d0)
		var cycleDarts []planar.Dart
		if from == to {
			if lengths[d0] != value {
				continue
			}
			cycleDarts = []planar.Dart{d0}
		} else {
			dg := spath.NewDigraph(nf)
			for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
				if d != planar.Rev(d0) && lengths[d] < spath.Inf {
					dg.AddArc(du.Tail(d), du.Head(d), lengths[d], int(d))
				}
			}
			res := spath.Dijkstra(dg, to)
			if res.Dist[from] >= spath.Inf || lengths[d0]+res.Dist[from] != value {
				continue
			}
			cycleDarts = append(cycleDarts, d0)
			for v := from; v != to; {
				a := res.ParentArcID[v]
				cycleDarts = append(cycleDarts, planar.Dart(a))
				v = du.Tail(planar.Dart(a))
			}
		}
		side, cut, err := cutFromCycle(g, cycleDarts, value)
		if err == nil {
			return side, cut, nil
		}
	}
	return nil, nil, fmt.Errorf("core: could not reconstruct a cut of weight %d", value)
}

// cutFromCycle removes the edges crossed by the dual cycle and identifies
// the side whose leaving-edge weight equals value.
func cutFromCycle(g *planar.Graph, cycleDarts []planar.Dart, value int64) ([]bool, []int, error) {
	crossed := make(map[int]bool, len(cycleDarts))
	for _, d := range cycleDarts {
		crossed[planar.EdgeOf(d)] = true
	}
	comp := make([]int, g.N())
	for v := range comp {
		comp[v] = -1
	}
	numComp := 0
	for v := 0; v < g.N(); v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = numComp
		stack := []int{v}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, d := range g.Rotation(x) {
				if crossed[planar.EdgeOf(d)] {
					continue
				}
				u := g.Head(d)
				if comp[u] == -1 {
					comp[u] = numComp
					stack = append(stack, u)
				}
			}
		}
		numComp++
	}
	if numComp < 2 {
		return nil, nil, errors.New("cycle does not disconnect")
	}
	// Try each component (and its complement) as the S side.
	for c := 0; c < numComp; c++ {
		for _, invert := range []bool{false, true} {
			side := make([]bool, g.N())
			for v := range side {
				side[v] = (comp[v] == c) != invert
			}
			var w int64
			var cut []int
			for e := 0; e < g.M(); e++ {
				ed := g.Edge(e)
				if side[ed.U] && !side[ed.V] {
					w += ed.Weight
					cut = append(cut, e)
				}
			}
			if w == value && anyTrue(side) && !allTrue(side) {
				return side, cut, nil
			}
		}
	}
	return nil, nil, errors.New("no orientation matches the cut value")
}

func anyTrue(b []bool) bool {
	for _, x := range b {
		if x {
			return true
		}
	}
	return false
}

func allTrue(b []bool) bool {
	for _, x := range b {
		if !x {
			return false
		}
	}
	return true
}
