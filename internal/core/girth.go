package core

import (
	"errors"
	"fmt"
	"math/bits"

	"planarflow/internal/artifact"
	"planarflow/internal/ledger"
	"planarflow/internal/minoragg"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// GirthResult is a minimum-weight cycle of an undirected weighted planar
// graph.
type GirthResult struct {
	Weight     int64 // spath.Inf when the graph is acyclic
	CycleEdges []int // edges of one minimum-weight cycle
}

// Girth computes the weighted girth of an undirected planar graph with
// positive integer weights (Thm 1.7): simulate a minor-aggregation exact
// minimum-cut computation on the dual G* (parallel edges deactivated with
// summed weights per Lemma 4.15), then mark the cut edges (Lemma 4.17); by
// cycle-cut duality (Fact 3.1) they form a minimum-weight primal cycle.
// Total model cost is Õ(1) minor-aggregation rounds = Õ(D) CONGEST rounds,
// all priced through the measured PA unit of the instance.
//
// Girth takes the prepared artifact for API uniformity with the other entry
// points; its minor-aggregation route needs no BDD or labeling, so it has no
// build-phase cost to amortize.
func Girth(p *artifact.Prepared, led *ledger.Ledger) (*GirthResult, error) {
	g := p.Graph()
	for e := 0; e < g.M(); e++ {
		if g.Edge(e).Weight <= 0 {
			return nil, fmt.Errorf("core: girth: edge %d has weight %d: %w", e, g.Edge(e).Weight, ErrNonPositiveWeight)
		}
	}
	sim := minoragg.NewSimulator(g, led)
	weights := make([]int64, g.M())
	for e := range weights {
		weights[e] = g.Edge(e).Weight
	}
	sd := sim.Deactivate(weights, pa.Sum)
	if len(sd.Us) == 0 {
		// Dual has no non-loop edges: G is a tree (all bridges), acyclic.
		return &GirthResult{Weight: spath.Inf}, nil
	}

	// Substituted black box: the minor-aggregate exact min-cut of
	// Ghaffari–Zuzic [18] (Õ(1) model rounds, here priced as ceil(log n)
	// contracting model rounds) executed as Stoer–Wagner on the simple dual.
	logn := int64(bits.Len(uint(g.N())))
	sim.ChargeRounds("girth/minor-agg-mincut", logn)
	w, side := spath.GlobalMinCut(sd.NumNodes, sd.Us, sd.Vs, sd.Ws)
	if w >= spath.Inf {
		return &GirthResult{Weight: spath.Inf}, nil
	}

	res := &GirthResult{
		Weight:     w,
		CycleEdges: sim.MarkDualCutEdges(side),
	}
	return res, nil
}

// CheckCycle verifies that edges form a closed (not necessarily simple in
// vertices, but even-degree and connected) cycle of the claimed total
// weight. A minimum-weight cut of the dual always yields a simple primal
// cycle; the even-degree check is the structural part tests rely on.
func CheckCycle(g *planar.Graph, edges []int, weight int64) error {
	if len(edges) == 0 {
		return errors.New("empty cycle")
	}
	deg := map[int]int{}
	var total int64
	for _, e := range edges {
		ed := g.Edge(e)
		deg[ed.U]++
		deg[ed.V]++
		total += ed.Weight
	}
	if total != weight {
		return errors.New("cycle weight mismatch")
	}
	for v, d := range deg {
		if d%2 != 0 {
			return fmt.Errorf("vertex %d has odd cycle degree", v)
		}
	}
	return nil
}
