package core

import (
	"fmt"

	"planarflow/internal/artifact"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
	"planarflow/internal/spath"
)

// CutResult is a minimum st-cut: its value, one side of the bisection, and
// the crossing edges.
type CutResult struct {
	Value    int64
	Side     []bool // true = s-side
	CutEdges []int  // edges leaving the s-side
}

// MinSTCut computes the exact directed minimum st-cut (Thm 6.1): run the
// exact max-flow algorithm, then determine the s-side as the vertices
// reachable in the residual graph. The reachability is the paper's primal
// SSSP instance — residual darts get length 0, saturated darts are removed —
// solved by the Li–Parter primal distance labeling in Õ(D²) rounds.
func MinSTCut(p *artifact.Prepared, s, t int, opt Options, led *ledger.Ledger) (*CutResult, error) {
	g := p.Graph()
	flow, err := MaxFlow(p, s, t, opt, led)
	if err != nil {
		return nil, err
	}
	// Residual lengths per dart: usable darts cost 0, saturated darts are
	// deactivated; then v is reachable iff dist(s, v) == 0.
	lengths := make([]int64, g.NumDarts())
	for e := 0; e < g.M(); e++ {
		fw, bw := planar.ForwardDart(e), planar.BackwardDart(e)
		lengths[fw], lengths[bw] = spath.Inf, spath.Inf
		if g.Edge(e).Cap-flow.Flow[e] > 0 {
			lengths[fw] = 0
		}
		if flow.Flow[e] > 0 {
			lengths[bw] = 0
		}
	}
	// The tree is shared with MaxFlow's query above (cache hit); only the
	// residual labeling, which depends on the computed flow, is per-query.
	tree, err := p.Tree(opt.LeafLimit, led)
	if err != nil {
		return nil, err
	}
	la := primallabel.Compute(tree, lengths, led)
	if la.NegCycle {
		return nil, fmt.Errorf("core: internal: negative cycle in a 0/Inf residual graph")
	}
	dist := la.SSSP(s, led)

	side := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		side[v] = dist[v] == 0
	}
	if side[t] {
		return nil, fmt.Errorf("core: t reachable in residual graph (flow not maximum?)")
	}
	res := &CutResult{Side: side}
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		if side[ed.U] && !side[ed.V] {
			res.CutEdges = append(res.CutEdges, e)
			res.Value += ed.Cap
		}
	}
	if res.Value != flow.Value {
		return nil, fmt.Errorf("core: cut %d != flow %d (max-flow min-cut violated)", res.Value, flow.Value)
	}
	return res, nil
}
