// Package core implements the paper's headline algorithms on top of the
// substrates: exact maximum st-flow in directed planar graphs via dual SSSP
// (Thm 1.2), minimum st-cut (Thm 6.1), approximate st-planar flow and cut
// (Thm 1.3 / 6.2), weighted girth via dual minimum cut (Thm 1.7), and
// directed global minimum cut via dual minimum cycles (Thm 1.5).
package core

import (
	"errors"
	"fmt"

	"planarflow/internal/artifact"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// Options tunes the algorithms; the zero value picks paper-faithful
// defaults.
type Options struct {
	// LeafLimit bounds the BDD leaf bag size in edges; 0 means the paper's
	// Θ(D log n) with D estimated by a double BFS sweep.
	LeafLimit int
}

// FlowResult is a maximum st-flow with its assignment.
type FlowResult struct {
	Value int64
	// Flow[e] is the flow pushed along edge e in its U->V direction
	// (in [0, Cap(e)] for the exact directed algorithm).
	Flow []int64
	// Iterations of the binary search on the flow value (Miller–Naor).
	Iterations int
}

// MaxFlow computes the exact maximum st-flow of a directed planar graph with
// non-negative integer capacities, following Miller–Naor: binary search on
// the value λ; for each λ, push λ along a fixed s-to-t path of darts and
// test feasibility by a negative-cycle query on the dual with residual
// lengths — a dual SSSP with positive and negative lengths computed through
// the distance labeling of §5 (Thm 1.2, Õ(D²) rounds).
//
// The BDD comes from the shared prepared artifact: the first query on p pays
// its construction (Build-scoped in led), later queries reuse it. The per-λ
// residual labelings depend on (s, t, λ) and stay per-query cost.
func MaxFlow(p *artifact.Prepared, s, t int, opt Options, led *ledger.Ledger) (*FlowResult, error) {
	g := p.Graph()
	if s == t {
		return nil, errors.New("core: s and t must differ")
	}
	if s < 0 || t < 0 || s >= g.N() || t >= g.N() {
		return nil, fmt.Errorf("core: s=%d t=%d out of range", s, t)
	}

	tree, err := p.Tree(opt.LeafLimit, led)
	if err != nil {
		return nil, err
	}

	// Fixed s-to-t dart path (undirected BFS; Õ(D) rounds).
	path, err := dartPath(g, s, t)
	if err != nil {
		return nil, err
	}
	led.Charge("maxflow/find-path", int64(2*(tree.Root.TreeDepth+1)))
	onPath := make([]bool, g.NumDarts())
	for _, d := range path {
		onPath[d] = true
	}

	// Dart capacities: cap(forward) = Cap(e), cap(backward) = 0.
	capOf := func(d planar.Dart) int64 {
		if planar.IsForward(d) {
			return g.Edge(planar.EdgeOf(d)).Cap
		}
		return 0
	}
	residual := func(d planar.Dart, lambda int64) int64 {
		r := capOf(d)
		if onPath[d] {
			r -= lambda
		}
		if onPath[planar.Rev(d)] {
			r += lambda
		}
		return r
	}
	lengthsFor := func(lambda int64) []int64 {
		lens := make([]int64, g.NumDarts())
		for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
			lens[d] = residual(d, lambda)
		}
		return lens
	}
	feasible := func(lambda int64) (*duallabel.Labeling, bool) {
		la := duallabel.Compute(tree, lengthsFor(lambda), led)
		return la, !la.NegCycle
	}

	// Binary search λ* = max feasible λ.
	var lo int64 // λ=0 is always feasible (zero flow)
	hi := g.TotalCap() + 1
	iters := 0
	var bestLab *duallabel.Labeling
	if la, ok := feasible(0); ok {
		bestLab = la
	} else {
		return nil, errors.New("core: zero flow infeasible (negative capacity?)")
	}
	for lo+1 < hi {
		iters++
		mid := lo + (hi-lo)/2
		if la, ok := feasible(mid); ok {
			lo, bestLab = mid, la
		} else {
			hi = mid
		}
	}

	// Assignment: dual SSSP potentials from an arbitrary face (§6.1).
	res := &FlowResult{Value: lo, Flow: make([]int64, g.M()), Iterations: iters}
	sssp := bestLab.SSSP(0, led)
	if sssp.NegCycle {
		return nil, errors.New("core: internal: feasible λ reported a negative cycle")
	}
	fd := g.Faces()
	for e := 0; e < g.M(); e++ {
		fw := planar.ForwardDart(e)
		// Circulation on the forward dart: ψ(head*) − ψ(tail*).
		phi := sssp.Dist[fd.FaceOf(planar.Rev(fw))] - sssp.Dist[fd.FaceOf(fw)]
		if onPath[fw] {
			phi += lo
		}
		if onPath[planar.Rev(fw)] {
			phi -= lo
		}
		res.Flow[e] = phi
	}
	return res, nil
}

// dartPath returns an s-to-t path of darts (each dart oriented along the
// walk; it need not follow edge directions).
func dartPath(g *planar.Graph, s, t int) ([]planar.Dart, error) {
	b := g.BFS(s)
	if b.Dist[t] < 0 {
		return nil, fmt.Errorf("core: %d unreachable from %d", t, s)
	}
	var rev []planar.Dart
	for v := t; v != s; {
		d := b.Parent[v]
		rev = append(rev, d)
		v = g.Tail(d)
	}
	// Reverse into s->t order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// CheckFlow verifies that flow is a feasible st-flow of the claimed value:
// capacity constraints per edge and conservation at every vertex except s
// and t. Used by tests and the harness as a self-check.
func CheckFlow(g *planar.Graph, s, t int, flow []int64, value int64) error {
	net := make([]int64, g.N())
	for e := 0; e < g.M(); e++ {
		f := flow[e]
		ed := g.Edge(e)
		if f < 0 || f > ed.Cap {
			return fmt.Errorf("edge %d: flow %d outside [0,%d]", e, f, ed.Cap)
		}
		net[ed.U] -= f
		net[ed.V] += f
	}
	for v := 0; v < g.N(); v++ {
		switch v {
		case s:
			if net[v] != -value {
				return fmt.Errorf("source imbalance %d, want -%d", net[v], value)
			}
		case t:
			if net[v] != value {
				return fmt.Errorf("sink imbalance %d, want %d", net[v], value)
			}
		default:
			if net[v] != 0 {
				return fmt.Errorf("conservation violated at %d by %d", v, net[v])
			}
		}
	}
	return nil
}

// DinicValue computes the baseline maximum flow value with Dinic's algorithm.
func DinicValue(g *planar.Graph, s, t int) int64 {
	fn := spath.NewFlowNetwork(g.N())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		fn.AddEdge(ed.U, ed.V, ed.Cap, e)
	}
	return fn.MaxFlow(s, t)
}
