package core

import (
	"errors"
	"fmt"

	"planarflow/internal/artifact"
	"planarflow/internal/bdd"
	"planarflow/internal/ledger"
	"planarflow/internal/planar"
	"planarflow/internal/primallabel"
	"planarflow/internal/spath"
)

// DirectedGirth computes the minimum total weight of a directed cycle in a
// planar digraph with non-negative weights, via the SSSP/BDD route of
// Parter [36] that the paper contrasts with its Õ(D) undirected girth
// (Question 1.6): any shortest cycle either stays inside a child bag
// (recursion) or passes a separator vertex, where it decomposes into a
// closing arc (u -> v) plus a shortest v-to-u path decoded from the primal
// distance labels. Runs in Õ(D²) charged rounds — the ablation partner of
// Girth's Õ(D).
func DirectedGirth(p *artifact.Prepared, opt Options, led *ledger.Ledger) (int64, error) {
	g := p.Graph()
	for e := 0; e < g.M(); e++ {
		if g.Edge(e).Weight < 0 {
			return 0, fmt.Errorf("core: directed girth: edge %d has weight %d: %w", e, g.Edge(e).Weight, ErrNegativeWeight)
		}
	}
	// The directed length function (weight forward, deactivated backward) is
	// exactly the directed distance oracle's, so the labeling is a shared
	// artifact: repeated directed-girth queries, or a directed oracle on the
	// same graph, reuse it.
	tree, err := p.Tree(opt.LeafLimit, led)
	if err != nil {
		return 0, err
	}
	la, err := p.PrimalLabels(artifact.Directed, opt.LeafLimit, led)
	if err != nil {
		return 0, err
	}
	if la.NegCycle {
		return 0, errors.New("core: internal: negative cycle with non-negative weights")
	}

	best := spath.Inf
	for _, b := range tree.Bags {
		if b.IsLeaf() {
			if c := leafDirMinCycle(g, b); c < best {
				best = c
			}
			continue
		}
		// Separator vertices = vertices present in both children.
		shared := sharedVertices(g, b)
		for v := range shared {
			lv := la.Label(b, v)
			if lv == nil {
				continue
			}
			// Closing arcs into v available in this bag.
			for e := 0; e < g.M(); e++ {
				if !b.EdgeIn[e] || g.Edge(e).V != v {
					continue
				}
				u := g.Edge(e).U
				lu := la.Label(b, u)
				if lu == nil {
					continue
				}
				d := primallabel.Decode(lv, lu) // dist(v -> u) in the bag
				if d < spath.Inf {
					if c := d + g.Edge(e).Weight; c < best {
						best = c
					}
				}
			}
		}
	}
	led.Charge("dirgirth/assemble", int64(2*(tree.Root.TreeDepth+1)))
	return best, nil
}

func sharedVertices(g *planar.Graph, b *bdd.Bag) map[int]bool {
	in := [2]map[int]bool{{}, {}}
	for ci, c := range b.Children {
		for e := 0; e < g.M(); e++ {
			if c.EdgeIn[e] {
				in[ci][g.Edge(e).U] = true
				in[ci][g.Edge(e).V] = true
			}
		}
	}
	shared := map[int]bool{}
	for v := range in[0] {
		if in[1][v] {
			shared[v] = true
		}
	}
	return shared
}

// leafDirMinCycle finds the minimum directed cycle inside a leaf bag
// explicitly: min over arcs (u -> v) of w + dist(v -> u).
func leafDirMinCycle(g *planar.Graph, b *bdd.Bag) int64 {
	verts := map[int]int{}
	id := func(v int) int {
		if i, ok := verts[v]; ok {
			return i
		}
		verts[v] = len(verts)
		return len(verts) - 1
	}
	type arc struct {
		u, v int
		w    int64
	}
	var arcs []arc
	for e := 0; e < g.M(); e++ {
		if !b.EdgeIn[e] {
			continue
		}
		ed := g.Edge(e)
		arcs = append(arcs, arc{id(ed.U), id(ed.V), ed.Weight})
	}
	dg := spath.NewDigraph(len(verts))
	for _, a := range arcs {
		dg.AddArc(a.u, a.v, a.w, -1)
	}
	best := spath.Inf
	for _, a := range arcs {
		if a.w >= best {
			continue
		}
		if back := spath.Dijkstra(dg, a.v).Dist[a.u]; back < spath.Inf && a.w+back < best {
			best = a.w + back
		}
	}
	return best
}
