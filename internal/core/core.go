package core
