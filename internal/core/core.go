package core

import (
	"errors"
	"fmt"

	"planarflow/internal/artifact"
	"planarflow/internal/duallabel"
	"planarflow/internal/ledger"
)

// Typed precondition errors. The public layer maps these onto its own
// sentinels, so each precondition is checked in exactly one place (here,
// where the algorithms need the invariant anyway).
var (
	// ErrNotSTPlanar reports that s and t share no face, violating the
	// st-planarity precondition of the Hassin-route algorithms.
	ErrNotSTPlanar = errors.New("core: s and t do not share a face")
	// ErrNegativeWeight reports negative edge weights where non-negative
	// weights are required (global min cut, directed girth).
	ErrNegativeWeight = errors.New("core: negative edge weights not supported")
	// ErrNonPositiveWeight reports non-positive weights where strictly
	// positive weights are required (girth).
	ErrNonPositiveWeight = errors.New("core: edge weights must be positive")
	// ErrFaceRange reports a face id outside [0, NumFaces).
	ErrFaceRange = errors.New("core: face out of range")
)

// DualSSSP computes single-source shortest paths in the dual graph G* from
// the given source face, with per-edge lengths taken from edge weights
// applied to both crossing directions (Thm 2.1 / Lemma 2.2). The dual
// labeling under these lengths is the reusable artifact; the per-query work
// is one label broadcast and decode (Õ(D) rounds). Negative weights are
// allowed; a negative dual cycle is reported in the result instead of
// distances.
func DualSSSP(p *artifact.Prepared, sourceFace int, opt Options, led *ledger.Ledger) (*duallabel.SSSPResult, error) {
	g := p.Graph()
	if sourceFace < 0 || sourceFace >= g.Faces().NumFaces() {
		return nil, fmt.Errorf("%w: face %d of [0,%d)", ErrFaceRange, sourceFace, g.Faces().NumFaces())
	}
	la, err := p.DualLabels(artifact.Undirected, opt.LeafLimit, led)
	if err != nil {
		return nil, err
	}
	if la.NegCycle {
		return &duallabel.SSSPResult{Source: sourceFace, NegCycle: true}, nil
	}
	return la.SSSP(sourceFace, led), nil
}
