package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"planarflow/internal/artifact"
	"planarflow/internal/ledger"
	"planarflow/internal/minoragg"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// STPlanarResult is an (approximate) maximum st-flow of an undirected
// st-planar instance.
type STPlanarResult struct {
	Value int64
	// Flow[e] is signed: positive pushes U->V, negative V->U; |Flow[e]| <=
	// Cap(e).
	Flow    []int64
	Epsilon float64
}

// STPlanarMaxFlow computes a (1-eps)-approximate maximum st-flow of an
// undirected planar graph whose s and t share a face (Thm 1.3), following
// Hassin's reduction: add a virtual edge (t,s) inside the common face,
// splitting it into faces f1, f2; the flow value is dist(f1, f2) in the
// augmented dual under capacity lengths, and smooth approximate distances
// from f1 give a feasible assignment via face potentials.
//
// eps = 0 runs the exact oracle. The paper's approximate SSSP oracle
// ([43] + the smoothing of [41]) is substituted by an exact Dijkstra over
// capacities scaled down by (1-eps): the resulting distances are smooth by
// construction (they satisfy the triangle inequality of the scaled
// lengths), which is precisely the property the assignment needs.
// The Hassin route takes the prepared artifact for API uniformity; its
// augmented dual depends on the (s, t) pair, so the reduction itself is
// per-query work with no build-phase substrate.
func STPlanarMaxFlow(p *artifact.Prepared, s, t int, eps float64, led *ledger.Ledger) (*STPlanarResult, error) {
	g := p.Graph()
	if eps < 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps=%v out of [0,1)", eps)
	}
	common := g.CommonFaces(s, t)
	if len(common) == 0 {
		return nil, fmt.Errorf("%w (vertices %d, %d)", ErrNotSTPlanar, s, t)
	}
	// Detecting the common face costs one PA on Ĝ (§6.1); the simulator's
	// calibrated unit prices it and the oracle rounds below.
	sim := minoragg.NewSimulator(g, led)
	sim.ChargeRounds("hassin/detect-face", 1)

	bigW := int64(g.N()+1) * (maxCap(g) + 1)
	g2, eNew, err := planar.InsertEdgeInFace(g, t, s, common[0], bigW, bigW)
	if err != nil {
		return nil, err
	}
	fd2 := g2.Faces()
	f1 := fd2.FaceOf(planar.ForwardDart(eNew))
	f2 := fd2.FaceOf(planar.BackwardDart(eNew))

	// Dual lengths: both darts of every original edge carry the (scaled)
	// capacity; the virtual edge is uncrossable.
	scale := func(c int64) int64 {
		if eps == 0 {
			return c
		}
		return int64(math.Floor((1 - eps) * float64(c)))
	}
	dg := spath.NewDigraph(fd2.NumFaces())
	du2 := g2.Dual()
	for d := planar.Dart(0); int(d) < g2.NumDarts(); d++ {
		e := planar.EdgeOf(d)
		if e == eNew {
			continue
		}
		dg.AddArc(du2.Tail(d), du2.Head(d), scale(g2.Edge(e).Cap), int(d))
	}

	// Oracle rounds: T_SSSP(eps) minor-aggregation rounds on the virtual
	// dual (Theorem 4.14 with beta=2 virtual nodes replacing the split
	// face). The oracle's n^{o(1)} factor is the fixed proxy
	// ceil(log n) * ceil(1/eps) per DESIGN.md §2.5.
	logn := int64(bits.Len(uint(g.N())))
	oracleTau := logn
	if eps > 0 {
		oracleTau *= int64(math.Ceil(1 / eps))
	}
	sim.ChargeVirtual("hassin/approx-sssp-oracle", oracleTau, 2)

	psi := spath.Dijkstra(dg, f1)
	if psi.Dist[f2] >= spath.Inf {
		return nil, errors.New("core: dual target unreachable (zero cut?)")
	}

	res := &STPlanarResult{Value: psi.Dist[f2], Epsilon: eps, Flow: make([]int64, g.M())}
	for e := 0; e < g.M(); e++ {
		fw := planar.ForwardDart(e)
		res.Flow[e] = psi.Dist[du2.Head(fw)] - psi.Dist[du2.Tail(fw)]
	}
	return res, nil
}

// STPlanarMinCut computes the corresponding (approximate) minimum st-cut
// (Thm 6.2): by Reif's st-separating-cycle duality, the duals of the arcs on
// the shortest f1-to-f2 path are the cut edges.
func STPlanarMinCut(p *artifact.Prepared, s, t int, eps float64, led *ledger.Ledger) (*CutResult, error) {
	g := p.Graph()
	common := g.CommonFaces(s, t)
	if len(common) == 0 {
		return nil, fmt.Errorf("%w (vertices %d, %d)", ErrNotSTPlanar, s, t)
	}
	sim := minoragg.NewSimulator(g, led)
	sim.ChargeRounds("stcut/detect-face", 1)
	bigW := int64(g.N()+1) * (maxCap(g) + 1)
	g2, eNew, err := planar.InsertEdgeInFace(g, t, s, common[0], bigW, bigW)
	if err != nil {
		return nil, err
	}
	fd2 := g2.Faces()
	f1 := fd2.FaceOf(planar.ForwardDart(eNew))
	f2 := fd2.FaceOf(planar.BackwardDart(eNew))
	scale := func(c int64) int64 {
		if eps == 0 {
			return c
		}
		return int64(math.Floor((1 - eps) * float64(c)))
	}
	dg := spath.NewDigraph(fd2.NumFaces())
	du2 := g2.Dual()
	for d := planar.Dart(0); int(d) < g2.NumDarts(); d++ {
		e := planar.EdgeOf(d)
		if e == eNew {
			continue
		}
		dg.AddArc(du2.Tail(d), du2.Head(d), scale(g2.Edge(e).Cap), int(d))
	}
	logn := int64(bits.Len(uint(g.N())))
	tau := logn
	if eps > 0 {
		tau *= int64(math.Ceil(1 / eps))
	}
	sim.ChargeVirtual("stcut/approx-sssp-oracle", tau, 2)

	psi := spath.Dijkstra(dg, f1)
	if psi.Dist[f2] >= spath.Inf {
		return nil, errors.New("core: dual target unreachable")
	}
	// Walk the shortest-path tree from f2 back to f1: its arcs' primal
	// edges are the cut (the st-separating cycle closes through the virtual
	// edge).
	res := &CutResult{}
	cutSet := map[int]bool{}
	for v := f2; v != f1; {
		a := planar.Dart(psi.ParentArcID[v])
		e := planar.EdgeOf(a)
		if !cutSet[e] {
			cutSet[e] = true
			res.CutEdges = append(res.CutEdges, e)
			res.Value += g.Edge(e).Cap // unscaled cut weight
		}
		v = du2.Tail(a)
	}
	// Bisection: remove the cut edges; the s-side is s's component.
	res.Side = make([]bool, g.N())
	res.Side[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.Rotation(v) {
			if cutSet[planar.EdgeOf(d)] {
				continue
			}
			u := g.Head(d)
			if !res.Side[u] {
				res.Side[u] = true
				stack = append(stack, u)
			}
		}
	}
	if res.Side[t] {
		return nil, errors.New("core: cut does not separate s from t")
	}
	return res, nil
}

// CheckUndirectedFlow validates an undirected (signed) st-flow: capacities
// respected in absolute value, conservation away from s and t, and the
// claimed value leaving s.
func CheckUndirectedFlow(g *planar.Graph, s, t int, flow []int64, value int64) error {
	net := make([]int64, g.N())
	for e := 0; e < g.M(); e++ {
		f := flow[e]
		ed := g.Edge(e)
		if f > ed.Cap || -f > ed.Cap {
			return fmt.Errorf("edge %d: |flow| %d exceeds cap %d", e, f, ed.Cap)
		}
		net[ed.U] -= f
		net[ed.V] += f
	}
	for v := 0; v < g.N(); v++ {
		switch v {
		case s:
			if net[v] != -value {
				return fmt.Errorf("source imbalance %d, want -%d", net[v], value)
			}
		case t:
			if net[v] != value {
				return fmt.Errorf("sink imbalance %d, want %d", net[v], value)
			}
		default:
			if net[v] != 0 {
				return fmt.Errorf("conservation violated at %d by %d", v, net[v])
			}
		}
	}
	return nil
}

// UndirectedDinicValue is the undirected max-flow baseline (each edge as two
// opposing arcs of the same capacity).
func UndirectedDinicValue(g *planar.Graph, s, t int) int64 {
	fn := spath.NewFlowNetwork(g.N())
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		fn.AddEdge(ed.U, ed.V, ed.Cap, e)
		fn.AddEdge(ed.V, ed.U, ed.Cap, e)
	}
	return fn.MaxFlow(s, t)
}

func maxCap(g *planar.Graph) int64 {
	var m int64
	for e := 0; e < g.M(); e++ {
		if c := g.Edge(e).Cap; c > m {
			m = c
		}
	}
	return m
}
