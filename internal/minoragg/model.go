package minoragg

import (
	"fmt"

	"planarflow/internal/pa"
	"planarflow/internal/planar"
	"planarflow/internal/spath"
)

// Model executes minor-aggregation algorithms (Definition 4.7, extended per
// Definition 4.11) on the dual graph G*. Nodes are the faces of G plus any
// virtual nodes added by the caller; edges are the dual edges plus virtual
// edges. Contraction maintains super-nodes; consensus and aggregation steps
// over *real* nodes execute as part-wise aggregations on Ĝ (Theorem 4.10),
// so their round cost is the measured PA cost of the instance; virtual-node
// participation is priced by the extended-model simulation (Theorem 4.14).
type Model struct {
	sim *Simulator

	numReal int // faces of G
	numNode int // faces + virtual nodes

	// super[x] = current super-node representative of node x.
	super []int

	edges   []ModelEdge
	virtual []bool // per node
}

// ModelEdge is an edge of the simulated (multi)graph.
type ModelEdge struct {
	A, B int
	// Dart is the primal dart for dual edges (NoDart for virtual edges).
	Dart planar.Dart
	// Weight is caller-defined (used by aggregation helpers).
	Weight int64
	// Contracted marks edges already inside a super-node.
	Contracted bool
}

// NewModel starts a model run over G* with one edge per primal edge
// (self-loops dropped) carrying the given weights.
func NewModel(sim *Simulator, weights []int64) *Model {
	du := sim.G.Dual()
	m := &Model{
		sim:     sim,
		numReal: du.NumNodes(),
		numNode: du.NumNodes(),
	}
	m.super = make([]int, m.numReal)
	m.virtual = make([]bool, m.numReal)
	for i := range m.super {
		m.super[i] = i
	}
	for e := 0; e < sim.G.M(); e++ {
		d := planar.ForwardDart(e)
		a, b := du.Tail(d), du.Head(d)
		if a == b {
			continue
		}
		w := int64(0)
		if weights != nil {
			w = weights[e]
		}
		m.edges = append(m.edges, ModelEdge{A: a, B: b, Dart: d, Weight: w})
	}
	return m
}

// NumNodes returns the current node count (real + virtual).
func (m *Model) NumNodes() int { return m.numNode }

// NumSuperNodes returns the number of distinct super-nodes.
func (m *Model) NumSuperNodes() int {
	seen := map[int]bool{}
	for _, s := range m.super {
		seen[s] = true
	}
	return len(seen)
}

// Super returns the super-node of node x.
func (m *Model) Super(x int) int { return m.super[x] }

// Edges returns the live (uncontracted) edges. The slice must not be
// modified.
func (m *Model) Edges() []ModelEdge { return m.edges }

// AddVirtualNode adds a virtual node connected to the given (super-)nodes
// with the given weights; all real nodes learn its identity (Lemma 4.12).
// The extended model admits Õ(1) virtual nodes; exceeding that only affects
// the charged rounds (beta multiplier), not correctness.
func (m *Model) AddVirtualNode(neighbors []int, weights []int64) int {
	x := m.numNode
	m.numNode++
	m.super = append(m.super, x)
	m.virtual = append(m.virtual, true)
	for i, nb := range neighbors {
		var w int64
		if weights != nil {
			w = weights[i]
		}
		m.edges = append(m.edges, ModelEdge{A: x, B: nb, Dart: planar.NoDart, Weight: w})
	}
	m.sim.ChargeVirtual("model/add-virtual", 1, int64(m.numNode-m.numReal))
	return x
}

// ContractionStep contracts every edge for which choose returns true
// (Definition 4.7 step 1). Super-nodes are merged along chosen edges; the
// merging compiles to O(log n) PA rounds (Boruvka star-merges), charged
// accordingly.
func (m *Model) ContractionStep(choose func(e ModelEdge) bool) {
	// Union-find over super-nodes.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, e := range m.edges {
		if e.Contracted {
			continue
		}
		sa, sb := m.super[e.A], m.super[e.B]
		if sa == sb || !choose(e) {
			continue
		}
		ra, rb := find(sa), find(sb)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for x := range m.super {
		m.super[x] = find(m.super[x])
	}
	for i := range m.edges {
		if m.super[m.edges[i].A] == m.super[m.edges[i].B] {
			m.edges[i].Contracted = true
		}
	}
	m.sim.ChargeRounds("model/contraction", 1)
}

// ConsensusStep computes, for every super-node, the op-aggregate of the
// per-node inputs; every node of the super-node learns it (Definition 4.7
// step 2). Real nodes execute through a PA on Ĝ; virtual members fold in
// under the extended-model charge.
func (m *Model) ConsensusStep(input func(node int) int64, identity int64, op pa.Op) map[int]int64 {
	// Compact super-node ids for the PA parts.
	part := map[int]int{}
	var supers []int
	for x := 0; x < m.numNode; x++ {
		s := m.super[x]
		if _, ok := part[s]; !ok {
			part[s] = len(supers)
			supers = append(supers, s)
		}
	}
	partOfFace := make([]int, m.numReal)
	faceInput := make([]int64, m.numReal)
	for f := 0; f < m.numReal; f++ {
		partOfFace[f] = part[m.super[f]]
		faceInput[f] = input(f)
	}
	vals := m.sim.PA.AggregateFaces(partOfFace, len(supers), faceInput, identity, op)
	// Fold virtual members (simulated by all vertices; Thm 4.14).
	beta := int64(m.numNode - m.numReal)
	if beta > 0 {
		for x := m.numReal; x < m.numNode; x++ {
			p := part[m.super[x]]
			vals[p] = op(vals[p], input(x))
		}
		m.sim.ChargeVirtual("model/consensus-virtual", 1, beta)
	}
	out := make(map[int]int64, len(supers))
	for i, s := range supers {
		out[s] = vals[i]
	}
	return out
}

// AggregationStep computes, for every super-node, the op-aggregate of
// z-values over its incident live edges (Definition 4.7 step 3). The z
// function receives the edge and the endpoint (node id) on the aggregating
// side.
func (m *Model) AggregationStep(z func(e ModelEdge, endpoint int) int64, identity int64, op pa.Op) map[int]int64 {
	out := map[int]int64{}
	seen := map[int]bool{}
	for x := 0; x < m.numNode; x++ {
		s := m.super[x]
		if !seen[s] {
			seen[s] = true
			out[s] = identity
		}
	}
	for _, e := range m.edges {
		if e.Contracted || m.super[e.A] == m.super[e.B] {
			continue
		}
		sa, sb := m.super[e.A], m.super[e.B]
		out[sa] = op(out[sa], z(e, e.A))
		out[sb] = op(out[sb], z(e, e.B))
	}
	// One PA over edge endpoints (chord copies know their edges, Lemma 4.9);
	// virtual edges are priced by the extended simulation.
	m.sim.ChargeAggRounds("model/aggregation", 1)
	if beta := int64(m.numNode - m.numReal); beta > 0 {
		m.sim.ChargeVirtual("model/aggregation-virtual", 1, beta)
	}
	return out
}

// MSTResult is the output of the Boruvka minimum-spanning-forest run.
type MSTResult struct {
	Edges  []ModelEdge
	Weight int64
	Phases int
}

// BoruvkaMST computes a minimum spanning forest of G* (ties broken by dart
// id) entirely through model rounds: each phase aggregates the minimum
// incident edge per super-node and contracts the chosen edges — the classic
// Õ(1)-round minor-aggregation algorithm ([43], Example 4.4) that §6.1 uses
// to complete approximate SSSP trees across zero-weight edges.
func (m *Model) BoruvkaMST() *MSTResult {
	res := &MSTResult{}
	const inf = spath.Inf
	for phase := 0; phase < 64; phase++ {
		if m.NumSuperNodes() <= 1 {
			break
		}
		// Key edges by (weight, dart) to break ties consistently.
		key := func(e ModelEdge) int64 { return e.Weight*int64(1<<22) + int64(e.Dart) }
		best := m.AggregationStep(func(e ModelEdge, _ int) int64 { return key(e) }, inf, pa.Min)
		chosen := map[int64]bool{}
		progress := false
		for _, k := range best {
			if k < inf {
				chosen[k] = true
				progress = true
			}
		}
		if !progress {
			break // remaining super-nodes are disconnected
		}
		for _, e := range m.edges {
			if !e.Contracted && chosen[key(e)] && m.super[e.A] != m.super[e.B] {
				res.Edges = append(res.Edges, e)
				res.Weight += e.Weight
			}
		}
		m.ContractionStep(func(e ModelEdge) bool { return chosen[key(e)] })
		res.Phases = phase + 1
	}
	return res
}

// String summarizes the model state (debugging aid).
func (m *Model) String() string {
	return fmt.Sprintf("minoragg.Model{nodes=%d real=%d supers=%d edges=%d}",
		m.numNode, m.numReal, m.NumSuperNodes(), len(m.edges))
}
