// Package minoragg simulates the (extended) minor-aggregation model of
// [Zuzic et al. '22, Ghaffari–Zuzic '22] on the dual graph G* (§4.2).
//
// A minor-aggregation round compiles to Õ(1) part-wise aggregations
// (Lemma 4.8); on the dual these are PA instances on the face-disjoint graph
// Ĝ (Theorem 4.10). The Simulator executes the model's bookkeeping
// centrally, but prices every model round by actually running a canonical
// faces-as-parts PA on Ĝ and charging its measured cost — so the Õ(τ·D)
// CONGEST bound is grounded in the realized shortcut congestion/dilation of
// the instance at hand.
//
// The package also executes, for real, the parallel-edge deactivation
// procedure of Lemma 4.15 (low out-degree orientation via the arboricity
// algorithm of [Barenboim–Elkin]) that turns the dual multigraph into a
// simple graph, and the cut-edge marking of Lemma 4.17.
package minoragg

import (
	"math/bits"

	"planarflow/internal/hatg"
	"planarflow/internal/ledger"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
)

// Simulator hosts minor-aggregation computations on the dual of one planar
// graph.
type Simulator struct {
	G   *planar.Graph
	H   *hatg.Graph
	PA  *pa.DualPA
	Led *ledger.Ledger

	paUnit int64 // measured CONGEST cost of one PA instance on this Ĝ
	logN   int64
}

// NewSimulator builds Ĝ and the shortcut skeleton for g and calibrates the
// per-PA round cost with one canonical faces-as-parts aggregation.
func NewSimulator(g *planar.Graph, led *ledger.Ledger) *Simulator {
	s := &Simulator{G: g, Led: led}
	s.H = hatg.New(g)
	led.Charge("hatg/construct", 2) // Property 1: O(1) rounds
	s.PA = pa.NewDualPA(s.H, led)
	s.logN = int64(bits.Len(uint(g.N()))) + 1

	s.paUnit = s.PA.MeasureUnit()
	return s
}

// PAUnit returns the measured cost of one PA instance on this instance's Ĝ.
func (s *Simulator) PAUnit() int64 { return s.paUnit }

// ChargeRounds prices tau minor-aggregation rounds that may contract: each
// compiles to O(log n) PA instances (Boruvka merging, Lemma 4.8) at the
// calibrated per-PA cost.
func (s *Simulator) ChargeRounds(phase string, tau int64) {
	s.Led.Charge(phase, tau*s.logN*s.paUnit)
}

// ChargeAggRounds prices tau contraction-free model rounds (consensus /
// aggregation only): one PA instance each.
func (s *Simulator) ChargeAggRounds(phase string, tau int64) {
	s.Led.Charge(phase, tau*s.paUnit)
}

// ChargeVirtual prices tau extended-model rounds with beta virtual nodes
// (Theorem 4.14: Õ(tau·beta·D)).
func (s *Simulator) ChargeVirtual(phase string, tau, beta int64) {
	if beta < 1 {
		beta = 1
	}
	s.ChargeRounds(phase, tau*beta)
}

// SimpleDual is the dual graph after Lemma 4.15: self-loops removed and
// parallel edges merged into one active edge carrying the op-aggregate of
// the group's weights.
type SimpleDual struct {
	NumNodes int // faces of G

	// Per merged (active) edge:
	Us, Vs  []int   // endpoint faces, Us[i] < Vs[i] is not guaranteed
	Ws      []int64 // merged weight
	RepEdge []int   // representative primal edge (minimum edge ID in group)

	// GroupOf[e] is the merged edge index of primal edge e, or -1 for
	// self-loops (edges with the same face on both sides).
	GroupOf []int

	// Orientation diagnostics (Lemma 4.15): OutNeighbors[f] counts distinct
	// out-neighbors of face f under the low out-degree orientation.
	OutNeighbors []int
	MaxOutDeg    int
}

// Deactivate runs the parallel-edge deactivation of Lemma 4.15 on G* with
// edge weights given per primal edge and merge operator op. The partition
// H_1..H_l of [Barenboim–Elkin] is executed faithfully on the dual's simple
// support (arboricity <= 3), the induced orientation has O(1) out-neighbors
// per node, and the per-neighbor merges are then performed group by group.
// Model cost: Õ(alpha) minor-aggregation rounds, charged per phase.
func (s *Simulator) Deactivate(weights []int64, op pa.Op) *SimpleDual {
	g := s.G
	du := g.Dual()
	nf := du.NumNodes()

	// Simple support adjacency (distinct neighbors, ignoring self-loops).
	nbrSet := make([]map[int]bool, nf)
	for f := 0; f < nf; f++ {
		nbrSet[f] = make(map[int]bool)
	}
	for e := 0; e < g.M(); e++ {
		d := planar.ForwardDart(e)
		a, b := du.Tail(d), du.Head(d)
		if a == b {
			continue
		}
		nbrSet[a][b] = true
		nbrSet[b][a] = true
	}

	// [Barenboim–Elkin] partition: alpha = 3 for planar duals; a white node
	// with at most 2*(2+eps')*alpha white neighbors joins the current part.
	// We use the paper's 3*alpha threshold.
	const alpha = 3
	threshold := 3 * alpha
	part := make([]int, nf) // H-index per face, -1 while white
	for f := range part {
		part[f] = -1
	}
	whiteDeg := make([]int, nf)
	for f := 0; f < nf; f++ {
		whiteDeg[f] = len(nbrSet[f])
	}
	remaining := nf
	phase := 0
	for remaining > 0 {
		var joined []int
		for f := 0; f < nf; f++ {
			if part[f] == -1 && whiteDeg[f] <= threshold {
				joined = append(joined, f)
			}
		}
		if len(joined) == 0 {
			// Cannot happen for arboricity-bounded graphs, but guard against
			// degenerate inputs by force-joining the minimum-degree node.
			best, bd := -1, 1<<30
			for f := 0; f < nf; f++ {
				if part[f] == -1 && whiteDeg[f] < bd {
					best, bd = f, whiteDeg[f]
				}
			}
			joined = []int{best}
		}
		for _, f := range joined {
			part[f] = phase
		}
		for _, f := range joined {
			for nb := range nbrSet[f] {
				if part[nb] == -1 {
					whiteDeg[nb]--
				}
			}
			remaining--
		}
		// Each phase costs O(threshold) consensus+aggregation steps
		// (counting white neighbors one at a time, §4.2.3) — no contractions.
		s.ChargeAggRounds("dual/deactivate-phase", int64(threshold))
		phase++
	}

	// Orientation: edge (u,v) points to the higher part, ties to higher ID.
	orientOut := func(u, v int) bool {
		if part[u] != part[v] {
			return part[u] < part[v]
		}
		return u < v
	}

	sd := &SimpleDual{
		NumNodes:     nf,
		GroupOf:      make([]int, g.M()),
		OutNeighbors: make([]int, nf),
	}
	type groupKey struct{ from, to int }
	groups := make(map[groupKey]int)
	outNbrs := make([]map[int]bool, nf)
	for f := range outNbrs {
		outNbrs[f] = make(map[int]bool)
	}
	for e := 0; e < g.M(); e++ {
		d := planar.ForwardDart(e)
		a, b := du.Tail(d), du.Head(d)
		if a == b {
			sd.GroupOf[e] = -1 // self-loop: deactivated outright
			continue
		}
		from, to := a, b
		if !orientOut(a, b) {
			from, to = b, a
		}
		outNbrs[from][to] = true
		k := groupKey{from, to}
		gi, ok := groups[k]
		if !ok {
			gi = len(sd.Us)
			groups[k] = gi
			sd.Us = append(sd.Us, a)
			sd.Vs = append(sd.Vs, b)
			sd.Ws = append(sd.Ws, weights[e])
			sd.RepEdge = append(sd.RepEdge, e)
			sd.GroupOf[e] = gi
			continue
		}
		sd.Ws[gi] = op(sd.Ws[gi], weights[e])
		if e < sd.RepEdge[gi] {
			sd.RepEdge[gi] = e
		}
		sd.GroupOf[e] = gi
	}
	for f := 0; f < nf; f++ {
		sd.OutNeighbors[f] = len(outNbrs[f])
		if sd.OutNeighbors[f] > sd.MaxOutDeg {
			sd.MaxOutDeg = sd.OutNeighbors[f]
		}
	}
	// Per-neighbor merges: O(alpha) aggregation steps.
	s.ChargeAggRounds("dual/deactivate-merge", int64(3*alpha))
	return sd
}

// MarkDualCutEdges returns, given one side of a cut of G*, the primal edges
// whose dual crosses the cut — by cycle-cut duality (Fact 3.1) these form
// the corresponding primal cycle. Model cost: O(1) minor-aggregation rounds
// (Lemma 4.17).
func (s *Simulator) MarkDualCutEdges(side []bool) []int {
	du := s.G.Dual()
	var out []int
	for e := 0; e < s.G.M(); e++ {
		d := planar.ForwardDart(e)
		if side[du.Tail(d)] != side[du.Head(d)] {
			out = append(out, e)
		}
	}
	s.ChargeAggRounds("dual/mark-cut-edges", 2)
	return out
}
