package minoragg

import (
	"sort"
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
)

// kruskalWeight computes the baseline minimum-spanning-forest weight of the
// dual (self-loops dropped).
func kruskalWeight(g *planar.Graph, weights []int64) int64 {
	du := g.Dual()
	type ed struct {
		w    int64
		a, b int
	}
	var es []ed
	for e := 0; e < g.M(); e++ {
		d := planar.ForwardDart(e)
		a, b := du.Tail(d), du.Head(d)
		if a != b {
			es = append(es, ed{weights[e], a, b})
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].w < es[j].w })
	parent := make([]int, du.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	var total int64
	for _, e := range es {
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			total += e.w
		}
	}
	return total
}

func TestBoruvkaMSTMatchesKruskal(t *testing.T) {
	rng := planar.NewRand(17)
	for trial := 0; trial < 10; trial++ {
		var g *planar.Graph
		if trial%2 == 0 {
			g = planar.Grid(2+rng.IntN(5), 2+rng.IntN(6))
		} else {
			g = planar.StackedTriangulation(8+rng.IntN(30), rng)
		}
		w := make([]int64, g.M())
		for e := range w {
			w[e] = rng.Int64N(1000)
		}
		led := ledger.New()
		sim := NewSimulator(g, led)
		m := NewModel(sim, w)
		res := m.BoruvkaMST()
		if want := kruskalWeight(g, w); res.Weight != want {
			t.Fatalf("trial %d: boruvka=%d kruskal=%d", trial, res.Weight, want)
		}
		if m.NumSuperNodes() != 1 {
			t.Fatalf("trial %d: %d super-nodes remain (dual is connected)", trial, m.NumSuperNodes())
		}
		// Boruvka halves components per phase: O(log n) phases.
		if res.Phases > 20 {
			t.Fatalf("trial %d: %d phases", trial, res.Phases)
		}
		if led.Total() == 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestMSTEdgesFormSpanningTree(t *testing.T) {
	g := planar.Grid(5, 5)
	rng := planar.NewRand(3)
	w := make([]int64, g.M())
	for e := range w {
		w[e] = rng.Int64N(50)
	}
	sim := NewSimulator(g, ledger.New())
	m := NewModel(sim, w)
	res := m.BoruvkaMST()
	nf := g.Faces().NumFaces()
	if len(res.Edges) != nf-1 {
		t.Fatalf("tree edges=%d want %d", len(res.Edges), nf-1)
	}
	// Acyclic + spanning via union-find over the returned edges.
	parent := make([]int, nf)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range res.Edges {
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			t.Fatal("cycle in MST edges")
		}
		parent[ra] = rb
	}
}

func TestConsensusStep(t *testing.T) {
	g := planar.Grid(3, 4)
	sim := NewSimulator(g, ledger.New())
	m := NewModel(sim, nil)
	// Before any contraction each node is its own super-node: consensus
	// returns its own input.
	vals := m.ConsensusStep(func(x int) int64 { return int64(10 + x) }, 0, pa.Sum)
	for f := 0; f < g.Faces().NumFaces(); f++ {
		if vals[m.Super(f)] != int64(10+f) {
			t.Fatalf("node %d: consensus=%d", f, vals[m.Super(f)])
		}
	}
	// Contract everything: one super-node summing all inputs.
	m.ContractionStep(func(e ModelEdge) bool { return true })
	if m.NumSuperNodes() != 1 {
		t.Fatalf("supers=%d want 1", m.NumSuperNodes())
	}
	vals = m.ConsensusStep(func(x int) int64 { return 1 }, 0, pa.Sum)
	if vals[m.Super(0)] != int64(g.Faces().NumFaces()) {
		t.Fatalf("global sum=%d want %d", vals[m.Super(0)], g.Faces().NumFaces())
	}
}

func TestAggregationStepCountsIncidentEdges(t *testing.T) {
	g := planar.Grid(3, 3)
	sim := NewSimulator(g, ledger.New())
	m := NewModel(sim, nil)
	deg := m.AggregationStep(func(e ModelEdge, _ int) int64 { return 1 }, 0, pa.Sum)
	// Each dual node's live-edge degree (parallels counted, self-loops
	// dropped) must match a direct count.
	want := map[int]int64{}
	du := g.Dual()
	for e := 0; e < g.M(); e++ {
		d := planar.ForwardDart(e)
		a, b := du.Tail(d), du.Head(d)
		if a != b {
			want[a]++
			want[b]++
		}
	}
	for f, w := range want {
		if deg[m.Super(f)] != w {
			t.Fatalf("node %d: degree %d want %d", f, deg[m.Super(f)], w)
		}
	}
}

func TestVirtualNodeParticipates(t *testing.T) {
	g := planar.Grid(3, 3)
	sim := NewSimulator(g, ledger.New())
	m := NewModel(sim, nil)
	v := m.AddVirtualNode([]int{0, 1}, []int64{5, 7})
	if !m.virtual[v] {
		t.Fatal("virtual flag unset")
	}
	deg := m.AggregationStep(func(e ModelEdge, _ int) int64 { return 1 }, 0, pa.Sum)
	if deg[m.Super(v)] != 2 {
		t.Fatalf("virtual degree=%d want 2", deg[m.Super(v)])
	}
	// Contract one virtual edge; consensus over the merged super-node must
	// include the virtual member's input.
	m.ContractionStep(func(e ModelEdge) bool { return e.Dart == planar.NoDart && e.B == 0 })
	vals := m.ConsensusStep(func(x int) int64 {
		if x == v {
			return 100
		}
		return 1
	}, 0, pa.Sum)
	if vals[m.Super(v)] != 101 {
		t.Fatalf("merged consensus=%d want 101", vals[m.Super(v)])
	}
}

func TestContractionIdempotent(t *testing.T) {
	g := planar.Grid(4, 4)
	sim := NewSimulator(g, ledger.New())
	m := NewModel(sim, nil)
	before := m.NumSuperNodes()
	m.ContractionStep(func(e ModelEdge) bool { return false })
	if m.NumSuperNodes() != before {
		t.Fatal("no-op contraction changed super-nodes")
	}
	m.ContractionStep(func(e ModelEdge) bool { return true })
	m.ContractionStep(func(e ModelEdge) bool { return true })
	if m.NumSuperNodes() != 1 {
		t.Fatal("full contraction should leave one super-node")
	}
}
