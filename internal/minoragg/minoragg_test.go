package minoragg

import (
	"testing"

	"planarflow/internal/ledger"
	"planarflow/internal/pa"
	"planarflow/internal/planar"
)

func TestDeactivateGrid(t *testing.T) {
	g := planar.Grid(4, 4)
	led := ledger.New()
	s := NewSimulator(g, led)
	w := make([]int64, g.M())
	for e := range w {
		w[e] = int64(e + 1)
	}
	sd := s.Deactivate(w, pa.Sum)
	if sd.NumNodes != g.Faces().NumFaces() {
		t.Fatalf("nodes=%d want %d", sd.NumNodes, g.Faces().NumFaces())
	}
	// Grid interior quads share at most one edge with each neighbor, but
	// boundary quads share several edges with the outer face; groups must
	// merge those.
	du := g.Dual()
	type fp struct{ a, b int }
	wantGroups := map[fp]int64{}
	for e := 0; e < g.M(); e++ {
		d := planar.ForwardDart(e)
		a, b := du.Tail(d), du.Head(d)
		if a > b {
			a, b = b, a
		}
		wantGroups[fp{a, b}] += w[e]
	}
	if len(sd.Us) != len(wantGroups) {
		t.Fatalf("merged edges=%d want %d", len(sd.Us), len(wantGroups))
	}
	for i := range sd.Us {
		a, b := sd.Us[i], sd.Vs[i]
		if a > b {
			a, b = b, a
		}
		if wantGroups[fp{a, b}] != sd.Ws[i] {
			t.Fatalf("group (%d,%d): weight %d want %d", a, b, sd.Ws[i], wantGroups[fp{a, b}])
		}
	}
	if led.Total() == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestDeactivateLowOutDegree(t *testing.T) {
	// Lemma 4.15: the orientation must give O(alpha) = O(1) out-neighbors.
	rng := planar.NewRand(2)
	for _, g := range []*planar.Graph{
		planar.Grid(8, 8),
		planar.Cylinder(4, 10),
		planar.StackedTriangulation(150, rng),
		planar.RemoveRandomEdges(planar.StackedTriangulation(120, rng), rng, 60),
	} {
		s := NewSimulator(g, ledger.New())
		w := make([]int64, g.M())
		for e := range w {
			w[e] = 1
		}
		sd := s.Deactivate(w, pa.Sum)
		if sd.MaxOutDeg > 9 { // 3*alpha with alpha=3
			t.Fatalf("max out-neighbors %d exceeds 3*alpha", sd.MaxOutDeg)
		}
	}
}

func TestDeactivateSelfLoops(t *testing.T) {
	// A path graph: every edge is a bridge, so every dual edge is a
	// self-loop and must be deactivated.
	g := planar.Grid(1, 5)
	s := NewSimulator(g, ledger.New())
	w := []int64{1, 1, 1, 1}
	sd := s.Deactivate(w, pa.Sum)
	if len(sd.Us) != 0 {
		t.Fatalf("expected no active edges, got %d", len(sd.Us))
	}
	for e, gi := range sd.GroupOf {
		if gi != -1 {
			t.Fatalf("bridge edge %d not marked self-loop", e)
		}
	}
}

func TestDeactivateMinOp(t *testing.T) {
	// With Min, the merged weight must be the lightest parallel edge.
	g := planar.Grid(2, 4)
	s := NewSimulator(g, ledger.New())
	rng := planar.NewRand(9)
	w := make([]int64, g.M())
	for e := range w {
		w[e] = 1 + rng.Int64N(50)
	}
	sd := s.Deactivate(w, pa.Min)
	du := g.Dual()
	for i := range sd.Us {
		// Check min over all primal edges in this group.
		want := int64(1 << 62)
		for e := 0; e < g.M(); e++ {
			if sd.GroupOf[e] == i && w[e] < want {
				want = w[e]
			}
		}
		if sd.Ws[i] != want {
			t.Fatalf("group %d: %d want %d", i, sd.Ws[i], want)
		}
		// Representative edge must connect the same face pair.
		d := planar.ForwardDart(sd.RepEdge[i])
		a, b := du.Tail(d), du.Head(d)
		if !(a == sd.Us[i] && b == sd.Vs[i]) && !(a == sd.Vs[i] && b == sd.Us[i]) {
			t.Fatalf("group %d: representative edge spans wrong faces", i)
		}
	}
}

func TestMarkDualCutEdges(t *testing.T) {
	// 2x2 grid: one interior face + outer face. Cutting {interior} from
	// {outer} must mark exactly the 4 boundary edges (the primal 4-cycle).
	g := planar.Grid(2, 2)
	s := NewSimulator(g, ledger.New())
	fd := g.Faces()
	outer := fd.LargestFace()
	side := make([]bool, fd.NumFaces())
	for f := range side {
		side[f] = f != outer
	}
	edges := s.MarkDualCutEdges(side)
	if len(edges) != 4 {
		t.Fatalf("marked %d edges, want 4", len(edges))
	}
}

func TestChargeRoundsScalesWithTau(t *testing.T) {
	g := planar.Grid(4, 4)
	led := ledger.New()
	s := NewSimulator(g, led)
	before := led.Total()
	s.ChargeRounds("x", 1)
	one := led.Total() - before
	s.ChargeRounds("x", 10)
	ten := led.Total() - before - one
	if ten != 10*one {
		t.Fatalf("charging not linear: 1->%d, 10->%d", one, ten)
	}
	if one < s.PAUnit() {
		t.Fatalf("one model round (%d) cheaper than one PA (%d)", one, s.PAUnit())
	}
}
