package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func mustFrame(t *testing.T, kind uint8, id uint64, payload []byte) []byte {
	t.Helper()
	b, err := AppendFrame(nil, kind, id, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		kind    uint8
		id      uint64
		payload string
	}{
		{uint8(OpQuery), 1, `{"graph":"g","op":"dist","u":0,"v":5}`},
		{uint8(OpBatch), 1<<64 - 1, `{"graph":"g","queries":[{"op":"girth"}]}`},
		{uint8(OpPing), 0, ""},
		{respBit | uint8(StatusOK), 7, `{"value":42}`},
		{respBit | uint8(StatusNotFound), 9, `{"error":"unknown graph"}`},
	}
	for _, c := range cases {
		enc := mustFrame(t, c.kind, c.id, []byte(c.payload))
		if len(enc) != HeaderLen+len(c.payload)+crcLen {
			t.Fatalf("kind 0x%02x: encoded %d bytes, want %d", c.kind, len(enc), HeaderLen+len(c.payload)+crcLen)
		}

		// Slice decode.
		f, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("kind 0x%02x: %v", c.kind, err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if f.Kind != c.kind || f.ID != c.id || string(f.Payload) != c.payload {
			t.Fatalf("decoded %+v, want kind=0x%02x id=%d payload=%q", f, c.kind, c.id, c.payload)
		}

		// Stream decode.
		sf, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatal(err)
		}
		if sf.Kind != f.Kind || sf.ID != f.ID || !bytes.Equal(sf.Payload, f.Payload) {
			t.Fatalf("stream decode diverged: %+v vs %+v", sf, f)
		}
	}
}

func TestFrameKindAccessors(t *testing.T) {
	req := Frame{Kind: uint8(OpBatch)}
	if req.IsResponse() || req.Op() != OpBatch {
		t.Fatalf("request accessors wrong: %+v", req)
	}
	resp := Frame{Kind: respBit | uint8(StatusCanceled)}
	if !resp.IsResponse() || resp.Status() != StatusCanceled {
		t.Fatalf("response accessors wrong: %+v", resp)
	}
	if got := StatusCanceled.String(); got != "canceled" {
		t.Fatalf("Status.String() = %q", got)
	}
}

func TestDecodeFrameConsecutive(t *testing.T) {
	buf := mustFrame(t, uint8(OpQuery), 1, []byte("one"))
	buf = append(buf, mustFrame(t, uint8(OpQuery), 2, []byte("two"))...)
	f1, n1, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	f2, n2, err := DecodeFrame(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) || f1.ID != 1 || f2.ID != 2 || string(f2.Payload) != "two" {
		t.Fatalf("back-to-back decode broken: %+v %+v", f1, f2)
	}
}

func TestFrameErrors(t *testing.T) {
	valid := mustFrame(t, uint8(OpQuery), 5, []byte(`{"op":"dist"}`))

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", valid[:HeaderLen-1], ErrTruncated},
		{"short-body", valid[:len(valid)-1], ErrTruncated},
		{"bad-magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad-version", corrupt(func(b []byte) { b[2] = VersionTrace + 1 }), ErrVersion},
		{"zero-kind", corrupt(func(b []byte) { b[3] = 0 }), ErrBadKind},
		{"huge-kind", corrupt(func(b []byte) { b[3] = 0x7f }), ErrBadKind},
		{"bad-status", corrupt(func(b []byte) { b[3] = respBit | 0x3f }), ErrBadKind},
		{"oversize", corrupt(func(b []byte) { b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff }), ErrOversize},
		{"flipped-payload", corrupt(func(b []byte) { b[HeaderLen] ^= 0xff }), ErrChecksum},
		{"flipped-crc", corrupt(func(b []byte) { b[len(b)-1] ^= 0x01 }), ErrChecksum},
	}
	for _, c := range cases {
		if _, _, err := DecodeFrame(c.data); !errors.Is(err, c.want) {
			t.Errorf("%s: DecodeFrame err = %v, want %v", c.name, err, c.want)
		}
		f, err := ReadFrame(bufio.NewReader(bytes.NewReader(c.data)))
		want := c.want
		if len(c.data) == 0 {
			want = io.EOF // clean stream end, not a truncation
		}
		if !errors.Is(err, want) {
			t.Errorf("%s: ReadFrame err = %v (frame %+v), want %v", c.name, err, f, want)
		}
	}
}

func TestAppendFrameOversizePayload(t *testing.T) {
	if _, err := AppendFrame(nil, uint8(OpQuery), 1, make([]byte, MaxPayload+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	// Exactly at the cap is legal.
	b, err := AppendFrame(nil, uint8(OpQuery), 1, make([]byte, MaxPayload))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(b); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameDoesNotOverAllocate pins the allocation-capping contract:
// a header declaring a huge-but-legal payload against a short stream
// must fail with ErrTruncated after at most MaxPayload of buffer, and an
// oversized declaration must fail before allocating anything.
func TestReadFrameDoesNotOverAllocate(t *testing.T) {
	hdr := mustFrame(t, uint8(OpQuery), 1, nil)[:HeaderLen]
	hdr[12], hdr[13] = 0xff, 0xff // declare 64 KiB-ish, deliver none
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Oversized length prefix on an infinite stream: rejected from the
	// header alone.
	big := append([]byte(nil), hdr...)
	big[12], big[13], big[14], big[15] = 0, 0, 0xff, 0xff
	r := bufio.NewReader(io.MultiReader(bytes.NewReader(big), neverEnding{}))
	if _, err := ReadFrame(r); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'z'
	}
	return len(p), nil
}

func TestReadFrameStreamSequence(t *testing.T) {
	var stream []byte
	payloads := []string{"a", strings.Repeat("b", 1000), ""}
	for i, p := range payloads {
		stream = append(stream, mustFrame(t, uint8(OpQuery), uint64(i), []byte(p))...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for i, p := range payloads {
		f, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if f.ID != uint64(i) || string(f.Payload) != p {
			t.Fatalf("frame %d: %+v", i, f)
		}
	}
	if _, err := ReadFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end err = %v, want io.EOF", err)
	}
}
