package wire

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDialFailureIsUnavailable(t *testing.T) {
	p := NewPool("tcp", "127.0.0.1:1", 1) // reserved port: nothing listens
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _, err := p.Do(ctx, OpQuery, []byte("x"))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial failure not typed Unavailable: %v", err)
	}
}

func TestHealthSweepRemovesDeadConns(t *testing.T) {
	h := &echoHandler{release: make(chan struct{})}
	srv, addr := startServer(t, h)
	p := NewPool("tcp", addr, 2)
	defer p.Close()
	ctx := context.Background()
	if err := p.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the server side: established conns are now dead, but the pool
	// does not know until it touches them.
	srv.Close()
	p.StartHealthSweep(10 * time.Millisecond)

	// The sweep must discover the death on its own — without any caller
	// traffic — and mark the conns failed so the next Do redials instead
	// of writing into a dead socket.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		dead := 0
		for _, c := range p.conns {
			if c != nil && c.isDead() {
				dead++
			}
		}
		p.mu.Unlock()
		if dead > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never detected the dead connections")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart a server on a fresh address via a new pool path is not
	// possible (addr is fixed), so just verify Do now fails Unavailable
	// fast (redial refused) rather than hanging on a dead socket.
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, _, err := p.Do(dctx, OpQuery, []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("post-sweep Do: %v", err)
	}
}

func TestHealthSweepStartGuards(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	p := NewPool("tcp", addr, 1)
	p.StartHealthSweep(time.Hour)
	p.StartHealthSweep(time.Hour) // second start is a no-op, not a second goroutine
	p.StartHealthSweep(0)         // non-positive interval ignored
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := NewPool("tcp", addr, 1)
	p2.Close()
	p2.StartHealthSweep(time.Hour) // starting after Close is a no-op
}

// TestShutdownDrainsInFlight: Shutdown must stop accepting, let an
// in-flight request finish and deliver its response, then close.
func TestShutdownDrainsInFlight(t *testing.T) {
	h := &echoHandler{release: make(chan struct{})}
	srv, addr := startServer(t, h)
	p := NewPool("tcp", addr, 1)
	defer p.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	resCh := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		st, body, err := p.Do(ctx, OpQuery, []byte("block:drained"))
		if err != nil {
			errCh <- err
			return
		}
		if st != StatusOK {
			errCh <- errors.New("status " + st.String())
			return
		}
		resCh <- body
	}()

	// Wait until the request is parked in the handler.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().FramesIn < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	time.Sleep(20 * time.Millisecond) // shutdown is now waiting on the handler
	close(h.release)                  // let the in-flight request finish

	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("in-flight request lost during drain: %v", err)
	case body := <-resCh:
		if !bytes.Equal(body, []byte("drained")) {
			t.Fatalf("drained response %q", body)
		}
	}

	// New connections are refused after drain.
	p2 := NewPool("tcp", addr, 1)
	defer p2.Close()
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, _, err := p2.Do(dctx, OpQuery, []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("post-shutdown dial: %v", err)
	}
}

// TestShutdownTimeoutFallsBackToClose: a handler that never finishes
// must not wedge Shutdown — the ctx deadline forces the abrupt path.
func TestShutdownTimeoutFallsBackToClose(t *testing.T) {
	h := &echoHandler{release: make(chan struct{})}
	defer close(h.release)
	srv, addr := startServer(t, h)
	p := NewPool("tcp", addr, 1)
	defer p.Close()
	ctx := context.Background()

	go p.Do(ctx, OpQuery, []byte("block:never"))
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().FramesIn < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck shutdown returned %v, want deadline", err)
	}
}
