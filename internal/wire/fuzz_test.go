package wire

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"planarflow/internal/obs"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed FuzzDecodeFrame seed corpus")

// fuzzSeeds are the interesting frame shapes the fuzzer starts from: a
// valid request, a valid response, every rejection class (truncations at
// both depths, flipped payload and CRC bytes, foreign magic, future
// version, unknown kind, oversized length prefix), plus the version-2
// trace-carrying shapes (valid, truncated inside the trace block, trace
// byte flipped under the CRC).
func fuzzSeeds(t testing.TB) map[string][]byte {
	valid, err := AppendFrame(nil, uint8(OpQuery), 42, []byte(`{"graph":"g","op":"dist","u":0,"v":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := AppendFrame(nil, respBit|uint8(StatusOK), 42, []byte(`{"value":7}`))
	if err != nil {
		t.Fatal(err)
	}
	tc := obs.TraceContext{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210, Parent: 0x1122334455667788, Hop: 2}
	traced, err := AppendTracedFrame(nil, uint8(OpQueryB), 43, tc, []byte{0x01, 0x02, 0x03})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(i int, x byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= x
		return b
	}
	mutTraced := func(i int, x byte) []byte {
		b := append([]byte(nil), traced...)
		b[i] ^= x
		return b
	}
	oversize := append([]byte(nil), valid...)
	oversize[12], oversize[13], oversize[14], oversize[15] = 0xff, 0xff, 0xff, 0xff
	return map[string][]byte{
		"valid-query":      valid,
		"valid-response":   resp,
		"empty":            {},
		"truncated-header": valid[:HeaderLen/2],
		"truncated-body":   valid[:len(valid)-3],
		"bad-magic":        mut(0, 0xff),
		"future-version":   mut(2, 0x07),
		"bad-kind":         mut(3, 0x55),
		"flipped-payload":  mut(HeaderLen+2, 0x10),
		"flipped-crc":      mut(len(valid)-1, 0x01),
		"oversized-length": oversize,
		"two-frames":       append(append([]byte(nil), valid...), resp...),
		"traced-query":     traced,
		"traced-truncated": traced[:HeaderLen+traceLen/2],
		"traced-flipped":   mutTraced(HeaderLen+4, 0x20),
	}
}

// TestWriteSeedCorpus (with -update-corpus) materializes the seeds as
// committed corpus files under testdata/fuzz/FuzzDecodeFrame so the
// regular `go test` run replays them and CI fuzzing starts warm.
func TestWriteSeedCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update-corpus to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := fuzzSeeds(t)
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus seeds to %s", len(seeds), dir)
}

// FuzzDecodeFrame holds the frame decoder to its contract: any byte
// string either decodes to a frame that re-encodes byte-identically, or
// fails with exactly one typed sentinel — never a panic — and the
// decoder touches nothing beyond the bytes in hand (the declared length
// is validated against the remaining input before the payload is
// viewed, mirroring the snapshot codec's discipline).
func FuzzDecodeFrame(f *testing.F) {
	for _, data := range fuzzSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrBadKind) && !errors.Is(err, ErrOversize) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n < HeaderLen+crcLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(frame.Payload) > MaxPayload {
			t.Fatalf("payload %d exceeds cap", len(frame.Payload))
		}
		// decode∘encode is the identity on the consumed prefix, through
		// the encoder matching the frame's version.
		var re []byte
		if frame.Version == VersionTrace {
			re, err = AppendTracedFrame(nil, frame.Kind, frame.ID, frame.Trace, frame.Payload)
		} else {
			re, err = AppendFrame(nil, frame.Kind, frame.ID, frame.Payload)
		}
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode diverged from input prefix")
		}
	})
}
