package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"planarflow/internal/obs"
)

// mWriteDwell measures how long a finished response sits in the
// connection's write queue before the writer encodes it — the price of
// write coalescing, visible nowhere else (the frame outlives its span).
var mWriteDwell = obs.Default().Histogram("wire_write_queue_seconds",
	"Server response dwell in the per-connection write queue before encoding.")

// maxConnWorkers bounds how many handler goroutines one connection may
// have in flight. A pipelined client controls its own window; this cap
// is the server-side backstop — past it the reader loop stops pulling
// frames and TCP backpressure does the rest.
const maxConnWorkers = 128

// respChanCap sizes each connection's response queue. Responses are
// produced by at most maxConnWorkers handlers, so the writer goroutine
// can never deadlock against a full queue.
const respChanCap = maxConnWorkers + 8

// Handler executes one request frame's payload and returns the response
// status and payload. The wire server is transport only: it never looks
// inside payloads, so a Handler carries all the semantics (flowd's
// Server implements it over the JSON bodies the HTTP plane uses).
//
// ctx is canceled when the connection drops or the server shuts down,
// letting in-flight queries abandon substrate builds at their usual
// checkpoints. id is the request frame's id — stable for the frame's
// lifetime, which makes it the natural per-request trace key.
type Handler interface {
	ServeFrame(ctx context.Context, op Op, id uint64, payload []byte) (Status, []byte)
}

// Server serves the framed protocol over any set of listeners (TCP and
// Unix-domain sockets in flowd). One reader goroutine per connection
// feeds handler goroutines; responses multiplex back over a per-conn
// writer that coalesces frames between flushes, so out-of-order
// completion is the normal case, matched by request id.
type Server struct {
	h   Handler
	ctr Counters

	mu       sync.Mutex
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	wg       sync.WaitGroup

	// baseCtx parents every handler context; Close cancels it, so even a
	// drain that degrades to an abrupt Close (Shutdown past its deadline)
	// can cut loose handlers the drain path is still waiting on.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// NewServer wraps h in a frame server.
func NewServer(h Handler) *Server {
	s := &Server{h: h, lns: make(map[net.Listener]struct{}), conns: make(map[net.Conn]struct{})}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Stats snapshots the server's transport counters.
func (s *Server) Stats() Stats { return s.ctr.Snapshot() }

// Counters exposes the live counters (flowd adds coalesced-batch sizes
// observed while decoding OpBatch frames).
func (s *Server) Counters() *Counters { return &s.ctr }

// ErrServerClosed is returned by Serve after Close, mirroring
// http.ErrServerClosed so callers can treat shutdown as clean.
var ErrServerClosed = errors.New("wire: server closed")

// Serve accepts connections on ln until Close (or a listener error) and
// blocks for as long as it serves. One Server may serve any number of
// listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.ctr.connsTotal.Add(1)
		s.ctr.connsOpen.Add(1)
		go s.serveConn(nc)
	}
}

// Close shuts the server down: listeners and connections close, in-flight
// handler contexts cancel, and Close returns once every connection
// goroutine has drained.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	return nil
}

// closeReader is the half-close surface TCP and Unix-domain connections
// share: CloseRead shuts the inbound direction so the peer's next write
// fails and our reader sees EOF, while queued responses still flush out
// the other direction.
type closeReader interface{ CloseRead() error }

// Shutdown drains the server gracefully: listeners stop accepting, every
// connection's read side closes (no new requests enter), in-flight
// handlers run to completion and their responses flush, and then the
// connections close. If ctx expires first, Shutdown falls back to the
// abrupt Close. Returns nil on a clean drain, ctx.Err() on timeout.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for ln := range s.lns {
		ln.Close()
	}
	for nc := range s.conns {
		if cr, ok := nc.(closeReader); ok {
			cr.CloseRead()
		} else {
			nc.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.Close()
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	}
}

// drainActive reports whether a graceful drain is in progress.
func (s *Server) drainActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// outFrame is one response queued for a connection's writer.
type outFrame struct {
	kind    uint8
	id      uint64
	payload []byte
	enq     time.Time // when the handler queued it (write dwell)
}

// serveConn runs one connection: a reader loop dispatching handler
// goroutines (bounded by maxConnWorkers) and a writer goroutine
// multiplexing their responses back in completion order.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(s.baseCtx)
	out := make(chan outFrame, respChanCap)
	writerDone := make(chan struct{})
	go s.connWriter(nc, out, writerDone)

	var handlers sync.WaitGroup
	sem := make(chan struct{}, maxConnWorkers)
	br := bufio.NewReaderSize(nc, 1<<16)
	var readErr error
	for {
		f, err := ReadFrame(br)
		if err != nil {
			readErr = err
			break
		}
		if f.IsResponse() {
			readErr = fmt.Errorf("%w: response frame 0x%02x on the request direction", ErrBadKind, f.Kind)
			break
		}
		s.ctr.noteFrameIn(len(f.Payload))
		sem <- struct{}{}
		handlers.Add(1)
		go func(f Frame) {
			defer handlers.Done()
			defer func() { <-sem }()
			hctx := ctx
			if f.Trace.Valid() {
				hctx = obs.ContextWithTrace(ctx, f.Trace)
			}
			status, payload := s.h.ServeFrame(hctx, f.Op(), f.ID, f.Payload)
			// The writer drains out until every handler is done, so this
			// send cannot block forever even if the conn is already dead.
			out <- outFrame{kind: respBit | uint8(status), id: f.ID, payload: payload, enq: time.Now()}
		}(f)
	}

	// A protocol violation poisons the connection: frame boundaries are
	// untrustworthy after it, so drop the conn rather than resync. Under a
	// graceful drain the reader stopped via the half-close (EOF), and the
	// order inverts: in-flight handlers run to completion, their responses
	// flush, and only then does the socket close — that IS the drain.
	if s.drainActive() {
		handlers.Wait()
		close(out)
		<-writerDone
		cancel()
		nc.Close()
	} else {
		cancel()
		nc.Close() // unblocks nothing here, but stops the writer's net writes cleanly
		handlers.Wait()
		close(out)
		<-writerDone
	}
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.ctr.connsOpen.Add(-1)
	_ = readErr // clean EOF and peer resets end the conn the same way
}

// connWriter multiplexes response frames onto the connection. Frames are
// appended to one buffered writer and flushed only when the queue goes
// idle (or the buffer fills), so a burst of pipelined completions —
// e.g. a decode-engine batch finishing in microseconds — leaves in one
// syscall instead of one per response.
func (s *Server) connWriter(nc net.Conn, out <-chan outFrame, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(nc, 1<<16)
	var scratch []byte
	dead := false
	for f := range out {
		for {
			if !dead {
				mWriteDwell.Observe(time.Since(f.enq))
				scratch = scratch[:0]
				b, err := AppendFrame(scratch, f.kind, f.id, f.payload)
				if err != nil {
					// Handler payload over MaxPayload: report it in-band so the
					// client is not left waiting on the id.
					b, _ = AppendFrame(scratch, respBit|uint8(StatusInternal), f.id, nil)
				}
				scratch = b
				if _, werr := bw.Write(b); werr != nil {
					dead = true // keep draining so handlers never block
				} else {
					s.ctr.noteFrameOut(len(f.payload))
				}
			}
			// Coalesce: keep encoding while more responses are ready. The
			// queue looking empty right after a frame is usually scheduling,
			// not idleness (handler completions ready this goroutine
			// instantly); one yield lets them land before the flush syscall
			// is paid.
			nf, ok, idle := recvFrame(out)
			if idle {
				runtime.Gosched()
				nf, ok, idle = recvFrame(out)
			}
			if idle {
				break
			}
			if !ok {
				if !dead {
					bw.Flush()
					s.ctr.flushes.Add(1)
				}
				return
			}
			f = nf
		}
		if !dead {
			if err := bw.Flush(); err != nil {
				dead = true
			} else {
				s.ctr.flushes.Add(1)
			}
		}
	}
}

// recvFrame is a nonblocking receive: (frame, channel-open, queue-idle).
func recvFrame(out <-chan outFrame) (outFrame, bool, bool) {
	select {
	case f, ok := <-out:
		return f, ok, false
	default:
		return outFrame{}, true, true
	}
}

// isClosedConn reports errors that just mean "the peer went away".
func isClosedConn(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}
