package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoHandler answers every frame with its own payload. Payloads of the
// form "sleep:<dur>:<body>" park in the handler for dur first (or until
// ctx cancels), and "block:<body>" parks until release closes — the
// knobs the pipelining and cancellation tests turn.
type echoHandler struct {
	release chan struct{}
}

func (h *echoHandler) ServeFrame(ctx context.Context, op Op, id uint64, payload []byte) (Status, []byte) {
	if op == OpPing {
		return StatusOK, []byte("pong")
	}
	s := string(payload)
	if rest, ok := strings.CutPrefix(s, "sleep:"); ok {
		durStr, body, _ := strings.Cut(rest, ":")
		d, _ := time.ParseDuration(durStr)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return StatusCanceled, []byte("canceled")
		}
		return StatusOK, []byte(body)
	}
	if body, ok := strings.CutPrefix(s, "block:"); ok {
		select {
		case <-h.release:
		case <-ctx.Done():
			return StatusCanceled, []byte("canceled")
		}
		return StatusOK, []byte(body)
	}
	return StatusOK, payload
}

// startServer serves h on an ephemeral loopback TCP listener.
func startServer(t *testing.T, h Handler) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(h)
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestPoolEchoTCPAndUnix(t *testing.T) {
	h := &echoHandler{}
	_, addr := startServer(t, h)
	uds := filepath.Join(t.TempDir(), "wire.sock")
	uln, err := net.Listen("unix", uds)
	if err != nil {
		t.Fatal(err)
	}
	us := NewServer(h)
	go us.Serve(uln)
	t.Cleanup(func() { us.Close() })

	ctx := context.Background()
	for _, tc := range []struct{ network, target string }{{"tcp", addr}, {"unix", uds}} {
		p := NewPool(tc.network, tc.target, 2)
		if err := p.Ping(ctx); err != nil {
			t.Fatalf("%s: %v", tc.network, err)
		}
		status, payload, err := p.Do(ctx, OpQuery, []byte("hello"))
		if err != nil || status != StatusOK || string(payload) != "hello" {
			t.Fatalf("%s: echo = (%v, %q, %v)", tc.network, status, payload, err)
		}
		p.Close()
		if _, _, err := p.Do(ctx, OpQuery, []byte("x")); !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("%s: after close err = %v, want ErrPoolClosed", tc.network, err)
		}
	}
}

// TestPipeliningOutOfOrder issues requests with inverted latencies over
// one connection: the first request sleeps longest, so responses must
// come back out of submission order and still land on the right waiters.
func TestPipeliningOutOfOrder(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	p := NewPool("tcp", addr, 1) // one conn: ordering pressure is maximal
	defer p.Close()
	ctx := context.Background()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sleep := time.Duration(n-i) * 20 * time.Millisecond
			want := "r" + strconv.Itoa(i)
			payload := fmt.Sprintf("sleep:%s:%s", sleep, want)
			status, resp, err := p.Do(ctx, OpQuery, []byte(payload))
			if err != nil || status != StatusOK || string(resp) != want {
				errs[i] = fmt.Errorf("req %d: (%v, %q, %v)", i, status, resp, err)
				return
			}
			order <- i
		}(i)
	}
	wg.Wait()
	close(order)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	for i := range order {
		got = append(got, i)
	}
	if len(got) != n {
		t.Fatalf("completed %d of %d", len(got), n)
	}
	// With a 20ms latency ladder the completion order must be roughly the
	// reverse of submission; it being exactly ascending would mean the
	// transport serialized the requests.
	if got[0] == 0 && got[1] == 1 && got[2] == 2 {
		t.Fatalf("responses completed in submission order %v — no pipelining", got)
	}
	if p.Stats().FramesIn != int64(n) {
		t.Fatalf("frames_in = %d, want %d", p.Stats().FramesIn, n)
	}
}

// TestCancellationFailsExactlyThoseRequests pins the cancellation
// contract: with N requests in flight, canceling K of their contexts
// fails exactly those K with context.Canceled while the rest complete
// normally on the same connection.
func TestCancellationFailsExactlyThoseRequests(t *testing.T) {
	h := &echoHandler{release: make(chan struct{})}
	_, addr := startServer(t, h)
	p := NewPool("tcp", addr, 1)
	defer p.Close()

	const n, k = 6, 3
	cancelCtx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i < k {
				ctx = cancelCtx
			}
			started <- struct{}{}
			_, resp, err := p.Do(ctx, OpQuery, []byte("block:done"))
			if err == nil && string(resp) != "done" {
				err = fmt.Errorf("bad payload %q", resp)
			}
			errs[i] = err
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	time.Sleep(50 * time.Millisecond) // let all n block server-side
	cancel()
	time.Sleep(50 * time.Millisecond) // canceled waiters return, others still blocked
	close(h.release)
	wg.Wait()

	for i, err := range errs {
		if i < k {
			if !errors.Is(err, context.Canceled) {
				t.Errorf("canceled req %d: err = %v, want context.Canceled", i, err)
			}
		} else if err != nil {
			t.Errorf("live req %d: err = %v, want success", i, err)
		}
	}

	// The connection survives cancellations: an immediate follow-up works.
	status, resp, err := p.Do(context.Background(), OpQuery, []byte("after"))
	if err != nil || status != StatusOK || string(resp) != "after" {
		t.Fatalf("post-cancel echo = (%v, %q, %v)", status, resp, err)
	}
	if got := p.Stats().ConnsTotal; got != 1 {
		t.Fatalf("conns_total = %d, want 1 (no redial after cancels)", got)
	}
}

// TestConnDeathFailsInFlightAndPoolRedials pins the failure contract: a
// dropped connection fails every in-flight request with ErrConnClosed
// (not a hang, not context.Canceled), and the pool replaces the dead
// connection on next use.
func TestConnDeathFailsInFlightAndPoolRedials(t *testing.T) {
	h := &echoHandler{release: make(chan struct{})}
	srv, addr := startServer(t, h)
	p := NewPool("tcp", addr, 1)
	defer p.Close()

	const n = 5
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = p.Do(context.Background(), OpQuery, []byte("block:x"))
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // all n in flight
	srv.Close()                       // kills the conn server-side mid-pipeline
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrConnClosed) {
			t.Errorf("in-flight req %d: err = %v, want ErrConnClosed", i, err)
		}
	}

	// Server returns on the same address; the pool's next use must dial a
	// fresh connection and succeed.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(&echoHandler{})
	go srv2.Serve(ln)
	defer srv2.Close()
	status, resp, err := p.Do(context.Background(), OpQuery, []byte("reborn"))
	if err != nil || status != StatusOK || string(resp) != "reborn" {
		t.Fatalf("post-death echo = (%v, %q, %v)", status, resp, err)
	}
	if got := p.Stats().ConnsTotal; got != 2 {
		t.Fatalf("conns_total = %d, want 2 (one redial)", got)
	}
}

// TestServerRejectsGarbageConn: a connection speaking not-the-protocol
// is dropped without taking the server down.
func TestServerRejectsGarbageConn(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	buf := make([]byte, 1)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered a garbage connection instead of dropping it")
	}
	nc.Close()

	// The listener is still alive for well-formed peers.
	p := NewPool("tcp", addr, 1)
	defer p.Close()
	if err := p.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWriteCoalescing: a pipelined burst reaches the server in far
// fewer flushes than frames, and the server's responses coalesce too.
func TestWriteCoalescing(t *testing.T) {
	srv, addr := startServer(t, &echoHandler{})
	p := NewPool("tcp", addr, 1)
	defer p.Close()
	ctx := context.Background()

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Do(ctx, OpQuery, []byte(strconv.Itoa(i)))
		}(i)
	}
	wg.Wait()
	cs, ss := p.Stats(), srv.Stats()
	if cs.FramesOut != n || ss.FramesIn != n || ss.FramesOut != n || cs.FramesIn != n {
		t.Fatalf("frame counts client=%+v server=%+v", cs, ss)
	}
	if cs.BytesOut == 0 || ss.BytesIn != cs.BytesOut {
		t.Fatalf("byte accounting client out=%d server in=%d", cs.BytesOut, ss.BytesIn)
	}
	// Not a tight bound (scheduling-dependent), but if every frame cost
	// its own flush the transport isn't coalescing at all.
	if cs.Flushes >= n || ss.Flushes >= n {
		t.Logf("weak coalescing: client flushes=%d server flushes=%d for %d frames", cs.Flushes, ss.Flushes, n)
	}
}

func TestCountersCoalesced(t *testing.T) {
	var c Counters
	c.AddCoalesced(1) // not a fold
	c.AddCoalesced(4)
	c.AddCoalesced(9)
	c.AddCoalesced(2)
	s := c.Snapshot()
	if s.CoalescedBatches != 3 || s.CoalescedQueries != 15 || s.CoalescedMax != 9 {
		t.Fatalf("coalesced counters %+v", s)
	}
}
