package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPoolClosed reports use of a closed pool.
var ErrPoolClosed = errors.New("wire: pool closed")

// ErrUnavailable is the typed "replica down" sentinel: every dial
// failure wraps it, so a caller (the fleet client) can distinguish a
// dead or unreachable server from a request the server rejected —
// without string matching. ErrConnClosed (an established connection
// dying mid-flight) is the same class from the routing point of view;
// classify with errors.Is against both.
var ErrUnavailable = errors.New("wire: server unavailable")

// DefaultPoolSize is the connection count NewPool uses for size <= 0:
// enough parallelism for a multi-core server while a single pipelined
// connection still carries most loads.
const DefaultPoolSize = 4

// Pool is the client side of the transport: a fixed set of lazily
// dialed connections, each pipelining many in-flight requests, with
// round-robin placement. A connection that dies fails its in-flight
// requests with ErrConnClosed and is replaced on the next use of its
// slot — the pool itself never retries (a query may have executed
// server-side; retry policy belongs to the caller).
type Pool struct {
	network string
	addr    string
	size    int
	ctr     Counters

	rr     atomic.Uint64
	mu     sync.Mutex
	conns  []*Conn
	closed bool

	sweepStop chan struct{} // non-nil once StartHealthSweep ran
}

// NewPool targets a frame server at network/addr ("tcp" host:port, or
// "unix" socket path) with size connections (size <= 0 means
// DefaultPoolSize). Dialing is lazy: a pool against a dead server costs
// nothing until used.
func NewPool(network, addr string, size int) *Pool {
	if size <= 0 {
		size = DefaultPoolSize
	}
	return &Pool{network: network, addr: addr, size: size, conns: make([]*Conn, size)}
}

// Stats snapshots the pool's transport counters (shared by all its
// connections and the flowd coalescer above it).
func (p *Pool) Stats() Stats { return p.ctr.Snapshot() }

// Counters exposes the live counters for layers above the pool.
func (p *Pool) Counters() *Counters { return &p.ctr }

// conn returns the slot's connection, dialing (or re-dialing a dead
// one) as needed.
func (p *Pool) conn(slot int) (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	c := p.conns[slot]
	if c != nil && !c.isDead() {
		return c, nil
	}
	nc, err := dialConn(p.network, p.addr, &p.ctr)
	if err != nil {
		return nil, err
	}
	p.conns[slot] = nc
	return nc, nil
}

// Do sends one request over the next connection in round-robin order
// and waits for its response. Requests from concurrent callers pipeline
// freely over the same connections.
func (p *Pool) Do(ctx context.Context, op Op, payload []byte) (Status, []byte, error) {
	slot := int(p.rr.Add(1)-1) % p.size
	c, err := p.conn(slot)
	if err != nil {
		return 0, nil, err
	}
	return c.Do(ctx, op, payload)
}

// Ping round-trips an empty OpPing frame, verifying the transport and
// the server's handler loop end to end.
func (p *Pool) Ping(ctx context.Context) error {
	status, _, err := p.Do(ctx, OpPing, nil)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("wire: ping status %s", status)
	}
	return nil
}

// DefaultSweepTimeout bounds one health-sweep ping. A healthy server
// answers OpPing in microseconds; a second of silence on an established
// connection means the peer is gone (or wedged past usefulness) either
// way.
const DefaultSweepTimeout = time.Second

// StartHealthSweep starts a background dead-connection sweep: every
// interval, each established connection is pinged with a
// DefaultSweepTimeout budget, and a connection that fails its ping is
// failed outright (in-flight requests get ErrConnClosed; the slot
// redials on next use). This catches silently dead peers — half-open
// TCP after a crashed server, a wedged handler loop — that would
// otherwise surface only as a hung request. Idempotent; the sweep stops
// when the pool closes.
func (p *Pool) StartHealthSweep(interval time.Duration) {
	if interval <= 0 {
		return
	}
	p.mu.Lock()
	if p.closed || p.sweepStop != nil {
		p.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	p.sweepStop = stop
	p.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.sweep()
			}
		}
	}()
}

// sweep pings every established, not-yet-dead connection and fails the
// ones that do not answer. Only existing connections are probed — the
// sweep never dials (a lazily unused slot costs nothing, dead or not).
func (p *Pool) sweep() {
	p.mu.Lock()
	conns := make([]*Conn, 0, len(p.conns))
	for _, c := range p.conns {
		if c != nil && !c.isDead() {
			conns = append(conns, c)
		}
	}
	p.mu.Unlock()
	for _, c := range conns {
		ctx, cancel := context.WithTimeout(context.Background(), DefaultSweepTimeout)
		status, _, err := c.Do(ctx, OpPing, nil)
		cancel()
		if err != nil || status != StatusOK {
			cause := err
			if cause == nil {
				cause = fmt.Errorf("health sweep: ping status %s", status)
			}
			c.fail(fmt.Errorf("health sweep: %w", cause))
		}
	}
}

// Close closes every connection; in-flight requests fail with
// ErrConnClosed and subsequent calls fail with ErrPoolClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.sweepStop != nil {
		close(p.sweepStop)
		p.sweepStop = nil
	}
	for _, c := range p.conns {
		if c != nil {
			c.Close()
		}
	}
	return nil
}
