package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"planarflow/internal/obs"
)

// ErrConnClosed is the typed sentinel every request in flight on a
// connection fails with when that connection dies — peer reset, protocol
// violation, or local Close. The pool replaces a dead connection on its
// next use, so callers distinguishing "my request was canceled"
// (context.Canceled) from "the transport dropped" (ErrConnClosed) can
// retry idempotent work on the latter.
var ErrConnClosed = errors.New("wire: connection closed")

// pendingResult is what a waiter receives: a response frame's status and
// payload, or the connection's terminal error.
type pendingResult struct {
	status  Status
	payload []byte
	err     error
}

// Conn is one client connection: a writer goroutine coalescing request
// frames, a reader goroutine demultiplexing responses by request id, and
// a pending table of waiters. Many requests may be in flight at once
// (true pipelining); responses complete out of order.
type Conn struct {
	nc  net.Conn
	ctr *Counters

	nextID atomic.Uint64
	wch    chan []byte

	mu   sync.Mutex
	pend map[uint64]chan pendingResult
	err  error // set once, before pend is drained

	dead      chan struct{}
	deadOnce  sync.Once
	writerEnd chan struct{}
}

// dialConn opens one connection ("tcp" host:port, or "unix" socket
// path) and starts its reader/writer goroutines. ctr may be shared
// across a pool.
func dialConn(network, addr string, ctr *Counters) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s %s: %v", ErrUnavailable, network, addr, err)
	}
	c := &Conn{
		nc:        nc,
		ctr:       ctr,
		wch:       make(chan []byte, 256),
		pend:      make(map[uint64]chan pendingResult),
		dead:      make(chan struct{}),
		writerEnd: make(chan struct{}),
	}
	ctr.connsTotal.Add(1)
	ctr.connsOpen.Add(1)
	go c.readLoop()
	go c.writeLoop()
	return c, nil
}

// Do sends one request and waits for its response, honoring ctx while
// any number of other requests share the connection. On ctx
// cancellation exactly this request fails (with ctx.Err()); its id is
// forgotten and a late response is discarded. On connection death every
// in-flight request fails with an error wrapping ErrConnClosed.
func (c *Conn) Do(ctx context.Context, op Op, payload []byte) (Status, []byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan pendingResult, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	c.pend[id] = ch
	c.mu.Unlock()

	// A trace context on ctx rides the frame's version-2 trace block;
	// untraced requests stay version 1, byte-identical to old peers.
	var frame []byte
	var err error
	if tc, ok := obs.TraceFromContext(ctx); ok {
		frame, err = AppendTracedFrame(nil, uint8(op), id, tc, payload)
	} else {
		frame, err = AppendFrame(nil, uint8(op), id, payload)
	}
	if err != nil {
		c.forget(id)
		return 0, nil, err
	}
	select {
	case c.wch <- frame:
	case <-c.dead:
		c.forget(id)
		return 0, nil, c.failure()
	case <-ctx.Done():
		c.forget(id)
		return 0, nil, ctx.Err()
	}
	c.ctr.noteFrameOut(len(payload))

	select {
	case r := <-ch:
		return r.status, r.payload, r.err
	case <-ctx.Done():
		c.forget(id)
		return 0, nil, ctx.Err()
	}
}

// forget drops a pending id (cancellation, send failure). A response
// that arrives later finds no waiter and is discarded by the reader.
func (c *Conn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pend, id)
	c.mu.Unlock()
}

// failure returns the terminal error, which is always set by the time
// dead is closed.
func (c *Conn) failure() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail terminates the connection once: records the error, closes the
// socket and the dead gate, and fails every pending waiter.
func (c *Conn) fail(cause error) {
	c.deadOnce.Do(func() {
		err := fmt.Errorf("%w: %v", ErrConnClosed, cause)
		c.mu.Lock()
		c.err = err
		pend := c.pend
		c.pend = make(map[uint64]chan pendingResult)
		c.mu.Unlock()
		c.nc.Close()
		close(c.dead)
		for _, ch := range pend {
			ch <- pendingResult{err: err} // cap 1: never blocks
		}
		c.ctr.connsOpen.Add(-1)
	})
}

// Close tears the connection down; in-flight requests fail with
// ErrConnClosed.
func (c *Conn) Close() error {
	c.fail(errors.New("closed by client"))
	return nil
}

// isDead reports whether the connection has failed.
func (c *Conn) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// readLoop demultiplexes response frames to their waiters by id.
func (c *Conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 1<<16)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		if !f.IsResponse() {
			c.fail(fmt.Errorf("%w: request frame 0x%02x on the response direction", ErrBadKind, f.Kind))
			return
		}
		c.ctr.noteFrameIn(len(f.Payload))
		c.mu.Lock()
		ch := c.pend[f.ID]
		delete(c.pend, f.ID)
		c.mu.Unlock()
		if ch == nil {
			continue // canceled request's late response: discard
		}
		// ReadFrame's payload is freshly allocated per frame, so handing it
		// off without a copy is safe.
		ch <- pendingResult{status: f.Status(), payload: f.Payload}
	}
}

// writeLoop coalesces queued request frames: everything ready is
// appended to one buffered writer, flushed when the queue goes idle. A
// pipelined caller fan-in of N requests typically costs one syscall,
// not N.
//
// "Idle" is checked after one scheduler yield: a send into wch readies
// this goroutine immediately, so on a busy box (especially one core) the
// queue looks empty after every single frame while N senders stand
// ready to refill it. Yielding once lets them run; only a queue still
// empty after that pays the flush syscall.
func (c *Conn) writeLoop() {
	defer close(c.writerEnd)
	bw := bufio.NewWriterSize(c.nc, 1<<16)
	for {
		var frame []byte
		select {
		case frame = <-c.wch:
		case <-c.dead:
			return
		}
		for frame != nil {
			if _, err := bw.Write(frame); err != nil {
				c.fail(err)
				return
			}
			select {
			case frame = <-c.wch:
				continue
			default:
			}
			runtime.Gosched()
			select {
			case frame = <-c.wch:
			default:
				frame = nil
			}
		}
		if err := bw.Flush(); err != nil {
			c.fail(err)
			return
		}
		c.ctr.flushes.Add(1)
	}
}
