package wire

import (
	"sync/atomic"

	"planarflow/internal/obs"
)

// Counters is the transport's observability surface: lock-free counts
// bumped on the hot path by servers, client pools and the flowd
// micro-coalescer, snapshotted into Stats for /statsz. A zero Counters
// is ready to use.
type Counters struct {
	connsOpen  atomic.Int64
	connsTotal atomic.Int64
	framesIn   atomic.Int64
	framesOut  atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	flushes    atomic.Int64

	coalescedBatches atomic.Int64
	coalescedQueries atomic.Int64
	coalescedMax     atomic.Int64
}

// Stats is one JSON-friendly snapshot of a Counters.
type Stats struct {
	// ConnsOpen / ConnsTotal: currently open and lifetime-accepted (or
	// dialed) connections.
	ConnsOpen  int64 `json:"conns_open"`
	ConnsTotal int64 `json:"conns_total"`
	// Frame and byte totals, both directions, at frame granularity
	// (header + payload + CRC).
	FramesIn  int64 `json:"frames_in"`
	FramesOut int64 `json:"frames_out"`
	BytesIn   int64 `json:"bytes_in"`
	BytesOut  int64 `json:"bytes_out"`
	// Flushes counts writer syscalls; FramesOut/Flushes is the write
	// coalescing factor a pipelined load achieves.
	Flushes int64 `json:"flushes"`
	// Coalesced batch shape: how many multi-query batch frames were
	// formed, the total singleton queries folded into them, and the
	// largest fold observed. Bumped by whichever side observes the fold
	// (the client's micro-coalescer, or the server decoding OpBatch).
	CoalescedBatches int64 `json:"coalesced_batches"`
	CoalescedQueries int64 `json:"coalesced_queries"`
	CoalescedMax     int64 `json:"coalesced_max"`
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Stats {
	return Stats{
		ConnsOpen:        c.connsOpen.Load(),
		ConnsTotal:       c.connsTotal.Load(),
		FramesIn:         c.framesIn.Load(),
		FramesOut:        c.framesOut.Load(),
		BytesIn:          c.bytesIn.Load(),
		BytesOut:         c.bytesOut.Load(),
		Flushes:          c.flushes.Load(),
		CoalescedBatches: c.coalescedBatches.Load(),
		CoalescedQueries: c.coalescedQueries.Load(),
		CoalescedMax:     c.coalescedMax.Load(),
	}
}

// AddCoalesced records one batch frame folding n queries. Singletons
// (n <= 1) are not folds and are not counted.
func (c *Counters) AddCoalesced(n int) {
	if n <= 1 {
		return
	}
	c.coalescedBatches.Add(1)
	c.coalescedQueries.Add(int64(n))
	for {
		cur := c.coalescedMax.Load()
		if int64(n) <= cur || c.coalescedMax.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// RegisterObs exposes these counters on a telemetry registry, read at
// scrape time so the hot path stays a single set of atomic bumps. The
// labels distinguish roles when several Counters (a server, client
// pools) share one registry; re-registering the same labels rebinds the
// series to c.
func (c *Counters) RegisterObs(r *obs.Registry, labels ...obs.Label) {
	ctr := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, v.Load, labels...)
	}
	r.Gauge("wire_conns_open", "Currently open wire connections.",
		func() float64 { return float64(c.connsOpen.Load()) }, labels...)
	ctr("wire_conns_total", "Lifetime accepted (or dialed) wire connections.", &c.connsTotal)
	ctr("wire_frames_in_total", "Frames received.", &c.framesIn)
	ctr("wire_frames_out_total", "Frames sent.", &c.framesOut)
	ctr("wire_bytes_in_total", "Bytes received at frame granularity.", &c.bytesIn)
	ctr("wire_bytes_out_total", "Bytes sent at frame granularity.", &c.bytesOut)
	ctr("wire_flushes_total", "Writer flush syscalls (frames_out/flushes is the coalescing factor).", &c.flushes)
	ctr("wire_coalesced_batches_total", "Multi-query batch frames formed by coalescing.", &c.coalescedBatches)
	ctr("wire_coalesced_queries_total", "Singleton queries folded into coalesced batches.", &c.coalescedQueries)
}

func (c *Counters) noteFrameIn(payloadLen int) {
	c.framesIn.Add(1)
	c.bytesIn.Add(int64(HeaderLen + payloadLen + crcLen))
}

func (c *Counters) noteFrameOut(payloadLen int) {
	c.framesOut.Add(1)
	c.bytesOut.Add(int64(HeaderLen + payloadLen + crcLen))
}
