// Package wire is flowd's binary transport: a length-prefixed,
// CRC-checked framing protocol carried over persistent TCP or
// Unix-domain-socket connections, with out-of-order response
// multiplexing by request id. It exists to close the gap between the
// decode engine (~µs per warm query) and the HTTP/JSON serving path
// (~100µs per round trip): one connection carries many in-flight
// requests, responses return in completion order, and both directions
// coalesce writes at batch boundaries so a pipelined client pays one
// syscall for many frames.
//
// The protocol is pure transport — the JSON ops carry exactly the JSON
// bodies of the corresponding HTTP endpoints (shared strict decoders),
// and the binary ops (OpQueryB/OpBatchB) carry the same request and
// response structs through internal/flowd's hand-written codec, pinned
// bit-identical to the HTTP route by differential tests. Framing and
// encoding cost, not semantics, are what this package buys.
//
// Frame layout (integers little-endian, CRC32-IEEE over everything
// between header and checksum, mirroring the PFSNAP snapshot codec's
// checksum discipline):
//
//	offset size field
//	0      2    magic "PW"
//	2      1    version (1 or 2)
//	3      1    kind: request Op, or 0x80|Status for responses
//	4      8    request id (echoed verbatim in the response frame)
//	12     4    payload length (<= MaxPayload)
//	16     t    trace block (version 2 only, t = 25; absent in version 1)
//	16+t   n    payload
//	16+t+n 4    CRC32(trace block + payload)
//
// Version 2 frames carry a distributed-trace context between the
// header and the payload: 8-byte trace-id high half, 8-byte low half,
// 8-byte parent span id, 1-byte hop count. Both versions decode;
// AppendFrame still emits version 1 (responses and untraced requests
// stay byte-identical to old peers), AppendTracedFrame emits version 2.
//
// Every decode failure is a typed sentinel (ErrBadMagic, ErrVersion,
// ErrBadKind, ErrOversize, ErrTruncated, ErrChecksum); decoding never
// panics and never allocates more than the input in hand justifies —
// the fuzz harness holds it to that.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"planarflow/internal/obs"
)

// Version is the base protocol version (traceless frames). Peers
// accept Version and VersionTrace and reject anything else: the
// protocol has no negotiation — any other version is a fleet upgrade.
const Version = 1

// VersionTrace is the trace-carrying frame version: identical layout
// with a 25-byte trace block between header and payload.
const VersionTrace = 2

// HeaderLen is the fixed frame header size preceding the payload.
const HeaderLen = 16

// traceLen is the version-2 trace block: trace id hi/lo, parent span
// id, hop count.
const traceLen = 8 + 8 + 8 + 1

// crcLen trails every payload.
const crcLen = 4

// MaxPayload caps one frame's payload, matching the HTTP plane's body
// cap: queries and answers are small, and a length prefix read off an
// untrusted connection must never size an unbounded allocation.
const MaxPayload = 1 << 20

var frameMagic = [2]byte{'P', 'W'}

// Op is a request frame's operation.
type Op uint8

const (
	// OpQuery carries a flowd QueryRequest JSON body (POST /v1/query).
	OpQuery Op = 1
	// OpBatch carries a flowd BatchRequest JSON body (POST /v1/batch).
	OpBatch Op = 2
	// OpPing is the liveness probe (GET /healthz); its payload is empty.
	OpPing Op = 3
	// OpQueryB is OpQuery with the compact binary payload codec
	// (internal/flowd's wirecodec) instead of JSON — same request, same
	// answer, a fraction of the encode/decode cost. Error responses
	// (status != OK) carry the JSON error body on every op.
	OpQueryB Op = 4
	// OpBatchB is OpBatch with the binary payload codec.
	OpBatchB Op = 5
	// OpSnapB requests a prepared-substrate snapshot: the payload is the
	// raw graph-id bytes, the response a snapstream-framed PFSNAP blob
	// (internal/flowd's snapshot-stream codec) — the peer-to-peer restore
	// path of the fleet plane. Snapshots over MaxPayload answer
	// StatusOverload; the caller falls back to the HTTP endpoint, which
	// has no frame cap.
	OpSnapB Op = 6

	maxOp = 6
)

// Status is a response frame's outcome, the wire projection of the HTTP
// status the same request would have drawn (the mapping table lives in
// DESIGN.md and statusOf/wireStatusOf in internal/flowd).
type Status uint8

const (
	StatusOK         Status = 0
	StatusBadRequest Status = 1 // 400
	StatusNotFound   Status = 2 // 404
	StatusConflict   Status = 3 // 409
	StatusOverload   Status = 4 // 429
	StatusCanceled   Status = 5 // 499
	StatusTimeout    Status = 6 // 504
	StatusInternal   Status = 7 // 500

	maxStatus = 7
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusNotFound:
		return "not-found"
	case StatusConflict:
		return "conflict"
	case StatusOverload:
		return "overload"
	case StatusCanceled:
		return "canceled"
	case StatusTimeout:
		return "timeout"
	case StatusInternal:
		return "internal"
	}
	return fmt.Sprintf("status-%d", uint8(s))
}

// respBit marks the kind byte of response frames.
const respBit = 0x80

// Typed sentinel errors. Every frame decode failure wraps exactly one.
var (
	// ErrBadMagic reports bytes that are not a wire frame at all.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion reports a protocol version this build does not speak.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrBadKind reports an unknown op or status byte.
	ErrBadKind = errors.New("wire: unknown frame kind")
	// ErrOversize reports a length prefix exceeding MaxPayload.
	ErrOversize = errors.New("wire: frame payload exceeds cap")
	// ErrTruncated reports input that ends before the declared frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrChecksum reports a payload whose CRC does not match.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
)

// Frame is one decoded frame. Kind is a request Op for request frames
// and respBit|Status for response frames. Version records which frame
// version carried it; Trace is the propagated trace context and is the
// zero (invalid) context on version-1 frames.
type Frame struct {
	Kind    uint8
	ID      uint64
	Version uint8
	Trace   obs.TraceContext
	Payload []byte
}

// IsResponse reports whether the frame travels server→client.
func (f *Frame) IsResponse() bool { return f.Kind&respBit != 0 }

// Op returns the request operation (meaningful when !IsResponse).
func (f *Frame) Op() Op { return Op(f.Kind) }

// Status returns the response status (meaningful when IsResponse).
func (f *Frame) Status() Status { return Status(f.Kind &^ respBit) }

// validKind accepts known request ops and known response statuses.
func validKind(kind uint8) bool {
	if kind&respBit != 0 {
		return kind&^respBit <= maxStatus
	}
	return kind >= 1 && kind <= maxOp
}

// AppendFrame appends one encoded version-1 (traceless) frame to dst
// and returns the extended slice. It fails only for payloads over
// MaxPayload.
func AppendFrame(dst []byte, kind uint8, id uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d > %d", ErrOversize, len(payload), MaxPayload)
	}
	var hdr [HeaderLen]byte
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = Version
	hdr[3] = kind
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var crc [crcLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(dst, crc[:]...), nil
}

// AppendTracedFrame appends one encoded version-2 frame carrying tc
// between header and payload. The length field still counts only the
// payload; the CRC covers trace block plus payload.
func AppendTracedFrame(dst []byte, kind uint8, id uint64, tc obs.TraceContext, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d > %d", ErrOversize, len(payload), MaxPayload)
	}
	var hdr [HeaderLen + traceLen]byte
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = VersionTrace
	hdr[3] = kind
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	putTrace(hdr[HeaderLen:], tc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(hdr[HeaderLen:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [crcLen]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...), nil
}

func putTrace(b []byte, tc obs.TraceContext) {
	binary.LittleEndian.PutUint64(b[0:8], tc.Hi)
	binary.LittleEndian.PutUint64(b[8:16], tc.Lo)
	binary.LittleEndian.PutUint64(b[16:24], tc.Parent)
	b[24] = tc.Hop
}

func getTrace(b []byte) obs.TraceContext {
	return obs.TraceContext{
		Hi:     binary.LittleEndian.Uint64(b[0:8]),
		Lo:     binary.LittleEndian.Uint64(b[8:16]),
		Parent: binary.LittleEndian.Uint64(b[16:24]),
		Hop:    b[24],
	}
}

// checkHeader validates the fixed 16-byte header and returns the
// frame version and the declared payload length.
func checkHeader(hdr []byte) (uint8, int, error) {
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return 0, 0, ErrBadMagic
	}
	if hdr[2] != Version && hdr[2] != VersionTrace {
		return 0, 0, fmt.Errorf("%w: %d (speak %d and %d)", ErrVersion, hdr[2], Version, VersionTrace)
	}
	if !validKind(hdr[3]) {
		return 0, 0, fmt.Errorf("%w: 0x%02x", ErrBadKind, hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[12:16])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("%w: %d > %d", ErrOversize, n, MaxPayload)
	}
	return hdr[2], int(n), nil
}

// traceExtra is the number of bytes between header and payload for a
// frame version.
func traceExtra(ver uint8) int {
	if ver == VersionTrace {
		return traceLen
	}
	return 0
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b — it
// is a view, not a copy — so decoding allocates nothing and is bounded
// by the bytes already in hand: the declared length is checked against
// both MaxPayload and the remaining input before anything is touched.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen {
		return Frame{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderLen)
	}
	ver, n, err := checkHeader(b[:HeaderLen])
	if err != nil {
		return Frame{}, 0, err
	}
	extra := traceExtra(ver)
	total := HeaderLen + extra + n + crcLen
	if len(b) < total {
		return Frame{}, 0, fmt.Errorf("%w: frame declares %d bytes, %d remain", ErrTruncated, total, len(b))
	}
	body := b[HeaderLen : HeaderLen+extra+n]
	if binary.LittleEndian.Uint32(b[HeaderLen+extra+n:total]) != crc32.ChecksumIEEE(body) {
		return Frame{}, 0, ErrChecksum
	}
	f := Frame{
		Kind:    b[3],
		ID:      binary.LittleEndian.Uint64(b[4:12]),
		Version: ver,
		Payload: body[extra:],
	}
	if extra > 0 {
		f.Trace = getTrace(body)
	}
	return f, total, nil
}

// ReadFrame reads one frame off a connection's buffered reader. The
// payload is freshly allocated (the stream buffer is reused underneath),
// sized by the validated length prefix — never more than MaxPayload.
// io.EOF surfaces untouched when the stream ends cleanly between frames;
// an EOF inside a frame is ErrTruncated.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF between frames
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return Frame{}, truncated(err)
	}
	ver, n, err := checkHeader(hdr[:])
	if err != nil {
		return Frame{}, err
	}
	extra := traceExtra(ver)
	body := make([]byte, extra+n+crcLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return Frame{}, truncated(err)
	}
	checked := body[:extra+n]
	if binary.LittleEndian.Uint32(body[extra+n:]) != crc32.ChecksumIEEE(checked) {
		return Frame{}, ErrChecksum
	}
	f := Frame{
		Kind:    hdr[3],
		ID:      binary.LittleEndian.Uint64(hdr[4:12]),
		Version: ver,
		Payload: checked[extra:],
	}
	if extra > 0 {
		f.Trace = getTrace(checked)
	}
	return f, nil
}

// truncated maps a mid-frame EOF to the sentinel; other I/O errors
// (closed connections, resets) pass through for the caller to classify.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}
