package hatg

import (
	"testing"

	"planarflow/internal/congest"
	"planarflow/internal/planar"
)

// TestHatGDiameterByMessagePassing validates Properties 2–3 of Ĝ with an
// actual CONGEST execution: BFS over Ĝ must finish within ~3D+O(1) measured
// rounds (Ĝ has diameter at most 3D and simulates on G with 2x overhead).
func TestHatGDiameterByMessagePassing(t *testing.T) {
	for _, g := range []*planar.Graph{
		planar.Grid(5, 5),
		planar.Grid(2, 12),
		planar.Cylinder(3, 6),
	} {
		h := New(g)
		adj := make([][]int, h.N())
		for x := 0; x < h.N(); x++ {
			for _, a := range h.Adj(x) {
				adj[x] = append(adj[x], a.To)
			}
		}
		e := congest.NewPortEngine(adj)
		dist, stats := congest.PortBFS(e, 0)
		if stats.Violations != 0 {
			t.Fatalf("violations: %d", stats.Violations)
		}
		d := g.Diameter()
		for x, dx := range dist {
			if dx < 0 {
				t.Fatalf("hatG vertex %d unreachable", x)
			}
			if dx > 3*d+3 {
				t.Fatalf("hatG distance %d exceeds 3D+3 (D=%d)", dx, d)
			}
		}
		if stats.Rounds > 2*(3*d+3)+8 {
			t.Fatalf("rounds=%d for D=%d", stats.Rounds, d)
		}
	}
}
