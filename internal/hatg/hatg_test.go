package hatg

import (
	"testing"

	"planarflow/internal/planar"
)

func families(t *testing.T) map[string]*planar.Graph {
	t.Helper()
	rng := planar.NewRand(5)
	return map[string]*planar.Graph{
		"grid3x3":  planar.Grid(3, 3),
		"grid2x7":  planar.Grid(2, 7),
		"grid6x6":  planar.Grid(6, 6),
		"cyl3x5":   planar.Cylinder(3, 5),
		"stack40":  planar.StackedTriangulation(40, rng),
		"sparse":   planar.RemoveRandomEdges(planar.StackedTriangulation(40, rng), rng, 20),
		"path":     planar.Grid(1, 6),
		"triangle": planar.StackedTriangulation(3, rng),
	}
}

func TestSizes(t *testing.T) {
	for name, g := range families(t) {
		h := New(g)
		if h.N() != g.N()+2*g.M() {
			t.Fatalf("%s: |V(hatG)|=%d want %d", name, h.N(), g.N()+2*g.M())
		}
		// Edge counts: n star-edge groups summing to 2m, 2m ring edges (one
		// per dart), m chords; adjacency double-counts each.
		tot := 0
		for x := 0; x < h.N(); x++ {
			tot += len(h.Adj(x))
		}
		want := 2 * (2*g.M() + 2*g.M() + g.M())
		if tot != want {
			t.Fatalf("%s: arc slots=%d want %d", name, tot, want)
		}
	}
}

func TestFaceCycles(t *testing.T) {
	for name, g := range families(t) {
		h := New(g)
		if err := h.CheckFaceCycles(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestChordsRealizeDualEdges(t *testing.T) {
	for name, g := range families(t) {
		h := New(g)
		du := g.Dual()
		for e := 0; e < g.M(); e++ {
			a, b := h.ChordOf(e)
			fa, fb := h.FaceOfCopy(a), h.FaceOfCopy(b)
			d := planar.ForwardDart(e)
			t1, t2 := du.Tail(d), du.Head(d)
			if !(fa == t1 && fb == t2) && !(fa == t2 && fb == t1) {
				t.Fatalf("%s edge %d: chord spans faces (%d,%d), dual edge is (%d,%d)",
					name, e, fa, fb, t1, t2)
			}
			// Both chord endpoints are copies of the same primal vertex
			// (they simulate the dual edge locally).
			if h.Owner(a) != h.Owner(b) {
				t.Fatalf("%s edge %d: chord endpoints owned by %d and %d",
					name, e, h.Owner(a), h.Owner(b))
			}
		}
	}
}

func TestDiameterAtMost3D(t *testing.T) {
	for name, g := range families(t) {
		if g.N() > 200 {
			continue
		}
		h := New(g)
		hd := 0
		for x := 0; x < h.N(); x++ {
			if d := h.BFSDepth(x); d > hd {
				hd = d
			}
		}
		gd := g.Diameter()
		if hd > 3*gd+3 {
			t.Fatalf("%s: diam(hatG)=%d > 3*%d+3", name, hd, gd)
		}
	}
}

func TestOwnersAndCorners(t *testing.T) {
	g := planar.Grid(3, 4)
	h := New(g)
	for v := 0; v < g.N(); v++ {
		if !h.IsStarCenter(v) || h.Owner(v) != v || h.Corner(v) != -1 {
			t.Fatalf("star center %d misclassified", v)
		}
		for c := 0; c < g.Degree(v); c++ {
			x := h.CopyID(v, c)
			if h.IsStarCenter(x) {
				t.Fatalf("copy %d classified as star center", x)
			}
			if h.Owner(x) != v || h.Corner(x) != c {
				t.Fatalf("copy (%d,%d) -> owner=%d corner=%d", v, c, h.Owner(x), h.Corner(x))
			}
		}
	}
}

func TestCopiesPerFaceMatchBoundaryLength(t *testing.T) {
	// Each face's ring cycle must have exactly as many copies as boundary
	// darts (each dart contributes one corner visit).
	for name, g := range families(t) {
		h := New(g)
		fd := g.Faces()
		cnt := make([]int, fd.NumFaces())
		for x := g.N(); x < h.N(); x++ {
			cnt[h.FaceOfCopy(x)]++
		}
		for f := 0; f < fd.NumFaces(); f++ {
			if cnt[f] != fd.Len(f) {
				t.Fatalf("%s face %d: %d copies, want %d", name, f, cnt[f], fd.Len(f))
			}
		}
	}
}
