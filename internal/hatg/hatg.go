// Package hatg builds the face-disjoint graph Ĝ of [Ghaffari–Parter '17] as
// extended by the paper (§3): the communication scaffold through which
// computations on the dual graph G* are simulated on the primal network G.
//
// Every vertex v of G appears in Ĝ as a star center plus deg(v) corner
// copies, one per local region (the wedge between two consecutive edges in
// v's rotation). The edge set is E_S ∪ E_R ∪ E_C:
//
//   - E_S (star) edges join v to each of its corner copies;
//   - E_R (ring) edges duplicate each edge of G once per incident face, so
//     that the faces of G map to vertex- and edge-disjoint cycles of Ĝ[E_R];
//   - E_C (chord) edges — the paper's extension of [17] — realize the dual
//     edge e* of every primal edge e as a concrete Ĝ edge between two corner
//     copies of e's higher-ID endpoint, giving the 1-1 mapping between E_C
//     and E(G*) (Property 5).
//
// Properties 1–3 of §3 (planarity up to the star edges, diameter ≤ 3D, 2x
// CONGEST simulation overhead) justify running aggregation algorithms on Ĝ
// and charging 2x their rounds on G.
package hatg

import (
	"fmt"

	"planarflow/internal/planar"
)

// EdgeKind tags the three edge classes of Ĝ.
type EdgeKind int

const (
	Star  EdgeKind = iota + 1 // E_S: star center to corner copy
	Ring                      // E_R: face-boundary duplicate of a primal edge
	Chord                     // E_C: realization of a dual edge
)

// Arc is a directed view of an undirected Ĝ edge.
type Arc struct {
	To   int
	Kind EdgeKind
	// Dart is the primal dart this arc derives from: for Ring arcs, the dart
	// whose face-boundary step it duplicates; for Chord arcs, the forward
	// dart of the primal edge whose dual edge it realizes. NoDart for Star.
	Dart planar.Dart
}

// Graph is the face-disjoint graph.
type Graph struct {
	prim *planar.Graph

	numV int
	// copyID[v][c] is the Ĝ vertex for corner c of primal vertex v; corner c
	// is the wedge between rotation edges c and c+1 (cyclic). Star centers
	// are the first n vertex IDs (star center of v is v itself).
	copyID [][]int
	// owner and corner invert copyID for non-star vertices.
	owner  []int
	corner []int

	adj [][]Arc

	// faceOfCopy[x] is the face of G whose Ĝ-cycle contains copy x (-1 for
	// star centers).
	faceOfCopy []int
}

// New builds Ĝ for the embedded planar graph g. Construction is local
// (Property 1: O(1) CONGEST rounds); callers charge those rounds separately.
func New(g *planar.Graph) *Graph {
	n := g.N()
	h := &Graph{
		prim:   g,
		copyID: make([][]int, n),
	}
	id := n
	h.owner = make([]int, n, n+2*g.M())
	h.corner = make([]int, n, n+2*g.M())
	for v := 0; v < n; v++ {
		h.owner[v] = v
		h.corner[v] = -1
		deg := g.Degree(v)
		h.copyID[v] = make([]int, deg)
		for c := 0; c < deg; c++ {
			h.copyID[v][c] = id
			h.owner = append(h.owner, v)
			h.corner = append(h.corner, c)
			id++
		}
	}
	h.numV = id
	h.adj = make([][]Arc, id)
	h.faceOfCopy = make([]int, id)
	for i := range h.faceOfCopy {
		h.faceOfCopy[i] = -1
	}

	fd := g.Faces()
	addUndirected := func(a, b int, kind EdgeKind, d planar.Dart) {
		h.adj[a] = append(h.adj[a], Arc{To: b, Kind: kind, Dart: d})
		h.adj[b] = append(h.adj[b], Arc{To: a, Kind: kind, Dart: d})
	}

	// E_S: star edges.
	for v := 0; v < n; v++ {
		for _, x := range h.copyID[v] {
			addUndirected(v, x, Star, planar.NoDart)
		}
	}

	// E_R: one duplicate of each edge per incident face. The dart d (u->v)
	// leaves u at corner pos(d)-1 and arrives at v at corner pos(rev(d)),
	// both corners of the face containing d.
	for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
		u, v := g.Tail(d), g.Head(d)
		cu := h.cornerBefore(u, d)
		cv := g.RotationIndex(planar.Rev(d))
		a, b := h.copyID[u][cu], h.copyID[v][cv]
		addUndirected(a, b, Ring, d)
		f := fd.FaceOf(d)
		h.faceOfCopy[a] = f
		h.faceOfCopy[b] = f
	}

	// E_C: for each primal edge e, connect across e the two corner copies of
	// its higher-ID endpoint; this edge realizes the dual edge e*.
	for e := 0; e < g.M(); e++ {
		fw := planar.ForwardDart(e)
		d := fw // dart leaving the higher-ID endpoint
		if g.Tail(fw) < g.Head(fw) {
			d = planar.Rev(fw)
		}
		v := g.Tail(d)
		c1 := h.cornerBefore(v, d)
		c2 := g.RotationIndex(d)
		addUndirected(h.copyID[v][c1], h.copyID[v][c2], Chord, fw)
	}
	return h
}

// cornerBefore returns the corner index at v immediately preceding dart d in
// the rotation (the wedge a face boundary passes through when leaving via d).
func (h *Graph) cornerBefore(v int, d planar.Dart) int {
	p := h.prim.RotationIndex(d) - 1
	if p < 0 {
		p = h.prim.Degree(v) - 1
	}
	return p
}

// N returns the number of Ĝ vertices (n + 2m).
func (h *Graph) N() int { return h.numV }

// Primal returns the underlying planar graph.
func (h *Graph) Primal() *planar.Graph { return h.prim }

// Adj returns the arcs of Ĝ vertex x. The slice must not be modified.
func (h *Graph) Adj(x int) []Arc { return h.adj[x] }

// IsStarCenter reports whether x is a star center (an original vertex of G).
func (h *Graph) IsStarCenter(x int) bool { return x < h.prim.N() }

// Owner returns the primal vertex that simulates Ĝ vertex x.
func (h *Graph) Owner(x int) int { return h.owner[x] }

// Corner returns the corner index of copy x (-1 for star centers).
func (h *Graph) Corner(x int) int { return h.corner[x] }

// CopyID returns the Ĝ vertex for corner c of primal vertex v.
func (h *Graph) CopyID(v, c int) int { return h.copyID[v][c] }

// FaceOfCopy returns the face of G whose boundary cycle in Ĝ[E_R] contains
// copy x (-1 for star centers).
func (h *Graph) FaceOfCopy(x int) int { return h.faceOfCopy[x] }

// ChordOf returns the two Ĝ endpoints realizing the dual edge of primal edge
// e (both are corner copies of e's higher-ID endpoint).
func (h *Graph) ChordOf(e int) (int, int) {
	g := h.prim
	fw := planar.ForwardDart(e)
	d := fw
	if g.Tail(fw) < g.Head(fw) {
		d = planar.Rev(fw)
	}
	v := g.Tail(d)
	return h.copyID[v][h.cornerBefore(v, d)], h.copyID[v][g.RotationIndex(d)]
}

// CheckFaceCycles verifies Property 1/4 structure: the Ring subgraph
// decomposes into cycles, one per face of G, with copies of a face's corners
// appearing on exactly that face's cycle. Used by tests and the planarcheck
// tool.
func (h *Graph) CheckFaceCycles() error {
	fd := h.prim.Faces()
	// Count Ring-degree: every copy must have exactly two ring arcs.
	for x := h.prim.N(); x < h.numV; x++ {
		cnt := 0
		for _, a := range h.adj[x] {
			if a.Kind == Ring {
				cnt++
			}
		}
		if cnt != 2 {
			return fmt.Errorf("hatg: copy %d has %d ring arcs, want 2", x, cnt)
		}
		if h.faceOfCopy[x] < 0 {
			return fmt.Errorf("hatg: copy %d not assigned to a face", x)
		}
	}
	// Component count of Ĝ[E_R] over copies must equal the face count, and
	// components must not mix faces.
	comp := make([]int, h.numV)
	for i := range comp {
		comp[i] = -1
	}
	numComp := 0
	for x := h.prim.N(); x < h.numV; x++ {
		if comp[x] != -1 {
			continue
		}
		face := h.faceOfCopy[x]
		stack := []int{x}
		comp[x] = numComp
		for len(stack) > 0 {
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if h.faceOfCopy[y] != face {
				return fmt.Errorf("hatg: ring component mixes faces %d and %d", face, h.faceOfCopy[y])
			}
			for _, a := range h.adj[y] {
				if a.Kind == Ring && comp[a.To] == -1 {
					comp[a.To] = numComp
					stack = append(stack, a.To)
				}
			}
		}
		numComp++
	}
	if numComp != fd.NumFaces() {
		return fmt.Errorf("hatg: %d ring components, want %d faces", numComp, fd.NumFaces())
	}
	return nil
}

// BFSDepth returns the eccentricity of Ĝ vertex x (used to test the diameter
// ≤ 3D property).
func (h *Graph) BFSDepth(x int) int {
	dist := make([]int, h.numV)
	for i := range dist {
		dist[i] = -1
	}
	dist[x] = 0
	queue := []int{x}
	depth := 0
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		if dist[y] > depth {
			depth = dist[y]
		}
		for _, a := range h.adj[y] {
			if dist[a.To] == -1 {
				dist[a.To] = dist[y] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return depth
}
