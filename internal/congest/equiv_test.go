package congest

import (
	"fmt"
	"sort"
	"testing"

	"planarflow/internal/planar"
)

// Differential tests: every primitive must produce identical Stats and
// identical results on the flat-mailbox scheduler (Engine/PortEngine) and
// on the reference channel engines (ChanEngine/ChanPortEngine). The graph
// set includes instances well above the scheduler's serial threshold so the
// persistent worker pool path is exercised.

func equivGraphs() map[string]*planar.Graph {
	return map[string]*planar.Graph{
		"grid5x9":    planar.Grid(5, 9),
		"grid16x16":  planar.Grid(16, 16),
		"cyl4x12":    planar.Cylinder(4, 12),
		"longthin":   planar.Grid(2, 40),
		"stacked120": planar.StackedTriangulation(120, planar.NewRand(7)),
	}
}

func diffStats(t *testing.T, name string, chanS, schedS Stats) {
	t.Helper()
	if chanS != schedS {
		t.Fatalf("%s: stats diverge:\n  chan:  %+v\n  sched: %+v", name, chanS, schedS)
	}
}

func TestEquivalenceBFS(t *testing.T) {
	for name, g := range equivGraphs() {
		tc, sc := NewChanEngine(g), NewEngine(g)
		treeC, statsC := DistributedBFS(tc, 0)
		treeS, statsS := DistributedBFS(sc, 0)
		diffStats(t, name, statsC, statsS)
		for v := 0; v < g.N(); v++ {
			if treeC.Depth[v] != treeS.Depth[v] || treeC.Parent[v] != treeS.Parent[v] {
				t.Fatalf("%s: tree diverges at %d: depth %d/%d parent %d/%d",
					name, v, treeC.Depth[v], treeS.Depth[v], treeC.Parent[v], treeS.Parent[v])
			}
		}
	}
}

func TestEquivalenceFloodMin(t *testing.T) {
	for name, g := range equivGraphs() {
		rng := planar.NewRand(42)
		vals := make([]int64, g.N())
		for v := range vals {
			vals[v] = rng.Int64N(1 << 30)
		}
		outC, statsC := FloodMin(NewChanEngine(g), vals)
		outS, statsS := FloodMin(NewEngine(g), vals)
		diffStats(t, name, statsC, statsS)
		for v := range outC {
			if outC[v] != outS[v] {
				t.Fatalf("%s: flood diverges at %d: %d vs %d", name, v, outC[v], outS[v])
			}
		}
	}
}

func TestEquivalenceTreeAggregate(t *testing.T) {
	for name, g := range equivGraphs() {
		input := make([]int64, g.N())
		for v := range input {
			input[v] = int64(v*v%37 + 1)
		}
		ec, es := NewChanEngine(g), NewEngine(g)
		treeC, _ := DistributedBFS(ec, 1)
		treeS, _ := DistributedBFS(es, 1)
		for _, op := range []AggregateOp{SumOp, MinOp, MaxOp} {
			gotC, statsC := TreeAggregate(ec, treeC, input, op)
			gotS, statsS := TreeAggregate(es, treeS, input, op)
			diffStats(t, name, statsC, statsS)
			if gotC != gotS {
				t.Fatalf("%s: aggregate diverges: %d vs %d", name, gotC, gotS)
			}
		}
	}
}

func TestEquivalencePipelinedBroadcast(t *testing.T) {
	values := []int64{9, 4, 1, 8, 6, 3, 5}
	for name, g := range equivGraphs() {
		ec, es := NewChanEngine(g), NewEngine(g)
		treeC, _ := DistributedBFS(ec, 0)
		treeS, _ := DistributedBFS(es, 0)
		gotC, statsC := PipelinedBroadcast(ec, treeC, values)
		gotS, statsS := PipelinedBroadcast(es, treeS, values)
		diffStats(t, name, statsC, statsS)
		for v := 0; v < g.N(); v++ {
			if fmt.Sprint(gotC[v]) != fmt.Sprint(gotS[v]) {
				t.Fatalf("%s: broadcast diverges at %d: %v vs %v", name, v, gotC[v], gotS[v])
			}
		}
	}
}

func TestEquivalencePipelinedUpcast(t *testing.T) {
	for name, g := range equivGraphs() {
		rng := planar.NewRand(11)
		input := make([][]int64, g.N())
		for v := range input {
			for i := 0; i < 3; i++ {
				input[v] = append(input[v], int64(rng.IntN(17)))
			}
		}
		ec, es := NewChanEngine(g), NewEngine(g)
		treeC, _ := DistributedBFS(ec, 0)
		treeS, _ := DistributedBFS(es, 0)
		gotC, statsC := PipelinedUpcastDistinct(ec, treeC, input)
		gotS, statsS := PipelinedUpcastDistinct(es, treeS, input)
		diffStats(t, name, statsC, statsS)
		sort.Slice(gotC, func(i, j int) bool { return gotC[i] < gotC[j] })
		sort.Slice(gotS, func(i, j int) bool { return gotS[i] < gotS[j] })
		if fmt.Sprint(gotC) != fmt.Sprint(gotS) {
			t.Fatalf("%s: upcast diverges: %v vs %v", name, gotC, gotS)
		}
	}
}

func TestEquivalenceIdentifyFaces(t *testing.T) {
	for name, g := range equivGraphs() {
		minC, statsC := IdentifyFaces(NewChanEngine(g))
		minS, statsS := IdentifyFaces(NewEngine(g))
		diffStats(t, name, statsC, statsS)
		for d := range minC {
			if minC[d] != minS[d] {
				t.Fatalf("%s: face id diverges at dart %d: %d vs %d", name, d, minC[d], minS[d])
			}
		}
	}
}

func TestEquivalencePortBFS(t *testing.T) {
	for _, g := range []*planar.Graph{planar.Grid(9, 13), planar.Cylinder(5, 20)} {
		adj := gridAdj(g)
		distC, statsC := PortBFS(NewChanPortEngine(adj), 0)
		distS, statsS := PortBFS(NewPortEngine(adj), 0)
		diffStats(t, "portbfs", statsC, statsS)
		for v := range distC {
			if distC[v] != distS[v] {
				t.Fatalf("port dist diverges at %d: %d vs %d", v, distC[v], distS[v])
			}
		}
	}
}

func TestEquivalenceViolationAccounting(t *testing.T) {
	// Oversized and duplicate sends must be charged identically.
	g := planar.Grid(3, 3)
	step := func(c *Ctx) {
		if c.Round == 0 && c.V == 0 {
			d := c.Graph().Rotation(0)[0]
			c.Send(d, 1, 999)                      // oversized: delivered + violation
			c.Send(d, 2, 1)                        // duplicate: dropped + violation
			c.Send(c.Graph().Rotation(0)[1], 3, 1) // clean
		}
		c.Halt()
	}
	statsC := NewChanEngine(g).Run(step, 6)
	statsS := NewEngine(g).Run(step, 6)
	diffStats(t, "violations", statsC, statsS)
	if statsS.Violations != 2 {
		t.Fatalf("violations=%d want 2", statsS.Violations)
	}
}

// stepTrace records what every vertex observed, per vertex then per round,
// so concurrently-executed runs serialize to a canonical byte string.
// Only rounds in which a vertex observes input are recorded: the scheduler
// skips a sleeping vertex's empty steps entirely, while the channel engine
// invokes them as no-ops, so empty steps are the one place the two engines
// legitimately differ.
func stepTrace(e Runner, g *planar.Graph, inner StepFunc, maxRounds int) []byte {
	traces := make([][]byte, g.N())
	e.Run(func(c *Ctx) {
		if len(c.In) > 0 || c.Round == 0 {
			traces[c.V] = append(traces[c.V], []byte(fmt.Sprintf("r%d:", c.Round))...)
			for _, m := range c.In {
				traces[c.V] = append(traces[c.V], []byte(fmt.Sprintf("(%d,%v,%d)", m.In, m.Payload, m.Bits))...)
			}
			traces[c.V] = append(traces[c.V], ';')
		}
		inner(c)
	}, maxRounds)
	var out []byte
	for v, tr := range traces {
		out = append(out, []byte(fmt.Sprintf("v%d|", v))...)
		out = append(out, tr...)
		out = append(out, '\n')
	}
	return out
}

// TestSchedulerDeterministic runs the same seeded algorithm twice and
// requires byte-identical message ledgers: every vertex must see the same
// inbox contents in the same rounds both times, despite concurrent step
// execution.
func TestSchedulerDeterministic(t *testing.T) {
	g := planar.StackedTriangulation(150, planar.NewRand(5))
	mkStep := func() StepFunc {
		best := make([]int64, g.N())
		for v := range best {
			best[v] = int64((v*2654435761 + 12345) % 100003)
		}
		return func(c *Ctx) {
			improved := c.Round == 0
			for _, m := range c.In {
				if tok, ok := m.Payload.(floodToken); ok && tok.id < best[c.V] {
					best[c.V] = tok.id
					improved = true
				}
			}
			if improved {
				for _, d := range g.Rotation(c.V) {
					c.Send(d, floodToken{id: best[c.V]}, 32)
				}
			}
			c.Halt()
		}
	}
	t1 := stepTrace(NewEngine(g), g, mkStep(), 4*g.N())
	t2 := stepTrace(NewEngine(g), g, mkStep(), 4*g.N())
	if string(t1) != string(t2) {
		t.Fatal("two runs of the same seeded algorithm produced different ledgers")
	}
	// And the scheduler trace must equal the channel-engine trace.
	t3 := stepTrace(NewChanEngine(g), g, mkStep(), 4*g.N())
	if string(t1) != string(t3) {
		t.Fatal("scheduler ledger diverges from channel-engine ledger")
	}
}
