package congest

import (
	"planarflow/internal/planar"
)

// This file implements the textbook CONGEST building blocks the paper's
// algorithms are compiled from: distributed BFS, flooding/leader election,
// tree convergecast, and pipelined broadcast/upcast. Each primitive actually
// exchanges messages through the engine, so its round count is measured, not
// asserted.

// Tree is a rooted spanning tree described by parent darts: Parent[v] is the
// dart from v's parent to v (NoDart at the root).
type Tree struct {
	Root   int
	Parent []planar.Dart
	Depth  []int
	Height int
}

// Children returns, for every vertex, the darts pointing at its tree
// children.
func (t *Tree) Children(g *planar.Graph) [][]planar.Dart {
	ch := make([][]planar.Dart, g.N())
	for _, p := range t.Parent {
		if p != planar.NoDart {
			ch[g.Tail(p)] = append(ch[g.Tail(p)], p)
		}
	}
	return ch
}

type bfsToken struct{ dist int }

// DistributedBFS builds a BFS tree from root by flooding; it takes ecc(root)
// + O(1) measured rounds.
func DistributedBFS(e Runner, root int) (*Tree, Stats) {
	g := e.Graph()
	n := g.N()
	tree := &Tree{Root: root, Parent: make([]planar.Dart, n), Depth: make([]int, n)}
	joined := make([]bool, n)
	for v := range tree.Parent {
		tree.Parent[v] = planar.NoDart
		tree.Depth[v] = -1
	}
	stats := e.Run(func(c *Ctx) {
		v := c.V
		if c.Round == 0 && v == root {
			joined[v] = true
			tree.Depth[v] = 0
			for _, d := range g.Rotation(v) {
				c.Send(d, bfsToken{dist: 1}, e.B())
			}
		}
		if !joined[v] {
			for _, m := range c.In {
				tok, ok := m.Payload.(bfsToken)
				if !ok {
					continue
				}
				joined[v] = true
				tree.Parent[v] = m.In
				tree.Depth[v] = tok.dist
				for _, d := range g.Rotation(v) {
					if d != planar.Rev(m.In) {
						c.Send(d, bfsToken{dist: tok.dist + 1}, e.B())
					}
				}
				break
			}
		}
		c.Halt()
	}, 4*n+8)
	for _, dep := range tree.Depth {
		if dep > tree.Height {
			tree.Height = dep
		}
	}
	return tree, stats
}

type floodToken struct{ id int64 }

// FloodMin floods the minimum of the per-vertex values to every vertex
// (leader election when values are IDs); takes diameter + O(1) rounds.
func FloodMin(e Runner, values []int64) ([]int64, Stats) {
	g := e.Graph()
	best := make([]int64, g.N())
	copy(best, values)
	stats := e.Run(func(c *Ctx) {
		v := c.V
		improved := c.Round == 0
		for _, m := range c.In {
			if tok, ok := m.Payload.(floodToken); ok && tok.id < best[v] {
				best[v] = tok.id
				improved = true
			}
		}
		if improved {
			for _, d := range g.Rotation(v) {
				c.Send(d, floodToken{id: best[v]}, e.B())
			}
		}
		c.Halt()
	}, 4*g.N()+8)
	return best, stats
}

// AggregateOp is a commutative, associative combiner over int64 values.
type AggregateOp func(a, b int64) int64

// MinOp, SumOp, MaxOp are the standard aggregation operators (Def. 4.3).
var (
	MinOp AggregateOp = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	MaxOp AggregateOp = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	SumOp AggregateOp = func(a, b int64) int64 { return a + b }
)

type upToken struct{ val int64 }
type downToken struct{ val int64 }

// TreeAggregate convergecasts op over the per-vertex inputs up the given
// tree, then broadcasts the result back down; every vertex learns the
// aggregate. Takes O(height) measured rounds.
func TreeAggregate(e Runner, tree *Tree, input []int64, op AggregateOp) (int64, Stats) {
	g := e.Graph()
	n := g.N()
	children := tree.Children(g)
	pendingKids := make([]int, n)
	acc := make([]int64, n)
	sentUp := make([]bool, n)
	var result int64
	haveResult := make([]bool, n)
	for v := 0; v < n; v++ {
		pendingKids[v] = len(children[v])
		acc[v] = input[v]
	}
	stats := e.Run(func(c *Ctx) {
		v := c.V
		for _, m := range c.In {
			switch tok := m.Payload.(type) {
			case upToken:
				acc[v] = op(acc[v], tok.val)
				pendingKids[v]--
			case downToken:
				if !haveResult[v] {
					haveResult[v] = true
					for _, d := range children[v] {
						c.Send(d, downToken{val: tok.val}, e.B())
					}
				}
			}
		}
		if pendingKids[v] == 0 && !sentUp[v] {
			sentUp[v] = true
			if v == tree.Root {
				result = acc[v]
				haveResult[v] = true
				for _, d := range children[v] {
					c.Send(d, downToken{val: result}, e.B())
				}
			} else {
				c.Send(planar.Rev(tree.Parent[v]), upToken{val: acc[v]}, e.B())
			}
		}
		c.Halt()
	}, 8*n+16)
	return result, stats
}

type pipeToken struct {
	seq int
	val int64
}

// PipelinedBroadcast sends the k root values down the tree so every vertex
// receives all of them; pipelining makes this take height + k + O(1) rounds
// rather than height*k.
func PipelinedBroadcast(e Runner, tree *Tree, values []int64) ([][]int64, Stats) {
	g := e.Graph()
	n := g.N()
	children := tree.Children(g)
	got := make([][]int64, n)
	stats := e.Run(func(c *Ctx) {
		v := c.V
		if v == tree.Root && c.Round < len(values) {
			got[v] = append(got[v], values[c.Round])
			for _, d := range children[v] {
				c.Send(d, pipeToken{seq: c.Round, val: values[c.Round]}, e.B())
			}
		}
		for _, m := range c.In {
			if tok, ok := m.Payload.(pipeToken); ok {
				got[v] = append(got[v], tok.val)
				for _, d := range children[v] {
					c.Send(d, tok, e.B())
				}
			}
		}
		// The root keeps itself awake (Halt sleeps until a message arrives,
		// and nobody messages the root) until its last value is injected.
		if v != tree.Root || c.Round >= len(values)-1 {
			c.Halt()
		}
	}, 8*(n+len(values))+16)
	return got, stats
}

// PipelinedUpcastDistinct upcasts every distinct value held by any vertex to
// the root, deduplicating en route (the paper's "pass each message only
// once" broadcasts, §5.1.3). Returns the distinct values seen at the root;
// takes O(height + #distinct) measured rounds.
func PipelinedUpcastDistinct(e Runner, tree *Tree, input [][]int64) ([]int64, Stats) {
	g := e.Graph()
	n := g.N()
	queue := make([][]int64, n)
	seen := make([]map[int64]bool, n)
	for v := 0; v < n; v++ {
		seen[v] = make(map[int64]bool)
		for _, x := range input[v] {
			if !seen[v][x] {
				seen[v][x] = true
				queue[v] = append(queue[v], x)
			}
		}
	}
	stats := e.Run(func(c *Ctx) {
		v := c.V
		for _, m := range c.In {
			if tok, ok := m.Payload.(pipeToken); ok && !seen[v][tok.val] {
				seen[v][tok.val] = true
				queue[v] = append(queue[v], tok.val)
			}
		}
		if len(queue[v]) > 0 && v != tree.Root {
			x := queue[v][0]
			queue[v] = queue[v][1:]
			c.Send(planar.Rev(tree.Parent[v]), pipeToken{val: x}, e.B())
		}
		// A vertex still holding queued values must stay awake to keep
		// draining one per round; everyone else sleeps until woken.
		if v == tree.Root || len(queue[v]) == 0 {
			c.Halt()
		}
	}, 16*n+16)
	var out []int64
	for x := range seen[tree.Root] {
		out = append(out, x)
	}
	return out, stats
}
