package congest

// The original channel-based engines, retained verbatim in behavior as a
// differential-testing and benchmarking reference for the flat-mailbox
// scheduler (sched.go). ChanEngine allocates one buffered channel per dart
// and spawns a fresh worker pool every round; ChanPortEngine mirrors it for
// port-numbered graphs. Equivalence tests assert that the scheduler
// produces identical Stats and results on the same workloads, and the
// scheduler benchmarks measure the speedup against these.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"planarflow/internal/planar"
)

// ChanEngine is the reference channel-per-dart CONGEST engine.
type ChanEngine struct {
	g *planar.Graph
	b int

	workers int
}

// NewChanEngine returns the reference engine for g with the standard
// O(log n) message budget.
func NewChanEngine(g *planar.Graph) *ChanEngine {
	return &ChanEngine{g: g, b: MessageBits(g.N()), workers: runtime.GOMAXPROCS(0)}
}

// B returns the per-message bit budget.
func (e *ChanEngine) B() int { return e.b }

// Graph returns the communication graph.
func (e *ChanEngine) Graph() *planar.Graph { return e.g }

// Run executes step on every vertex each round until every vertex halts in a
// round with no message deliveries, or maxRounds is reached.
func (e *ChanEngine) Run(step StepFunc, maxRounds int) Stats {
	n := e.g.N()
	var stats Stats

	// mailbox[d] carries the message sent along dart d, delivered one round
	// after it is sent.
	mailbox := make([]chan Received, e.g.NumDarts())
	for d := range mailbox {
		mailbox[d] = make(chan Received, 1)
	}

	ctxs := make([]*Ctx, n)
	for v := range ctxs {
		ctxs[v] = &Ctx{V: v, g: e.g}
	}

	inflight := 0
	for round := 0; round < maxRounds; round++ {
		// Deliver: drain each vertex's incoming darts into its inbox.
		delivered := 0
		for v := 0; v < n; v++ {
			c := ctxs[v]
			c.In = c.In[:0]
			for _, d := range e.g.Rotation(v) {
				in := planar.Rev(d) // dart pointing at v
				select {
				case m := <-mailbox[in]:
					c.In = append(c.In, m)
					delivered++
				default:
				}
			}
			sort.Slice(c.In, func(i, j int) bool { return c.In[i].In < c.In[j].In })
		}
		if round > 0 && delivered == 0 && chanAllHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
		stats.Messages += int64(delivered)
		if delivered > stats.MaxInflight {
			stats.MaxInflight = delivered
		}

		// Compute: run all vertex steps for this round concurrently.
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					c := ctxs[v]
					c.Round = round
					c.halted = false
					c.out = c.out[:0]
					step(c)
				}
			}()
		}
		for v := 0; v < n; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
		stats.Rounds++

		// Route: push outboxes into the per-dart channels.
		inflight = 0
		for v := 0; v < n; v++ {
			for _, m := range ctxs[v].out {
				if e.g.Tail(m.d) != v {
					panic(fmt.Sprintf("congest: vertex %d sent on dart %d it does not own", v, m.d))
				}
				if m.bits > e.b {
					stats.Violations++
				}
				select {
				case mailbox[m.d] <- Received{In: m.d, Payload: m.payload, Bits: m.bits}:
					stats.Bits += int64(m.bits)
					inflight++
				default:
					stats.Violations++ // two messages on one dart in one round
				}
			}
		}
		if inflight == 0 && chanAllHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
	}
	return stats
}

func chanAllHalted(ctxs []*Ctx) bool {
	for _, c := range ctxs {
		if !c.halted {
			return false
		}
	}
	return true
}

// ChanPortEngine is the reference per-round-allocating port engine.
type ChanPortEngine struct {
	adj [][]int
	b   int

	workers int
}

// NewChanPortEngine wraps an adjacency list (adj[v][i] = i-th neighbor of v).
func NewChanPortEngine(adj [][]int) *ChanPortEngine {
	return &ChanPortEngine{adj: adj, b: MessageBits(len(adj)), workers: 4}
}

// B returns the per-message bit budget.
func (e *ChanPortEngine) B() int { return e.b }

// N returns the vertex count.
func (e *ChanPortEngine) N() int { return len(e.adj) }

// Degree returns the number of ports of v.
func (e *ChanPortEngine) Degree(v int) int { return len(e.adj[v]) }

// Run executes the algorithm until unanimous halt with no deliveries, or
// maxRounds.
func (e *ChanPortEngine) Run(step PortStepFunc, maxRounds int) Stats {
	n := len(e.adj)
	var stats Stats
	reversePort := pairPorts(e.adj)

	inbox := make([][]PortMsg, n)
	next := make([][]PortMsg, n)
	ctxs := make([]*PortCtx, n)
	for v := range ctxs {
		ctxs[v] = &PortCtx{V: v, deg: len(e.adj[v])}
	}
	for round := 0; round < maxRounds; round++ {
		delivered := 0
		for v := 0; v < n; v++ {
			inbox[v], next[v] = next[v], inbox[v][:0]
			delivered += len(inbox[v])
			sort.Slice(inbox[v], func(i, j int) bool { return inbox[v][i].Port < inbox[v][j].Port })
		}
		if round > 0 && delivered == 0 && chanPortAllHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
		stats.Messages += int64(delivered)
		if delivered > stats.MaxInflight {
			stats.MaxInflight = delivered
		}

		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					c := ctxs[v]
					c.Round = round
					c.In = inbox[v]
					c.halted = false
					c.out = c.out[:0]
					step(c)
				}
			}()
		}
		for v := 0; v < n; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
		stats.Rounds++

		sent := 0
		perPort := map[[2]int]bool{}
		for v := 0; v < n; v++ {
			for _, m := range ctxs[v].out {
				if m.bits > e.b {
					stats.Violations++
				}
				key := [2]int{v, m.port}
				if perPort[key] {
					stats.Violations++
					continue
				}
				perPort[key] = true
				u := e.adj[v][m.port]
				next[u] = append(next[u], PortMsg{Port: reversePort[v][m.port], Payload: m.payload, Bits: m.bits})
				stats.Bits += int64(m.bits)
				sent++
			}
		}
		if sent == 0 && chanPortAllHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
	}
	return stats
}

func chanPortAllHalted(ctxs []*PortCtx) bool {
	for _, c := range ctxs {
		if !c.halted {
			return false
		}
	}
	return true
}
