package congest

import (
	"testing"

	"planarflow/internal/planar"
)

func gridAdj(g *planar.Graph) [][]int {
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, d := range g.Rotation(v) {
			adj[v] = append(adj[v], g.Head(d))
		}
	}
	return adj
}

func TestPortBFSMatchesCentralized(t *testing.T) {
	g := planar.Grid(5, 7)
	e := NewPortEngine(gridAdj(g))
	dist, stats := PortBFS(e, 0)
	want := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d]=%d want %d", v, dist[v], want.Dist[v])
		}
	}
	if stats.Violations != 0 {
		t.Fatalf("violations: %d", stats.Violations)
	}
	if stats.Rounds > 2*want.Depth+8 {
		t.Fatalf("rounds=%d ecc=%d", stats.Rounds, want.Depth)
	}
}

func TestPortEngineParallelEdges(t *testing.T) {
	// Two vertices joined by two parallel edges: ports must pair correctly.
	adj := [][]int{{1, 1}, {0, 0}}
	e := NewPortEngine(adj)
	got := make([]int, 2)
	stats := e.Run(func(c *PortCtx) {
		if c.Round == 0 && c.V == 0 {
			c.Send(0, 10, e.B())
			c.Send(1, 20, e.B())
		}
		for _, m := range c.In {
			got[m.Port] = m.Payload.(int)
		}
		c.Halt()
	}, 4)
	if stats.Violations != 0 {
		t.Fatalf("violations: %d", stats.Violations)
	}
	if got[0]+got[1] != 30 || got[0] == got[1] {
		t.Fatalf("parallel delivery wrong: %v", got)
	}
}

func TestPortEngineDuplicateSendViolation(t *testing.T) {
	adj := [][]int{{1}, {0}}
	e := NewPortEngine(adj)
	stats := e.Run(func(c *PortCtx) {
		if c.Round == 0 && c.V == 0 {
			c.Send(0, 1, e.B())
			c.Send(0, 2, e.B())
		}
		c.Halt()
	}, 3)
	if stats.Violations != 1 {
		t.Fatalf("violations=%d want 1", stats.Violations)
	}
}
