package congest

import (
	"fmt"
	"sort"
)

// PortEngine is a synchronous CONGEST engine over an arbitrary port-numbered
// graph (adjacency lists). It exists so algorithms can be executed on the
// face-disjoint graph Ĝ itself — the communication scaffold of §3 — whose
// vertices are copies of primal vertices rather than an embedded planar
// graph. Semantics match Engine: per round, one B-bit message per incident
// port per direction, delivered next round. Like Engine it is a thin
// adapter over the shared flat-mailbox scheduler (sched.go).
type PortEngine struct {
	adj [][]int
	b   int

	workers int
	topo    *topology
	off     []int32 // out-slot of (v, p) is off[v]+p
}

// NewPortEngine wraps an adjacency list (adj[v][i] = i-th neighbor of v).
func NewPortEngine(adj [][]int) *PortEngine {
	e := &PortEngine{adj: adj, b: MessageBits(len(adj)), workers: 4}
	e.topo, e.off = newPortTopology(adj)
	return e
}

// B returns the per-message bit budget.
func (e *PortEngine) B() int { return e.b }

// N returns the vertex count.
func (e *PortEngine) N() int { return len(e.adj) }

// Degree returns the number of ports of v.
func (e *PortEngine) Degree(v int) int { return len(e.adj[v]) }

// PortMsg is a received message: it arrived on the receiver's port Port
// (so the sender is adj[receiver][Port]).
type PortMsg struct {
	Port    int
	Payload any
	Bits    int
}

// PortCtx is the per-vertex per-round context.
type PortCtx struct {
	V     int
	Round int
	In    []PortMsg

	deg    int
	out    []portOut
	halted bool
}

type portOut struct {
	port    int
	payload any
	bits    int
}

// Send transmits along port p of the current vertex.
func (c *PortCtx) Send(p int, payload any, bits int) {
	c.out = append(c.out, portOut{port: p, payload: payload, bits: bits})
}

// Halt puts this vertex to sleep until a message arrives for it.
func (c *PortCtx) Halt() { c.halted = true }

// Degree returns the current vertex's port count.
func (c *PortCtx) Degree() int { return c.deg }

// PortStepFunc is the per-vertex round handler.
type PortStepFunc func(c *PortCtx)

// PortRunner is the port-engine surface the port primitives are written
// against; *PortEngine and the reference *ChanPortEngine both implement it.
type PortRunner interface {
	Run(step PortStepFunc, maxRounds int) Stats
	B() int
	N() int
	Degree(v int) int
}

// pairPorts computes reversePort[v][i] = the port index at neighbor
// u = adj[v][i] that points back to v, pairing parallel edges by occurrence
// order (-1 when the adjacency is not symmetric).
func pairPorts(adj [][]int) [][]int {
	n := len(adj)
	reversePort := make([][]int, n)
	used := make([]map[int]int, n)
	for v := range used {
		used[v] = map[int]int{}
		reversePort[v] = make([]int, len(adj[v]))
		for i := range reversePort[v] {
			reversePort[v][i] = -1
		}
	}
	for v := 0; v < n; v++ {
		for i, u := range adj[v] {
			if reversePort[v][i] != -1 {
				continue
			}
			// Find the next unused port at u pointing to v.
			start := used[u][v]
			for j := start; j < len(adj[u]); j++ {
				if adj[u][j] == v && reversePort[u][j] == -1 {
					reversePort[v][i] = j
					reversePort[u][j] = i
					used[u][v] = j + 1
					break
				}
			}
		}
	}
	return reversePort
}

// newPortTopology flattens a port-numbered graph for the scheduler:
// out-slot off[v]+p delivers to adj[v][p], keyed by the receiver's paired
// port so inboxes come out sorted by Port.
func newPortTopology(adj [][]int) (*topology, []int32) {
	n := len(adj)
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(len(adj[v]))
	}
	t := &topology{n: n, dest: make([]int32, off[n]), in: make([][]inRef, n)}
	reversePort := pairPorts(adj)
	for v := 0; v < n; v++ {
		for i, u := range adj[v] {
			s := off[v] + int32(i)
			t.dest[s] = int32(u)
			t.in[u] = append(t.in[u], inRef{slot: s, key: int32(reversePort[v][i])})
		}
	}
	for v := 0; v < n; v++ {
		refs := t.in[v]
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].key != refs[j].key {
				return refs[i].key < refs[j].key
			}
			return refs[i].slot < refs[j].slot
		})
	}
	t.finishOffsets()
	return t, off
}

// Run executes the algorithm until every vertex sleeps in a round with no
// message sends, or maxRounds.
func (e *PortEngine) Run(step PortStepFunc, maxRounds int) Stats {
	ctxs := make([]*PortCtx, len(e.adj))
	for v := range ctxs {
		ctxs[v] = &PortCtx{V: v, deg: len(e.adj[v])}
	}
	return runSched(e.topo, e.b, e.workers, maxRounds,
		func(key int32, payload any, bits int32) PortMsg {
			return PortMsg{Port: int(key), Payload: payload, Bits: int(bits)}
		},
		func(v, round int, in []PortMsg, out outbox[PortMsg]) bool {
			c := ctxs[v]
			c.Round = round
			c.In = in
			c.halted = false
			c.out = c.out[:0]
			step(c)
			for _, m := range c.out {
				if m.port < 0 || m.port >= c.deg {
					panic(fmt.Sprintf("congest: vertex %d sent on port %d of %d", v, m.port, c.deg))
				}
				out.post(e.off[v]+int32(m.port), m.payload, m.bits)
			}
			return c.halted
		})
}

// PortBFS floods a BFS from root and returns hop distances; measured rounds
// ≈ eccentricity(root).
func PortBFS(e PortRunner, root int) ([]int, Stats) {
	dist := make([]int, e.N())
	for v := range dist {
		dist[v] = -1
	}
	dist[root] = 0
	type tok struct{ d int }
	stats := e.Run(func(c *PortCtx) {
		v := c.V
		if c.Round == 0 && v == root {
			for p := 0; p < c.Degree(); p++ {
				c.Send(p, tok{d: 1}, e.B())
			}
		}
		for _, m := range c.In {
			t, ok := m.Payload.(tok)
			if !ok {
				continue
			}
			if dist[v] == -1 {
				dist[v] = t.d
				for p := 0; p < c.Degree(); p++ {
					if p != m.Port {
						c.Send(p, tok{d: t.d + 1}, e.B())
					}
				}
			}
		}
		c.Halt()
	}, 4*e.N()+8)
	return dist, stats
}
