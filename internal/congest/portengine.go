package congest

import (
	"sort"
	"sync"
)

// PortEngine is a synchronous CONGEST engine over an arbitrary port-numbered
// graph (adjacency lists). It exists so algorithms can be executed on the
// face-disjoint graph Ĝ itself — the communication scaffold of §3 — whose
// vertices are copies of primal vertices rather than an embedded planar
// graph. Semantics match Engine: per round, one B-bit message per incident
// port per direction, delivered next round.
type PortEngine struct {
	adj [][]int
	b   int

	workers int
}

// NewPortEngine wraps an adjacency list (adj[v][i] = i-th neighbor of v).
func NewPortEngine(adj [][]int) *PortEngine {
	return &PortEngine{adj: adj, b: MessageBits(len(adj)), workers: 4}
}

// B returns the per-message bit budget.
func (e *PortEngine) B() int { return e.b }

// N returns the vertex count.
func (e *PortEngine) N() int { return len(e.adj) }

// Degree returns the number of ports of v.
func (e *PortEngine) Degree(v int) int { return len(e.adj[v]) }

// PortMsg is a received message: it arrived on the receiver's port Port
// (so the sender is adj[receiver][Port]).
type PortMsg struct {
	Port    int
	Payload any
	Bits    int
}

// PortCtx is the per-vertex per-round context.
type PortCtx struct {
	V     int
	Round int
	In    []PortMsg

	eng    *PortEngine
	out    []portOut
	halted bool
}

type portOut struct {
	port    int
	payload any
	bits    int
}

// Send transmits along port p of the current vertex.
func (c *PortCtx) Send(p int, payload any, bits int) {
	c.out = append(c.out, portOut{port: p, payload: payload, bits: bits})
}

// Halt votes to terminate.
func (c *PortCtx) Halt() { c.halted = true }

// Degree returns the current vertex's port count.
func (c *PortCtx) Degree() int { return len(c.eng.adj[c.V]) }

// PortStepFunc is the per-vertex round handler.
type PortStepFunc func(c *PortCtx)

// Run executes the algorithm until unanimous halt with no deliveries, or
// maxRounds.
func (e *PortEngine) Run(step PortStepFunc, maxRounds int) Stats {
	n := len(e.adj)
	var stats Stats
	// reversePort[v][i] = the port index at neighbor u = adj[v][i] that
	// points back to v (parallel edges paired by occurrence order).
	reversePort := make([][]int, n)
	{
		used := make([]map[int]int, n)
		for v := range used {
			used[v] = map[int]int{}
			reversePort[v] = make([]int, len(e.adj[v]))
			for i := range reversePort[v] {
				reversePort[v][i] = -1
			}
		}
		for v := 0; v < n; v++ {
			for i, u := range e.adj[v] {
				if reversePort[v][i] != -1 {
					continue
				}
				// Find the next unused port at u pointing to v.
				start := used[u][v]
				for j := start; j < len(e.adj[u]); j++ {
					if e.adj[u][j] == v {
						probeOK := reversePort[u][j] == -1
						if probeOK {
							reversePort[v][i] = j
							reversePort[u][j] = i
							used[u][v] = j + 1
							break
						}
					}
				}
			}
		}
	}

	inbox := make([][]PortMsg, n)
	next := make([][]PortMsg, n)
	ctxs := make([]*PortCtx, n)
	for v := range ctxs {
		ctxs[v] = &PortCtx{V: v, eng: e}
	}
	for round := 0; round < maxRounds; round++ {
		delivered := 0
		for v := 0; v < n; v++ {
			inbox[v], next[v] = next[v], inbox[v][:0]
			delivered += len(inbox[v])
			sort.Slice(inbox[v], func(i, j int) bool { return inbox[v][i].Port < inbox[v][j].Port })
		}
		if round > 0 && delivered == 0 && portAllHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
		stats.Messages += int64(delivered)

		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					c := ctxs[v]
					c.Round = round
					c.In = inbox[v]
					c.halted = false
					c.out = c.out[:0]
					step(c)
				}
			}()
		}
		for v := 0; v < n; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
		stats.Rounds++

		sent := 0
		perPort := map[[2]int]bool{}
		for v := 0; v < n; v++ {
			for _, m := range ctxs[v].out {
				if m.bits > e.b {
					stats.Violations++
				}
				key := [2]int{v, m.port}
				if perPort[key] {
					stats.Violations++
					continue
				}
				perPort[key] = true
				u := e.adj[v][m.port]
				next[u] = append(next[u], PortMsg{Port: reversePort[v][m.port], Payload: m.payload, Bits: m.bits})
				stats.Bits += int64(m.bits)
				sent++
			}
		}
		if sent == 0 && portAllHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
	}
	return stats
}

func portAllHalted(ctxs []*PortCtx) bool {
	for _, c := range ctxs {
		if !c.halted {
			return false
		}
	}
	return true
}

// PortBFS floods a BFS from root and returns hop distances; measured rounds
// ≈ eccentricity(root).
func PortBFS(e *PortEngine, root int) ([]int, Stats) {
	dist := make([]int, e.N())
	for v := range dist {
		dist[v] = -1
	}
	dist[root] = 0
	type tok struct{ d int }
	stats := e.Run(func(c *PortCtx) {
		v := c.V
		if c.Round == 0 && v == root {
			for p := 0; p < c.Degree(); p++ {
				c.Send(p, tok{d: 1}, e.B())
			}
		}
		for _, m := range c.In {
			t, ok := m.Payload.(tok)
			if !ok {
				continue
			}
			if dist[v] == -1 {
				dist[v] = t.d
				for p := 0; p < c.Degree(); p++ {
					if p != m.Port {
						c.Send(p, tok{d: t.d + 1}, e.B())
					}
				}
			}
		}
		c.Halt()
	}, 4*e.N()+8)
	return dist, stats
}
