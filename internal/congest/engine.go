// Package congest simulates the synchronous CONGEST model of [Peleg '00] on
// an embedded planar communication graph.
//
// Each vertex is a computational unit executing the same step function.
// Communication proceeds in synchronous rounds; in every round each vertex
// may send one message of at most B = Θ(log n) bits along each incident
// dart. Messages are written into a flat double-buffered mailbox (one slot
// per dart) and delivered at the start of the next round; vertex steps
// within a round run concurrently on a persistent worker pool, mirroring
// the model's parallelism while keeping runs deterministic (inboxes are
// ordered by dart). A vertex that calls Halt sleeps until a message
// arrives for it; the run ends when every vertex sleeps in a round that
// sends nothing.
//
// The engine measures rounds, message counts and bandwidth violations; tests
// assert that algorithms never exceed the per-edge budget. The original
// channel-per-dart implementation is retained as ChanEngine (see legacy.go)
// and used as a differential-testing reference.
package congest

import (
	"fmt"
	"runtime"
	"sort"

	"planarflow/internal/planar"
)

// Received is a message as seen by its receiver: it arrived along dart In
// (whose head is the receiver), so the sender is Tail(In).
type Received struct {
	In      planar.Dart
	Payload any
	Bits    int
}

// Ctx is the per-vertex, per-round execution context handed to step
// functions.
type Ctx struct {
	V     int
	Round int
	In    []Received

	g      *planar.Graph
	out    []outMsg
	halted bool
}

type outMsg struct {
	d       planar.Dart
	payload any
	bits    int
}

// Send transmits payload along dart d (which must leave Ctx.V) to be
// delivered next round. bits is the encoded size; it must not exceed the
// engine's per-message budget and at most one message may be sent per dart
// per round — violations are counted and fail tests.
func (c *Ctx) Send(d planar.Dart, payload any, bits int) {
	c.out = append(c.out, outMsg{d: d, payload: payload, bits: bits})
}

// Halt puts this vertex to sleep until a message arrives for it. The run
// ends when every vertex is asleep in a round that sends no messages.
func (c *Ctx) Halt() { c.halted = true }

// Graph returns the communication graph (vertices know their local topology).
func (c *Ctx) Graph() *planar.Graph { return c.g }

// StepFunc is the code run by every vertex in every round.
type StepFunc func(c *Ctx)

// Stats aggregates a run's cost measurements.
type Stats struct {
	Rounds       int   // synchronous rounds executed
	Messages     int64 // total messages delivered
	Bits         int64 // total payload bits delivered
	Violations   int   // messages exceeding B bits or duplicate per-dart sends
	MaxInflight  int   // peak messages in a single round
	HaltedNormal bool  // true if run ended by unanimous halt (vs round cap)
}

// Runner is the engine surface the primitives in this package are written
// against; *Engine and the reference *ChanEngine both implement it.
type Runner interface {
	Run(step StepFunc, maxRounds int) Stats
	B() int
	Graph() *planar.Graph
}

// Engine executes CONGEST algorithms on a fixed communication graph.
type Engine struct {
	g *planar.Graph
	b int // per-message bit budget

	workers int
	topo    *topology
}

// MessageBits returns the CONGEST per-message budget for an n-vertex network:
// c * ceil(log2 n) bits with the customary constant c = 4 (an ID plus a
// polynomially-bounded weight fit in one message).
func MessageBits(n int) int {
	bits := 1
	for 1<<bits < n {
		bits++
	}
	return 4 * bits
}

// NewEngine returns an engine for g with the standard O(log n) message
// budget.
func NewEngine(g *planar.Graph) *Engine {
	return &Engine{g: g, b: MessageBits(g.N()), workers: runtime.GOMAXPROCS(0), topo: newDartTopology(g)}
}

// B returns the per-message bit budget.
func (e *Engine) B() int { return e.b }

// Graph returns the communication graph.
func (e *Engine) Graph() *planar.Graph { return e.g }

// newDartTopology flattens g for the scheduler: out-slot s is dart s, it
// delivers to Head(s), and inboxes are ordered by arriving dart id (the
// order the channel engine produced by sorting).
func newDartTopology(g *planar.Graph) *topology {
	n := g.N()
	nd := g.NumDarts()
	t := &topology{n: n, dest: make([]int32, nd), in: make([][]inRef, n)}
	for d := 0; d < nd; d++ {
		t.dest[d] = int32(g.Head(planar.Dart(d)))
	}
	for v := 0; v < n; v++ {
		rot := g.Rotation(v)
		refs := make([]inRef, 0, len(rot))
		for _, d := range rot {
			in := int32(planar.Rev(d))
			refs = append(refs, inRef{slot: in, key: in})
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].slot < refs[j].slot })
		t.in[v] = refs
	}
	t.finishOffsets()
	return t
}

// Run executes step on every vertex each round until every vertex sleeps in
// a round with no message sends, or maxRounds is reached.
func (e *Engine) Run(step StepFunc, maxRounds int) Stats {
	ctxs := make([]*Ctx, e.g.N())
	for v := range ctxs {
		ctxs[v] = &Ctx{V: v, g: e.g}
	}
	return runSched(e.topo, e.b, e.workers, maxRounds,
		func(key int32, payload any, bits int32) Received {
			return Received{In: planar.Dart(key), Payload: payload, Bits: int(bits)}
		},
		func(v, round int, in []Received, out outbox[Received]) bool {
			c := ctxs[v]
			c.Round = round
			c.In = in
			c.halted = false
			c.out = c.out[:0]
			step(c)
			for _, m := range c.out {
				if e.g.Tail(m.d) != v {
					panic(fmt.Sprintf("congest: vertex %d sent on dart %d it does not own", v, m.d))
				}
				out.post(int32(m.d), m.payload, m.bits)
			}
			return c.halted
		})
}
