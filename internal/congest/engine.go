// Package congest simulates the synchronous CONGEST model of [Peleg '00] on
// an embedded planar communication graph.
//
// Each vertex is a computational unit executing the same step function.
// Communication proceeds in synchronous rounds; in every round each vertex
// may send one message of at most B = Θ(log n) bits along each incident
// dart. Messages are delivered through per-dart Go channels at the start of
// the next round ("channels model message rounds"); vertex steps within a
// round run concurrently on a worker pool, mirroring the model's parallelism
// while keeping runs deterministic (inboxes are ordered by dart).
//
// The engine measures rounds, message counts and bandwidth violations; tests
// assert that algorithms never exceed the per-edge budget.
package congest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"planarflow/internal/planar"
)

// Received is a message as seen by its receiver: it arrived along dart In
// (whose head is the receiver), so the sender is Tail(In).
type Received struct {
	In      planar.Dart
	Payload any
	Bits    int
}

// Ctx is the per-vertex, per-round execution context handed to step
// functions.
type Ctx struct {
	V     int
	Round int
	In    []Received

	eng    *Engine
	out    []outMsg
	halted bool
}

type outMsg struct {
	d       planar.Dart
	payload any
	bits    int
}

// Send transmits payload along dart d (which must leave Ctx.V) to be
// delivered next round. bits is the encoded size; it must not exceed the
// engine's per-message budget and at most one message may be sent per dart
// per round — violations are counted and fail tests.
func (c *Ctx) Send(d planar.Dart, payload any, bits int) {
	c.out = append(c.out, outMsg{d: d, payload: payload, bits: bits})
}

// Halt marks this vertex as willing to terminate. The engine stops when all
// vertices halt in a round that delivers no messages.
func (c *Ctx) Halt() { c.halted = true }

// Graph returns the communication graph (vertices know their local topology).
func (c *Ctx) Graph() *planar.Graph { return c.eng.g }

// StepFunc is the code run by every vertex in every round.
type StepFunc func(c *Ctx)

// Stats aggregates a run's cost measurements.
type Stats struct {
	Rounds       int   // synchronous rounds executed
	Messages     int64 // total messages delivered
	Bits         int64 // total payload bits delivered
	Violations   int   // messages exceeding B bits or duplicate per-dart sends
	MaxInflight  int   // peak messages in a single round
	HaltedNormal bool  // true if run ended by unanimous halt (vs round cap)
}

// Engine executes CONGEST algorithms on a fixed communication graph.
type Engine struct {
	g *planar.Graph
	b int // per-message bit budget

	workers int
}

// MessageBits returns the CONGEST per-message budget for an n-vertex network:
// c * ceil(log2 n) bits with the customary constant c = 4 (an ID plus a
// polynomially-bounded weight fit in one message).
func MessageBits(n int) int {
	bits := 1
	for 1<<bits < n {
		bits++
	}
	return 4 * bits
}

// NewEngine returns an engine for g with the standard O(log n) message
// budget.
func NewEngine(g *planar.Graph) *Engine {
	return &Engine{g: g, b: MessageBits(g.N()), workers: runtime.GOMAXPROCS(0)}
}

// B returns the per-message bit budget.
func (e *Engine) B() int { return e.b }

// Graph returns the communication graph.
func (e *Engine) Graph() *planar.Graph { return e.g }

// Run executes step on every vertex each round until every vertex halts in a
// round with no message deliveries, or maxRounds is reached.
func (e *Engine) Run(step StepFunc, maxRounds int) Stats {
	n := e.g.N()
	var stats Stats

	// mailbox[d] carries the message sent along dart d, delivered one round
	// after it is sent.
	mailbox := make([]chan Received, e.g.NumDarts())
	for d := range mailbox {
		mailbox[d] = make(chan Received, 1)
	}

	ctxs := make([]*Ctx, n)
	for v := range ctxs {
		ctxs[v] = &Ctx{V: v, eng: e}
	}

	inflight := 0
	for round := 0; round < maxRounds; round++ {
		// Deliver: drain each vertex's incoming darts into its inbox.
		delivered := 0
		for v := 0; v < n; v++ {
			c := ctxs[v]
			c.In = c.In[:0]
			for _, d := range e.g.Rotation(v) {
				in := planar.Rev(d) // dart pointing at v
				select {
				case m := <-mailbox[in]:
					c.In = append(c.In, m)
					delivered++
				default:
				}
			}
			sort.Slice(c.In, func(i, j int) bool { return c.In[i].In < c.In[j].In })
		}
		if round > 0 && delivered == 0 && allHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
		stats.Messages += int64(delivered)
		if delivered > stats.MaxInflight {
			stats.MaxInflight = delivered
		}

		// Compute: run all vertex steps for this round concurrently.
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					c := ctxs[v]
					c.Round = round
					c.halted = false
					c.out = c.out[:0]
					step(c)
				}
			}()
		}
		for v := 0; v < n; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
		stats.Rounds++

		// Route: push outboxes into the per-dart channels.
		inflight = 0
		for v := 0; v < n; v++ {
			for _, m := range ctxs[v].out {
				if e.g.Tail(m.d) != v {
					panic(fmt.Sprintf("congest: vertex %d sent on dart %d it does not own", v, m.d))
				}
				if m.bits > e.b {
					stats.Violations++
				}
				select {
				case mailbox[m.d] <- Received{In: m.d, Payload: m.payload, Bits: m.bits}:
					stats.Bits += int64(m.bits)
					inflight++
				default:
					stats.Violations++ // two messages on one dart in one round
				}
			}
		}
		if inflight == 0 && allHalted(ctxs) {
			stats.HaltedNormal = true
			return stats
		}
	}
	return stats
}

func allHalted(ctxs []*Ctx) bool {
	for _, c := range ctxs {
		if !c.halted {
			return false
		}
	}
	return true
}
