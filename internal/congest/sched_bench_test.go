package congest

import (
	"testing"

	"planarflow/internal/planar"
)

// Old-vs-new scheduler benchmarks on Grid(32,32). The flat-mailbox
// scheduler must beat the channel engine on wall-clock and on allocs/op
// (run with -benchmem): it allocates no per-round channels and reuses its
// inbox arenas and worker pool across rounds.

func benchBFS(b *testing.B, e Runner) {
	b.Helper()
	b.ReportAllocs()
	var stats Stats
	for i := 0; i < b.N; i++ {
		_, stats = DistributedBFS(e, 0)
	}
	b.ReportMetric(float64(stats.Rounds), "rounds")
}

func BenchmarkSchedBFSGrid32(b *testing.B) {
	benchBFS(b, NewEngine(planar.Grid(32, 32)))
}

func BenchmarkChanBFSGrid32(b *testing.B) {
	benchBFS(b, NewChanEngine(planar.Grid(32, 32)))
}

// FloodMin keeps every vertex busy most rounds — the dense-activity regime
// where the worker pool, not the worklist, carries the load.
func benchFlood(b *testing.B, e Runner, n int) {
	b.Helper()
	b.ReportAllocs()
	vals := make([]int64, n)
	for v := range vals {
		vals[v] = int64(n - v)
	}
	for i := 0; i < b.N; i++ {
		FloodMin(e, vals)
	}
}

func BenchmarkSchedFloodMinGrid32(b *testing.B) {
	g := planar.Grid(32, 32)
	benchFlood(b, NewEngine(g), g.N())
}

func BenchmarkChanFloodMinGrid32(b *testing.B) {
	g := planar.Grid(32, 32)
	benchFlood(b, NewChanEngine(g), g.N())
}

func benchPortBFS(b *testing.B, e PortRunner) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PortBFS(e, 0)
	}
}

func BenchmarkSchedPortBFSGrid32(b *testing.B) {
	benchPortBFS(b, NewPortEngine(gridAdj(planar.Grid(32, 32))))
}

func BenchmarkChanPortBFSGrid32(b *testing.B) {
	benchPortBFS(b, NewChanPortEngine(gridAdj(planar.Grid(32, 32))))
}
