package congest

import (
	"math/rand"
	"sort"
	"testing"

	"planarflow/internal/planar"
)

func TestDistributedBFSMatchesCentralized(t *testing.T) {
	g := planar.Grid(5, 9)
	e := NewEngine(g)
	tree, stats := DistributedBFS(e, 0)
	want := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if tree.Depth[v] != want.Dist[v] {
			t.Fatalf("depth[%d]=%d want %d", v, tree.Depth[v], want.Dist[v])
		}
	}
	if tree.Height != want.Depth {
		t.Fatalf("height=%d want %d", tree.Height, want.Depth)
	}
	if !stats.HaltedNormal {
		t.Fatal("BFS did not halt normally")
	}
	if stats.Violations != 0 {
		t.Fatalf("CONGEST violations: %d", stats.Violations)
	}
	// BFS must finish within O(ecc) rounds.
	if stats.Rounds > 2*want.Depth+8 {
		t.Fatalf("BFS rounds=%d ecc=%d", stats.Rounds, want.Depth)
	}
}

func TestBFSRoundsScaleWithDiameter(t *testing.T) {
	// Same n, different diameter: rounds must track D, not n.
	longThin := planar.Grid(2, 32) // D = 32
	square := planar.Grid(8, 8)    // D = 14
	_, s1 := DistributedBFS(NewEngine(longThin), 0)
	_, s2 := DistributedBFS(NewEngine(square), 0)
	if s1.Rounds <= s2.Rounds {
		t.Fatalf("expected more rounds on long-thin grid: %d vs %d", s1.Rounds, s2.Rounds)
	}
}

func TestFloodMin(t *testing.T) {
	g := planar.Grid(6, 6)
	e := NewEngine(g)
	vals := make([]int64, g.N())
	for v := range vals {
		vals[v] = int64(1000 - v)
	}
	out, stats := FloodMin(e, vals)
	for v, x := range out {
		if x != int64(1000-(g.N()-1)) {
			t.Fatalf("vertex %d got %d", v, x)
		}
	}
	if stats.Violations != 0 {
		t.Fatalf("violations: %d", stats.Violations)
	}
}

func TestTreeAggregateSum(t *testing.T) {
	g := planar.Grid(4, 7)
	e := NewEngine(g)
	tree, _ := DistributedBFS(e, 3)
	input := make([]int64, g.N())
	var want int64
	for v := range input {
		input[v] = int64(v * v % 13)
		want += input[v]
	}
	got, stats := TreeAggregate(e, tree, input, SumOp)
	if got != want {
		t.Fatalf("sum=%d want %d", got, want)
	}
	if stats.Rounds > 4*tree.Height+16 {
		t.Fatalf("aggregate rounds=%d height=%d", stats.Rounds, tree.Height)
	}
	if stats.Violations != 0 {
		t.Fatalf("violations: %d", stats.Violations)
	}
}

func TestTreeAggregateMinMax(t *testing.T) {
	g := planar.Cylinder(3, 8)
	e := NewEngine(g)
	tree, _ := DistributedBFS(e, 0)
	input := make([]int64, g.N())
	for v := range input {
		input[v] = int64((v*7 + 3) % 19)
	}
	gotMin, _ := TreeAggregate(e, tree, input, MinOp)
	gotMax, _ := TreeAggregate(e, tree, input, MaxOp)
	wantMin, wantMax := input[0], input[0]
	for _, x := range input {
		if x < wantMin {
			wantMin = x
		}
		if x > wantMax {
			wantMax = x
		}
	}
	if gotMin != wantMin || gotMax != wantMax {
		t.Fatalf("min/max = %d/%d want %d/%d", gotMin, gotMax, wantMin, wantMax)
	}
}

func TestPipelinedBroadcast(t *testing.T) {
	g := planar.Grid(5, 5)
	e := NewEngine(g)
	tree, _ := DistributedBFS(e, 12)
	values := []int64{5, 3, 9, 1, 7, 2}
	got, stats := PipelinedBroadcast(e, tree, values)
	for v := 0; v < g.N(); v++ {
		if len(got[v]) != len(values) {
			t.Fatalf("vertex %d got %d values, want %d", v, len(got[v]), len(values))
		}
		for i := range values {
			if got[v][i] != values[i] {
				t.Fatalf("vertex %d value %d = %d want %d", v, i, got[v][i], values[i])
			}
		}
	}
	// Pipelining: height + k + O(1), not height*k.
	if stats.Rounds > tree.Height+len(values)+8 {
		t.Fatalf("broadcast rounds=%d height=%d k=%d", stats.Rounds, tree.Height, len(values))
	}
	if stats.Violations != 0 {
		t.Fatalf("violations: %d", stats.Violations)
	}
}

func TestPipelinedUpcastDistinct(t *testing.T) {
	g := planar.Grid(4, 4)
	e := NewEngine(g)
	tree, _ := DistributedBFS(e, 0)
	input := make([][]int64, g.N())
	distinct := map[int64]bool{}
	rng := rand.New(rand.NewSource(11))
	for v := range input {
		for i := 0; i < 3; i++ {
			x := int64(rng.Intn(9))
			input[v] = append(input[v], x)
			distinct[x] = true
		}
	}
	got, stats := PipelinedUpcastDistinct(e, tree, input)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(distinct) {
		t.Fatalf("got %d distinct, want %d", len(got), len(distinct))
	}
	for _, x := range got {
		if !distinct[x] {
			t.Fatalf("unexpected value %d", x)
		}
	}
	if stats.Rounds > 4*(tree.Height+len(distinct))+16 {
		t.Fatalf("upcast rounds=%d height=%d k=%d", stats.Rounds, tree.Height, len(distinct))
	}
}

func TestIdentifyFaces(t *testing.T) {
	for _, g := range []*planar.Graph{
		planar.Grid(3, 3),
		planar.Grid(2, 6),
		planar.Cylinder(2, 5),
	} {
		e := NewEngine(g)
		minOf, stats := IdentifyFaces(e)
		if stats.Violations != 0 {
			t.Fatalf("violations: %d", stats.Violations)
		}
		fd := g.Faces()
		// Every dart of a face must agree on the face's minimum dart.
		for f := 0; f < fd.NumFaces(); f++ {
			want := fd.Cycle(f)[0]
			for _, d := range fd.Cycle(f) {
				if d < want {
					want = d
				}
			}
			for _, d := range fd.Cycle(f) {
				if minOf[d] != want {
					t.Fatalf("dart %d: face id %d want %d", d, minOf[d], want)
				}
			}
		}
		// Darts of different faces must have different ids.
		seen := map[planar.Dart]int{}
		for d := planar.Dart(0); int(d) < g.NumDarts(); d++ {
			f := fd.FaceOf(d)
			if prev, ok := seen[minOf[d]]; ok && prev != f {
				t.Fatalf("faces %d and %d share id %d", prev, f, minOf[d])
			}
			seen[minOf[d]] = f
		}
		// Rounds track the longest face boundary.
		maxFace := 0
		for f := 0; f < fd.NumFaces(); f++ {
			if fd.Len(f) > maxFace {
				maxFace = fd.Len(f)
			}
		}
		if stats.Rounds > 2*maxFace+8 {
			t.Fatalf("rounds=%d maxFace=%d", stats.Rounds, maxFace)
		}
	}
}

func TestEngineDetectsCongestionViolation(t *testing.T) {
	g := planar.Grid(2, 2)
	e := NewEngine(g)
	stats := e.Run(func(c *Ctx) {
		if c.Round == 0 && c.V == 0 {
			d := c.Graph().Rotation(0)[0]
			c.Send(d, 1, e.B())
			c.Send(d, 2, e.B()) // second message on same dart: violation
		}
		c.Halt()
	}, 4)
	if stats.Violations != 1 {
		t.Fatalf("violations=%d want 1", stats.Violations)
	}
}

func TestEngineDetectsOversizedMessage(t *testing.T) {
	g := planar.Grid(2, 2)
	e := NewEngine(g)
	stats := e.Run(func(c *Ctx) {
		if c.Round == 0 && c.V == 0 {
			c.Send(c.Graph().Rotation(0)[0], 1, e.B()+1)
		}
		c.Halt()
	}, 4)
	if stats.Violations != 1 {
		t.Fatalf("violations=%d want 1", stats.Violations)
	}
}

func TestEngineRoundCap(t *testing.T) {
	g := planar.Grid(2, 2)
	e := NewEngine(g)
	// Never halts: ping-pong forever.
	stats := e.Run(func(c *Ctx) {
		if c.V == 0 {
			c.Send(c.Graph().Rotation(0)[0], 1, 1)
		}
	}, 10)
	if stats.Rounds != 10 || stats.HaltedNormal {
		t.Fatalf("expected round cap: rounds=%d halted=%v", stats.Rounds, stats.HaltedNormal)
	}
}

func TestMessageBits(t *testing.T) {
	if MessageBits(2) != 4 {
		t.Fatalf("B(2)=%d", MessageBits(2))
	}
	if MessageBits(1024) != 40 {
		t.Fatalf("B(1024)=%d", MessageBits(1024))
	}
	if MessageBits(1025) != 44 {
		t.Fatalf("B(1025)=%d", MessageBits(1025))
	}
}
